/// \file
/// csj_tool — command-line front end for the library. Covers the full
/// pipeline a downstream user needs without writing C++:
///
///   csj_tool generate --kind roadnet --n 27000 --seed 27 --out pts.txt
///   csj_tool build    --points pts.txt --out index.csjt [--fanout 64]
///   csj_tool join     --index index.csjt --eps 0.05 --algo csj --g 10
///                     --out result.txt   (one line)
///   csj_tool join     --points pts.txt --eps 0.05 --algo ego --out r.txt
///   csj_tool join     --index index.csjt --eps 0.05 --algo auto --out r.txt
///                     (cost-based planner picks algorithm, g, leaf kernel
///                     and serial-vs-parallel; the chosen plan and its
///                     predictions ride along in --metrics json output; see
///                     docs/PLANNING.md)
///   csj_tool plan     --index index.csjt --eps 0.05 [--algo csj] [--json 1]
///                     (alias: explain — print the QueryPlan, with a
///                     rationale per decision, without executing anything;
///                     defaults to --algo auto, an explicit algo is priced)
///   csj_tool join     ... --metrics json   (stats + metrics snapshot JSON
///                     on stdout; --metrics text appends a readable dump)
///   csj_tool join     ... --leaf-kernel naive|sweep|simd|avx2|avx512
///                     (leaf-level pair-enumeration strategy; simd picks the
///                     best ISA the host supports, avx2/avx512 force one;
///                     identical output either way, see docs/PERFORMANCE.md;
///                     default sweep)
///   csj_tool join     ... --leaf-batch 64   (leaf-tile pairs buffered per
///                     batched kernel pass; 0 or 1 disables batching;
///                     identical output at any value)
///   csj_tool join     ... --output-format text|binary|none   (binary = the
///                     compact CSJ2 format, docs/OUTPUT_FORMAT.md; none =
///                     count bytes without writing; default text)
///   csj_tool join     ... [--deadline-ms 60000] [--mem-budget 268435456]
///                     (resource governance, docs/ROBUSTNESS.md: every join
///                     — including plain, ego and cego runs — stops cleanly
///                     when the wall-clock budget or the memory budget in
///                     bytes runs out; deadline exits 4, exhausted memory
///                     exits 5, SIGINT/SIGTERM exits 3; no partial output
///                     file is left behind)
///   csj_tool join     ... --checkpoint-interval 32 [--checkpoint run.ckpt]
///                     [--threads 4]   (crash-safe checkpointed execution,
///                     docs/ROBUSTNESS.md; the manifest defaults to
///                     <out>.ckpt; SIGINT/SIGTERM and deadlines additionally
///                     save a final checkpoint for --resume)
///   csj_tool join     ... --resume 1   (continue an interrupted run from
///                     its manifest; the finished output is byte-identical
///                     to an uninterrupted run)
///   csj_tool cat      --result result.bin [--out result.txt] [--width N]
///                     (decode any result — text or binary — to canonical
///                     text; stdout when --out is omitted)
///   csj_tool expand   --result result.txt --out links.txt
///   csj_tool verify   --points pts.txt --result result.txt --eps 0.05
///   csj_tool stats    --index index.csjt
///
/// expand / verify / report / cat auto-detect the result format, so every
/// inspection command runs unchanged on text and binary outputs.
///
/// 2-D only (the common GIS case); the C++ API is dimension-generic.

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "csj.h"

namespace csj::tool {
namespace {

/// Exit codes beyond the usual 0/1/2: a join stopped by SIGINT/SIGTERM, one
/// stopped by an expired --deadline-ms, and one stopped by an exhausted
/// --mem-budget.
constexpr int kExitInterrupted = 3;
constexpr int kExitDeadline = 4;
constexpr int kExitResourceExhausted = 5;

/// Flipped by the signal handler; polled by the checkpoint runner at task
/// boundaries, which then writes a final checkpoint and unwinds cleanly.
std::atomic<bool> g_cancel_requested{false};

void HandleTerminationSignal(int) {
  // async-signal-safe: just raise the flag; all I/O happens on the main
  // thread once the runner reaches the next task boundary.
  g_cancel_requested.store(true, std::memory_order_relaxed);
}

void InstallTerminationHandlers() {
  std::signal(SIGINT, HandleTerminationSignal);
  std::signal(SIGTERM, HandleTerminationSignal);
}

/// Minimal --flag value parser; every flag takes exactly one value.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        Die(StrFormat("expected a --flag, got '%s'", argv[i]));
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      Die(StrFormat("flag '%s' is missing its value", argv[argc - 1]));
    }
  }

  std::string GetOr(const std::string& key, const std::string& fallback) {
    seen_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) {
    seen_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) Die("missing required flag --" + key);
    return it->second;
  }

  double GetDouble(const std::string& key, double fallback) {
    const std::string v = GetOr(key, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  long GetInt(const std::string& key, long fallback) {
    const std::string v = GetOr(key, "");
    return v.empty() ? fallback : std::atol(v.c_str());
  }

  /// Rejects typo'd flags once the command has read everything it knows.
  void CheckAllUsed() {
    for (const auto& [key, value] : values_) {
      if (seen_.find(key) == seen_.end()) Die("unknown flag --" + key);
    }
  }

  [[noreturn]] static void Die(const std::string& message) {
    std::fprintf(stderr, "csj_tool: %s\n", message.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
};

void DieOnError(const Status& status) {
  if (!status.ok()) Flags::Die(status.ToString());
}

/// Maps a governed join's terminal status to the exit codes above; 0 for
/// statuses that are not governance outcomes.
int GovernanceExitCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return kExitInterrupted;
    case StatusCode::kDeadlineExceeded:
      return kExitDeadline;
    case StatusCode::kResourceExhausted:
      return kExitResourceExhausted;
    default:
      return 0;
  }
}

/// Reports a join's terminal status: returns 0 for OK (continue), the
/// governance exit code for a clean stop, and dies (exit 2) on any other
/// error. On a non-zero return the caller must skip sink->Finish(), so the
/// atomic output file is discarded instead of committed half-written.
int HandleJoinStatus(const Status& status) {
  if (status.ok()) return 0;
  const int code = GovernanceExitCode(status);
  if (code != 0) {
    std::fprintf(stderr, "join stopped: %s\n", status.ToString().c_str());
    return code;
  }
  Flags::Die(status.ToString());
}

Result<std::vector<Entry<2>>> LoadEntries(const std::string& path) {
  CSJ_ASSIGN_OR_RETURN(auto points, LoadPoints<2>(path));
  return ToEntries(points);
}

int CmdGenerate(Flags& flags) {
  const std::string kind = flags.GetOr("kind", "roadnet");
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out = flags.Require("out");
  flags.CheckAllUsed();

  std::vector<Point2> points;
  if (kind == "roadnet") {
    RoadNetOptions options;
    options.num_points = n;
    options.seed = seed;
    points = GenerateRoadNetwork(options);
  } else if (kind == "uniform") {
    points = GenerateUniform<2>(n, seed);
  } else if (kind == "clusters") {
    points = GenerateGaussianClusters<2>(n, 8, 0.02, seed);
  } else if (kind == "sierpinski") {
    points = GenerateSierpinski2D(n, seed);
  } else {
    Flags::Die("unknown --kind '" + kind +
               "' (roadnet|uniform|clusters|sierpinski)");
  }
  DieOnError(SavePoints(out, points));
  std::printf("wrote %s points to %s\n", WithThousands(points.size()).c_str(),
              out.c_str());
  return 0;
}

int CmdBuild(Flags& flags) {
  const std::string points_path = flags.Require("points");
  const std::string out = flags.Require("out");
  RStarOptions options;
  options.max_fanout = static_cast<size_t>(flags.GetInt("fanout", 64));
  options.min_fanout = std::max<size_t>(2, options.max_fanout * 2 / 5);
  const bool bulk = flags.GetOr("bulk", "str") != "none";
  flags.CheckAllUsed();

  auto entries = LoadEntries(points_path);
  DieOnError(entries.status());
  RStarTree<2> tree(options);
  WallTimer timer;
  if (bulk) {
    PackStr(&tree, *entries);
  } else {
    for (const auto& e : *entries) tree.Insert(e.id, e.point);
  }
  std::printf("built R*-tree over %s points in %s (%s)\n",
              WithThousands(entries->size()).c_str(),
              HumanDuration(timer.ElapsedSeconds()).c_str(),
              tree.Stats().ToString().c_str());
  DieOnError(SaveTree(tree, out));
  std::printf("saved index to %s\n", out.c_str());
  return 0;
}

/// Builds the QuerySpec shared by `join` and `plan` from the command-line
/// flags, plus the dataset source flags (--index / --points). Dies on any
/// malformed value. This is the only flag-to-spec mapping in the tool: both
/// commands describe the same run identically, and execution knobs are
/// derived from the spec (plan/planner.h), never re-read from the flags.
QuerySpec SpecFromFlags(Flags& flags, std::string* index_path,
                        std::string* points_path) {
  QuerySpec spec;
  const std::string algo = flags.GetOr("algo", "csj");
  if (!ParseQueryAlgo(algo, &spec.algo)) {
    Flags::Die("unknown --algo '" + algo + "' (auto|ssj|ncsj|csj|ego|cego)");
  }
  spec.eps = flags.GetDouble("eps", 0.0);
  spec.window = static_cast<int>(flags.GetInt("g", 10));
  const std::string kernel_name = flags.GetOr("leaf-kernel", "sweep");
  if (!ParseLeafKernel(kernel_name, &spec.leaf_kernel)) {
    Flags::Die("--leaf-kernel must be naive, sweep, simd, avx2 or avx512");
  }
  const long leaf_batch = flags.GetInt("leaf-batch", 64);
  if (leaf_batch < 0) Flags::Die("--leaf-batch must be non-negative");
  spec.leaf_batch = static_cast<size_t>(leaf_batch);
  spec.sort_child_pairs = flags.GetOr("sort-child-pairs", "0") != "0";
  // Absent --threads leaves 0 ("unspecified"): the planner decides under
  // --algo auto, explicit runs stay serial — the historical default.
  spec.threads = static_cast<int>(flags.GetInt("threads", 0));
  const long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms < 0) Flags::Die("--deadline-ms must be non-negative");
  spec.deadline_ms = static_cast<uint64_t>(deadline_ms);
  const long mem_budget = flags.GetInt("mem-budget", 0);
  if (mem_budget < 0) Flags::Die("--mem-budget must be non-negative bytes");
  spec.mem_budget = static_cast<uint64_t>(mem_budget);
  const std::string format_name = flags.GetOr("output-format", "text");
  if (!ParseOutputFormat(format_name, &spec.output)) {
    Flags::Die("--output-format must be text, binary or none");
  }
  *index_path = flags.GetOr("index", "");
  *points_path = flags.GetOr("points", "");
  spec.dataset = index_path->empty() ? *points_path : *index_path;
  DieOnError(spec.Validate());
  return spec;
}

/// Loads the dataset named by --index / --points as raw points (for the
/// planner's sketch; `plan` also renders predictions from them).
std::vector<Point2> LoadPlanningPoints(const std::string& index_path,
                                       const std::string& points_path) {
  std::vector<Point2> points;
  if (!index_path.empty()) {
    auto info = PeekTreeFile(index_path);
    DieOnError(info.status());
    RStarOptions options;
    options.max_fanout = info->max_fanout;
    options.min_fanout = info->min_fanout;
    RStarTree<2> tree(options);
    DieOnError(LoadTree(&tree, index_path));
    points.reserve(tree.size());
    ForEachEntryInSubtree(
        tree, tree.Root(), static_cast<NodeAccessTracker*>(nullptr),
        [&](const Entry<2>& e) { points.push_back(e.point); });
  } else if (!points_path.empty()) {
    // Pack and walk exactly as CmdJoin does: the sketch's seeded sample is
    // input-order sensitive, so `plan` must see the same point sequence as
    // `join --algo auto` for the two to resolve the same plan.
    auto entries = LoadEntries(points_path);
    DieOnError(entries.status());
    RStarTree<2> tree;
    PackStr(&tree, *entries);
    points.reserve(tree.size());
    ForEachEntryInSubtree(
        tree, tree.Root(), static_cast<NodeAccessTracker*>(nullptr),
        [&](const Entry<2>& e) { points.push_back(e.point); });
  } else {
    Flags::Die("need --index or --points");
  }
  return points;
}

int CmdJoin(Flags& flags) {
  std::string index_path;
  std::string points_path;
  QuerySpec spec = SpecFromFlags(flags, &index_path, &points_path);
  const std::string out = flags.GetOr("out", "");
  if (out.empty() && spec.output != OutputFormat::kNone) {
    Flags::Die("join needs --out (or --output-format none)");
  }
  const std::string metrics_mode = flags.GetOr("metrics", "off");
  if (metrics_mode != "off" && metrics_mode != "text" &&
      metrics_mode != "json") {
    Flags::Die("--metrics must be off, text or json");
  }
  // Checkpoint/resume flags. Any of them — or a resolved thread count above
  // one — selects the crash-safe runner (docs/ROBUSTNESS.md); without them
  // the join runs exactly as before.
  const long tasks_per_thread = flags.GetInt("tasks-per-thread", 16);
  const long checkpoint_interval = flags.GetInt("checkpoint-interval", -1);
  const bool resume = flags.GetOr("resume", "0") != "0";
  std::string manifest_path = flags.GetOr("checkpoint", "");
  flags.CheckAllUsed();

  const bool checkpoint_flags =
      resume || checkpoint_interval >= 0 || !manifest_path.empty();
  if (tasks_per_thread < 1) Flags::Die("--tasks-per-thread must be positive");
  if ((checkpoint_flags || spec.threads > 1) && IsEgoAlgo(spec.algo)) {
    Flags::Die("checkpointing supports the tree algorithms (ssj|ncsj|csj)");
  }
  if (manifest_path.empty()) {
    manifest_path = (out.empty() ? std::string("csj_join") : out) + ".ckpt";
  }

  // Governance shared by every join flavor below: SIGINT/SIGTERM cancel,
  // plus the optional memory budget. Drivers layer --deadline-ms on top.
  MemoryBudget budget(spec.mem_budget);
  ExecContext exec;
  exec.SetCancelFlag(&g_cancel_requested);
  exec.SetMemoryBudget(&budget);
  InstallTerminationHandlers();

  // Every sink — text file, binary file, or byte-counting — comes from the
  // same factory, so the join code below is format-agnostic.
  const auto make_sink = [&](uint64_t n) {
    OutputSpec out_spec;
    out_spec.format = spec.output;
    out_spec.path = out;
    out_spec.id_width = IdWidthFor(n);
    out_spec.budget = &budget;
    auto sink = MakeSink(out_spec);
    DieOnError(sink.status());
    return std::move(sink).value();
  };

  JoinStats stats;
  uint64_t n = 0;
  if (IsEgoAlgo(spec.algo)) {
    if (points_path.empty()) Flags::Die("--algo ego needs --points");
    auto entries = LoadEntries(points_path);
    DieOnError(entries.status());
    n = entries->size();
    auto sink = make_sink(n);
    EgoOptions options = plan::DeriveEgoOptions(spec);
    options.exec = &exec;
    stats = spec.algo == QueryAlgo::kEgo
                ? EgoSimilarityJoin(*entries, options, sink.get())
                : CompactEgoJoin(*entries, options, sink.get());
    // A governed stop must not leave a partial artifact: skipping Finish()
    // makes the atomic FileSink discard its temp file.
    if (const int code = HandleJoinStatus(stats.status)) return code;
    DieOnError(sink->Finish());
  } else {
    RStarOptions tree_options;
    if (!index_path.empty()) {
      // Match the on-disk fanout before loading.
      auto info = PeekTreeFile(index_path);
      DieOnError(info.status());
      tree_options.max_fanout = info->max_fanout;
      tree_options.min_fanout = info->min_fanout;
    }
    RStarTree<2> tree(tree_options);
    if (!index_path.empty()) {
      DieOnError(LoadTree(&tree, index_path));
    } else if (!points_path.empty()) {
      auto entries = LoadEntries(points_path);
      DieOnError(entries.status());
      PackStr(&tree, *entries);
    } else {
      Flags::Die("join needs --index or --points");
    }
    n = tree.size();

    // --algo auto: sketch the already-loaded dataset and let the planner
    // resolve every open knob; the plan rides along in the stats.
    std::optional<plan::QueryPlan> query_plan;
    if (spec.algo == QueryAlgo::kAuto) {
      std::vector<Point2> points;
      points.reserve(n);
      ForEachEntryInSubtree(
          tree, tree.Root(), static_cast<NodeAccessTracker*>(nullptr),
          [&](const Entry<2>& e) { points.push_back(e.point); });
      query_plan =
          plan::PlanQuery(spec, plan::BuildSketch(points), IdWidthFor(n));
      spec = query_plan->resolved;
    }
    const auto finish_plan = [&](JoinStats* s) {
      if (!query_plan) return;
      plan::AttachPlan(*query_plan, s);
      if (s->status.ok()) plan::RecordPlanAccuracy(*s);
    };

    JoinOptions options = plan::DeriveJoinOptions(spec);
    options.exec = &exec;
    const JoinAlgorithm algorithm = TreeAlgorithmFor(spec.algo);
    if (checkpoint_flags || spec.threads > 1) {
      OutputSpec out_spec;
      out_spec.format = spec.output;
      out_spec.path = out;
      out_spec.id_width = IdWidthFor(n);
      out_spec.budget = &budget;
      CheckpointJoinOptions ckpt;
      ckpt.manifest_path = manifest_path;
      ckpt.checkpoint_interval = checkpoint_interval < 0
                                     ? uint64_t{32}
                                     : static_cast<uint64_t>(checkpoint_interval);
      ckpt.threads = spec.threads > 0 ? spec.threads : 1;
      ckpt.tasks_per_thread = static_cast<int>(tasks_per_thread);
      ckpt.resume = resume;
      ckpt.cancel = &g_cancel_requested;
      stats = CheckpointedSelfJoin(tree, algorithm, options, out_spec, ckpt);
      finish_plan(&stats);
      // The checkpoint runner already persisted a resumable manifest, so a
      // governed stop here is an orderly exit, not a Die().
      if (const int code = HandleJoinStatus(stats.status)) return code;
    } else {
      auto sink = make_sink(n);
      if (algorithm == JoinAlgorithm::kSSJ) {
        stats = StandardSimilarityJoin(tree, options, sink.get());
      } else if (algorithm == JoinAlgorithm::kNCSJ) {
        stats = NaiveCompactJoin(tree, options, sink.get());
      } else {
        stats = CompactSimilarityJoin(tree, options, sink.get());
      }
      finish_plan(&stats);
      // Skip Finish() on a governed stop so the atomic FileSink discards its
      // temp file instead of publishing a partial result.
      if (const int code = HandleJoinStatus(stats.status)) return code;
      DieOnError(sink->Finish());
    }
  }
  if (metrics_mode == "json") {
    // Machine-readable mode: stdout carries exactly one JSON document with
    // the run's stats and the process metrics snapshot.
    json::Value doc = json::Object{};
    doc["stats"] = stats.ToJsonValue();
    doc["metrics"] = metrics::Snapshot().ToJsonValue();
    std::printf("%s\n", json::Write(doc, /*pretty=*/true).c_str());
    return 0;
  }
  std::printf("%s\n", stats.ToString().c_str());
  if (spec.output == OutputFormat::kNone) {
    std::printf("counted %s (%s) of %s output; nothing written\n",
                HumanBytes(stats.output_bytes).c_str(),
                WithThousands(stats.output_bytes).c_str(),
                OutputFormatName(OutputFormat::kText));
  } else {
    std::printf("wrote %s (%s) of %s output to %s\n",
                HumanBytes(stats.output_bytes).c_str(),
                WithThousands(stats.output_bytes).c_str(),
                OutputFormatName(spec.output), out.c_str());
  }
  if (metrics_mode == "text") {
    std::printf("%s", metrics::Snapshot().ToText().c_str());
  }
  return 0;
}

int CmdPlan(Flags& flags) {
  // Explain mode: resolve the spec against the dataset sketch and print the
  // QueryPlan — chosen knobs, predictions and a rationale per decision —
  // without executing the join. `--json 1` prints the exact document that
  // `join --algo auto --metrics json` echoes under stats.plan.
  std::string index_path;
  std::string points_path;
  QuerySpec spec = SpecFromFlags(flags, &index_path, &points_path);
  // Unlike join (whose historical default is csj), plan defaults to auto:
  // "what would the planner do" is the question the command answers. An
  // explicit --algo still prices that configuration instead.
  if (flags.GetOr("algo", "").empty()) spec.algo = QueryAlgo::kAuto;
  const bool as_json = flags.GetOr("json", "0") != "0";
  flags.CheckAllUsed();

  const std::vector<Point2> points =
      LoadPlanningPoints(index_path, points_path);
  const auto query_plan = plan::PlanQuery(spec, plan::BuildSketch(points),
                                          IdWidthFor(points.size()));
  if (as_json) {
    std::printf("%s\n",
                json::Write(query_plan.ToJsonValue(), /*pretty=*/true).c_str());
  } else {
    std::printf("%s", query_plan.ToText().c_str());
  }
  return 0;
}

/// Opens the result file as a streaming cursor, dying on failure. Handles
/// text and binary transparently (magic-byte sniffing).
std::unique_ptr<ResultCursor> OpenCursorOrDie(const std::string& path) {
  auto cursor = OpenResultCursor(path);
  DieOnError(cursor.status());
  return std::move(cursor).value();
}

int CmdExpand(Flags& flags) {
  const std::string result_path = flags.Require("result");
  const std::string out = flags.Require("out");
  flags.CheckAllUsed();

  auto cursor = OpenCursorOrDie(result_path);
  uint64_t links_seen = 0;
  uint64_t groups_seen = 0;
  std::vector<Link> links;
  DieOnError(ForEachImpliedLink(cursor.get(), [&](PointId a, PointId b) {
    links.push_back(MakeLink(a, b));
  }));
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  links_seen = cursor->links_read();
  groups_seen = cursor->groups_read();

  OutputFile file;
  DieOnError(file.Open(out, OutputFile::Options{.atomic = true}));
  for (const auto& [a, b] : links) {
    // Errors are sticky; stop at the first one and let Close() report it.
    if (!file.Append(StrFormat("%u %u\n", a, b)).ok()) break;
  }
  DieOnError(file.Close());
  std::printf("expanded %s links + %s groups into %s distinct links (%s)\n",
              WithThousands(links_seen).c_str(),
              WithThousands(groups_seen).c_str(),
              WithThousands(links.size()).c_str(), out.c_str());
  return 0;
}

int CmdVerify(Flags& flags) {
  const std::string points_path = flags.Require("points");
  const std::string result_path = flags.Require("result");
  const double eps = flags.GetDouble("eps", 0.0);
  if (eps <= 0.0) Flags::Die("--eps must be positive");
  flags.CheckAllUsed();

  auto entries = LoadEntries(points_path);
  DieOnError(entries.status());
  auto cursor = OpenCursorOrDie(result_path);
  auto expansion = ExpandSelfJoin(cursor.get());
  DieOnError(expansion.status());
  const auto report =
      CompareLinkSets(*expansion, BruteForceSelfJoin(*entries, eps));
  std::printf("%s\n", report.ToString().c_str());
  return report.lossless() ? 0 : 1;
}

int CmdReport(Flags& flags) {
  // Descriptive statistics of a join-output file: compaction ratio, group
  // size distribution, overlap. Streams; never loads the output.
  const std::string result_path = flags.Require("result");
  const int width = static_cast<int>(flags.GetInt("width", 0));
  flags.CheckAllUsed();

  auto cursor = OpenCursorOrDie(result_path);
  // With --width 0 the stats layer uses the file's declared width (binary)
  // or the width of the largest id seen (text).
  auto stats = ComputeOutputStats(cursor.get(), width);
  DieOnError(stats.status());
  std::printf("%s", stats->ToString().c_str());
  return 0;
}

int CmdCat(Flags& flags) {
  // Decodes a result file — text or binary — to the canonical fixed-width
  // text format. `csj_tool cat` on a binary result reproduces, byte for
  // byte, the text file the same join would have written directly.
  const std::string result_path = flags.Require("result");
  const std::string out = flags.GetOr("out", "");
  int width = static_cast<int>(flags.GetInt("width", 0));
  flags.CheckAllUsed();

  if (width == 0) {
    auto cursor = OpenCursorOrDie(result_path);
    width = cursor->declared_id_width();
    if (width == 0) {
      // Text input declares no width: pre-scan for the largest id.
      PointId max_id = 0;
      while (cursor->Next()) {
        for (PointId id : cursor->record().ids) max_id = std::max(max_id, id);
      }
      DieOnError(cursor->status());
      width = DecimalWidth(max_id);
    }
  }

  auto cursor = OpenCursorOrDie(result_path);
  if (!out.empty()) {
    OutputSpec spec;
    spec.format = OutputFormat::kText;
    spec.path = out;
    spec.id_width = width;
    auto sink = MakeSink(spec);
    DieOnError(sink.status());
    DieOnError(ReplayResult(cursor.get(), sink->get()));
    DieOnError((*sink)->Finish());
    std::printf("decoded %s records to %s (width %d)\n",
                WithThousands(cursor->links_read() + cursor->groups_read())
                    .c_str(),
                out.c_str(), width);
  } else {
    bool consumer_gone = false;
    while (!consumer_gone && cursor->Next()) {
      const auto ids = cursor->record().ids;
      for (size_t i = 0; i < ids.size(); ++i) {
        errno = 0;
        if (std::printf("%0*u%c", width, ids[i],
                        i + 1 == ids.size() ? '\n' : ' ') < 0) {
          // `csj_tool cat ... | head`: the consumer closed stdout. SIGPIPE
          // is ignored process-wide, so the hangup surfaces here as EPIPE —
          // a consumer decision, not an error. Anything else still dies.
          if (errno != EPIPE) {
            Flags::Die(std::string("write to stdout failed: ") +
                       std::strerror(errno));
          }
          consumer_gone = true;
          break;
        }
      }
    }
    DieOnError(cursor->status());
  }
  return 0;
}

int CmdFractal(Flags& flags) {
  // Intrinsic-dimension analysis of a point set + join-output prediction
  // (the paper's future-work analysis).
  const std::string points_path = flags.Require("points");
  const double eps = flags.GetDouble("eps", 0.0);
  flags.CheckAllUsed();

  auto entries = LoadEntries(points_path);
  DieOnError(entries.status());
  std::vector<Point2> points;
  points.reserve(entries->size());
  for (const auto& e : *entries) points.push_back(e.point);

  const auto d0 = BoxCountingDimension(points);
  DieOnError(d0.status());
  const PowerLawFit d2 = CorrelationDimension(points);
  std::printf("points: %s\n", WithThousands(points.size()).c_str());
  std::printf("box-counting dimension D0 = %.2f (R^2=%.3f)\n", d0->slope,
              d0->r_squared);
  std::printf("correlation dimension D2 = %.2f (R^2=%.3f)\n", d2.slope,
              d2.r_squared);
  if (eps > 0.0) {
    const uint64_t predicted = PredictLinkCount(d2, points.size(), eps);
    std::printf("predicted similarity-join links at eps=%g: ~%s "
                "(~%s as a plain link listing)\n",
                eps, WithThousands(predicted).c_str(),
                HumanBytes(predicted * 2 *
                           static_cast<uint64_t>(
                               DecimalWidth(points.size() - 1) + 1))
                    .c_str());
  }
  return 0;
}

int CmdSuggestEps(Flags& flags) {
  // k-distance epsilon suggestion plus a D2-based output-size preview.
  const std::string points_path = flags.Require("points");
  const size_t k = static_cast<size_t>(flags.GetInt("k", 8));
  const double percentile = flags.GetDouble("percentile", 0.5);
  flags.CheckAllUsed();

  auto entries = LoadEntries(points_path);
  DieOnError(entries.status());
  RStarTree<2> tree;
  PackStr(&tree, *entries);
  const auto suggestion = SuggestEpsilon(tree, *entries, k, percentile);
  if (suggestion.epsilon <= 0.0) Flags::Die("not enough points to suggest");
  std::printf("k-distance scan (k=%zu, %zu anchors): median %.6g, "
              "p90 %.6g\n",
              k, suggestion.sample_size, suggestion.median_kdist,
              suggestion.p90_kdist);
  std::printf("suggested eps (p%02.0f) = %.6g\n", percentile * 100.0,
              suggestion.epsilon);

  std::vector<Point2> points;
  points.reserve(entries->size());
  for (const auto& e : *entries) points.push_back(e.point);
  const PowerLawFit d2 = CorrelationDimension(points);
  const uint64_t predicted =
      PredictLinkCount(d2, points.size(), suggestion.epsilon);
  std::printf("predicted links at that eps (D2=%.2f): ~%s\n", d2.slope,
              WithThousands(predicted).c_str());
  return 0;
}

int CmdStats(Flags& flags) {
  const std::string index_path = flags.Require("index");
  flags.CheckAllUsed();
  auto info = PeekTreeFile(index_path);
  DieOnError(info.status());
  RStarOptions options;
  options.max_fanout = info->max_fanout;
  options.min_fanout = info->min_fanout;
  RStarTree<2> tree(options);
  DieOnError(LoadTree(&tree, index_path));
  std::printf("%s\n", tree.Stats().ToString().c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: csj_tool "
               "<generate|build|join|plan|cat|expand|verify|stats|report|"
               "fractal|suggest-eps> "
               "[--flag value ...]\n"
               "see the header comment of tools/csj_tool.cc for examples\n");
  return 2;
}

int Main(int argc, char** argv) {
  // A consumer hanging up mid-stream (`csj_tool join ... | head`) must not
  // kill the process with SIGPIPE: ignored, the broken pipe surfaces as
  // EPIPE, which OutputFile maps to a clean sticky kCancelled (exit 3) and
  // CmdCat's stdout loop treats as end-of-interest (exit 0).
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "join") return CmdJoin(flags);
  if (command == "plan" || command == "explain") return CmdPlan(flags);
  if (command == "cat") return CmdCat(flags);
  if (command == "expand") return CmdExpand(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "report") return CmdReport(flags);
  if (command == "fractal") return CmdFractal(flags);
  if (command == "suggest-eps") return CmdSuggestEps(flags);
  return Usage();
}

}  // namespace
}  // namespace csj::tool

int main(int argc, char** argv) { return csj::tool::Main(argc, argv); }

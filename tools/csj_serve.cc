/// \file
/// csj_serve — persistent query daemon over prebuilt indexes, plus the
/// matching command-line client (docs/SERVING.md).
///
///   csj_serve serve --datasets pts=index.csjt --socket /tmp/csj.sock
///                   [--workers 4] [--max-pending 16] [--mem-budget BYTES]
///                   [--default-deadline-ms 0] [--max-deadline-ms 0]
///                   [--cache-blocks 1024] [--block-size 4096]
///                   [--request-timeout-ms 10000] [--idle-timeout-ms 10000]
///                   [--max-requests-per-conn 256]
///   csj_serve serve --datasets a=a.csjt,b=b.csjt --port 7707
///
/// Datasets load at startup — any mix of CSJPAGE1 paged images, CSJTREE1/2
/// indexes and point text files (the latter two are converted to a paged
/// image on the fly) — and are then shared read-only by every concurrent
/// query. At runtime the load/reload/unload admin ops swap datasets as
/// validated, refcounted epochs without a restart (docs/SERVING.md).
/// SIGTERM/SIGINT drain: in-flight queries finish, then the daemon exits 0.
///
///   csj_serve query --socket /tmp/csj.sock --dataset pts --eps 0.05
///                   [--algo auto|ssj|ncsj|csj] [--g 10]
///                   [--leaf-kernel sweep] [--leaf-batch 64]
///                   (--algo auto: the server's cost-based planner picks the
///                   knobs and the trailer's stats.plan explains the choice)
///                   [--output-format text|binary|none] [--out result.txt]
///                   [--deadline-ms N] [--mem-budget BYTES] [--metrics 1]
///                   [--dataset-b other]           (dual/spatial join)
///                   [--repeat N]    (keep-alive: N requests, one session)
///                   [--retries N] [--retry-max-elapsed-ms 15000]
///   csj_serve query ... --op range --center 0.5,0.5
///   csj_serve query ... --op ping | --op list
///   csj_serve query ... --op load|reload --dataset pts --path pts.txt
///   csj_serve query ... --op unload --dataset pts
///
/// The client streams the payload to --out (default stdout) as it arrives,
/// prints the trailer JSON to stderr, and exits with csj_tool's governance
/// codes: 0 OK, 2 error, 3 cancelled, 4 deadline exceeded, 5 resource
/// exhausted. Piping into `head` cancels just that query server-side.
///
/// `--repeat N` issues the same request N times over one keep-alive
/// session (reconnecting transparently if the server rotates the
/// connection); with `--out FILE` each response lands in FILE.<i>, and an
/// iteration that does not finish OK removes its partial file so every
/// file that exists is complete. `--retries N` arms bounded
/// full-jitter-backoff retry: a connect failure, or an Unavailable
/// error before any payload byte arrived (admission reject, drain,
/// injected fault), is retried on a fresh connection up to N times and
/// `--retry-max-elapsed-ms` of wall clock. A request whose payload has
/// started streaming is NEVER silently re-run — a retry there could
/// duplicate output bytes.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sink.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/format.h"
#include "util/json.h"
#include "util/retry.h"

namespace csj::serve_tool {
namespace {

/// csj_tool's governance exit codes, verbatim.
constexpr int kExitInterrupted = 3;
constexpr int kExitDeadline = 4;
constexpr int kExitResourceExhausted = 5;

std::atomic<bool> g_shutdown_requested{false};

void HandleTerminationSignal(int) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

/// Minimal --flag value parser, mirroring csj_tool's.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        Die(StrFormat("expected a --flag, got '%s'", argv[i]));
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      Die(StrFormat("flag '%s' is missing its value", argv[argc - 1]));
    }
  }

  std::string GetOr(const std::string& key, const std::string& fallback) {
    seen_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) {
    seen_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) Die("missing required flag --" + key);
    return it->second;
  }

  double GetDouble(const std::string& key, double fallback) {
    const std::string v = GetOr(key, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  long GetInt(const std::string& key, long fallback) {
    const std::string v = GetOr(key, "");
    return v.empty() ? fallback : std::atol(v.c_str());
  }

  void CheckAllUsed() {
    for (const auto& [key, value] : values_) {
      if (seen_.find(key) == seen_.end()) Die("unknown flag --" + key);
    }
  }

  [[noreturn]] static void Die(const std::string& message) {
    std::fprintf(stderr, "csj_serve: %s\n", message.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
};

void DieOnError(const Status& status) {
  if (!status.ok()) Flags::Die(status.ToString());
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t end = text.find(sep, start);
    parts.push_back(text.substr(start, end - start));
    if (end == std::string::npos) return parts;
    start = end + 1;
  }
}

int CmdServe(Flags& flags) {
  const std::string datasets = flags.Require("datasets");
  const std::string socket_path = flags.GetOr("socket", "");
  const long port = flags.GetInt("port", -1);
  const std::string host = flags.GetOr("host", "127.0.0.1");
  const long workers = flags.GetInt("workers", 4);
  const long max_pending = flags.GetInt("max-pending", 16);
  const long mem_budget = flags.GetInt("mem-budget", 0);
  const long default_deadline = flags.GetInt("default-deadline-ms", 0);
  const long max_deadline = flags.GetInt("max-deadline-ms", 0);
  const long cache_blocks = flags.GetInt("cache-blocks", 1024);
  const long block_size = flags.GetInt("block-size", 4096);
  const long request_timeout = flags.GetInt("request-timeout-ms", 10000);
  const long idle_timeout = flags.GetInt("idle-timeout-ms", 10000);
  const long max_requests_per_conn = flags.GetInt("max-requests-per-conn", 256);
  flags.CheckAllUsed();
  if (socket_path.empty() && port < 0) {
    Flags::Die("serve needs --socket PATH or --port N");
  }
  if (mem_budget < 0) Flags::Die("--mem-budget must be non-negative bytes");

  serve::DatasetRegistry registry(static_cast<uint64_t>(mem_budget));
  for (const std::string& item : SplitOn(datasets, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      Flags::Die("--datasets wants name=path[,name=path...], got '" + item +
                 "'");
    }
    serve::DatasetSpec spec;
    spec.name = item.substr(0, eq);
    spec.path = item.substr(eq + 1);
    spec.cache_blocks = static_cast<size_t>(cache_blocks);
    spec.block_size = static_cast<uint32_t>(block_size);
    DieOnError(registry.Load(spec));
    const std::shared_ptr<const serve::Dataset> dataset =
        registry.Find(spec.name);
    std::printf("loaded dataset '%s': %s points from %s (epoch %llu)\n",
                dataset->name.c_str(),
                WithThousands(dataset->num_points).c_str(),
                dataset->source_path.c_str(),
                static_cast<unsigned long long>(dataset->epoch));
  }

  serve::ServerOptions options;
  options.unix_socket_path = socket_path;
  options.tcp_host = host;
  options.tcp_port = static_cast<int>(port < 0 ? 0 : port);
  options.workers = static_cast<int>(workers);
  options.max_pending = static_cast<size_t>(max_pending);
  options.default_deadline_ms = static_cast<uint64_t>(default_deadline);
  options.max_deadline_ms = static_cast<uint64_t>(max_deadline);
  options.request_timeout_ms = static_cast<int>(request_timeout);
  options.idle_timeout_ms = static_cast<int>(idle_timeout);
  options.max_requests_per_conn = static_cast<int>(max_requests_per_conn);
  options.admin_block_size = static_cast<uint32_t>(block_size);
  options.admin_cache_blocks = static_cast<size_t>(cache_blocks);

  serve::Server server(&registry, options);
  DieOnError(server.Start());
  if (socket_path.empty()) {
    std::printf("serving on %s:%d (%ld workers, queue %ld)\n", host.c_str(),
                server.tcp_port(), workers, max_pending);
  } else {
    std::printf("serving on %s (%ld workers, queue %ld)\n",
                socket_path.c_str(), workers, max_pending);
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleTerminationSignal);
  std::signal(SIGTERM, HandleTerminationSignal);
  while (!g_shutdown_requested.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Shutdown();
  const serve::ServerCounters counters = server.counters();
  std::printf("drained: served %llu over %llu sessions, rejected %llu\n",
              static_cast<unsigned long long>(counters.served),
              static_cast<unsigned long long>(counters.sessions),
              static_cast<unsigned long long>(counters.rejected));
  return 0;
}

/// Connects to the server. A connect failure is transient from the
/// client's point of view (the daemon may be mid-restart, the listener
/// backlog full): it returns -1 with `*error` set so the retry loop can
/// back off and try again. Configuration mistakes (bad host, oversized
/// path) still die immediately.
int TryConnect(const std::string& socket_path, const std::string& host,
               long port, std::string* error) {
  int fd = -1;
  if (!socket_path.empty()) {
    struct sockaddr_un addr;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      Flags::Die("socket path too long: " + socket_path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) Flags::Die(std::string("socket failed: ") + std::strerror(errno));
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      *error = "cannot connect to " + socket_path + ": " +
               std::strerror(errno);
      ::close(fd);
      return -1;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) Flags::Die(std::string("socket failed: ") + std::strerror(errno));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      Flags::Die("bad host: " + host);
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      *error = StrFormat("cannot connect to %s:%ld: %s", host.c_str(), port,
                         std::strerror(errno));
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

/// Maps a trailer/error `code` name to the tool's exit code.
int ExitCodeFor(const std::string& code) {
  if (code == "OK") return 0;
  if (code == "Cancelled") return kExitInterrupted;
  if (code == "DeadlineExceeded") return kExitDeadline;
  if (code == "ResourceExhausted") return kExitResourceExhausted;
  return 2;
}

int CmdQuery(Flags& flags) {
  const std::string socket_path = flags.GetOr("socket", "");
  const long port = flags.GetInt("port", -1);
  const std::string host = flags.GetOr("host", "127.0.0.1");
  const std::string op = flags.GetOr("op", "join");
  const std::string out_path = flags.GetOr("out", "");
  const long repeat = flags.GetInt("repeat", 1);
  const long retries = flags.GetInt("retries", 0);
  const long retry_elapsed_ms = flags.GetInt("retry-max-elapsed-ms", 15000);

  // Build the request line from flags; the server validates semantics.
  json::Value request = json::Object{};
  request["op"] = op;
  const std::string dataset = flags.GetOr("dataset", "");
  if (!dataset.empty()) request["dataset"] = dataset;
  const std::string dataset_b = flags.GetOr("dataset-b", "");
  if (!dataset_b.empty()) request["dataset_b"] = dataset_b;
  const std::string admin_path = flags.GetOr("path", "");
  if (!admin_path.empty()) request["path"] = admin_path;
  const std::string algo = flags.GetOr("algo", "");
  if (!algo.empty()) request["algo"] = algo;
  const double eps = flags.GetDouble("eps", 0.0);
  if (eps > 0.0) request["eps"] = eps;
  const long g = flags.GetInt("g", -1);
  if (g >= 0) request["g"] = static_cast<int64_t>(g);
  const std::string kernel = flags.GetOr("leaf-kernel", "");
  if (!kernel.empty()) request["leaf_kernel"] = kernel;
  const long leaf_batch = flags.GetInt("leaf-batch", -1);
  if (leaf_batch >= 0) request["leaf_batch"] = static_cast<int64_t>(leaf_batch);
  const std::string format_name = flags.GetOr("output-format", "text");
  OutputFormat format = OutputFormat::kText;
  if (!ParseOutputFormat(format_name, &format)) {
    Flags::Die("--output-format must be text, binary or none");
  }
  request["output"] = format_name;
  const long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms > 0) request["deadline_ms"] = static_cast<int64_t>(deadline_ms);
  const long query_budget = flags.GetInt("mem-budget", 0);
  if (query_budget > 0) request["mem_budget"] = static_cast<int64_t>(query_budget);
  if (flags.GetOr("metrics", "0") != "0") request["metrics"] = true;
  const std::string center = flags.GetOr("center", "");
  if (!center.empty()) {
    json::Value coords = json::Array{};
    for (const std::string& c : SplitOn(center, ',')) {
      coords.Append(std::atof(c.c_str()));
    }
    request["center"] = coords;
  }
  flags.CheckAllUsed();
  if (socket_path.empty() && port < 0) {
    Flags::Die("query needs --socket PATH or --port N");
  }
  if (repeat < 1) Flags::Die("--repeat must be at least 1");
  if (retries < 0) Flags::Die("--retries must be non-negative");

  const std::string request_line = json::Write(request) + "\n";
  const bool control_op = op == "ping" || op == "list" || op == "load" ||
                          op == "reload" || op == "unload";

  // One keep-alive session carries all --repeat iterations; a broken
  // connection is dropped and the next attempt reconnects (re-entering the
  // server's admission queue, where overload control lives).
  int fd = -1;
  std::unique_ptr<serve::LineReader> reader;
  const auto drop_connection = [&fd, &reader] {
    if (fd >= 0) ::close(fd);
    fd = -1;
    reader.reset();
  };

  for (long iter = 0; iter < repeat; ++iter) {
    const std::string iter_out =
        (!out_path.empty() && repeat > 1)
            ? StrFormat("%s.%ld", out_path.c_str(), iter)
            : out_path;

    // Retry budget is per request: bounded attempts AND bounded wall clock,
    // whichever runs out first. The jitter RNG is deterministic, so a
    // retried run is reproducible under test.
    RetryPolicy policy;
    policy.max_attempts = static_cast<int>(retries) + 1;
    policy.initial_backoff_ms = 10.0;
    policy.max_backoff_ms = 250.0;
    policy.max_elapsed_ms =
        static_cast<uint64_t>(retry_elapsed_ms < 0 ? 0 : retry_elapsed_ms);
    RetryController retry(policy);

    for (;;) {
      std::string transient;  // set = this attempt failed retriably
      int exit_code = -1;     // >= 0 = the request reached a terminal answer

      do {
        if (fd < 0) {
          fd = TryConnect(socket_path, host, port, &transient);
          if (fd < 0) break;
          reader = std::make_unique<serve::LineReader>(fd);
        }
        const Status sent = serve::WriteAll(fd, request_line);
        if (!sent.ok()) {
          // Nothing of the response was consumed — safe to re-issue on a
          // fresh connection (the server also rotates sessions at its
          // request cap, which surfaces here as a dead socket).
          transient = sent.ToString();
          drop_connection();
          break;
        }
        std::string line;
        const Status head_read = reader->ReadLine(&line);
        if (!head_read.ok()) {
          transient = head_read.ToString();  // zero payload bytes: retriable
          drop_connection();
          break;
        }
        auto head = json::Parse(line);
        DieOnError(head.status());
        const json::Value* ok = head->Find("ok");
        if (ok == nullptr || !ok->is_bool()) {
          Flags::Die("malformed response: " + line);
        }
        if (!ok->AsBool()) {
          const json::Value* code = head->Find("code");
          const std::string code_name =
              code != nullptr && code->is_string() ? code->AsString() : "";
          const json::Value* error = head->Find("error");
          const std::string message = error != nullptr && error->is_string()
                                          ? error->AsString()
                                          : line;
          if (code_name == "Unavailable") {
            // Admission reject, drain, injected fault: the query never
            // ran. The server closes these sessions, so reconnect.
            transient = "server unavailable: " + message;
            drop_connection();
            break;
          }
          std::fprintf(stderr, "csj_serve: server error: %s\n",
                       message.c_str());
          const int rc = code_name.empty() ? 2 : ExitCodeFor(code_name);
          exit_code = rc == 0 ? 2 : rc;
          break;  // semantic error: the session itself stays usable
        }
        if (control_op) {
          std::printf("%s\n", line.c_str());
          std::fflush(stdout);
          exit_code = 0;
          break;
        }

        // Stream the payload to --out (or stdout) as it arrives. If our own
        // consumer hangs up (`csj_serve query ... | head`), close the
        // socket — the server's disconnect watcher cancels the query — and
        // exit 3.
        std::FILE* out = stdout;
        if (!iter_out.empty()) {
          out = std::fopen(iter_out.c_str(), "wb");
          if (out == nullptr) {
            Flags::Die("cannot open for write: " + iter_out);
          }
        }
        uint64_t payload_bytes = 0;
        const auto write_out = [out, &payload_bytes](const char* data,
                                                     size_t size) {
          if (std::fwrite(data, 1, size, out) != size) {
            if (errno == EPIPE) {
              return Status::Cancelled("output consumer closed the stream");
            }
            return Status::IoError(std::string("write failed: ") +
                                   std::strerror(errno));
          }
          payload_bytes += size;
          return Status::OK();
        };
        std::string trailer_line;
        errno = 0;
        Status streamed = serve::StreamFramedPayload(reader.get(), format,
                                                     write_out, &trailer_line);
        if (streamed.ok() && std::fflush(out) != 0 && errno == EPIPE) {
          streamed = Status::Cancelled("output consumer closed the stream");
        }
        if (out != stdout) std::fclose(out);
        if (!streamed.ok()) {
          if (!iter_out.empty()) std::remove(iter_out.c_str());
          drop_connection();
          if (streamed.code() == StatusCode::kCancelled) {
            std::fprintf(stderr, "csj_serve: %s\n",
                         streamed.ToString().c_str());
            exit_code = kExitInterrupted;
            break;
          }
          if (payload_bytes == 0) {
            // The response died before its first payload byte (peer closed,
            // injected write fault on the header): re-running cannot
            // duplicate output.
            transient = streamed.ToString();
            break;
          }
          // Payload already started: NEVER silently re-run the query.
          std::fprintf(stderr, "csj_serve: %s\n", streamed.ToString().c_str());
          exit_code = 2;
          break;
        }
        auto trailer = json::Parse(trailer_line);
        DieOnError(trailer.status());
        const json::Value* code = trailer->Find("code");
        const std::string code_name =
            code != nullptr && code->is_string() ? code->AsString() : "";
        if (code_name == "Unavailable" && payload_bytes == 0) {
          if (!iter_out.empty()) std::remove(iter_out.c_str());
          transient = "server unavailable: " + trailer_line;
          break;  // clean trailer: the session can carry the retry
        }
        std::fprintf(stderr, "%s\n", trailer_line.c_str());
        exit_code = code_name.empty() ? 2 : ExitCodeFor(code_name);
        if (exit_code != 0 && !iter_out.empty() && repeat > 1) {
          // Keep the per-iteration file set comparable: under --repeat a
          // file exists iff its response completed OK.
          std::remove(iter_out.c_str());
        }
      } while (false);

      if (exit_code == 0) {
        if (retry.retries() > 0) {
          std::fprintf(stderr, "csj_serve: recovered after %d retries\n",
                       retry.retries());
        }
        break;  // iteration answered OK; next --repeat round
      }
      if (exit_code > 0) {
        drop_connection();
        return exit_code;
      }
      if (!retry.BackoffBeforeRetry()) {
        std::fprintf(stderr, "csj_serve: %s (gave up after %d retries)\n",
                     transient.c_str(), retry.retries());
        drop_connection();
        return 2;
      }
    }
  }
  drop_connection();
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: csj_serve <serve|query> [--flag value ...]\n"
               "see the header comment of tools/csj_serve.cc and "
               "docs/SERVING.md\n");
  return 2;
}

int Main(int argc, char** argv) {
  // A consumer or client hanging up must surface as EPIPE, not kill the
  // process (the daemon streams to sockets; the client streams to pipes).
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "serve") return CmdServe(flags);
  if (command == "query") return CmdQuery(flags);
  return Usage();
}

}  // namespace
}  // namespace csj::serve_tool

int main(int argc, char** argv) { return csj::serve_tool::Main(argc, argv); }

/// \file
/// Compact similarity join in a *general metric space*: near-duplicate
/// detection over strings under edit distance. The paper (Section VII)
/// notes the algorithms apply unchanged to metric data — the only
/// requirement is the inclusion property — and this example exercises the
/// metric layer end to end: a GenericMTree over strings, the ball-group
/// compact join, and lossless verification.
///
/// Scenario: a customer table polluted with misspelled duplicates (a classic
/// record-linkage task). The similarity join with eps = 2 edits links every
/// duplicate cluster; the compact join reports each cluster once.
///
/// Run:  ./build/examples/string_dedup

#include <cstdio>
#include <string>
#include <vector>

#include "core/expand.h"
#include "core/sink.h"
#include "metric/edit_distance.h"
#include "metric/generic_mtree.h"
#include "metric/metric_join.h"
#include "util/format.h"
#include "util/random.h"

namespace {

using namespace csj;

std::string Mutate(const std::string& name, Rng& rng) {
  std::string out = name;
  const int kind = static_cast<int>(rng.UniformInt(uint64_t{3}));
  const size_t pos = rng.UniformInt(out.size());
  if (kind == 0) {
    out[pos] = static_cast<char>('a' + rng.UniformInt(uint64_t{26}));
  } else if (kind == 1) {
    out.insert(out.begin() + static_cast<long>(pos),
               static_cast<char>('a' + rng.UniformInt(uint64_t{26})));
  } else if (out.size() > 3) {
    out.erase(out.begin() + static_cast<long>(pos));
  }
  return out;
}

int Main() {
  // Build a synthetic customer table: 400 base names, each with 1-6
  // misspelled copies.
  const char* kFirst[] = {"johannes", "maria",  "giuseppe", "francesca",
                          "wolfgang", "ingrid", "henrique", "margarida",
                          "aleksandr", "tatiana", "matthias", "annelise"};
  const char* kLast[] = {"schneider", "lindgren", "castellano", "ferreira",
                         "kowalski",  "petrov",   "johansson",  "martinelli",
                         "fernandes", "novak",    "keller",     "santos"};
  Rng rng(2008);
  std::vector<std::string> names;
  std::vector<int> truth;  // ground-truth cluster of each record
  int cluster = 0;
  for (int base = 0; base < 400; ++base) {
    const std::string name =
        std::string(kFirst[rng.UniformInt(uint64_t{12})]) + " " +
        kLast[rng.UniformInt(uint64_t{12})] +
        StrFormat("%02llu",
                  static_cast<unsigned long long>(rng.UniformInt(uint64_t{100})));
    const int copies = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    for (int c = 0; c < copies; ++c) {
      std::string variant = name;
      const int typos = static_cast<int>(rng.UniformInt(uint64_t{3}));
      for (int t = 0; t < typos; ++t) variant = Mutate(variant, rng);
      names.push_back(variant);
      truth.push_back(cluster);
    }
    ++cluster;
  }

  GenericMTree<std::string, EditDistanceMetric> tree;
  for (size_t i = 0; i < names.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), names[i]);
  }
  std::printf("customer table: %s records (%d true identities)\n",
              WithThousands(names.size()).c_str(), cluster);

  JoinOptions options;
  options.epsilon = 2.0;  // up to 2 edits apart counts as "same person"
  options.window_size = 10;

  MemorySink standard(IdWidthFor(names.size()));
  const JoinStats ssj = MetricStandardJoin(tree, options, &standard);
  MemorySink compact(IdWidthFor(names.size()));
  const JoinStats csj = MetricCompactJoin(tree, options, &compact);

  std::printf("standard join: %s links, %s (%s)\n",
              WithThousands(ssj.links).c_str(),
              HumanBytes(ssj.output_bytes).c_str(),
              HumanDuration(ssj.elapsed_seconds).c_str());
  std::printf("compact join:  %s links + %s groups, %s (%s), "
              "%s early stops\n",
              WithThousands(csj.links).c_str(),
              WithThousands(csj.groups).c_str(),
              HumanBytes(csj.output_bytes).c_str(),
              HumanDuration(csj.elapsed_seconds).c_str(),
              WithThousands(csj.early_stops).c_str());

  // Lossless check: both joins imply the same duplicate pairs.
  const auto report =
      CompareLinkSets(ExpandSelfJoin(compact), ExpandSelfJoin(standard));
  std::printf("lossless check: %s\n", report.ToString().c_str());

  // Duplicate-cluster quality: what fraction of group co-members really are
  // the same identity?
  uint64_t same = 0, total = 0;
  for (const auto& group : compact.groups()) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        ++total;
        same += truth[group[i]] == truth[group[j]];
      }
    }
  }
  if (total > 0) {
    std::printf("group precision vs ground truth: %.1f%% of in-group pairs "
                "are true duplicates\n",
                100.0 * static_cast<double>(same) /
                    static_cast<double>(total));
  }
  // A few sample groups.
  std::printf("\nsample duplicate clusters found:\n");
  int shown = 0;
  for (const auto& group : compact.groups()) {
    if (group.size() < 3 || shown >= 3) continue;
    std::printf("  {");
    for (size_t i = 0; i < group.size() && i < 4; ++i) {
      std::printf(i ? ", \"%s\"" : "\"%s\"", names[group[i]].c_str());
    }
    if (group.size() > 4) std::printf(", ...");
    std::printf("}\n");
    ++shown;
  }
  return report.lossless() ? 0 : 1;
}

}  // namespace

int main() { return Main(); }

/// \file
/// Spatial join (Section IV-D): joining two *different* datasets stored in
/// two trees. GIS scenario: match road-network points against points of
/// interest to find every road vertex within walking distance of a POI —
/// a classic distance join whose output explodes in dense downtowns.
///
/// Run:  ./build/examples/spatial_join

#include <cstdio>
#include <functional>

#include "core/brute.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/roadnet.h"
#include "index/rstar_tree.h"
#include "util/format.h"

namespace {

using namespace csj;

int Main() {
  // Dataset A: a road network. Dataset B: points of interest, concentrated
  // in the same urban areas (generated as a different network draw, which
  // shares the city structure statistics).
  RoadNetOptions roads;
  roads.num_points = 20000;
  roads.seed = 11;
  const auto set_a = ToEntries(GenerateRoadNetwork(roads));

  RoadNetOptions pois;
  pois.num_points = 4000;
  pois.seed = 12;
  pois.urban_fraction = 0.8;  // POIs cluster downtown
  // Disjoint id space: POI ids start after the road ids.
  const auto set_b =
      ToEntries(GenerateRoadNetwork(pois), static_cast<PointId>(set_a.size()));

  RStarTree<2> roads_tree, poi_tree;
  for (const auto& e : set_a) roads_tree.Insert(e.id, e.point);
  for (const auto& e : set_b) poi_tree.Insert(e.id, e.point);

  JoinOptions options;
  options.epsilon = 0.02;  // "walking distance" in unit-square coordinates
  const int width = IdWidthFor(set_a.size() + set_b.size());

  std::printf("spatial join: %s road points x %s POIs, eps = %g\n",
              WithThousands(set_a.size()).c_str(),
              WithThousands(set_b.size()).c_str(), options.epsilon);

  MemorySink standard(width);
  const JoinStats ssj = StandardSpatialJoin(roads_tree, poi_tree, options,
                                            &standard);
  std::printf("standard spatial join: %s links, %s (%.2fs)\n",
              WithThousands(ssj.links).c_str(),
              HumanBytes(standard.bytes()).c_str(), ssj.elapsed_seconds);

  MemorySink compact(width);
  const JoinStats csj = CompactSpatialJoin(roads_tree, poi_tree, options,
                                           &compact);
  std::printf("compact spatial join: %s groups + %s links, %s (%.2fs), "
              "%s dual early stops\n",
              WithThousands(csj.groups).c_str(),
              WithThousands(csj.links).c_str(),
              HumanBytes(compact.bytes()).c_str(), csj.elapsed_seconds,
              WithThousands(csj.early_stops).c_str());

  // Verify the compact output is lossless for the cross join.
  const auto is_road = [&](PointId id) { return id < set_a.size(); };
  const auto reference = BruteForceSpatialJoin(set_a, set_b, options.epsilon);
  const auto report = CompareLinkSets(
      ExpandSpatialJoin(compact, std::function<bool(PointId)>(is_road)),
      reference);
  std::printf("lossless check vs brute force (%s cross links): %s\n",
              WithThousands(reference.size()).c_str(),
              report.ToString().c_str());

  // A concrete downstream use: per-POI road coverage from the compact form.
  // Count road partners of each POI without expanding everything: a group
  // with r road members and p POI members adds r to each of those p POIs.
  std::vector<uint32_t> coverage(set_b.size(), 0);
  auto poi_index = [&](PointId id) { return id - set_a.size(); };
  for (const auto& group : compact.groups()) {
    uint32_t road_members = 0;
    for (PointId id : group) road_members += is_road(id);
    for (PointId id : group) {
      if (!is_road(id)) coverage[poi_index(id)] += road_members;
    }
  }
  for (const auto& [a, b] : compact.links()) {
    const PointId poi = is_road(a) ? b : a;
    if (!is_road(poi)) ++coverage[poi_index(poi)];
  }
  uint64_t reachable = 0, best = 0;
  for (uint32_t c : coverage) {
    reachable += c > 0;
    best = std::max<uint64_t>(best, c);
  }
  std::printf("coverage analysis straight off the compact form: %s of %s "
              "POIs touch the road network; densest POI sees %s road "
              "vertices.\n",
              WithThousands(reachable).c_str(),
              WithThousands(set_b.size()).c_str(),
              WithThousands(best).c_str());
  return report.lossless() ? 0 : 1;
}

}  // namespace

int main() { return Main(); }

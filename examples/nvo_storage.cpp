/// \file
/// The NVO storage scenario from the paper's introduction: an observatory
/// server must hold similarity-join results for days until the astronomer
/// retrieves them, so results should be as small as possible — and still be
/// exactly recoverable.
///
/// This example runs a join over a dense sky region, persists both the
/// standard and the compact output to disk in the paper's text format,
/// compares file sizes, then *re-loads* the compact file and expands it to
/// prove the server can reproduce every individual link on demand.
///
/// Run:  ./build/examples/nvo_storage

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/output_reader.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/rstar_tree.h"
#include "util/format.h"

namespace {

using namespace csj;

int Main() {
  // A dense "sky survey tile": 30K sources clustered along a filament.
  const auto points = GenerateGaussianClusters<2>(30000, 20, 0.008, 4242);
  std::vector<Entry<2>> entries = ToEntries(points);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  JoinOptions options;
  options.epsilon = 0.01;  // cross-match radius
  const int width = IdWidthFor(entries.size());
  const std::string ssj_path = "/tmp/nvo_standard_result.txt";
  const std::string csj_path = "/tmp/nvo_compact_result.txt";

  std::printf("cross-match query: %s sources, radius %g\n",
              WithThousands(entries.size()).c_str(), options.epsilon);

  // The server answers the query twice: standard and compact.
  {
    FileSink sink(width, ssj_path);
    const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
    if (!sink.Finish().ok()) return 1;
    std::printf("standard result: %s links -> %s on disk (%.2fs)\n",
                WithThousands(stats.links).c_str(),
                HumanBytes(sink.bytes()).c_str(), stats.elapsed_seconds);
  }
  uint64_t compact_bytes = 0;
  {
    FileSink sink(width, csj_path);
    const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
    if (!sink.Finish().ok()) return 1;
    compact_bytes = sink.bytes();
    std::printf("compact result:  %s groups + %s links -> %s on disk "
                "(%.2fs)\n",
                WithThousands(stats.groups).c_str(),
                WithThousands(stats.links).c_str(),
                HumanBytes(sink.bytes()).c_str(), stats.elapsed_seconds);
  }

  // Days later the astronomer retrieves the result: the server re-reads the
  // compact file and expands it.
  auto stored = ReadJoinOutput(csj_path);
  if (!stored.ok()) {
    std::fprintf(stderr, "failed to re-read %s: %s\n", csj_path.c_str(),
                 stored.status().ToString().c_str());
    return 1;
  }
  MemorySink replay(width);
  for (const auto& [a, b] : stored->links) replay.Link(a, b);
  for (const auto& g : stored->groups) replay.Group(g);
  const auto expanded = ExpandSelfJoin(replay);

  const auto reference = BruteForceSelfJoin(entries, options.epsilon);
  const auto report = CompareLinkSets(expanded, reference);
  std::printf("\nexpansion after reload: %s distinct links; %s\n",
              WithThousands(expanded.size()).c_str(),
              report.ToString().c_str());
  const double ratio = reference.empty()
                           ? 1.0
                           : static_cast<double>(compact_bytes) /
                                 (static_cast<double>(reference.size()) *
                                  2.0 * (width + 1));
  std::printf("storage ratio: compact file is %.1f%% of the standard file.\n",
              ratio * 100.0);

  std::remove(ssj_path.c_str());
  std::remove(csj_path.c_str());
  return report.lossless() ? 0 : 1;
}

}  // namespace

int main() { return Main(); }

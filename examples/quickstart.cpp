/// \file
/// Quickstart: builds an index, runs SSJ / N-CSJ / CSJ(10) on the paper's
/// two illustrative examples (Figures 1 and 2) and on a small road-network
/// sample, and shows the compact output really is lossless and smaller.
///
/// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/brute.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/roadnet.h"
#include "index/rstar_tree.h"
#include "util/format.h"

namespace {

using namespace csj;  // example code; a real client would qualify names

void RunFigure2() {
  std::printf("--- Figure 2: integers 1..5 on a line, eps = 3 ---\n");
  RStarOptions tree_options;
  tree_options.max_fanout = 4;
  tree_options.min_fanout = 2;
  RStarTree<1> tree(tree_options);
  std::vector<Entry<1>> entries;
  for (PointId id = 1; id <= 5; ++id) {
    const Point<1> p{{static_cast<double>(id)}};
    tree.Insert(id, p);
    entries.push_back({id, p});
  }

  JoinOptions options;
  options.epsilon = 3.0;

  MemorySink ssj(1);
  StandardSimilarityJoin(tree, options, &ssj);
  std::printf("SSJ emits %llu links (the paper's 9 pairs), %llu bytes\n",
              (unsigned long long)ssj.num_links(),
              (unsigned long long)ssj.bytes());

  MemorySink csj_sink(1);
  CompactSimilarityJoin(tree, options, &csj_sink);
  std::printf("CSJ(10) emits %llu groups, %llu bytes:\n",
              (unsigned long long)csj_sink.num_groups(),
              (unsigned long long)csj_sink.bytes());
  for (const auto& group : csj_sink.groups()) {
    std::printf("  {");
    for (size_t i = 0; i < group.size(); ++i) {
      std::printf(i ? ", %u" : "%u", group[i]);
    }
    std::printf("}\n");
  }

  const auto report = CompareLinkSets(ExpandSelfJoin(csj_sink),
                                      BruteForceSelfJoin(entries, 3.0));
  std::printf("lossless check: %s\n\n", report.ToString().c_str());
}

void RunFigure1() {
  std::printf("--- Figure 1: two clusters and a bridge point ---\n");
  const std::vector<Entry<2>> entries = {
      {1, Point2{{0.10, 0.10}}}, {2, Point2{{0.14, 0.10}}},
      {3, Point2{{0.10, 0.14}}}, {4, Point2{{0.13, 0.13}}},
      {5, Point2{{0.18, 0.16}}}, {6, Point2{{0.60, 0.60}}},
      {7, Point2{{0.63, 0.62}}},
  };
  RStarOptions tree_options;
  tree_options.max_fanout = 4;
  tree_options.min_fanout = 2;
  RStarTree<2> tree(tree_options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  JoinOptions options;
  options.epsilon = 0.07;

  MemorySink ssj(1);
  StandardSimilarityJoin(tree, options, &ssj);
  MemorySink csj_sink(1);
  CompactSimilarityJoin(tree, options, &csj_sink);

  std::printf("SSJ:     %llu links, %llu bytes\n",
              (unsigned long long)ssj.num_links(),
              (unsigned long long)ssj.bytes());
  std::printf("CSJ(10): %llu links + %llu groups, %llu bytes\n",
              (unsigned long long)csj_sink.num_links(),
              (unsigned long long)csj_sink.num_groups(),
              (unsigned long long)csj_sink.bytes());
  for (const auto& group : csj_sink.groups()) {
    std::printf("  group {");
    for (size_t i = 0; i < group.size(); ++i) {
      std::printf(i ? ", %u" : "%u", group[i]);
    }
    std::printf("}\n");
  }
  const auto report = CompareLinkSets(
      ExpandSelfJoin(csj_sink), BruteForceSelfJoin(entries, options.epsilon));
  std::printf("lossless check: %s\n\n", report.ToString().c_str());
}

void RunRoadSample() {
  std::printf("--- 10K road-network points, eps sweep ---\n");
  RoadNetOptions net;
  net.num_points = 10000;
  net.seed = 27;
  const auto entries = ToEntries(GenerateRoadNetwork(net));
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  std::printf("%-8s %-12s %-12s %-12s\n", "eps", "SSJ bytes", "N-CSJ bytes",
              "CSJ(10) bytes");
  for (double eps : {0.005, 0.02, 0.08}) {
    JoinOptions options;
    options.epsilon = eps;
    CountingSink ssj(IdWidthFor(entries.size()));
    StandardSimilarityJoin(tree, options, &ssj);
    CountingSink ncsj(IdWidthFor(entries.size()));
    NaiveCompactJoin(tree, options, &ncsj);
    CountingSink csj_sink(IdWidthFor(entries.size()));
    CompactSimilarityJoin(tree, options, &csj_sink);
    std::printf("%-8g %-12llu %-12llu %-12llu\n", eps,
                (unsigned long long)ssj.bytes(),
                (unsigned long long)ncsj.bytes(),
                (unsigned long long)csj_sink.bytes());
  }
}

}  // namespace

int main() {
  RunFigure2();
  RunFigure1();
  RunRoadSample();
  std::printf("\nquickstart done.\n");
  return 0;
}

/// \file
/// Outlier mining on compact join output (the paper's second motivating
/// task): "we would expect outliers to be separate from large groups of
/// data, so the focus should be on the small groups returned by the compact
/// similarity join".
///
/// Scenario (astrophysics flavor): a synthetic galaxy catalog of dense
/// clusters plus a handful of injected *isolated close pairs* — unusual
/// pairs a scientist would want surfaced (e.g. candidate interacting
/// galaxies). A standard join buries them in millions of intra-cluster
/// links; the compact join returns big groups for the clusters and tiny
/// groups for the outlier pairs, so scanning groups by size finds the
/// needles immediately.
///
/// Run:  ./build/examples/outlier_mining

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/rstar_tree.h"
#include "util/format.h"
#include "util/random.h"

namespace {

using namespace csj;

int Main() {
  // Galaxy catalog: 20K points in 8 tight clusters...
  const size_t kClustered = 20000;
  auto points = GenerateGaussianClusters<2>(kClustered, 8, 0.01, 2026);

  // ...plus 6 injected isolated pairs in the empty space between clusters.
  Rng rng(7);
  std::vector<std::pair<PointId, PointId>> injected;
  for (int i = 0; i < 6; ++i) {
    while (true) {
      const Point2 spot{{rng.UniformDouble(0.05, 0.95),
                         rng.UniformDouble(0.05, 0.95)}};
      // Keep the spot far from every existing point so the pair is isolated.
      bool isolated = true;
      for (size_t j = 0; j < points.size(); j += 7) {
        if (Distance(spot, points[j]) < 0.08) {
          isolated = false;
          break;
        }
      }
      if (!isolated) continue;
      const PointId a = static_cast<PointId>(points.size());
      points.push_back(spot);
      points.push_back(Point2{{spot[0] + 0.002, spot[1] + 0.001}});
      injected.push_back({a, a + 1});
      break;
    }
  }

  RStarTree<2> tree;
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }

  JoinOptions options;
  options.epsilon = 0.01;
  MemorySink sink(IdWidthFor(points.size()));
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);

  std::printf("catalog: %s points, eps = %g\n",
              WithThousands(points.size()).c_str(), options.epsilon);
  std::printf("compact join: %s groups + %s links, %s of output (vs ~%s links "
              "for the standard join)\n",
              WithThousands(stats.groups).c_str(),
              WithThousands(stats.links).c_str(),
              HumanBytes(stats.output_bytes).c_str(),
              WithThousands(stats.ImpliedLinkUpperBound()).c_str());

  // The pre-sort the paper describes: small groups are the outlier
  // candidates; big groups are bulk structure we can skip entirely. A small
  // group on the *fringe of a cluster* is not unusual though, so each
  // candidate gets one cheap isolation probe: how many catalog points live
  // within a few eps of it? An injected isolated pair sees only itself.
  std::vector<std::vector<PointId>> candidates;
  size_t small_groups = 0, skipped_members = 0, largest = 0;
  for (const auto& group : sink.groups()) {
    largest = std::max(largest, group.size());
    if (group.size() > 3) {
      skipped_members += group.size();
      continue;  // bulk structure: not outlier material
    }
    ++small_groups;
    uint64_t neighborhood = 0;
    for (PointId id : group) {
      neighborhood += tree.RangeCount(points[id], 4 * options.epsilon);
    }
    // Every member counts itself and its partners; a fully isolated group
    // of k sees exactly k per member.
    if (neighborhood <= group.size() * group.size()) {
      candidates.push_back(group);
    }
  }
  for (const auto& [a, b] : sink.links()) {
    const uint64_t neighborhood =
        tree.RangeCount(points[a], 4 * options.epsilon) +
        tree.RangeCount(points[b], 4 * options.epsilon);
    if (neighborhood <= 4) candidates.push_back({a, b});
  }

  std::printf("\npre-sort from the compact form: %s small groups to probe "
              "(%s points of bulk structure skipped without expansion)\n",
              WithThousands(small_groups).c_str(),
              WithThousands(skipped_members).c_str());

  std::printf("isolated candidates after the neighborhood probe:\n");
  std::set<std::pair<PointId, PointId>> found;
  for (const auto& members : candidates) {
    bool is_injected = false;
    for (const auto& [a, b] : injected) {
      if (std::find(members.begin(), members.end(), a) != members.end() &&
          std::find(members.begin(), members.end(), b) != members.end()) {
        is_injected = true;
        found.insert({a, b});
      }
    }
    std::printf("  {");
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf(i ? ", %u" : "%u", members[i]);
    }
    std::printf("}%s\n", is_injected ? "   <-- injected unusual pair" : "");
  }

  std::printf("\nrecovered %zu of %zu injected unusual pairs.\n", found.size(),
              injected.size());
  std::printf("for contrast, the largest (boring) group has %zu members — a "
              "dense cluster the standard join would have reported as ~%s "
              "separate links.\n",
              largest, WithThousands(largest * (largest - 1) / 2).c_str());
  return found.size() == injected.size() ? 0 : 1;
}

}  // namespace

int main() { return Main(); }

/// \file
/// End-to-end astrophysics pipeline — the paper's motivating domain, with
/// every analysis layer of this library in one flow:
///
///   1. synthesize a hierarchically-clustered galaxy catalog
///      (Soneira-Peebles model, the classic power-law-correlated sky);
///   2. estimate its intrinsic (fractal) dimension D2 and pick a
///      cross-match radius from the k-distance distribution;
///   3. *predict* the join output size from D2 before running anything —
///      deciding whether the compact representation is needed;
///   4. run CSJ(10), verify losslessness, and report the compaction;
///   5. mine the result: large groups = clusters; isolated small groups =
///      candidate interacting pairs worth telescope time.
///
/// Run:  ./build/examples/astro_catalog

#include <cstdio>
#include <set>

#include "analysis/epsilon.h"
#include "analysis/fractal.h"
#include "core/brute.h"
#include "core/expand.h"
#include "core/output_stats.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/rstar_tree.h"
#include "util/format.h"

namespace {

using namespace csj;

int Main() {
  // 1. The sky: a 2-D projected galaxy catalog with power-law clustering.
  SoneiraPeeblesOptions sky;
  sky.levels = 8;
  sky.eta = 4;
  sky.lambda = 2.0;
  sky.num_points = 30000;
  sky.seed = 1987;
  auto points = GenerateSoneiraPeebles<2>(sky);
  // Drop in a few isolated close pairs — the "unusual systems" a surveyor
  // hopes to find (far from all clusters, within cross-match range of each
  // other).
  const Point2 kInjected[] = {{{0.02, 0.97}}, {{0.97, 0.03}}, {{0.98, 0.98}}};
  std::vector<std::pair<PointId, PointId>> injected;
  for (const auto& spot : kInjected) {
    injected.push_back({static_cast<PointId>(points.size()),
                        static_cast<PointId>(points.size() + 1)});
    points.push_back(spot);
    points.push_back(Point2{{spot[0] + 0.001, spot[1] + 0.001}});
  }
  const auto entries = ToEntries(points);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  std::printf("catalog: %s galaxies (Soneira-Peebles eta=%d lambda=%.1f)\n",
              WithThousands(points.size()).c_str(), sky.eta, sky.lambda);

  // 2. Intrinsic dimension + radius selection.
  const PowerLawFit d2 = CorrelationDimension(points);
  std::printf("correlation dimension D2 = %.2f (R^2=%.3f) — theory for this "
              "model: log(eta)/log(lambda) = %.2f\n",
              d2.slope, d2.r_squared,
              std::log(static_cast<double>(sky.eta)) / std::log(sky.lambda));
  const auto radius = SuggestEpsilon(tree, entries, /*k=*/8, 0.7);
  std::printf("k-distance scan (k=8): median %.4g, p90 %.4g -> cross-match "
              "radius eps = %.4g\n",
              radius.median_kdist, radius.p90_kdist, radius.epsilon);

  // 3. Predict the output before running.
  const uint64_t predicted =
      PredictLinkCount(d2, entries.size(), radius.epsilon);
  std::printf("D2-predicted links at eps: ~%s (~%s as a plain listing) -> "
              "%s\n",
              WithThousands(predicted).c_str(),
              HumanBytes(predicted * 2 *
                         static_cast<uint64_t>(IdWidthFor(entries.size()) + 1))
                  .c_str(),
              predicted > 1000000 ? "output explosion likely; use CSJ"
                                  : "modest output");

  // 4. The compact join, verified.
  JoinOptions options;
  options.epsilon = radius.epsilon;
  options.window_size = 10;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  const OutputStats output = ComputeOutputStats(sink);
  std::printf("\nCSJ(10) in %s: %s",
              HumanDuration(stats.elapsed_seconds).c_str(),
              output.ToString().c_str());
  std::printf("actual vs predicted links: %s vs %s (%.0f%%)\n",
              WithThousands(output.implied_links).c_str(),
              WithThousands(predicted).c_str(),
              100.0 * static_cast<double>(predicted) /
                  static_cast<double>(std::max<uint64_t>(1, output.implied_links)));
  const auto report = CompareLinkSets(
      ExpandSelfJoin(sink), BruteForceSelfJoin(entries, options.epsilon));
  std::printf("lossless check: %s\n", report.ToString().c_str());

  // 5. Mining: clusters and candidate interacting pairs.
  size_t clusters = 0;
  std::vector<const std::vector<PointId>*> candidates;
  for (const auto& group : sink.groups()) {
    if (group.size() >= 16) {
      ++clusters;
    } else if (group.size() == 2) {
      // Isolation probe: a pair with no third galaxy nearby.
      const uint64_t neighborhood =
          tree.RangeCount(points[group[0]], 3 * options.epsilon);
      if (neighborhood <= 2) candidates.push_back(&group);
    }
  }
  std::printf("\nmining the compact output: %zu rich groups (galaxy "
              "clusters/groups), %zu isolated close pairs (candidate "
              "interacting systems)\n",
              clusters, candidates.size());
  std::set<std::pair<PointId, PointId>> found;
  for (size_t i = 0; i < candidates.size() && i < 8; ++i) {
    const auto& pair = *candidates[i];
    bool is_injected = false;
    for (const auto& [a, b] : injected) {
      if ((pair[0] == a && pair[1] == b) || (pair[0] == b && pair[1] == a)) {
        is_injected = true;
        found.insert({a, b});
      }
    }
    std::printf("  candidate pair {%u, %u}: separation %.4g%s\n", pair[0],
                pair[1], Distance(points[pair[0]], points[pair[1]]),
                is_injected ? "   <-- injected unusual system" : "");
  }
  std::printf("recovered %zu of %zu injected systems.\n", found.size(),
              injected.size());
  return report.lossless() && found.size() == injected.size() ? 0 : 1;
}

}  // namespace

int main() { return Main(); }

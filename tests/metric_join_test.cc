#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/sink.h"
#include "metric/edit_distance.h"
#include "metric/generic_mtree.h"
#include "metric/metric_join.h"
#include "util/random.h"

namespace csj {
namespace {

// --- Edit distance ---------------------------------------------------------------

TEST(EditDistanceTest, BasicCases) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "xy"), 2);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("same", "same"), 0);
}

TEST(EditDistanceTest, MetricAxiomsOnRandomStrings) {
  Rng rng(3);
  auto random_string = [&] {
    std::string s;
    const size_t len = rng.UniformInt(uint64_t{12});
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(uint64_t{4})));
    }
    return s;
  };
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = random_string();
    const std::string b = random_string();
    const std::string c = random_string();
    const int ab = EditDistance(a, b);
    EXPECT_EQ(ab, EditDistance(b, a));
    EXPECT_EQ(EditDistance(a, a), 0);
    EXPECT_LE(ab, EditDistance(a, c) + EditDistance(c, b));
    EXPECT_GE(ab, std::abs(static_cast<int>(a.size()) -
                           static_cast<int>(b.size())));
  }
}

TEST(EditDistanceTest, CappedAgreesBelowCapAndSaturatesAbove) {
  Rng rng(7);
  auto random_string = [&] {
    std::string s;
    const size_t len = 1 + rng.UniformInt(uint64_t{15});
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(uint64_t{3})));
    }
    return s;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const std::string a = random_string();
    const std::string b = random_string();
    const int exact = EditDistance(a, b);
    for (int cap : {0, 1, 2, 3, 5, 20}) {
      const int capped = EditDistanceCapped(a, b, cap);
      if (exact <= cap) {
        EXPECT_EQ(capped, exact) << a << " vs " << b << " cap " << cap;
      } else {
        EXPECT_EQ(capped, cap + 1) << a << " vs " << b << " cap " << cap;
      }
    }
  }
}

// --- Generic M-tree -----------------------------------------------------------------

std::vector<std::string> RandomWords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> words(n);
  for (auto& w : words) {
    const size_t len = 3 + rng.UniformInt(uint64_t{8});
    for (size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.UniformInt(uint64_t{6})));
    }
  }
  return words;
}

TEST(GenericMTreeTest, InvariantsAndRangeQueries) {
  const auto words = RandomWords(600, 11);
  GenericMTree<std::string, EditDistanceMetric> tree;
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), words[i]);
    if (i % 151 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), words.size());

  EditDistanceMetric metric;
  Rng rng(13);
  for (int q = 0; q < 20; ++q) {
    const std::string& query = words[rng.UniformInt(words.size())];
    const double radius = static_cast<double>(rng.UniformInt(uint64_t{4}));
    std::set<PointId> expected;
    for (size_t i = 0; i < words.size(); ++i) {
      if (metric(query, words[i]) <= radius) {
        expected.insert(static_cast<PointId>(i));
      }
    }
    std::set<PointId> got;
    for (const auto& e : tree.RangeQuery(query, radius)) got.insert(e.id);
    EXPECT_EQ(got, expected) << "query=" << query << " r=" << radius;
  }
}

// --- Metric joins -----------------------------------------------------------------

std::vector<Link> BruteStringJoin(const std::vector<std::string>& words,
                                  double eps) {
  EditDistanceMetric metric;
  std::vector<Link> links;
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = i + 1; j < words.size(); ++j) {
      if (metric(words[i], words[j]) <= eps) {
        links.push_back(MakeLink(static_cast<PointId>(i),
                                 static_cast<PointId>(j)));
      }
    }
  }
  std::sort(links.begin(), links.end());
  return links;
}

TEST(MetricJoinTest, StandardMatchesBruteForce) {
  const auto words = RandomWords(400, 17);
  GenericMTree<std::string, EditDistanceMetric> tree;
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), words[i]);
  }
  for (double eps : {1.0, 2.0, 4.0}) {
    JoinOptions options;
    options.epsilon = eps;
    MemorySink sink(3);
    const JoinStats stats = MetricStandardJoin(tree, options, &sink);
    const auto reference = BruteStringJoin(words, eps);
    EXPECT_EQ(stats.links, reference.size()) << "eps=" << eps;
    EXPECT_EQ(ExpandSelfJoin(sink), reference);
  }
}

TEST(MetricJoinTest, CompactJoinsAreLossless) {
  const auto words = RandomWords(400, 19);
  GenericMTree<std::string, EditDistanceMetric> tree;
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), words[i]);
  }
  for (double eps : {1.0, 2.0, 4.0, 8.0}) {
    const auto reference = BruteStringJoin(words, eps);
    for (int variant = 0; variant < 2; ++variant) {
      JoinOptions options;
      options.epsilon = eps;
      MemorySink sink(3);
      if (variant == 0) {
        MetricNaiveCompactJoin(tree, options, &sink);
      } else {
        MetricCompactJoin(tree, options, &sink);
      }
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      EXPECT_TRUE(report.lossless())
          << (variant == 0 ? "N-CSJ" : "CSJ") << " eps=" << eps << ": "
          << report.ToString();
    }
  }
}

TEST(MetricJoinTest, GroupsRespectTheorem2) {
  // Every pair in every emitted group is within eps (the ball guarantee).
  const auto words = RandomWords(300, 23);
  GenericMTree<std::string, EditDistanceMetric> tree;
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), words[i]);
  }
  const double eps = 6.0;
  JoinOptions options;
  options.epsilon = eps;
  MemorySink sink(3);
  MetricCompactJoin(tree, options, &sink);
  EditDistanceMetric metric;
  ASSERT_GT(sink.num_groups(), 0u);
  for (const auto& group : sink.groups()) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        ASSERT_LE(metric(words[group[i]], words[group[j]]), eps);
      }
    }
  }
}

TEST(MetricJoinTest, CompactNeverLargerThanStandard) {
  // Lots of duplicate-ish words to force an output explosion.
  auto words = RandomWords(150, 29);
  Rng rng(31);
  std::vector<std::string> data;
  for (int copy = 0; copy < 4; ++copy) {
    for (const auto& w : words) {
      std::string v = w;
      if (!v.empty() && rng.Bernoulli(0.5)) {
        v[rng.UniformInt(v.size())] =
            static_cast<char>('a' + rng.UniformInt(uint64_t{6}));
      }
      data.push_back(v);
    }
  }
  GenericMTree<std::string, EditDistanceMetric> tree;
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), data[i]);
  }
  for (double eps : {2.0, 4.0}) {
    JoinOptions options;
    options.epsilon = eps;
    CountingSink standard(3);
    MetricStandardJoin(tree, options, &standard);
    CountingSink compact(3);
    MetricCompactJoin(tree, options, &compact);
    EXPECT_LE(compact.bytes(), standard.bytes()) << "eps=" << eps;
  }
}

TEST(MetricJoinTest, EuclideanItemsWorkToo) {
  // The metric layer is item-agnostic: plain 2-D points under L2 behave
  // like the vector-space joins.
  struct L2 {
    double operator()(const Point2& a, const Point2& b) const {
      return Distance(a, b);
    }
  };
  Rng rng(37);
  std::vector<Entry<2>> entries;
  GenericMTree<Point2, L2> tree;
  for (PointId i = 0; i < 300; ++i) {
    const Point2 p{{rng.UniformDouble(), rng.UniformDouble()}};
    entries.push_back({i, p});
    tree.Insert(i, p);
  }
  JoinOptions options;
  options.epsilon = 0.08;
  MemorySink sink(3);
  MetricCompactJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

}  // namespace
}  // namespace csj

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace csj {
namespace {

class FailpointTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(CSJ_FAILPOINT("fp.test.disarmed"));
  }
  EXPECT_EQ(failpoint::HitCount("fp.test.disarmed"), 0u);
  EXPECT_TRUE(failpoint::ArmedNames().empty());
}

TEST_F(FailpointTest, AlwaysFiresEveryTime) {
  failpoint::Enable("fp.test.always", failpoint::Spec::Always());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(CSJ_FAILPOINT("fp.test.always"));
  }
  EXPECT_EQ(failpoint::HitCount("fp.test.always"), 10u);
  EXPECT_EQ(failpoint::FireCount("fp.test.always"), 10u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  failpoint::Enable("fp.test.once", failpoint::Spec::Once());
  int fires = 0;
  for (int i = 0; i < 20; ++i) {
    fires += CSJ_FAILPOINT("fp.test.once") ? 1 : 0;
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(failpoint::FireCount("fp.test.once"), 1u);
}

TEST_F(FailpointTest, EveryNthFiresOnSchedule) {
  failpoint::Enable("fp.test.nth", failpoint::Spec::EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(CSJ_FAILPOINT("fp.test.nth"));
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true, false, false, true};
  EXPECT_EQ(fired, expected);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    failpoint::DisableAll();
    failpoint::Enable("fp.test.prob", failpoint::Spec::Probability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(CSJ_FAILPOINT("fp.test.prob"));
    return fired;
  };
  EXPECT_EQ(run(42), run(42));  // reproducible
  EXPECT_NE(run(42), run(43));  // and seed-dependent
  // Sanity: p=0.5 over 64 draws fires somewhere strictly between 0 and 64.
  const auto fired = run(42);
  int count = 0;
  for (bool f : fired) count += f ? 1 : 0;
  EXPECT_GT(count, 0);
  EXPECT_LT(count, 64);
}

TEST_F(FailpointTest, ProbabilityExtremes) {
  failpoint::Enable("fp.test.p0", failpoint::Spec::Probability(0.0));
  failpoint::Enable("fp.test.p1", failpoint::Spec::Probability(1.0));
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(CSJ_FAILPOINT("fp.test.p0"));
    EXPECT_TRUE(CSJ_FAILPOINT("fp.test.p1"));
  }
}

TEST_F(FailpointTest, DisableStopsFiring) {
  failpoint::Enable("fp.test.disable", failpoint::Spec::Always());
  EXPECT_TRUE(CSJ_FAILPOINT("fp.test.disable"));
  failpoint::Disable("fp.test.disable");
  EXPECT_FALSE(CSJ_FAILPOINT("fp.test.disable"));
  EXPECT_EQ(failpoint::HitCount("fp.test.disable"), 0u);  // counters reset
}

TEST_F(FailpointTest, ReEnableResetsCountersAndTrigger) {
  failpoint::Enable("fp.test.rearm", failpoint::Spec::Once());
  EXPECT_TRUE(CSJ_FAILPOINT("fp.test.rearm"));
  EXPECT_FALSE(CSJ_FAILPOINT("fp.test.rearm"));
  failpoint::Enable("fp.test.rearm", failpoint::Spec::Once());
  EXPECT_TRUE(CSJ_FAILPOINT("fp.test.rearm"));  // fires again after re-arm
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint scoped("fp.test.scoped",
                                      failpoint::Spec::Always());
    EXPECT_TRUE(CSJ_FAILPOINT("fp.test.scoped"));
  }
  EXPECT_FALSE(CSJ_FAILPOINT("fp.test.scoped"));
  EXPECT_TRUE(failpoint::ArmedNames().empty());
}

TEST_F(FailpointTest, ConfigureParsesMultipleItems) {
  ASSERT_TRUE(
      failpoint::Configure("fp.cfg.a=always;fp.cfg.b=every:2;fp.cfg.c=prob:0.25:7")
          .ok());
  const auto names = failpoint::ArmedNames();
  EXPECT_EQ(names,
            (std::vector<std::string>{"fp.cfg.a", "fp.cfg.b", "fp.cfg.c"}));
  EXPECT_TRUE(CSJ_FAILPOINT("fp.cfg.a"));
  EXPECT_FALSE(CSJ_FAILPOINT("fp.cfg.b"));
  EXPECT_TRUE(CSJ_FAILPOINT("fp.cfg.b"));
}

TEST_F(FailpointTest, ConfigureOffDisarms) {
  failpoint::Enable("fp.cfg.off", failpoint::Spec::Always());
  ASSERT_TRUE(failpoint::Configure("fp.cfg.off=off").ok());
  EXPECT_FALSE(CSJ_FAILPOINT("fp.cfg.off"));
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_FALSE(failpoint::Configure("missing-equals").ok());
  EXPECT_FALSE(failpoint::Configure("fp.bad=unknown-trigger").ok());
  EXPECT_FALSE(failpoint::Configure("fp.bad=every:0").ok());
  EXPECT_FALSE(failpoint::Configure("fp.bad=every:x").ok());
  EXPECT_FALSE(failpoint::Configure("fp.bad=prob:1.5").ok());
  EXPECT_FALSE(failpoint::Configure("fp.bad=prob:0.5:zz").ok());
  EXPECT_FALSE(failpoint::Configure("=always").ok());
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  failpoint::Enable("fp.test.mt", failpoint::Spec::EveryNth(2));
  std::atomic<int> fires{0};
  std::vector<std::thread> pool;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 1000;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if (CSJ_FAILPOINT("fp.test.mt")) fires.fetch_add(1);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(failpoint::HitCount("fp.test.mt"),
            static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(fires.load(),
            kThreads * kItersPerThread / 2);  // exactly every 2nd evaluation
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <vector>

#include "core/group.h"
#include "core/join_stats.h"
#include "core/sink.h"
#include "util/random.h"

namespace csj {
namespace {

TEST(GroupTest, FromLinkHasBothMembers) {
  Group<2> group(1, Point2{{0.0, 0.0}}, 2, Point2{{0.01, 0.0}});
  EXPECT_EQ(group.size(), 2u);
  EXPECT_LE(group.box().Diagonal(), 0.011);
}

TEST(GroupTest, TryAddLinkCommitsWhenWithinEps) {
  Group<2> group(1, Point2{{0.0, 0.0}}, 2, Point2{{0.02, 0.0}});
  const double eps = 0.1;
  EXPECT_TRUE(group.TryAddLink(eps * eps, 2, Point2{{0.02, 0.0}}, 3,
                               Point2{{0.04, 0.0}}));
  EXPECT_EQ(group.size(), 3u);  // id 2 deduplicated
  EXPECT_EQ(group.members(), (std::vector<PointId>{1, 2, 3}));
}

TEST(GroupTest, TryAddLinkRollsBackOnFailure) {
  Group<2> group(1, Point2{{0.0, 0.0}}, 2, Point2{{0.02, 0.0}});
  const Box<2> before = group.box();
  const double eps = 0.05;
  // Extending to (0.2, 0) would blow the diagonal past eps.
  EXPECT_FALSE(group.TryAddLink(eps * eps, 2, Point2{{0.02, 0.0}}, 9,
                                Point2{{0.2, 0.0}}));
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group.box(), before);  // MBR extension undone
}

TEST(GroupTest, FromSubtreeKeepsBox) {
  Box<2> box(Point2{{0.0, 0.0}}, Point2{{0.03, 0.04}});
  Group<2> group({5, 6, 7}, box);
  EXPECT_EQ(group.size(), 3u);
  EXPECT_EQ(group.box(), box);
}

TEST(GroupTest, DedupAcrossManyMerges) {
  Group<2> group(0, Point2{{0.0, 0.0}}, 1, Point2{{0.001, 0.0}});
  const double eps2 = 0.1 * 0.1;
  for (int round = 0; round < 5; ++round) {
    for (PointId id = 0; id < 8; ++id) {
      group.TryAddLink(eps2, 0, Point2{{0.0, 0.0}}, id,
                       Point2{{0.001 * id, 0.0}});
    }
  }
  EXPECT_EQ(group.size(), 8u);
}

class GroupWindowTest : public testing::Test {
 protected:
  GroupWindowTest() : sink_(2), window_(3, /*epsilon=*/0.1, &sink_, &stats_,
                                        /*write_timer=*/nullptr) {}

  MemorySink sink_;
  JoinStats stats_;
  GroupWindow<2> window_;
};

TEST_F(GroupWindowTest, EvictsOldestBeyondCapacity) {
  // Four far-apart links -> four groups; capacity 3 evicts the first.
  for (int i = 0; i < 4; ++i) {
    const double x = i * 10.0;
    window_.MergeLink(static_cast<PointId>(2 * i), Point2{{x, 0.0}},
                      static_cast<PointId>(2 * i + 1), Point2{{x + 0.01, 0.0}},
                      /*promote_on_merge=*/false);
  }
  EXPECT_EQ(window_.live_groups(), 3u);
  ASSERT_EQ(sink_.groups().size(), 1u);
  EXPECT_EQ(sink_.groups()[0], (std::vector<PointId>{0, 1}));
  window_.Flush();
  EXPECT_EQ(sink_.groups().size(), 4u);
  EXPECT_EQ(window_.live_groups(), 0u);
}

TEST_F(GroupWindowTest, MergesIntoRecentGroup) {
  window_.MergeLink(0, Point2{{0.0, 0.0}}, 1, Point2{{0.01, 0.0}}, false);
  window_.MergeLink(1, Point2{{0.01, 0.0}}, 2, Point2{{0.02, 0.0}}, false);
  EXPECT_EQ(window_.live_groups(), 1u);  // second link merged, not new group
  EXPECT_EQ(stats_.merges, 1u);
  window_.Flush();
  ASSERT_EQ(sink_.groups().size(), 1u);
  EXPECT_EQ(sink_.groups()[0], (std::vector<PointId>{0, 1, 2}));
}

TEST_F(GroupWindowTest, ChecksMostRecentFirst) {
  // Group A spans [0, 0.05]; the next link at [0.12, 0.17] cannot extend A
  // (diagonal 0.17 > 0.1) so it founds group B. The probe link at
  // [0.09, 0.10] fits BOTH (A -> diagonal 0.10, B -> diagonal 0.08);
  // most-recent-first must pick B.
  window_.MergeLink(0, Point2{{0.0, 0.0}}, 1, Point2{{0.05, 0.0}}, false);
  window_.MergeLink(2, Point2{{0.12, 0.0}}, 3, Point2{{0.17, 0.0}}, false);
  EXPECT_EQ(window_.live_groups(), 2u);
  window_.MergeLink(4, Point2{{0.09, 0.0}}, 5, Point2{{0.10, 0.0}}, false);
  EXPECT_EQ(stats_.merges, 1u);
  window_.Flush();
  ASSERT_EQ(sink_.groups().size(), 2u);
  // Creation order: A first, then B (which received the merge).
  EXPECT_EQ(sink_.groups()[0], (std::vector<PointId>{0, 1}));
  EXPECT_EQ(sink_.groups()[1], (std::vector<PointId>{2, 3, 4, 5}));
}

TEST_F(GroupWindowTest, SubtreeGroupsJoinTheWindow) {
  Box<2> box(Point2{{0.0, 0.0}}, Point2{{0.02, 0.02}});
  window_.AddSubtreeGroup({10, 11, 12}, box);
  // A nearby link should merge into the subtree group.
  window_.MergeLink(13, Point2{{0.03, 0.0}}, 14, Point2{{0.03, 0.02}}, false);
  EXPECT_EQ(stats_.merges, 1u);
  window_.Flush();
  ASSERT_EQ(sink_.groups().size(), 1u);
  EXPECT_EQ(sink_.groups()[0].size(), 5u);
}

TEST_F(GroupWindowTest, SingletonSubtreeGroupIgnored) {
  Box<2> box(Point2{{0.0, 0.0}});
  window_.AddSubtreeGroup({42}, box);
  EXPECT_EQ(window_.live_groups(), 0u);
  window_.Flush();
  EXPECT_EQ(sink_.groups().size(), 0u);
}

TEST_F(GroupWindowTest, PromoteOnMergeReordersEviction) {
  // Three groups A, B, C fill the window. A merge into A with promotion
  // moves A to the most-recent slot, so the next new group evicts B.
  window_.MergeLink(0, Point2{{0.0, 0.0}}, 1, Point2{{0.001, 0.0}}, true);
  window_.MergeLink(2, Point2{{10.0, 0.0}}, 3, Point2{{10.001, 0.0}}, true);
  window_.MergeLink(4, Point2{{20.0, 0.0}}, 5, Point2{{20.001, 0.0}}, true);
  // Merge into A (promotes A to most recent).
  window_.MergeLink(0, Point2{{0.0, 0.0}}, 6, Point2{{0.002, 0.0}}, true);
  EXPECT_EQ(stats_.merges, 1u);
  // New far group evicts the oldest, which is now B (ids 2, 3).
  window_.MergeLink(7, Point2{{30.0, 0.0}}, 8, Point2{{30.001, 0.0}}, true);
  ASSERT_EQ(sink_.groups().size(), 1u);
  EXPECT_EQ(sink_.groups()[0], (std::vector<PointId>{2, 3}));
}

TEST_F(GroupWindowTest, ImpliedLinkAccounting) {
  Box<2> box(Point2{{0.0, 0.0}}, Point2{{0.02, 0.02}});
  window_.AddSubtreeGroup({1, 2, 3, 4}, box);  // implies C(4,2)=6 links
  window_.MergeLink(10, Point2{{5.0, 0.0}}, 11, Point2{{5.001, 0.0}}, false);
  window_.Flush();
  EXPECT_EQ(stats_.ImpliedLinkUpperBound(), 6u + 1u);
}


TEST_F(GroupWindowTest, BestFitPicksTightestGroup) {
  // Group A spans [0, 0.05], group B spans [0.12, 0.17] (eps = 0.1). The
  // probe link [0.09, 0.10] fits both; first-fit picks the most recent (B),
  // best-fit must pick B too here (diag 0.08 < 0.10)... so distinguish with
  // a link at [0.05, 0.06]: extending A gives diag 0.06, extending B gives
  // diag 0.12 (> eps, not viable). Then a link at [0.085, 0.095]: A ->
  // 0.095, B -> 0.085; best-fit picks B while first-fit ALSO reaches B
  // first. Use a case where recency and tightness disagree: create B then
  // A', so the most recent is A'.
  window_.MergeLink(0, Point2{{0.12, 0.0}}, 1, Point2{{0.17, 0.0}}, false);
  window_.MergeLink(2, Point2{{0.0, 0.0}}, 3, Point2{{0.05, 0.0}}, false);
  // Probe [0.09, 0.10]: extending the most recent (A' = [0, 0.05]) gives
  // diagonal 0.10 (viable); extending B gives 0.08 (tighter).
  window_.MergeLinkBestFit(4, Point2{{0.09, 0.0}}, 5, Point2{{0.10, 0.0}},
                           false);
  EXPECT_EQ(stats_.merges, 1u);
  window_.Flush();
  ASSERT_EQ(sink_.groups().size(), 2u);
  // B (created first) received the link under best-fit.
  EXPECT_EQ(sink_.groups()[0], (std::vector<PointId>{0, 1, 4, 5}));
  EXPECT_EQ(sink_.groups()[1], (std::vector<PointId>{2, 3}));
}

TEST_F(GroupWindowTest, BestFitFallsBackToNewGroup) {
  window_.MergeLink(0, Point2{{0.0, 0.0}}, 1, Point2{{0.01, 0.0}}, false);
  // A far link fits nothing: best-fit must open a new group.
  window_.MergeLinkBestFit(2, Point2{{5.0, 0.0}}, 3, Point2{{5.01, 0.0}},
                           false);
  EXPECT_EQ(stats_.merges, 0u);
  EXPECT_EQ(window_.live_groups(), 2u);
}

TEST(GroupInvariantTest, WindowGroupsAlwaysWithinEps) {
  // Stochastic invariant check: after any sequence of merges, every live or
  // emitted group has MBR diagonal <= eps (the Theorem 2 machinery).
  Rng rng(2718);
  const double eps = 0.05;
  MemorySink sink(4);
  JoinStats stats;
  GroupWindow<2> window(7, eps, &sink, &stats, nullptr);
  std::vector<Point2> points;
  for (int i = 0; i < 4000; ++i) {
    Point2 a{{rng.UniformDouble(), rng.UniformDouble()}};
    // Partner within eps most of the time, occasionally farther (those
    // links would not be produced by a real join; keep them in range).
    Point2 b{{a[0] + rng.UniformDouble(-eps / 2, eps / 2),
              a[1] + rng.UniformDouble(-eps / 2, eps / 2)}};
    const PointId ia = static_cast<PointId>(points.size());
    points.push_back(a);
    const PointId ib = static_cast<PointId>(points.size());
    points.push_back(b);
    window.MergeLink(ia, a, ib, b, rng.Bernoulli(0.5));
  }
  window.Flush();
  for (const auto& group : sink.groups()) {
    Box<2> box;
    for (PointId id : group) box.Extend(points[id]);
    ASSERT_LE(box.Diagonal(), eps + 1e-12);
  }
}

TEST(GroupWindowDeathTest, ZeroCapacityDies) {
  MemorySink sink(1);
  JoinStats stats;
  EXPECT_DEATH(GroupWindow<2>(0, 0.1, &sink, &stats, nullptr), "capacity");
}

}  // namespace
}  // namespace csj

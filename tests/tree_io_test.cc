#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/output_reader.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "index/tree_io.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --- Tree serialization ---------------------------------------------------------

TEST(TreeIoTest, RoundTripPreservesStructure) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(3000, 21);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  const std::string path = TempPath("tree_roundtrip.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());

  RStarTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.NodeCount(), tree.NodeCount());
  EXPECT_EQ(loaded.Height(), tree.Height());

  // Joins on the loaded tree produce identical output (same structure, same
  // traversal).
  JoinOptions options;
  options.epsilon = 0.03;
  MemorySink a(4), b(4);
  CompactSimilarityJoin(tree, options, &a);
  CompactSimilarityJoin(loaded, options, &b);
  EXPECT_EQ(a.links(), b.links());
  EXPECT_EQ(a.groups(), b.groups());
}

TEST(TreeIoTest, RoundTripAfterRemovals) {
  RTree<2> tree;
  auto entries = RandomEntries<2>(800, 23);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Remove(entries[i].id, entries[i].point));
  }
  const std::string path = TempPath("tree_removed.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.size(), 600u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded.Contains(entries[i].id, entries[i].point), i >= 200);
  }
}

TEST(TreeIoTest, EmptyTreeRoundTrips) {
  RStarTree<2> tree;
  const std::string path = TempPath("tree_empty.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RStarTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST(TreeIoTest, PackedTreeRoundTrips) {
  RStarTree<3> tree;
  PackStr(&tree, RandomEntries<3>(5000, 31));
  const std::string path = TempPath("tree_packed.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RStarTree<3> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.Stats().num_nodes, tree.Stats().num_nodes);
}

TEST(TreeIoTest, LoadIntoNonEmptyTreeFails) {
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.5, 0.5}});
  const std::string path = TempPath("tree_nonempty.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  const Status status = LoadTree(&tree, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(TreeIoTest, FanoutMismatchRejected) {
  RStarOptions small;
  small.max_fanout = 8;
  small.min_fanout = 3;
  RStarTree<2> tree(small);
  tree.Insert(0, Point2{{0.5, 0.5}});
  const std::string path = TempPath("tree_fanout.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RStarTree<2> loaded;  // default fanout 64
  const Status status = LoadTree(&loaded, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, GarbageFileRejected) {
  const std::string path = TempPath("tree_garbage.csjt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a tree", f);
  std::fclose(f);
  RStarTree<2> loaded;
  const Status status = LoadTree(&loaded, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, MissingFileIsNotFound) {
  RStarTree<2> loaded;
  EXPECT_EQ(LoadTree(&loaded, "/no/such/tree.csjt").code(),
            StatusCode::kNotFound);
}

// --- Checksum matrix (CSJTREE2) ---------------------------------------------

std::vector<char> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<char> bytes;
  char chunk[4096];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

/// Saves a small tree and returns the raw v2 file bytes.
std::vector<char> SavedTreeBytes(const std::string& path) {
  RStarTree<2> tree;
  for (const auto& e : RandomEntries<2>(400, 77)) tree.Insert(e.id, e.point);
  EXPECT_TRUE(SaveTree(tree, path).ok());
  return ReadFileBytes(path);
}

TEST(TreeIoTest, TruncationAtAnyOffsetIsDataLoss) {
  const std::string path = TempPath("tree_truncate.csjt");
  const std::vector<char> bytes = SavedTreeBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  // Mid-magic, mid-checksum, mid-header, mid-body, and one byte short: every
  // cut must be reported as clean data loss, never a crash or silent load.
  const size_t cuts[] = {4,  10, 20, bytes.size() / 2, bytes.size() - 1};
  for (const size_t cut : cuts) {
    const std::string cut_path = TempPath("tree_truncate_cut.csjt");
    WriteFileBytes(cut_path,
                   std::vector<char>(bytes.begin(), bytes.begin() + cut));
    RStarTree<2> loaded;
    const Status status = LoadTree(&loaded, cut_path);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "cut at " << cut << ": " << status.ToString();
  }
}

TEST(TreeIoTest, BitFlipAnywhereAfterMagicIsDataLoss) {
  const std::string path = TempPath("tree_bitflip.csjt");
  const std::vector<char> bytes = SavedTreeBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  // Flips in the stored checksum (offset 8..11), the header and the node
  // payload must all fail the CRC check with a descriptive message.
  const size_t flips[] = {8, 12, 17, 30, bytes.size() / 2, bytes.size() - 1};
  for (const size_t offset : flips) {
    std::vector<char> corrupt = bytes;
    corrupt[offset] ^= 0x20;
    const std::string flip_path = TempPath("tree_bitflip_one.csjt");
    WriteFileBytes(flip_path, corrupt);
    RStarTree<2> loaded;
    const Status status = LoadTree(&loaded, flip_path);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "flip at " << offset << ": " << status.ToString();
    EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
        << status.ToString();
  }
}

TEST(TreeIoTest, CorruptMagicIsInvalidArgumentNotDataLoss) {
  const std::string path = TempPath("tree_badmagic.csjt");
  std::vector<char> bytes = SavedTreeBytes(path);
  bytes[0] ^= 0x01;  // no longer CSJTREE1/2
  WriteFileBytes(path, bytes);
  RStarTree<2> loaded;
  EXPECT_EQ(LoadTree(&loaded, path).code(), StatusCode::kInvalidArgument);
}

/// Rewrites a v2 file as the historical un-checksummed v1 format: same body,
/// "CSJTREE1" magic, no CRC word.
std::vector<char> AsV1(const std::vector<char>& v2_bytes) {
  std::vector<char> v1(8 + (v2_bytes.size() - 12));
  std::memcpy(v1.data(), "CSJTREE1", 8);
  std::memcpy(v1.data() + 8, v2_bytes.data() + 12, v2_bytes.size() - 12);
  return v1;
}

TEST(TreeIoTest, VersionOneFilesRemainReadable) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(400, 78);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string v2_path = TempPath("tree_v2.csjt");
  ASSERT_TRUE(SaveTree(tree, v2_path).ok());

  const std::string v1_path = TempPath("tree_v1.csjt");
  WriteFileBytes(v1_path, AsV1(ReadFileBytes(v2_path)));

  RStarTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, v1_path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.NodeCount(), tree.NodeCount());
  for (const auto& e : entries) {
    EXPECT_TRUE(loaded.Contains(e.id, e.point));
  }
}

TEST(TreeIoTest, VersionOneTruncationIsIoError) {
  // v1 has no checksum, so truncation surfaces as the historical kIoError
  // from the body parser rather than kDataLoss.
  const std::string v2_path = TempPath("tree_v1trunc_src.csjt");
  const std::vector<char> v1 = AsV1(SavedTreeBytes(v2_path));
  const std::string v1_path = TempPath("tree_v1trunc.csjt");
  WriteFileBytes(v1_path,
                 std::vector<char>(v1.begin(), v1.begin() + v1.size() / 2));
  RStarTree<2> loaded;
  EXPECT_EQ(LoadTree(&loaded, v1_path).code(), StatusCode::kIoError);
}

TEST(TreeIoTest, PeekReadsBothVersions) {
  RStarOptions opts;
  opts.max_fanout = 8;
  opts.min_fanout = 3;
  RStarTree<2> tree(opts);
  for (const auto& e : RandomEntries<2>(100, 79)) tree.Insert(e.id, e.point);
  const std::string v2_path = TempPath("tree_peek_v2.csjt");
  ASSERT_TRUE(SaveTree(tree, v2_path).ok());
  const std::string v1_path = TempPath("tree_peek_v1.csjt");
  WriteFileBytes(v1_path, AsV1(ReadFileBytes(v2_path)));

  for (const std::string& path : {v2_path, v1_path}) {
    auto info = PeekTreeFile(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->dim, 2u);
    EXPECT_EQ(info->max_fanout, 8u);
    EXPECT_EQ(info->min_fanout, 3u);
    EXPECT_EQ(info->entries, 100u);
  }
}

// --- Join-output reader ------------------------------------------------------------

TEST(OutputReaderTest, RoundTripThroughFileSink) {
  const auto entries = RandomEntries<2>(500, 41);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;

  const std::string path = TempPath("join_output.txt");
  FileSink sink(IdWidthFor(entries.size()), path);
  CompactSimilarityJoin(tree, options, &sink);
  ASSERT_TRUE(sink.Finish().ok());

  auto loaded = ReadJoinOutput(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Re-expansion from disk equals the brute-force join.
  MemorySink replay(IdWidthFor(entries.size()));
  for (const auto& [a, b] : loaded->links) replay.Link(a, b);
  for (const auto& g : loaded->groups) replay.Group(g);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(replay),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(OutputReaderTest, ParsesLinksAndGroups) {
  const std::string path = TempPath("join_mixed.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0001 0002\n0003 0004 0005\n0006 0007\n", f);
  std::fclose(f);
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size(), 2u);
  EXPECT_EQ(output->groups.size(), 1u);
  EXPECT_EQ(output->groups[0], (std::vector<PointId>{3, 4, 5}));
  EXPECT_EQ(output->ImpliedLinks(), 2u + 3u);
}

TEST(OutputReaderTest, MissingTrailingNewlineHandled) {
  const std::string path = TempPath("join_nonewline.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\n3 4", f);
  std::fclose(f);
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size(), 2u);
}

TEST(OutputReaderTest, SingletonLineRejected) {
  const std::string path = TempPath("join_singleton.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\n7\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadJoinOutput(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OutputReaderTest, JunkRejected) {
  const std::string path = TempPath("join_junk.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\nhello\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadJoinOutput(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OutputReaderTest, EmptyFileOk) {
  const std::string path = TempPath("join_empty.txt");
  std::fclose(std::fopen(path.c_str(), "w"));
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size() + output->groups.size(), 0u);
}

}  // namespace
}  // namespace csj

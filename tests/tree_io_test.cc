#include <gtest/gtest.h>

#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/output_reader.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "index/tree_io.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --- Tree serialization ---------------------------------------------------------

TEST(TreeIoTest, RoundTripPreservesStructure) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(3000, 21);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  const std::string path = TempPath("tree_roundtrip.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());

  RStarTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.NodeCount(), tree.NodeCount());
  EXPECT_EQ(loaded.Height(), tree.Height());

  // Joins on the loaded tree produce identical output (same structure, same
  // traversal).
  JoinOptions options;
  options.epsilon = 0.03;
  MemorySink a(4), b(4);
  CompactSimilarityJoin(tree, options, &a);
  CompactSimilarityJoin(loaded, options, &b);
  EXPECT_EQ(a.links(), b.links());
  EXPECT_EQ(a.groups(), b.groups());
}

TEST(TreeIoTest, RoundTripAfterRemovals) {
  RTree<2> tree;
  auto entries = RandomEntries<2>(800, 23);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Remove(entries[i].id, entries[i].point));
  }
  const std::string path = TempPath("tree_removed.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.size(), 600u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded.Contains(entries[i].id, entries[i].point), i >= 200);
  }
}

TEST(TreeIoTest, EmptyTreeRoundTrips) {
  RStarTree<2> tree;
  const std::string path = TempPath("tree_empty.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RStarTree<2> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST(TreeIoTest, PackedTreeRoundTrips) {
  RStarTree<3> tree;
  PackStr(&tree, RandomEntries<3>(5000, 31));
  const std::string path = TempPath("tree_packed.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RStarTree<3> loaded;
  ASSERT_TRUE(LoadTree(&loaded, path).ok());
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.Stats().num_nodes, tree.Stats().num_nodes);
}

TEST(TreeIoTest, LoadIntoNonEmptyTreeFails) {
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.5, 0.5}});
  const std::string path = TempPath("tree_nonempty.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  const Status status = LoadTree(&tree, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(TreeIoTest, FanoutMismatchRejected) {
  RStarOptions small;
  small.max_fanout = 8;
  small.min_fanout = 3;
  RStarTree<2> tree(small);
  tree.Insert(0, Point2{{0.5, 0.5}});
  const std::string path = TempPath("tree_fanout.csjt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  RStarTree<2> loaded;  // default fanout 64
  const Status status = LoadTree(&loaded, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, GarbageFileRejected) {
  const std::string path = TempPath("tree_garbage.csjt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a tree", f);
  std::fclose(f);
  RStarTree<2> loaded;
  const Status status = LoadTree(&loaded, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, MissingFileIsNotFound) {
  RStarTree<2> loaded;
  EXPECT_EQ(LoadTree(&loaded, "/no/such/tree.csjt").code(),
            StatusCode::kNotFound);
}

// --- Join-output reader ------------------------------------------------------------

TEST(OutputReaderTest, RoundTripThroughFileSink) {
  const auto entries = RandomEntries<2>(500, 41);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;

  const std::string path = TempPath("join_output.txt");
  FileSink sink(IdWidthFor(entries.size()), path);
  CompactSimilarityJoin(tree, options, &sink);
  ASSERT_TRUE(sink.Finish().ok());

  auto loaded = ReadJoinOutput(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Re-expansion from disk equals the brute-force join.
  MemorySink replay(IdWidthFor(entries.size()));
  for (const auto& [a, b] : loaded->links) replay.Link(a, b);
  for (const auto& g : loaded->groups) replay.Group(g);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(replay),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(OutputReaderTest, ParsesLinksAndGroups) {
  const std::string path = TempPath("join_mixed.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0001 0002\n0003 0004 0005\n0006 0007\n", f);
  std::fclose(f);
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size(), 2u);
  EXPECT_EQ(output->groups.size(), 1u);
  EXPECT_EQ(output->groups[0], (std::vector<PointId>{3, 4, 5}));
  EXPECT_EQ(output->ImpliedLinks(), 2u + 3u);
}

TEST(OutputReaderTest, MissingTrailingNewlineHandled) {
  const std::string path = TempPath("join_nonewline.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\n3 4", f);
  std::fclose(f);
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size(), 2u);
}

TEST(OutputReaderTest, SingletonLineRejected) {
  const std::string path = TempPath("join_singleton.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\n7\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadJoinOutput(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OutputReaderTest, JunkRejected) {
  const std::string path = TempPath("join_junk.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\nhello\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadJoinOutput(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OutputReaderTest, EmptyFileOk) {
  const std::string path = TempPath("join_empty.txt");
  std::fclose(std::fopen(path.c_str(), "w"));
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size() + output->groups.size(), 0u);
}

}  // namespace
}  // namespace csj

/// \file
/// csj_serve core tests: the shared-registry server under concurrency.
///
/// The load-bearing assertions: (1) every streamed response is byte-
/// identical to the equivalent one-shot run over the same index, (2) one
/// query's deadline, cancel or budget never leaks into a neighbor running
/// on the same shared tree, (3) the bounded admission queue rejects with
/// kResourceExhausted instead of growing, (4) shutdown drains, (5) a
/// keep-alive session carries many governed requests, and (6) the epoch
/// lifecycle holds: a query pins the epoch it started on through reloads
/// and unloads, a failed reload leaves the old epoch serving, and a failed
/// load leaks neither epochs nor conversion temp files. The whole file runs
/// under the CSJ_TSAN job — the server's sharing discipline is a TSan
/// claim, not a comment.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "geom/point.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"
#include "index/tree_io.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/json.h"
#include "util/metrics.h"

namespace csj::serve {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<Entry<2>> FixtureEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<2>(n, seed);
  std::vector<Entry<2>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

/// One shared fixture: a bulk-loaded index saved as CSJTREE2 (exercising
/// the registry's convert-to-paged path) plus the in-memory tree for
/// reference runs.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The gtest binary has no tool main to ignore SIGPIPE for us, and the
    // response stream of an abandoned query writes into a closed socket.
    std::signal(SIGPIPE, SIG_IGN);
    entries_ = new std::vector<Entry<2>>(FixtureEntries(4000, 21));
    tree_ = new RStarTree<2>();
    PackStr(tree_, *entries_);
    index_path_ = new std::string(TempPath("serve_fixture.csjt"));
    ASSERT_TRUE(SaveTree(*tree_, *index_path_).ok());
  }
  static void TearDownTestSuite() {
    delete entries_;
    delete tree_;
    ::unlink(index_path_->c_str());
    delete index_path_;
  }

  /// Registry + server on a fresh Unix socket. Returns the socket path.
  std::string StartServer(DatasetRegistry* registry, ServerOptions options,
                          std::unique_ptr<Server>* server) {
    const std::string socket_path =
        TempPath(StrFormat("serve_%d_%d.sock", getpid(), socket_seq_++));
    options.unix_socket_path = socket_path;
    server->reset(new Server(registry, options));
    EXPECT_TRUE((*server)->Start().ok());
    return socket_path;
  }

  static int ConnectTo(const std::string& socket_path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
        0)
        << std::strerror(errno);
    return fd;
  }

  struct Response {
    Status transport;       ///< framing-level failure, if any
    std::string first_line; ///< header (payload ops) or the single line
    std::string payload;
    std::string trailer;    ///< empty for single-line responses
    /// The trailer's (or error line's) "code" field; "" when unparseable.
    std::string code;
  };

  /// Sends one request line and reads the whole response.
  static Response RoundTrip(const std::string& socket_path,
                            const std::string& request,
                            OutputFormat format = OutputFormat::kText) {
    Response response;
    const int fd = ConnectTo(socket_path);
    // An admission reject writes its error line and closes before reading,
    // so this write can land on a closed socket (EPIPE). The response is
    // already in the socket buffer — the read below is what matters.
    WriteAll(fd, request + "\n").ok();
    LineReader reader(fd, /*timeout_ms=*/30000);
    response.transport = reader.ReadLine(&response.first_line);
    if (response.transport.ok()) {
      auto head = json::Parse(response.first_line);
      const json::Value* ok = head.ok() ? head->Find("ok") : nullptr;
      const bool has_payload = ok != nullptr && ok->is_bool() &&
                               ok->AsBool() &&
                               head->Find("format") != nullptr;
      if (has_payload) {
        response.transport = ReadFramedPayload(
            &reader, format, &response.payload, &response.trailer);
      }
    }
    ::close(fd);
    const std::string& coded =
        response.trailer.empty() ? response.first_line : response.trailer;
    auto doc = json::Parse(coded);
    if (doc.ok()) {
      const json::Value* code = doc->Find("code");
      if (code != nullptr && code->is_string()) response.code = code->AsString();
    }
    return response;
  }

  /// The bytes a one-shot csj_tool-style run writes for these parameters.
  static std::string OneShotPayload(JoinAlgorithm algorithm, double eps,
                                    int g, OutputFormat format) {
    const std::string path = TempPath(StrFormat(
        "serve_ref_%d_%g_%d_%d.out", static_cast<int>(algorithm), eps, g,
        static_cast<int>(format)));
    OutputSpec spec;
    spec.format = format;
    spec.path = path;
    spec.id_width = IdWidthFor(tree_->size());
    auto sink = MakeSink(spec);
    EXPECT_TRUE(sink.ok());
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = g;
    const JoinStats stats =
        RunSelfJoin(algorithm, *tree_, options, sink->get());
    EXPECT_TRUE(stats.status.ok());
    EXPECT_TRUE((*sink)->Finish().ok());
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.append(chunk, n);
    }
    std::fclose(f);
    ::unlink(path.c_str());
    return bytes;
  }

  static std::string JoinRequest(const std::string& algo, double eps, int g,
                                 const std::string& extra = "") {
    return StrFormat(
        "{\"op\":\"join\",\"dataset\":\"pts\",\"algo\":\"%s\",\"eps\":%g,"
        "\"g\":%d%s}",
        algo.c_str(), eps, g, extra.c_str());
  }

  /// Like OneShotPayload but over an arbitrary tree (an epoch's paged tree,
  /// a second fixture) — the reference for epoch-identity assertions.
  template <typename TreeT>
  static std::string PayloadOver(const TreeT& tree, JoinAlgorithm algorithm,
                                 double eps, int g, int id_width) {
    static int seq = 0;
    const std::string path =
        TempPath(StrFormat("serve_over_%d_%d.out", getpid(), seq++));
    OutputSpec spec;
    spec.format = OutputFormat::kText;
    spec.path = path;
    spec.id_width = id_width;
    auto sink = MakeSink(spec);
    EXPECT_TRUE(sink.ok());
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = g;
    const JoinStats stats = RunSelfJoin(algorithm, tree, options, sink->get());
    EXPECT_TRUE(stats.status.ok()) << stats.status.ToString();
    EXPECT_TRUE((*sink)->Finish().ok());
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.append(chunk, n);
    }
    std::fclose(f);
    ::unlink(path.c_str());
    return bytes;
  }

  /// Conversion temp files (`*.paged.tmp.*`) left in `dir` — a failed load
  /// must never leave any.
  static std::vector<std::string> TempDroppings(const std::string& dir) {
    std::vector<std::string> found;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return found;
    while (struct dirent* entry = ::readdir(d)) {
      if (std::strstr(entry->d_name, ".paged.tmp.") != nullptr) {
        found.push_back(entry->d_name);
      }
    }
    ::closedir(d);
    return found;
  }

  static uint64_t CounterValue(const std::string& name) {
    for (const auto& [metric, value] : metrics::Snapshot().counters) {
      if (metric == name) return value;
    }
    return 0;
  }

  static std::vector<Entry<2>>* entries_;
  static RStarTree<2>* tree_;
  static std::string* index_path_;
  int socket_seq_ = 0;
};

std::vector<Entry<2>>* ServeTest::entries_ = nullptr;
RStarTree<2>* ServeTest::tree_ = nullptr;
std::string* ServeTest::index_path_ = nullptr;

TEST_F(ServeTest, PingListAndErrors) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  Response ping = RoundTrip(socket_path, "{\"op\":\"ping\"}");
  ASSERT_TRUE(ping.transport.ok()) << ping.transport.ToString();
  EXPECT_NE(ping.first_line.find("\"ok\":true"), std::string::npos);

  Response list = RoundTrip(socket_path, "{\"op\":\"list\"}");
  ASSERT_TRUE(list.transport.ok());
  EXPECT_NE(list.first_line.find("\"pts\""), std::string::npos);
  EXPECT_NE(list.first_line.find("4000"), std::string::npos);

  // Protocol errors are single well-formed lines, not hangups.
  EXPECT_EQ(RoundTrip(socket_path, "not json").code, "InvalidArgument");
  EXPECT_EQ(RoundTrip(socket_path, "{\"op\":\"nope\"}").code,
            "InvalidArgument");
  EXPECT_EQ(RoundTrip(socket_path, "{\"op\":\"join\",\"dataset\":\"nope\","
                                   "\"eps\":0.01}")
                .code,
            "NotFound");
  EXPECT_EQ(RoundTrip(socket_path, JoinRequest("csj", 0.01, 10,
                                               ",\"unknown_knob\":1"))
                .code,
            "InvalidArgument");
  server->Shutdown();
}

TEST_F(ServeTest, ResponsesByteIdenticalToOneShotRuns) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  for (const std::string algo : {"ssj", "ncsj", "csj"}) {
    JoinAlgorithm algorithm = algo == "ssj"    ? JoinAlgorithm::kSSJ
                              : algo == "ncsj" ? JoinAlgorithm::kNCSJ
                                               : JoinAlgorithm::kCSJ;
    Response response = RoundTrip(socket_path, JoinRequest(algo, 0.01, 10));
    ASSERT_TRUE(response.transport.ok()) << response.transport.ToString();
    EXPECT_EQ(response.code, "OK");
    EXPECT_EQ(response.payload,
              OneShotPayload(algorithm, 0.01, 10, OutputFormat::kText))
        << algo;
  }

  Response binary = RoundTrip(
      socket_path, JoinRequest("csj", 0.01, 10, ",\"output\":\"binary\""),
      OutputFormat::kBinary);
  ASSERT_TRUE(binary.transport.ok()) << binary.transport.ToString();
  EXPECT_EQ(binary.code, "OK");
  EXPECT_EQ(binary.payload,
            OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 10,
                           OutputFormat::kBinary));
  server->Shutdown();
}

TEST_F(ServeTest, AutoAlgoPlansAndMatchesExplicitRun) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  // "algo":"auto": the server plans against the load-time sketch, runs the
  // resolved spec, and echoes the plan in the trailer's stats.
  Response response = RoundTrip(
      socket_path,
      "{\"op\":\"join\",\"dataset\":\"pts\",\"algo\":\"auto\",\"eps\":0.01}");
  ASSERT_TRUE(response.transport.ok()) << response.transport.ToString();
  EXPECT_EQ(response.code, "OK");

  auto trailer = json::Parse(response.trailer);
  ASSERT_TRUE(trailer.ok()) << trailer.status().ToString();
  const json::Value* stats = trailer->Find("stats");
  ASSERT_NE(stats, nullptr);
  const json::Value* echoed_plan = stats->Find("plan");
  ASSERT_NE(echoed_plan, nullptr) << "auto run did not echo its plan";
  const json::Value* knobs = echoed_plan->Find("knobs");
  ASSERT_NE(knobs, nullptr);
  const json::Value* algo = knobs->Find("algo");
  const json::Value* g = knobs->Find("g");
  ASSERT_NE(algo, nullptr);
  ASSERT_NE(g, nullptr);
  EXPECT_NE(algo->AsString(), "auto");
  EXPECT_NE(stats->Find("predicted_links"), nullptr);

  // Re-issuing the resolved knobs explicitly is byte-identical: planning
  // changes how the query runs, never what it returns.
  Response explicit_run = RoundTrip(
      socket_path,
      JoinRequest(algo->AsString(), 0.01, static_cast<int>(g->AsInt())));
  ASSERT_TRUE(explicit_run.transport.ok())
      << explicit_run.transport.ToString();
  EXPECT_EQ(explicit_run.code, "OK");
  EXPECT_EQ(response.payload, explicit_run.payload);

  // The planner refuses to plan what it cannot run: ego under serve, auto
  // under range.
  EXPECT_EQ(RoundTrip(socket_path, JoinRequest("ego", 0.01, 10)).code,
            "InvalidArgument");
  EXPECT_EQ(
      RoundTrip(socket_path,
                "{\"op\":\"range\",\"dataset\":\"pts\",\"algo\":\"auto\","
                "\"eps\":0.01,\"center\":[0.5,0.5]}")
          .code,
      "InvalidArgument");
  server->Shutdown();
}

TEST_F(ServeTest, RangeQueryMatchesBruteForce) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  const Point<2> center = (*entries_)[17].point;
  const double eps = 0.02;
  Response response = RoundTrip(
      socket_path,
      StrFormat("{\"op\":\"range\",\"dataset\":\"pts\",\"eps\":%g,"
                "\"center\":[%.17g,%.17g]}",
                eps, center[0], center[1]));
  ASSERT_TRUE(response.transport.ok()) << response.transport.ToString();
  EXPECT_EQ(response.code, "OK");

  std::multiset<PointId> got;
  for (size_t start = 0; start < response.payload.size();) {
    const size_t nl = response.payload.find('\n', start);
    got.insert(static_cast<PointId>(
        std::stoul(response.payload.substr(start, nl - start))));
    start = nl + 1;
  }
  std::multiset<PointId> want;
  for (const auto& entry : *entries_) {
    if (Distance(center, entry.point) <= eps) want.insert(entry.id);
  }
  EXPECT_EQ(got, want);
  server->Shutdown();
}

TEST_F(ServeTest, ConcurrentMixedQueriesStayIsolated) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  ServerOptions options;
  options.workers = 8;
  options.max_pending = 64;
  const std::string socket_path = StartServer(&registry, options, &server);

  // References computed up front, single-threaded.
  const std::string ref_ssj =
      OneShotPayload(JoinAlgorithm::kSSJ, 0.01, 10, OutputFormat::kText);
  const std::string ref_ncsj =
      OneShotPayload(JoinAlgorithm::kNCSJ, 0.008, 10, OutputFormat::kText);
  const std::string ref_csj =
      OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 6, OutputFormat::kText);
  const std::string ref_bin =
      OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 10, OutputFormat::kBinary);

  // 12 concurrent queries over the one shared paged tree: normal joins of
  // every algorithm, a binary join, a 1 ms deadline victim, a query whose
  // client disconnects mid-stream, and a budget-starved one. The normal
  // queries must come back byte-identical — their neighbors' trips must be
  // invisible to them.
  struct Task {
    std::string request;
    OutputFormat format = OutputFormat::kText;
    const std::string* expect_payload = nullptr;
    std::string expect_code = "OK";
    bool disconnect_early = false;
  };
  std::vector<Task> tasks = {
      {JoinRequest("ssj", 0.01, 10), OutputFormat::kText, &ref_ssj},
      {JoinRequest("ncsj", 0.008, 10), OutputFormat::kText, &ref_ncsj},
      {JoinRequest("csj", 0.01, 6), OutputFormat::kText, &ref_csj},
      {JoinRequest("csj", 0.01, 10, ",\"output\":\"binary\""),
       OutputFormat::kBinary, &ref_bin},
      {JoinRequest("ssj", 0.01, 10), OutputFormat::kText, &ref_ssj},
      {JoinRequest("csj", 0.01, 6), OutputFormat::kText, &ref_csj},
      {JoinRequest("ssj", 0.02, 10, ",\"deadline_ms\":1"),
       OutputFormat::kText, nullptr, "DeadlineExceeded"},
      {JoinRequest("ssj", 0.02, 10, ",\"deadline_ms\":1"),
       OutputFormat::kText, nullptr, "DeadlineExceeded"},
      {JoinRequest("ssj", 0.02, 10), OutputFormat::kText, nullptr, "",
       /*disconnect_early=*/true},
      {JoinRequest("csj", 0.01, 10, ",\"mem_budget\":1024"),
       OutputFormat::kText, nullptr, "ResourceExhausted"},
      {JoinRequest("ncsj", 0.008, 10), OutputFormat::kText, &ref_ncsj},
      {JoinRequest("csj", 0.01, 10, ",\"output\":\"binary\""),
       OutputFormat::kBinary, &ref_bin},
  };

  std::vector<Response> responses(tasks.size());
  std::vector<std::thread> clients;
  clients.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    clients.emplace_back([&, i] {
      const Task& task = tasks[i];
      if (task.disconnect_early) {
        // Read the header, then hang up mid-stream: the disconnect watcher
        // (or the sink's EPIPE) must cancel this query — and only this one.
        const int fd = ConnectTo(socket_path);
        ASSERT_TRUE(WriteAll(fd, task.request + "\n").ok());
        LineReader reader(fd, 30000);
        std::string header;
        ASSERT_TRUE(reader.ReadLine(&header).ok());
        ::close(fd);
        return;
      }
      responses[i] = RoundTrip(socket_path, task.request, task.format);
    });
  }
  for (std::thread& client : clients) client.join();

  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& task = tasks[i];
    if (task.disconnect_early) continue;
    ASSERT_TRUE(responses[i].transport.ok())
        << i << ": " << responses[i].transport.ToString();
    EXPECT_EQ(responses[i].code, task.expect_code) << i;
    if (task.expect_payload != nullptr) {
      EXPECT_EQ(responses[i].payload, *task.expect_payload) << i;
    }
  }

  // The server survives the mix and still answers.
  EXPECT_EQ(RoundTrip(socket_path, "{\"op\":\"ping\"}").transport.ok(), true);
  server->Shutdown();
}

TEST_F(ServeTest, AdmissionQueueRejectsWhenFull) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  ServerOptions options;
  options.workers = 1;
  options.max_pending = 1;
  // Generous: the stalled connections are unblocked below by closing their
  // fds (EOF), never by this timeout — it must not expire mid-test on a
  // slow sanitizer run and un-pin the worker early.
  options.request_timeout_ms = 30000;
  const std::string socket_path = StartServer(&registry, options, &server);

  // Pin the single worker with a connection that sends nothing, fill the
  // queue of one with a second silent connection, and watch the third get
  // refused at the door with kResourceExhausted.
  const int pinned = ConnectTo(socket_path);
  for (int spin = 0; spin < 200 && server->counters().accepted < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server->counters().accepted, 1u);
  // Give the worker a beat to claim `pinned` off the queue; only then does
  // `queued` land in the queue slot instead of being rejected itself.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int queued = ConnectTo(socket_path);
  for (int spin = 0; spin < 200 && server->counters().accepted < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server->counters().accepted, 2u);

  Response rejected = RoundTrip(socket_path, "{\"op\":\"ping\"}");
  ASSERT_TRUE(rejected.transport.ok()) << rejected.transport.ToString();
  EXPECT_EQ(rejected.code, "ResourceExhausted");
  EXPECT_GE(server->counters().rejected, 1u);

  ::close(pinned);
  ::close(queued);
  // Closing the stalled fds surfaces as EOF in the worker; service resumes.
  for (int spin = 0; spin < 200; ++spin) {
    Response ping = RoundTrip(socket_path, "{\"op\":\"ping\"}");
    if (ping.transport.ok() && ping.first_line.find("\"ok\":true") !=
                                   std::string::npos) {
      server->Shutdown();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "server never recovered from the stalled connections";
}

TEST_F(ServeTest, ShutdownDrainsInFlightQueries) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  ServerOptions options;
  options.workers = 4;
  const std::string socket_path = StartServer(&registry, options, &server);

  const std::string ref_ssj =
      OneShotPayload(JoinAlgorithm::kSSJ, 0.01, 10, OutputFormat::kText);
  const std::string request = JoinRequest("ssj", 0.01, 10) + "\n";
  std::vector<Response> responses(4);
  std::atomic<size_t> connected{0};
  std::vector<std::thread> clients;
  for (size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([&, i] {
      // Connect and send before Shutdown is triggered (the main thread
      // waits on `connected`), so every request is in the listener's
      // backlog or beyond when the drain starts.
      const int fd = ConnectTo(socket_path);
      WriteAll(fd, request).ok();
      connected.fetch_add(1);
      LineReader reader(fd, /*timeout_ms=*/30000);
      Response& response = responses[i];
      response.transport = reader.ReadLine(&response.first_line);
      if (response.transport.ok()) {
        response.transport = ReadFramedPayload(
            &reader, OutputFormat::kText, &response.payload,
            &response.trailer);
      }
      ::close(fd);
      auto doc = json::Parse(response.trailer);
      if (doc.ok()) {
        const json::Value* code = doc->Find("code");
        if (code != nullptr && code->is_string()) {
          response.code = code->AsString();
        }
      }
    });
  }
  while (connected.load() < responses.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Shut down while the queries are queued or in flight: drain must finish
  // everything it admitted, not cut it off.
  server->Shutdown();
  for (std::thread& client : clients) client.join();

  for (size_t i = 0; i < responses.size(); ++i) {
    // A request still in the un-accepted backlog when the listener closed
    // legitimately sees a hangup; anything admitted must complete whole.
    if (!responses[i].transport.ok()) continue;
    EXPECT_EQ(responses[i].code, "OK") << i;
    EXPECT_EQ(responses[i].payload, ref_ssj) << i;
  }
  // The socket file is gone; a late client cannot connect.
  struct stat st;
  EXPECT_NE(::stat(socket_path.c_str(), &st), 0);
}

TEST_F(ServeTest, KeepAliveSessionServesManyRequests) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  const std::string ref =
      OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 10, OutputFormat::kText);

  // ping + governed join, twice, then a semantic error, then another ping —
  // six framed exchanges on ONE connection.
  const int fd = ConnectTo(socket_path);
  LineReader reader(fd, /*timeout_ms=*/30000);
  std::string line;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(WriteAll(fd, std::string("{\"op\":\"ping\"}\n")).ok());
    ASSERT_TRUE(reader.ReadLine(&line).ok()) << round;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

    ASSERT_TRUE(WriteAll(fd, JoinRequest("csj", 0.01, 10) + "\n").ok());
    ASSERT_TRUE(reader.ReadLine(&line).ok()) << round;
    std::string payload, trailer;
    ASSERT_TRUE(
        ReadFramedPayload(&reader, OutputFormat::kText, &payload, &trailer)
            .ok())
        << round;
    EXPECT_EQ(payload, ref) << "keep-alive round " << round;
    EXPECT_NE(trailer.find("\"code\":\"OK\""), std::string::npos);
  }
  // A semantic error (unknown dataset) answers and KEEPS the session.
  ASSERT_TRUE(
      WriteAll(fd, std::string("{\"op\":\"join\",\"dataset\":\"nope\","
                               "\"eps\":0.01}\n"))
          .ok());
  ASSERT_TRUE(reader.ReadLine(&line).ok());
  EXPECT_NE(line.find("NotFound"), std::string::npos);
  ASSERT_TRUE(WriteAll(fd, std::string("{\"op\":\"ping\"}\n")).ok());
  ASSERT_TRUE(reader.ReadLine(&line).ok());
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  ::close(fd);

  // The six requests rode one worker claim: served counts requests,
  // sessions counts connections.
  for (int spin = 0; spin < 200 && server->counters().sessions < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server->counters().sessions, 1u);
  EXPECT_EQ(server->counters().served, 6u);
  server->Shutdown();
}

TEST_F(ServeTest, RequestCapAndIdleTimeoutRotateSessions) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  ServerOptions options;
  options.max_requests_per_conn = 2;
  options.idle_timeout_ms = 300;
  const std::string socket_path = StartServer(&registry, options, &server);

  // Request cap: the session closes after the second answer; the client
  // reconnects through admission.
  const int fd = ConnectTo(socket_path);
  LineReader reader(fd, 30000);
  std::string line;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(WriteAll(fd, std::string("{\"op\":\"ping\"}\n")).ok());
    ASSERT_TRUE(reader.ReadLine(&line).ok()) << i;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << i;
  }
  WriteAll(fd, std::string("{\"op\":\"ping\"}\n")).ok();  // may race the close
  EXPECT_FALSE(reader.ReadLine(&line).ok())
      << "session outlived max_requests_per_conn: " << line;
  ::close(fd);

  // Idle timeout: a session that goes quiet is told why and closed.
  const int idle = ConnectTo(socket_path);
  LineReader idle_reader(idle, 30000);
  ASSERT_TRUE(WriteAll(idle, std::string("{\"op\":\"ping\"}\n")).ok());
  ASSERT_TRUE(idle_reader.ReadLine(&line).ok());
  ASSERT_TRUE(idle_reader.ReadLine(&line).ok());  // the idle farewell line
  EXPECT_NE(line.find("DeadlineExceeded"), std::string::npos) << line;
  EXPECT_FALSE(idle_reader.ReadLine(&line).ok());  // then EOF
  ::close(idle);

  // Fresh connections still served.
  EXPECT_NE(RoundTrip(socket_path, "{\"op\":\"ping\"}")
                .first_line.find("\"ok\":true"),
            std::string::npos);
  server->Shutdown();
}

TEST_F(ServeTest, EpochPinSurvivesReloadAndUnload) {
  // Registry-level epoch lifecycle: a Find() pin keeps the old epoch fully
  // queryable and byte-identical across a reload that swaps in DIFFERENT
  // data, and across an unload; memory (the live-epoch gauge) drains only
  // when the last pin drops.
  const std::string index2 = TempPath("serve_fixture2.csjt");
  auto entries2 = FixtureEntries(3000, 77);
  RStarTree<2> tree2;
  PackStr(&tree2, entries2);
  ASSERT_TRUE(SaveTree(tree2, index2).ok());

  const int64_t live_before = LiveEpochCount();
  {
    DatasetRegistry registry;
    ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
    const std::shared_ptr<const Dataset> pin = registry.Find("pts");
    ASSERT_NE(pin, nullptr);
    EXPECT_EQ(pin->num_points, 4000u);
    EXPECT_EQ(LiveEpochCount(), live_before + 1);

    ASSERT_TRUE(registry.Reload({.name = "pts", .path = index2}).ok());
    const std::shared_ptr<const Dataset> fresh = registry.Find("pts");
    ASSERT_NE(fresh, nullptr);
    EXPECT_GT(fresh->epoch, pin->epoch);
    EXPECT_EQ(fresh->num_points, 3000u);
    EXPECT_EQ(LiveEpochCount(), live_before + 2);  // old epoch pinned alive

    // The pinned old epoch still answers byte-identically to its one-shot
    // reference — the swap is invisible to it.
    EXPECT_EQ(PayloadOver(pin->tree, JoinAlgorithm::kCSJ, 0.01, 10,
                          pin->id_width),
              OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 10,
                             OutputFormat::kText));
    // And the new epoch answers with the new data.
    EXPECT_EQ(PayloadOver(fresh->tree, JoinAlgorithm::kCSJ, 0.01, 10,
                          fresh->id_width),
              PayloadOver(tree2, JoinAlgorithm::kCSJ, 0.01, 10,
                          fresh->id_width));

    ASSERT_TRUE(registry.Unload("pts").ok());
    EXPECT_EQ(registry.Find("pts"), nullptr);
    EXPECT_EQ(registry.Unload("pts").code(), StatusCode::kNotFound);
    // Both pins (`pin`, `fresh`) still hold their epochs.
    EXPECT_EQ(LiveEpochCount(), live_before + 2);
  }
  // Registry and pins gone: every epoch released.
  EXPECT_EQ(LiveEpochCount(), live_before);
  ::unlink(index2.c_str());
}

TEST_F(ServeTest, QueryStartedOnOldEpochCompletesOnItThroughReload) {
  const std::string index2 = TempPath("serve_fixture3.csjt");
  auto entries2 = FixtureEntries(3000, 91);
  RStarTree<2> tree2;
  PackStr(&tree2, entries2);
  ASSERT_TRUE(SaveTree(tree2, index2).ok());
  const std::string ref_old =
      OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 10, OutputFormat::kText);
  const std::string ref_new = PayloadOver(tree2, JoinAlgorithm::kCSJ, 0.01,
                                          10, IdWidthFor(entries2.size()));

  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  ServerOptions options;
  options.workers = 2;  // the in-flight query must not block the reload
  const std::string socket_path = StartServer(&registry, options, &server);
  const int64_t live_baseline = LiveEpochCount();

  // Start a query and read its HEADER: the header is only written after the
  // query pinned its epoch, so everything from here on is deterministic.
  const int fd = ConnectTo(socket_path);
  ASSERT_TRUE(WriteAll(fd, JoinRequest("csj", 0.01, 10) + "\n").ok());
  LineReader reader(fd, 30000);
  std::string header;
  ASSERT_TRUE(reader.ReadLine(&header).ok());
  ASSERT_NE(header.find("\"ok\":true"), std::string::npos);

  // Swap the dataset mid-query — on a second connection, through the admin
  // op, waiting for the server to acknowledge the new epoch.
  Response reload = RoundTrip(
      socket_path, StrFormat("{\"op\":\"reload\",\"dataset\":\"pts\","
                             "\"path\":\"%s\"}",
                             index2.c_str()));
  ASSERT_TRUE(reload.transport.ok()) << reload.transport.ToString();
  EXPECT_NE(reload.first_line.find("\"ok\":true"), std::string::npos)
      << reload.first_line;

  // The in-flight query finishes byte-identical on the epoch it started on.
  std::string payload, trailer;
  ASSERT_TRUE(
      ReadFramedPayload(&reader, OutputFormat::kText, &payload, &trailer)
          .ok());
  EXPECT_NE(trailer.find("\"code\":\"OK\""), std::string::npos);
  EXPECT_EQ(payload, ref_old);
  ::close(fd);

  // New queries run on the new epoch; the old one drains once its last pin
  // (the finished query) is gone.
  Response fresh = RoundTrip(socket_path, JoinRequest("csj", 0.01, 10));
  ASSERT_TRUE(fresh.transport.ok());
  EXPECT_EQ(fresh.code, "OK");
  EXPECT_EQ(fresh.payload, ref_new);
  for (int spin = 0; spin < 200 && LiveEpochCount() != live_baseline;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(LiveEpochCount(), live_baseline) << "old epoch leaked";
  server->Shutdown();
  ::unlink(index2.c_str());
}

TEST_F(ServeTest, AdminOpsValidateAndDriveTheLifecycle) {
  const std::string index2 = TempPath("serve_fixture4.csjt");
  auto entries2 = FixtureEntries(1000, 5);
  RStarTree<2> tree2;
  PackStr(&tree2, entries2);
  ASSERT_TRUE(SaveTree(tree2, index2).ok());

  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  // Validation: the protocol rejects malformed admin requests up front.
  EXPECT_EQ(RoundTrip(socket_path, "{\"op\":\"load\",\"dataset\":\"x\"}").code,
            "InvalidArgument");  // no path
  EXPECT_EQ(RoundTrip(socket_path, "{\"op\":\"reload\",\"path\":\"x\"}").code,
            "InvalidArgument");  // no dataset
  EXPECT_EQ(RoundTrip(socket_path,
                      "{\"op\":\"unload\",\"dataset\":\"x\","
                      "\"center\":[0.5,0.5]}")
                .code,
            "InvalidArgument");  // center is not an admin field
  EXPECT_EQ(RoundTrip(socket_path,
                      "{\"op\":\"ping\",\"path\":\"x\"}")
                .code,
            "InvalidArgument");  // path outside load/reload

  // Lifecycle: load a second dataset, see it in list (with epochs), query
  // it, unload it, and watch the name disappear.
  Response loaded = RoundTrip(
      socket_path, StrFormat("{\"op\":\"load\",\"dataset\":\"pts2\","
                             "\"path\":\"%s\"}",
                             index2.c_str()));
  ASSERT_TRUE(loaded.transport.ok());
  EXPECT_NE(loaded.first_line.find("\"ok\":true"), std::string::npos)
      << loaded.first_line;
  EXPECT_NE(loaded.first_line.find("\"epoch\":"), std::string::npos);
  EXPECT_NE(loaded.first_line.find("\"live_epochs\":"), std::string::npos);

  EXPECT_EQ(RoundTrip(socket_path,
                      StrFormat("{\"op\":\"load\",\"dataset\":\"pts2\","
                                "\"path\":\"%s\"}",
                                index2.c_str()))
                .code,
            "InvalidArgument");  // duplicate: load does not replace
  EXPECT_EQ(RoundTrip(socket_path,
                      "{\"op\":\"reload\",\"dataset\":\"ghost\","
                      "\"path\":\"x\"}")
                .code,
            "NotFound");  // reload does not register

  Response list = RoundTrip(socket_path, "{\"op\":\"list\"}");
  EXPECT_NE(list.first_line.find("\"pts2\""), std::string::npos);
  EXPECT_NE(list.first_line.find("\"live_epochs\":"), std::string::npos);

  Response join = RoundTrip(
      socket_path,
      "{\"op\":\"join\",\"dataset\":\"pts2\",\"algo\":\"csj\",\"eps\":0.01}");
  EXPECT_EQ(join.code, "OK");
  EXPECT_EQ(join.payload, PayloadOver(tree2, JoinAlgorithm::kCSJ, 0.01, 10,
                                      IdWidthFor(entries2.size())));

  EXPECT_NE(RoundTrip(socket_path, "{\"op\":\"unload\","
                                   "\"dataset\":\"pts2\"}")
                .first_line.find("\"ok\":true"),
            std::string::npos);
  EXPECT_EQ(RoundTrip(socket_path,
                      "{\"op\":\"join\",\"dataset\":\"pts2\",\"eps\":0.01}")
                .code,
            "NotFound");
  EXPECT_EQ(RoundTrip(socket_path, "{\"op\":\"unload\","
                                   "\"dataset\":\"pts2\"}")
                .code,
            "NotFound");
  server->Shutdown();
  ::unlink(index2.c_str());
}

TEST_F(ServeTest, RegistryRejectsCorruptTruncatedAndMissingSources) {
  // Read the good CSJTREE2 fixture once.
  std::FILE* f = std::fopen(index_path_->c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) bytes.append(chunk, n);
  std::fclose(f);
  ASSERT_GT(bytes.size(), 1024u);

  const auto write_file = [](const std::string& path, const std::string& data) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), out), data.size());
    std::fclose(out);
  };
  std::string corrupt_bytes = bytes;
  for (size_t i = corrupt_bytes.size() / 2; i < corrupt_bytes.size() / 2 + 32;
       ++i) {
    corrupt_bytes[i] = static_cast<char>(~corrupt_bytes[i]);
  }
  const std::string corrupt = TempPath("serve_corrupt.csjt");
  const std::string truncated = TempPath("serve_truncated.csjt");
  write_file(corrupt, corrupt_bytes);
  write_file(truncated, bytes.substr(0, bytes.size() * 3 / 5));

  const int64_t live_before = LiveEpochCount();
  DatasetRegistry registry;
  EXPECT_FALSE(registry.Load({.name = "bad", .path = corrupt}).ok());
  EXPECT_FALSE(registry.Load({.name = "bad2", .path = truncated}).ok());
  EXPECT_EQ(registry.Load({.name = "bad3", .path = TempPath("nope.csjt")})
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Find("bad"), nullptr);
  // No epoch came alive and no conversion temp survived a failed load.
  EXPECT_EQ(LiveEpochCount(), live_before);
  EXPECT_TRUE(TempDroppings(testing::TempDir()).empty());

  // The same registry still accepts a good load afterwards.
  EXPECT_TRUE(registry.Load({.name = "good", .path = *index_path_}).ok());
  EXPECT_EQ(registry.size(), 1u);
  ::unlink(corrupt.c_str());
  ::unlink(truncated.c_str());
}

TEST_F(ServeTest, RegistryBudgetExhaustionFailsLoadCleanly) {
  // A budget smaller than ONE page charge: the validation probe cannot even
  // cache the first block, so the load must fail with kResourceExhausted —
  // before any epoch exists — and leave no temp files behind.
  const int64_t live_before = LiveEpochCount();
  DatasetRegistry registry(/*memory_budget_bytes=*/1024);
  const Status status = registry.Load({.name = "pts", .path = *index_path_});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(LiveEpochCount(), live_before);
  EXPECT_TRUE(TempDroppings(testing::TempDir()).empty());
}

#ifndef CSJ_NO_FAILPOINTS
TEST_F(ServeTest, ReloadFailureLeavesOldEpochServing) {
  const std::string index2 = TempPath("serve_fixture5.csjt");
  auto entries2 = FixtureEntries(1000, 13);
  RStarTree<2> tree2;
  PackStr(&tree2, entries2);
  ASSERT_TRUE(SaveTree(tree2, index2).ok());

  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);
  const std::string ref =
      OneShotPayload(JoinAlgorithm::kCSJ, 0.01, 10, OutputFormat::kText);
  const int64_t live_before = LiveEpochCount();

  const std::string reload_request = StrFormat(
      "{\"op\":\"reload\",\"dataset\":\"pts\",\"path\":\"%s\"}",
      index2.c_str());
  {
    failpoint::ScopedFailpoint fault("serve.reload_validate",
                                     failpoint::Spec::Always());
    Response failed = RoundTrip(socket_path, reload_request);
    ASSERT_TRUE(failed.transport.ok());
    EXPECT_NE(failed.first_line.find("\"ok\":false"), std::string::npos)
        << failed.first_line;
    EXPECT_NE(failed.first_line.find("injected"), std::string::npos);
  }
  // Also exercise a real (non-injected) validation failure: reload from a
  // missing file.
  EXPECT_EQ(RoundTrip(socket_path,
                      "{\"op\":\"reload\",\"dataset\":\"pts\","
                      "\"path\":\"/nonexistent/no.csjt\"}")
                .code,
            "NotFound");

  // Both failures left the old epoch serving, byte-identically, with no
  // extra epoch alive.
  EXPECT_EQ(LiveEpochCount(), live_before);
  Response join = RoundTrip(socket_path, JoinRequest("csj", 0.01, 10));
  EXPECT_EQ(join.code, "OK");
  EXPECT_EQ(join.payload, ref);

  // With the fault gone the same reload succeeds.
  Response reloaded = RoundTrip(socket_path, reload_request);
  EXPECT_NE(reloaded.first_line.find("\"ok\":true"), std::string::npos)
      << reloaded.first_line;
  server->Shutdown();
  ::unlink(index2.c_str());
}

TEST_F(ServeTest, ControlWriteFaultClosesSessionAndCounts) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  const uint64_t errors_before = CounterValue("serve.ctrl_write_errors");
  const int fd = ConnectTo(socket_path);
  {
    // Once: the server's response write is the first (and only) evaluation
    // — the request below is sent with raw send() so the client side never
    // touches the failpoint.
    failpoint::ScopedFailpoint fault("serve.write", failpoint::Spec::Once());
    const std::string request = "{\"op\":\"ping\"}\n";
    size_t done = 0;
    while (done < request.size()) {
      const ssize_t sent =
          ::send(fd, request.data() + done, request.size() - done, 0);
      ASSERT_GT(sent, 0);
      done += static_cast<size_t>(sent);
    }
    // The injected write fault must close the session, not leave the
    // client hanging on a response that was silently dropped.
    LineReader reader(fd, 30000);
    std::string line;
    EXPECT_FALSE(reader.ReadLine(&line).ok());
  }
  ::close(fd);
  EXPECT_EQ(CounterValue("serve.ctrl_write_errors"), errors_before + 1);

  // The failure was scoped to that session; the server still serves.
  EXPECT_NE(RoundTrip(socket_path, "{\"op\":\"ping\"}")
                .first_line.find("\"ok\":true"),
            std::string::npos);
  server->Shutdown();
}
#endif  // CSJ_NO_FAILPOINTS

TEST_F(ServeTest, PerQueryMetricsDeltaInTrailer) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load({.name = "pts", .path = *index_path_}).ok());
  std::unique_ptr<Server> server;
  const std::string socket_path = StartServer(&registry, {}, &server);

  Response response = RoundTrip(
      socket_path, JoinRequest("csj", 0.01, 10, ",\"metrics\":true"));
  ASSERT_TRUE(response.transport.ok());
  EXPECT_EQ(response.code, "OK");
  auto trailer = json::Parse(response.trailer);
  ASSERT_TRUE(trailer.ok());
  const json::Value* metrics = trailer->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  // The delta window brackets exactly this query, so its sink counters are
  // present and non-smeared.
  EXPECT_NE(metrics->Find("counters"), nullptr);
  server->Shutdown();
}

}  // namespace
}  // namespace csj::serve

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/ego.h"
#include "core/parallel_join.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "index/rstar_tree.h"
#include "metric/metric_join.h"
#include "metric/generic_mtree.h"
#include "util/exec_context.h"
#include "util/random.h"

/// \file
/// The resource-governance acceptance matrix: every driver family (serial
/// tree, parallel tree, EGO, metric) must terminate with the correct Status
/// under an injected deadline, cancel, or budget exhaustion — no crash, no
/// runaway, no partial-output artifact.

namespace csj {
namespace {

std::vector<Entry<2>> UniformEntries(size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<Entry<2>> entries;
  entries.reserve(n);
  for (PointId i = 0; i < static_cast<PointId>(n); ++i) {
    entries.push_back({i, Point<2>{{rng.UniformDouble(), rng.UniformDouble()}}});
  }
  return entries;
}

RStarTree<2> BuildTree(const std::vector<Entry<2>>& entries) {
  RStarOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  RStarTree<2> tree(options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  return tree;
}

struct L2 {
  double operator()(const Point<2>& a, const Point<2>& b) const {
    return Distance(a, b);
  }
};

GenericMTree<Point<2>, L2> BuildMTree(const std::vector<Entry<2>>& entries) {
  GenericMTree<Point<2>, L2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  return tree;
}

/// An ExecContext whose deadline is already in the past: the first clock
/// check trips it, making deadline tests deterministic.
void ArmExpiredDeadline(ExecContext* ctx) {
  ctx->SetDeadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
}

// ------------------------------------------------------------ serial tree --

TEST(GovernanceTest, SerialJoinHonorsDeadline) {
  const auto entries = UniformEntries(400);
  auto tree = BuildTree(entries);
  ExecContext exec;
  ArmExpiredDeadline(&exec);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernanceTest, SerialJoinHonorsCancel) {
  const auto entries = UniformEntries(400);
  auto tree = BuildTree(entries);
  std::atomic<bool> cancel{true};  // raised before the run even starts
  ExecContext exec;
  exec.SetCancelFlag(&cancel);
  JoinOptions options;
  options.epsilon = 0.05;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
}

TEST(GovernanceTest, SerialJoinHonorsBudget) {
  const auto entries = UniformEntries(400);
  auto tree = BuildTree(entries);
  MemoryBudget budget(16);  // too small for any scratch allocation
  ExecContext exec;
  exec.SetMemoryBudget(&budget);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(budget.denials(), 1u);
  EXPECT_EQ(budget.used(), 0u);  // everything charged was released
}

TEST(GovernanceTest, SerialJoinDeadlineMsOptionAlone) {
  // deadline_ms must work without any caller-provided ExecContext (the bug
  // this PR fixes: it used to require the checkpointed runner).
  const auto entries = UniformEntries(400);
  auto tree = BuildTree(entries);
  JoinOptions options;
  options.epsilon = 0.4;  // dense: long enough to outlive a 1 ms deadline
  options.window_size = 10;
  options.deadline_ms = 1;
  CountingSink sink(3);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  if (!stats.status.ok()) {
    EXPECT_EQ(stats.status.code(), StatusCode::kDeadlineExceeded);
  }
  // Either it finished in under a millisecond (fine) or it stopped with the
  // proper code — both are correct; crashing or ignoring the option is not.
}

// ---------------------------------------------------------- parallel tree --

TEST(GovernanceTest, ParallelJoinHonorsCancel) {
  const auto entries = UniformEntries(600);
  auto tree = BuildTree(entries);
  std::atomic<bool> cancel{true};
  ExecContext exec;
  exec.SetCancelFlag(&cancel);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;
  options.exec = &exec;
  MemorySink sink(3);
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
  EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
  // A failed parallel join must not leak partial worker output.
  EXPECT_EQ(sink.num_links(), 0u);
  EXPECT_EQ(sink.num_groups(), 0u);
}

TEST(GovernanceTest, ParallelJoinHonorsDeadline) {
  const auto entries = UniformEntries(600);
  auto tree = BuildTree(entries);
  ExecContext exec;
  ArmExpiredDeadline(&exec);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;
  options.exec = &exec;
  MemorySink sink(3);
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
  EXPECT_EQ(stats.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernanceTest, ParallelJoinHonorsBudget) {
  const auto entries = UniformEntries(600);
  auto tree = BuildTree(entries);
  MemoryBudget budget(16);
  ExecContext exec;
  exec.SetMemoryBudget(&budget);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;
  options.exec = &exec;
  MemorySink sink(3);
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
  EXPECT_EQ(stats.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);
}

// -------------------------------------------------------------------- EGO --

TEST(GovernanceTest, EgoJoinHonorsCancel) {
  const auto entries = UniformEntries(500);
  std::atomic<bool> cancel{true};
  ExecContext exec;
  exec.SetCancelFlag(&cancel);
  EgoOptions options;
  options.epsilon = 0.05;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = EgoSimilarityJoin(entries, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
}

TEST(GovernanceTest, CompactEgoJoinHonorsDeadline) {
  const auto entries = UniformEntries(500);
  ExecContext exec;
  ArmExpiredDeadline(&exec);
  EgoOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = CompactEgoJoin(entries, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernanceTest, EgoJoinHonorsBudget) {
  const auto entries = UniformEntries(500);
  MemoryBudget budget(16);
  ExecContext exec;
  exec.SetMemoryBudget(&budget);
  EgoOptions options;
  options.epsilon = 0.05;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = EgoSimilarityJoin(entries, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);
}

// ----------------------------------------------------------------- metric --

TEST(GovernanceTest, MetricJoinHonorsCancel) {
  const auto entries = UniformEntries(300);
  auto tree = BuildMTree(entries);
  std::atomic<bool> cancel{true};
  ExecContext exec;
  exec.SetCancelFlag(&cancel);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 8;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = MetricCompactJoin(tree, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
}

TEST(GovernanceTest, MetricJoinHonorsDeadline) {
  const auto entries = UniformEntries(300);
  auto tree = BuildMTree(entries);
  ExecContext exec;
  ArmExpiredDeadline(&exec);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 8;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = MetricStandardJoin(tree, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernanceTest, MetricJoinHonorsBudget) {
  const auto entries = UniformEntries(300);
  auto tree = BuildMTree(entries);
  MemoryBudget budget(8);  // denies even a single group-member charge
  ExecContext exec;
  exec.SetMemoryBudget(&budget);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 8;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = MetricCompactJoin(tree, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);
}

// ------------------------------------------------------- no partial files --

TEST(GovernanceTest, GovernedStopLeavesNoPartialFile) {
  const auto entries = UniformEntries(400);
  auto tree = BuildTree(entries);
  const std::string path = ::testing::TempDir() + "/governed_stop_out.txt";
  std::remove(path.c_str());
  {
    std::atomic<bool> cancel{true};
    ExecContext exec;
    exec.SetCancelFlag(&cancel);
    JoinOptions options;
    options.epsilon = 0.05;
    options.exec = &exec;
    FileSink sink(3, path);
    ASSERT_TRUE(sink.open_status().ok());
    const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
    EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
    // Governed contract: a non-OK join status means the caller must NOT
    // Finish() the sink; the atomic FileSink then discards its temp file.
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr) << "partial output left behind at " << path;
  if (f != nullptr) std::fclose(f);
}

// ----------------------------------------------- degradation before death --

TEST(GovernanceTest, WindowShedsUnderPressureBeforeFailing) {
  // With a budget generous enough for scratch but tight on group windows,
  // CSJ(g) should degrade (shed window groups) and still complete losslessly
  // or stop cleanly — never crash. A completed run must stay within budget.
  const auto entries = UniformEntries(400);
  auto tree = BuildTree(entries);
  MemoryBudget budget(256 * 1024);
  ExecContext exec;
  exec.SetMemoryBudget(&budget);
  JoinOptions options;
  options.epsilon = 0.1;
  options.window_size = 64;
  options.exec = &exec;
  MemorySink sink(3);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  if (stats.status.ok()) {
    EXPECT_LE(budget.peak(), budget.limit());
  } else {
    EXPECT_EQ(stats.status.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(budget.used(), 0u);
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/parallel_join.h"
#include "core/result_cursor.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/point_io.h"
#include "index/rstar_tree.h"
#include "util/failpoint.h"
#include "util/format.h"

/// \file
/// End-to-end fault injection: drives failpoints through OutputFile,
/// FileSink, LoadPoints, and the sequential + parallel joins, asserting that
/// every injected fault is reported as a Status, that no partial output file
/// survives, and that the process never crashes.

namespace csj {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

/// The temp file FileSink/OutputFile write behind an atomic destination.
std::string TempPathFor(const std::string& path) {
  return StrFormat("%s.tmp.%d", path.c_str(), getpid());
}

void ExpectNoOutputArtifacts(const std::string& path) {
  EXPECT_FALSE(FileExists(path)) << "partial output survived: " << path;
  EXPECT_FALSE(FileExists(TempPathFor(path)))
      << "temp file survived: " << TempPathFor(path);
}

class FaultInjectionTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }

  /// A clustered workload dense enough that every join writes output.
  RStarTree<2> BuildTree(size_t n = 2000) {
    entries_ = ToEntries(GenerateGaussianClusters<2>(n, 5, 0.02, 17));
    RStarTree<2> tree;
    for (const auto& e : entries_) tree.Insert(e.id, e.point);
    return tree;
  }

  JoinOptions DenseOptions() const {
    JoinOptions options;
    options.epsilon = 0.05;
    return options;
  }

  std::vector<Entry<2>> entries_;
};

// --- Sequential joins --------------------------------------------------------

TEST_F(FaultInjectionTest, SequentialJoinReportsWriteFaultAndLeavesNoFile) {
  const auto tree = BuildTree();
  const std::string path = testing::TempDir() + "/csj_fault_seq.txt";
  // Let a handful of writes land, then fail: the fault hits mid-join.
  failpoint::ScopedFailpoint fp("output_file.append",
                                failpoint::Spec::EveryNth(5));
  FileSink sink(IdWidthFor(entries_.size()), path);
  ASSERT_TRUE(sink.open_status().ok());
  const JoinStats stats = CompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_EQ(stats.status.code(), StatusCode::kIoError);
  EXPECT_FALSE(sink.Finish().ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, AllThreeAlgorithmsSurviveWriteFaults) {
  const auto tree = BuildTree();
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
    failpoint::Enable("output_file.append", failpoint::Spec::EveryNth(3));
    const std::string path = testing::TempDir() + "/csj_fault_algo.txt";
    FileSink sink(IdWidthFor(entries_.size()), path);
    const JoinStats stats = RunSelfJoin(algorithm, tree, DenseOptions(), &sink);
    EXPECT_FALSE(stats.status.ok()) << JoinAlgorithmName(algorithm);
    EXPECT_FALSE(sink.Finish().ok()) << JoinAlgorithmName(algorithm);
    ExpectNoOutputArtifacts(path);
    failpoint::DisableAll();
  }
}

TEST_F(FaultInjectionTest, SequentialJoinAbortsTraversalEarlyOnDeadSink) {
  const auto tree = BuildTree();
  const std::string path = testing::TempDir() + "/csj_fault_abort.txt";

  // Reference run: how much work does a healthy join do? SSJ writes every
  // link straight to the sink, so the fault below hits immediately.
  FileSink healthy(IdWidthFor(entries_.size()), path);
  const JoinStats full =
      StandardSimilarityJoin(tree, DenseOptions(), &healthy);
  ASSERT_TRUE(healthy.Finish().ok());
  std::remove(path.c_str());

  // Faulty run: the very first write fails, so the traversal should abort
  // long before doing the full join's distance work.
  failpoint::ScopedFailpoint fp("output_file.append", failpoint::Spec::Once());
  FileSink sink(IdWidthFor(entries_.size()), path);
  const JoinStats aborted =
      StandardSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_FALSE(aborted.status.ok());
  EXPECT_FALSE(sink.Finish().ok());
  ExpectNoOutputArtifacts(path);
  EXPECT_LT(aborted.distance_computations, full.distance_computations / 2)
      << "dead sink did not abort the traversal early";
}

TEST_F(FaultInjectionTest, OpenFaultMakesJoinANoOp) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_fault_open.txt";
  failpoint::ScopedFailpoint fp("output_file.open", failpoint::Spec::Always());
  FileSink sink(IdWidthFor(entries_.size()), path);
  EXPECT_FALSE(sink.open_status().ok());
  const JoinStats stats = CompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_EQ(sink.num_links(), 0u);
  EXPECT_EQ(sink.num_groups(), 0u);
  EXPECT_EQ(sink.bytes(), 0u);
  EXPECT_FALSE(sink.Finish().ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, FlushFaultAtFinishIsReportedAndCleansUp) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_fault_flush.txt";
  failpoint::ScopedFailpoint fp("output_file.flush", failpoint::Spec::Always());
  FileSink sink(IdWidthFor(entries_.size()), path);
  const JoinStats stats = CompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_TRUE(stats.status.ok());  // writes buffered fine; flush fails later
  EXPECT_FALSE(sink.Finish().ok());
  EXPECT_FALSE(sink.error().ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, RenameFaultKeepsPreviousFileIntact) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_fault_rename.txt";
  // A previous successful result is on disk.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("previous result\n", f);
    std::fclose(f);
  }
  failpoint::ScopedFailpoint fp("output_file.rename",
                                failpoint::Spec::Always());
  FileSink sink(IdWidthFor(entries_.size()), path);
  CompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_FALSE(sink.Finish().ok());
  // The failed commit must not have clobbered the previous result.
  EXPECT_EQ(ReadWholeFile(path), "previous result\n");
  EXPECT_FALSE(FileExists(TempPathFor(path)));
  std::remove(path.c_str());
}

// --- Parallel join -----------------------------------------------------------

TEST_F(FaultInjectionTest, ParallelJoinReportsReplayWriteFaultAndLeavesNoFile) {
  const auto tree = BuildTree();
  const std::string path = testing::TempDir() + "/csj_fault_par.txt";
  failpoint::ScopedFailpoint fp("output_file.append",
                                failpoint::Spec::EveryNth(5));
  FileSink sink(IdWidthFor(entries_.size()), path);
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, DenseOptions(), &sink, parallel);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_FALSE(sink.Finish().ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, ParallelWorkerExceptionIsCapturedNotFatal) {
  const auto tree = BuildTree();
  failpoint::ScopedFailpoint fp("parallel_join.worker",
                                failpoint::Spec::Once());
  MemorySink sink(IdWidthFor(entries_.size()));
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, DenseOptions(), &sink, parallel);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_EQ(stats.status.code(), StatusCode::kInternal);
  EXPECT_NE(stats.status.message().find("injected worker fault"),
            std::string::npos);
  // The incomplete result was discarded, not silently handed back.
  EXPECT_EQ(sink.num_links(), 0u);
  EXPECT_EQ(sink.num_groups(), 0u);
}

TEST_F(FaultInjectionTest, ParallelJoinWithDeadSinkSkipsTheWork) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_fault_par_dead.txt";
  failpoint::ScopedFailpoint fp("output_file.open", failpoint::Spec::Always());
  FileSink sink(IdWidthFor(entries_.size()), path);
  ASSERT_FALSE(sink.open_status().ok());
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_EQ(stats.distance_computations, 0u);
  EXPECT_FALSE(sink.Finish().ok());
  ExpectNoOutputArtifacts(path);
}

// --- Binary sink (asynchronous block writer) ---------------------------------

TEST_F(FaultInjectionTest, BinarySinkReportsWriterThreadFaultAndLeavesNoFile) {
  const auto tree = BuildTree();
  const std::string path = testing::TempDir() + "/csj_fault_bin.bin";
  // The writer thread appends one block at a time; let the header and a
  // couple of blocks land, then fail mid-stream. Small blocks guarantee the
  // dense join produces enough of them to hit the fault while the producer
  // is still emitting.
  failpoint::ScopedFailpoint fp("output_file.append",
                                failpoint::Spec::EveryNth(4));
  BinaryFileSink::Options options;
  options.block_payload_bytes = 256;
  BinaryFileSink sink(IdWidthFor(entries_.size()), path, options);
  const JoinStats stats = CompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_EQ(stats.status.code(), StatusCode::kIoError);
  EXPECT_FALSE(sink.Finish().ok());
  EXPECT_FALSE(sink.error().ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, BinarySinkFaultAtFinishStillCleansUp) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_fault_bin_fin.bin";
  // With the default 64 KiB blocks this small result stays in the open
  // block, so the first failing append is the one Finish() triggers.
  failpoint::ScopedFailpoint fp("output_file.flush", failpoint::Spec::Always());
  BinaryFileSink sink(IdWidthFor(entries_.size()), path);
  const JoinStats stats = CompactSimilarityJoin(tree, DenseOptions(), &sink);
  EXPECT_TRUE(stats.status.ok());  // blocks queued fine; flush fails later
  EXPECT_FALSE(sink.Finish().ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, BinarySinkOpenFaultMakesJoinANoOp) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_fault_bin_open.bin";
  failpoint::ScopedFailpoint fp("output_file.open", failpoint::Spec::Always());
  auto sink =
      MakeSink(OutputSpec::File(path, entries_.size(), OutputFormat::kBinary));
  EXPECT_FALSE(sink.ok());
  ExpectNoOutputArtifacts(path);
}

TEST_F(FaultInjectionTest, BinarySinkDisarmedFailpointsRoundTrip) {
  const auto tree = BuildTree(500);
  const std::string path = testing::TempDir() + "/csj_nofault_bin.bin";
  // Arm-then-disarm must leave the binary pipeline fully functional.
  failpoint::Enable("output_file.append", failpoint::Spec::Always());
  failpoint::DisableAll();

  auto sink = MakeSink(
      OutputSpec::File(path, entries_.size(), OutputFormat::kBinary));
  ASSERT_TRUE(sink.ok());
  const JoinStats stats =
      CompactSimilarityJoin(tree, DenseOptions(), sink->get());
  EXPECT_TRUE(stats.status.ok());
  ASSERT_TRUE((*sink)->Finish().ok());

  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  while ((*cursor)->Next()) {
  }
  EXPECT_TRUE((*cursor)->status().ok()) << (*cursor)->status().ToString();
  EXPECT_EQ((*cursor)->links_read() + (*cursor)->groups_read(),
            (*sink)->num_links() + (*sink)->num_groups());
  std::remove(path.c_str());
}

// --- LoadPoints --------------------------------------------------------------

TEST_F(FaultInjectionTest, LoadPointsSurfacesInjectedReadFault) {
  const std::string path = testing::TempDir() + "/csj_fault_points.txt";
  const auto points = GenerateUniform<2>(50, 3);
  ASSERT_TRUE(SavePoints(path, points).ok());
  {
    failpoint::ScopedFailpoint fp("point_io.read", failpoint::Spec::Always());
    auto result = LoadPoints<2>(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
  // With the failpoint gone the same file loads fine.
  auto result = LoadPoints<2>(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, points);
  std::remove(path.c_str());
}

// --- No-fault baseline -------------------------------------------------------

TEST_F(FaultInjectionTest, DisabledFailpointsLeaveOutputByteIdentical) {
  const auto tree = BuildTree(1000);
  const std::string path_a = testing::TempDir() + "/csj_nofault_a.txt";
  const std::string path_b = testing::TempDir() + "/csj_nofault_b.txt";

  FileSink sink_a(IdWidthFor(entries_.size()), path_a);
  const JoinStats stats_a = CompactSimilarityJoin(tree, DenseOptions(), &sink_a);
  ASSERT_TRUE(sink_a.Finish().ok());
  EXPECT_TRUE(stats_a.status.ok());

  // Arm-then-disarm must leave no residue on later runs.
  failpoint::Enable("output_file.append", failpoint::Spec::Always());
  failpoint::DisableAll();

  FileSink sink_b(IdWidthFor(entries_.size()), path_b);
  const JoinStats stats_b = CompactSimilarityJoin(tree, DenseOptions(), &sink_b);
  ASSERT_TRUE(sink_b.Finish().ok());
  EXPECT_TRUE(stats_b.status.ok());

  const std::string content_a = ReadWholeFile(path_a);
  EXPECT_EQ(content_a, ReadWholeFile(path_b));
  EXPECT_GT(content_a.size(), 0u);
  EXPECT_EQ(content_a.size(), sink_a.bytes());
  EXPECT_EQ(stats_a.output_bytes, stats_b.output_bytes);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace csj

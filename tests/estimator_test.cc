#include <gtest/gtest.h>

#include <cmath>

#include "core/brute.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "plan/estimator.h"

namespace csj::plan {
namespace {

/// Exact link count (qualifying pairs, d <= eps) by brute force.
uint64_t ExactLinks(const std::vector<Point2>& points, double eps) {
  return BruteForceSelfJoin(ToEntries(points), eps).size();
}

TEST(EstimatorTest, SketchIsDeterministic) {
  const auto points = GenerateGaussianClusters<2>(5000, 6, 0.03, 42);
  const DatasetSketch a = BuildSketch(points);
  const DatasetSketch b = BuildSketch(points);
  EXPECT_EQ(a.num_points, b.num_points);
  EXPECT_EQ(a.sample_size, b.sample_size);
  EXPECT_EQ(a.sample.size(), b.sample.size());
  for (size_t i = 0; i < a.sample.size(); ++i) {
    EXPECT_EQ(a.sample[i], b.sample[i]) << "sample diverged at " << i;
  }
  EXPECT_EQ(a.collisions.size(), b.collisions.size());
  for (size_t i = 0; i < a.collisions.size(); ++i) {
    EXPECT_EQ(a.collisions[i].pairs, b.collisions[i].pairs);
  }
  EXPECT_DOUBLE_EQ(a.d2.slope, b.d2.slope);

  // And estimates built from equal sketches are equal.
  const auto ea = EstimateOutput(a, 0.01, 4);
  const auto eb = EstimateOutput(b, 0.01, 4);
  EXPECT_EQ(ea.links, eb.links);
  EXPECT_EQ(ea.groups, eb.groups);
  EXPECT_EQ(ea.csj_bytes, eb.csj_bytes);
}

TEST(EstimatorTest, SketchBasicShape) {
  const auto points = GenerateUniform<2>(10000, 9);
  const DatasetSketch sketch = BuildSketch(points);
  EXPECT_EQ(sketch.num_points, 10000u);
  EXPECT_EQ(sketch.sample_size, 4096u);  // capped at SketchOptions default
  EXPECT_NEAR(sketch.sample_fraction, 4096.0 / 10000.0, 1e-9);
  for (int d = 0; d < 2; ++d) {
    EXPECT_GE(sketch.min_coord[d], 0.0);
    EXPECT_LE(sketch.max_coord[d], 1.0);
    EXPECT_GT(sketch.spread[d], 0.9);  // uniform fills the unit square
    EXPECT_GT(sketch.stddev[d], 0.1);
  }
  // Uniform 2-D data has correlation dimension ~2.
  ASSERT_GE(sketch.d2_points, 2u);
  EXPECT_NEAR(sketch.d2.slope, 2.0, 0.4);
}

TEST(EstimatorTest, SmallDatasetsAreSampledWhole) {
  const auto points = GenerateUniform<2>(300, 5);
  const DatasetSketch sketch = BuildSketch(points);
  EXPECT_EQ(sketch.sample_size, 300u);
  EXPECT_DOUBLE_EQ(sketch.sample_fraction, 1.0);
}

TEST(EstimatorTest, LinkEstimateWithinTwoXOfExact) {
  // The acceptance bound of the planner work: predicted links within 2x of
  // actual, on both a clustered and a uniform dataset, across the smoke eps
  // ladder. Exact counts come from brute force on modest n.
  struct Case {
    const char* name;
    std::vector<Point2> points;
  };
  const std::vector<Case> cases = {
      {"clustered", GenerateGaussianClusters<2>(4000, 8, 0.02, 7)},
      {"uniform", GenerateUniform<2>(4000, 11)},
  };
  for (const auto& c : cases) {
    const DatasetSketch sketch = BuildSketch(c.points);
    for (double eps : {0.005, 0.01, 0.02}) {
      const uint64_t actual = ExactLinks(c.points, eps);
      const OutputEstimate est = EstimateOutput(sketch, eps, 4);
      if (actual == 0) continue;  // nothing to bound against
      const double ratio = static_cast<double>(est.links) /
                           static_cast<double>(actual);
      EXPECT_GE(ratio, 0.5) << c.name << " eps=" << eps << " est=" << est.links
                            << " actual=" << actual;
      EXPECT_LE(ratio, 2.0) << c.name << " eps=" << eps << " est=" << est.links
                            << " actual=" << actual;
    }
  }
}

TEST(EstimatorTest, EstimatesGrowWithEps) {
  const auto points = GenerateGaussianClusters<2>(4000, 8, 0.02, 7);
  const DatasetSketch sketch = BuildSketch(points);
  uint64_t prev_links = 0;
  double prev_work = 0.0;
  for (double eps : {0.002, 0.005, 0.01, 0.02, 0.05}) {
    const OutputEstimate est = EstimateOutput(sketch, eps, 4);
    EXPECT_GE(est.links, prev_links) << "eps=" << eps;
    EXPECT_GE(est.leaf_work, prev_work) << "eps=" << eps;
    prev_links = est.links;
    prev_work = est.leaf_work;
  }
}

TEST(EstimatorTest, CompressionFavorsClusteredData) {
  // At an eps that groups cluster cores, the predicted CSJ compression on
  // clustered data must clearly beat the one on uniform data at the same
  // output scale — this is the signal the planner keys off.
  const DatasetSketch clustered =
      BuildSketch(GenerateGaussianClusters<2>(6000, 8, 0.01, 7));
  const DatasetSketch uniform = BuildSketch(GenerateUniform<2>(6000, 11));
  const OutputEstimate ec = EstimateOutput(clustered, 0.02, 4);
  const OutputEstimate eu = EstimateOutput(uniform, 0.005, 4);
  EXPECT_GT(ec.compression, 1.2);
  EXPECT_GT(ec.compression, eu.compression);
  EXPECT_GE(eu.compression, 1.0 - 1e-9);
  EXPECT_LE(ec.csj_bytes, ec.ssj_bytes);
}

TEST(EstimatorTest, TinyEpsFallsBackToPowerLaw) {
  // Far below the sample's resolution the direct probe finds no pairs; the
  // estimator must fall back to a power-law extrapolation, not report 0.
  // (Uniform data: the clamped-Gaussian generator piles points onto the
  // cube boundary, whose coincident pairs would satisfy the probe at any
  // eps.)
  const auto points = GenerateUniform<2>(6000, 13);
  const DatasetSketch sketch = BuildSketch(points);
  const OutputEstimate est = EstimateOutput(sketch, 1e-5, 4);
  EXPECT_TRUE(est.from_power_law);
}

TEST(EstimatorTest, SketchJsonHasTheExplainFields) {
  const DatasetSketch sketch = BuildSketch(GenerateUniform<2>(2000, 3));
  const json::Value v = sketch.ToJsonValue();
  ASSERT_TRUE(v.is_object());
  const std::string text = json::Write(v);
  EXPECT_NE(text.find("num_points"), std::string::npos);
  EXPECT_NE(text.find("d2"), std::string::npos);
  EXPECT_NE(text.find("sample_size"), std::string::npos);
  // The raw sample must NOT be serialized (reports would balloon).
  EXPECT_EQ(text.find("\"sample\""), std::string::npos);

  const OutputEstimate est = EstimateOutput(sketch, 0.01, 4);
  const std::string est_text = json::Write(est.ToJsonValue());
  EXPECT_NE(est_text.find("links"), std::string::npos);
  EXPECT_NE(est_text.find("compression"), std::string::npos);
  EXPECT_NE(est_text.find("leaf_work"), std::string::npos);
}

}  // namespace
}  // namespace csj::plan

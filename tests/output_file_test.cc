#include "storage/output_file.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "util/failpoint.h"
#include "util/format.h"

namespace csj {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

std::string TempPathFor(const std::string& path) {
  return StrFormat("%s.tmp.%d", path.c_str(), getpid());
}

class OutputFileTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(OutputFileTest, WritesAndCountsBytes) {
  const std::string path = testing::TempDir() + "/csj_of_basic.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  EXPECT_TRUE(file.is_open());
  EXPECT_TRUE(file.Append("hello ").ok());
  EXPECT_TRUE(file.Append("world\n").ok());
  EXPECT_EQ(file.bytes_written(), 12u);
  ASSERT_TRUE(file.Close().ok());
  EXPECT_FALSE(file.is_open());
  EXPECT_EQ(ReadWholeFile(path), "hello world\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, DoubleCloseIsSafe) {
  const std::string path = testing::TempDir() + "/csj_of_dclose.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("x\n").ok());
  EXPECT_TRUE(file.Close().ok());
  EXPECT_TRUE(file.Close().ok());  // second close: no-op, still OK
  EXPECT_EQ(ReadWholeFile(path), "x\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, AppendAfterCloseFailsWithoutCorruption) {
  const std::string path = testing::TempDir() + "/csj_of_late.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("committed\n").ok());
  ASSERT_TRUE(file.Close().ok());

  const Status late = file.Append("too late\n");
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(file.status().ok());  // the committed file is not retro-poisoned
  EXPECT_EQ(file.bytes_written(), 10u);
  EXPECT_EQ(ReadWholeFile(path), "committed\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, AppendWithoutOpenFails) {
  OutputFile file;
  EXPECT_FALSE(file.Append("nope").ok());
  EXPECT_EQ(file.bytes_written(), 0u);
}

TEST_F(OutputFileTest, OpenFailureIsSticky) {
  OutputFile file;
  const Status open = file.Open("/nonexistent-dir-xyz/out.txt");
  EXPECT_FALSE(open.ok());
  EXPECT_EQ(file.status(), open);
  EXPECT_EQ(file.Append("data"), open);  // sticky
  EXPECT_EQ(file.Close(), open);
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, FailedWriteIsStickyAndRemovesPartialFile) {
  const std::string path = testing::TempDir() + "/csj_of_shortwrite.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("0123456789").ok());
  EXPECT_EQ(file.bytes_written(), 10u);

  failpoint::ScopedFailpoint fp("output_file.append",
                                failpoint::Spec::Always());
  const Status failed = file.Append("abcdefgh");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // bytes_written reflects what actually reached the stream: the simulated
  // device accepted half the payload before dying.
  EXPECT_EQ(file.bytes_written(), 14u);
  EXPECT_FALSE(file.is_open());
  EXPECT_FALSE(FileExists(path)) << "partial file survived a failed write";

  // Sticky: later operations return the original error.
  EXPECT_EQ(file.Append("more"), failed);
  EXPECT_EQ(file.Close(), failed);
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, AtomicCommitOnlyAppearsAfterClose) {
  const std::string path = testing::TempDir() + "/csj_of_atomic.txt";
  std::remove(path.c_str());
  OutputFile file;
  ASSERT_TRUE(file.Open(path, OutputFile::Options{.atomic = true}).ok());
  ASSERT_TRUE(file.Append("atomic content\n").ok());
  EXPECT_FALSE(FileExists(path)) << "destination visible before commit";
  EXPECT_TRUE(FileExists(TempPathFor(path)));
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "atomic content\n");
  EXPECT_FALSE(FileExists(TempPathFor(path)));
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, AbandonedAtomicWriterLeavesNothingBehind) {
  const std::string path = testing::TempDir() + "/csj_of_abandon.txt";
  std::remove(path.c_str());
  {
    OutputFile file;
    ASSERT_TRUE(file.Open(path, OutputFile::Options{.atomic = true}).ok());
    ASSERT_TRUE(file.Append("never committed").ok());
    // Destroyed without Close(): the simulated "interrupted join".
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TempPathFor(path)));
}

TEST_F(OutputFileTest, AbandonedPlainWriterRemovesPartialFile) {
  const std::string path = testing::TempDir() + "/csj_of_abandon2.txt";
  {
    OutputFile file;
    ASSERT_TRUE(file.Open(path).ok());
    ASSERT_TRUE(file.Append("partial").ok());
  }
  EXPECT_FALSE(FileExists(path));
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, AtomicRenameFaultPreservesExistingDestination) {
  const std::string path = testing::TempDir() + "/csj_of_rename.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("old\n", f);
    std::fclose(f);
  }
  failpoint::ScopedFailpoint fp("output_file.rename",
                                failpoint::Spec::Always());
  OutputFile file;
  ASSERT_TRUE(file.Open(path, OutputFile::Options{.atomic = true}).ok());
  ASSERT_TRUE(file.Append("new\n").ok());
  EXPECT_FALSE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "old\n");  // old result untouched
  EXPECT_FALSE(FileExists(TempPathFor(path)));
  std::remove(path.c_str());
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, SyncOnCloseSucceedsOnHealthyFile) {
  const std::string path = testing::TempDir() + "/csj_of_sync.txt";
  OutputFile file;
  ASSERT_TRUE(
      file.Open(path, OutputFile::Options{.atomic = true, .sync_on_close = true})
          .ok());
  ASSERT_TRUE(file.Append("durable\n").ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "durable\n");
  std::remove(path.c_str());
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, SyncFaultIsReportedAndCleansUp) {
  const std::string path = testing::TempDir() + "/csj_of_syncfault.txt";
  std::remove(path.c_str());
  failpoint::ScopedFailpoint fp("output_file.sync", failpoint::Spec::Always());
  OutputFile file;
  ASSERT_TRUE(
      file.Open(path, OutputFile::Options{.atomic = true, .sync_on_close = true})
          .ok());
  ASSERT_TRUE(file.Append("x").ok());
  EXPECT_FALSE(file.Close().ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TempPathFor(path)));
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, OpenForResumeTruncatesAndContinues) {
  const std::string path = testing::TempDir() + "/csj_of_resume.txt";
  {
    OutputFile file;
    ASSERT_TRUE(file.Open(path).ok());
    ASSERT_TRUE(file.Append("0123456789").ok());
    ASSERT_TRUE(file.Close().ok());
  }
  // Keep the first 4 bytes (the "checkpointed" position); the tail written
  // after the checkpoint is discarded and rewriting continues from there.
  OutputFile file;
  ASSERT_TRUE(file.OpenForResume(path, 4, OutputFile::Options()).ok());
  EXPECT_EQ(file.bytes_written(), 4u);  // absolute output position
  ASSERT_TRUE(file.Append("ABCD").ok());
  EXPECT_EQ(file.bytes_written(), 8u);
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "0123ABCD");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, OpenForResumeValidatesTheExistingFile) {
  const std::string missing = testing::TempDir() + "/csj_of_no_such.txt";
  OutputFile file;
  const Status not_found =
      file.OpenForResume(missing, 0, OutputFile::Options());
  EXPECT_EQ(not_found.code(), StatusCode::kNotFound);

  // A file shorter than the checkpointed position means the durable prefix
  // is gone — resuming would corrupt the output.
  const std::string path = testing::TempDir() + "/csj_of_short.txt";
  {
    OutputFile writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append("abc").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  OutputFile resumer;
  const Status too_short =
      resumer.OpenForResume(path, 100, OutputFile::Options());
  EXPECT_EQ(too_short.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ReadWholeFile(path), "abc") << "validation must not truncate";
  std::remove(path.c_str());
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, DirSyncFaultOnDurableCloseIsReportedKeepingTheFile) {
  // Satellite of the durability gap fix: a committed rename is only durable
  // once the parent directory is fsynced, and a failure of that fsync must
  // surface as a Status — while the (complete, renamed) file stays put.
  const std::string path = testing::TempDir() + "/csj_of_dirsync.txt";
  OutputFile file;
  OutputFile::Options options;
  options.atomic = true;
  options.sync_on_close = true;
  ASSERT_TRUE(file.Open(path, options).ok());
  ASSERT_TRUE(file.Append("durable payload\n").ok());

  failpoint::ScopedFailpoint fp("output_file.dirsync",
                                failpoint::Spec::Always());
  const Status close = file.Close();
  EXPECT_FALSE(close.ok());
  EXPECT_EQ(close.code(), StatusCode::kIoError);
  EXPECT_TRUE(FileExists(path))
      << "a dirsync failure must not delete the committed file";
  EXPECT_EQ(ReadWholeFile(path), "durable payload\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, SyncContainingDirFailpointFires) {
  const std::string path = testing::TempDir() + "/csj_of_dirprobe.txt";
  EXPECT_TRUE(OutputFile::SyncContainingDir(path).ok());
  failpoint::ScopedFailpoint fp("output_file.dirsync",
                                failpoint::Spec::Always());
  EXPECT_FALSE(OutputFile::SyncContainingDir(path).ok());
}

TEST_F(OutputFileTest, TransientAppendFaultIsRetriedToSuccess) {
  const std::string path = testing::TempDir() + "/csj_of_transient.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());

  // One simulated EINTR-style short write: the retry loop must re-append the
  // missing suffix and succeed without surfacing an error.
  failpoint::ScopedFailpoint fp("output_file.append_transient",
                                failpoint::Spec::Once());
  ASSERT_TRUE(file.Append("retry me please\n").ok());
  EXPECT_TRUE(file.status().ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "retry me please\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, PersistentTransientFaultExhaustsRetriesAndSticks) {
  const std::string path = testing::TempDir() + "/csj_of_exhaust.txt";
  OutputFile file;
  OutputFile::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 0.01;  // keep the test fast
  options.retry.max_backoff_ms = 0.02;
  ASSERT_TRUE(file.Open(path, options).ok());

  // The fault never clears, so after max_attempts the error must stick.
  failpoint::ScopedFailpoint fp("output_file.append_transient",
                                failpoint::Spec::Always());
  const Status failed = file.Append("doomed\n");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(file.Append("more"), failed) << "exhausted retry must be sticky";
}

TEST_F(OutputFileTest, RetryDisabledFailsOnFirstTransientFault) {
  const std::string path = testing::TempDir() + "/csj_of_noretry.txt";
  OutputFile file;
  OutputFile::Options options;
  options.retry.max_attempts = 1;
  ASSERT_TRUE(file.Open(path, options).ok());
  failpoint::ScopedFailpoint fp("output_file.append_transient",
                                failpoint::Spec::Once());
  EXPECT_FALSE(file.Append("no second chance\n").ok());
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, ReusableAfterClose) {
  const std::string path_a = testing::TempDir() + "/csj_of_reuse_a.txt";
  const std::string path_b = testing::TempDir() + "/csj_of_reuse_b.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path_a).ok());
  ASSERT_TRUE(file.Append("a").ok());
  ASSERT_TRUE(file.Close().ok());
  ASSERT_TRUE(file.Open(path_b).ok());
  ASSERT_TRUE(file.Append("bb").ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path_a), "a");
  EXPECT_EQ(ReadWholeFile(path_b), "bb");
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace csj

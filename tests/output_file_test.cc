#include "storage/output_file.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "util/failpoint.h"
#include "util/format.h"

namespace csj {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

std::string TempPathFor(const std::string& path) {
  return StrFormat("%s.tmp.%d", path.c_str(), getpid());
}

class OutputFileTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(OutputFileTest, WritesAndCountsBytes) {
  const std::string path = testing::TempDir() + "/csj_of_basic.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  EXPECT_TRUE(file.is_open());
  EXPECT_TRUE(file.Append("hello ").ok());
  EXPECT_TRUE(file.Append("world\n").ok());
  EXPECT_EQ(file.bytes_written(), 12u);
  ASSERT_TRUE(file.Close().ok());
  EXPECT_FALSE(file.is_open());
  EXPECT_EQ(ReadWholeFile(path), "hello world\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, DoubleCloseIsSafe) {
  const std::string path = testing::TempDir() + "/csj_of_dclose.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("x\n").ok());
  EXPECT_TRUE(file.Close().ok());
  EXPECT_TRUE(file.Close().ok());  // second close: no-op, still OK
  EXPECT_EQ(ReadWholeFile(path), "x\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, AppendAfterCloseFailsWithoutCorruption) {
  const std::string path = testing::TempDir() + "/csj_of_late.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("committed\n").ok());
  ASSERT_TRUE(file.Close().ok());

  const Status late = file.Append("too late\n");
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(file.status().ok());  // the committed file is not retro-poisoned
  EXPECT_EQ(file.bytes_written(), 10u);
  EXPECT_EQ(ReadWholeFile(path), "committed\n");
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, AppendWithoutOpenFails) {
  OutputFile file;
  EXPECT_FALSE(file.Append("nope").ok());
  EXPECT_EQ(file.bytes_written(), 0u);
}

TEST_F(OutputFileTest, OpenFailureIsSticky) {
  OutputFile file;
  const Status open = file.Open("/nonexistent-dir-xyz/out.txt");
  EXPECT_FALSE(open.ok());
  EXPECT_EQ(file.status(), open);
  EXPECT_EQ(file.Append("data"), open);  // sticky
  EXPECT_EQ(file.Close(), open);
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, FailedWriteIsStickyAndRemovesPartialFile) {
  const std::string path = testing::TempDir() + "/csj_of_shortwrite.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("0123456789").ok());
  EXPECT_EQ(file.bytes_written(), 10u);

  failpoint::ScopedFailpoint fp("output_file.append",
                                failpoint::Spec::Always());
  const Status failed = file.Append("abcdefgh");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // bytes_written reflects what actually reached the stream: the simulated
  // device accepted half the payload before dying.
  EXPECT_EQ(file.bytes_written(), 14u);
  EXPECT_FALSE(file.is_open());
  EXPECT_FALSE(FileExists(path)) << "partial file survived a failed write";

  // Sticky: later operations return the original error.
  EXPECT_EQ(file.Append("more"), failed);
  EXPECT_EQ(file.Close(), failed);
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, AtomicCommitOnlyAppearsAfterClose) {
  const std::string path = testing::TempDir() + "/csj_of_atomic.txt";
  std::remove(path.c_str());
  OutputFile file;
  ASSERT_TRUE(file.Open(path, OutputFile::Options{.atomic = true}).ok());
  ASSERT_TRUE(file.Append("atomic content\n").ok());
  EXPECT_FALSE(FileExists(path)) << "destination visible before commit";
  EXPECT_TRUE(FileExists(TempPathFor(path)));
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "atomic content\n");
  EXPECT_FALSE(FileExists(TempPathFor(path)));
  std::remove(path.c_str());
}

TEST_F(OutputFileTest, AbandonedAtomicWriterLeavesNothingBehind) {
  const std::string path = testing::TempDir() + "/csj_of_abandon.txt";
  std::remove(path.c_str());
  {
    OutputFile file;
    ASSERT_TRUE(file.Open(path, OutputFile::Options{.atomic = true}).ok());
    ASSERT_TRUE(file.Append("never committed").ok());
    // Destroyed without Close(): the simulated "interrupted join".
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TempPathFor(path)));
}

TEST_F(OutputFileTest, AbandonedPlainWriterRemovesPartialFile) {
  const std::string path = testing::TempDir() + "/csj_of_abandon2.txt";
  {
    OutputFile file;
    ASSERT_TRUE(file.Open(path).ok());
    ASSERT_TRUE(file.Append("partial").ok());
  }
  EXPECT_FALSE(FileExists(path));
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, AtomicRenameFaultPreservesExistingDestination) {
  const std::string path = testing::TempDir() + "/csj_of_rename.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("old\n", f);
    std::fclose(f);
  }
  failpoint::ScopedFailpoint fp("output_file.rename",
                                failpoint::Spec::Always());
  OutputFile file;
  ASSERT_TRUE(file.Open(path, OutputFile::Options{.atomic = true}).ok());
  ASSERT_TRUE(file.Append("new\n").ok());
  EXPECT_FALSE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "old\n");  // old result untouched
  EXPECT_FALSE(FileExists(TempPathFor(path)));
  std::remove(path.c_str());
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, SyncOnCloseSucceedsOnHealthyFile) {
  const std::string path = testing::TempDir() + "/csj_of_sync.txt";
  OutputFile file;
  ASSERT_TRUE(
      file.Open(path, OutputFile::Options{.atomic = true, .sync_on_close = true})
          .ok());
  ASSERT_TRUE(file.Append("durable\n").ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "durable\n");
  std::remove(path.c_str());
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, SyncFaultIsReportedAndCleansUp) {
  const std::string path = testing::TempDir() + "/csj_of_syncfault.txt";
  std::remove(path.c_str());
  failpoint::ScopedFailpoint fp("output_file.sync", failpoint::Spec::Always());
  OutputFile file;
  ASSERT_TRUE(
      file.Open(path, OutputFile::Options{.atomic = true, .sync_on_close = true})
          .ok());
  ASSERT_TRUE(file.Append("x").ok());
  EXPECT_FALSE(file.Close().ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TempPathFor(path)));
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(OutputFileTest, ReusableAfterClose) {
  const std::string path_a = testing::TempDir() + "/csj_of_reuse_a.txt";
  const std::string path_b = testing::TempDir() + "/csj_of_reuse_b.txt";
  OutputFile file;
  ASSERT_TRUE(file.Open(path_a).ok());
  ASSERT_TRUE(file.Append("a").ok());
  ASSERT_TRUE(file.Close().ok());
  ASSERT_TRUE(file.Open(path_b).ok());
  ASSERT_TRUE(file.Append("bb").ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadWholeFile(path_a), "a");
  EXPECT_EQ(ReadWholeFile(path_b), "bb");
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/mtree.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "util/random.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

/// Brute-force k nearest neighbors, closest first.
template <int D>
std::vector<double> BruteKnnDistances(const std::vector<Entry<D>>& entries,
                                      const Point<D>& center, size_t k) {
  std::vector<double> dists;
  for (const auto& e : entries) dists.push_back(Distance(center, e.point));
  std::sort(dists.begin(), dists.end());
  dists.resize(std::min(k, dists.size()));
  return dists;
}

template <typename Tree, int D>
void CheckKnnAgainstBrute(const Tree& tree,
                          const std::vector<Entry<D>>& entries) {
  Rng rng(99);
  for (int q = 0; q < 30; ++q) {
    Point<D> center;
    for (int d = 0; d < D; ++d) center[d] = rng.UniformDouble();
    for (size_t k : {1u, 5u, 17u}) {
      const auto result = tree.NearestNeighbors(center, k);
      const auto expected = BruteKnnDistances(entries, center, k);
      ASSERT_EQ(result.size(), expected.size());
      for (size_t i = 0; i < result.size(); ++i) {
        // Distances must match (ids may differ under ties).
        EXPECT_NEAR(Distance(center, result[i].point), expected[i], 1e-12)
            << "k=" << k << " i=" << i;
      }
      // Closest-first ordering.
      for (size_t i = 1; i < result.size(); ++i) {
        EXPECT_LE(Distance(center, result[i - 1].point),
                  Distance(center, result[i].point) + 1e-12);
      }
    }
  }
}

TEST(KnnTest, RStarMatchesBruteForce) {
  const auto entries = RandomEntries<2>(1200, 5);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  CheckKnnAgainstBrute(tree, entries);
}

TEST(KnnTest, RTreeMatchesBruteForce) {
  const auto entries = RandomEntries<2>(1000, 7);
  RTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  CheckKnnAgainstBrute(tree, entries);
}

TEST(KnnTest, MTreeMatchesBruteForce) {
  const auto entries = RandomEntries<2>(900, 9);
  MTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  CheckKnnAgainstBrute(tree, entries);
}

TEST(KnnTest, PackedTreeMatchesBruteForce) {
  const auto entries = RandomEntries<3>(1500, 11);
  RStarTree<3> tree;
  PackStr(&tree, entries);
  CheckKnnAgainstBrute(tree, entries);
}

TEST(KnnTest, KLargerThanTreeReturnsAll) {
  const auto entries = RandomEntries<2>(10, 13);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const auto result = tree.NearestNeighbors(Point2{{0.5, 0.5}}, 100);
  EXPECT_EQ(result.size(), 10u);
}

TEST(KnnTest, EmptyTreeAndZeroK) {
  RStarTree<2> tree;
  EXPECT_TRUE(tree.NearestNeighbors(Point2{{0.5, 0.5}}, 3).empty());
  tree.Insert(0, Point2{{0.1, 0.1}});
  EXPECT_TRUE(tree.NearestNeighbors(Point2{{0.5, 0.5}}, 0).empty());
}

TEST(KnnTest, ExactPointIsItsOwnNearestNeighbor) {
  const auto entries = RandomEntries<2>(500, 17);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (size_t i = 0; i < entries.size(); i += 50) {
    const auto nn = tree.NearestNeighbors(entries[i].point, 1);
    ASSERT_EQ(nn.size(), 1u);
    EXPECT_EQ(nn[0].point, entries[i].point);
  }
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/expand.h"
#include "core/output_reader.h"
#include "core/output_stats.h"
#include "core/result_cursor.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace csj {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

void WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

TEST(TextCursorTest, ReadsLinksAndGroups) {
  const std::string path = testing::TempDir() + "/csj_cursor_text.txt";
  WriteWholeFile(path, "01 02\n03 04 05\n\n06 07\n");
  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_EQ((*cursor)->format(), OutputFormat::kText);
  EXPECT_EQ((*cursor)->declared_id_width(), 0);

  ASSERT_TRUE((*cursor)->Next());
  EXPECT_FALSE((*cursor)->record().is_group);
  EXPECT_EQ((*cursor)->record().ids[0], 1u);
  EXPECT_EQ((*cursor)->record().ids[1], 2u);
  ASSERT_TRUE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->record().is_group);
  EXPECT_EQ((*cursor)->record().ids.size(), 3u);
  ASSERT_TRUE((*cursor)->Next());  // blank line skipped
  EXPECT_FALSE((*cursor)->record().is_group);
  EXPECT_FALSE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->status().ok());
  EXPECT_EQ((*cursor)->links_read(), 2u);
  EXPECT_EQ((*cursor)->groups_read(), 1u);
  std::remove(path.c_str());
}

TEST(TextCursorTest, MissingTrailingNewlineStillParses) {
  const std::string path = testing::TempDir() + "/csj_cursor_nonl.txt";
  WriteWholeFile(path, "1 2\n3 4 5");
  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE((*cursor)->Next());
  ASSERT_TRUE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->record().is_group);
  EXPECT_FALSE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->status().ok());
  std::remove(path.c_str());
}

TEST(TextCursorTest, SingletonLineIsAnError) {
  const std::string path = testing::TempDir() + "/csj_cursor_bad.txt";
  WriteWholeFile(path, "1 2\n7\n3 4\n");
  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE((*cursor)->Next());
  EXPECT_FALSE((*cursor)->Next());
  const Status status = (*cursor)->status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(":2:"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(TextCursorTest, MatchesReadJoinOutput) {
  const std::string path = testing::TempDir() + "/csj_cursor_equiv.txt";
  WriteWholeFile(path, "001 002\n003 004 005\n006 007 008 009\n010 011\n");
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->links.size(), 2u);
  EXPECT_EQ(output->groups.size(), 2u);

  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok());
  size_t links = 0, groups = 0;
  while ((*cursor)->Next()) {
    ((*cursor)->record().is_group ? groups : links)++;
  }
  ASSERT_TRUE((*cursor)->status().ok());
  EXPECT_EQ(links, output->links.size());
  EXPECT_EQ(groups, output->groups.size());
  std::remove(path.c_str());
}

TEST(CursorTest, MissingFileIsNotFound) {
  auto cursor = OpenResultCursor("/nonexistent-dir-xyz/result.txt");
  EXPECT_FALSE(cursor.ok());
}

TEST(CursorStatsTest, CursorStatsMatchVectorStats) {
  const std::string path = testing::TempDir() + "/csj_cursor_stats.txt";
  WriteWholeFile(path, "01 02\n03 04 05\n03 05 06 07\n");
  auto output = ReadJoinOutput(path);
  ASSERT_TRUE(output.ok());
  const OutputStats expected =
      ComputeOutputStats(output->links, output->groups, 2);

  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok());
  auto actual = ComputeOutputStats(cursor->get(), 2);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->links, expected.links);
  EXPECT_EQ(actual->groups, expected.groups);
  EXPECT_EQ(actual->implied_links, expected.implied_links);
  EXPECT_EQ(actual->output_bytes, expected.output_bytes);
  EXPECT_EQ(actual->distinct_members, expected.distinct_members);

  // Width 0 infers from the data (max id 7 -> width 1).
  auto inferred_cursor = OpenResultCursor(path);
  ASSERT_TRUE(inferred_cursor.ok());
  auto inferred = ComputeOutputStats(inferred_cursor->get());
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred->output_bytes,
            (2 * expected.links + expected.group_member_total) * 2);
  std::remove(path.c_str());
}

/// Property test: a real join materialized through the binary pipeline must
/// expand to exactly the link set the same join produced in memory.
TEST(RoundTripPropertyTest, RandomJoinsSurviveBinaryRoundTrip) {
  Rng rng(2026);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 50 + rng.UniformInt(uint64_t{400});
    const double eps = 0.02 + rng.UniformDouble() * 0.1;
    const auto points =
        GenerateGaussianClusters<2>(n, 4, 0.03, 1000 + trial);
    const auto entries = ToEntries(points);
    RStarTree<2> tree;
    for (const auto& e : entries) tree.Insert(e.id, e.point);
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 10;

    MemorySink memory(IdWidthFor(n));
    CompactSimilarityJoin(tree, options, &memory);

    const std::string path = testing::TempDir() + "/csj_roundtrip_prop.bin";
    auto sink = MakeSink(OutputSpec::File(path, n, OutputFormat::kBinary));
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    CompactSimilarityJoin(tree, options, sink->get());
    ASSERT_TRUE((*sink)->Finish().ok());

    auto cursor = OpenResultCursor(path);
    ASSERT_TRUE(cursor.ok());
    auto expanded = ExpandSelfJoin(cursor->get());
    ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
    EXPECT_EQ(*expanded, ExpandSelfJoin(memory))
        << "trial " << trial << " n=" << n << " eps=" << eps;
    std::remove(path.c_str());
  }
}

/// Decoding a binary result through a text sink of the same width must
/// reproduce the directly-written text file byte for byte.
TEST(ReplayTest, BinaryDecodesToCanonicalTextByteForByte) {
  const size_t n = 600;
  const auto points = GenerateGaussianClusters<2>(n, 3, 0.02, 99);
  const auto entries = ToEntries(points);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = 10;

  const std::string text_path = testing::TempDir() + "/csj_replay.txt";
  const std::string bin_path = testing::TempDir() + "/csj_replay.bin";
  const std::string decoded_path = testing::TempDir() + "/csj_replay_dec.txt";

  auto text_sink = MakeSinkOrDie(OutputSpec::File(text_path, n));
  CompactSimilarityJoin(tree, options, text_sink.get());
  ASSERT_TRUE(text_sink->Finish().ok());

  auto bin_sink =
      MakeSinkOrDie(OutputSpec::File(bin_path, n, OutputFormat::kBinary));
  CompactSimilarityJoin(tree, options, bin_sink.get());
  ASSERT_TRUE(bin_sink->Finish().ok());

  auto cursor = OpenResultCursor(bin_path);
  ASSERT_TRUE(cursor.ok());
  auto decoded = MakeSinkOrDie(OutputSpec::File(decoded_path, n));
  ASSERT_TRUE(ReplayResult(cursor->get(), decoded.get()).ok());
  ASSERT_TRUE(decoded->Finish().ok());

  EXPECT_EQ(ReadWholeFile(decoded_path), ReadWholeFile(text_path));
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(decoded_path.c_str());
}

TEST(CursorExpandTest, CursorExpansionMatchesMemoryExpansion) {
  const std::string path = testing::TempDir() + "/csj_cursor_expand.txt";
  WriteWholeFile(path, "1 2\n2 3 4\n");
  MemorySink memory(1);
  memory.Link(1, 2);
  const std::vector<PointId> group = {2, 3, 4};
  memory.Group(group);

  auto cursor = OpenResultCursor(path);
  ASSERT_TRUE(cursor.ok());
  auto expanded = ExpandSelfJoin(cursor->get());
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, ExpandSelfJoin(memory));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/generators.h"
#include "index/node_access.h"
#include "geom/point.h"
#include "index/rtree.h"
#include "util/random.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

/// Reference range query by brute force.
template <int D>
std::set<PointId> BruteRange(const std::vector<Entry<D>>& entries,
                             const Point<D>& center, double radius) {
  std::set<PointId> out;
  for (const auto& e : entries) {
    if (Distance(center, e.point) <= radius) out.insert(e.id);
  }
  return out;
}

template <int D>
std::set<PointId> ToIds(const std::vector<Entry<D>>& entries) {
  std::set<PointId> out;
  for (const auto& e : entries) out.insert(e.id);
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree<2> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Root(), kInvalidNode);
  EXPECT_EQ(tree.Height(), 0);
  tree.CheckInvariants();
  EXPECT_TRUE(tree.RangeQuery(Point2{{0.5, 0.5}}, 1.0).empty());
}

TEST(RTreeTest, SingleInsert) {
  RTree<2> tree;
  tree.Insert(42, Point2{{0.25, 0.75}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  tree.CheckInvariants();
  auto hits = tree.RangeQuery(Point2{{0.25, 0.75}}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42u);
  EXPECT_TRUE(tree.Contains(42, Point2{{0.25, 0.75}}));
  EXPECT_FALSE(tree.Contains(43, Point2{{0.25, 0.75}}));
}

class RTreeSplitTest : public testing::TestWithParam<RTreeSplit> {};

TEST_P(RTreeSplitTest, InvariantsAfterManyInserts) {
  RTreeOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  options.split = GetParam();
  RTree<2> tree(options);
  const auto entries = RandomEntries<2>(2000, 99);
  for (size_t i = 0; i < entries.size(); ++i) {
    tree.Insert(entries[i].id, entries[i].point);
    if (i % 257 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_GT(tree.Height(), 1);
}

TEST_P(RTreeSplitTest, RangeQueriesMatchBruteForce) {
  RTreeOptions options;
  options.max_fanout = 16;
  options.min_fanout = 6;
  options.split = GetParam();
  RTree<2> tree(options);
  const auto entries = RandomEntries<2>(1500, 7);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  Rng rng(1234);
  for (int q = 0; q < 50; ++q) {
    const Point2 center{{rng.UniformDouble(), rng.UniformDouble()}};
    const double radius = rng.UniformDouble(0.0, 0.3);
    EXPECT_EQ(ToIds(tree.RangeQuery(center, radius)),
              BruteRange(entries, center, radius));
  }
}

TEST_P(RTreeSplitTest, WindowQueriesMatchBruteForce) {
  RTreeOptions options;
  options.split = GetParam();
  RTree<3> tree(options);
  const auto entries = RandomEntries<3>(1200, 21);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  Rng rng(4321);
  for (int q = 0; q < 30; ++q) {
    Box<3> window(Point3{{rng.UniformDouble(), rng.UniformDouble(),
                          rng.UniformDouble()}});
    window.Extend(Point3{{rng.UniformDouble(), rng.UniformDouble(),
                          rng.UniformDouble()}});
    std::set<PointId> expected;
    for (const auto& e : entries) {
      if (window.Contains(e.point)) expected.insert(e.id);
    }
    EXPECT_EQ(ToIds(tree.WindowQuery(window)), expected);
  }
}

TEST_P(RTreeSplitTest, RemoveMaintainsInvariantsAndContent) {
  RTreeOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  options.split = GetParam();
  RTree<2> tree(options);
  auto entries = RandomEntries<2>(600, 5);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  Rng rng(55);
  rng.Shuffle(entries);
  // Remove half, checking invariants as we go.
  const size_t half = entries.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(tree.Remove(entries[i].id, entries[i].point));
    if (i % 97 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size() - half);
  // Removed entries are gone; kept entries remain.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(tree.Contains(entries[i].id, entries[i].point), i >= half);
  }
  // Removing a missing entry returns false.
  EXPECT_FALSE(tree.Remove(entries[0].id, entries[0].point));
}

TEST_P(RTreeSplitTest, RemoveEverythingEmptiesTree) {
  RTreeOptions options;
  options.max_fanout = 6;
  options.min_fanout = 2;
  options.split = GetParam();
  RTree<2> tree(options);
  auto entries = RandomEntries<2>(150, 8);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (const auto& e : entries) ASSERT_TRUE(tree.Remove(e.id, e.point));
  EXPECT_EQ(tree.size(), 0u);
  tree.CheckInvariants();
  // Tree is reusable after emptying.
  tree.Insert(1, Point2{{0.5, 0.5}});
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 1u);
}

TEST_P(RTreeSplitTest, DuplicatePointsSupported) {
  RTreeOptions options;
  options.max_fanout = 4;
  options.min_fanout = 2;
  options.split = GetParam();
  RTree<2> tree(options);
  const Point2 p{{0.5, 0.5}};
  for (PointId id = 0; id < 100; ++id) tree.Insert(id, p);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.RangeQuery(p, 0.0).size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Splits, RTreeSplitTest,
                         testing::Values(RTreeSplit::kLinear,
                                         RTreeSplit::kQuadratic),
                         [](const auto& info) {
                           return info.param == RTreeSplit::kLinear
                                      ? "Linear"
                                      : "Quadratic";
                         });

TEST(RTreeTest, StatsReportShape) {
  RTree<2> tree;
  const auto entries = RandomEntries<2>(5000, 3);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const TreeStats stats = tree.Stats();
  EXPECT_EQ(stats.num_entries, 5000u);
  EXPECT_GT(stats.num_leaves, 0u);
  EXPECT_GE(stats.num_nodes, stats.num_leaves);
  EXPECT_GT(stats.avg_leaf_fill, 0.3);
  EXPECT_LE(stats.avg_leaf_fill, 1.0);
  EXPECT_EQ(stats.height, tree.Height());
}

TEST(RTreeTest, MaxDiameterBoundsSubtreePairs) {
  RTree<2> tree;
  const auto entries = RandomEntries<2>(800, 17);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  tree.ForEachNode([&](NodeId n) {
    const double diameter = tree.MaxDiameter(n);
    std::vector<Entry<2>> members;
    ForEachEntryInSubtree(tree, n, static_cast<NodeAccessTracker*>(nullptr),
                          [&](const Entry<2>& e) { members.push_back(e); });
    for (size_t i = 0; i < members.size(); i += 7) {
      for (size_t j = i + 1; j < members.size(); j += 5) {
        EXPECT_LE(Distance(members[i].point, members[j].point),
                  diameter + 1e-12);
      }
    }
  });
}

TEST(RTreeTest, MinDistancePrunesCorrectly) {
  RTree<2> tree;
  const auto entries = RandomEntries<2>(500, 29);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const NodeId root = tree.Root();
  if (!tree.IsLeaf(root)) {
    const auto children = tree.Children(root);
    for (size_t i = 0; i < children.size(); ++i) {
      for (size_t j = i + 1; j < children.size(); ++j) {
        const double lower = tree.MinDistance(children[i], children[j]);
        // Sampled cross pairs must respect the bound.
        std::vector<Entry<2>> a, b;
        ForEachEntryInSubtree(tree, children[i],
                              static_cast<NodeAccessTracker*>(nullptr),
                              [&](const Entry<2>& e) { a.push_back(e); });
        ForEachEntryInSubtree(tree, children[j],
                              static_cast<NodeAccessTracker*>(nullptr),
                              [&](const Entry<2>& e) { b.push_back(e); });
        for (size_t x = 0; x < a.size(); x += 11) {
          for (size_t y = 0; y < b.size(); y += 13) {
            EXPECT_GE(Distance(a[x].point, b[y].point), lower - 1e-12);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace csj

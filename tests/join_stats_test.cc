#include <gtest/gtest.h>

#include "core/brute.h"
#include "core/expand.h"
#include "core/join_stats.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/mtree.h"
#include "index/rstar_tree.h"

namespace csj {
namespace {

TEST(JoinStatsTest, AlgorithmNames) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kSSJ), "SSJ");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kNCSJ), "N-CSJ");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kCSJ), "CSJ");
}

TEST(JoinStatsTest, ImpliedLinkAccumulation) {
  JoinStats stats;
  EXPECT_EQ(stats.ImpliedLinkUpperBound(), 0u);
  stats.AddImpliedLink();
  stats.AddImpliedGroup(4);  // C(4,2) = 6
  stats.AddImpliedGroup(2);  // 1
  EXPECT_EQ(stats.ImpliedLinkUpperBound(), 8u);
}

TEST(JoinStatsTest, ToStringContainsKeyFields) {
  JoinStats stats;
  stats.algorithm = JoinAlgorithm::kCSJ;
  stats.epsilon = 0.25;
  stats.window_size = 10;
  stats.links = 3;
  stats.groups = 7;
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("CSJ"), std::string::npos);
  EXPECT_NE(text.find("eps=0.25"), std::string::npos);
  EXPECT_NE(text.find("g=10"), std::string::npos);
  EXPECT_NE(text.find("links=3"), std::string::npos);
  EXPECT_NE(text.find("groups=7"), std::string::npos);
}

TEST(JoinStatsTest, DistanceComputationsBounded) {
  // Distance computations must never exceed the brute-force n(n-1)/2 and
  // should be far below it on pruned workloads.
  const auto entries = ToEntries(GenerateGaussianClusters<2>(800, 6, 0.02, 5));
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.01;
  CountingSink sink(3);
  const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
  const uint64_t brute = 800ull * 799ull / 2ull;
  EXPECT_LT(stats.distance_computations, brute / 2);
  EXPECT_GT(stats.distance_computations, 0u);
}

/// Ball-shaped dual-tree spatial join: both trees are M-trees, so the
/// cross-tree bounds go through the Ball/Ball UnionDiameterBound path that
/// no other suite exercises.
TEST(MTreeSpatialJoinTest, BallBallDualJoinLossless) {
  const auto set_a = ToEntries(GenerateGaussianClusters<2>(400, 4, 0.03, 21));
  auto raw_b = GenerateGaussianClusters<2>(400, 4, 0.03, 22);
  std::vector<Entry<2>> set_b;
  for (size_t i = 0; i < raw_b.size(); ++i) {
    set_b.push_back(Entry<2>{static_cast<PointId>(10000 + i), raw_b[i]});
  }
  MTree<2> tree_a, tree_b;
  for (const auto& e : set_a) tree_a.Insert(e.id, e.point);
  for (const auto& e : set_b) tree_b.Insert(e.id, e.point);

  for (double eps : {0.02, 0.08}) {
    JoinOptions options;
    options.epsilon = eps;
    const auto reference = BruteForceSpatialJoin(set_a, set_b, eps);
    auto is_a = [](PointId id) { return id < 10000; };

    MemorySink ssj(5);
    StandardSpatialJoin(tree_a, tree_b, options, &ssj);
    EXPECT_EQ(ExpandSpatialJoin(ssj, is_a), reference) << "eps=" << eps;

    MemorySink csj(5);
    const JoinStats stats = CompactSpatialJoin(tree_a, tree_b, options, &csj);
    EXPECT_TRUE(
        CompareLinkSets(ExpandSpatialJoin(csj, is_a), reference).lossless())
        << "eps=" << eps;
    EXPECT_LE(csj.bytes(), ssj.bytes()) << "eps=" << eps;
    (void)stats;
  }
}

TEST(MTreeSpatialJoinTest, DualEarlyStopFiresOnCoincidentDenseRegions) {
  // Both trees dense in the same tiny region: the Ball/Ball union-diameter
  // bound must trigger dual early stops.
  MTree<2> tree_a, tree_b;
  std::vector<Entry<2>> set_a, set_b;
  Rng rng(33);
  for (PointId i = 0; i < 200; ++i) {
    const Point2 pa{{0.5 + rng.Gaussian(0.0, 0.001),
                     0.5 + rng.Gaussian(0.0, 0.001)}};
    const Point2 pb{{0.5 + rng.Gaussian(0.0, 0.001),
                     0.5 + rng.Gaussian(0.0, 0.001)}};
    set_a.push_back({i, pa});
    set_b.push_back({10000 + i, pb});
    tree_a.Insert(i, pa);
    tree_b.Insert(10000 + i, pb);
  }
  JoinOptions options;
  options.epsilon = 0.05;
  MemorySink sink(5);
  const JoinStats stats = CompactSpatialJoin(tree_a, tree_b, options, &sink);
  EXPECT_GT(stats.early_stops, 0u);
  EXPECT_TRUE(CompareLinkSets(
                  ExpandSpatialJoin(sink,
                                    [](PointId id) { return id < 10000; }),
                  BruteForceSpatialJoin(set_a, set_b, options.epsilon))
                  .lossless());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/parallel_join.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/paged_tree.h"
#include "index/rstar_tree.h"
#include "util/exec_context.h"
#include "util/failpoint.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

static_assert(SpatialIndex<PagedTree<2>>,
              "PagedTree must satisfy the join concept");

NodeId FindFirstLeaf(const PagedTree<2>& tree) {
  NodeId n = tree.Root();
  while (!tree.IsLeaf(n)) n = tree.Children(n)[0];
  return n;
}


TEST(PagedTreeTest, RoundTripContent) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(3000, 7);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_roundtrip.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());

  auto paged = PagedTree<2>::Open(path);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_EQ(paged->size(), tree.size());
  EXPECT_EQ(paged->NodeCount(), tree.NodeCount());

  // Every entry of the in-memory tree is reachable in the paged tree.
  std::set<PointId> found;
  ForEachEntryInSubtree(*paged, paged->Root(),
                        static_cast<NodeAccessTracker*>(nullptr),
                        [&](const Entry<2>& e) { found.insert(e.id); });
  EXPECT_EQ(found.size(), entries.size());
}

TEST(PagedTreeTest, StructureMirrorsSource) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(2000, 9);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_structure.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  auto paged = PagedTree<2>::Open(path);
  ASSERT_TRUE(paged.ok());

  // Compare recursively: MBRs, leaf flags, fanouts.
  std::function<void(NodeId, NodeId)> compare = [&](NodeId mem, NodeId disk) {
    EXPECT_EQ(tree.IsLeaf(mem), paged->IsLeaf(disk));
    EXPECT_EQ(tree.NodeBox(mem), paged->Shape(disk));
    if (tree.IsLeaf(mem)) {
      EXPECT_EQ(tree.Entries(mem).size(), paged->Entries(disk).size());
      return;
    }
    const auto mem_children = tree.Children(mem);
    const auto disk_children = paged->Children(disk);
    ASSERT_EQ(mem_children.size(), disk_children.size());
    // Writer visits children in reverse push order; match by MBR equality.
    for (size_t i = 0; i < mem_children.size(); ++i) {
      bool matched = false;
      for (size_t j = 0; j < disk_children.size(); ++j) {
        if (tree.NodeBox(mem_children[i]) == paged->Shape(disk_children[j])) {
          compare(mem_children[i], disk_children[j]);
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "child MBR not found on disk";
    }
  };
  compare(tree.Root(), paged->Root());
}

TEST(PagedTreeTest, JoinsOffDiskMatchInMemory) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(4000, 11);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_join.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  auto paged = PagedTree<2>::Open(path);
  ASSERT_TRUE(paged.ok());

  for (double eps : {0.01, 0.05}) {
    JoinOptions options;
    options.epsilon = eps;
    const auto reference = BruteForceSelfJoin(entries, eps);
    for (auto algo :
         {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
      MemorySink sink(IdWidthFor(entries.size()));
      RunSelfJoin(algo, *paged, options, &sink);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      EXPECT_TRUE(report.lossless())
          << JoinAlgorithmName(algo) << " eps=" << eps << ": "
          << report.ToString();
    }
  }
}

TEST(PagedTreeTest, TinyCacheStillCorrectJustSlower) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(2500, 13);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_tiny_cache.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());

  PagedTreeOptions small_cache;
  small_cache.cache_blocks = 2;
  auto paged_small = PagedTree<2>::Open(path, small_cache);
  ASSERT_TRUE(paged_small.ok());
  PagedTreeOptions big_cache;
  big_cache.cache_blocks = 100000;
  auto paged_big = PagedTree<2>::Open(path, big_cache);
  ASSERT_TRUE(paged_big.ok());

  JoinOptions options;
  options.epsilon = 0.04;
  MemorySink small_sink(IdWidthFor(entries.size()));
  CompactSimilarityJoin(*paged_small, options, &small_sink);
  MemorySink big_sink(IdWidthFor(entries.size()));
  CompactSimilarityJoin(*paged_big, options, &big_sink);

  EXPECT_EQ(small_sink.links(), big_sink.links());
  EXPECT_EQ(small_sink.groups(), big_sink.groups());
  // The tiny cache misses more — real disk-access behaviour.
  EXPECT_GT(paged_small->io_stats().disk_reads,
            paged_big->io_stats().disk_reads);
  EXPECT_GT(paged_big->io_stats().block_cache_hits, 0u);
}

TEST(PagedTreeTest, IoStatsCountAndReset) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(500, 17);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_stats.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  auto paged = PagedTree<2>::Open(path);
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(paged->io_stats().block_requests, 0u);
  (void)paged->Entries(FindFirstLeaf(*paged));
  EXPECT_GT(paged->io_stats().block_requests, 0u);
  EXPECT_GT(paged->io_stats().node_decodes, 0u);
  paged->ResetIoStats();
  EXPECT_EQ(paged->io_stats().block_requests, 0u);
}

TEST(PagedTreeTest, LargeLeafPayloadSpanningBlocks) {
  // A node payload bigger than one block must still read correctly.
  RStarOptions big_fanout;
  big_fanout.max_fanout = 512;  // leaf payload ~ 512 * 20 bytes > 4096
  big_fanout.min_fanout = 128;
  RStarTree<2> tree(big_fanout);
  const auto entries = RandomEntries<2>(400, 19);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_bigleaf.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  auto paged = PagedTree<2>::Open(path);
  ASSERT_TRUE(paged.ok());
  std::set<PointId> found;
  ForEachEntryInSubtree(*paged, paged->Root(),
                        static_cast<NodeAccessTracker*>(nullptr),
                        [&](const Entry<2>& e) { found.insert(e.id); });
  EXPECT_EQ(found.size(), entries.size());
}

TEST(PagedTreeTest, OpenRejectsGarbage) {
  const std::string path = TempPath("paged_garbage.csjp");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("junk", f);
  std::fclose(f);
  auto paged = PagedTree<2>::Open(path);
  EXPECT_FALSE(paged.ok());
  EXPECT_EQ(paged.status().code(), StatusCode::kInvalidArgument);
}

TEST(PagedTreeTest, OpenMissingFile) {
  auto paged = PagedTree<2>::Open("/no/such/file.csjp");
  EXPECT_FALSE(paged.ok());
  EXPECT_EQ(paged.status().code(), StatusCode::kNotFound);
}

TEST(PagedTreeTest, DimensionMismatchRejected) {
  RStarTree<3> tree;
  const auto entries = RandomEntries<3>(100, 23);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_dim.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  auto paged = PagedTree<2>::Open(path);
  EXPECT_FALSE(paged.ok());
  EXPECT_EQ(paged.status().code(), StatusCode::kInvalidArgument);
}

TEST(PagedTreeTest, ConcurrentReadersShareOneTree) {
  // N threads traverse one shared PagedTree under heavy eviction pressure
  // (a 3-block cache). Every thread must see the complete entry set, and
  // the pool counters must balance afterwards. Run under TSan in CI.
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(4000, 31);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_concurrent.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  PagedTreeOptions tiny;
  tiny.cache_blocks = 3;
  auto paged = PagedTree<2>::Open(path, tiny);
  ASSERT_TRUE(paged.ok());

  constexpr int kThreads = 8;
  std::atomic<int> complete{0};
  {
    std::vector<std::thread> readers;
    for (int t = 0; t < kThreads; ++t) {
      readers.emplace_back([&] {
        std::set<PointId> found;
        ForEachEntryInSubtree(*paged, paged->Root(),
                              static_cast<NodeAccessTracker*>(nullptr),
                              [&](const Entry<2>& e) { found.insert(e.id); });
        if (found.size() == entries.size()) complete.fetch_add(1);
      });
    }
    for (auto& thread : readers) thread.join();
  }
  EXPECT_EQ(complete.load(), kThreads);
  const auto io = paged->io_stats();
  EXPECT_EQ(io.block_requests, io.block_cache_hits + io.disk_reads);
}

TEST(PagedTreeTest, ParallelJoinOverPagedTreeIsLossless) {
  // The static_assert gate on Tree::kThreadSafeReads now admits PagedTree;
  // prove the parallel join over a disk tree matches brute force.
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(3000, 37);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_parallel_join.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  PagedTreeOptions small;
  small.cache_blocks = 8;  // force concurrent miss/evict traffic
  auto paged = PagedTree<2>::Open(path, small);
  ASSERT_TRUE(paged.ok());

  JoinOptions options;
  options.epsilon = 0.04;
  options.window_size = 10;
  MemorySink sink(IdWidthFor(entries.size()));
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  const JoinStats stats =
      ParallelCompactSimilarityJoin(*paged, options, &sink, parallel);
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();
  const auto report = CompareLinkSets(
      ExpandSelfJoin(sink), BruteForceSelfJoin(entries, options.epsilon));
  EXPECT_TRUE(report.lossless()) << report.ToString();
}

#ifndef CSJ_NO_FAILPOINTS
TEST(PagedTreeTest, GovernedReadFaultTripsContextInsteadOfAborting) {
  // With an ExecContext installed, an injected mid-read I/O fault becomes a
  // clean sticky status on the context (and an empty node view) instead of
  // the historical CSJ_CHECK crash.
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(2000, 41);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_fault.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  PagedTreeOptions tiny;
  tiny.cache_blocks = 2;  // evictions force re-reads that can fault
  auto paged = PagedTree<2>::Open(path, tiny);
  ASSERT_TRUE(paged.ok());

  // The context flows per-operation from options.exec through the driver's
  // governed reads — the tree itself holds no context state.
  ExecContext exec;
  failpoint::ScopedFailpoint fp("paged_tree.read",
                                failpoint::Spec::EveryNth(5));
  JoinOptions options;
  options.epsilon = 0.04;
  options.exec = &exec;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = CompactSimilarityJoin(*paged, options, &sink);
  EXPECT_EQ(stats.status.code(), StatusCode::kIoError);
  EXPECT_NE(stats.status.message().find("injected read fault"),
            std::string::npos);
}

TEST(PagedTreeTest, ConcurrentReadersSurviveInjectedFaults) {
  // Faulty reads under concurrency: each governed reader stops cleanly with
  // the injected IoError; nothing crashes and the counters still balance.
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(3000, 43);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_concurrent_fault.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  PagedTreeOptions tiny;
  tiny.cache_blocks = 2;
  auto paged = PagedTree<2>::Open(path, tiny);
  ASSERT_TRUE(paged.ok());

  // Each reader passes its own context per-operation: a fault in one
  // reader's I/O trips only that reader's context, never a neighbor's.
  failpoint::ScopedFailpoint fp("paged_tree.read",
                                failpoint::Spec::EveryNth(17));
  std::vector<ExecContext> contexts(4);
  {
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&, t] {
        ForEachEntryInSubtree(*paged, paged->Root(),
                              static_cast<NodeAccessTracker*>(nullptr),
                              [&](const Entry<2>&) {}, &contexts[t]);
      });
    }
    for (auto& thread : readers) thread.join();
  }
  bool any_tripped = false;
  for (const ExecContext& exec : contexts) {
    if (!exec.ShouldStop()) continue;
    any_tripped = true;
    EXPECT_EQ(exec.status().code(), StatusCode::kIoError);
  }
  EXPECT_TRUE(any_tripped);
  const auto io = paged->io_stats();
  EXPECT_EQ(io.block_requests, io.block_cache_hits + io.disk_reads);
}
#endif  // CSJ_NO_FAILPOINTS

TEST(PagedTreeTest, BudgetedCacheStaysWithinLimit) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(3000, 47);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const std::string path = TempPath("paged_budget.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());

  MemoryBudget budget(64 * 1024);  // ~15 4K blocks with overhead
  {
    PagedTreeOptions options;
    options.cache_blocks = 100000;  // budget, not capacity, is the constraint
    options.budget = &budget;
    auto paged = PagedTree<2>::Open(path, options);
    ASSERT_TRUE(paged.ok());
    std::set<PointId> found;
    ForEachEntryInSubtree(*paged, paged->Root(),
                          static_cast<NodeAccessTracker*>(nullptr),
                          [&](const Entry<2>& e) { found.insert(e.id); });
    EXPECT_EQ(found.size(), entries.size());
    EXPECT_LE(budget.peak(), budget.limit());
  }
  // Destroying the tree (and its pool) releases every charge.
  EXPECT_EQ(budget.used(), 0u);
}

TEST(PagedTreeTest, PackedTreeWorksToo) {
  RStarTree<3> tree;
  PackStr(&tree, RandomEntries<3>(5000, 29));
  const std::string path = TempPath("paged_packed.csjp");
  ASSERT_TRUE(WritePagedTree(tree, path).ok());
  auto paged = PagedTree<3>::Open(path);
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(paged->size(), 5000u);
  std::set<PointId> found;
  ForEachEntryInSubtree(*paged, paged->Root(),
                        static_cast<NodeAccessTracker*>(nullptr),
                        [&](const Entry<3>& e) { found.insert(e.id); });
  EXPECT_EQ(found.size(), 5000u);
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/mtree.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"

namespace csj {
namespace {

/// Typed over the three index families: the paper's Theorems 1 and 2 are
/// index-independent, so the lossless property must hold on all of them.
template <typename TreeT>
class JoinPropertyTest : public testing::Test {
 protected:
  static TreeT MakeTree() {
    if constexpr (std::is_same_v<TreeT, RTree<2>>) {
      RTreeOptions options;
      options.max_fanout = 8;
      options.min_fanout = 3;
      return RTree<2>(options);
    } else if constexpr (std::is_same_v<TreeT, RStarTree<2>>) {
      RStarOptions options;
      options.max_fanout = 8;
      options.min_fanout = 3;
      return RStarTree<2>(options);
    } else {
      MTreeOptions options;
      options.max_fanout = 8;
      options.min_fanout = 2;
      return MTree<2>(options);
    }
  }
};

using TreeTypes = testing::Types<RTree<2>, RStarTree<2>, MTree<2>>;
TYPED_TEST_SUITE(JoinPropertyTest, TreeTypes);

std::vector<Entry<2>> MakeWorkload(int which, size_t n, uint64_t seed) {
  std::vector<Point2> points;
  switch (which) {
    case 0:
      points = GenerateUniform<2>(n, seed);
      break;
    case 1:
      points = GenerateGaussianClusters<2>(n, 5, 0.02, seed);
      break;
    default:
      points = GenerateSierpinski2D(n, seed);
      break;
  }
  std::vector<Entry<2>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

TYPED_TEST(JoinPropertyTest, LosslessAcrossWorkloadsAndEpsilons) {
  for (int workload = 0; workload < 3; ++workload) {
    const auto entries = MakeWorkload(workload, 400, 1000 + workload);
    auto tree = TestFixture::MakeTree();
    for (const auto& e : entries) tree.Insert(e.id, e.point);
    tree.CheckInvariants();

    for (double eps : {0.002, 0.02, 0.1, 0.35}) {
      const auto reference = BruteForceSelfJoin(entries, eps);
      JoinOptions options;
      options.epsilon = eps;
      for (auto algo :
           {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
        MemorySink sink(IdWidthFor(entries.size()));
        RunSelfJoin(algo, tree, options, &sink);
        const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
        ASSERT_TRUE(report.lossless())
            << JoinAlgorithmName(algo) << " workload=" << workload
            << " eps=" << eps << ": " << report.ToString();
      }
    }
  }
}

TYPED_TEST(JoinPropertyTest, SsjLinkCountMatchesBruteForce) {
  const auto entries = MakeWorkload(1, 500, 77);
  auto tree = TestFixture::MakeTree();
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (double eps : {0.01, 0.05, 0.2}) {
    JoinOptions options;
    options.epsilon = eps;
    CountingSink sink(IdWidthFor(entries.size()));
    const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
    EXPECT_EQ(stats.links, BruteForceSelfJoin(entries, eps).size())
        << "eps=" << eps;
    EXPECT_EQ(stats.groups, 0u);
  }
}

TYPED_TEST(JoinPropertyTest, CompactNeverLargerThanStandard) {
  // The paper's headline guarantee: compact output is never bigger.
  const auto entries = MakeWorkload(1, 600, 91);
  auto tree = TestFixture::MakeTree();
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (double eps : {0.01, 0.05, 0.15, 0.4}) {
    JoinOptions options;
    options.epsilon = eps;
    CountingSink ssj(IdWidthFor(entries.size()));
    StandardSimilarityJoin(tree, options, &ssj);
    CountingSink ncsj(IdWidthFor(entries.size()));
    NaiveCompactJoin(tree, options, &ncsj);
    CountingSink csj(IdWidthFor(entries.size()));
    CompactSimilarityJoin(tree, options, &csj);
    EXPECT_LE(ncsj.bytes(), ssj.bytes()) << "eps=" << eps;
    EXPECT_LE(csj.bytes(), ssj.bytes()) << "eps=" << eps;
  }
}

TYPED_TEST(JoinPropertyTest, GroupCorrectnessTheorem2) {
  // Every pair inside every group satisfies d <= eps (exhaustive check).
  const auto entries = MakeWorkload(2, 350, 13);
  auto tree = TestFixture::MakeTree();
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const double eps = 0.08;
  JoinOptions options;
  options.epsilon = eps;
  MemorySink sink(IdWidthFor(entries.size()));
  CompactSimilarityJoin(tree, options, &sink);
  for (const auto& group : sink.groups()) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        ASSERT_LE(Distance(entries[group[i]].point, entries[group[j]].point),
                  eps + 1e-12);
      }
    }
  }
}

/// Parameterized sweep over window sizes: lossless for every g, and the
/// merge counters behave sensibly.
class WindowSweepTest : public testing::TestWithParam<int> {};

TEST_P(WindowSweepTest, LosslessForEveryWindowSize) {
  const int g = GetParam();
  const auto entries = MakeWorkload(1, 500, 3131);
  RStarOptions tree_options;
  tree_options.max_fanout = 8;
  tree_options.min_fanout = 3;
  RStarTree<2> tree(tree_options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  JoinOptions options;
  options.epsilon = 0.05;
  options.window_size = g;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.window_size, g);
  EXPECT_LE(stats.merges, stats.merge_attempts);
  const auto report = CompareLinkSets(
      ExpandSelfJoin(sink), BruteForceSelfJoin(entries, options.epsilon));
  EXPECT_TRUE(report.lossless()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweepTest,
                         testing::Values(1, 2, 3, 4, 5, 10, 20, 50, 100));

/// Bulk-loaded trees must join identically to incrementally built ones.
TEST(JoinOnPackedTreesTest, PackedAndInsertedAgree) {
  const auto entries = MakeWorkload(0, 800, 555);
  RStarTree<2> inserted;
  for (const auto& e : entries) inserted.Insert(e.id, e.point);
  RStarTree<2> str_packed;
  PackStr(&str_packed, entries);
  RStarTree<2> hilbert_packed;
  PackHilbert(&hilbert_packed, entries);

  JoinOptions options;
  options.epsilon = 0.06;
  const auto reference = BruteForceSelfJoin(entries, options.epsilon);
  for (auto* tree : {&inserted, &str_packed, &hilbert_packed}) {
    MemorySink sink(IdWidthFor(entries.size()));
    CompactSimilarityJoin(*tree, options, &sink);
    EXPECT_TRUE(
        CompareLinkSets(ExpandSelfJoin(sink), reference).lossless());
  }
}

/// Spatial join (two trees) matches the brute-force cross join and is
/// lossless in compact form.
TEST(SpatialJoinTest, DualTreeLossless) {
  const auto set_a = MakeWorkload(1, 300, 500);
  auto raw_b = MakeWorkload(1, 300, 501);
  // Disjoint id space for the second set.
  std::vector<Entry<2>> set_b;
  for (const auto& e : raw_b) {
    set_b.push_back(Entry<2>{e.id + 10000, e.point});
  }
  RStarTree<2> tree_a, tree_b;
  for (const auto& e : set_a) tree_a.Insert(e.id, e.point);
  for (const auto& e : set_b) tree_b.Insert(e.id, e.point);

  for (double eps : {0.02, 0.1}) {
    JoinOptions options;
    options.epsilon = eps;
    const auto reference = BruteForceSpatialJoin(set_a, set_b, eps);
    auto is_a = [](PointId id) { return id < 10000; };

    MemorySink ssj(5);
    StandardSpatialJoin(tree_a, tree_b, options, &ssj);
    EXPECT_EQ(ExpandSpatialJoin(ssj, is_a), reference) << "eps=" << eps;

    MemorySink ncsj(5);
    NaiveCompactSpatialJoin(tree_a, tree_b, options, &ncsj);
    EXPECT_TRUE(
        CompareLinkSets(ExpandSpatialJoin(ncsj, is_a), reference).lossless())
        << "eps=" << eps;

    MemorySink csj(5);
    CompactSpatialJoin(tree_a, tree_b, options, &csj);
    EXPECT_TRUE(
        CompareLinkSets(ExpandSpatialJoin(csj, is_a), reference).lossless())
        << "eps=" << eps;
    EXPECT_LE(csj.bytes(), ssj.bytes());
  }
}

TEST(SpatialJoinTest, MixedTreeFamiliesJoin) {
  // An R-tree joined against an R*-tree (both box-shaped) works.
  const auto set_a = MakeWorkload(0, 200, 600);
  auto raw_b = MakeWorkload(0, 200, 601);
  std::vector<Entry<2>> set_b;
  for (const auto& e : raw_b) set_b.push_back(Entry<2>{e.id + 10000, e.point});
  RTree<2> tree_a;
  RStarTree<2> tree_b;
  for (const auto& e : set_a) tree_a.Insert(e.id, e.point);
  for (const auto& e : set_b) tree_b.Insert(e.id, e.point);

  JoinOptions options;
  options.epsilon = 0.08;
  MemorySink sink(5);
  CompactSpatialJoin(tree_a, tree_b, options, &sink);
  auto is_a = [](PointId id) { return id < 10000; };
  EXPECT_TRUE(CompareLinkSets(ExpandSpatialJoin(sink, is_a),
                              BruteForceSpatialJoin(set_a, set_b, 0.08))
                  .lossless());
}

TEST(SpatialJoinTest, DisjointDataSetsProduceNothing) {
  RStarTree<2> tree_a, tree_b;
  for (PointId i = 0; i < 50; ++i) {
    tree_a.Insert(i, Point2{{0.1 + 0.001 * i, 0.1}});
    tree_b.Insert(1000 + i, Point2{{0.9, 0.9 - 0.001 * i}});
  }
  JoinOptions options;
  options.epsilon = 0.05;
  MemorySink sink(4);
  const JoinStats stats = CompactSpatialJoin(tree_a, tree_b, options, &sink);
  EXPECT_EQ(stats.links + stats.groups, 0u);
}

/// 3-D property check on the paper's Sierpinski workload.
TEST(JoinProperty3DTest, Sierpinski3DLossless) {
  const auto points = GenerateSierpinski3D(300, 999);
  std::vector<Entry<3>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<3>{static_cast<PointId>(i), points[i]};
  }
  RStarTree<3> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (double eps : {0.05, 0.125, 0.3}) {
    JoinOptions options;
    options.epsilon = eps;
    MemorySink sink(3);
    CompactSimilarityJoin(tree, options, &sink);
    EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                                BruteForceSelfJoin(entries, eps))
                    .lossless())
        << "eps=" << eps;
  }
}

}  // namespace
}  // namespace csj

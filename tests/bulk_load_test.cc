#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "data/generators.h"
#include "index/node_access.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "util/random.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

template <typename Tree, int D>
void ExpectSameContent(const Tree& tree, const std::vector<Entry<D>>& entries) {
  std::set<PointId> found;
  ForEachEntryInSubtree(tree, tree.Root(),
                        static_cast<NodeAccessTracker*>(nullptr),
                        [&](const Entry<D>& e) { found.insert(e.id); });
  std::set<PointId> expected;
  for (const auto& e : entries) expected.insert(e.id);
  EXPECT_EQ(found, expected);
}

TEST(BulkLoadTest, StrPacksValidTree) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(10000, 3);
  PackStr(&tree, entries);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size());
  ExpectSameContent(tree, entries);
}

TEST(BulkLoadTest, StrPacks3D) {
  RTree<3> tree;
  const auto entries = RandomEntries<3>(5000, 5);
  PackStr(&tree, entries);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size());
  ExpectSameContent(tree, entries);
}

TEST(BulkLoadTest, HilbertPacksValidTree2D) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(8000, 7);
  PackHilbert(&tree, entries);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size());
  ExpectSameContent(tree, entries);
}

TEST(BulkLoadTest, HilbertPacksValidTree3DViaMorton) {
  RStarTree<3> tree;
  const auto entries = RandomEntries<3>(6000, 9);
  PackHilbert(&tree, entries);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size());
  ExpectSameContent(tree, entries);
}

TEST(BulkLoadTest, TinyInputs) {
  for (size_t n : {1u, 2u, 3u, 63u, 64u, 65u, 128u}) {
    RStarTree<2> tree;
    const auto entries = RandomEntries<2>(n, 100 + n);
    PackStr(&tree, entries);
    tree.CheckInvariants();
    EXPECT_EQ(tree.size(), n);
    ExpectSameContent(tree, entries);
  }
}

TEST(BulkLoadTest, EmptyInputLeavesTreeEmpty) {
  RStarTree<2> tree;
  PackStr(&tree, std::vector<Entry<2>>{});
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
}

TEST(BulkLoadTest, PackedTreesAreFullerThanInserted) {
  const auto entries = RandomEntries<2>(20000, 17);
  RStarTree<2> inserted;
  for (const auto& e : entries) inserted.Insert(e.id, e.point);
  RStarTree<2> packed;
  PackStr(&packed, entries);
  const TreeStats ins = inserted.Stats();
  const TreeStats pak = packed.Stats();
  EXPECT_LT(pak.num_nodes, ins.num_nodes);
  EXPECT_GT(pak.avg_leaf_fill, ins.avg_leaf_fill);
  EXPECT_GT(pak.avg_leaf_fill, 0.9);
}

TEST(BulkLoadTest, FillFractionRespected) {
  RStarTree<2> tree;  // max 64, min 26
  BulkLoadOptions options;
  options.fill_fraction = 0.85;
  const auto entries = RandomEntries<2>(10000, 19);
  PackStr(&tree, entries, options);
  tree.CheckInvariants();
  const TreeStats stats = tree.Stats();
  EXPECT_LE(stats.avg_leaf_fill, 0.87);
  EXPECT_GT(stats.avg_leaf_fill, 0.7);
}

TEST(BulkLoadTest, RangeQueriesWorkOnPackedTree) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(5000, 23);
  PackHilbert(&tree, entries);
  Rng rng(24);
  for (int q = 0; q < 30; ++q) {
    const Point2 center{{rng.UniformDouble(), rng.UniformDouble()}};
    const double radius = rng.UniformDouble(0.0, 0.2);
    std::set<PointId> expected;
    for (const auto& e : entries) {
      if (Distance(center, e.point) <= radius) expected.insert(e.id);
    }
    std::set<PointId> got;
    for (const auto& e : tree.RangeQuery(center, radius)) got.insert(e.id);
    EXPECT_EQ(got, expected);
  }
}

TEST(BulkLoadTest, InsertAfterPackKeepsInvariants) {
  RStarTree<2> tree;
  auto entries = RandomEntries<2>(3000, 29);
  BulkLoadOptions options;
  options.fill_fraction = 0.9;
  PackStr(&tree, entries, options);
  // Dynamic inserts on top of a packed tree must keep working.
  const auto extra = RandomEntries<2>(500, 31);
  for (const auto& e : extra) {
    tree.Insert(e.id + 100000, e.point);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 3500u);
}

}  // namespace
}  // namespace csj

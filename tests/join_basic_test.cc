#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "index/rstar_tree.h"

namespace csj {
namespace {

/// Builds an R*-tree with a small fanout so tiny examples still split.
RStarTree<2> SmallTree(const std::vector<Entry<2>>& entries) {
  RStarOptions options;
  options.max_fanout = 4;
  options.min_fanout = 2;
  RStarTree<2> tree(options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  return tree;
}

RStarTree<1> LineTree(const std::vector<double>& coords) {
  RStarOptions options;
  options.max_fanout = 4;
  options.min_fanout = 2;
  RStarTree<1> tree(options);
  for (size_t i = 0; i < coords.size(); ++i) {
    tree.Insert(static_cast<PointId>(i + 1), Point<1>{{coords[i]}});
  }
  return tree;
}

std::vector<Entry<1>> LineEntries(const std::vector<double>& coords) {
  std::vector<Entry<1>> entries;
  for (size_t i = 0; i < coords.size(); ++i) {
    entries.push_back(Entry<1>{static_cast<PointId>(i + 1),
                               Point<1>{{coords[i]}}});
  }
  return entries;
}

// --- Figure 2: integers 1..5 on the line, eps = 3 ---------------------------

TEST(JoinBasicTest, Figure2LineExampleSSJ) {
  // A standard similarity join returns 9 links: all pairs except (1,5).
  const auto entries = LineEntries({1, 2, 3, 4, 5});
  auto tree = LineTree({1, 2, 3, 4, 5});
  JoinOptions options;
  options.epsilon = 3.0;
  MemorySink sink(1);
  const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.links, 9u);
  EXPECT_EQ(stats.groups, 0u);
  EXPECT_EQ(ExpandSelfJoin(sink), BruteForceSelfJoin(entries, 3.0));
}

TEST(JoinBasicTest, Figure2LineExampleCompactIsLossless) {
  const auto entries = LineEntries({1, 2, 3, 4, 5});
  auto tree = LineTree({1, 2, 3, 4, 5});
  JoinOptions options;
  options.epsilon = 3.0;
  for (auto algo : {JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
    MemorySink sink(1);
    RunSelfJoin(algo, tree, options, &sink);
    const auto report =
        CompareLinkSets(ExpandSelfJoin(sink), BruteForceSelfJoin(entries, 3.0));
    EXPECT_TRUE(report.lossless()) << JoinAlgorithmName(algo) << ": "
                                   << report.ToString();
  }
}

TEST(JoinBasicTest, Figure2CompactOutputSmallerThanSSJ) {
  auto tree = LineTree({1, 2, 3, 4, 5});
  JoinOptions options;
  options.epsilon = 3.0;
  CountingSink ssj_sink(1);
  StandardSimilarityJoin(tree, options, &ssj_sink);
  CountingSink csj_sink(1);
  CompactSimilarityJoin(tree, options, &csj_sink);
  // The paper reports ~50% savings for this example (9 links -> 3 groups);
  // exact grouping depends on tree shape, but compact must not be larger.
  EXPECT_LE(csj_sink.bytes(), ssj_sink.bytes());
}

// --- Section V-B: 10 points on the line, eps = 7 -----------------------------

TEST(JoinBasicTest, SectionVBOrderingExampleIsLossless) {
  std::vector<double> coords;
  for (int i = 1; i <= 10; ++i) coords.push_back(i);
  const auto entries = LineEntries(coords);
  auto tree = LineTree(coords);
  JoinOptions options;
  options.epsilon = 7.0;
  for (int g : {1, 3, 10}) {
    options.window_size = g;
    MemorySink sink(2);
    CompactSimilarityJoin(tree, options, &sink);
    const auto report =
        CompareLinkSets(ExpandSelfJoin(sink), BruteForceSelfJoin(entries, 7.0));
    EXPECT_TRUE(report.lossless()) << "g=" << g << ": " << report.ToString();
  }
}

// --- Figure 1: 7 points, clusters and a bridge --------------------------------

std::vector<Entry<2>> Figure1Points() {
  // Four points in a tight cluster, point 5 near point 4, and an isolated
  // pair {6, 7} — the structure of the paper's Figure 1.
  return {
      {1, Point2{{0.10, 0.10}}}, {2, Point2{{0.14, 0.10}}},
      {3, Point2{{0.10, 0.14}}}, {4, Point2{{0.13, 0.13}}},
      {5, Point2{{0.18, 0.16}}}, {6, Point2{{0.60, 0.60}}},
      {7, Point2{{0.63, 0.62}}},
  };
}

TEST(JoinBasicTest, Figure1AllAlgorithmsLossless) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  const auto reference = BruteForceSelfJoin(entries, options.epsilon);
  ASSERT_GT(reference.size(), 0u);
  for (auto algo :
       {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
    MemorySink sink(1);
    RunSelfJoin(algo, tree, options, &sink);
    const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
    EXPECT_TRUE(report.lossless()) << JoinAlgorithmName(algo) << ": "
                                   << report.ToString();
  }
}

TEST(JoinBasicTest, GroupsOnlyContainMutuallyCloseMembers) {
  // Theorem 2 (correctness) spot check: every pair inside every emitted
  // group satisfies the range.
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  MemorySink sink(1);
  CompactSimilarityJoin(tree, options, &sink);
  for (const auto& group : sink.groups()) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        const auto& p1 = entries[group[i] - 1].point;
        const auto& p2 = entries[group[j] - 1].point;
        EXPECT_LE(Distance(p1, p2), options.epsilon + 1e-12);
      }
    }
  }
}

// --- Edge cases -----------------------------------------------------------------

TEST(JoinBasicTest, EmptyTreeProducesNothing) {
  RStarTree<2> tree;
  JoinOptions options;
  options.epsilon = 0.5;
  MemorySink sink(1);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.links, 0u);
  EXPECT_EQ(stats.groups, 0u);
  EXPECT_EQ(stats.output_bytes, 0u);
}

TEST(JoinBasicTest, SinglePointProducesNothing) {
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.5, 0.5}});
  JoinOptions options;
  options.epsilon = 0.5;
  MemorySink sink(1);
  const JoinStats stats = NaiveCompactJoin(tree, options, &sink);
  EXPECT_EQ(stats.links + stats.groups, 0u);
}

TEST(JoinBasicTest, TwoFarPointsProduceNothing) {
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.0, 0.0}});
  tree.Insert(1, Point2{{1.0, 1.0}});
  JoinOptions options;
  options.epsilon = 0.1;
  MemorySink sink(1);
  for (auto algo :
       {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
    const JoinStats stats = RunSelfJoin(algo, tree, options, &sink);
    EXPECT_EQ(stats.links + stats.groups, 0u) << JoinAlgorithmName(algo);
  }
}

TEST(JoinBasicTest, TwoClosePointsProduceOneUnit) {
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.50, 0.50}});
  tree.Insert(1, Point2{{0.52, 0.50}});
  JoinOptions options;
  options.epsilon = 0.1;
  {
    MemorySink sink(1);
    StandardSimilarityJoin(tree, options, &sink);
    EXPECT_EQ(sink.num_links(), 1u);
  }
  {
    MemorySink sink(1);
    CompactSimilarityJoin(tree, options, &sink);
    // One group of two (the whole root qualifies under the early stop).
    EXPECT_EQ(sink.num_links(), 0u);
    ASSERT_EQ(sink.num_groups(), 1u);
    EXPECT_EQ(sink.groups()[0].size(), 2u);
  }
}

TEST(JoinBasicTest, ExactlyEpsilonApartIsIncluded) {
  // The predicate is closed: d == eps is a link.
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.0, 0.0}});
  tree.Insert(1, Point2{{0.1, 0.0}});
  JoinOptions options;
  options.epsilon = 0.1;
  MemorySink sink(1);
  StandardSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(sink.num_links(), 1u);
}

TEST(JoinBasicTest, DuplicatePointsAreLinked) {
  RStarTree<2> tree;
  tree.Insert(0, Point2{{0.3, 0.3}});
  tree.Insert(1, Point2{{0.3, 0.3}});
  tree.Insert(2, Point2{{0.3, 0.3}});
  JoinOptions options;
  options.epsilon = 0.01;
  MemorySink sink(1);
  CompactSimilarityJoin(tree, options, &sink);
  const auto links = ExpandSelfJoin(sink);
  EXPECT_EQ(links.size(), 3u);  // all three pairs
}

// --- Stats and accounting ------------------------------------------------------

TEST(JoinBasicTest, StatsReflectOutput) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  CountingSink sink(1);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.links, sink.num_links());
  EXPECT_EQ(stats.groups, sink.num_groups());
  EXPECT_EQ(stats.output_bytes, sink.bytes());
  EXPECT_EQ(stats.algorithm, JoinAlgorithm::kCSJ);
  EXPECT_DOUBLE_EQ(stats.epsilon, 0.07);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.ImpliedLinkUpperBound(), 0u);
}

TEST(JoinBasicTest, TrackerCountsNodeAccesses) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  NodeAccessTracker tracker(/*nodes_per_page=*/2, /*cache_pages=*/4);
  JoinOptions options;
  options.epsilon = 0.07;
  options.tracker = &tracker;
  CountingSink sink(1);
  const JoinStats stats = NaiveCompactJoin(tree, options, &sink);
  EXPECT_GT(stats.node_accesses, 0u);
  EXPECT_GT(stats.page_requests, 0u);
  EXPECT_GE(stats.page_requests, stats.page_disk_reads);
}

TEST(JoinBasicTest, WriteTimeMeasurementTogglable) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  options.measure_write_time = true;
  CountingSink sink(1);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_GE(stats.write_seconds, 0.0);
  EXPECT_LE(stats.write_seconds, stats.elapsed_seconds + 1e-3);
}

TEST(JoinBasicTest, InvalidEpsilonDies) {
  RStarTree<2> tree;
  JoinOptions options;
  options.epsilon = 0.0;
  CountingSink sink(1);
  EXPECT_DEATH(StandardSimilarityJoin(tree, options, &sink), "epsilon");
}

// --- Window behaviour -------------------------------------------------------------

TEST(JoinBasicTest, LargerWindowNeverProducesMoreBytesOnLineData) {
  // On the Section V-B line example, bigger windows can only help (or tie).
  std::vector<double> coords;
  for (int i = 1; i <= 40; ++i) coords.push_back(i);
  auto tree = LineTree(coords);
  JoinOptions options;
  options.epsilon = 7.0;
  uint64_t previous = ~uint64_t{0};
  for (int g : {1, 2, 5, 10, 20}) {
    options.window_size = g;
    CountingSink sink(2);
    CompactSimilarityJoin(tree, options, &sink);
    EXPECT_LE(sink.bytes(), previous) << "g=" << g;
    previous = sink.bytes();
  }
}

TEST(JoinBasicTest, PromoteOnMergeStillLossless) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  options.promote_on_merge = true;
  MemorySink sink(1);
  CompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(JoinBasicTest, EarlyStopDisabledStillLossless) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  options.early_stop = false;
  MemorySink sink(1);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.early_stops, 0u);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(JoinBasicTest, SortChildPairsStillLossless) {
  const auto entries = Figure1Points();
  auto tree = SmallTree(entries);
  JoinOptions options;
  options.epsilon = 0.07;
  options.sort_child_pairs = true;
  MemorySink sink(1);
  CompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

}  // namespace
}  // namespace csj

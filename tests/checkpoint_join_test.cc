#include "core/checkpoint_join.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/result_cursor.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"
#include "storage/checkpoint.h"
#include "util/failpoint.h"
#include "util/metrics.h"

/// \file
/// Checkpointed join execution: byte-identical resume after interruption
/// (text + binary, serial + parallel), graceful cancellation, deadline
/// expiry, resume validation against configuration drift, and exact
/// cumulative JoinStats across resumes. The interruptions here are real —
/// a deadline watchdog stops the run at an arbitrary task boundary and the
/// test resumes until completion, so every assertion is independent of
/// *where* the run was cut.

namespace csj {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

uint64_t CounterValue(const std::string& name) {
  for (const auto& [counter, value] : metrics::Snapshot().counters) {
    if (counter == name) return value;
  }
  return 0;
}

/// Expects the work/output counters (everything except timing) to match.
void ExpectSameCounters(const JoinStats& a, const JoinStats& b) {
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_EQ(a.group_member_total, b.group_member_total);
  EXPECT_EQ(a.output_bytes, b.output_bytes);
  EXPECT_EQ(a.distance_computations, b.distance_computations);
  EXPECT_EQ(a.kernel_candidates, b.kernel_candidates);
  EXPECT_EQ(a.kernel_pruned, b.kernel_pruned);
  EXPECT_EQ(a.kernel_hits, b.kernel_hits);
  EXPECT_EQ(a.early_stops, b.early_stops);
  EXPECT_EQ(a.merge_attempts, b.merge_attempts);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.ImpliedLinkUpperBound(), b.ImpliedLinkUpperBound());
}

class CheckpointJoinTest : public testing::Test {
 protected:
  void SetUp() override {
    entries_ = ToEntries(GenerateGaussianClusters<2>(6000, 6, 0.02, 23));
    PackStr(&tree_, entries_);
  }

  void TearDown() override {
    for (const auto& path : cleanup_) std::remove(path.c_str());
  }

  JoinOptions Options() const {
    JoinOptions options;
    options.epsilon = 0.02;
    options.window_size = 10;
    return options;
  }

  OutputSpec Spec(OutputFormat format, const std::string& name) {
    OutputSpec spec;
    spec.format = format;
    spec.path = testing::TempDir() + "/" + name;
    spec.id_width = IdWidthFor(entries_.size());
    cleanup_.push_back(spec.path);
    return spec;
  }

  CheckpointJoinOptions Ckpt(const std::string& name, int threads = 1) {
    CheckpointJoinOptions ckpt;
    ckpt.manifest_path = testing::TempDir() + "/" + name;
    ckpt.checkpoint_interval = 7;
    ckpt.threads = threads;
    ckpt.tasks_per_thread = 8;
    cleanup_.push_back(ckpt.manifest_path);
    return ckpt;
  }

  /// One uninterrupted checkpointed run.
  JoinStats RunFull(JoinAlgorithm algorithm, const OutputSpec& spec,
                    const CheckpointJoinOptions& ckpt) {
    JoinStats stats =
        CheckpointedSelfJoin(tree_, algorithm, Options(), spec, ckpt);
    EXPECT_TRUE(stats.status.ok()) << stats.status.ToString();
    EXPECT_FALSE(FileExists(ckpt.manifest_path))
        << "manifest survived a completed run";
    return stats;
  }

  /// Runs under a short deadline, resuming after every expiration until the
  /// join completes. Returns the final (cumulative) stats and requires at
  /// least one real interruption, so the equivalence assertions downstream
  /// genuinely cover the resume path.
  JoinStats RunCrashLoop(JoinAlgorithm algorithm, const OutputSpec& spec,
                         CheckpointJoinOptions ckpt, uint64_t deadline_ms,
                         int* interruptions_out = nullptr) {
    JoinOptions options = Options();
    options.deadline_ms = deadline_ms;
    int interruptions = 0;
    ckpt.resume = false;
    for (int attempt = 0; attempt < 500; ++attempt) {
      const JoinStats stats =
          CheckpointedSelfJoin(tree_, algorithm, options, spec, ckpt);
      if (stats.status.ok()) {
        EXPECT_FALSE(FileExists(ckpt.manifest_path));
        if (interruptions_out != nullptr) *interruptions_out = interruptions;
        return stats;
      }
      EXPECT_EQ(stats.status.code(), StatusCode::kDeadlineExceeded)
          << stats.status.ToString();
      EXPECT_TRUE(FileExists(ckpt.manifest_path))
          << "interrupted run left no manifest";
      ++interruptions;
      ckpt.resume = true;
      // Let later sessions run longer so the loop always converges even on
      // a slow (e.g. sanitizer) build.
      if (attempt >= 50) options.deadline_ms = deadline_ms * 10;
    }
    ADD_FAILURE() << "crash loop did not converge";
    return JoinStats{};
  }

  std::vector<Entry<2>> entries_;
  RStarTree<2> tree_;
  std::vector<std::string> cleanup_;
};

TEST_F(CheckpointJoinTest, UninterruptedRunIsDeterministicAndLossless) {
  const auto spec_a = Spec(OutputFormat::kText, "ckj_det_a.txt");
  const auto spec_b = Spec(OutputFormat::kText, "ckj_det_b.txt");
  const JoinStats a = RunFull(JoinAlgorithm::kCSJ, spec_a, Ckpt("ckj_det_a.ckpt"));
  const JoinStats b = RunFull(JoinAlgorithm::kCSJ, spec_b, Ckpt("ckj_det_b.ckpt"));
  ExpectSameCounters(a, b);
  const std::string bytes = ReadWholeFile(spec_a.path);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, ReadWholeFile(spec_b.path));

  // The task-decomposed traversal must still be a lossless compact join.
  auto cursor = OpenResultCursor(spec_a.path);
  ASSERT_TRUE(cursor.ok());
  auto expansion = ExpandSelfJoin(cursor->get());
  ASSERT_TRUE(expansion.ok());
  const auto report = CompareLinkSets(
      *expansion, BruteForceSelfJoin(entries_, Options().epsilon));
  EXPECT_TRUE(report.lossless()) << report.ToString();
}

TEST_F(CheckpointJoinTest, TextResumeIsByteIdentical) {
  const auto full_spec = Spec(OutputFormat::kText, "ckj_text_full.txt");
  const JoinStats full =
      RunFull(JoinAlgorithm::kCSJ, full_spec, Ckpt("ckj_text_full.ckpt"));

  const auto spec = Spec(OutputFormat::kText, "ckj_text_crash.txt");
  int interruptions = 0;
  const JoinStats resumed = RunCrashLoop(JoinAlgorithm::kCSJ, spec,
                                         Ckpt("ckj_text_crash.ckpt"),
                                         /*deadline_ms=*/15, &interruptions);
  EXPECT_GT(interruptions, 0) << "deadline never fired; nothing was tested";
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(full_spec.path));
  ExpectSameCounters(resumed, full);
}

TEST_F(CheckpointJoinTest, BinaryResumeIsByteIdentical) {
  const auto full_spec = Spec(OutputFormat::kBinary, "ckj_bin_full.bin");
  const JoinStats full =
      RunFull(JoinAlgorithm::kCSJ, full_spec, Ckpt("ckj_bin_full.ckpt"));

  const auto spec = Spec(OutputFormat::kBinary, "ckj_bin_crash.bin");
  int interruptions = 0;
  const JoinStats resumed = RunCrashLoop(JoinAlgorithm::kCSJ, spec,
                                         Ckpt("ckj_bin_crash.ckpt"),
                                         /*deadline_ms=*/15, &interruptions);
  EXPECT_GT(interruptions, 0);
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(full_spec.path));
  ExpectSameCounters(resumed, full);
}

TEST_F(CheckpointJoinTest, SsjResumeIsByteIdentical) {
  // SSJ has no merge window — the manifest's window section must round-trip
  // empty and the link stream must still be byte-identical.
  const auto full_spec = Spec(OutputFormat::kText, "ckj_ssj_full.txt");
  const JoinStats full =
      RunFull(JoinAlgorithm::kSSJ, full_spec, Ckpt("ckj_ssj_full.ckpt"));
  const auto spec = Spec(OutputFormat::kText, "ckj_ssj_crash.txt");
  const JoinStats resumed = RunCrashLoop(JoinAlgorithm::kSSJ, spec,
                                         Ckpt("ckj_ssj_crash.ckpt"),
                                         /*deadline_ms=*/15);
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(full_spec.path));
  ExpectSameCounters(resumed, full);
}

TEST_F(CheckpointJoinTest, ParallelResumeIsByteIdentical) {
  const auto full_spec = Spec(OutputFormat::kBinary, "ckj_par_full.bin");
  const JoinStats full = RunFull(JoinAlgorithm::kCSJ, full_spec,
                                 Ckpt("ckj_par_full.ckpt", /*threads=*/2));
  const auto spec = Spec(OutputFormat::kBinary, "ckj_par_crash.bin");
  int interruptions = 0;
  const JoinStats resumed = RunCrashLoop(
      JoinAlgorithm::kCSJ, spec, Ckpt("ckj_par_crash.ckpt", /*threads=*/2),
      /*deadline_ms=*/15, &interruptions);
  EXPECT_GT(interruptions, 0);
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(full_spec.path));
  ExpectSameCounters(resumed, full);
}

TEST_F(CheckpointJoinTest, CountingSinkResumesToExactByteCount) {
  // kNone never materializes output, but its byte accounting (in the binary
  // model, including the open-block fill) must survive a resume exactly.
  auto spec = Spec(OutputFormat::kNone, "unused");
  spec.path.clear();
  spec.count_model = OutputFormat::kBinary;
  const JoinStats full =
      RunFull(JoinAlgorithm::kCSJ, spec, Ckpt("ckj_none_full.ckpt"));
  const JoinStats resumed = RunCrashLoop(JoinAlgorithm::kCSJ, spec,
                                         Ckpt("ckj_none_crash.ckpt"),
                                         /*deadline_ms=*/15);
  ExpectSameCounters(resumed, full);
}

TEST_F(CheckpointJoinTest, PresetCancelStopsBeforeAnyWork) {
  std::atomic<bool> cancel{true};
  const auto spec = Spec(OutputFormat::kText, "ckj_cancel.txt");
  auto ckpt = Ckpt("ckj_cancel.ckpt");
  ckpt.cancel = &cancel;
  const JoinStats stats =
      CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, Options(), spec, ckpt);
  ASSERT_EQ(stats.status.code(), StatusCode::kCancelled)
      << stats.status.ToString();
  EXPECT_EQ(stats.distance_computations, 0u);
  ASSERT_TRUE(FileExists(ckpt.manifest_path));

  // Clearing the flag and resuming completes the whole join, byte-identical
  // to a run that was never cancelled.
  cancel.store(false);
  ckpt.resume = true;
  const JoinStats resumed =
      CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, Options(), spec, ckpt);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();

  const auto full_spec = Spec(OutputFormat::kText, "ckj_cancel_full.txt");
  const JoinStats full =
      RunFull(JoinAlgorithm::kCSJ, full_spec, Ckpt("ckj_cancel_full.ckpt"));
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(full_spec.path));
  ExpectSameCounters(resumed, full);
}

TEST_F(CheckpointJoinTest, ResumeValidatesConfigurationAndManifest) {
  // Save a genuine mid-run manifest by cancelling immediately.
  std::atomic<bool> cancel{true};
  const auto spec = Spec(OutputFormat::kText, "ckj_validate.txt");
  auto ckpt = Ckpt("ckj_validate.ckpt");
  ckpt.cancel = &cancel;
  ASSERT_EQ(CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, Options(), spec,
                                 ckpt)
                .status.code(),
            StatusCode::kCancelled);
  cancel.store(false);
  ckpt.resume = true;

  {
    // Different epsilon: the fingerprint must reject the resume.
    JoinOptions options = Options();
    options.epsilon = 0.021;
    const JoinStats stats =
        CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, options, spec, ckpt);
    EXPECT_EQ(stats.status.code(), StatusCode::kFailedPrecondition)
        << stats.status.ToString();
  }
  {
    // Different algorithm.
    const JoinStats stats = CheckpointedSelfJoin(tree_, JoinAlgorithm::kSSJ,
                                                 Options(), spec, ckpt);
    EXPECT_EQ(stats.status.code(), StatusCode::kFailedPrecondition);
  }
  {
    // Different thread count (changes the parallel replay order).
    auto two = ckpt;
    two.threads = 2;
    const JoinStats stats = CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ,
                                                 Options(), spec, two);
    EXPECT_EQ(stats.status.code(), StatusCode::kFailedPrecondition);
  }
  {
    // Different task granularity (changes the task list).
    auto coarse = ckpt;
    coarse.tasks_per_thread = 64;
    const JoinStats stats = CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ,
                                                 Options(), spec, coarse);
    EXPECT_EQ(stats.status.code(), StatusCode::kFailedPrecondition);
  }
  {
    // Truncated manifest: a clean parse error, never a silent restart.
    const std::string bytes = ReadWholeFile(ckpt.manifest_path);
    std::FILE* f = std::fopen(ckpt.manifest_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, bytes.size() / 2, f);
    std::fclose(f);
    const JoinStats stats = CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ,
                                                 Options(), spec, ckpt);
    EXPECT_EQ(stats.status.code(), StatusCode::kInvalidArgument)
        << stats.status.ToString();
  }
}

TEST_F(CheckpointJoinTest, ResumeWithoutManifestIsNotFound) {
  const auto spec = Spec(OutputFormat::kText, "ckj_missing.txt");
  auto ckpt = Ckpt("ckj_missing.ckpt");
  ckpt.resume = true;
  const JoinStats stats =
      CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, Options(), spec, ckpt);
  EXPECT_EQ(stats.status.code(), StatusCode::kNotFound)
      << stats.status.ToString();
}

TEST_F(CheckpointJoinTest, EmptyManifestPathIsRejected) {
  const auto spec = Spec(OutputFormat::kText, "ckj_nopath.txt");
  CheckpointJoinOptions ckpt;
  const JoinStats stats =
      CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, Options(), spec, ckpt);
  EXPECT_EQ(stats.status.code(), StatusCode::kInvalidArgument);
}

#ifndef CSJ_NO_FAILPOINTS

TEST_F(CheckpointJoinTest, SinkCrashKeepsManifestAndResumesByteIdentical) {
  // A hard I/O fault mid-run (any crash site in the output path) poisons the
  // sink and aborts the run — but the manifest of the last successful
  // checkpoint must survive, and a resume after the fault clears must finish
  // with byte-identical output.
  const auto full_spec = Spec(OutputFormat::kBinary, "ckj_fault_full.bin");
  RunFull(JoinAlgorithm::kCSJ, full_spec, Ckpt("ckj_fault_full.ckpt"));

  const auto spec = Spec(OutputFormat::kBinary, "ckj_fault_crash.bin");
  auto ckpt = Ckpt("ckj_fault_crash.ckpt");
  {
    // Let the initial checkpoint land, then fail a later append hard.
    failpoint::ScopedFailpoint fp("output_file.append",
                                  failpoint::Spec::EveryNth(40));
    const JoinStats stats = CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ,
                                                 Options(), spec, ckpt);
    ASSERT_FALSE(stats.status.ok());
    ASSERT_TRUE(FileExists(ckpt.manifest_path))
        << "crash discarded the last good checkpoint";
  }
  ckpt.resume = true;
  const JoinStats resumed =
      CheckpointedSelfJoin(tree_, JoinAlgorithm::kCSJ, Options(), spec, ckpt);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(full_spec.path));
}

TEST_F(CheckpointJoinTest, ProbabilisticTransientFaultsAreAbsorbedByRetry) {
  // A flaky device (prob: failpoint, deterministic seed) injects transient
  // short writes throughout the run; the backoff policy must absorb every
  // one of them — the join completes OK and the output is byte-identical to
  // a run on a healthy device.
  const auto healthy_spec = Spec(OutputFormat::kBinary, "ckj_retry_ref.bin");
  RunFull(JoinAlgorithm::kCSJ, healthy_spec, Ckpt("ckj_retry_ref.ckpt"));

  const uint64_t errors_before = CounterValue("retry.transient_errors");
  const uint64_t attempts_before = CounterValue("retry.attempts");
  const auto spec = Spec(OutputFormat::kBinary, "ckj_retry_flaky.bin");
  {
    failpoint::ScopedFailpoint fp(
        "output_file.append_transient",
        failpoint::Spec::Probability(0.2, /*seed=*/7));
    RunFull(JoinAlgorithm::kCSJ, spec, Ckpt("ckj_retry_flaky.ckpt"));
  }
  EXPECT_EQ(ReadWholeFile(spec.path), ReadWholeFile(healthy_spec.path));
#ifndef CSJ_NO_METRICS
  EXPECT_GT(CounterValue("retry.transient_errors"), errors_before)
      << "the prob: failpoint never fired; nothing was tested";
  EXPECT_GT(CounterValue("retry.attempts"), attempts_before);
#else
  (void)errors_before;
  (void)attempts_before;
#endif
}

#endif  // CSJ_NO_FAILPOINTS

TEST_F(CheckpointJoinTest, MetricsAccumulateAcrossResume) {
  const uint64_t saves_before = CounterValue("checkpoint.saves");
  const uint64_t resumes_before = CounterValue("checkpoint.resumes");
  const auto spec = Spec(OutputFormat::kText, "ckj_metrics.txt");
  int interruptions = 0;
  RunCrashLoop(JoinAlgorithm::kCSJ, spec, Ckpt("ckj_metrics.ckpt"),
               /*deadline_ms=*/15, &interruptions);
  ASSERT_GT(interruptions, 0);
#ifndef CSJ_NO_METRICS
  EXPECT_GT(CounterValue("checkpoint.saves"), saves_before);
  EXPECT_EQ(CounterValue("checkpoint.resumes"),
            resumes_before + static_cast<uint64_t>(interruptions));
#else
  (void)saves_before;
  (void)resumes_before;
#endif
}

}  // namespace
}  // namespace csj

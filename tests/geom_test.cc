#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geom/ball.h"
#include "geom/box.h"
#include "geom/hilbert.h"
#include "geom/point.h"
#include "util/random.h"

namespace csj {
namespace {

// --- Point ----------------------------------------------------------------------

TEST(PointTest, Distances) {
  Point2 a{{0.0, 0.0}};
  Point2 b{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 4.0);
}

TEST(PointTest, DistanceUnderMetric) {
  Point2 a{{0.0, 0.0}};
  Point2 b{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(DistanceUnder(MetricKind::kL2, a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceUnder(MetricKind::kL1, a, b), 7.0);
  EXPECT_DOUBLE_EQ(DistanceUnder(MetricKind::kLInf, a, b), 4.0);
}

TEST(PointTest, MetricAxioms2D) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Point2 a{{rng.UniformDouble(), rng.UniformDouble()}};
    Point2 b{{rng.UniformDouble(), rng.UniformDouble()}};
    Point2 c{{rng.UniformDouble(), rng.UniformDouble()}};
    // Symmetry, identity, triangle inequality.
    EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
    EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
    EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
  }
}

TEST(PointTest, ToStringRendersCoordinates) {
  Point3 p{{1.0, 2.5, -3.0}};
  EXPECT_EQ(p.ToString(), "(1, 2.5, -3)");
}

// --- Box ------------------------------------------------------------------------

TEST(BoxTest, EmptyBoxBehaviour) {
  Box2 box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  EXPECT_DOUBLE_EQ(box.Diagonal(), 0.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 0.0);
  box.Extend(Point2{{0.5, 0.5}});
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);  // degenerate point box
  EXPECT_TRUE(box.Contains(Point2{{0.5, 0.5}}));
}

TEST(BoxTest, ExtendAndContain) {
  Box2 box(Point2{{0.0, 0.0}});
  box.Extend(Point2{{2.0, 1.0}});
  EXPECT_TRUE(box.Contains(Point2{{1.0, 0.5}}));
  EXPECT_FALSE(box.Contains(Point2{{3.0, 0.5}}));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 3.0);
  EXPECT_DOUBLE_EQ(box.Diagonal(), std::sqrt(5.0));
}

TEST(BoxTest, UnionAndIntersection) {
  Box2 a(Point2{{0.0, 0.0}}, Point2{{1.0, 1.0}});
  Box2 b(Point2{{0.5, 0.5}}, Point2{{2.0, 2.0}});
  Box2 u = Box2::Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.25);
  Box2 disjoint(Point2{{5.0, 5.0}}, Point2{{6.0, 6.0}});
  EXPECT_FALSE(a.Intersects(disjoint));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(disjoint), 0.0);
}

TEST(BoxTest, EnlargementTo) {
  Box2 a(Point2{{0.0, 0.0}}, Point2{{1.0, 1.0}});
  Box2 same = a;
  EXPECT_DOUBLE_EQ(a.EnlargementTo(same), 0.0);
  Box2 bigger(Point2{{0.0, 0.0}}, Point2{{2.0, 1.0}});
  EXPECT_DOUBLE_EQ(a.EnlargementTo(bigger), 1.0);
}

TEST(BoxTest, MinMaxDistanceBoxes) {
  Box2 a(Point2{{0.0, 0.0}}, Point2{{1.0, 1.0}});
  Box2 b(Point2{{2.0, 0.0}}, Point2{{3.0, 1.0}});
  EXPECT_DOUBLE_EQ(MinDistance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), std::sqrt(9.0 + 1.0));
  // Overlapping boxes: min distance 0.
  Box2 c(Point2{{0.5, 0.5}}, Point2{{1.5, 1.5}});
  EXPECT_DOUBLE_EQ(MinDistance(a, c), 0.0);
}

TEST(BoxTest, PointToBoxDistance) {
  Box2 box(Point2{{0.0, 0.0}}, Point2{{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(MinDistance(Point2{{0.5, 0.5}}, box), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point2{{2.0, 0.5}}, box), 1.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point2{{2.0, 2.0}}, box), std::sqrt(2.0));
}

/// Property: MinDistance/MaxDistance between boxes really bound the distance
/// of arbitrary contained points.
TEST(BoxTest, MinMaxDistanceBoundsRandomPoints) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_box = [&] {
      Point2 p{{rng.UniformDouble(), rng.UniformDouble()}};
      Point2 q{{rng.UniformDouble(), rng.UniformDouble()}};
      Box2 box(p);
      box.Extend(q);
      return box;
    };
    const Box2 a = random_box();
    const Box2 b = random_box();
    auto sample = [&](const Box2& box) {
      return Point2{{rng.UniformDouble(box.lo[0], box.hi[0]),
                     rng.UniformDouble(box.lo[1], box.hi[1])}};
    };
    for (int i = 0; i < 20; ++i) {
      const Point2 pa = sample(a);
      const Point2 pb = sample(b);
      const double d = Distance(pa, pb);
      EXPECT_GE(d, MinDistance(a, b) - 1e-12);
      EXPECT_LE(d, MaxDistance(a, b) + 1e-12);
    }
  }
}

/// Property: the union diagonal bounds every pairwise distance of points
/// drawn from either box (the dual-node early-stop bound).
TEST(BoxTest, UnionDiameterBoundsUnionPairs) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    Box2 a(Point2{{rng.UniformDouble(), rng.UniformDouble()}});
    a.Extend(Point2{{rng.UniformDouble(), rng.UniformDouble()}});
    Box2 b(Point2{{rng.UniformDouble(), rng.UniformDouble()}});
    b.Extend(Point2{{rng.UniformDouble(), rng.UniformDouble()}});
    const double bound = UnionDiameterBound(a, b);
    auto sample = [&](const Box2& box) {
      return Point2{{rng.UniformDouble(box.lo[0], box.hi[0]),
                     rng.UniformDouble(box.lo[1], box.hi[1])}};
    };
    for (int i = 0; i < 20; ++i) {
      const Box2 source = i % 2 == 0 ? a : b;
      const Box2 target = rng.Bernoulli(0.5) ? a : b;
      EXPECT_LE(Distance(sample(source), sample(target)), bound + 1e-12);
    }
  }
}

TEST(BoxTest, SquaredDiagonalMatchesDiagonal) {
  Box3 box(Point3{{0.0, 0.0, 0.0}}, Point3{{1.0, 2.0, 2.0}});
  EXPECT_DOUBLE_EQ(box.SquaredDiagonal(), 9.0);
  EXPECT_DOUBLE_EQ(box.Diagonal(), 3.0);
}

TEST(BoxTest, CenterAndExtent) {
  Box2 box(Point2{{0.0, 2.0}}, Point2{{4.0, 6.0}});
  EXPECT_EQ(box.Center(), (Point2{{2.0, 4.0}}));
  EXPECT_DOUBLE_EQ(box.Extent(0), 4.0);
  EXPECT_DOUBLE_EQ(box.Extent(1), 4.0);
}

// --- Ball -----------------------------------------------------------------------

TEST(BallTest, ContainsAndDiameter) {
  Ball<2> ball(Point2{{0.0, 0.0}}, 1.0);
  EXPECT_TRUE(ball.Contains(Point2{{0.6, 0.6}}));
  EXPECT_FALSE(ball.Contains(Point2{{0.8, 0.8}}));
  EXPECT_DOUBLE_EQ(ball.MaxDiameter(), 2.0);
}

TEST(BallTest, BallBallDistances) {
  Ball<2> a(Point2{{0.0, 0.0}}, 1.0);
  Ball<2> b(Point2{{5.0, 0.0}}, 1.5);
  EXPECT_DOUBLE_EQ(MinDistance(a, b), 2.5);
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), 7.5);
  // Overlapping balls have min distance 0.
  Ball<2> c(Point2{{1.0, 0.0}}, 1.0);
  EXPECT_DOUBLE_EQ(MinDistance(a, c), 0.0);
}

TEST(BallTest, PointBallDistances) {
  Ball<2> ball(Point2{{0.0, 0.0}}, 2.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point2{{1.0, 0.0}}, ball), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point2{{5.0, 0.0}}, ball), 3.0);
  EXPECT_DOUBLE_EQ(MaxDistance(Point2{{5.0, 0.0}}, ball), 7.0);
}

TEST(BallTest, UnionDiameterBoundCoversContainment) {
  // b inside a: the bound must still be at least a's diameter.
  Ball<2> a(Point2{{0.0, 0.0}}, 3.0);
  Ball<2> b(Point2{{0.5, 0.0}}, 0.1);
  EXPECT_GE(UnionDiameterBound(a, b), 6.0);
}

/// Property: ball min/max distances bound distances of random members.
TEST(BallTest, MinMaxBoundsRandomMembers) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    Ball<2> a(Point2{{rng.UniformDouble(), rng.UniformDouble()}},
              rng.UniformDouble(0.0, 0.5));
    Ball<2> b(Point2{{rng.UniformDouble(), rng.UniformDouble()}},
              rng.UniformDouble(0.0, 0.5));
    auto sample = [&](const Ball<2>& ball) {
      // Rejection-sample a point inside the ball.
      while (true) {
        Point2 p{{rng.UniformDouble(-1.0, 1.0), rng.UniformDouble(-1.0, 1.0)}};
        const double norm = std::sqrt(p[0] * p[0] + p[1] * p[1]);
        if (norm <= 1.0) {
          return Point2{{ball.center[0] + p[0] * ball.radius,
                         ball.center[1] + p[1] * ball.radius}};
        }
      }
    };
    for (int i = 0; i < 10; ++i) {
      const double d = Distance(sample(a), sample(b));
      EXPECT_GE(d, MinDistance(a, b) - 1e-12);
      EXPECT_LE(d, MaxDistance(a, b) + 1e-12);
      EXPECT_LE(d, UnionDiameterBound(a, b) + 1e-12);
    }
  }
}

// --- Hilbert / Morton --------------------------------------------------------------

TEST(HilbertTest, RoundTrip) {
  const int order = 6;
  const uint32_t side = 1u << order;
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      const uint64_t d = HilbertIndex2D(order, x, y);
      EXPECT_LT(d, static_cast<uint64_t>(side) * side);
      seen.insert(d);
      uint32_t rx = 0, ry = 0;
      HilbertPoint2D(order, d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(side) * side);  // bijection
}

TEST(HilbertTest, AdjacentIndicesAreAdjacentCells) {
  // The defining property of the Hilbert curve: consecutive indices map to
  // grid cells at L1 distance exactly 1.
  const int order = 5;
  const uint32_t side = 1u << order;
  uint32_t px = 0, py = 0;
  HilbertPoint2D(order, 0, &px, &py);
  for (uint64_t d = 1; d < static_cast<uint64_t>(side) * side; ++d) {
    uint32_t x = 0, y = 0;
    HilbertPoint2D(order, d, &x, &y);
    const uint32_t l1 = (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(l1, 1u) << "discontinuity at index " << d;
    px = x;
    py = y;
  }
}

TEST(MortonTest, InterleavesBits) {
  const uint32_t coords2[2] = {0b11u, 0b00u};
  // x=11, y=00 interleaved x-major: 1010.
  EXPECT_EQ(MortonIndex(coords2, 2, 2), 0b1010u);
  const uint32_t coords3[3] = {1u, 1u, 1u};
  EXPECT_EQ(MortonIndex(coords3, 3, 1), 0b111u);
}

TEST(MortonTest, PreservesLocalityCoarsely) {
  const uint32_t a[2] = {5, 5};
  const uint32_t b[2] = {5, 6};
  const uint32_t far[2] = {60, 60};
  const uint64_t ia = MortonIndex(a, 2, 6);
  const uint64_t ib = MortonIndex(b, 2, 6);
  const uint64_t ifar = MortonIndex(far, 2, 6);
  const auto diff = [](uint64_t x, uint64_t y) { return x > y ? x - y : y - x; };
  EXPECT_LT(diff(ia, ib), diff(ia, ifar));
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <vector>

#include "analysis/fractal.h"
#include "core/brute.h"
#include "data/generators.h"
#include "data/roadnet.h"

namespace csj {
namespace {

TEST(PowerLawFitTest, ExactLineRecovered) {
  // value = 8 * eps^1.5  ->  log2 value = 3 + 1.5 log2 eps.
  std::vector<ScalingPoint> samples;
  for (double le : {-8.0, -6.0, -4.0, -2.0}) {
    samples.push_back({le, 3.0 + 1.5 * le});
  }
  const PowerLawFit fit = FitPowerLaw(samples);
  EXPECT_NEAR(fit.slope, 1.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.Predict(0.25), 8.0 * std::pow(0.25, 1.5), 1e-9);
}

TEST(PowerLawFitTest, DegenerateInputs) {
  EXPECT_EQ(FitPowerLaw({}).slope, 0.0);
  EXPECT_EQ(FitPowerLaw({{1.0, 2.0}}).slope, 0.0);
  // All x equal: no slope information.
  EXPECT_EQ(FitPowerLaw({{1.0, 2.0}, {1.0, 3.0}}).slope, 0.0);
}

TEST(FractalTest, BoxCountingUniform2DIsTwo) {
  const auto points = GenerateUniform<2>(60000, 5);
  const auto fit = BoxCountingDimension(points, 2, 6);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->slope, 2.0, 0.25);
}

TEST(FractalTest, BoxCountingSierpinski2D) {
  // The Sierpinski triangle has dimension log 3 / log 2 ~ 1.585.
  const auto points = GenerateSierpinski2D(80000, 7);
  const auto fit = BoxCountingDimension(points, 2, 6);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->slope, 1.585, 0.2);
}

TEST(FractalTest, BoxCounting3DUsesFirstThreeCoordinates) {
  const auto points = GenerateSierpinski3D(60000, 21);
  const auto fit = BoxCountingDimension(points, 2, 6);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->slope, 2.0, 0.3);
}

TEST(FractalTest, BoxCountingDegenerateInputsAreErrors) {
  // Too few points.
  EXPECT_EQ(BoxCountingDimension(std::vector<Point2>{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BoxCountingDimension(std::vector<Point2>{Point2{{0.5, 0.5}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // All-identical points: zero spread must surface as a Status, not a
  // silent dimension-0 fit.
  std::vector<Point2> identical(1000, Point2{{0.25, 0.75}});
  const auto fit = BoxCountingDimension(identical);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
  // Bad level ranges.
  const auto points = GenerateUniform<2>(100, 3);
  EXPECT_EQ(BoxCountingDimension(points, 5, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FractalTest, CorrelationUniform2DIsTwo) {
  const auto points = GenerateUniform<2>(40000, 9);
  const PowerLawFit fit = CorrelationDimension(points);
  EXPECT_NEAR(fit.slope, 2.0, 0.25);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(FractalTest, CorrelationSierpinski2D) {
  const auto points = GenerateSierpinski2D(60000, 11);
  const PowerLawFit fit = CorrelationDimension(points);
  EXPECT_NEAR(fit.slope, 1.585, 0.2);
}

TEST(FractalTest, CorrelationSierpinski3DIsTwo) {
  // The Sierpinski tetrahedron has dimension log 4 / log 2 = 2 even though
  // it lives in 3-D space — the canonical "intrinsic < embedding" case.
  const auto points = GenerateSierpinski3D(60000, 13);
  const PowerLawFit fit = CorrelationDimension(points);
  EXPECT_NEAR(fit.slope, 2.0, 0.25);
}

TEST(FractalTest, LineHasDimensionOne) {
  std::vector<Point2> points(20000);
  Rng rng(15);
  for (auto& p : points) p = Point2{{rng.UniformDouble(), 0.5}};
  const PowerLawFit fit = CorrelationDimension(points);
  EXPECT_NEAR(fit.slope, 1.0, 0.15);
}

TEST(FractalTest, RoadNetworkBetweenOneAndTwo) {
  RoadNetOptions options;
  options.num_points = 30000;
  options.seed = 27;
  const auto points = GenerateRoadNetwork(options);
  const PowerLawFit fit = CorrelationDimension(points);
  EXPECT_GT(fit.slope, 1.0);
  EXPECT_LT(fit.slope, 2.0);
}

TEST(FractalTest, PredictLinkCountMatchesBruteForceWithinFactor) {
  // The headline use: a D2 fit from a cheap sample predicts the join output
  // size across eps within a small factor on self-similar data.
  const auto points = GenerateSierpinski2D(4000, 17);
  std::vector<Entry<2>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  const PowerLawFit fit = CorrelationDimension(points);
  for (double eps : {0.01, 0.03, 0.08}) {
    const uint64_t actual = BruteForceSelfJoin(entries, eps).size();
    const uint64_t predicted = PredictLinkCount(fit, entries.size(), eps);
    ASSERT_GT(actual, 0u);
    const double ratio =
        static_cast<double>(predicted) / static_cast<double>(actual);
    EXPECT_GT(ratio, 0.4) << "eps=" << eps;
    EXPECT_LT(ratio, 2.5) << "eps=" << eps;
  }
}

TEST(FractalTest, CorrelationSamplesMonotone) {
  // More range, more neighbors: the correlation sum is non-decreasing.
  const auto points = GenerateUniform<2>(20000, 19);
  std::vector<double> epsilons;
  for (int e = -8; e <= -2; ++e) epsilons.push_back(std::ldexp(1.0, e));
  const auto samples = CorrelationSamples(points, epsilons);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].log2_value, samples[i - 1].log2_value);
  }
}

}  // namespace
}  // namespace csj

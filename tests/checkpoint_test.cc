#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/random.h"

/// \file
/// Checkpoint manifest format: serialization round-trips, atomic save/load,
/// and the corruption matrix — truncation at every offset, a bit flip at
/// every offset, trailing garbage, and random-bytes fuzzing. Every corrupt
/// input must come back as a clean non-OK Status; none may crash, and none
/// may parse as a valid (silently wrong) manifest.

namespace csj::checkpoint {
namespace {

/// A manifest with every field exercised: partial binary payload, pending
/// window groups, metric counters, non-trivial doubles.
Manifest SampleManifest() {
  Manifest m;
  m.config_fingerprint = 0x1234'5678'9abc'def0ULL;
  m.dims = 2;
  m.threads = 4;
  m.total_tasks = 553;
  m.task_list_hash = 0xfeed'face'cafe'beefULL;
  m.next_task = 42;
  m.stats.distance_computations = 2'878'927;
  m.stats.kernel_candidates = 9'000'001;
  m.stats.kernel_pruned = 5'000'000;
  m.stats.kernel_hits = 1'430'998;
  m.stats.node_accesses = 77;
  m.stats.page_requests = 11;
  m.stats.page_disk_reads = 3;
  m.stats.early_stops = 19;
  m.stats.merge_attempts = 5'165'485;
  m.stats.merges = 1'430'998;
  m.stats.implied_links = 123'456'789;
  m.stats.elapsed_seconds = 1.5;
  m.stats.write_seconds = 0.0625;
  m.sink.format = 2;
  m.sink.id_width = 5;
  m.sink.committed_bytes = 1'310'640;
  m.sink.accounted_bytes = 1'350'000;
  m.sink.model_fill = 1234;
  m.sink.num_links = 17;
  m.sink.num_groups = 174'922;
  m.sink.group_member_total = 1'000'000;
  m.sink.id_total = 999'999;
  m.sink.partial_records = 7;
  m.sink.partial_payload = std::string("\x01\x02\x00\xff partial block", 19);
  m.window.push_back(
      {{1, 2, 3}, {0.25, -1.0}, {0.5, 2.0}});
  m.window.push_back({{9}, {0.0, 0.0}, {1e-9, 1e9}});
  m.metric_counters.emplace_back("join.distance_computations", 2'878'927);
  m.metric_counters.emplace_back("sink.groups", 174'922);
  return m;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(CheckpointManifest, SerializeParseRoundTrip) {
  const Manifest m = SampleManifest();
  const std::string bytes = Serialize(m);
  ASSERT_GE(bytes.size(), kHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), std::string(kMagic, 4));

  Manifest back;
  ASSERT_TRUE(Parse(bytes, &back).ok());
  EXPECT_EQ(back, m);
}

TEST(CheckpointManifest, MinimalManifestRoundTrips) {
  // dims is sanity-checked on parse, so the minimal manifest still needs a
  // plausible dimensionality; a zero-dims manifest is rejected.
  Manifest minimal;
  minimal.dims = 1;
  Manifest back;
  ASSERT_TRUE(Parse(Serialize(minimal), &back).ok());
  EXPECT_EQ(back, minimal);
  EXPECT_FALSE(Parse(Serialize(Manifest{}), &back).ok());
}

TEST(CheckpointManifest, SaveLoadRoundTrip) {
  const Manifest m = SampleManifest();
  const std::string path = TempPath("ckpt_roundtrip.ckpt");
  ASSERT_TRUE(Save(path, m).ok());

  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, m);
  std::remove(path.c_str());
}

TEST(CheckpointManifest, LoadMissingFileIsNotFound) {
  auto loaded = Load(TempPath("ckpt_does_not_exist.ckpt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointManifest, SaveOverwritesAtomically) {
  const std::string path = TempPath("ckpt_overwrite.ckpt");
  Manifest first = SampleManifest();
  ASSERT_TRUE(Save(path, first).ok());
  Manifest second = SampleManifest();
  second.next_task = 99;
  ASSERT_TRUE(Save(path, second).ok());

  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->next_task, 99u);
  std::remove(path.c_str());
}

// --- Corruption matrix -------------------------------------------------------

TEST(CheckpointCorruption, TruncationAtEveryOffsetFailsCleanly) {
  const std::string bytes = Serialize(SampleManifest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    Manifest m;
    const Status status = Parse(bytes.substr(0, len), &m);
    EXPECT_FALSE(status.ok()) << "parsed a manifest truncated to " << len
                              << " of " << bytes.size() << " bytes";
  }
}

TEST(CheckpointCorruption, BitFlipAtEveryOffsetFailsCleanly) {
  const std::string bytes = Serialize(SampleManifest());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ mask);
      Manifest m;
      const Status status = Parse(corrupt, &m);
      EXPECT_FALSE(status.ok())
          << "bit flip at offset " << i << " (mask " << int(mask)
          << ") parsed as a valid manifest";
    }
  }
}

TEST(CheckpointCorruption, FlippedCrcIsRejected) {
  std::string bytes = Serialize(SampleManifest());
  // The CRC lives after magic (4), version (4) and payload_len (8).
  const size_t crc_offset = 4 + 4 + 8;
  bytes[crc_offset] = static_cast<char>(bytes[crc_offset] ^ 0xff);
  Manifest m;
  const Status status = Parse(bytes, &m);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointCorruption, TrailingGarbageIsRejected) {
  const std::string bytes = Serialize(SampleManifest());
  for (const std::string& tail :
       {std::string("x"), std::string(1, '\0'), std::string(1000, 'Z')}) {
    Manifest m;
    const Status status = Parse(bytes + tail, &m);
    EXPECT_FALSE(status.ok())
        << "accepted " << tail.size() << " bytes of trailing garbage";
  }
}

TEST(CheckpointCorruption, WrongMagicAndVersionAreRejected) {
  std::string wrong_magic = Serialize(SampleManifest());
  wrong_magic[0] = 'X';
  Manifest m;
  EXPECT_FALSE(Parse(wrong_magic, &m).ok());

  std::string wrong_version = Serialize(SampleManifest());
  wrong_version[4] = static_cast<char>(kVersion + 1);
  EXPECT_FALSE(Parse(wrong_version, &m).ok());
}

TEST(CheckpointCorruption, CorruptFileOnDiskLoadsAsCleanError) {
  // End to end through Load(): a truncated manifest file must produce a
  // descriptive Status, never a crash and never a silent fresh start.
  const std::string path = TempPath("ckpt_truncated.ckpt");
  const std::string bytes = Serialize(SampleManifest());
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{17},
                            bytes.size() / 2, bytes.size() - 1}) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, keep, f);
    std::fclose(f);
    auto loaded = Load(path);
    EXPECT_FALSE(loaded.ok()) << "loaded a manifest truncated to " << keep;
  }
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, RandomBytesNeverCrashTheParser) {
  Rng rng(20260807);
  Manifest valid = SampleManifest();
  const std::string real = Serialize(valid);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t len = rng.UniformInt(uint64_t{512});
    std::string bytes(len, '\0');
    for (auto& c : bytes) {
      c = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    // Half the trials start from a valid prefix so the fuzzer reaches deep
    // into the payload decoder instead of dying on the magic check.
    if (rng.Bernoulli(0.5) && !real.empty()) {
      const size_t prefix = rng.UniformInt(uint64_t{real.size()});
      bytes = real.substr(0, prefix) + bytes;
    }
    Manifest m;
    if (Parse(bytes, &m).ok()) ++parsed_ok;
  }
  // Random bytes essentially never carry a valid CRC'd payload.
  EXPECT_EQ(parsed_ok, 0);
}

TEST(CheckpointCorruption, MutatedValidManifestNeverCrashes) {
  Rng rng(777);
  const std::string real = Serialize(SampleManifest());
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = real;
    const int edits = 1 + static_cast<int>(rng.UniformInt(uint64_t{4}));
    for (int e = 0; e < edits; ++e) {
      const size_t at = rng.UniformInt(uint64_t{bytes.size()});
      bytes[at] = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    Manifest m;
    Parse(bytes, &m).ok();  // must not crash; result status irrelevant
  }
}

TEST(CheckpointManifest, HashCombineOrderMatters) {
  const uint64_t a = HashCombine(HashCombine(0, 1), 2);
  const uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
  EXPECT_NE(HashCombine(0, 0), 0u);
}

}  // namespace
}  // namespace csj::checkpoint

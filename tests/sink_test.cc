#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sink.h"

namespace csj {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

TEST(SinkTest, IdWidthFor) {
  EXPECT_EQ(IdWidthFor(0), 1);
  EXPECT_EQ(IdWidthFor(1), 1);
  EXPECT_EQ(IdWidthFor(10), 1);   // ids 0..9
  EXPECT_EQ(IdWidthFor(11), 2);   // ids 0..10
  EXPECT_EQ(IdWidthFor(27000), 5);
  EXPECT_EQ(IdWidthFor(1500000), 7);
}

TEST(CountingSinkTest, CountsLinksGroupsBytes) {
  CountingSink sink(4);
  sink.Link(1, 2);
  sink.Link(3, 4);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);
  EXPECT_EQ(sink.num_links(), 2u);
  EXPECT_EQ(sink.num_groups(), 1u);
  EXPECT_EQ(sink.group_member_total(), 3u);
  // Each id costs width+1 bytes ("0001 " or "0001\n"): 2 links x 2 ids x 5
  // + 1 group x 3 ids x 5 = 35.
  EXPECT_EQ(sink.bytes(), 35u);
  EXPECT_TRUE(sink.Finish().ok());
}

TEST(FileSinkTest, WritesPaperFormat) {
  const std::string path = testing::TempDir() + "/csj_sink_test.txt";
  FileSink sink(4, path);
  ASSERT_TRUE(sink.open_status().ok());
  sink.Link(1, 2);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);
  sink.Link(12345, 6);  // wider than the pad width: printed in full
  ASSERT_TRUE(sink.Finish().ok());

  EXPECT_EQ(ReadWholeFile(path), "0001 0002\n0001 0002 0003\n12345 0006\n");
}

TEST(FileSinkTest, FileBytesMatchAccountingForPaddedIds) {
  const std::string path = testing::TempDir() + "/csj_sink_bytes.txt";
  FileSink sink(4, path);
  sink.Link(7, 8);
  const std::vector<PointId> group = {10, 20, 30, 40};
  sink.Group(group);
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(sink.file_bytes(), sink.bytes());
  EXPECT_EQ(ReadWholeFile(path).size(), sink.bytes());
}

TEST(FileSinkTest, OpenFailureSurfacesInFinish) {
  FileSink sink(4, "/nonexistent-dir-xyz/out.txt");
  EXPECT_FALSE(sink.open_status().ok());
  sink.Link(1, 2);  // must not crash
  EXPECT_FALSE(sink.Finish().ok());
}

TEST(FileSinkTest, OpenFailureIsStickyAndShortCircuitsAppends) {
  // Regression: a failed Open used to let DoLink/DoGroup keep "appending"
  // into a closed file (counting bytes that were never writable) and only
  // report the problem at Finish. The error must be sticky and immediate.
  FileSink sink(4, "/nonexistent-dir-xyz/sub/out.txt");
  ASSERT_FALSE(sink.open_status().ok());
  EXPECT_FALSE(sink.error().ok());
  EXPECT_EQ(sink.error(), sink.open_status());

  sink.Link(1, 2);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);

  // Nothing was accepted: the counters describe real output only.
  EXPECT_EQ(sink.num_links(), 0u);
  EXPECT_EQ(sink.num_groups(), 0u);
  EXPECT_EQ(sink.bytes(), 0u);
  EXPECT_EQ(sink.file_bytes(), 0u);

  const Status finish = sink.Finish();
  EXPECT_FALSE(finish.ok());
  EXPECT_EQ(finish, sink.open_status());  // first error wins
}

TEST(FileSinkTest, AtomicCommitHidesFileUntilFinish) {
  const std::string path = testing::TempDir() + "/csj_sink_atomic.txt";
  std::remove(path.c_str());
  FileSink sink(4, path);
  sink.Link(1, 2);
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr)
      << "destination visible before Finish";
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(ReadWholeFile(path), "0001 0002\n");
  std::remove(path.c_str());
}

TEST(FileSinkTest, NonAtomicModeStreamsDirectly) {
  const std::string path = testing::TempDir() + "/csj_sink_plain.txt";
  FileSink::Options options;
  options.atomic = false;
  FileSink sink(4, path, options);
  sink.Link(1, 2);
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(ReadWholeFile(path), "0001 0002\n");
  std::remove(path.c_str());
}

TEST(FileSinkTest, AbandonedSinkLeavesNoFile) {
  const std::string path = testing::TempDir() + "/csj_sink_abandoned.txt";
  std::remove(path.c_str());
  {
    FileSink sink(4, path);
    sink.Link(1, 2);
    // Destroyed without Finish(): the interrupted-join case.
  }
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr)
      << "abandoned sink left output at " << path;
}

TEST(MemorySinkTest, RetainsOutput) {
  MemorySink sink(3);
  sink.Link(5, 6);
  const std::vector<PointId> group = {7, 8, 9};
  sink.Group(group);
  ASSERT_EQ(sink.links().size(), 1u);
  EXPECT_EQ(sink.links()[0], (std::pair<PointId, PointId>{5, 6}));
  ASSERT_EQ(sink.groups().size(), 1u);
  EXPECT_EQ(sink.groups()[0], (std::vector<PointId>{7, 8, 9}));
}

TEST(SinkTest, ByteAccountingFormula) {
  // bytes = (#ids emitted) * (width + 1) for any mix of links and groups.
  CountingSink sink(7);
  sink.Link(0, 1);
  std::vector<PointId> group(10);
  for (size_t i = 0; i < group.size(); ++i) group[i] = static_cast<PointId>(i);
  sink.Group(group);
  sink.Group(group);
  const uint64_t ids = 2 + 10 + 10;
  EXPECT_EQ(sink.bytes(), ids * 8);
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sink.h"
#include "util/random.h"

namespace csj {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

TEST(SinkTest, IdWidthFor) {
  EXPECT_EQ(IdWidthFor(0), 1);
  EXPECT_EQ(IdWidthFor(1), 1);
  EXPECT_EQ(IdWidthFor(10), 1);   // ids 0..9
  EXPECT_EQ(IdWidthFor(11), 2);   // ids 0..10
  EXPECT_EQ(IdWidthFor(27000), 5);
  EXPECT_EQ(IdWidthFor(1500000), 7);
}

TEST(CountingSinkTest, CountsLinksGroupsBytes) {
  CountingSink sink(4);
  sink.Link(1, 2);
  sink.Link(3, 4);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);
  EXPECT_EQ(sink.num_links(), 2u);
  EXPECT_EQ(sink.num_groups(), 1u);
  EXPECT_EQ(sink.group_member_total(), 3u);
  // Each id costs width+1 bytes ("0001 " or "0001\n"): 2 links x 2 ids x 5
  // + 1 group x 3 ids x 5 = 35.
  EXPECT_EQ(sink.bytes(), 35u);
  EXPECT_TRUE(sink.Finish().ok());
}

TEST(FileSinkTest, WritesPaperFormat) {
  const std::string path = testing::TempDir() + "/csj_sink_test.txt";
  FileSink sink(4, path);
  ASSERT_TRUE(sink.open_status().ok());
  sink.Link(1, 2);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);
  sink.Link(12345, 6);  // wider than the pad width: printed in full
  ASSERT_TRUE(sink.Finish().ok());

  EXPECT_EQ(ReadWholeFile(path), "0001 0002\n0001 0002 0003\n12345 0006\n");
}

TEST(FileSinkTest, FileBytesMatchAccountingForPaddedIds) {
  const std::string path = testing::TempDir() + "/csj_sink_bytes.txt";
  FileSink sink(4, path);
  sink.Link(7, 8);
  const std::vector<PointId> group = {10, 20, 30, 40};
  sink.Group(group);
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(sink.file_bytes(), sink.bytes());
  EXPECT_EQ(ReadWholeFile(path).size(), sink.bytes());
}

TEST(FileSinkTest, OpenFailureSurfacesInFinish) {
  FileSink sink(4, "/nonexistent-dir-xyz/out.txt");
  EXPECT_FALSE(sink.open_status().ok());
  sink.Link(1, 2);  // must not crash
  EXPECT_FALSE(sink.Finish().ok());
}

TEST(FileSinkTest, OpenFailureIsStickyAndShortCircuitsAppends) {
  // Regression: a failed Open used to let DoLink/DoGroup keep "appending"
  // into a closed file (counting bytes that were never writable) and only
  // report the problem at Finish. The error must be sticky and immediate.
  FileSink sink(4, "/nonexistent-dir-xyz/sub/out.txt");
  ASSERT_FALSE(sink.open_status().ok());
  EXPECT_FALSE(sink.error().ok());
  EXPECT_EQ(sink.error(), sink.open_status());

  sink.Link(1, 2);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);

  // Nothing was accepted: the counters describe real output only.
  EXPECT_EQ(sink.num_links(), 0u);
  EXPECT_EQ(sink.num_groups(), 0u);
  EXPECT_EQ(sink.bytes(), 0u);
  EXPECT_EQ(sink.file_bytes(), 0u);

  const Status finish = sink.Finish();
  EXPECT_FALSE(finish.ok());
  EXPECT_EQ(finish, sink.open_status());  // first error wins
}

TEST(FileSinkTest, AtomicCommitHidesFileUntilFinish) {
  const std::string path = testing::TempDir() + "/csj_sink_atomic.txt";
  std::remove(path.c_str());
  FileSink sink(4, path);
  sink.Link(1, 2);
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr)
      << "destination visible before Finish";
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(ReadWholeFile(path), "0001 0002\n");
  std::remove(path.c_str());
}

TEST(FileSinkTest, NonAtomicModeStreamsDirectly) {
  const std::string path = testing::TempDir() + "/csj_sink_plain.txt";
  FileSink::Options options;
  options.atomic = false;
  FileSink sink(4, path, options);
  sink.Link(1, 2);
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(ReadWholeFile(path), "0001 0002\n");
  std::remove(path.c_str());
}

TEST(FileSinkTest, AbandonedSinkLeavesNoFile) {
  const std::string path = testing::TempDir() + "/csj_sink_abandoned.txt";
  std::remove(path.c_str());
  {
    FileSink sink(4, path);
    sink.Link(1, 2);
    // Destroyed without Finish(): the interrupted-join case.
  }
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr)
      << "abandoned sink left output at " << path;
}

TEST(MemorySinkTest, RetainsOutput) {
  MemorySink sink(3);
  sink.Link(5, 6);
  const std::vector<PointId> group = {7, 8, 9};
  sink.Group(group);
  ASSERT_EQ(sink.links().size(), 1u);
  EXPECT_EQ(sink.links()[0], (std::pair<PointId, PointId>{5, 6}));
  ASSERT_EQ(sink.groups().size(), 1u);
  EXPECT_EQ(sink.groups()[0], (std::vector<PointId>{7, 8, 9}));
}

TEST(SinkTest, ByteAccountingFormula) {
  // bytes = (#ids emitted) * (width + 1) for any mix of links and groups.
  CountingSink sink(7);
  sink.Link(0, 1);
  std::vector<PointId> group(10);
  for (size_t i = 0; i < group.size(); ++i) group[i] = static_cast<PointId>(i);
  sink.Group(group);
  sink.Group(group);
  const uint64_t ids = 2 + 10 + 10;
  EXPECT_EQ(sink.bytes(), ids * 8);
}

uint64_t FileSize(const std::string& path) {
  return ReadWholeFile(path).size();
}

/// Drives the same emission sequence into any sink.
void EmitSample(JoinSink* sink) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.5)) {
      sink->Link(static_cast<PointId>(rng.UniformInt(uint64_t{90000})),
                 static_cast<PointId>(rng.UniformInt(uint64_t{90000})));
    } else {
      std::vector<PointId> group(2 + rng.UniformInt(uint64_t{12}));
      for (auto& id : group) {
        id = static_cast<PointId>(rng.UniformInt(uint64_t{90000}));
      }
      sink->Group(group);
    }
  }
}

TEST(ByteAccountingTest, CountedBytesEqualFileSizeForBothFormats) {
  // Regression for the format-aware size model: for text AND binary, the
  // sink's pre-Finish bytes() must equal the committed file's stat() size.
  for (const OutputFormat format :
       {OutputFormat::kText, OutputFormat::kBinary}) {
    const std::string path = testing::TempDir() + "/csj_acct." +
                             OutputFormatName(format);
    auto sink = MakeSinkOrDie(OutputSpec::File(path, 90000, format));
    EmitSample(sink.get());
    const uint64_t predicted = sink->bytes();
    ASSERT_TRUE(sink->Finish().ok());
    EXPECT_EQ(predicted, FileSize(path)) << OutputFormatName(format);
    // Finish() must not change the accounting.
    EXPECT_EQ(sink->bytes(), predicted);
    std::remove(path.c_str());
  }
}

TEST(ByteAccountingTest, CountingSinkPredictsBinaryFileExactly) {
  const std::string path = testing::TempDir() + "/csj_acct_predict.bin";
  auto file_sink =
      MakeSinkOrDie(OutputSpec::File(path, 90000, OutputFormat::kBinary));
  auto counting = MakeSinkOrDie(
      OutputSpec::Counting(90000, OutputFormat::kBinary));
  EmitSample(file_sink.get());
  EmitSample(counting.get());
  EXPECT_EQ(counting->bytes(), file_sink->bytes());
  ASSERT_TRUE(file_sink->Finish().ok());
  EXPECT_EQ(counting->bytes(), FileSize(path));
  ASSERT_TRUE(counting->Finish().ok());
  std::remove(path.c_str());
}

TEST(ByteAccountingTest, EmptyBinaryFileSizeIsPredicted) {
  const std::string path = testing::TempDir() + "/csj_acct_empty.bin";
  auto sink =
      MakeSinkOrDie(OutputSpec::File(path, 10, OutputFormat::kBinary));
  const uint64_t predicted = sink->bytes();
  EXPECT_GT(predicted, 0u);  // header + EOF marker + footer
  ASSERT_TRUE(sink->Finish().ok());
  EXPECT_EQ(predicted, FileSize(path));
  std::remove(path.c_str());
}

TEST(MakeSinkTest, BuildsEveryFormat) {
  const std::string dir = testing::TempDir();
  {
    auto sink = MakeSink(OutputSpec::Counting(100));
    ASSERT_TRUE(sink.ok());
    EXPECT_EQ((*sink)->id_width(), 2);
    EXPECT_EQ((*sink)->accounting(), OutputFormat::kText);
  }
  {
    auto sink = MakeSink(OutputSpec::Counting(100, OutputFormat::kBinary));
    ASSERT_TRUE(sink.ok());
    EXPECT_EQ((*sink)->accounting(), OutputFormat::kBinary);
  }
  for (const OutputFormat format :
       {OutputFormat::kText, OutputFormat::kBinary}) {
    const std::string path = dir + "/csj_factory." + OutputFormatName(format);
    auto sink = MakeSink(OutputSpec::File(path, 1000, format));
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    EXPECT_EQ((*sink)->id_width(), 3);
    (*sink)->Link(1, 2);
    ASSERT_TRUE((*sink)->Finish().ok());
    std::remove(path.c_str());
  }
}

TEST(MakeSinkTest, RejectsInvalidSpecs) {
  {
    OutputSpec spec;  // text with no path
    spec.format = OutputFormat::kText;
    EXPECT_FALSE(MakeSink(spec).ok());
  }
  {
    OutputSpec spec;
    spec.format = OutputFormat::kBinary;
    EXPECT_FALSE(MakeSink(spec).ok());  // binary with no path
  }
  {
    OutputSpec spec = OutputSpec::File(
        testing::TempDir() + "/csj_factory_cap.bin", 10,
        OutputFormat::kBinary);
    spec.cap_bytes = 1000;  // caps are text-only
    EXPECT_FALSE(MakeSink(spec).ok());
  }
  {
    OutputSpec spec = OutputSpec::Counting(10);
    spec.count_model = OutputFormat::kNone;  // not a byte model
    EXPECT_FALSE(MakeSink(spec).ok());
  }
  {
    OutputSpec spec = OutputSpec::Counting(10);
    spec.id_width = 0;
    EXPECT_FALSE(MakeSink(spec).ok());
  }
  // Unopenable paths fail at MakeSink, not at the first write.
  EXPECT_FALSE(
      MakeSink(OutputSpec::File("/nonexistent-dir-xyz/r.txt", 10)).ok());
  EXPECT_FALSE(MakeSink(OutputSpec::File("/nonexistent-dir-xyz/r.bin", 10,
                                         OutputFormat::kBinary))
                   .ok());
}

TEST(FileSinkTest, CapStopsWritingButKeepsCounting) {
  const std::string path = testing::TempDir() + "/csj_sink_capped.txt";
  OutputSpec spec = OutputSpec::File(path, 10000);
  spec.cap_bytes = 30;  // room for three 10-byte link lines
  auto sink = MakeSinkOrDie(spec);
  for (PointId i = 0; i < 10; ++i) sink->Link(i, i + 1);
  EXPECT_TRUE(sink->truncated());
  EXPECT_EQ(sink->num_links(), 10u);   // all counted
  EXPECT_EQ(sink->bytes(), 100u);      // full (uncapped) size
  EXPECT_EQ(sink->materialized_bytes(), 30u);
  ASSERT_TRUE(sink->Finish().ok());
  EXPECT_EQ(FileSize(path), 30u);
  std::remove(path.c_str());
}

TEST(BinaryFileSinkTest, AbandonedSinkLeavesNoFile) {
  const std::string path = testing::TempDir() + "/csj_bin_abandoned.bin";
  std::remove(path.c_str());
  {
    auto sink =
        MakeSinkOrDie(OutputSpec::File(path, 100, OutputFormat::kBinary));
    sink->Link(1, 2);
    // Destroyed without Finish(): the interrupted-join case.
  }
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr)
      << "abandoned binary sink left output at " << path;
}

TEST(BinaryFileSinkTest, AtomicCommitHidesFileUntilFinish) {
  const std::string path = testing::TempDir() + "/csj_bin_atomic.bin";
  std::remove(path.c_str());
  auto sink =
      MakeSinkOrDie(OutputSpec::File(path, 100, OutputFormat::kBinary));
  sink->Link(1, 2);
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr)
      << "destination visible before Finish";
  ASSERT_TRUE(sink->Finish().ok());
  EXPECT_GT(FileSize(path), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/parallel_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/node_access.h"
#include "index/rstar_tree.h"

namespace csj {
namespace {

std::vector<Entry<2>> Workload(size_t n, uint64_t seed) {
  return ToEntries(GenerateGaussianClusters<2>(n, 6, 0.03, seed));
}

/// Accepts `budget` writes, retains them like a MemorySink, then enters the
/// sticky-error state — a deterministic stand-in for a disk filling up
/// mid-replay.
class DyingSink final : public JoinSink {
 public:
  DyingSink(int id_width, uint64_t budget)
      : JoinSink(id_width), budget_(budget) {}

  const std::vector<std::pair<PointId, PointId>>& links() const {
    return links_;
  }
  const std::vector<std::vector<PointId>>& groups() const { return groups_; }

 protected:
  void DoLink(PointId a, PointId b) override {
    if (Spend()) links_.emplace_back(a, b);
  }
  void DoGroup(std::span<const PointId> members) override {
    if (Spend()) groups_.emplace_back(members.begin(), members.end());
  }

 private:
  bool Spend() {
    if (writes_ >= budget_) {
      SetError(Status::IoError("sink died (injected)"));
      return false;
    }
    ++writes_;
    return true;
  }

  uint64_t budget_;
  uint64_t writes_ = 0;
  std::vector<std::pair<PointId, PointId>> links_;
  std::vector<std::vector<PointId>> groups_;
};

/// Implied links recomputed from what a sink retained: each accepted group
/// of k members stands for k*(k-1)/2 links.
template <typename Sink>
uint64_t ImpliedFromRetained(const Sink& sink) {
  uint64_t implied = sink.links().size();
  for (const auto& group : sink.groups()) {
    const uint64_t k = group.size();
    implied += k * (k - 1) / 2;
  }
  return implied;
}

TEST(ParallelJoinTest, LosslessAcrossThreadCounts) {
  const auto entries = Workload(3000, 7);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  for (double eps : {0.01, 0.06}) {
    const auto reference = BruteForceSelfJoin(entries, eps);
    JoinOptions options;
    options.epsilon = eps;
    for (int threads : {1, 2, 4, 8}) {
      ParallelJoinOptions parallel;
      parallel.threads = threads;
      MemorySink sink(IdWidthFor(entries.size()));
      const JoinStats stats =
          ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      ASSERT_TRUE(report.lossless())
          << "threads=" << threads << " eps=" << eps << ": "
          << report.ToString();
      EXPECT_EQ(stats.links, sink.num_links());
      EXPECT_EQ(stats.groups, sink.num_groups());
      EXPECT_EQ(stats.output_bytes, sink.bytes());
    }
  }
}

TEST(ParallelJoinTest, OutputAsCompactAsSequentialWithinSlack) {
  // Group composition differs (windows are per-worker), but the parallel
  // output should stay in the same compactness ballpark.
  const auto entries = Workload(5000, 11);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.04;

  CountingSink sequential(IdWidthFor(entries.size()));
  CompactSimilarityJoin(tree, options, &sequential);
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  CountingSink parallel_sink(IdWidthFor(entries.size()));
  ParallelCompactSimilarityJoin(tree, options, &parallel_sink, parallel);

  EXPECT_LT(parallel_sink.bytes(),
            static_cast<uint64_t>(1.5 * static_cast<double>(sequential.bytes())));
}

TEST(ParallelJoinTest, SmallAndDegenerateInputs) {
  JoinOptions options;
  options.epsilon = 0.1;
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  {
    RStarTree<2> tree;  // empty
    MemorySink sink(1);
    const JoinStats stats =
        ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_EQ(stats.links + stats.groups, 0u);
  }
  {
    RStarTree<2> tree;
    tree.Insert(0, Point2{{0.5, 0.5}});
    MemorySink sink(1);
    const JoinStats stats =
        ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_EQ(stats.links + stats.groups, 0u);
  }
  {
    RStarTree<2> tree;
    tree.Insert(0, Point2{{0.5, 0.5}});
    tree.Insert(1, Point2{{0.52, 0.5}});
    MemorySink sink(1);
    ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_EQ(ExpandSelfJoin(sink), (std::vector<Link>{{0, 1}}));
  }
}

TEST(ParallelJoinTest, MoreThreadsThanTasks) {
  // A tiny tree cannot be split into many tasks; extra workers idle safely.
  const auto entries = Workload(50, 13);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;
  ParallelJoinOptions parallel;
  parallel.threads = 16;
  MemorySink sink(2);
  ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(ParallelJoinTest, PackedTreeWorks) {
  const auto entries = Workload(8000, 17);
  RStarTree<2> tree;
  PackStr(&tree, entries);
  JoinOptions options;
  options.epsilon = 0.02;
  MemorySink sink(IdWidthFor(entries.size()));
  ParallelCompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(ParallelJoinTest, WindowOptionsRespected) {
  const auto entries = Workload(2000, 19);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_policy = WindowPolicy::kBestFit;
  options.promote_on_merge = true;
  options.window_size = 3;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = ParallelCompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
  EXPECT_GT(stats.merge_attempts, 0u);
}

TEST(ParallelJoinTest, WorkCountersSurviveSinkDeathMidReplay) {
  // Regression: the replay loop used to sum per-worker work counters inside
  // the sink-guarded iteration, so a sink dying mid-replay silently dropped
  // the traversal work of every not-yet-replayed worker.
  const auto entries = Workload(4000, 23);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.04;
  ParallelJoinOptions parallel;
  parallel.threads = 4;

  MemorySink healthy(IdWidthFor(entries.size()));
  const JoinStats reference =
      ParallelCompactSimilarityJoin(tree, options, &healthy, parallel);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_GT(healthy.num_links() + healthy.num_groups(), 8u)
      << "workload too small to die mid-replay";

  // Die a few writes in: several workers' outputs never reach the sink.
  DyingSink dying(IdWidthFor(entries.size()), 5);
  const JoinStats stats =
      ParallelCompactSimilarityJoin(tree, options, &dying, parallel);
  EXPECT_FALSE(stats.status.ok());

  // The traversal completed before the replay started, so the work counters
  // must describe the full join. distance_computations and early_stops are
  // per-task sums, hence identical across schedules; the merge counters
  // depend on task-to-worker assignment, so only demand they are nonzero.
  EXPECT_EQ(stats.distance_computations, reference.distance_computations);
  EXPECT_EQ(stats.early_stops, reference.early_stops);
  EXPECT_GT(stats.merge_attempts, 0u);
  EXPECT_GE(stats.merge_attempts, stats.merges);
}

TEST(ParallelJoinTest, ImpliedCountMatchesAcceptedWritesOnSinkDeath) {
  // Regression: the replay used to bump the implied-link counters before
  // checking whether the sink actually accepted the write, so a replay cut
  // short by a sink error overcounted the dying write.
  const auto entries = Workload(3000, 29);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;
  ParallelJoinOptions parallel;
  parallel.threads = 4;

  for (uint64_t budget : {0ull, 1ull, 7ull, 100ull}) {
    DyingSink sink(IdWidthFor(entries.size()), budget);
    const JoinStats stats =
        ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_FALSE(stats.status.ok()) << "budget=" << budget;
    EXPECT_EQ(stats.ImpliedLinkUpperBound(), ImpliedFromRetained(sink))
        << "budget=" << budget;
  }
}

TEST(ParallelJoinTest, TrackerRejectedWithStatusNotACrash) {
  // Regression: a non-null options.tracker used to CSJ_CHECK-abort the
  // process even though the file comment promised it was merely ignored.
  // The contract is now an InvalidArgument status and an untouched sink.
  const auto entries = Workload(500, 31);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  NodeAccessTracker tracker(/*nodes_per_page=*/4, /*cache_pages=*/64);
  JoinOptions options;
  options.epsilon = 0.05;
  options.tracker = &tracker;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = ParallelCompactSimilarityJoin(tree, options, &sink);
  ASSERT_FALSE(stats.status.ok());
  EXPECT_EQ(stats.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sink.num_links() + sink.num_groups(), 0u);
  EXPECT_EQ(stats.links + stats.groups, 0u);
}

TEST(ParallelJoinTest, ImpliedLinkCountConsistentInBothModes) {
  // Property: in either mode the reported implied-link upper bound equals
  // the count recomputed from the emitted output, and it bounds the number
  // of distinct links the output expands to. (Strict parallel==sequential
  // equality does NOT hold: group composition differs per worker, and
  // overlapping groups imply different totals.)
  const auto entries = Workload(2500, 37);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;

  MemorySink sequential(IdWidthFor(entries.size()));
  const JoinStats seq_stats =
      CompactSimilarityJoin(tree, options, &sequential);
  ASSERT_TRUE(seq_stats.status.ok());
  EXPECT_EQ(seq_stats.ImpliedLinkUpperBound(),
            ImpliedFromRetained(sequential));
  EXPECT_GE(seq_stats.ImpliedLinkUpperBound(),
            ExpandSelfJoin(sequential).size());

  ParallelJoinOptions parallel;
  parallel.threads = 4;
  MemorySink par_sink(IdWidthFor(entries.size()));
  const JoinStats par_stats =
      ParallelCompactSimilarityJoin(tree, options, &par_sink, parallel);
  ASSERT_TRUE(par_stats.status.ok());
  EXPECT_EQ(par_stats.ImpliedLinkUpperBound(), ImpliedFromRetained(par_sink));
  EXPECT_GE(par_stats.ImpliedLinkUpperBound(),
            ExpandSelfJoin(par_sink).size());

  // Both expansions are the same exact result set.
  EXPECT_EQ(ExpandSelfJoin(sequential).size(), ExpandSelfJoin(par_sink).size());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/parallel_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"

namespace csj {
namespace {

std::vector<Entry<2>> Workload(size_t n, uint64_t seed) {
  return ToEntries(GenerateGaussianClusters<2>(n, 6, 0.03, seed));
}

TEST(ParallelJoinTest, LosslessAcrossThreadCounts) {
  const auto entries = Workload(3000, 7);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  for (double eps : {0.01, 0.06}) {
    const auto reference = BruteForceSelfJoin(entries, eps);
    JoinOptions options;
    options.epsilon = eps;
    for (int threads : {1, 2, 4, 8}) {
      ParallelJoinOptions parallel;
      parallel.threads = threads;
      MemorySink sink(IdWidthFor(entries.size()));
      const JoinStats stats =
          ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      ASSERT_TRUE(report.lossless())
          << "threads=" << threads << " eps=" << eps << ": "
          << report.ToString();
      EXPECT_EQ(stats.links, sink.num_links());
      EXPECT_EQ(stats.groups, sink.num_groups());
      EXPECT_EQ(stats.output_bytes, sink.bytes());
    }
  }
}

TEST(ParallelJoinTest, OutputAsCompactAsSequentialWithinSlack) {
  // Group composition differs (windows are per-worker), but the parallel
  // output should stay in the same compactness ballpark.
  const auto entries = Workload(5000, 11);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.04;

  CountingSink sequential(IdWidthFor(entries.size()));
  CompactSimilarityJoin(tree, options, &sequential);
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  CountingSink parallel_sink(IdWidthFor(entries.size()));
  ParallelCompactSimilarityJoin(tree, options, &parallel_sink, parallel);

  EXPECT_LT(parallel_sink.bytes(),
            static_cast<uint64_t>(1.5 * static_cast<double>(sequential.bytes())));
}

TEST(ParallelJoinTest, SmallAndDegenerateInputs) {
  JoinOptions options;
  options.epsilon = 0.1;
  ParallelJoinOptions parallel;
  parallel.threads = 4;
  {
    RStarTree<2> tree;  // empty
    MemorySink sink(1);
    const JoinStats stats =
        ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_EQ(stats.links + stats.groups, 0u);
  }
  {
    RStarTree<2> tree;
    tree.Insert(0, Point2{{0.5, 0.5}});
    MemorySink sink(1);
    const JoinStats stats =
        ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_EQ(stats.links + stats.groups, 0u);
  }
  {
    RStarTree<2> tree;
    tree.Insert(0, Point2{{0.5, 0.5}});
    tree.Insert(1, Point2{{0.52, 0.5}});
    MemorySink sink(1);
    ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
    EXPECT_EQ(ExpandSelfJoin(sink), (std::vector<Link>{{0, 1}}));
  }
}

TEST(ParallelJoinTest, MoreThreadsThanTasks) {
  // A tiny tree cannot be split into many tasks; extra workers idle safely.
  const auto entries = Workload(50, 13);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;
  ParallelJoinOptions parallel;
  parallel.threads = 16;
  MemorySink sink(2);
  ParallelCompactSimilarityJoin(tree, options, &sink, parallel);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(ParallelJoinTest, PackedTreeWorks) {
  const auto entries = Workload(8000, 17);
  RStarTree<2> tree;
  PackStr(&tree, entries);
  JoinOptions options;
  options.epsilon = 0.02;
  MemorySink sink(IdWidthFor(entries.size()));
  ParallelCompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(ParallelJoinTest, WindowOptionsRespected) {
  const auto entries = Workload(2000, 19);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.05;
  options.window_policy = WindowPolicy::kBestFit;
  options.promote_on_merge = true;
  options.window_size = 3;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = ParallelCompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
  EXPECT_GT(stats.merge_attempts, 0u);
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "data/generators.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "util/random.h"

namespace csj {
namespace {

template <int D>
std::vector<Entry<D>> RandomEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<D>(n, seed);
  std::vector<Entry<D>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

template <int D>
std::set<PointId> ToIds(const std::vector<Entry<D>>& entries) {
  std::set<PointId> out;
  for (const auto& e : entries) out.insert(e.id);
  return out;
}

TEST(RStarTreeTest, EmptyAndSingle) {
  RStarTree<2> tree;
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
  tree.Insert(0, Point2{{0.1, 0.2}});
  EXPECT_EQ(tree.size(), 1u);
  tree.CheckInvariants();
}

TEST(RStarTreeTest, InvariantsAfterManyInserts) {
  RStarOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  RStarTree<2> tree(options);
  const auto entries = RandomEntries<2>(3000, 111);
  for (size_t i = 0; i < entries.size(); ++i) {
    tree.Insert(entries[i].id, entries[i].point);
    if (i % 509 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 3000u);
}

TEST(RStarTreeTest, InvariantsWithoutForcedReinsert) {
  RStarOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  options.forced_reinsert = false;
  RStarTree<2> tree(options);
  const auto entries = RandomEntries<2>(1500, 12);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 1500u);
}

TEST(RStarTreeTest, RangeQueryMatchesBruteForce) {
  RStarTree<2> tree;
  const auto entries = RandomEntries<2>(2000, 31);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  Rng rng(77);
  for (int q = 0; q < 50; ++q) {
    const Point2 center{{rng.UniformDouble(), rng.UniformDouble()}};
    const double radius = rng.UniformDouble(0.0, 0.25);
    std::set<PointId> expected;
    for (const auto& e : entries) {
      if (Distance(center, e.point) <= radius) expected.insert(e.id);
    }
    EXPECT_EQ(ToIds(tree.RangeQuery(center, radius)), expected);
  }
}

TEST(RStarTreeTest, ClusteredDataInvariants) {
  // Forced reinsertion is most active on skewed data.
  RStarOptions options;
  options.max_fanout = 16;
  options.min_fanout = 6;
  RStarTree<2> tree(options);
  const auto points = GenerateGaussianClusters<2>(4000, 5, 0.01, 9);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 4000u);
}

TEST(RStarTreeTest, RemoveWorks) {
  RStarOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  RStarTree<2> tree(options);
  auto entries = RandomEntries<2>(800, 61);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  Rng rng(62);
  rng.Shuffle(entries);
  for (size_t i = 0; i < entries.size() / 3; ++i) {
    ASSERT_TRUE(tree.Remove(entries[i].id, entries[i].point));
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), entries.size() - entries.size() / 3);
}

TEST(RStarTreeTest, QualityBeatsOrEqualsGuttmanOnClusteredData) {
  // A structural sanity check rather than a strict guarantee: the R* split
  // and reinsertion should not produce *more* node-MBR overlap volume than
  // a linear-split Guttman tree on clustered data.
  const auto points = GenerateGaussianClusters<2>(3000, 8, 0.02, 5);

  RTreeOptions guttman_options;
  guttman_options.split = RTreeSplit::kLinear;
  RTree<2> guttman(guttman_options);
  RStarTree<2> rstar;
  for (size_t i = 0; i < points.size(); ++i) {
    guttman.Insert(static_cast<PointId>(i), points[i]);
    rstar.Insert(static_cast<PointId>(i), points[i]);
  }

  auto leaf_overlap = [](const auto& tree) {
    // Sum pairwise overlap of sibling MBRs across all internal nodes.
    double overlap = 0.0;
    tree.ForEachNode([&](NodeId n) {
      if (tree.IsLeaf(n)) return;
      const auto children = tree.Children(n);
      for (size_t i = 0; i < children.size(); ++i) {
        for (size_t j = i + 1; j < children.size(); ++j) {
          overlap += tree.NodeBox(children[i])
                         .OverlapVolume(tree.NodeBox(children[j]));
        }
      }
    });
    return overlap;
  };
  EXPECT_LE(leaf_overlap(rstar), leaf_overlap(guttman) * 1.05);
}

TEST(RStarTreeTest, SierpinskiDataInvariants3D) {
  RStarTree<3> tree;
  const auto points = GenerateSierpinski3D(5000, 4);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  tree.CheckInvariants();
  const TreeStats stats = tree.Stats();
  EXPECT_EQ(stats.num_entries, 5000u);
  EXPECT_GT(stats.avg_leaf_fill, 0.4);
}

TEST(RStarTreeTest, DuplicatePointsSupported) {
  RStarOptions options;
  options.max_fanout = 4;
  options.min_fanout = 2;
  RStarTree<2> tree(options);
  for (PointId id = 0; id < 64; ++id) tree.Insert(id, Point2{{0.3, 0.3}});
  tree.CheckInvariants();
  EXPECT_EQ(tree.RangeQuery(Point2{{0.3, 0.3}}, 0.0).size(), 64u);
}

}  // namespace
}  // namespace csj

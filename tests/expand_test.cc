#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/sink.h"

namespace csj {
namespace {

TEST(ExpandTest, LinksPassThroughCanonicalized) {
  MemorySink sink(1);
  sink.Link(5, 2);
  sink.Link(1, 3);
  sink.Link(2, 5);  // duplicate in reversed order
  const auto links = ExpandSelfJoin(sink);
  EXPECT_EQ(links, (std::vector<Link>{{1, 3}, {2, 5}}));
}

TEST(ExpandTest, GroupsExpandToAllPairs) {
  MemorySink sink(1);
  const std::vector<PointId> group = {1, 2, 3};
  sink.Group(group);
  const auto links = ExpandSelfJoin(sink);
  EXPECT_EQ(links, (std::vector<Link>{{1, 2}, {1, 3}, {2, 3}}));
}

TEST(ExpandTest, OverlappingGroupsDeduplicate) {
  MemorySink sink(1);
  const std::vector<PointId> g1 = {1, 2, 3};
  const std::vector<PointId> g2 = {2, 3, 4};
  sink.Group(g1);
  sink.Group(g2);
  const auto links = ExpandSelfJoin(sink);
  // (2,3) implied by both groups appears once.
  EXPECT_EQ(links,
            (std::vector<Link>{{1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}}));
}

TEST(ExpandTest, MixedLinksAndGroups) {
  MemorySink sink(1);
  sink.Link(9, 8);
  const std::vector<PointId> group = {1, 2};
  sink.Group(group);
  const auto links = ExpandSelfJoin(sink);
  EXPECT_EQ(links, (std::vector<Link>{{1, 2}, {8, 9}}));
}

TEST(ExpandTest, SpatialExpansionOnlyCrossPairs) {
  MemorySink sink(2);
  // Group mixing A-side (ids < 100) and B-side members.
  const std::vector<PointId> group = {1, 2, 101, 102};
  sink.Group(group);
  const auto links =
      ExpandSpatialJoin(sink, [](PointId id) { return id < 100; });
  // Only A x B pairs; (1,2) and (101,102) are NOT implied by a spatial join.
  EXPECT_EQ(links,
            (std::vector<Link>{{1, 101}, {1, 102}, {2, 101}, {2, 102}}));
}

TEST(ExpandTest, CompareLinkSetsFindsMissingAndExtra) {
  const std::vector<Link> expansion = {{1, 2}, {3, 4}};
  const std::vector<Link> reference = {{1, 2}, {5, 6}};
  const auto report = CompareLinkSets(expansion, reference);
  EXPECT_FALSE(report.lossless());
  EXPECT_EQ(report.missing, (std::vector<Link>{{5, 6}}));
  EXPECT_EQ(report.extra, (std::vector<Link>{{3, 4}}));
  const std::string text = report.ToString();
  EXPECT_NE(text.find("1 missing"), std::string::npos);
  EXPECT_NE(text.find("1 extra"), std::string::npos);
}

TEST(ExpandTest, IdenticalSetsAreLossless) {
  const std::vector<Link> links = {{1, 2}, {3, 4}};
  const auto report = CompareLinkSets(links, links);
  EXPECT_TRUE(report.lossless());
  EXPECT_EQ(report.ToString(), "lossless: expansion == reference");
}

TEST(ExpandTest, StreamingVisitorMatchesMaterializedExpansion) {
  MemorySink sink(1);
  sink.Link(9, 8);
  const std::vector<PointId> g1 = {1, 2, 3};
  const std::vector<PointId> g2 = {2, 3, 4};
  sink.Group(g1);
  sink.Group(g2);

  std::vector<Link> streamed;
  ForEachImpliedLink(sink, [&](PointId a, PointId b) {
    streamed.push_back(MakeLink(a, b));
  });
  // 1 link + C(3,2) + C(3,2) visits, duplicates included.
  EXPECT_EQ(streamed.size(), 1u + 3u + 3u);
  std::sort(streamed.begin(), streamed.end());
  streamed.erase(std::unique(streamed.begin(), streamed.end()),
                 streamed.end());
  EXPECT_EQ(streamed, ExpandSelfJoin(sink));
}

TEST(BruteForceTest, SelfJoinClosedPredicate) {
  const std::vector<Entry<2>> entries = {
      {0, Point2{{0.0, 0.0}}},
      {1, Point2{{0.1, 0.0}}},   // exactly eps away
      {2, Point2{{0.25, 0.0}}},  // too far
  };
  const auto links = BruteForceSelfJoin(entries, 0.1);
  EXPECT_EQ(links, (std::vector<Link>{{0, 1}}));
}

TEST(BruteForceTest, SpatialJoinCrossOnly) {
  const std::vector<Entry<2>> set_a = {{0, Point2{{0.0, 0.0}}},
                                       {1, Point2{{0.001, 0.0}}}};
  const std::vector<Entry<2>> set_b = {{100, Point2{{0.0, 0.001}}}};
  const auto links = BruteForceSpatialJoin(set_a, set_b, 0.01);
  // (0,1) is within eps but is an A-A pair, excluded.
  EXPECT_EQ(links, (std::vector<Link>{{0, 100}, {1, 100}}));
}

TEST(BruteForceTest, MakeLinkCanonicalizes) {
  EXPECT_EQ(MakeLink(5, 2), (Link{2, 5}));
  EXPECT_EQ(MakeLink(2, 5), (Link{2, 5}));
}

}  // namespace
}  // namespace csj

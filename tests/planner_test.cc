#include <gtest/gtest.h>

#include "core/query_spec.h"
#include "data/generators.h"
#include "plan/estimator.h"
#include "plan/planner.h"
#include "util/json.h"

namespace csj::plan {
namespace {

QuerySpec AutoSpec(double eps) {
  QuerySpec spec;
  spec.algo = QueryAlgo::kAuto;
  spec.eps = eps;
  return spec;
}

TEST(PlannerTest, ExplicitSpecPassesThroughUntouched) {
  const DatasetSketch sketch =
      BuildSketch(GenerateGaussianClusters<2>(4000, 8, 0.02, 7));
  QuerySpec spec;
  spec.algo = QueryAlgo::kSSJ;  // deliberately "wrong" for clustered data
  spec.eps = 0.02;
  spec.window = 3;
  spec.leaf_kernel = LeafKernel::kNaive;
  spec.leaf_batch = 1;
  spec.threads = 2;
  const QueryPlan plan = PlanQuery(spec, sketch, 4);
  EXPECT_EQ(plan.resolved, spec);  // the planner only prices explicit runs
  EXPECT_GT(plan.estimate.links, 0u);
}

TEST(PlannerTest, AutoPicksCompactJoinOnClusteredData) {
  // Clustered data at a grouping eps: compression clearly pays, so the
  // planner must choose CSJ with a sane window.
  const DatasetSketch sketch =
      BuildSketch(GenerateGaussianClusters<2>(6000, 8, 0.01, 7));
  const QueryPlan plan = PlanQuery(AutoSpec(0.02), sketch, 4);
  EXPECT_EQ(plan.resolved.algo, QueryAlgo::kCSJ);
  EXPECT_GE(plan.resolved.window, 1);
  EXPECT_FALSE(plan.decisions.empty());
}

TEST(PlannerTest, AutoPicksSsjWhenCompressionDoesNotPay) {
  // Uniform data at a tiny eps: almost no mergeable groups, predicted
  // compression under the 1.2x bar, so plain SSJ wins.
  const DatasetSketch sketch = BuildSketch(GenerateUniform<2>(6000, 11));
  const QueryPlan plan = PlanQuery(AutoSpec(0.001), sketch, 4);
  EXPECT_EQ(plan.resolved.algo, QueryAlgo::kSSJ);
}

TEST(PlannerTest, AutoPicksEarlyStopWhenOutputIsNotMaterialized) {
  // Compactness is an output optimization. A count-only query writes
  // nothing, so the merge window's upkeep can never pay for itself — even
  // on clustered data where compression is high, the planner must fall
  // back to N-CSJ (early-stop saves work without any output trade).
  const DatasetSketch sketch =
      BuildSketch(GenerateGaussianClusters<2>(6000, 8, 0.01, 7));
  QuerySpec spec = AutoSpec(0.02);
  spec.output = OutputFormat::kNone;
  const QueryPlan plan = PlanQuery(spec, sketch, 4);
  EXPECT_EQ(plan.resolved.algo, QueryAlgo::kNCSJ);
  // The same sketch with materialized output picks CSJ (previous test),
  // so the switch is driven by the output shape alone.
}

TEST(PlannerTest, ResolvedSpecIsNeverAutoAndValidates) {
  const DatasetSketch sketch = BuildSketch(GenerateUniform<2>(3000, 5));
  for (double eps : {0.001, 0.01, 0.1}) {
    const QueryPlan plan = PlanQuery(AutoSpec(eps), sketch, 4);
    EXPECT_NE(plan.resolved.algo, QueryAlgo::kAuto) << "eps=" << eps;
    EXPECT_TRUE(IsTreeAlgo(plan.resolved.algo)) << "eps=" << eps;
    EXPECT_TRUE(plan.resolved.Validate().ok()) << "eps=" << eps;
    EXPECT_GE(plan.resolved.threads, 1) << "eps=" << eps;
  }
}

TEST(PlannerTest, EveryAutoKnobCarriesARationale) {
  const DatasetSketch sketch =
      BuildSketch(GenerateGaussianClusters<2>(6000, 8, 0.01, 7));
  const QueryPlan plan = PlanQuery(AutoSpec(0.02), sketch, 4);
  bool saw_algo = false, saw_g = false, saw_kernel = false,
       saw_threads = false;
  for (const PlanDecision& d : plan.decisions) {
    EXPECT_FALSE(d.choice.empty()) << d.knob;
    EXPECT_FALSE(d.rationale.empty()) << d.knob;
    saw_algo |= d.knob == "algo";
    saw_g |= d.knob == "g";
    saw_kernel |= d.knob == "leaf_kernel";
    saw_threads |= d.knob == "threads";
  }
  EXPECT_TRUE(saw_algo);
  EXPECT_TRUE(saw_g);
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_threads);
}

TEST(PlannerTest, PlanJsonRoundTripsTheResolvedKnobs) {
  const DatasetSketch sketch =
      BuildSketch(GenerateGaussianClusters<2>(6000, 8, 0.01, 7));
  const QueryPlan plan = PlanQuery(AutoSpec(0.02), sketch, 4);

  // Serialize -> parse -> the knobs must match the resolved spec. This is
  // the same consistency CI checks between `plan --json` and the plan echo
  // in `join --algo auto` stats.
  const auto doc = json::Parse(json::Write(plan.ToJsonValue()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* knobs = doc->Find("knobs");
  ASSERT_NE(knobs, nullptr);
  ASSERT_TRUE(knobs->is_object());
  EXPECT_EQ(knobs->Find("algo")->AsString(),
            QueryAlgoName(plan.resolved.algo));
  EXPECT_EQ(knobs->Find("g")->AsInt(), plan.resolved.window);
  EXPECT_EQ(knobs->Find("leaf_kernel")->AsString(),
            LeafKernelName(plan.resolved.leaf_kernel));
  const json::Value* predicted = doc->Find("predicted");
  ASSERT_NE(predicted, nullptr);
  EXPECT_TRUE(predicted->is_object());
  const json::Value* decisions = doc->Find("decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_TRUE(decisions->is_array());
  EXPECT_EQ(decisions->AsArray().size(), plan.decisions.size());

  // And text rendering mentions the headline choice.
  const std::string text = plan.ToText();
  EXPECT_NE(text.find(QueryAlgoName(plan.resolved.algo)), std::string::npos);
}

TEST(PlannerTest, DeriveJoinOptionsIsAFieldCopy) {
  QuerySpec spec;
  spec.eps = 0.125;
  spec.algo = QueryAlgo::kCSJ;
  spec.window = 24;
  spec.leaf_kernel = LeafKernel::kSimd;
  spec.leaf_batch = 32;
  spec.sort_child_pairs = true;
  spec.deadline_ms = 777;
  const JoinOptions options = DeriveJoinOptions(spec);
  EXPECT_DOUBLE_EQ(options.epsilon, 0.125);
  EXPECT_EQ(options.window_size, 24);
  EXPECT_EQ(options.leaf_kernel, LeafKernel::kSimd);
  EXPECT_EQ(options.leaf_batch, 32u);
  EXPECT_TRUE(options.sort_child_pairs);
  EXPECT_EQ(options.deadline_ms, 777u);
}

TEST(PlannerTest, DeriveEgoOptionsIsAFieldCopy) {
  QuerySpec spec;
  spec.eps = 0.25;
  spec.algo = QueryAlgo::kCEgo;
  spec.window = 7;
  spec.leaf_kernel = LeafKernel::kNaive;
  spec.leaf_batch = 16;
  spec.deadline_ms = 99;
  const EgoOptions options = DeriveEgoOptions(spec);
  EXPECT_DOUBLE_EQ(options.epsilon, 0.25);
  EXPECT_EQ(options.window_size, 7);
  EXPECT_EQ(options.leaf_kernel, LeafKernel::kNaive);
  EXPECT_EQ(options.leaf_batch, 16u);
  EXPECT_EQ(options.deadline_ms, 99u);
}

TEST(PlannerTest, AttachPlanStampsStats) {
  const DatasetSketch sketch =
      BuildSketch(GenerateGaussianClusters<2>(6000, 8, 0.01, 7));
  const QueryPlan plan = PlanQuery(AutoSpec(0.02), sketch, 4);
  JoinStats stats;
  stats.links = 10;
  AttachPlan(plan, &stats);
  EXPECT_EQ(stats.predicted_links, plan.estimate.links);
  EXPECT_EQ(stats.predicted_groups, plan.estimate.groups);
  ASSERT_FALSE(stats.plan_json.empty());

  // The stamped plan echoes through the stats JSON, parseable and carrying
  // the resolved knobs.
  const auto doc = json::Parse(json::Write(stats.ToJsonValue()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* echoed = doc->Find("plan");
  ASSERT_NE(echoed, nullptr);
  ASSERT_TRUE(echoed->is_object());
  EXPECT_EQ(echoed->Find("knobs")->Find("algo")->AsString(),
            QueryAlgoName(plan.resolved.algo));

  // RecordPlanAccuracy must accept both planned and unplanned stats.
  RecordPlanAccuracy(stats);
  JoinStats unplanned;
  RecordPlanAccuracy(unplanned);
}

}  // namespace
}  // namespace csj::plan

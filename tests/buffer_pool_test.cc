#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "index/node_access.h"
#include "storage/buffer_pool.h"
#include "util/random.h"

namespace csj {
namespace {

TEST(BufferPoolTest, ColdMissesThenHits) {
  BufferPoolSim pool(4);
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);
  EXPECT_EQ(pool.stats().requests, 3u);
  EXPECT_EQ(pool.stats().disk_reads, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_NEAR(pool.stats().HitRate(), 1.0 / 3.0, 1e-12);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPoolSim pool(2);
  pool.Access(1);  // miss, cache {1}
  pool.Access(2);  // miss, cache {2,1}
  pool.Access(1);  // hit,  cache {1,2}
  pool.Access(3);  // miss, evicts 2
  pool.Access(2);  // miss again (was evicted)
  pool.Access(1);  // miss: access(3) and access(2) evicted 1? LRU after 3:
                   // {3,1} -> access 2 evicts 1 -> {2,3} -> 1 misses.
  EXPECT_EQ(pool.stats().requests, 6u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().disk_reads, 5u);
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolTest, CapacityOnePage) {
  BufferPoolSim pool(1);
  pool.Access(7);
  pool.Access(7);
  pool.Access(8);
  pool.Access(7);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().disk_reads, 3u);
}

TEST(BufferPoolTest, ResetClearsEverything) {
  BufferPoolSim pool(2);
  pool.Access(1);
  pool.Access(2);
  pool.Reset();
  EXPECT_EQ(pool.stats().requests, 0u);
  EXPECT_EQ(pool.resident_pages(), 0u);
  pool.Access(1);  // cold again
  EXPECT_EQ(pool.stats().disk_reads, 1u);
}

TEST(BufferPoolTest, SummaryMentionsCounts) {
  BufferPoolSim pool(2);
  pool.Access(1);
  const std::string s = pool.Summary();
  EXPECT_NE(s.find("requests=1"), std::string::npos);
  EXPECT_NE(s.find("disk_reads=1"), std::string::npos);
}

TEST(NodeAccessTrackerTest, MapsNodesToPages) {
  // 4 nodes per page: nodes 0-3 -> page 0, nodes 4-7 -> page 1.
  NodeAccessTracker tracker(4, /*cache_pages=*/8);
  tracker.Touch(0);
  tracker.Touch(1);
  tracker.Touch(2);
  tracker.Touch(4);
  const NodeAccessStats stats = tracker.stats();
  EXPECT_EQ(stats.node_accesses, 4u);
  EXPECT_EQ(stats.pages.requests, 4u);
  EXPECT_EQ(stats.pages.disk_reads, 2u);  // two distinct pages
  EXPECT_EQ(stats.pages.hits, 2u);
}

TEST(NodeAccessTrackerTest, ResetZeroes) {
  NodeAccessTracker tracker(2, 4);
  tracker.Touch(0);
  tracker.Reset();
  EXPECT_EQ(tracker.stats().node_accesses, 0u);
  EXPECT_EQ(tracker.stats().pages.requests, 0u);
}

// ------------------------------------------------ the real BufferPool ------

/// Deterministic loader: page p becomes 64 bytes, each p & 0xff.
BufferPool::Loader ByteLoader() {
  return [](uint64_t page, std::vector<char>* out) {
    out->assign(64, static_cast<char>(page & 0xff));
    return Status::OK();
  };
}

void ExpectConserved(const BufferPool::StatsSnapshot& s) {
  EXPECT_EQ(s.requests, s.hits + s.misses);
  EXPECT_EQ(s.misses, s.insertions + s.load_errors + s.races + s.denials);
  EXPECT_EQ(s.insertions, s.resident_pages + s.evictions + s.sheds);
}

TEST(RealBufferPoolTest, MissLoadsThenHits) {
  BufferPool pool({.capacity_pages = 8});
  auto first = pool.Fetch(5, ByteLoader());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->data().size(), 64u);
  EXPECT_EQ(first->data()[0], 5);
  auto second = pool.Fetch(5, ByteLoader());
  ASSERT_TRUE(second.ok());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  ExpectConserved(stats);
}

TEST(RealBufferPoolTest, EvictsWhenOverCapacity) {
  BufferPool pool({.capacity_pages = 4});
  for (uint64_t page = 0; page < 32; ++page) {
    auto ref = pool.Fetch(page, ByteLoader());
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_LE(pool.resident_pages(), 4u + BufferPool::kShards);
  const auto stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  ExpectConserved(stats);
}

TEST(RealBufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  BufferPool pool({.capacity_pages = 2});
  auto pinned = pool.Fetch(1000, ByteLoader());
  ASSERT_TRUE(pinned.ok());
  for (uint64_t page = 0; page < 64; ++page) {
    auto ref = pool.Fetch(page, ByteLoader());
    ASSERT_TRUE(ref.ok());
  }
  // The pinned page must still be resident: re-fetching it is a hit with no
  // extra load.
  const uint64_t misses_before = pool.stats().misses;
  auto again = pool.Fetch(1000, ByteLoader());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().misses, misses_before);
  EXPECT_EQ(again->data()[0], static_cast<char>(1000 & 0xff));
}

TEST(RealBufferPoolTest, LoaderErrorsAreReturnedNotCached) {
  BufferPool pool({.capacity_pages = 4});
  int calls = 0;
  BufferPool::Loader flaky = [&calls](uint64_t page, std::vector<char>* out) {
    if (++calls == 1) return Status::IoError("injected");
    out->assign(8, static_cast<char>(page));
    return Status::OK();
  };
  auto bad = pool.Fetch(7, flaky);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  auto good = pool.Fetch(7, flaky);  // retried, not served from cache
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(calls, 2);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.load_errors, 1u);
  ExpectConserved(stats);
}

TEST(RealBufferPoolTest, ShedCleanDropsUnpinnedOnly) {
  BufferPool pool({.capacity_pages = 16});
  auto pinned = pool.Fetch(1, ByteLoader());
  ASSERT_TRUE(pinned.ok());
  for (uint64_t page = 2; page <= 9; ++page) {
    ASSERT_TRUE(pool.Fetch(page, ByteLoader()).ok());
  }
  const size_t dropped = pool.ShedClean();
  EXPECT_EQ(dropped, 8u);
  EXPECT_EQ(pool.resident_pages(), 1u);
  ExpectConserved(pool.stats());
}

TEST(RealBufferPoolTest, BudgetChargesAndSheds) {
  // ~64 payload + 96 overhead per frame; 5 frames fit in 1000 bytes.
  MemoryBudget budget(1000);
  BufferPool pool({.capacity_pages = 64, .budget = &budget});
  for (uint64_t page = 0; page < 40; ++page) {
    auto ref = pool.Fetch(page, ByteLoader());
    // Budget pressure sheds clean pages rather than failing: every fetch
    // must succeed because all previous frames are unpinned.
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  }
  EXPECT_GT(pool.stats().sheds, 0u);
  EXPECT_LE(budget.used(), 1000u);
  ExpectConserved(pool.stats());
}

TEST(RealBufferPoolTest, BudgetExhaustionWithAllPagesPinned) {
  MemoryBudget budget(400);  // room for ~2 frames
  BufferPool pool({.capacity_pages = 64, .budget = &budget});
  std::vector<BufferPool::PageRef> pins;
  Status last = Status::OK();
  for (uint64_t page = 0; page < 10; ++page) {
    auto ref = pool.Fetch(page, ByteLoader());
    if (!ref.ok()) {
      last = ref.status();
      break;
    }
    pins.push_back(std::move(*ref));
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted)
      << "pinned-full pool must deny, not overcommit";
  EXPECT_GE(pins.size(), 2u);
  pins.clear();
  // With pins released, shedding makes room again.
  auto retry = pool.Fetch(99, ByteLoader());
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  ExpectConserved(pool.stats());
}

TEST(RealBufferPoolTest, BudgetReleasedOnDestruction) {
  MemoryBudget budget(1 << 20);
  {
    BufferPool pool({.capacity_pages = 8, .budget = &budget});
    for (uint64_t page = 0; page < 8; ++page) {
      ASSERT_TRUE(pool.Fetch(page, ByteLoader()).ok());
    }
    EXPECT_GT(budget.used(), 0u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(RealBufferPoolTest, ConcurrentStressConservesCounters) {
  // N reader threads over one shared pool with eviction pressure (capacity
  // far below the page universe) and a loader that fails ~1% of the time.
  // Afterwards the conservation laws must hold exactly.
  BufferPool pool({.capacity_pages = 32});
  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 4000;
  constexpr uint64_t kUniverse = 512;
  std::atomic<uint64_t> ok_fetches{0};
  std::atomic<uint64_t> io_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kFetchesPerThread; ++i) {
        const uint64_t page = rng.UniformInt(kUniverse);
        auto ref = pool.Fetch(page, [&rng](uint64_t p, std::vector<char>* out) {
          if (rng.UniformDouble() < 0.01) return Status::IoError("injected");
          out->assign(64, static_cast<char>(p & 0xff));
          return Status::OK();
        });
        if (ref.ok()) {
          // Data integrity under concurrency: the bytes are the page's.
          ASSERT_EQ(ref->data()[0], static_cast<char>(page & 0xff));
          ok_fetches.fetch_add(1);
        } else {
          ASSERT_EQ(ref.status().code(), StatusCode::kIoError);
          io_errors.fetch_add(1);
        }
        if (i % 1024 == 0) pool.ShedClean();
      }
    });
  }
  for (auto& thread : readers) thread.join();

  const auto stats = pool.stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kThreads) * kFetchesPerThread);
  EXPECT_EQ(stats.requests, ok_fetches.load() + io_errors.load());
  EXPECT_EQ(stats.load_errors, io_errors.load());
  ExpectConserved(stats);
  EXPECT_EQ(stats.resident_pages, pool.resident_pages());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include "index/node_access.h"
#include "storage/buffer_pool.h"

namespace csj {
namespace {

TEST(BufferPoolTest, ColdMissesThenHits) {
  BufferPoolSim pool(4);
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);
  EXPECT_EQ(pool.stats().requests, 3u);
  EXPECT_EQ(pool.stats().disk_reads, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_NEAR(pool.stats().HitRate(), 1.0 / 3.0, 1e-12);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPoolSim pool(2);
  pool.Access(1);  // miss, cache {1}
  pool.Access(2);  // miss, cache {2,1}
  pool.Access(1);  // hit,  cache {1,2}
  pool.Access(3);  // miss, evicts 2
  pool.Access(2);  // miss again (was evicted)
  pool.Access(1);  // miss: access(3) and access(2) evicted 1? LRU after 3:
                   // {3,1} -> access 2 evicts 1 -> {2,3} -> 1 misses.
  EXPECT_EQ(pool.stats().requests, 6u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().disk_reads, 5u);
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolTest, CapacityOnePage) {
  BufferPoolSim pool(1);
  pool.Access(7);
  pool.Access(7);
  pool.Access(8);
  pool.Access(7);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().disk_reads, 3u);
}

TEST(BufferPoolTest, ResetClearsEverything) {
  BufferPoolSim pool(2);
  pool.Access(1);
  pool.Access(2);
  pool.Reset();
  EXPECT_EQ(pool.stats().requests, 0u);
  EXPECT_EQ(pool.resident_pages(), 0u);
  pool.Access(1);  // cold again
  EXPECT_EQ(pool.stats().disk_reads, 1u);
}

TEST(BufferPoolTest, SummaryMentionsCounts) {
  BufferPoolSim pool(2);
  pool.Access(1);
  const std::string s = pool.Summary();
  EXPECT_NE(s.find("requests=1"), std::string::npos);
  EXPECT_NE(s.find("disk_reads=1"), std::string::npos);
}

TEST(NodeAccessTrackerTest, MapsNodesToPages) {
  // 4 nodes per page: nodes 0-3 -> page 0, nodes 4-7 -> page 1.
  NodeAccessTracker tracker(4, /*cache_pages=*/8);
  tracker.Touch(0);
  tracker.Touch(1);
  tracker.Touch(2);
  tracker.Touch(4);
  const NodeAccessStats stats = tracker.stats();
  EXPECT_EQ(stats.node_accesses, 4u);
  EXPECT_EQ(stats.pages.requests, 4u);
  EXPECT_EQ(stats.pages.disk_reads, 2u);  // two distinct pages
  EXPECT_EQ(stats.pages.hits, 2u);
}

TEST(NodeAccessTrackerTest, ResetZeroes) {
  NodeAccessTracker tracker(2, 4);
  tracker.Touch(0);
  tracker.Reset();
  EXPECT_EQ(tracker.stats().node_accesses, 0u);
  EXPECT_EQ(tracker.stats().pages.requests, 0u);
}

}  // namespace
}  // namespace csj

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/json.h"

namespace csj::metrics {
namespace {

// Registration is process-wide and permanent (ResetAll zeroes values but
// keeps every metric registered), so tests use unique names and look their
// metrics up in the snapshot instead of asserting on registry sizes.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
};

const HistogramSnapshot* FindHist(const MetricsSnapshot& snapshot,
                                  const std::string& name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const uint64_t* FindCounter(const MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

TEST_F(MetricsTest, CounterBasics) {
  Counter* c = GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name resolves to the same instance.
  EXPECT_EQ(GetCounter("test.counter"), c);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(MetricsTest, GaugeBasics) {
  Gauge* g = GetGauge("test.gauge");
  g->Set(7);
  EXPECT_EQ(g->value(), 7);
  g->Add(-10);
  EXPECT_EQ(g->value(), -3);
}

TEST_F(MetricsTest, HistogramBucketsAndStats) {
  Histogram* h = GetHistogram("test.hist");
  EXPECT_EQ(h->count(), 0u);
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) h->Record(v);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_EQ(h->sum(), 1010u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 1000u);
  const auto buckets = h->BucketCounts();
  EXPECT_EQ(buckets[0], 1u);   // 0
  EXPECT_EQ(buckets[1], 1u);   // 1
  EXPECT_EQ(buckets[2], 2u);   // 2, 3
  EXPECT_EQ(buckets[3], 1u);   // 4
  EXPECT_EQ(buckets[10], 1u);  // 1000 in [512, 1024)
}

TEST_F(MetricsTest, QuantilesStayWithinObservedRange) {
  Histogram* h = GetHistogram("test.quantiles");
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  const MetricsSnapshot snapshot = Snapshot();
  const HistogramSnapshot* hs = FindHist(snapshot, "test.quantiles");
  ASSERT_NE(hs, nullptr);
  EXPECT_DOUBLE_EQ(hs->Mean(), 500.5);
  // Log2 bucketing bounds the estimate within ~2x of the true quantile and
  // always inside [min, max].
  EXPECT_GE(hs->P50(), 250.0);
  EXPECT_LE(hs->P50(), 1000.0);
  EXPECT_GE(hs->P99(), 500.0);
  EXPECT_LE(hs->P99(), 1000.0);
  EXPECT_GE(hs->Quantile(0.0), 1.0);
  EXPECT_LE(hs->Quantile(1.0), 1000.0);
}

TEST_F(MetricsTest, QuantileOfSingleValueIsThatValue) {
  GetHistogram("test.single")->Record(777);
  const HistogramSnapshot* hs = FindHist(Snapshot(), "test.single");
  ASSERT_NE(hs, nullptr);
  EXPECT_DOUBLE_EQ(hs->P50(), 777.0);
  EXPECT_DOUBLE_EQ(hs->P99(), 777.0);
}

TEST_F(MetricsTest, ConcurrentIncrementsDoNotLoseUpdates) {
  Counter* c = GetCounter("test.threads.counter");
  Histogram* h = GetHistogram("test.threads.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), static_cast<uint64_t>(kPerThread - 1));
}

TEST_F(MetricsTest, MacrosRecordThroughTheRegistry) {
  CSJ_METRIC_COUNT("test.macro.counter", 3);
  CSJ_METRIC_COUNT("test.macro.counter", 4);
  CSJ_METRIC_HIST("test.macro.hist", 128);
  CSJ_METRIC_GAUGE_SET("test.macro.gauge", -5);
  { CSJ_METRIC_SCOPED_TIMER("test.macro.timer_ns"); }
  EXPECT_EQ(GetCounter("test.macro.counter")->value(), 7u);
  EXPECT_EQ(GetHistogram("test.macro.hist")->count(), 1u);
  EXPECT_EQ(GetGauge("test.macro.gauge")->value(), -5);
  EXPECT_EQ(GetHistogram("test.macro.timer_ns")->count(), 1u);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  GetCounter("test.sorted.b")->Increment(2);
  GetCounter("test.sorted.a")->Increment(1);
  const MetricsSnapshot snapshot = Snapshot();
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
  const uint64_t* a = FindCounter(snapshot, "test.sorted.a");
  const uint64_t* b = FindCounter(snapshot, "test.sorted.b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
}

TEST_F(MetricsTest, ToTextMentionsEveryMetric) {
  GetCounter("test.text.counter")->Increment(11);
  GetGauge("test.text.gauge")->Set(-2);
  GetHistogram("test.text.hist")->Record(100);
  const std::string text = Snapshot().ToText();
  EXPECT_NE(text.find("test.text.counter"), std::string::npos) << text;
  EXPECT_NE(text.find("test.text.gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("test.text.hist"), std::string::npos) << text;
  EXPECT_NE(text.find("11"), std::string::npos) << text;
}

TEST_F(MetricsTest, JsonRoundTripIsExact) {
  GetCounter("test.rt.counter")->Increment(123456789);
  GetGauge("test.rt.gauge")->Set(-42);
  Histogram* h = GetHistogram("test.rt.hist");
  for (uint64_t v : {1ull, 2ull, 1000ull, 1ull << 40}) h->Record(v);
  GetHistogram("test.rt.empty");  // registered but never recorded

  const MetricsSnapshot before = Snapshot();
  const std::string json = before.ToJson();
  const auto after = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, before) << json;
}

TEST_F(MetricsTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("[]").ok());
  EXPECT_FALSE(
      MetricsSnapshot::FromJson(R"({"counters": {"x": "nope"}})").ok());
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsRegistration) {
  Counter* c = GetCounter("test.reset.counter");
  Histogram* h = GetHistogram("test.reset.hist");
  c->Increment(5);
  h->Record(5);
  ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  // Still registered: the snapshot lists them with zeroed values.
  const MetricsSnapshot snapshot = Snapshot();
  const uint64_t* cv = FindCounter(snapshot, "test.reset.counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(*cv, 0u);
  const HistogramSnapshot* hs = FindHist(snapshot, "test.reset.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 0u);
  // And recording works again, including min/max re-arming.
  h->Record(3);
  EXPECT_EQ(h->min(), 3u);
  EXPECT_EQ(h->max(), 3u);
}

}  // namespace
}  // namespace csj::metrics

#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "data/generators.h"
#include "data/point_io.h"
#include "data/roadnet.h"
#include "geom/box.h"

namespace csj {
namespace {

// --- Generators ----------------------------------------------------------------

TEST(GeneratorsTest, UniformInUnitCubeAndDeterministic) {
  const auto a = GenerateUniform<2>(1000, 42);
  const auto b = GenerateUniform<2>(1000, 42);
  EXPECT_EQ(a, b);
  for (const auto& p : a) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LT(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LT(p[1], 1.0);
  }
  const auto c = GenerateUniform<2>(1000, 43);
  EXPECT_NE(a, c);
}

TEST(GeneratorsTest, GaussianClustersAreClustered) {
  const auto points = GenerateGaussianClusters<2>(2000, 3, 0.01, 7);
  ASSERT_EQ(points.size(), 2000u);
  // With sigma=0.01 and 3 clusters, the average nearest-point distance is
  // far below uniform; cheap proxy: count pairs closer than 0.02 among a
  // sample — must vastly exceed the uniform expectation.
  int close = 0;
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = i + 1; j < 200; ++j) {
      if (Distance(points[i], points[j]) < 0.02) ++close;
    }
  }
  EXPECT_GT(close, 200);
}

TEST(GeneratorsTest, Sierpinski2DPointsOnAttractor) {
  const auto points = GenerateSierpinski2D(5000, 11);
  ASSERT_EQ(points.size(), 5000u);
  // Every point lies in the triangle's bounding box...
  for (const auto& p : points) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 1.0);
  }
  // ...and the central (removed) triangle is empty: points with
  // y in (0.25, 0.5) and x in (0.375, 0.625) would be inside the first
  // removed hole. (The hole for the triangle (0,0),(1,0),(.5,1) is the
  // middle triangle with vertices (.5,0),(.25,.5),(.75,.5); test a disc
  // well inside it.)
  for (const auto& p : points) {
    EXPECT_GT(Distance(p, Point2{{0.5, 0.33}}), 0.05)
        << "point inside the removed central hole";
  }
}

TEST(GeneratorsTest, Sierpinski3DFractalDimension) {
  // Box-counting estimate of the attractor's fractal dimension; for the
  // Sierpinski tetrahedron it is exactly 2 (log4/log2). Accept [1.7, 2.3].
  const auto points = GenerateSierpinski3D(60000, 5);
  auto count_boxes = [&](int grid) {
    std::set<uint64_t> cells;
    for (const auto& p : points) {
      const auto cell = [&](double v) {
        int c = static_cast<int>(v * grid);
        if (c >= grid) c = grid - 1;
        if (c < 0) c = 0;
        return static_cast<uint64_t>(c);
      };
      cells.insert(cell(p[0]) + cell(p[1]) * 1024 + cell(p[2]) * 1024 * 1024);
    }
    return cells.size();
  };
  const double n1 = static_cast<double>(count_boxes(8));
  const double n2 = static_cast<double>(count_boxes(16));
  const double dim = std::log2(n2 / n1);
  EXPECT_GT(dim, 1.7);
  EXPECT_LT(dim, 2.3);
}

// --- Normalization -----------------------------------------------------------------

TEST(DatasetTest, NormalizePreserveAspect) {
  std::vector<Point2> points = {{{10.0, 100.0}}, {{30.0, 110.0}}};
  NormalizeToUnitCube(&points, /*preserve_aspect=*/true);
  // Largest extent (x: 20) maps to 1; y extent 10 maps to 0.5.
  EXPECT_DOUBLE_EQ(points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(points[1][0], 1.0);
  EXPECT_DOUBLE_EQ(points[0][1], 0.0);
  EXPECT_DOUBLE_EQ(points[1][1], 0.5);
}

TEST(DatasetTest, NormalizeStretch) {
  std::vector<Point2> points = {{{10.0, 100.0}}, {{30.0, 110.0}}};
  NormalizeToUnitCube(&points, /*preserve_aspect=*/false);
  EXPECT_DOUBLE_EQ(points[1][1], 1.0);
}

TEST(DatasetTest, NormalizeDegenerateAxis) {
  std::vector<Point2> points = {{{1.0, 5.0}}, {{2.0, 5.0}}};
  NormalizeToUnitCube(&points, /*preserve_aspect=*/false);
  EXPECT_DOUBLE_EQ(points[0][1], 0.0);  // constant axis maps to 0, no NaN
  EXPECT_DOUBLE_EQ(points[1][0], 1.0);
}

TEST(DatasetTest, ToEntriesStampsIds) {
  const auto points = GenerateUniform<2>(10, 1);
  const auto entries = ToEntries(points, 100);
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(entries[0].id, 100u);
  EXPECT_EQ(entries[9].id, 109u);
  EXPECT_EQ(entries[3].point, points[3]);
}

// --- Road network -------------------------------------------------------------------

TEST(RoadNetTest, GeneratesRequestedCountInUnitSquare) {
  RoadNetOptions options;
  options.num_points = 5000;
  options.seed = 1;
  const auto points = GenerateRoadNetwork(options);
  ASSERT_EQ(points.size(), 5000u);
  Box2 bounds;
  for (const auto& p : points) {
    bounds.Extend(p);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 1.0);
  }
  EXPECT_GT(bounds.Extent(0), 0.9);  // fills the square after normalization
}

TEST(RoadNetTest, DeterministicPerSeed) {
  RoadNetOptions options;
  options.num_points = 2000;
  options.seed = 5;
  EXPECT_EQ(GenerateRoadNetwork(options), GenerateRoadNetwork(options));
  options.seed = 6;
  EXPECT_NE(GenerateRoadNetwork(RoadNetOptions{.num_points = 2000, .seed = 5}),
            GenerateRoadNetwork(options));
}

TEST(RoadNetTest, DensityIsNonUniform) {
  RoadNetOptions options;
  options.num_points = 20000;
  options.seed = 9;
  const auto points = GenerateRoadNetwork(options);
  // Histogram over a 10x10 grid: road data must be far from uniform.
  int histogram[100] = {0};
  for (const auto& p : points) {
    int x = std::min(9, static_cast<int>(p[0] * 10));
    int y = std::min(9, static_cast<int>(p[1] * 10));
    ++histogram[x * 10 + y];
  }
  int max_cell = 0, empty_cells = 0;
  for (int c : histogram) {
    max_cell = std::max(max_cell, c);
    empty_cells += c < 20;
  }
  EXPECT_GT(max_cell, 3 * 200);  // some cell has >3x the uniform share
  EXPECT_GT(empty_cells, 5);     // and rural emptiness exists
}

TEST(RoadNetTest, PaperDatasetFactories) {
  const auto mg = MakeMgCounty();
  EXPECT_EQ(mg.name, "MGCounty");
  EXPECT_EQ(mg.size(), 27000u);
  const auto lb = MakeLbCounty();
  EXPECT_EQ(lb.name, "LBeach");
  EXPECT_EQ(lb.size(), 36000u);
  const auto pnw = MakePacificNw(0.01);  // 1% scale for the test
  EXPECT_EQ(pnw.name, "PacificNW");
  EXPECT_EQ(pnw.size(), 15000u);
  const auto sier = MakeSierpinski3DDataset(1000);
  EXPECT_EQ(sier.name, "Sierpinski3D");
  EXPECT_EQ(sier.size(), 1000u);
}

// --- Point I/O ----------------------------------------------------------------------

TEST(PointIoTest, RoundTrip2D) {
  const auto points = GenerateUniform<2>(500, 77);
  const std::string path = testing::TempDir() + "/csj_points2.txt";
  ASSERT_TRUE(SavePoints(path, points).ok());
  auto loaded = LoadPoints<2>(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, points);
}

TEST(PointIoTest, RoundTrip3D) {
  const auto points = GenerateSierpinski3D(200, 3);
  const std::string path = testing::TempDir() + "/csj_points3.txt";
  ASSERT_TRUE(SavePoints(path, points).ok());
  auto loaded = LoadPoints<3>(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, points);
}

TEST(PointIoTest, MissingFileIsNotFound) {
  auto result = LoadPoints<2>("/no/such/file.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(PointIoTest, DimensionMismatchRejected) {
  const std::string path = testing::TempDir() + "/csj_points_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.1 0.2 0.3\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PointIoTest, NonNumericTokenRejected) {
  const std::string path = testing::TempDir() + "/csj_points_nonnum.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.1 0.2\n0.3 oops\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("non-numeric"), std::string::npos)
      << result.status().ToString();
}

TEST(PointIoTest, NaNCoordinateRejected) {
  const std::string path = testing::TempDir() + "/csj_points_nan.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.1 0.2\n0.3 nan\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("NaN"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("column 2"), std::string::npos)
      << result.status().ToString();
}

TEST(PointIoTest, InfinityCoordinateRejected) {
  for (const char* row : {"inf 0.5\n", "-inf 0.5\n", "0.5 infinity\n"}) {
    const std::string path = testing::TempDir() + "/csj_points_inf.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(row, f);
    std::fclose(f);
    auto result = LoadPoints<2>(path);
    ASSERT_FALSE(result.ok()) << row;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("infinite"), std::string::npos)
        << row << ": " << result.status().ToString();
  }
}

TEST(PointIoTest, OverflowingCoordinateRejected) {
  // 1e999 overflows a double: strtod returns +HUGE_VAL with ERANGE, which
  // must be reported as out-of-range, not accepted as infinity.
  const std::string path = testing::TempDir() + "/csj_points_overflow.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1e999 0.5\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("out of range for a double"),
            std::string::npos)
      << result.status().ToString();
}

TEST(PointIoTest, UnderflowToZeroAccepted) {
  // 1e-400 underflows to 0.0 — harmless, so it loads.
  const std::string path = testing::TempDir() + "/csj_points_underflow.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1e-400 0.5\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].coords[0], 0.0);
}

TEST(PointIoTest, TrailingGarbageAfterFullRowRejected) {
  // Regression: "0.1 0.2 oops" used to load as (0.1, 0.2), silently
  // dropping the unparseable token.
  const std::string path = testing::TempDir() + "/csj_points_trailing.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.1 0.2 oops\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PointIoTest, TooFewColumnsRejected) {
  const std::string path = testing::TempDir() + "/csj_points_short.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.1 0.2\n0.3\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PointIoTest, EmptyFileRejected) {
  const std::string path = testing::TempDir() + "/csj_points_empty.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PointIoTest, CommentsOnlyFileRejected) {
  const std::string path = testing::TempDir() + "/csj_points_comments_only.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# just a header\n\n# nothing else\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PointIoTest, OverlongLineRejected) {
  const std::string path = testing::TempDir() + "/csj_points_long.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.1 0.2\n", f);
  for (int i = 0; i < 400; ++i) std::fputs("0.5 ", f);  // one 1600-byte line
  std::fputs("\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos);
}

TEST(PointIoTest, TrailingCommentOnDataLineAllowed) {
  const std::string path = testing::TempDir() + "/csj_points_inline_comment.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0.5 0.25 # the first point\n0.75 1.0\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ((*result)[0][1], 0.25);
}

TEST(PointIoTest, SkipsCommentsAndBlankLines) {
  const std::string path = testing::TempDir() + "/csj_points_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header\n\n0.5 0.25\n  \n0.75 1.0\n", f);
  std::fclose(f);
  auto result = LoadPoints<2>(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ((*result)[0][0], 0.5);
  EXPECT_DOUBLE_EQ((*result)[1][1], 1.0);
}

// --- Soneira-Peebles ------------------------------------------------------------

TEST(SoneiraPeeblesTest, NaturalCountAndBounds) {
  SoneiraPeeblesOptions options;
  options.levels = 5;
  options.eta = 3;
  const auto points = GenerateSoneiraPeebles<2>(options);
  EXPECT_EQ(points.size(), 243u);  // eta^levels
  for (const auto& p : points) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 1.0);
  }
}

TEST(SoneiraPeeblesTest, ResamplingHitsRequestedCount) {
  SoneiraPeeblesOptions options;
  options.levels = 5;
  options.eta = 3;
  options.num_points = 100;  // subsample
  EXPECT_EQ(GenerateSoneiraPeebles<2>(options).size(), 100u);
  options.num_points = 1000;  // densify
  EXPECT_EQ(GenerateSoneiraPeebles<2>(options).size(), 1000u);
}

TEST(SoneiraPeeblesTest, DeterministicPerSeed) {
  SoneiraPeeblesOptions options;
  options.levels = 4;
  EXPECT_EQ(GenerateSoneiraPeebles<3>(options),
            GenerateSoneiraPeebles<3>(options));
  SoneiraPeeblesOptions other = options;
  other.seed = options.seed + 1;
  EXPECT_NE(GenerateSoneiraPeebles<3>(options),
            GenerateSoneiraPeebles<3>(other));
}

TEST(SoneiraPeeblesTest, HierarchicalClusteringIsStrong) {
  // Galaxies are far more clustered than uniform: compare close-pair counts
  // on samples of each.
  SoneiraPeeblesOptions options;
  options.levels = 7;
  options.eta = 4;
  options.num_points = 4000;
  const auto galaxies = GenerateSoneiraPeebles<2>(options);
  const auto uniform = GenerateUniform<2>(4000, 99);
  auto close_pairs = [](const std::vector<Point2>& pts) {
    int count = 0;
    for (size_t i = 0; i < 400; ++i) {
      for (size_t j = i + 1; j < 400; ++j) {
        count += Distance(pts[i], pts[j]) < 0.01;
      }
    }
    return count;
  };
  EXPECT_GT(close_pairs(galaxies), 5 * std::max(1, close_pairs(uniform)));
}

}  // namespace
}  // namespace csj

#include "geom/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/ego.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/rstar_tree.h"
#include "util/random.h"

/// Tests of the vectorized leaf-join kernel layer. The load-bearing claims:
///
///  * every LeafKernel mode emits the exact pairs of the scalar baseline
///    loop, in the exact same order (CSJ's group window is order-sensitive,
///    so multiset equality is not enough);
///  * epsilon-boundary ties and duplicate coordinates survive the
///    plane-sweep pruning bit-for-bit;
///  * the bulk counters reproduce the old per-pair distance accounting under
///    kNaive and stay consistent (candidates == computed + pruned) always.

namespace csj {
namespace {

using LinkVec = std::vector<std::pair<PointId, PointId>>;

std::vector<Entry<2>> RandomEntries(size_t n, uint64_t seed,
                                    bool with_duplicates) {
  Rng rng(seed);
  std::vector<Entry<2>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(Entry<2>{
        static_cast<PointId>(i),
        Point2{{rng.UniformDouble(), rng.UniformDouble()}}});
  }
  if (with_duplicates && n >= 8) {
    // Exact duplicate points and duplicated single coordinates: the sweep
    // axis then contains runs of equal keys.
    for (size_t i = 0; i < n / 4; ++i) {
      entries[n - 1 - i].point = entries[i].point;
      entries[n / 2 + i].point[0] = entries[i].point[0];
    }
  }
  return entries;
}

/// Reference pair enumeration: the pre-kernel scalar loop.
LinkVec BruteSelfPairs(const std::vector<Entry<2>>& entries, double eps2) {
  LinkVec out;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (SquaredDistance(entries[i].point, entries[j].point) <= eps2) {
        out.emplace_back(entries[i].id, entries[j].id);
      }
    }
  }
  return out;
}

LinkVec BruteBlockPairs(const std::vector<Entry<2>>& a,
                        const std::vector<Entry<2>>& b, double eps2) {
  LinkVec out;
  for (const auto& ea : a) {
    for (const auto& eb : b) {
      if (SquaredDistance(ea.point, eb.point) <= eps2) {
        out.emplace_back(ea.id, eb.id);
      }
    }
  }
  return out;
}

/// Every kernel mode this host can execute meaningfully. The explicit ISA
/// modes degrade to scalar when unavailable (still correct, but then they
/// duplicate kSweep-level coverage), so they join the list only when the
/// backend really runs.
std::vector<LeafKernel> AllKernelModes() {
  std::vector<LeafKernel> modes = {LeafKernel::kNaive, LeafKernel::kSweep,
                                   LeafKernel::kSimd};
  if (KernelIsaAvailable(KernelIsa::kAvx2)) modes.push_back(LeafKernel::kAvx2);
  if (KernelIsaAvailable(KernelIsa::kAvx512)) {
    modes.push_back(LeafKernel::kAvx512);
  }
  return modes;
}

/// The non-naive modes compared against the kNaive baseline in the
/// driver-level tests.
std::vector<LeafKernel> PrunedKernelModes() {
  auto modes = AllKernelModes();
  modes.erase(modes.begin());  // kNaive is the baseline.
  return modes;
}

TEST(KernelsTest, ParseAndNameRoundTrip) {
  // All five names parse whether or not the backend is available — the
  // explicit ISA modes are valid requests that degrade to scalar.
  for (LeafKernel mode :
       {LeafKernel::kNaive, LeafKernel::kSweep, LeafKernel::kSimd,
        LeafKernel::kAvx2, LeafKernel::kAvx512}) {
    LeafKernel parsed;
    ASSERT_TRUE(ParseLeafKernel(LeafKernelName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  LeafKernel unused = LeafKernel::kNaive;
  EXPECT_FALSE(ParseLeafKernel("sse2", &unused));
  EXPECT_FALSE(ParseLeafKernel("", &unused));
  EXPECT_EQ(unused, LeafKernel::kNaive);
}

TEST(KernelsTest, TileLoadSortAndReconstruct) {
  const auto entries = RandomEntries(57, 7, /*with_duplicates=*/true);
  LeafTile<2> tile;
  tile.Load(entries);
  ASSERT_EQ(tile.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(tile.MakeEntry(i), entries[i]);
    EXPECT_EQ(tile.OriginalIndex(i), i);
  }
  const int dim = tile.WidestDim();
  tile.SortByDim(dim);
  const double* x = tile.Dim(dim);
  for (size_t i = 1; i < tile.size(); ++i) {
    EXPECT_LE(x[i - 1], x[i]);
  }
  // Sorting permutes slots but loses nothing: every original entry is still
  // reconstructible through its slot.
  for (size_t i = 0; i < tile.size(); ++i) {
    EXPECT_EQ(tile.MakeEntry(i), entries[tile.OriginalIndex(i)]);
  }
}

TEST(KernelsTest, SelfKernelMatchesScalarLoopExactly) {
  LeafJoinScratch<2> scratch;
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (size_t n : {0u, 1u, 2u, 7u, 33u, 150u}) {
      const auto entries = RandomEntries(n, seed, seed == 3);
      for (double eps : {0.01, 0.08, 0.3, 2.0}) {
        const double eps2 = eps * eps;
        const LinkVec expected = BruteSelfPairs(entries, eps2);
        for (LeafKernel mode : AllKernelModes()) {
          LinkVec got;
          const KernelCounters kc = SelfJoinKernel(
              scratch, std::span<const Entry<2>>(entries), eps2, mode,
              [&](const Entry<2>& a, const Entry<2>& b) {
                got.emplace_back(a.id, b.id);
              });
          EXPECT_EQ(got, expected) << "mode=" << LeafKernelName(mode)
                                   << " n=" << n << " eps=" << eps;
          EXPECT_EQ(kc.hits, expected.size());
          EXPECT_EQ(kc.candidates, n < 2 ? 0 : n * (n - 1) / 2);
          EXPECT_EQ(kc.candidates, kc.computed + kc.pruned);
          if (mode == LeafKernel::kNaive) {
            EXPECT_EQ(kc.pruned, 0u);
          }
        }
      }
    }
  }
}

TEST(KernelsTest, BlockKernelMatchesScalarLoopExactly) {
  LeafJoinScratch<2> scratch;
  for (uint64_t seed : {11u, 12u}) {
    for (auto [na, nb] : {std::pair<size_t, size_t>{0, 5},
                          {5, 0},
                          {1, 1},
                          {40, 17},
                          {64, 64}}) {
      auto a = RandomEntries(na, seed, false);
      auto b = RandomEntries(nb, seed + 100, seed == 12);
      for (auto& e : b) e.id += 10000;  // disjoint id spaces
      for (double eps : {0.02, 0.15, 1.5}) {
        const double eps2 = eps * eps;
        const LinkVec expected = BruteBlockPairs(a, b, eps2);
        for (LeafKernel mode : AllKernelModes()) {
          LinkVec got;
          const KernelCounters kc = BlockJoinKernel(
              scratch, std::span<const Entry<2>>(a),
              std::span<const Entry<2>>(b), eps2, mode,
              [&](const Entry<2>& ea, const Entry<2>& eb) {
                got.emplace_back(ea.id, eb.id);
              });
          EXPECT_EQ(got, expected) << "mode=" << LeafKernelName(mode)
                                   << " na=" << na << " nb=" << nb;
          EXPECT_EQ(kc.hits, expected.size());
          EXPECT_EQ(kc.candidates,
                    (na == 0 || nb == 0) ? 0 : uint64_t{na} * nb);
          EXPECT_EQ(kc.candidates, kc.computed + kc.pruned);
        }
      }
    }
  }
}

/// Ties exactly at epsilon: a grid spaced exactly eps apart (eps = 0.25 is
/// binary-exact) makes every axis-neighbor distance *equal* eps, both along
/// the sweep axis and across it, plus a 3-4-5 pair whose distance is exactly
/// eps off-axis. The sweep's 1-D prune must keep every one of them.
TEST(KernelsTest, TiesExactlyAtEpsilonSurviveAllModes) {
  const double eps = 0.25;
  const double eps2 = eps * eps;
  std::vector<Entry<2>> entries;
  PointId id = 0;
  for (int gx = 0; gx < 4; ++gx) {
    for (int gy = 0; gy < 4; ++gy) {
      entries.push_back(Entry<2>{id++, Point2{{gx * eps, gy * eps}}});
    }
  }
  // Exact duplicates (distance zero) on top of grid nodes.
  entries.push_back(Entry<2>{id++, Point2{{0.25, 0.25}}});
  // 3-4-5 triangle scaled to hypotenuse exactly eps: (0.15, 0.20) from
  // origin — 0.15^2 + 0.2^2 = 0.0625 = eps^2 exactly in binary? 0.15/0.2
  // are not exact doubles, so use exact dyadics: (0.0625*3, 0.0625*4)/1.25
  // is messy — instead place the pair axis-aligned at exact eps in y, which
  // exercises the non-sweep dimension whenever x has the wider spread.
  entries.push_back(Entry<2>{id++, Point2{{0.5, 0.75 + eps}}});

  const LinkVec expected = BruteSelfPairs(entries, eps2);
  ASSERT_FALSE(expected.empty());
  // Sanity: the construction really produced distance == eps ties.
  size_t exact_ties = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (SquaredDistance(entries[i].point, entries[j].point) == eps2) {
        ++exact_ties;
      }
    }
  }
  ASSERT_GT(exact_ties, 10u);

  LeafJoinScratch<2> scratch;
  for (LeafKernel mode : AllKernelModes()) {
    LinkVec got;
    SelfJoinKernel(scratch, std::span<const Entry<2>>(entries), eps2, mode,
                   [&](const Entry<2>& a, const Entry<2>& b) {
                     got.emplace_back(a.id, b.id);
                   });
    EXPECT_EQ(got, expected) << "mode=" << LeafKernelName(mode);
  }
}

TEST(KernelsTest, ScratchAccumulatesTotals) {
  LeafJoinScratch<2> scratch;
  const auto entries = RandomEntries(32, 5, false);
  auto ignore = [](const Entry<2>&, const Entry<2>&) {};
  const KernelCounters a = SelfJoinKernel(
      scratch, std::span<const Entry<2>>(entries), 0.01, LeafKernel::kSweep,
      ignore);
  const KernelCounters b = SelfJoinKernel(
      scratch, std::span<const Entry<2>>(entries), 0.01, LeafKernel::kSimd,
      ignore);
  EXPECT_EQ(scratch.totals.invocations, 2u);
  EXPECT_EQ(scratch.totals.candidates, a.candidates + b.candidates);
  EXPECT_EQ(scratch.totals.computed, a.computed + b.computed);
  EXPECT_EQ(scratch.totals.hits, a.hits + b.hits);
  // Sweep and simd share the same 1-D window, so they charge the same
  // number of distance evaluations.
  EXPECT_EQ(a.computed, b.computed);
}

// --- Driver-level equivalence ----------------------------------------------

RStarTree<2> SmallFanoutTree(const std::vector<Entry<2>>& entries) {
  RStarOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  RStarTree<2> tree(options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  return tree;
}

/// All three leaf kernels must produce byte-identical driver output —
/// links *and* groups, in order — for every algorithm, because CSJ(g)'s
/// window is order-sensitive and the kernels replay hits canonically.
TEST(KernelsTest, SelfJoinDriversIdenticalAcrossKernels) {
  for (int workload = 0; workload < 2; ++workload) {
    const auto points = workload == 0
                            ? GenerateUniform<2>(500, 42)
                            : GenerateGaussianClusters<2>(500, 6, 0.02, 43);
    std::vector<Entry<2>> entries(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
    }
    const auto tree = SmallFanoutTree(entries);
    for (double eps : {0.01, 0.05, 0.2}) {
      for (auto algo : {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ,
                        JoinAlgorithm::kCSJ}) {
        for (bool sort_pairs : {false, true}) {
          JoinOptions options;
          options.epsilon = eps;
          options.sort_child_pairs = sort_pairs;
          options.leaf_kernel = LeafKernel::kNaive;
          MemorySink baseline(IdWidthFor(entries.size()));
          const JoinStats naive_stats =
              RunSelfJoin(algo, tree, options, &baseline);

          for (LeafKernel mode : PrunedKernelModes()) {
            options.leaf_kernel = mode;
            MemorySink sink(IdWidthFor(entries.size()));
            const JoinStats stats = RunSelfJoin(algo, tree, options, &sink);
            EXPECT_EQ(sink.links(), baseline.links())
                << JoinAlgorithmName(algo) << " eps=" << eps
                << " mode=" << LeafKernelName(mode) << " sort=" << sort_pairs;
            EXPECT_EQ(sink.groups(), baseline.groups());
            EXPECT_EQ(stats.kernel_hits, naive_stats.kernel_hits);
            EXPECT_EQ(stats.kernel_candidates, naive_stats.kernel_candidates);
            EXPECT_LE(stats.distance_computations,
                      naive_stats.distance_computations);
          }
        }
      }
    }
  }
}

/// The batched leaf-tile pipeline is a pure scheduling change: every batch
/// capacity — tiny ones that force drains mid-descent, huge ones that defer
/// everything to the end, and 0/1 which disable batching outright — must
/// reproduce the unbatched output byte for byte, links *and* groups, for
/// both the tree and EGO drivers.
TEST(KernelsTest, LeafBatchSizesAreOutputInvariant) {
  const auto points = GenerateGaussianClusters<2>(500, 6, 0.02, 43);
  std::vector<Entry<2>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  const auto tree = SmallFanoutTree(entries);
  const size_t batches[] = {0, 1, 2, 3, 64, size_t{1} << 20};

  for (auto algo : {JoinAlgorithm::kSSJ, JoinAlgorithm::kCSJ}) {
    JoinOptions options;
    options.epsilon = 0.05;
    options.leaf_kernel = LeafKernel::kSimd;
    options.leaf_batch = 0;  // Unbatched reference.
    MemorySink baseline(IdWidthFor(entries.size()));
    RunSelfJoin(algo, tree, options, &baseline);
    for (size_t batch : batches) {
      options.leaf_batch = batch;
      MemorySink sink(IdWidthFor(entries.size()));
      RunSelfJoin(algo, tree, options, &sink);
      EXPECT_EQ(sink.links(), baseline.links())
          << JoinAlgorithmName(algo) << " leaf_batch=" << batch;
      EXPECT_EQ(sink.groups(), baseline.groups());
    }
  }

  EgoOptions ego;
  ego.epsilon = 0.05;
  ego.leaf_size = 16;
  ego.leaf_kernel = LeafKernel::kSimd;
  ego.leaf_batch = 0;
  MemorySink ego_baseline(IdWidthFor(entries.size()));
  CompactEgoJoin(entries, ego, &ego_baseline);
  for (size_t batch : batches) {
    ego.leaf_batch = batch;
    MemorySink sink(IdWidthFor(entries.size()));
    CompactEgoJoin(entries, ego, &sink);
    EXPECT_EQ(sink.links(), ego_baseline.links()) << "leaf_batch=" << batch;
    EXPECT_EQ(sink.groups(), ego_baseline.groups());
  }
}

TEST(KernelsTest, SpatialJoinDriversIdenticalAcrossKernels) {
  const auto pa = GenerateUniform<2>(400, 17);
  const auto pb = GenerateGaussianClusters<2>(300, 4, 0.05, 18);
  std::vector<Entry<2>> ea(pa.size()), eb(pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ea[i] = Entry<2>{static_cast<PointId>(i), pa[i]};
  }
  for (size_t i = 0; i < pb.size(); ++i) {
    eb[i] = Entry<2>{static_cast<PointId>(100000 + i), pb[i]};
  }
  const auto tree_a = SmallFanoutTree(ea);
  const auto tree_b = SmallFanoutTree(eb);
  for (double eps : {0.02, 0.1}) {
    for (bool sort_pairs : {false, true}) {
      JoinOptions options;
      options.epsilon = eps;
      options.sort_child_pairs = sort_pairs;
      options.leaf_kernel = LeafKernel::kNaive;
      MemorySink baseline(IdWidthFor(100000 + eb.size()));
      StandardSpatialJoin(tree_a, tree_b, options, &baseline);
      MemorySink baseline_csj(IdWidthFor(100000 + eb.size()));
      CompactSpatialJoin(tree_a, tree_b, options, &baseline_csj);

      for (LeafKernel mode : PrunedKernelModes()) {
        options.leaf_kernel = mode;
        MemorySink ssj(IdWidthFor(100000 + eb.size()));
        StandardSpatialJoin(tree_a, tree_b, options, &ssj);
        EXPECT_EQ(ssj.links(), baseline.links())
            << "eps=" << eps << " mode=" << LeafKernelName(mode);
        MemorySink csj(IdWidthFor(100000 + eb.size()));
        CompactSpatialJoin(tree_a, tree_b, options, &csj);
        EXPECT_EQ(csj.links(), baseline_csj.links());
        EXPECT_EQ(csj.groups(), baseline_csj.groups());
      }
    }
  }
}

TEST(KernelsTest, EgoJoinsIdenticalAcrossKernels) {
  const auto points = GenerateGaussianClusters<2>(600, 5, 0.03, 99);
  std::vector<Entry<2>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  for (double eps : {0.02, 0.08}) {
    EgoOptions options;
    options.epsilon = eps;
    options.leaf_size = 16;
    options.leaf_kernel = LeafKernel::kNaive;
    MemorySink base_ssj(IdWidthFor(entries.size()));
    EgoSimilarityJoin(entries, options, &base_ssj);
    MemorySink base_csj(IdWidthFor(entries.size()));
    CompactEgoJoin(entries, options, &base_csj);

    for (LeafKernel mode : PrunedKernelModes()) {
      options.leaf_kernel = mode;
      MemorySink ssj(IdWidthFor(entries.size()));
      EgoSimilarityJoin(entries, options, &ssj);
      EXPECT_EQ(ssj.links(), base_ssj.links())
          << "eps=" << eps << " mode=" << LeafKernelName(mode);
      MemorySink csj(IdWidthFor(entries.size()));
      CompactEgoJoin(entries, options, &csj);
      EXPECT_EQ(csj.links(), base_csj.links());
      EXPECT_EQ(csj.groups(), base_csj.groups());
    }
  }
}

// --- Bulk distance accounting ----------------------------------------------

/// A single-leaf tree (fanout >= n) reduces the whole join to one kernel
/// call, so the bulk counters are exactly predictable: kNaive must charge
/// the full n*(n-1)/2 pair space — the same total the old per-pair
/// ++distance_computations produced — and the pruned modes must charge
/// exactly candidates - pruned.
TEST(KernelsTest, DistanceAccountingOnSingleLeaf) {
  const size_t n = 40;
  const auto entries = RandomEntries(n, 21, /*with_duplicates=*/true);
  RStarOptions tree_options;
  tree_options.max_fanout = 64;
  tree_options.min_fanout = 25;
  RStarTree<2> tree(tree_options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  ASSERT_TRUE(tree.IsLeaf(tree.Root()));

  const uint64_t pair_space = n * (n - 1) / 2;
  JoinOptions options;
  options.epsilon = 0.1;

  options.leaf_kernel = LeafKernel::kNaive;
  CountingSink naive_sink(IdWidthFor(n));
  const JoinStats naive = StandardSimilarityJoin(tree, options, &naive_sink);
  EXPECT_EQ(naive.distance_computations, pair_space);
  EXPECT_EQ(naive.kernel_candidates, pair_space);
  EXPECT_EQ(naive.kernel_pruned, 0u);
  EXPECT_EQ(naive.kernel_hits, naive_sink.num_links());

  options.leaf_kernel = LeafKernel::kSweep;
  CountingSink sweep_sink(IdWidthFor(n));
  const JoinStats sweep = StandardSimilarityJoin(tree, options, &sweep_sink);
  EXPECT_EQ(sweep.kernel_candidates, pair_space);
  EXPECT_EQ(sweep.distance_computations, pair_space - sweep.kernel_pruned);
  EXPECT_LE(sweep.distance_computations, naive.distance_computations);
  EXPECT_GE(sweep.distance_computations, sweep.kernel_hits);
  EXPECT_EQ(sweep.kernel_hits, naive.kernel_hits);

  options.leaf_kernel = LeafKernel::kSimd;
  CountingSink simd_sink(IdWidthFor(n));
  const JoinStats simd = StandardSimilarityJoin(tree, options, &simd_sink);
  // Sweep and simd share the same 1-D candidate window.
  EXPECT_EQ(simd.distance_computations, sweep.distance_computations);
  EXPECT_EQ(simd.kernel_pruned, sweep.kernel_pruned);
  EXPECT_EQ(simd.kernel_hits, sweep.kernel_hits);
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <vector>

#include "core/brute.h"
#include "core/ego.h"
#include "core/expand.h"
#include "core/sink.h"
#include "data/generators.h"

namespace csj {
namespace {

std::vector<Entry<2>> MakeWorkload2D(int which, size_t n, uint64_t seed) {
  std::vector<Point2> points;
  switch (which) {
    case 0:
      points = GenerateUniform<2>(n, seed);
      break;
    case 1:
      points = GenerateGaussianClusters<2>(n, 4, 0.02, seed);
      break;
    default:
      points = GenerateSierpinski2D(n, seed);
      break;
  }
  std::vector<Entry<2>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

TEST(EgoJoinTest, EmptyAndSingleton) {
  EgoOptions options;
  options.epsilon = 0.1;
  {
    MemorySink sink(1);
    const JoinStats stats = EgoSimilarityJoin<2>({}, options, &sink);
    EXPECT_EQ(stats.links, 0u);
  }
  {
    MemorySink sink(1);
    const std::vector<Entry<2>> one = {{0, Point2{{0.5, 0.5}}}};
    const JoinStats stats = CompactEgoJoin(one, options, &sink);
    EXPECT_EQ(stats.links + stats.groups, 0u);
  }
}

TEST(EgoJoinTest, StandardMatchesBruteForce) {
  for (int workload = 0; workload < 3; ++workload) {
    const auto entries = MakeWorkload2D(workload, 400, 900 + workload);
    for (double eps : {0.004, 0.03, 0.15}) {
      EgoOptions options;
      options.epsilon = eps;
      MemorySink sink(3);
      const JoinStats stats = EgoSimilarityJoin(entries, options, &sink);
      const auto reference = BruteForceSelfJoin(entries, eps);
      EXPECT_EQ(stats.links, reference.size())
          << "workload=" << workload << " eps=" << eps;
      EXPECT_EQ(ExpandSelfJoin(sink), reference);
    }
  }
}

TEST(EgoJoinTest, CompactIsLossless) {
  for (int workload = 0; workload < 3; ++workload) {
    const auto entries = MakeWorkload2D(workload, 400, 800 + workload);
    for (double eps : {0.004, 0.03, 0.15}) {
      EgoOptions options;
      options.epsilon = eps;
      MemorySink sink(3);
      CompactEgoJoin(entries, options, &sink);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink),
                                          BruteForceSelfJoin(entries, eps));
      EXPECT_TRUE(report.lossless())
          << "workload=" << workload << " eps=" << eps << ": "
          << report.ToString();
    }
  }
}

TEST(EgoJoinTest, CompactNeverLargerThanStandard) {
  const auto entries = MakeWorkload2D(1, 800, 17);
  for (double eps : {0.01, 0.05, 0.2}) {
    EgoOptions options;
    options.epsilon = eps;
    CountingSink standard(3);
    EgoSimilarityJoin(entries, options, &standard);
    CountingSink compact(3);
    CompactEgoJoin(entries, options, &compact);
    EXPECT_LE(compact.bytes(), standard.bytes()) << "eps=" << eps;
  }
}

TEST(EgoJoinTest, EarlyStopProducesGroupsOnDenseData) {
  // A tight cluster must collapse into group output, not links.
  std::vector<Entry<2>> entries;
  for (PointId i = 0; i < 100; ++i) {
    entries.push_back(
        {i, Point2{{0.5 + 0.0001 * (i % 10), 0.5 + 0.0001 * (i / 10)}}});
  }
  EgoOptions options;
  options.epsilon = 0.05;
  MemorySink sink(3);
  const JoinStats stats = CompactEgoJoin(entries, options, &sink);
  EXPECT_GT(stats.early_stops, 0u);
  EXPECT_GT(stats.groups, 0u);
  // 100 mutually-close points: compact output must be tiny vs 4950 links.
  EXPECT_LT(sink.bytes(), 4950u * 2u * 4u / 4u);
}

TEST(EgoJoinTest, EarlyStopDisabledStillLossless) {
  const auto entries = MakeWorkload2D(1, 300, 41);
  EgoOptions options;
  options.epsilon = 0.05;
  options.early_stop = false;
  MemorySink sink(3);
  const JoinStats stats = CompactEgoJoin(entries, options, &sink);
  EXPECT_EQ(stats.early_stops, 0u);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(EgoJoinTest, LeafSizeDoesNotChangeResult) {
  const auto entries = MakeWorkload2D(0, 500, 53);
  const auto reference = BruteForceSelfJoin(entries, 0.07);
  for (size_t leaf : {2u, 8u, 64u, 1024u}) {
    EgoOptions options;
    options.epsilon = 0.07;
    options.leaf_size = leaf;
    MemorySink sink(3);
    CompactEgoJoin(entries, options, &sink);
    EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink), reference).lossless())
        << "leaf_size=" << leaf;
  }
}

TEST(EgoJoinTest, HighDimensionalLossless) {
  // EGO is the paper's pointer for high-dimensional, index-free joins.
  const auto points = GenerateUniform<5>(300, 71);
  std::vector<Entry<5>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<5>{static_cast<PointId>(i), points[i]};
  }
  EgoOptions options;
  options.epsilon = 0.35;
  MemorySink sink(3);
  CompactEgoJoin(entries, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(EgoJoinTest, NegativeCoordinatesSupported) {
  // floor-based cells must behave across zero.
  std::vector<Entry<2>> entries = {
      {0, Point2{{-0.01, -0.01}}},
      {1, Point2{{0.01, 0.01}}},
      {2, Point2{{-0.5, 0.5}}},
  };
  EgoOptions options;
  options.epsilon = 0.1;
  MemorySink sink(1);
  EgoSimilarityJoin(entries, options, &sink);
  EXPECT_EQ(ExpandSelfJoin(sink), BruteForceSelfJoin(entries, 0.1));
}


TEST(EgoSpatialJoinTest, MatchesBruteForceCrossJoin) {
  const auto set_a = MakeWorkload2D(1, 300, 710);
  auto raw_b = MakeWorkload2D(1, 300, 711);
  std::vector<Entry<2>> set_b;
  for (const auto& e : raw_b) set_b.push_back({e.id + 10000, e.point});
  auto is_a = [](PointId id) { return id < 10000; };

  for (double eps : {0.01, 0.06}) {
    EgoOptions options;
    options.epsilon = eps;
    const auto reference = BruteForceSpatialJoin(set_a, set_b, eps);

    MemorySink standard(5);
    const JoinStats ssj = EgoSpatialJoin(set_a, set_b, options, &standard);
    EXPECT_EQ(ssj.links, reference.size()) << "eps=" << eps;
    EXPECT_EQ(ExpandSpatialJoin(standard, is_a), reference);

    MemorySink compact(5);
    CompactEgoSpatialJoin(set_a, set_b, options, &compact);
    EXPECT_TRUE(
        CompareLinkSets(ExpandSpatialJoin(compact, is_a), reference)
            .lossless())
        << "eps=" << eps;
    EXPECT_LE(compact.bytes(), standard.bytes());
  }
}

TEST(EgoSpatialJoinTest, EmptySides) {
  EgoOptions options;
  options.epsilon = 0.1;
  const std::vector<Entry<2>> some = {{0, Point2{{0.5, 0.5}}}};
  MemorySink sink(1);
  EXPECT_EQ(EgoSpatialJoin<2>({}, some, options, &sink).links, 0u);
  EXPECT_EQ(EgoSpatialJoin<2>(some, {}, options, &sink).links, 0u);
  EXPECT_EQ(EgoSpatialJoin<2>({}, {}, options, &sink).links, 0u);
}

TEST(EgoSpatialJoinTest, DisjointRegionsProduceNothing) {
  std::vector<Entry<2>> set_a, set_b;
  for (PointId i = 0; i < 50; ++i) {
    set_a.push_back({i, Point2{{0.1 + 0.001 * i, 0.1}}});
    set_b.push_back({1000 + i, Point2{{0.9, 0.9 - 0.001 * i}}});
  }
  EgoOptions options;
  options.epsilon = 0.05;
  MemorySink sink(4);
  const JoinStats stats = CompactEgoSpatialJoin(set_a, set_b, options, &sink);
  EXPECT_EQ(stats.links + stats.groups, 0u);
}

TEST(EgoJoinTest, WindowSweepLossless) {
  const auto entries = MakeWorkload2D(2, 400, 97);
  const auto reference = BruteForceSelfJoin(entries, 0.06);
  for (int g : {1, 5, 10, 100}) {
    EgoOptions options;
    options.epsilon = 0.06;
    options.window_size = g;
    MemorySink sink(3);
    CompactEgoJoin(entries, options, &sink);
    EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink), reference).lossless())
        << "g=" << g;
  }
}

}  // namespace
}  // namespace csj

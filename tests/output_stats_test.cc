#include <gtest/gtest.h>

#include "core/output_stats.h"
#include "core/similarity_join.h"
#include "data/generators.h"
#include "index/rstar_tree.h"

namespace csj {
namespace {

TEST(OutputStatsTest, EmptyOutput) {
  const OutputStats stats = ComputeOutputStats({}, {}, 4);
  EXPECT_EQ(stats.links, 0u);
  EXPECT_EQ(stats.groups, 0u);
  EXPECT_EQ(stats.implied_links, 0u);
  EXPECT_EQ(stats.output_bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.savings(), 0.0);
  EXPECT_DOUBLE_EQ(stats.overlap_factor(), 0.0);
}

TEST(OutputStatsTest, LinksOnly) {
  const OutputStats stats =
      ComputeOutputStats({{1, 2}, {3, 4}, {5, 6}}, {}, 4);
  EXPECT_EQ(stats.links, 3u);
  EXPECT_EQ(stats.implied_links, 3u);
  // 3 links x 2 ids x 5 bytes each.
  EXPECT_EQ(stats.output_bytes, 30u);
  EXPECT_EQ(stats.link_listing_bytes, 30u);
  EXPECT_DOUBLE_EQ(stats.savings(), 0.0);
}

TEST(OutputStatsTest, GroupsImplyAndSave) {
  // One group of 4 implies 6 links: 4 ids written vs 12 for the listing.
  const std::vector<std::vector<PointId>> groups = {{1, 2, 3, 4}};
  const OutputStats stats = ComputeOutputStats({}, groups, 4);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.implied_links, 6u);
  EXPECT_EQ(stats.output_bytes, 4u * 5u);
  EXPECT_EQ(stats.link_listing_bytes, 12u * 5u);
  EXPECT_NEAR(stats.savings(), 1.0 - 4.0 / 12.0, 1e-12);
  EXPECT_EQ(stats.largest_group, 4u);
  EXPECT_EQ(stats.smallest_group, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_group_size, 4.0);
}

TEST(OutputStatsTest, OverlapFactor) {
  // Two groups sharing ids 2 and 3: 6 memberships over 4 distinct ids.
  const std::vector<std::vector<PointId>> groups = {{1, 2, 3}, {2, 3, 4}};
  const OutputStats stats = ComputeOutputStats({}, groups, 1);
  EXPECT_EQ(stats.group_member_total, 6u);
  EXPECT_EQ(stats.distinct_members, 4u);
  EXPECT_DOUBLE_EQ(stats.overlap_factor(), 1.5);
}

TEST(OutputStatsTest, HistogramBuckets) {
  const std::vector<std::vector<PointId>> groups = {
      {1, 2},                    // size 2 -> bucket 0 (2)
      {1, 2, 3},                 // size 3 -> bucket 1 (3-4)
      {1, 2, 3, 4},              // size 4 -> bucket 1
      {1, 2, 3, 4, 5, 6, 7, 8},  // size 8 -> bucket 2 (5-8)
  };
  const OutputStats stats = ComputeOutputStats({}, groups, 1);
  ASSERT_EQ(stats.size_histogram.size(), 3u);
  EXPECT_EQ(stats.size_histogram[0], 1u);
  EXPECT_EQ(stats.size_histogram[1], 2u);
  EXPECT_EQ(stats.size_histogram[2], 1u);
}

TEST(OutputStatsTest, MatchesSinkAccounting) {
  // End-to-end: stats computed from a MemorySink agree with the sink's own
  // byte accounting and the join's implied-link counter.
  const auto points = GenerateGaussianClusters<2>(2000, 5, 0.02, 3);
  RStarTree<2> tree;
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  JoinOptions options;
  options.epsilon = 0.03;
  MemorySink sink(IdWidthFor(points.size()));
  const JoinStats join_stats = CompactSimilarityJoin(tree, options, &sink);

  const OutputStats stats = ComputeOutputStats(sink);
  EXPECT_EQ(stats.links, join_stats.links);
  EXPECT_EQ(stats.groups, join_stats.groups);
  EXPECT_EQ(stats.output_bytes, join_stats.output_bytes);
  EXPECT_EQ(stats.implied_links, join_stats.ImpliedLinkUpperBound());
  EXPECT_GT(stats.savings(), 0.0);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("saved"), std::string::npos);
}

}  // namespace
}  // namespace csj

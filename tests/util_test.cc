#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/format.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace csj {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HelperParse(bool succeed) {
  if (!succeed) return Status::InvalidArgument("bad");
  return 7;
}

Status HelperChain(bool succeed, int* out) {
  CSJ_ASSIGN_OR_RETURN(*out, HelperParse(succeed));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(HelperChain(true, &out).ok());
  EXPECT_EQ(out, 7);
  Status failed = HelperChain(false, &out);
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
}

// Two expansions in one statement line must not collide: the macro's
// temporary is named with __COUNTER__, not __LINE__. (With __LINE__ the
// second expansion either failed to compile or, worse, silently bound its
// error check to the first expansion's result — see the note in status.h.)
Status HelperTwoOnOneLine(bool a, bool b, int* out) {
  // clang-format off
  CSJ_ASSIGN_OR_RETURN(int x, HelperParse(a)); CSJ_ASSIGN_OR_RETURN(int y, HelperParse(b));
  // clang-format on
  *out = x + y;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnTwiceOnOneLine) {
  int out = 0;
  EXPECT_TRUE(HelperTwoOnOneLine(true, true, &out).ok());
  EXPECT_EQ(out, 14);
  EXPECT_EQ(HelperTwoOnOneLine(true, false, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(HelperTwoOnOneLine(false, true, &out).code(),
            StatusCode::kInvalidArgument);
}

// The macro is multi-statement by design, so conditional use requires a
// braced block (unbraced `if (c) CSJ_ASSIGN_OR_RETURN(...)` does not
// compile). This helper documents the supported form.
Status HelperConditional(bool take, int* out) {
  if (take) {
    CSJ_ASSIGN_OR_RETURN(*out, HelperParse(true));
  }
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnInsideBracedIf) {
  int out = 0;
  EXPECT_TRUE(HelperConditional(true, &out).ok());
  EXPECT_EQ(out, 7);
  out = 0;
  EXPECT_TRUE(HelperConditional(false, &out).ok());
  EXPECT_EQ(out, 0);
}

Status HelperReturnIfError(bool fail) {
  CSJ_RETURN_IF_ERROR(fail ? Status::IoError("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(HelperReturnIfError(false).ok());
  EXPECT_EQ(HelperReturnIfError(true).code(), StatusCode::kIoError);
}

// --- Format -------------------------------------------------------------------

TEST(FormatTest, DecimalWidth) {
  EXPECT_EQ(DecimalWidth(0), 1);
  EXPECT_EQ(DecimalWidth(9), 1);
  EXPECT_EQ(DecimalWidth(10), 2);
  EXPECT_EQ(DecimalWidth(999), 3);
  EXPECT_EQ(DecimalWidth(1000), 4);
  EXPECT_EQ(DecimalWidth(1499999), 7);
}

TEST(FormatTest, ZeroPad) {
  EXPECT_EQ(ZeroPad(7, 4), "0007");
  EXPECT_EQ(ZeroPad(0, 1), "0");
  EXPECT_EQ(ZeroPad(123, 3), "123");
  EXPECT_EQ(ZeroPad(12345, 3), "12345");  // never truncates
}

TEST(FormatTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(532), "532 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
}

TEST(FormatTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(12345678), "12,345,678");
}

TEST(FormatTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"a"}, ", "), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(FormatTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// --- Rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10});
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SplitMix64Advances) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

// --- Timer ----------------------------------------------------------------------

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i; (void)sink;
  EXPECT_GT(t.ElapsedNanos(), 0u);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, StopwatchAccumulates) {
  StopwatchAccumulator acc;
  EXPECT_EQ(acc.TotalNanos(), 0u);
  acc.Start();
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += i; (void)sink;
  acc.Stop();
  const uint64_t first = acc.TotalNanos();
  EXPECT_GT(first, 0u);
  { ScopedStopwatch scoped(&acc); }
  EXPECT_GE(acc.TotalNanos(), first);
  acc.Reset();
  EXPECT_EQ(acc.TotalNanos(), 0u);
}

TEST(TimerTest, ScopedStopwatchNullIsSafe) {
  ScopedStopwatch scoped(nullptr);  // must not crash
}

// --- Table ----------------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  Table t("demo", {"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, WritesCsv) {
  Table t("csv", {"a", "b"});
  t.AddRow({"1", "has,comma"});
  const std::string path = testing::TempDir() + "/csj_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) content += buf;
  std::fclose(f);
  EXPECT_EQ(content, "a,b\n1,\"has,comma\"\n");
}

}  // namespace
}  // namespace csj

#include "util/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace csj::json {
namespace {

TEST(JsonTest, WriteScalars) {
  EXPECT_EQ(Write(Value()), "null");
  EXPECT_EQ(Write(Value(true)), "true");
  EXPECT_EQ(Write(Value(false)), "false");
  EXPECT_EQ(Write(Value(int64_t{-7})), "-7");
  EXPECT_EQ(Write(Value(uint64_t{7})), "7");
  EXPECT_EQ(Write(Value("hi")), "\"hi\"");
}

TEST(JsonTest, WriteCompositesCompactAndPretty) {
  Value doc = Object{};
  doc["b"] = 2;
  doc["a"] = 1;
  doc["list"].Append(1);
  doc["list"].Append("two");
  // std::map keys: deterministic, sorted serialization.
  EXPECT_EQ(Write(doc), R"({"a":1,"b":2,"list":[1,"two"]})");
  const std::string pretty = Write(doc, /*pretty=*/true);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  auto reparsed = Parse(pretty);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  // Compare serialized forms: parsing reads non-negative integers back as
  // uint64, so the variant alternatives differ from the int-built original
  // even though the values agree.
  EXPECT_EQ(Write(*reparsed), Write(doc));
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->AsBool(), true);
  EXPECT_EQ(Parse("-42")->AsInt(), -42);
  EXPECT_EQ(Parse(" 3.5 ")->AsDouble(), 3.5);
  EXPECT_EQ(Parse("\"x\"")->AsString(), "x");
}

TEST(JsonTest, IntegerIdentitySurvivesRoundTrip) {
  // 64-bit counters must not be squeezed through double.
  const uint64_t big_u = std::numeric_limits<uint64_t>::max();
  const int64_t big_i = std::numeric_limits<int64_t>::min();
  Value doc = Object{};
  doc["u"] = big_u;
  doc["i"] = big_i;
  auto parsed = Parse(Write(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("u")->is_uint());
  EXPECT_EQ(parsed->Find("u")->AsUint(), big_u);
  EXPECT_TRUE(parsed->Find("i")->is_int());
  EXPECT_EQ(parsed->Find("i")->AsInt(), big_i);
}

TEST(JsonTest, DoublesRoundTripBitExactly) {
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -2.5}) {
    auto parsed = Parse(Write(Value(d)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->AsDouble(), d);
  }
  // Doubles keep a marker (".0" / exponent) so they parse back as doubles.
  auto parsed = Parse(Write(Value(2.0)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_double());
  EXPECT_EQ(parsed->AsDouble(), 2.0);
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Write(Value(std::numeric_limits<double>::quiet_NaN())), "null");
  EXPECT_EQ(Write(Value(std::numeric_limits<double>::infinity())), "null");
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(Write(Value("a\"b\\c\n\t")), R"("a\"b\\c\n\t")");
  auto parsed = Parse(R"("tab\there\u0041\u00e9")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsString(), "tab\thereA\xc3\xa9");
  // Control characters are escaped on output and round-trip.
  const std::string control("\x01\x1f", 2);
  auto control_parsed = Parse(Write(Value(control)));
  ASSERT_TRUE(control_parsed.ok());
  EXPECT_EQ(control_parsed->AsString(), control);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1,}", "[1] garbage", "nulll",
        "\"bad\\escape\"", "\"\\ud800\""}) {
    EXPECT_FALSE(Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "[";
  for (int i = 0; i < 300; ++i) deep += "]";
  EXPECT_FALSE(Parse(deep).ok());
  // But reasonable nesting is fine.
  std::string ok = "1";
  for (int i = 0; i < 50; ++i) ok = "[" + ok + "]";
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonTest, BuilderAutoVivifiesObjectsAndArrays) {
  Value doc;  // starts null
  doc["a"]["b"] = 1;
  doc["list"].Append(true);
  EXPECT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.Find("a")->Find("b")->is_int());
  EXPECT_EQ(doc.Find("list")->AsArray().size(), 1u);
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_EQ(Value(1).Find("a"), nullptr);  // non-object lookup is safe
}

TEST(JsonTest, NumericCrossConversions) {
  EXPECT_EQ(Value(uint64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value(int64_t{5}).AsUint(), 5u);
  EXPECT_EQ(Value(int64_t{5}).AsDouble(), 5.0);
  EXPECT_EQ(Value(5.0).AsDouble(), 5.0);
}

TEST(JsonTest, WhitespaceHandling) {
  auto parsed = Parse(" {\n\t\"a\" :\r [ 1 , 2 ] } ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("a")->AsArray().size(), 2u);
}

}  // namespace
}  // namespace csj::json

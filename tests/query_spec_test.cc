#include <gtest/gtest.h>

#include "core/query_spec.h"
#include "util/json.h"

namespace csj {
namespace {

QuerySpec ValidSpec() {
  QuerySpec spec;
  spec.dataset = "points.bin";
  spec.eps = 0.01;
  return spec;
}

TEST(QuerySpecTest, AlgoNamesRoundTrip) {
  for (QueryAlgo algo :
       {QueryAlgo::kAuto, QueryAlgo::kSSJ, QueryAlgo::kNCSJ, QueryAlgo::kCSJ,
        QueryAlgo::kEgo, QueryAlgo::kCEgo}) {
    QueryAlgo parsed;
    ASSERT_TRUE(ParseQueryAlgo(QueryAlgoName(algo), &parsed))
        << QueryAlgoName(algo);
    EXPECT_EQ(parsed, algo);
  }
  QueryAlgo parsed;
  EXPECT_FALSE(ParseQueryAlgo("bogus", &parsed));
  EXPECT_FALSE(ParseQueryAlgo("", &parsed));
  EXPECT_FALSE(ParseQueryAlgo("CSJ", &parsed));  // names are lowercase
}

TEST(QuerySpecTest, AlgoFamilyPredicates) {
  EXPECT_FALSE(IsTreeAlgo(QueryAlgo::kAuto));
  EXPECT_TRUE(IsTreeAlgo(QueryAlgo::kSSJ));
  EXPECT_TRUE(IsTreeAlgo(QueryAlgo::kNCSJ));
  EXPECT_TRUE(IsTreeAlgo(QueryAlgo::kCSJ));
  EXPECT_FALSE(IsTreeAlgo(QueryAlgo::kEgo));
  EXPECT_TRUE(IsEgoAlgo(QueryAlgo::kEgo));
  EXPECT_TRUE(IsEgoAlgo(QueryAlgo::kCEgo));
  EXPECT_FALSE(IsEgoAlgo(QueryAlgo::kAuto));
  EXPECT_EQ(TreeAlgorithmFor(QueryAlgo::kSSJ), JoinAlgorithm::kSSJ);
  EXPECT_EQ(TreeAlgorithmFor(QueryAlgo::kNCSJ), JoinAlgorithm::kNCSJ);
  EXPECT_EQ(TreeAlgorithmFor(QueryAlgo::kCSJ), JoinAlgorithm::kCSJ);
}

TEST(QuerySpecTest, ValidateAcceptsDefaultsWithEps) {
  EXPECT_TRUE(ValidSpec().Validate().ok());
  // The struct-level contract allows an empty dataset (benches attach data
  // directly); entry points layer their own requirement on top.
  QuerySpec no_dataset;
  no_dataset.eps = 0.5;
  EXPECT_TRUE(no_dataset.Validate().ok());
}

TEST(QuerySpecTest, ValidateRejectsBadRanges) {
  QuerySpec spec = ValidSpec();
  spec.eps = 0.0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec = ValidSpec();
  spec.eps = -1.0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec = ValidSpec();
  spec.window = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec = ValidSpec();
  spec.threads = -1;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, ValidateDualJoinRules) {
  QuerySpec spec = ValidSpec();
  spec.dataset_b = "other.bin";
  EXPECT_TRUE(spec.Validate().ok());

  spec.algo = QueryAlgo::kEgo;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec.algo = QueryAlgo::kCEgo;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);

  spec = ValidSpec();
  spec.dataset.clear();
  spec.dataset_b = "other.bin";
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, JsonRoundTripIsExact) {
  // FromJson(ToJsonValue(s)) == s, for defaults and for every field set to
  // a non-default value.
  QuerySpec defaults;
  auto round = QuerySpec::FromJson(defaults.ToJsonValue());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, defaults);

  QuerySpec full;
  full.dataset = "a.bin";
  full.dataset_b = "b.bin";
  full.algo = QueryAlgo::kNCSJ;
  full.eps = 0.125;
  full.window = 32;
  full.leaf_kernel = LeafKernel::kSimd;
  full.leaf_batch = 128;
  full.sort_child_pairs = true;
  full.threads = 4;
  full.deadline_ms = 2500;
  full.mem_budget = 1ull << 30;
  full.output = OutputFormat::kBinary;
  round = QuerySpec::FromJson(full.ToJsonValue());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, full);
}

TEST(QuerySpecTest, JsonRoundTripSurvivesTextSerialization) {
  QuerySpec spec = ValidSpec();
  spec.algo = QueryAlgo::kAuto;
  spec.window = 16;
  const std::string text = json::Write(spec.ToJsonValue());
  const auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const auto round = QuerySpec::FromJson(*doc);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, spec);
}

TEST(QuerySpecTest, FromJsonAbsentFieldsKeepDefaults) {
  json::Value doc = json::Object{};
  doc["eps"] = 0.25;
  const auto spec = QuerySpec::FromJson(doc);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->algo, QueryAlgo::kCSJ);
  EXPECT_EQ(spec->window, 10);
  EXPECT_EQ(spec->leaf_kernel, LeafKernel::kSweep);
  EXPECT_EQ(spec->leaf_batch, 64u);
  EXPECT_EQ(spec->threads, 0);
  EXPECT_EQ(spec->output, OutputFormat::kText);
  EXPECT_DOUBLE_EQ(spec->eps, 0.25);
}

TEST(QuerySpecTest, FromJsonIsStrict) {
  json::Value doc = json::Object{};
  doc["eps"] = 0.25;
  doc["bogus"] = 1;
  const auto spec = QuerySpec::FromJson(doc);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("unknown request field 'bogus'"),
            std::string::npos)
      << spec.status().ToString();

  json::Value typed = json::Object{};
  typed["eps"] = "not a number";
  EXPECT_FALSE(QuerySpec::FromJson(typed).ok());
  typed = json::Object{};
  typed["algo"] = "quantum";
  EXPECT_FALSE(QuerySpec::FromJson(typed).ok());
  typed = json::Object{};
  typed["sort_child_pairs"] = 1;
  EXPECT_FALSE(QuerySpec::FromJson(typed).ok());

  EXPECT_FALSE(QuerySpec::FromJson(json::Value("[]")).ok());
}

}  // namespace
}  // namespace csj

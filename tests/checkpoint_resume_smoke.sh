#!/usr/bin/env bash
# Kill-and-resume smoke test for csj_tool's checkpointed join.
#
# Drives the *real binary* through the failure modes the in-process tests
# cannot reach: a graceful SIGTERM (final checkpoint, exit 3) and a hard
# SIGKILL (no chance to react; only the periodic checkpoints survive). After
# each, `--resume 1` must finish the join and the output must be
# byte-identical to an uninterrupted run. Usage:
#
#   checkpoint_resume_smoke.sh /path/to/csj_tool
set -u

TOOL=$1
WORK=$(mktemp -d "${TMPDIR:-/tmp}/csj_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

JOIN_ARGS=(join --algo csj --eps 0.012 --points pts.txt
           --output-format binary --checkpoint-interval 2)

fail() { echo "FAIL: $*" >&2; exit 1; }

"$TOOL" generate --kind clusters --n 40000 --out pts.txt --seed 11 \
  >/dev/null || fail "generate"

"$TOOL" "${JOIN_ARGS[@]}" --out ref.bin >/dev/null || fail "reference run"
[ -e ref.bin.ckpt ] && fail "manifest survived a completed run"

# Interrupts a backgrounded join with $1 (TERM|KILL) once the output file
# shows progress, then asserts on the tool's exit code. Retries in case the
# run finishes before the signal lands (slow machines, fast disks).
interrupt_with() {
  local sig=$1 out=$2 want_code=$3 attempt
  for attempt in 1 2 3 4 5; do
    rm -f "$out" "$out.ckpt"
    "$TOOL" "${JOIN_ARGS[@]}" --out "$out" >/dev/null 2>&1 &
    local pid=$!
    # Wait until the join has demonstrably started writing AND committed a
    # first checkpoint — a SIGKILL before any manifest exists has nothing to
    # resume from, by design.
    for _ in $(seq 200); do
      [ -s "$out" ] && [ -e "$out.ckpt" ] && break
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.01
    done
    kill "-$sig" "$pid" 2>/dev/null
    wait "$pid"
    local code=$?
    if [ "$code" -eq "$want_code" ] && [ -e "$out.ckpt" ]; then
      return 0
    fi
    if [ "$code" -eq 0 ]; then
      echo "note: run finished before SIG$sig landed; retrying" >&2
      continue
    fi
    fail "SIG$sig run: exit=$code (want $want_code), manifest $( [ -e "$out.ckpt" ] && echo present || echo missing )"
  done
  echo "SKIP: could not interrupt a run with SIG$sig after 5 attempts" >&2
  exit 0
}

# --- Graceful SIGTERM: final checkpoint, distinct exit code -----------------
interrupt_with TERM term.bin 3
"$TOOL" "${JOIN_ARGS[@]}" --out term.bin --resume 1 >/dev/null \
  || fail "resume after SIGTERM"
cmp -s ref.bin term.bin || fail "SIGTERM-resumed output differs from reference"
[ -e term.bin.ckpt ] && fail "manifest survived the resumed run"

# --- Hard SIGKILL: crash recovery from the last periodic checkpoint ---------
# 128+9: the shell reports a SIGKILLed child as exit 137.
interrupt_with KILL kill.bin 137
"$TOOL" "${JOIN_ARGS[@]}" --out kill.bin --resume 1 >/dev/null \
  || fail "resume after SIGKILL"
cmp -s ref.bin kill.bin || fail "SIGKILL-resumed output differs from reference"

# --- Deadline: exit 4, then resume to the same bytes ------------------------
rm -f dl.bin dl.bin.ckpt
"$TOOL" "${JOIN_ARGS[@]}" --out dl.bin --deadline-ms 80 >/dev/null 2>&1
code=$?
if [ "$code" -eq 4 ]; then
  "$TOOL" "${JOIN_ARGS[@]}" --out dl.bin --resume 1 >/dev/null \
    || fail "resume after deadline"
  cmp -s ref.bin dl.bin || fail "deadline-resumed output differs"
elif [ "$code" -ne 0 ]; then
  fail "deadline run: unexpected exit $code"
fi

echo "OK: SIGTERM, SIGKILL and deadline interruptions all resumed byte-identically"

#include "util/exec_context.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace csj {
namespace {

// ---------------------------------------------------------------- budgets --

TEST(MemoryBudgetTest, ReserveReleaseAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryReserve(600));
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_TRUE(budget.TryReserve(400));
  EXPECT_EQ(budget.used(), 1000u);
  EXPECT_EQ(budget.Available(), 0u);
  budget.Release(700);
  EXPECT_EQ(budget.used(), 300u);
  EXPECT_EQ(budget.peak(), 1000u);  // peak survives the release
}

TEST(MemoryBudgetTest, DenialChargesNothing) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryReserve(80));
  EXPECT_FALSE(budget.TryReserve(21));
  EXPECT_EQ(budget.used(), 80u);  // failed reservation left no residue
  EXPECT_EQ(budget.denials(), 1u);
  EXPECT_TRUE(budget.TryReserve(20));  // exact fit still accepted
}

TEST(MemoryBudgetTest, UnlimitedTracksPeak) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryReserve(1ull << 40));  // a terabyte — no limit
  EXPECT_EQ(budget.peak(), 1ull << 40);
  EXPECT_EQ(budget.Available(), UINT64_MAX);
  budget.Release(1ull << 40);
}

TEST(MemoryBudgetTest, ChildCarvesFromParent) {
  MemoryBudget parent(1000);
  MemoryBudget child(800, &parent);
  EXPECT_TRUE(child.TryReserve(500));
  EXPECT_EQ(child.used(), 500u);
  EXPECT_EQ(parent.used(), 500u);  // child reservations hit the parent too

  // Child has 300 headroom but the parent only 500 total: a sibling
  // consuming parent quota constrains the child.
  EXPECT_TRUE(parent.TryReserve(400));
  EXPECT_FALSE(child.TryReserve(200));  // parent would exceed 1000
  EXPECT_EQ(child.used(), 500u);        // denial rolled back everywhere
  EXPECT_EQ(parent.used(), 900u);

  child.Release(500);
  EXPECT_EQ(parent.used(), 400u);
}

TEST(MemoryBudgetTest, UnderPressureConsultsAncestors) {
  MemoryBudget parent(100);
  MemoryBudget child(0, &parent);  // child itself unlimited
  EXPECT_FALSE(child.UnderPressure());
  EXPECT_TRUE(parent.TryReserve(90));
  EXPECT_TRUE(child.UnderPressure());  // parent above 85%
}

TEST(MemoryBudgetTest, ConcurrentReserveNeverOvercommits) {
  MemoryBudget budget(10000);
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (budget.TryReserve(7)) {
          granted.fetch_add(7);
          budget.Release(7);
          granted.fetch_sub(7);
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_LE(budget.peak(), 10000u);
}

// ----------------------------------------------------------- ScopedCharge --

TEST(ScopedChargeTest, ReleasesOnDestruction) {
  MemoryBudget budget(100);
  {
    ScopedCharge charge;
    EXPECT_TRUE(charge.Acquire(&budget, 60));
    EXPECT_EQ(budget.used(), 60u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(ScopedChargeTest, ResizeGrowAndShrink) {
  MemoryBudget budget(100);
  ScopedCharge charge;
  ASSERT_TRUE(charge.Acquire(&budget, 40));
  EXPECT_TRUE(charge.Resize(90));
  EXPECT_EQ(budget.used(), 90u);
  EXPECT_FALSE(charge.Resize(200));  // denied: original kept
  EXPECT_EQ(budget.used(), 90u);
  EXPECT_EQ(charge.bytes(), 90u);
  EXPECT_TRUE(charge.Resize(10));
  EXPECT_EQ(budget.used(), 10u);
}

TEST(ScopedChargeTest, NullBudgetAlwaysSucceeds) {
  ScopedCharge charge;
  EXPECT_TRUE(charge.Acquire(nullptr, 1ull << 50));
  EXPECT_TRUE(charge.Resize(1ull << 60));
}

TEST(ScopedChargeTest, MoveTransfersOwnership) {
  MemoryBudget budget(100);
  ScopedCharge a;
  ASSERT_TRUE(a.Acquire(&budget, 50));
  ScopedCharge b = std::move(a);
  EXPECT_EQ(budget.used(), 50u);
  a.Release();  // moved-from: no-op
  EXPECT_EQ(budget.used(), 50u);
  b.Release();
  EXPECT_EQ(budget.used(), 0u);
}

// ------------------------------------------------------------ ExecContext --

TEST(ExecContextTest, FreshContextDoesNotStop) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.status().ok());
}

TEST(ExecContextTest, ZeroDeadlineMeansNone) {
  ExecContext ctx;
  ctx.SetDeadlineAfterMs(0);
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.ShouldStopNow());
}

TEST(ExecContextTest, ExpiredDeadlineTrips) {
  ExecContext ctx;
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.ShouldStop());  // first poll always checks the clock
  EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, ShouldStopNowBypassesStride) {
  // Burn the stride with an unexpired deadline, then expire it: the strided
  // poll may miss it, but ShouldStopNow must not.
  ExecContext ctx;
  ctx.SetDeadlineAfterMs(3600 * 1000);
  for (uint32_t i = 0; i < ExecContext::kDeadlineStride + 1; ++i) {
    EXPECT_FALSE(ctx.ShouldStop());
  }
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.ShouldStopNow());
  EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, CancelFlagTrips) {
  std::atomic<bool> cancel{false};
  ExecContext ctx;
  ctx.SetCancelFlag(&cancel);
  EXPECT_FALSE(ctx.ShouldStop());
  cancel.store(true);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, TripIsStickyFirstErrorWins) {
  ExecContext ctx;
  ctx.Trip(Status::IoError("first"));
  ctx.Trip(Status::Cancelled("second"));
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.status().code(), StatusCode::kIoError);
  EXPECT_EQ(ctx.status().message(), "first");
}

TEST(ExecContextTest, OkTripIgnored) {
  ExecContext ctx;
  ctx.Trip(Status::OK());
  EXPECT_FALSE(ctx.ShouldStop());
}

TEST(ExecContextTest, ParentTripStopsChild) {
  ExecContext parent;
  ExecContext child;
  child.SetParent(&parent);
  EXPECT_FALSE(child.ShouldStop());
  parent.Trip(Status::Cancelled("parent stopped"));
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_EQ(child.status().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ChildTripDoesNotStopParent) {
  ExecContext parent;
  ExecContext child;
  child.SetParent(&parent);
  child.Trip(Status::DeadlineExceeded("child only"));
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_FALSE(parent.ShouldStop());
}

TEST(ExecContextTest, BudgetFallsBackToParent) {
  MemoryBudget budget(100);
  ExecContext parent;
  parent.SetMemoryBudget(&budget);
  ExecContext child;
  child.SetParent(&parent);
  EXPECT_EQ(child.memory_budget(), &budget);
}

TEST(ExecContextTest, TryChargeTripsOnDenial) {
  MemoryBudget budget(100);
  ExecContext ctx;
  ctx.SetMemoryBudget(&budget);
  EXPECT_TRUE(ctx.TryCharge(80, "tile scratch"));
  EXPECT_FALSE(ctx.TryCharge(50, "group window"));
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.status().code(), StatusCode::kResourceExhausted);
  // The denied charge names the allocation site for the operator.
  EXPECT_NE(ctx.status().message().find("group window"), std::string::npos);
}

TEST(ExecContextTest, TryChargeWithoutBudgetIsFree) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.TryCharge(1ull << 50, "anything"));
  EXPECT_FALSE(ctx.ShouldStop());
}

TEST(ExecContextTest, ConcurrentPollersSeeOneTrip) {
  std::atomic<bool> cancel{false};
  ExecContext ctx;
  ctx.SetCancelFlag(&cancel);
  std::atomic<int> stopped{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      while (!ctx.ShouldStop()) std::this_thread::yield();
      if (ctx.status().code() == StatusCode::kCancelled) stopped.fetch_add(1);
    });
  }
  cancel.store(true);
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(stopped.load(), 8);
}

}  // namespace
}  // namespace csj

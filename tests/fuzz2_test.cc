#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/paged_tree.h"
#include "index/rstar_tree.h"
#include "metric/edit_distance.h"
#include "metric/generic_mtree.h"
#include "metric/metric_join.h"
#include "storage/checkpoint.h"
#include "util/random.h"

/// \file
/// Second fuzz round: the metric join over random string corpora and the
/// paged (disk-resident) read path under random block/cache geometries.

namespace csj {
namespace {

class MetricFuzzTest : public testing::TestWithParam<int> {};

TEST_P(MetricFuzzTest, RandomStringCorporaAreLossless) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  for (int trial = 0; trial < 6; ++trial) {
    // Random corpus: alphabet size and word length control the density.
    const int alphabet = 2 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    const size_t base_len = 3 + rng.UniformInt(uint64_t{10});
    const size_t n = 80 + rng.UniformInt(uint64_t{220});
    std::vector<std::string> words(n);
    for (auto& w : words) {
      const size_t len = base_len + rng.UniformInt(uint64_t{4});
      for (size_t i = 0; i < len; ++i) {
        w.push_back(static_cast<char>(
            'a' + rng.UniformInt(static_cast<uint64_t>(alphabet))));
      }
    }

    GenericMTreeOptions tree_options;
    tree_options.max_fanout = 4 + rng.UniformInt(uint64_t{20});
    tree_options.min_fanout = 2;
    GenericMTree<std::string, EditDistanceMetric> tree(EditDistanceMetric(),
                                                       tree_options);
    for (size_t i = 0; i < words.size(); ++i) {
      tree.Insert(static_cast<PointId>(i), words[i]);
    }
    tree.CheckInvariants();

    const double eps =
        1.0 + static_cast<double>(rng.UniformInt(uint64_t{5}));
    // Brute reference.
    EditDistanceMetric metric;
    std::vector<Link> reference;
    for (size_t i = 0; i < words.size(); ++i) {
      for (size_t j = i + 1; j < words.size(); ++j) {
        if (metric(words[i], words[j]) <= eps) {
          reference.push_back(MakeLink(static_cast<PointId>(i),
                                       static_cast<PointId>(j)));
        }
      }
    }
    std::sort(reference.begin(), reference.end());

    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 1 + static_cast<int>(rng.UniformInt(uint64_t{20}));
    options.early_stop = !rng.Bernoulli(0.2);

    {
      MemorySink sink(IdWidthFor(n));
      MetricStandardJoin(tree, options, &sink);
      ASSERT_EQ(ExpandSelfJoin(sink), reference)
          << "SSJ trial=" << trial << " eps=" << eps;
    }
    {
      MemorySink sink(IdWidthFor(n));
      MetricNaiveCompactJoin(tree, options, &sink);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      ASSERT_TRUE(report.lossless())
          << "N-CSJ trial=" << trial << " eps=" << eps << ": "
          << report.ToString();
    }
    {
      MemorySink sink(IdWidthFor(n));
      MetricCompactJoin(tree, options, &sink);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      ASSERT_TRUE(report.lossless())
          << "CSJ trial=" << trial << " eps=" << eps << ": "
          << report.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricFuzzTest, testing::Range(0, 5));

class PagedFuzzTest : public testing::TestWithParam<int> {};

TEST_P(PagedFuzzTest, RandomGeometriesJoinLosslessly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 271828 + 3);
  for (int trial = 0; trial < 4; ++trial) {
    const size_t n = 300 + rng.UniformInt(uint64_t{1200});
    std::vector<Point2> points =
        rng.Bernoulli(0.5)
            ? GenerateUniform<2>(n, rng.Next())
            : GenerateGaussianClusters<2>(
                  n, 1 + static_cast<int>(rng.UniformInt(uint64_t{6})),
                  rng.UniformDouble(0.005, 0.08), rng.Next());
    std::vector<Entry<2>> entries = ToEntries(points);

    RStarOptions tree_options;
    tree_options.max_fanout = 8 + rng.UniformInt(uint64_t{56});
    tree_options.min_fanout =
        std::max<size_t>(2, tree_options.max_fanout * 2 / 5);
    RStarTree<2> tree(tree_options);
    if (rng.Bernoulli(0.5)) {
      PackStr(&tree, entries);
    } else {
      for (const auto& e : entries) tree.Insert(e.id, e.point);
    }

    PagedTreeOptions paged_options;
    paged_options.block_size = 1u << (8 + rng.UniformInt(uint64_t{6}));
    paged_options.cache_blocks = 1 + rng.UniformInt(uint64_t{64});
    const std::string path =
        testing::TempDir() +
        StrFormat("/paged_fuzz_%d_%d.csjp", GetParam(), trial);
    ASSERT_TRUE(WritePagedTree(tree, path, paged_options).ok());
    auto paged = PagedTree<2>::Open(path, paged_options);
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();

    const double eps = rng.UniformDouble(0.005, 0.2);
    const auto reference = BruteForceSelfJoin(entries, eps);
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 1 + static_cast<int>(rng.UniformInt(uint64_t{30}));
    for (auto algo :
         {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
      MemorySink sink(IdWidthFor(entries.size()));
      RunSelfJoin(algo, *paged, options, &sink);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      ASSERT_TRUE(report.lossless())
          << JoinAlgorithmName(algo) << " trial=" << trial << " eps=" << eps
          << " block=" << paged_options.block_size
          << " cache=" << paged_options.cache_blocks << ": "
          << report.ToString();
    }
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagedFuzzTest, testing::Range(0, 4));

class ManifestFuzzTest : public testing::TestWithParam<int> {};

// Random bytes thrown at the checkpoint-manifest parser: every input must
// come back as a clean Status — no crash, and (thanks to the CRC) no
// accidental acceptance that would let --resume continue from garbage.
// tests/checkpoint_test.cc has the structured corruption matrix; this is the
// unstructured complement.
TEST_P(ManifestFuzzTest, RandomBytesYieldCleanStatusNeverAManifest) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 101);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes(rng.UniformInt(uint64_t{300}), '\0');
    for (auto& c : bytes) {
      c = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    // Some trials get a real header prefix so the payload decoder (not just
    // the magic check) sees fuzzed input.
    if (rng.Bernoulli(0.3)) {
      bytes = std::string(checkpoint::kMagic, 4) + bytes;
    }
    checkpoint::Manifest manifest;
    if (checkpoint::Parse(bytes, &manifest).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManifestFuzzTest, testing::Range(0, 4));

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "data/generators.h"
#include "index/node_access.h"
#include "index/mtree.h"
#include "util/random.h"

namespace csj {
namespace {

template <int D>
std::set<PointId> ToIds(const std::vector<Entry<D>>& entries) {
  std::set<PointId> out;
  for (const auto& e : entries) out.insert(e.id);
  return out;
}

TEST(MTreeTest, EmptyAndSingle) {
  MTree<2> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Root(), kInvalidNode);
  tree.CheckInvariants();
  tree.Insert(9, Point2{{0.4, 0.4}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  tree.CheckInvariants();
  auto hits = tree.RangeQuery(Point2{{0.4, 0.4}}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 9u);
}

class MTreePromotionTest : public testing::TestWithParam<MTreePromotion> {};

TEST_P(MTreePromotionTest, InvariantsAfterManyInserts) {
  MTreeOptions options;
  options.max_fanout = 10;
  options.min_fanout = 2;
  options.promotion = GetParam();
  MTree<2> tree(options);
  const auto points = GenerateUniform<2>(2000, 13);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
    if (i % 317 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_GT(tree.Height(), 1);
}

TEST_P(MTreePromotionTest, RangeQueryMatchesBruteForce) {
  MTreeOptions options;
  options.promotion = GetParam();
  MTree<2> tree(options);
  const auto points = GenerateGaussianClusters<2>(1500, 6, 0.05, 23);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  Rng rng(29);
  for (int q = 0; q < 40; ++q) {
    const Point2 center{{rng.UniformDouble(), rng.UniformDouble()}};
    const double radius = rng.UniformDouble(0.0, 0.2);
    std::set<PointId> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (Distance(center, points[i]) <= radius) {
        expected.insert(static_cast<PointId>(i));
      }
    }
    EXPECT_EQ(ToIds(tree.RangeQuery(center, radius)), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Promotions, MTreePromotionTest,
                         testing::Values(MTreePromotion::kMinMaxRadius,
                                         MTreePromotion::kSampled),
                         [](const auto& info) {
                           return info.param == MTreePromotion::kMinMaxRadius
                                      ? "MinMaxRadius"
                                      : "Sampled";
                         });

TEST(MTreeTest, MaxDiameterBoundsSubtreePairs) {
  MTree<2> tree;
  const auto points = GenerateUniform<2>(600, 37);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  // Check for root and one level down.
  auto check_node = [&](NodeId n) {
    const double diameter = tree.MaxDiameter(n);
    std::vector<Entry<2>> members;
    ForEachEntryInSubtree(tree, n, static_cast<NodeAccessTracker*>(nullptr),
                          [&](const Entry<2>& e) { members.push_back(e); });
    for (size_t i = 0; i < members.size(); i += 3) {
      for (size_t j = i + 1; j < members.size(); j += 5) {
        EXPECT_LE(Distance(members[i].point, members[j].point),
                  diameter + 1e-9);
      }
    }
  };
  check_node(tree.Root());
  if (!tree.IsLeaf(tree.Root())) {
    for (NodeId child : tree.Children(tree.Root())) check_node(child);
  }
}

TEST(MTreeTest, MinDistanceLowerBoundsCrossPairs) {
  MTree<2> tree;
  const auto points = GenerateGaussianClusters<2>(800, 4, 0.03, 41);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  if (tree.IsLeaf(tree.Root())) GTEST_SKIP() << "tree too small";
  const auto children = tree.Children(tree.Root());
  for (size_t i = 0; i < children.size(); ++i) {
    for (size_t j = i + 1; j < children.size(); ++j) {
      const double lower = tree.MinDistance(children[i], children[j]);
      std::vector<Entry<2>> a, b;
      ForEachEntryInSubtree(tree, children[i],
                            static_cast<NodeAccessTracker*>(nullptr),
                            [&](const Entry<2>& e) { a.push_back(e); });
      ForEachEntryInSubtree(tree, children[j],
                            static_cast<NodeAccessTracker*>(nullptr),
                            [&](const Entry<2>& e) { b.push_back(e); });
      for (size_t x = 0; x < a.size(); x += 7) {
        for (size_t y = 0; y < b.size(); y += 9) {
          EXPECT_GE(Distance(a[x].point, b[y].point), lower - 1e-9);
        }
      }
    }
  }
}

TEST(MTreeTest, DuplicatePointsSupported) {
  MTreeOptions options;
  options.max_fanout = 6;
  MTree<2> tree(options);
  for (PointId id = 0; id < 50; ++id) tree.Insert(id, Point2{{0.7, 0.1}});
  tree.CheckInvariants();
  EXPECT_EQ(tree.RangeQuery(Point2{{0.7, 0.1}}, 0.0).size(), 50u);
}

TEST(MTreeTest, HighDimensionalInsertion) {
  MTree<5> tree;
  const auto points = GenerateUniform<5>(800, 53);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 800u);
}


TEST(MTreeTest, RemoveMaintainsInvariantsAndContent) {
  MTreeOptions options;
  options.max_fanout = 8;
  options.min_fanout = 2;
  MTree<2> tree(options);
  auto points = GenerateUniform<2>(600, 71);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  Rng rng(72);
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  const size_t removals = points.size() / 2;
  for (size_t k = 0; k < removals; ++k) {
    const size_t i = order[k];
    ASSERT_TRUE(tree.Remove(static_cast<PointId>(i), points[i])) << k;
    if (k % 101 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), points.size() - removals);
  // Removed entries gone, survivors present (exact range query radius 0).
  for (size_t k = 0; k < points.size(); ++k) {
    const size_t i = order[k];
    const auto hits = tree.RangeQuery(points[i], 0.0);
    bool found = false;
    for (const auto& e : hits) found |= e.id == static_cast<PointId>(i);
    EXPECT_EQ(found, k >= removals) << "k=" << k;
  }
  // Removing a missing entry fails cleanly.
  EXPECT_FALSE(tree.Remove(static_cast<PointId>(order[0]), points[order[0]]));
}

TEST(MTreeTest, RemoveEverythingEmptiesTree) {
  MTreeOptions options;
  options.max_fanout = 6;
  MTree<2> tree(options);
  const auto points = GenerateUniform<2>(120, 73);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Remove(static_cast<PointId>(i), points[i]));
  }
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
  // Reusable after emptying.
  tree.Insert(999, Point2{{0.5, 0.5}});
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 1u);
}

TEST(MTreeTest, JoinAfterRemovalsIsCorrect) {
  MTree<2> tree;
  const auto points = GenerateGaussianClusters<2>(500, 4, 0.03, 75);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<PointId>(i), points[i]);
  }
  std::vector<Entry<2>> survivors;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i % 4 == 0) {
      ASSERT_TRUE(tree.Remove(static_cast<PointId>(i), points[i]));
    } else {
      survivors.push_back(Entry<2>{static_cast<PointId>(i), points[i]});
    }
  }
  tree.CheckInvariants();
  // Range counts against the surviving set at several radii.
  Rng rng(76);
  for (int q = 0; q < 20; ++q) {
    const Point2 center{{rng.UniformDouble(), rng.UniformDouble()}};
    const double radius = rng.UniformDouble(0.0, 0.15);
    uint64_t expected = 0;
    for (const auto& e : survivors) {
      expected += Distance(center, e.point) <= radius;
    }
    EXPECT_EQ(tree.RangeCount(center, radius), expected);
  }
}

TEST(MTreeTest, ShapeExposesBall) {
  MTree<2> tree;
  tree.Insert(0, Point2{{0.0, 0.0}});
  tree.Insert(1, Point2{{1.0, 0.0}});
  const Ball<2> ball = tree.Shape(tree.Root());
  EXPECT_TRUE(ball.Contains(Point2{{0.0, 0.0}}));
  EXPECT_TRUE(ball.Contains(Point2{{1.0, 0.0}}));
}

}  // namespace
}  // namespace csj

#include "geom/dispatch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/ego.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "geom/kernels.h"
#include "index/rstar_tree.h"
#include "util/random.h"

/// Tests of the runtime ISA dispatch layer (geom/dispatch.h). The
/// load-bearing claims:
///
///  * LeafKernel::kSimd resolves to the widest backend that is both
///    compiled in and supported by the host CPU (AVX-512 > AVX2 > scalar);
///  * the CSJ_KERNEL_ISA env override forces any *available* backend, and
///    unknown or unavailable names fall back to best-available rather than
///    mis-executing or disabling the join;
///  * every backend is decision-identical: forcing each ISA in turn on
///    tie-heavy randomized data yields byte-identical CSJ(g) output —
///    links and groups, in order — including distances exactly at epsilon
///    and exact-duplicate points;
///  * the explicit kAvx2/kAvx512 modes degrade to scalar when the backend
///    is unavailable instead of crashing.
///
/// Tests for ISAs the host cannot run skip cleanly (GTEST_SKIP), so the
/// suite passes on any machine and under -DCSJ_SIMD=OFF.

namespace csj {
namespace {

/// Sets CSJ_KERNEL_ISA and drops the cached dispatch decision for the
/// scope; restores "no override" state on exit. The dispatch cache is
/// normally write-once, so every mutation must go through this guard.
class ScopedKernelIsaEnv {
 public:
  explicit ScopedKernelIsaEnv(const char* value) {
    setenv("CSJ_KERNEL_ISA", value, /*overwrite=*/1);
    dispatch_internal::ResetDispatchForTesting();
  }
  ~ScopedKernelIsaEnv() {
    unsetenv("CSJ_KERNEL_ISA");
    dispatch_internal::ResetDispatchForTesting();
  }
  ScopedKernelIsaEnv(const ScopedKernelIsaEnv&) = delete;
  ScopedKernelIsaEnv& operator=(const ScopedKernelIsaEnv&) = delete;
};

KernelIsa BestAvailableIsa() {
  if (KernelIsaAvailable(KernelIsa::kAvx512)) return KernelIsa::kAvx512;
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  return KernelIsa::kScalar;
}

/// Randomized points laced with the cases where a rounding difference
/// between backends would first show: exact duplicates (distance 0), runs
/// of equal sweep keys, and grid points whose neighbor distances are
/// *exactly* epsilon (0.25 is binary-exact, so fl((x-y)^2) == eps^2 with
/// no rounding slack).
std::vector<Entry<2>> TieHeavyEntries(size_t n, uint64_t seed, double eps) {
  Rng rng(seed);
  std::vector<Entry<2>> entries;
  entries.reserve(n + 36);
  PointId id = 0;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(Entry<2>{
        id++, Point2{{rng.UniformDouble(), rng.UniformDouble()}}});
  }
  for (size_t i = 0; i < n / 4; ++i) {
    entries.push_back(Entry<2>{id++, entries[i].point});  // exact duplicate
    Point2 p = entries[i].point;
    p[1] = rng.UniformDouble();  // duplicated sweep-axis coordinate
    entries.push_back(Entry<2>{id++, p});
  }
  for (int gx = 0; gx < 6; ++gx) {
    for (int gy = 0; gy < 6; ++gy) {
      entries.push_back(Entry<2>{id++, Point2{{gx * eps, gy * eps}}});
    }
  }
  return entries;
}

RStarTree<2> SmallFanoutTree(const std::vector<Entry<2>>& entries) {
  RStarOptions options;
  options.max_fanout = 8;
  options.min_fanout = 3;
  RStarTree<2> tree(options);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  return tree;
}

TEST(KernelsDispatchTest, DispatchPrefersWidestAvailableIsa) {
  dispatch_internal::ResetDispatchForTesting();
  unsetenv("CSJ_KERNEL_ISA");
  EXPECT_EQ(DispatchedKernelIsa(), BestAvailableIsa());
  // The decision is cached: repeated queries agree.
  EXPECT_EQ(DispatchedKernelIsa(), BestAvailableIsa());
  dispatch_internal::ResetDispatchForTesting();
}

TEST(KernelsDispatchTest, EnvOverrideForcesEachAvailableIsa) {
  for (KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (!KernelIsaAvailable(isa)) continue;
    ScopedKernelIsaEnv env(KernelIsaName(isa));
    EXPECT_EQ(DispatchedKernelIsa(), isa) << KernelIsaName(isa);
    EXPECT_EQ(GetKernelBackend(DispatchedKernelIsa()).isa, isa);
  }
}

TEST(KernelsDispatchTest, BogusEnvOverrideFallsBackToBestAvailable) {
  ScopedKernelIsaEnv env("sse42-typo");
  EXPECT_EQ(DispatchedKernelIsa(), BestAvailableIsa());
}

TEST(KernelsDispatchTest, UnavailableEnvOverrideFallsBackToBestAvailable) {
  // Naming an unavailable backend must not disable the join; when all
  // three are available there is nothing to check here.
  bool any_unavailable = false;
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (KernelIsaAvailable(isa)) continue;
    any_unavailable = true;
    ScopedKernelIsaEnv env(KernelIsaName(isa));
    EXPECT_EQ(DispatchedKernelIsa(), BestAvailableIsa());
  }
  if (!any_unavailable) {
    GTEST_SKIP() << "every backend is available on this host";
  }
}

TEST(KernelsDispatchTest, ExplicitModesDegradeToScalarWhenUnavailable) {
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    const KernelBackend& be = GetKernelBackend(isa);
    EXPECT_EQ(be.isa,
              KernelIsaAvailable(isa) ? isa : KernelIsa::kScalar);
    ASSERT_NE(be.window_hits, nullptr);
    ASSERT_NE(be.sweep_bound, nullptr);
  }
}

/// Forces `isa` through the env override and checks the full CSJ(g)
/// pipeline — tree driver and EGO driver — produces byte-identical links
/// and groups to the kNaive scalar baseline on tie-heavy data.
void ExpectForcedIsaMatchesBaseline(KernelIsa isa) {
  if (!KernelIsaAvailable(isa)) {
    GTEST_SKIP() << KernelIsaName(isa)
                 << " backend not compiled in or not supported by this CPU";
  }
  const double eps = 0.25;  // binary-exact: grid ties land exactly at eps
  const auto entries = TieHeavyEntries(300, 7 + static_cast<uint64_t>(isa),
                                       eps);
  const auto tree = SmallFanoutTree(entries);

  JoinOptions options;
  options.epsilon = eps;
  options.leaf_kernel = LeafKernel::kNaive;
  MemorySink baseline(IdWidthFor(entries.size()));
  RunSelfJoin(JoinAlgorithm::kCSJ, tree, options, &baseline);

  EgoOptions ego;
  ego.epsilon = eps;
  ego.leaf_size = 16;
  ego.leaf_kernel = LeafKernel::kNaive;
  MemorySink ego_baseline(IdWidthFor(entries.size()));
  CompactEgoJoin(entries, ego, &ego_baseline);

  ScopedKernelIsaEnv env(KernelIsaName(isa));
  ASSERT_EQ(DispatchedKernelIsa(), isa);

  options.leaf_kernel = LeafKernel::kSimd;
  MemorySink sink(IdWidthFor(entries.size()));
  const JoinStats stats = RunSelfJoin(JoinAlgorithm::kCSJ, tree, options,
                                      &sink);
  EXPECT_EQ(sink.links(), baseline.links()) << KernelIsaName(isa);
  EXPECT_EQ(sink.groups(), baseline.groups());
  EXPECT_EQ(stats.kernel_isa, KernelIsaName(isa));

  ego.leaf_kernel = LeafKernel::kSimd;
  MemorySink ego_sink(IdWidthFor(entries.size()));
  const JoinStats ego_stats = CompactEgoJoin(entries, ego, &ego_sink);
  EXPECT_EQ(ego_sink.links(), ego_baseline.links()) << KernelIsaName(isa);
  EXPECT_EQ(ego_sink.groups(), ego_baseline.groups());
  EXPECT_EQ(ego_stats.kernel_isa, KernelIsaName(isa));
}

TEST(KernelsDispatchTest, CsjOutputIdenticalUnderForcedScalar) {
  ExpectForcedIsaMatchesBaseline(KernelIsa::kScalar);
}

TEST(KernelsDispatchTest, CsjOutputIdenticalUnderForcedAvx2) {
  ExpectForcedIsaMatchesBaseline(KernelIsa::kAvx2);
}

TEST(KernelsDispatchTest, CsjOutputIdenticalUnderForcedAvx512) {
  ExpectForcedIsaMatchesBaseline(KernelIsa::kAvx512);
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/result_cursor.h"
#include "core/sink.h"
#include "storage/binary_format.h"
#include "util/random.h"

namespace csj {
namespace {

using binfmt::AppendVarint;
using binfmt::Crc32;
using binfmt::ParseVarint;
using binfmt::UnZigZag;
using binfmt::VarintBytes;
using binfmt::ZigZag;

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

void WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::vector<uint64_t> values = {
      0,       1,          127,        128,        16383,
      16384,   2097151,    2097152,    268435455,  268435456,
      1ull << 35, 1ull << 56, ~uint64_t{0}};
  for (const uint64_t v : values) {
    std::string buf;
    AppendVarint(&buf, v);
    EXPECT_EQ(buf.size(), VarintBytes(v)) << v;
    uint64_t parsed = 0;
    EXPECT_EQ(ParseVarint(buf.data(), buf.size(), &parsed), buf.size()) << v;
    EXPECT_EQ(parsed, v);
    // Short buffers must not parse.
    EXPECT_EQ(ParseVarint(buf.data(), buf.size() - 1, &parsed), 0u) << v;
  }
}

TEST(VarintTest, RejectsOverlongEncoding) {
  // 11 continuation bytes: more than any uint64 needs.
  std::string buf(11, '\x80');
  uint64_t parsed = 0;
  EXPECT_EQ(ParseVarint(buf.data(), buf.size(), &parsed), 0u);
}

TEST(ZigZagTest, MapsSignsToAlternatingCodes) {
  EXPECT_EQ(ZigZag(0), 0u);
  EXPECT_EQ(ZigZag(-1), 1u);
  EXPECT_EQ(ZigZag(1), 2u);
  EXPECT_EQ(ZigZag(-2), 3u);
  for (const int64_t v : {int64_t{0}, int64_t{-1}, int64_t{123456789},
                          int64_t{-123456789}, int64_t{1} << 40}) {
    EXPECT_EQ(UnZigZag(ZigZag(v)), v);
  }
}

TEST(Crc32Test, MatchesReferenceVector) {
  // The canonical CRC-32 (IEEE 802.3, reflected 0xEDB88320) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(SizeModelTest, MirrorsBlockSealing) {
  // Target 10: records of 4 bytes. Fill 4, 8 -> next seals a block.
  binfmt::BinarySizeModel model(10);
  EXPECT_EQ(model.AddRecord(4), 4u);
  EXPECT_EQ(model.AddRecord(4), 4u);
  // 8 + 4 > 10: seal costs one extra block header.
  EXPECT_EQ(model.AddRecord(4), 4u + binfmt::kBlockHeaderBytes);
  // Oversized record: sealed into its own block.
  EXPECT_EQ(model.AddRecord(100), 100u + binfmt::kBlockHeaderBytes);
  // Close: open block header + EOF marker + footer.
  EXPECT_EQ(model.CloseBytes(), binfmt::kBlockHeaderBytes +
                                    binfmt::kBlockHeaderBytes +
                                    binfmt::kFooterBytes);
}

TEST(SizeModelTest, EmptyOutputIsHeaderEofFooter) {
  binfmt::BinarySizeModel model;
  EXPECT_EQ(binfmt::kFileHeaderBytes + model.CloseBytes(),
            binfmt::kFileHeaderBytes + binfmt::kBlockHeaderBytes +
                binfmt::kFooterBytes);
}

TEST(FileHeaderTest, RoundTripsAndValidates) {
  std::string buf;
  binfmt::AppendFileHeader(&buf, 7);
  ASSERT_EQ(buf.size(), binfmt::kFileHeaderBytes);
  EXPECT_TRUE(binfmt::LooksLikeBinary(buf.data(), buf.size()));
  int width = 0;
  EXPECT_TRUE(binfmt::ParseFileHeader(buf.data(), buf.size(), &width).ok());
  EXPECT_EQ(width, 7);

  std::string bad = buf;
  bad[0] = 'X';
  EXPECT_FALSE(binfmt::LooksLikeBinary(bad.data(), bad.size()));
  EXPECT_FALSE(binfmt::ParseFileHeader(bad.data(), bad.size(), &width).ok());
  EXPECT_FALSE(binfmt::ParseFileHeader(buf.data(), 3, &width).ok());
}

/// End-to-end: write with BinaryFileSink, read back with a cursor, compare
/// against what a MemorySink captured from the same emission sequence.
class BinaryRoundTrip : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/csj_binfmt_roundtrip.bin";

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(BinaryRoundTrip, PreservesRecordsOrderAndKinds) {
  BinaryFileSink::Options options;
  options.block_payload_bytes = 64;  // force many small blocks
  BinaryFileSink sink(5, path_, options);
  MemorySink expected(5);
  Rng rng(7);
  std::vector<std::vector<PointId>> emitted;
  for (int i = 0; i < 500; ++i) {
    const size_t k = 2 + rng.UniformInt(9);
    std::vector<PointId> ids(k);
    for (size_t j = 0; j < k; ++j) {
      ids[j] = static_cast<PointId>(rng.UniformInt(100000));
    }
    if (k == 2 && rng.UniformInt(2) == 0) {
      sink.Link(ids[0], ids[1]);
      expected.Link(ids[0], ids[1]);
      emitted.push_back({});
    } else {
      sink.Group(ids);
      expected.Group(ids);
      emitted.push_back(ids);
    }
  }
  const uint64_t predicted = sink.bytes();
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(ReadWholeFile(path_).size(), predicted);

  auto cursor = OpenResultCursor(path_);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_EQ((*cursor)->format(), OutputFormat::kBinary);
  EXPECT_EQ((*cursor)->declared_id_width(), 5);

  size_t links = 0, groups = 0;
  while ((*cursor)->Next()) {
    const ResultRecord& record = (*cursor)->record();
    if (record.is_group) {
      ASSERT_LT(groups, expected.groups().size());
      EXPECT_EQ(std::vector<PointId>(record.ids.begin(), record.ids.end()),
                expected.groups()[groups]);
      ++groups;
    } else {
      ASSERT_LT(links, expected.links().size());
      EXPECT_EQ(record.ids[0], expected.links()[links].first);
      EXPECT_EQ(record.ids[1], expected.links()[links].second);
      ++links;
    }
  }
  EXPECT_TRUE((*cursor)->status().ok()) << (*cursor)->status().ToString();
  EXPECT_EQ(links, expected.links().size());
  EXPECT_EQ(groups, expected.groups().size());
}

TEST_F(BinaryRoundTrip, GroupOfTwoStaysAGroup) {
  BinaryFileSink sink(3, path_);
  const std::vector<PointId> pair = {4, 9};
  sink.Group(pair);
  sink.Link(1, 2);
  ASSERT_TRUE(sink.Finish().ok());

  auto cursor = OpenResultCursor(path_);
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->record().is_group);
  ASSERT_TRUE((*cursor)->Next());
  EXPECT_FALSE((*cursor)->record().is_group);
  EXPECT_FALSE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->status().ok());
}

TEST_F(BinaryRoundTrip, EmptyResultRoundTrips) {
  BinaryFileSink sink(2, path_);
  const uint64_t predicted = sink.bytes();
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(ReadWholeFile(path_).size(), predicted);

  auto cursor = OpenResultCursor(path_);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE((*cursor)->Next());
  EXPECT_TRUE((*cursor)->status().ok());
}

TEST_F(BinaryRoundTrip, TruncationAtEveryOffsetIsDetected) {
  BinaryFileSink::Options options;
  options.block_payload_bytes = 32;
  BinaryFileSink sink(4, path_, options);
  for (PointId i = 0; i < 40; ++i) sink.Link(i * 3, i * 3 + 1);
  const std::vector<PointId> group = {1, 5, 9, 2};
  sink.Group(group);
  ASSERT_TRUE(sink.Finish().ok());
  const std::string whole = ReadWholeFile(path_);

  const std::string cut_path = testing::TempDir() + "/csj_binfmt_cut.bin";
  for (size_t cut = 0; cut < whole.size(); cut += 7) {
    WriteWholeFile(cut_path, whole.substr(0, cut));
    auto cursor = OpenResultCursor(cut_path, OutputFormat::kBinary);
    bool failed = false;
    if (!cursor.ok()) {
      failed = true;
    } else {
      while ((*cursor)->Next()) {
      }
      failed = !(*cursor)->status().ok();
    }
    EXPECT_TRUE(failed) << "truncation at byte " << cut << " not detected";
  }
  std::remove(cut_path.c_str());
}

TEST_F(BinaryRoundTrip, CorruptPayloadFailsChecksum) {
  BinaryFileSink sink(4, path_);
  for (PointId i = 0; i < 100; ++i) sink.Link(i, i + 1);
  ASSERT_TRUE(sink.Finish().ok());
  std::string whole = ReadWholeFile(path_);

  // Flip one payload byte (inside the first block, after file + block
  // headers).
  whole[binfmt::kFileHeaderBytes + binfmt::kBlockHeaderBytes + 5] ^= 0x40;
  WriteWholeFile(path_, whole);

  auto cursor = OpenResultCursor(path_);
  ASSERT_TRUE(cursor.ok());
  while ((*cursor)->Next()) {
  }
  const Status status = (*cursor)->status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST_F(BinaryRoundTrip, CorruptFooterTotalsAreDetected) {
  BinaryFileSink sink(4, path_);
  sink.Link(1, 2);
  sink.Link(3, 4);
  ASSERT_TRUE(sink.Finish().ok());
  std::string whole = ReadWholeFile(path_);

  // num_links lives in the first 8 footer bytes; its CRC guards it.
  whole[whole.size() - binfmt::kFooterBytes] ^= 0x01;
  WriteWholeFile(path_, whole);

  auto cursor = OpenResultCursor(path_);
  ASSERT_TRUE(cursor.ok());
  while ((*cursor)->Next()) {
  }
  EXPECT_FALSE((*cursor)->status().ok());
}

TEST_F(BinaryRoundTrip, TrailingGarbageAfterFooterIsRejected) {
  BinaryFileSink sink(4, path_);
  sink.Link(1, 2);
  ASSERT_TRUE(sink.Finish().ok());
  std::string whole = ReadWholeFile(path_);
  whole.push_back('x');
  WriteWholeFile(path_, whole);

  auto cursor = OpenResultCursor(path_);
  ASSERT_TRUE(cursor.ok());
  while ((*cursor)->Next()) {
  }
  EXPECT_FALSE((*cursor)->status().ok());
}

}  // namespace
}  // namespace csj

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/brute.h"
#include "core/ego.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/mtree.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "util/random.h"

/// \file
/// Randomized (fuzz-style) suites: every trial draws a workload, tree
/// configuration, and join parameters from a seeded RNG, then checks the
/// full lossless property against brute force, plus structural invariants
/// under random insert/remove interleavings. Seeds are the test parameters,
/// so failures reproduce deterministically.

namespace csj {
namespace {

std::vector<Entry<2>> RandomWorkload(Rng& rng) {
  const size_t n = 50 + rng.UniformInt(uint64_t{400});
  std::vector<Point2> points;
  switch (rng.UniformInt(uint64_t{4})) {
    case 0:
      points = GenerateUniform<2>(n, rng.Next());
      break;
    case 1:
      points = GenerateGaussianClusters<2>(
          n, 1 + static_cast<int>(rng.UniformInt(uint64_t{8})),
          rng.UniformDouble(0.002, 0.1), rng.Next());
      break;
    case 2:
      points = GenerateSierpinski2D(n, rng.Next());
      break;
    default: {
      // Degenerate-ish: points on a line with jitter (stresses splits).
      points.resize(n);
      for (auto& p : points) {
        const double t = rng.UniformDouble();
        p = Point2{{t, 0.5 + rng.Gaussian(0.0, 1e-4)}};
      }
      break;
    }
  }
  // Occasionally inject duplicates.
  if (rng.Bernoulli(0.3) && n > 10) {
    for (int d = 0; d < 5; ++d) {
      points[rng.UniformInt(points.size())] =
          points[rng.UniformInt(points.size())];
    }
  }
  std::vector<Entry<2>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

class JoinFuzzTest : public testing::TestWithParam<int> {};

TEST_P(JoinFuzzTest, RandomConfigurationsAreLossless) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 12; ++trial) {
    const auto entries = RandomWorkload(rng);
    const double eps = rng.UniformDouble(0.001, 0.5);
    const auto reference = BruteForceSelfJoin(entries, eps);

    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 1 + static_cast<int>(rng.UniformInt(uint64_t{40}));
    options.early_stop = !rng.Bernoulli(0.2);
    options.sort_child_pairs = rng.Bernoulli(0.3);
    options.promote_on_merge = rng.Bernoulli(0.3);
    options.window_policy = rng.Bernoulli(0.3) ? WindowPolicy::kBestFit
                                               : WindowPolicy::kFirstFit;

    const int tree_kind = static_cast<int>(rng.UniformInt(uint64_t{3}));
    const size_t fanout = 4 + rng.UniformInt(uint64_t{28});
    auto check = [&](const auto& tree, const char* kind) {
      for (auto algo : {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ,
                        JoinAlgorithm::kCSJ}) {
        MemorySink sink(IdWidthFor(entries.size()));
        RunSelfJoin(algo, tree, options, &sink);
        const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
        ASSERT_TRUE(report.lossless())
            << kind << " " << JoinAlgorithmName(algo) << " trial=" << trial
            << " eps=" << eps << " g=" << options.window_size
            << " fanout=" << fanout << ": " << report.ToString();
      }
    };
    if (tree_kind == 0) {
      RTreeOptions topt;
      topt.max_fanout = fanout;
      topt.min_fanout = std::max<size_t>(2, fanout * 2 / 5);
      topt.split = rng.Bernoulli(0.5) ? RTreeSplit::kLinear
                                      : RTreeSplit::kQuadratic;
      RTree<2> tree(topt);
      for (const auto& e : entries) tree.Insert(e.id, e.point);
      tree.CheckInvariants();
      check(tree, "rtree");
    } else if (tree_kind == 1) {
      RStarOptions topt;
      topt.max_fanout = fanout;
      topt.min_fanout = std::max<size_t>(2, fanout * 2 / 5);
      topt.forced_reinsert = !rng.Bernoulli(0.2);
      RStarTree<2> tree(topt);
      for (const auto& e : entries) tree.Insert(e.id, e.point);
      tree.CheckInvariants();
      check(tree, "rstar");
    } else {
      MTreeOptions topt;
      topt.max_fanout = fanout;
      topt.min_fanout = 2;
      topt.promotion = rng.Bernoulli(0.5) ? MTreePromotion::kMinMaxRadius
                                          : MTreePromotion::kSampled;
      MTree<2> tree(topt);
      for (const auto& e : entries) tree.Insert(e.id, e.point);
      tree.CheckInvariants();
      check(tree, "mtree");
    }

    // EGO cross-check on a quarter of the trials.
    if (trial % 4 == 0) {
      EgoOptions ego;
      ego.epsilon = eps;
      ego.leaf_size = 2 + rng.UniformInt(uint64_t{60});
      MemorySink sink(IdWidthFor(entries.size()));
      CompactEgoJoin(entries, ego, &sink);
      const auto report = CompareLinkSets(ExpandSelfJoin(sink), reference);
      ASSERT_TRUE(report.lossless()) << "ego trial=" << trial << " eps=" << eps
                                     << ": " << report.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinFuzzTest, testing::Range(0, 8));

class TreeFuzzTest : public testing::TestWithParam<int> {};

TEST_P(TreeFuzzTest, RandomInsertRemoveInterleavings) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  RTreeOptions rt_options;
  rt_options.max_fanout = 4 + rng.UniformInt(uint64_t{12});
  rt_options.min_fanout = 2;
  RTree<2> rtree(rt_options);
  RStarOptions rs_options;
  rs_options.max_fanout = rt_options.max_fanout;
  rs_options.min_fanout = 2;
  RStarTree<2> rstar(rs_options);

  // Reference multiset of live entries.
  std::map<std::pair<PointId, std::pair<double, double>>, int> reference;
  std::vector<Entry<2>> live;
  PointId next_id = 0;

  for (int op = 0; op < 1200; ++op) {
    const bool insert = live.empty() || rng.Bernoulli(0.6);
    if (insert) {
      Entry<2> e{next_id++,
                 Point2{{rng.UniformDouble(), rng.UniformDouble()}}};
      if (rng.Bernoulli(0.1) && !live.empty()) {
        e.point = live[rng.UniformInt(live.size())].point;  // duplicate point
      }
      rtree.Insert(e.id, e.point);
      rstar.Insert(e.id, e.point);
      live.push_back(e);
    } else {
      const size_t pick = rng.UniformInt(live.size());
      const Entry<2> e = live[pick];
      ASSERT_TRUE(rtree.Remove(e.id, e.point)) << "op " << op;
      ASSERT_TRUE(rstar.Remove(e.id, e.point)) << "op " << op;
      live[pick] = live.back();
      live.pop_back();
    }
    if (op % 149 == 0) {
      rtree.CheckInvariants();
      rstar.CheckInvariants();
    }
  }
  rtree.CheckInvariants();
  rstar.CheckInvariants();
  EXPECT_EQ(rtree.size(), live.size());
  EXPECT_EQ(rstar.size(), live.size());
  for (const auto& e : live) {
    EXPECT_TRUE(rtree.Contains(e.id, e.point));
    EXPECT_TRUE(rstar.Contains(e.id, e.point));
  }

  // The surviving content joins correctly.
  JoinOptions options;
  options.epsilon = 0.08;
  MemorySink sink(IdWidthFor(next_id));
  CompactSimilarityJoin(rstar, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(live, options.epsilon))
                  .lossless());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzzTest, testing::Range(0, 6));

}  // namespace
}  // namespace csj

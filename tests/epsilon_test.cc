#include <gtest/gtest.h>

#include "analysis/epsilon.h"
#include "core/brute.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/mtree.h"
#include "index/rstar_tree.h"

namespace csj {
namespace {

TEST(EpsilonTest, TooFewPointsReturnsZero) {
  RStarTree<2> tree;
  std::vector<Entry<2>> entries = {{0, Point2{{0.1, 0.1}}}};
  tree.Insert(0, entries[0].point);
  const auto suggestion = SuggestEpsilon(tree, entries, 3);
  EXPECT_EQ(suggestion.epsilon, 0.0);
  EXPECT_EQ(suggestion.sample_size, 0u);
}

TEST(EpsilonTest, GridHasKnownKDistances) {
  // A 20x20 grid with spacing 0.05: the 1-NN distance is exactly 0.05 for
  // every point, so any percentile suggests 0.05.
  RStarTree<2> tree;
  std::vector<Entry<2>> entries;
  PointId id = 0;
  for (int x = 0; x < 20; ++x) {
    for (int y = 0; y < 20; ++y) {
      const Entry<2> e{id++, Point2{{x * 0.05, y * 0.05}}};
      entries.push_back(e);
      tree.Insert(e.id, e.point);
    }
  }
  const auto suggestion = SuggestEpsilon(tree, entries, 1, 0.5, 400);
  EXPECT_NEAR(suggestion.epsilon, 0.05, 1e-9);
  EXPECT_NEAR(suggestion.median_kdist, 0.05, 1e-9);
}

TEST(EpsilonTest, SuggestionYieldsRoughlyKPartners) {
  // On uniform data, joining at the suggested eps should give at least k
  // partners to about `percentile` of the points.
  const auto entries = ToEntries(GenerateUniform<2>(2000, 5));
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const size_t k = 4;
  const auto suggestion = SuggestEpsilon(tree, entries, k, 0.5);
  ASSERT_GT(suggestion.epsilon, 0.0);

  size_t with_k_partners = 0;
  for (const auto& e : entries) {
    if (tree.RangeCount(e.point, suggestion.epsilon) >= k + 1) {
      ++with_k_partners;
    }
  }
  const double share = static_cast<double>(with_k_partners) /
                       static_cast<double>(entries.size());
  EXPECT_GT(share, 0.30);
  EXPECT_LT(share, 0.75);
}

TEST(EpsilonTest, HigherPercentileSuggestsLargerEps) {
  const auto entries = ToEntries(GenerateGaussianClusters<2>(1500, 5, 0.03, 9));
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const auto median = SuggestEpsilon(tree, entries, 3, 0.5);
  const auto p90 = SuggestEpsilon(tree, entries, 3, 0.9);
  EXPECT_GT(p90.epsilon, median.epsilon);
  EXPECT_DOUBLE_EQ(p90.epsilon, median.p90_kdist);
}

TEST(EpsilonTest, WorksOnMTree) {
  const auto entries = ToEntries(GenerateUniform<2>(800, 13));
  MTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  const auto suggestion = SuggestEpsilon(tree, entries, 2);
  EXPECT_GT(suggestion.epsilon, 0.0);
  EXPECT_GT(suggestion.sample_size, 100u);
}

}  // namespace
}  // namespace csj

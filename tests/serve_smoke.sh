#!/usr/bin/env bash
# End-to-end smoke test for the csj_serve daemon.
#
# Drives the *real binaries* through the serving lifecycle the in-process
# tests cannot reach: daemon start-up, concurrent scripted clients, a
# mid-stream disconnect (`query | head`), per-query deadline and budget
# exits, then SIGTERM — which must drain in-flight queries, print the drain
# line, exit 0, and leave no socket file or conversion temp files behind.
# Usage:
#
#   serve_smoke.sh /path/to/csj_tool /path/to/csj_serve
set -u

TOOL=$1
SERVE=$2
WORK=$(mktemp -d "${TMPDIR:-/tmp}/csj_serve_smoke.XXXXXX")
trap '{ [ -n "$SERVER_PID" ] && kill "$SERVER_PID"; rm -rf "$WORK"; } 2>/dev/null || true' EXIT
cd "$WORK"
SERVER_PID=

fail() { echo "FAIL: $*" >&2; exit 1; }

"$TOOL" generate --kind clusters --n 20000 --seed 11 --out pts.txt \
  >/dev/null || fail "generate"

# References the served responses must match byte-for-byte.
"$TOOL" join --points pts.txt --algo csj --eps 0.02 --out ref_csj.txt \
  --output-format text >/dev/null || fail "reference csj join"
"$TOOL" join --points pts.txt --algo ssj --eps 0.02 --out ref_ssj.txt \
  --output-format text >/dev/null || fail "reference ssj join"
"$TOOL" join --points pts.txt --algo csj --eps 0.02 --out ref_csj.bin \
  --output-format binary >/dev/null || fail "reference binary join"

# --- Daemon start-up --------------------------------------------------------
"$SERVE" serve --datasets pts=pts.txt --socket csj.sock --workers 4 \
  > serve.log 2>&1 &
SERVER_PID=$!
for _ in $(seq 200); do
  [ -S csj.sock ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat serve.log >&2; fail "daemon died on start-up"; }
  sleep 0.05
done
[ -S csj.sock ] || fail "daemon never bound its socket"

query() { "$SERVE" query --socket csj.sock "$@"; }

# --- Concurrent clients, byte-identical responses ---------------------------
query --dataset pts --algo csj --eps 0.02 --out got1.txt 2>/dev/null &
P1=$!
query --dataset pts --algo ssj --eps 0.02 --out got2.txt 2>/dev/null &
P2=$!
query --dataset pts --algo csj --eps 0.02 --output-format binary \
  --out got3.bin 2>/dev/null &
P3=$!
query --dataset pts --algo csj --eps 0.02 --out got4.txt 2>/dev/null &
P4=$!
wait "$P1" || fail "concurrent query 1 failed"
wait "$P2" || fail "concurrent query 2 failed"
wait "$P3" || fail "concurrent query 3 failed"
wait "$P4" || fail "concurrent query 4 failed"
cmp -s ref_csj.txt got1.txt || fail "served csj text differs from one-shot"
cmp -s ref_ssj.txt got2.txt || fail "served ssj text differs from one-shot"
cmp -s ref_csj.bin got3.bin || fail "served binary differs from one-shot"
cmp -s ref_csj.txt got4.txt || fail "served csj text (2nd client) differs"

# --- ping / list ------------------------------------------------------------
query --op ping | grep -q '"ok":true' || fail "ping"
query --op list | grep -q '"pts"' || fail "list does not mention the dataset"

# --- Mid-stream disconnect: | head cancels just that query ------------------
query --dataset pts --algo csj --eps 0.05 2>/dev/null | head -c 4096 >/dev/null
DISCONNECT_CODE=${PIPESTATUS[0]}
[ "$DISCONNECT_CODE" -eq 3 ] \
  || fail "mid-stream disconnect: exit=$DISCONNECT_CODE (want 3)"

# --- Per-query deadline and budget: governance exit codes -------------------
query --dataset pts --algo csj --eps 0.05 --deadline-ms 1 >/dev/null 2>&1
DEADLINE_CODE=$?
query --dataset pts --algo csj --eps 0.02 --mem-budget 4096 >/dev/null 2>&1
BUDGET_CODE=$?
[ "$DEADLINE_CODE" -eq 4 ] || fail "deadline query: exit=$DEADLINE_CODE (want 4)"
[ "$BUDGET_CODE" -eq 5 ] || fail "budget query: exit=$BUDGET_CODE (want 5)"

# A governed neighbor must not have poisoned the shared tree: a normal query
# still returns the reference bytes.
query --dataset pts --algo csj --eps 0.02 --out got5.txt 2>/dev/null \
  || fail "query after governed neighbors"
cmp -s ref_csj.txt got5.txt || fail "post-governance response differs"

# --- SIGTERM drains an in-flight query, then the daemon exits 0 -------------
query --dataset pts --algo csj --eps 0.02 --out got6.txt 2>/dev/null &
INFLIGHT=$!
sleep 0.05
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_CODE=$?
SERVER_PID=
[ "$SERVER_CODE" -eq 0 ] || fail "daemon exit=$SERVER_CODE after SIGTERM (want 0)"
grep -q "drained:" serve.log || fail "daemon did not report a drain"
if wait "$INFLIGHT"; then
  cmp -s ref_csj.txt got6.txt || fail "drained in-flight response differs"
else
  # The query may have raced ahead of the accept; losing it to the drain
  # would be a real failure only if it was admitted, which `served` covers.
  grep -q "served" serve.log || fail "in-flight query lost during drain"
fi

# --- Nothing left behind ----------------------------------------------------
[ -S csj.sock ] && fail "socket file survived the drain"
LEAKED=$(ls pts.txt.paged.tmp.* 2>/dev/null || true)
[ -z "$LEAKED" ] && LEAKED=$(ls ./*.paged.tmp.* 2>/dev/null || true)
[ -z "$LEAKED" ] || fail "leaked conversion temp files: $LEAKED"

echo "OK: concurrent serving, disconnect/deadline/budget isolation, SIGTERM drain"

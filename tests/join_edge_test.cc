#include <gtest/gtest.h>

#include <vector>

#include "core/brute.h"
#include "core/ego.h"
#include "core/expand.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/generators.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"

namespace csj {
namespace {

std::vector<Entry<2>> UniformEntries(size_t n, uint64_t seed) {
  auto points = GenerateUniform<2>(n, seed);
  std::vector<Entry<2>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

TEST(JoinEdgeTest, EpsilonLargerThanSpaceMakesOneGroup) {
  // Every pair qualifies: the compact join should collapse the whole tree
  // into a single group at the root (early stop at the top).
  const auto entries = UniformEntries(500, 3);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 2.0;  // > sqrt(2), the diameter of the unit square
  MemorySink sink(3);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.links, 0u);
  EXPECT_EQ(sink.groups()[0].size(), 500u);
  EXPECT_EQ(stats.ImpliedLinkUpperBound(), 500u * 499u / 2u);
}

TEST(JoinEdgeTest, TinyEpsilonEmitsNothingOnSeparatedPoints) {
  // A grid with spacing 0.1 and eps = 1e-9: nothing qualifies.
  RStarTree<2> tree;
  PointId id = 0;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      tree.Insert(id++, Point2{{x * 0.1, y * 0.1}});
    }
  }
  JoinOptions options;
  options.epsilon = 1e-9;
  MemorySink sink(3);
  const JoinStats stats = StandardSimilarityJoin(tree, options, &sink);
  EXPECT_EQ(stats.links + stats.groups, 0u);
}

TEST(JoinEdgeTest, GridSpacingExactlyEpsilon) {
  // Grid spacing == eps: each point links to its 4-neighbors exactly
  // (closed predicate), diagonals (eps*sqrt2) do not qualify.
  std::vector<Entry<2>> entries;
  RStarTree<2> tree;
  PointId id = 0;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      // 0.125 is a dyadic rational: adjacent distances are *exactly* eps.
      const Entry<2> e{id++, Point2{{x * 0.125, y * 0.125}}};
      entries.push_back(e);
      tree.Insert(e.id, e.point);
    }
  }
  JoinOptions options;
  options.epsilon = 0.125;
  MemorySink sink(2);
  StandardSimilarityJoin(tree, options, &sink);
  // 8x8 grid: horizontal links 7*8, vertical 8*7 = 112 total.
  EXPECT_EQ(sink.num_links(), 112u);
  EXPECT_EQ(ExpandSelfJoin(sink), BruteForceSelfJoin(entries, 0.125));
}

TEST(JoinEdgeTest, AllPointsIdenticalCollapses) {
  RStarTree<2> tree;
  std::vector<Entry<2>> entries;
  for (PointId i = 0; i < 300; ++i) {
    entries.push_back({i, Point2{{0.42, 0.42}}});
    tree.Insert(i, entries.back().point);
  }
  JoinOptions options;
  options.epsilon = 1e-6;
  MemorySink sink(3);
  const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
  // Lossless and compact: far fewer output units than the 44850 links.
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
  EXPECT_LT(stats.groups + stats.links, 50u);
}

TEST(JoinEdgeTest, TinyFanoutDeepTreeLossless) {
  RStarOptions tree_options;
  tree_options.max_fanout = 4;
  tree_options.min_fanout = 2;
  RStarTree<2> tree(tree_options);
  const auto entries = UniformEntries(700, 17);
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  EXPECT_GE(tree.Height(), 4);  // genuinely deep
  JoinOptions options;
  options.epsilon = 0.07;
  MemorySink sink(3);
  CompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(JoinEdgeTest, OneDimensionalJoin) {
  RStarTree<1> tree;
  std::vector<Entry<1>> entries;
  Rng rng(5);
  for (PointId i = 0; i < 400; ++i) {
    entries.push_back({i, Point<1>{{rng.UniformDouble()}}});
    tree.Insert(i, entries.back().point);
  }
  JoinOptions options;
  options.epsilon = 0.01;
  MemorySink sink(3);
  NaiveCompactJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(entries, options.epsilon))
                  .lossless());
}

TEST(JoinEdgeTest, EgoAndTreeJoinAgreeExactly) {
  // Two completely different join engines must produce the same link set.
  const auto entries = UniformEntries(600, 23);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (double eps : {0.01, 0.05, 0.2}) {
    JoinOptions tree_options;
    tree_options.epsilon = eps;
    MemorySink tree_sink(3);
    StandardSimilarityJoin(tree, tree_options, &tree_sink);

    EgoOptions ego_options;
    ego_options.epsilon = eps;
    MemorySink ego_sink(3);
    EgoSimilarityJoin(entries, ego_options, &ego_sink);

    EXPECT_EQ(ExpandSelfJoin(tree_sink), ExpandSelfJoin(ego_sink))
        << "eps=" << eps;
  }
}

TEST(JoinEdgeTest, StatsImpliedLinksCoverBruteForce) {
  // The implied-link count (with group overlap double-counting) is always
  // >= the number of distinct links.
  const auto entries = UniformEntries(400, 29);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  for (double eps : {0.02, 0.1, 0.3}) {
    JoinOptions options;
    options.epsilon = eps;
    MemorySink sink(3);
    const JoinStats stats = CompactSimilarityJoin(tree, options, &sink);
    EXPECT_GE(stats.ImpliedLinkUpperBound(),
              BruteForceSelfJoin(entries, eps).size())
        << "eps=" << eps;
  }
}

TEST(JoinEdgeTest, NcsjReducesToSsjWhenNoNodeFits) {
  // If every node's diameter exceeds eps, N-CSJ's output equals SSJ's
  // exactly (the paper: "otherwise, N-CSJ will reduce to SSJ").
  const auto entries = UniformEntries(800, 31);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  double min_leaf_diag = 1e9;
  tree.ForEachNode([&](NodeId n) {
    min_leaf_diag = std::min(min_leaf_diag, tree.MaxDiameter(n));
  });
  const double eps = min_leaf_diag * 0.5;  // below every node's diameter
  JoinOptions options;
  options.epsilon = eps;
  MemorySink ssj(3), ncsj(3);
  StandardSimilarityJoin(tree, options, &ssj);
  const JoinStats stats = NaiveCompactJoin(tree, options, &ncsj);
  EXPECT_EQ(stats.early_stops, 0u);
  EXPECT_EQ(ssj.num_links(), ncsj.num_links());
  EXPECT_EQ(ssj.bytes(), ncsj.bytes());
}

TEST(JoinEdgeTest, RepeatedJoinsOnSameTreeAreIdentical) {
  const auto entries = UniformEntries(500, 37);
  RTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  JoinOptions options;
  options.epsilon = 0.06;
  MemorySink first(3), second(3);
  CompactSimilarityJoin(tree, options, &first);
  CompactSimilarityJoin(tree, options, &second);
  EXPECT_EQ(first.links(), second.links());
  EXPECT_EQ(first.groups(), second.groups());
}

TEST(JoinEdgeTest, JoinAfterRemovalsIsLossless) {
  auto entries = UniformEntries(600, 41);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  // Remove a third of the points, keeping the survivors list in sync.
  std::vector<Entry<2>> survivors;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(tree.Remove(entries[i].id, entries[i].point));
    } else {
      survivors.push_back(entries[i]);
    }
  }
  tree.CheckInvariants();
  JoinOptions options;
  options.epsilon = 0.05;
  MemorySink sink(3);
  CompactSimilarityJoin(tree, options, &sink);
  EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                              BruteForceSelfJoin(survivors, options.epsilon))
                  .lossless());
}


TEST(JoinEdgeTest, FourDimensionalJoinLossless) {
  // Nothing in the stack is specialized below D=1 or above D=3; verify a
  // 4-D tree join end to end.
  const auto points = GenerateGaussianClusters<4>(400, 5, 0.05, 47);
  std::vector<Entry<4>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<4>{static_cast<PointId>(i), points[i]};
  }
  RStarTree<4> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  tree.CheckInvariants();
  for (double eps : {0.1, 0.3}) {
    JoinOptions options;
    options.epsilon = eps;
    MemorySink sink(3);
    CompactSimilarityJoin(tree, options, &sink);
    EXPECT_TRUE(CompareLinkSets(ExpandSelfJoin(sink),
                                BruteForceSelfJoin(entries, eps))
                    .lossless())
        << "eps=" << eps;
  }
}

TEST(JoinEdgeTest, SpatialJoinWithSelfIsSupersetOfSelfJoinCrossPairs) {
  // Joining a dataset against itself through the dual-tree API yields all
  // self-join links (as cross pairs between the two id-offset copies).
  const auto set_a = UniformEntries(200, 43);
  std::vector<Entry<2>> set_b;
  for (const auto& e : set_a) set_b.push_back({e.id + 1000, e.point});
  RStarTree<2> tree_a, tree_b;
  for (const auto& e : set_a) tree_a.Insert(e.id, e.point);
  for (const auto& e : set_b) tree_b.Insert(e.id, e.point);

  JoinOptions options;
  options.epsilon = 0.05;
  MemorySink sink(4);
  CompactSpatialJoin(tree_a, tree_b, options, &sink);
  const auto cross =
      ExpandSpatialJoin(sink, [](PointId id) { return id < 1000; });
  // Each self-join link (i, j) appears as both (i, j+1000) and (j, i+1000);
  // each point also matches its own copy (i, i+1000).
  const auto self_links = BruteForceSelfJoin(set_a, options.epsilon);
  EXPECT_EQ(cross.size(), 2 * self_links.size() + set_a.size());
}

}  // namespace
}  // namespace csj

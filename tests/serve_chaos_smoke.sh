#!/usr/bin/env bash
# Chaos soak for the fault-tolerant serving lifecycle.
#
# One daemon under injected faults (reload validation failures, dropped
# accepts, control-plane write faults) serves N concurrent keep-alive
# clients while an operator loop hammers hot reloads. The invariants:
#
#   * every query response either finishes byte-identical to the one-shot
#     reference or fails with a clean error (a retried client recovers; a
#     partial out file is never left behind),
#   * a failed reload leaves the old epoch serving,
#   * once the load stops, the registry's live-epoch gauge returns to its
#     baseline (no epoch leaks),
#   * SIGTERM mid-reload drains and exits 0, leaving no socket or
#     conversion temp files.
#
# Usage:
#
#   serve_chaos_smoke.sh /path/to/csj_tool /path/to/csj_serve
#
# CSJ_SOAK=1 lengthens the run (more clients, more requests, more reloads)
# for a nightly-style soak; the default is sized for CI.
set -u

TOOL=$1
SERVE=$2
WORK=$(mktemp -d "${TMPDIR:-/tmp}/csj_serve_chaos.XXXXXX")
trap '{ [ -n "$SERVER_PID" ] && kill "$SERVER_PID"; rm -rf "$WORK"; } 2>/dev/null || true' EXIT
cd "$WORK"
SERVER_PID=

fail() { echo "FAIL: $*" >&2; exit 1; }

if [ "${CSJ_SOAK:-0}" = "1" ]; then
  CLIENTS=4 REPEAT=24 RELOADS=60 EPS=0.02
else
  CLIENTS=3 REPEAT=8 RELOADS=12 EPS=0.02
fi

"$TOOL" generate --kind clusters --n 5000 --seed 23 --out pts.txt \
  >/dev/null || fail "generate"
# A second, byte-identical source file: reload churn swaps epochs without
# changing the reference bytes, so every surviving response stays comparable.
cp pts.txt pts_b.txt

"$TOOL" join --points pts.txt --algo csj --eps "$EPS" --out ref.txt \
  --output-format text >/dev/null || fail "reference join"

# --- Daemon under injected faults -------------------------------------------
# The failpoint env is set for the server only — the clients must stay
# healthy so a dropped response is unambiguously the server's doing.
# max-requests-per-conn is small so keep-alive sessions rotate through
# admission and can never pin all workers while the churn loop waits.
CSJ_FAILPOINTS="serve.reload_validate=prob:0.4:7;serve.accept=prob:0.05:11;serve.write=prob:0.02:13" \
  "$SERVE" serve --datasets pts=pts.txt --socket csj.sock --workers 8 \
  --max-requests-per-conn 8 > serve.log 2>&1 &
SERVER_PID=$!
for _ in $(seq 200); do
  [ -S csj.sock ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat serve.log >&2; fail "daemon died on start-up"; }
  sleep 0.05
done
[ -S csj.sock ] || fail "daemon never bound its socket"

query() { "$SERVE" query --socket csj.sock "$@"; }

# Baseline for the leak check: one dataset, one live epoch.
BASELINE=$(query --op list --retries 8 | sed -n 's/.*"live_epochs":\([0-9]*\).*/\1/p')
[ -n "$BASELINE" ] || fail "list did not report live_epochs"

# --- Concurrent keep-alive clients vs continuous reloads --------------------
CLIENT_PIDS=()
for i in $(seq "$CLIENTS"); do
  query --dataset pts --algo csj --eps "$EPS" --repeat "$REPEAT" \
    --retries 8 --retry-max-elapsed-ms 30000 --out "out_$i.txt" \
    > /dev/null 2> "client_$i.log" &
  CLIENT_PIDS+=($!)
done

RELOAD_OK=0
RELOAD_FAIL=0
SRC=pts_b.txt
for _ in $(seq "$RELOADS"); do
  if query --op reload --dataset pts --path "$SRC" --retries 8 \
       >/dev/null 2>&1; then
    RELOAD_OK=$((RELOAD_OK + 1))
  else
    # Injected validation fault: the old epoch must still be serving, which
    # the concurrent clients are busy proving.
    RELOAD_FAIL=$((RELOAD_FAIL + 1))
  fi
  [ "$SRC" = pts_b.txt ] && SRC=pts.txt || SRC=pts_b.txt
done

for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || true  # a retries-exhausted client is a clean error, not a bug
done

# Every response file that exists must be byte-identical to the reference —
# partial or damaged responses must have been deleted by the client.
SURVIVORS=0
for f in out_*.txt*; do
  [ -e "$f" ] || continue
  cmp -s ref.txt "$f" || fail "response $f differs from the one-shot reference"
  SURVIVORS=$((SURVIVORS + 1))
done
[ "$SURVIVORS" -ge 1 ] || { cat client_*.log >&2; fail "no response survived the chaos"; }

# --- No epoch leaks: the gauge returns to baseline once the load stops ------
LIVE=
for _ in $(seq 100); do
  LIVE=$(query --op list --retries 8 2>/dev/null \
           | sed -n 's/.*"live_epochs":\([0-9]*\).*/\1/p')
  [ "$LIVE" = "$BASELINE" ] && break
  sleep 0.1
done
[ "$LIVE" = "$BASELINE" ] \
  || fail "live_epochs=$LIVE after the load stopped (baseline $BASELINE): epoch leak"

# A failed reload must not have wedged the dataset: one more query matches.
query --dataset pts --algo csj --eps "$EPS" --retries 8 --out final.txt \
  2>/dev/null || fail "query after reload churn"
cmp -s ref.txt final.txt || fail "post-churn response differs"

# --- SIGTERM mid-reload: drain, exit 0, nothing left behind -----------------
( while :; do
    query --op reload --dataset pts --path pts_b.txt >/dev/null 2>&1 || true
  done ) &
CHURN_PID=$!
query --dataset pts --algo csj --eps "$EPS" --out drain.txt 2>/dev/null &
INFLIGHT=$!
sleep 0.2
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_CODE=$?
SERVER_PID=
kill "$CHURN_PID" 2>/dev/null; wait "$CHURN_PID" 2>/dev/null
[ "$SERVER_CODE" -eq 0 ] || fail "daemon exit=$SERVER_CODE after SIGTERM (want 0)"
grep -q "drained:" serve.log || fail "daemon did not report a drain"
if wait "$INFLIGHT" 2>/dev/null; then
  cmp -s ref.txt drain.txt || fail "drained in-flight response differs"
fi

[ -S csj.sock ] && fail "socket file survived the drain"
LEAKED=$(ls ./*.paged.tmp.* 2>/dev/null || true)
[ -z "$LEAKED" ] || fail "leaked conversion temp files: $LEAKED"

echo "OK: $CLIENTS keep-alive clients x $REPEAT requests survived" \
  "$RELOAD_OK reloads + $RELOAD_FAIL injected reload faults" \
  "($SURVIVORS byte-identical responses), no epoch leaks, clean drain"

/// \file
/// Figure 4: the four datasets. The original figure is a scatter plot; this
/// binary prints per-dataset shape statistics (the properties the joins
/// depend on) and, with --csv DIR, writes point samples as
/// gnuplot/matplotlib-ready files so the scatter plots can be regenerated:
///   plot "fig4_MGCounty.csv" using 1:2 with dots
///
/// Statistics reported: bounding box, 10x10 density histogram spread
/// (max/mean cell count, empty cells), mean nearest-neighbor distance of a
/// sample, and a box-counting fractal-dimension estimate — road data should
/// land between 1 (curves) and 2 (area-filling), Sierpinski3D near 2.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "data/generators.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

template <int D>
void Describe(const std::string& name, const std::vector<Entry<D>>& entries,
              const BenchArgs& args, Table* table) {
  Box<D> bounds;
  for (const auto& e : entries) bounds.Extend(e.point);

  // Density histogram on a 10^D-cell grid (first two dims for D > 2).
  constexpr int kGrid = 10;
  std::vector<int> histogram(kGrid * kGrid, 0);
  for (const auto& e : entries) {
    const int x = std::min(kGrid - 1, static_cast<int>(e.point[0] * kGrid));
    const int y = std::min(kGrid - 1, static_cast<int>(e.point[1] * kGrid));
    ++histogram[x * kGrid + y];
  }
  int max_cell = 0, empty_cells = 0;
  for (int c : histogram) {
    max_cell = std::max(max_cell, c);
    empty_cells += c == 0;
  }
  const double mean_cell =
      static_cast<double>(entries.size()) / (kGrid * kGrid);

  // Mean nearest-neighbor distance over a sample, via the index.
  RStarTree<D> tree;
  PackStr(&tree, entries);
  double nn_sum = 0.0;
  const size_t sample = std::min<size_t>(500, entries.size());
  const size_t stride = std::max<size_t>(1, entries.size() / sample);
  size_t sampled = 0;
  for (size_t i = 0; i < entries.size(); i += stride) {
    // Grow the radius until a neighbor besides the point itself shows up.
    double radius = 1e-4;
    while (tree.RangeCount(entries[i].point, radius) < 2 && radius < 2.0) {
      radius *= 2.0;
    }
    // One bisection pass for a tighter estimate.
    nn_sum += radius;
    ++sampled;
  }
  const double mean_nn = nn_sum / static_cast<double>(sampled);

  // Box-counting dimension from grids 16 and 32 (first two dims).
  auto count_cells = [&](int grid) {
    std::set<uint64_t> cells;
    for (const auto& e : entries) {
      uint64_t key = 0;
      for (int d = 0; d < std::min(D, 3); ++d) {
        const int c =
            std::min(grid - 1, static_cast<int>(e.point[d] * grid));
        key = key * 1024 + static_cast<uint64_t>(c);
      }
      cells.insert(key);
    }
    return static_cast<double>(cells.size());
  };
  const double dim = std::log2(count_cells(32) / count_cells(16));

  table->AddRow({name, WithThousands(entries.size()), StrFormat("%dD", D),
                 StrFormat("%.0fx", max_cell / mean_cell),
                 StrFormat("%d%%", empty_cells),
                 StrFormat("%.2g", mean_nn), StrFormat("%.2f", dim)});

  if (!args.csv_dir.empty()) {
    Table sample_table(name, {"x", "y"});
    const size_t plot_stride = std::max<size_t>(1, entries.size() / 20000);
    for (size_t i = 0; i < entries.size(); i += plot_stride) {
      sample_table.AddRow({StrFormat("%.6f", entries[i].point[0]),
                           StrFormat("%.6f", entries[i].point[1])});
    }
    (void)sample_table.WriteCsv(args.csv_dir + "/fig4_" + name + ".csv");
  }
}

void Main(const BenchArgs& args) {
  Table table("Figure 4 — dataset shapes",
              {"dataset", "points", "dims", "peak density", "empty cells",
               "~NN dist", "fractal dim"});
  {
    const auto mg = MakeMgCounty();
    Describe(mg.name, mg.entries, args, &table);
  }
  {
    const auto lb = MakeLbCounty();
    Describe(lb.name, lb.entries, args, &table);
  }
  {
    const auto sier = MakeSierpinski3DDataset(100000);
    Describe(sier.name, sier.entries, args, &table);
  }
  {
    const auto pnw = MakePacificNw(args.full ? 1.0 : 0.1);
    Describe(pnw.name, pnw.entries, args, &table);
  }
  EmitTable(table, args, "fig4_datasets");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

/// \file
/// Serving-path overhead and concurrency scaling for csj_serve's core.
///
/// The daemon's pitch is amortization: load the index once, answer many
/// queries. This bench quantifies what one served query costs over the
/// in-process join it wraps (protocol framing + socket copy + governance),
/// and how throughput scales when N clients hammer one shared paged tree.
/// Two lifecycle tables ride along: keep-alive vs single-shot req/s (what a
/// session saves over connect-per-request) and hot reload under load (ten
/// back-to-back epoch swaps with a query hammer running — the failed-query
/// column must read zero). In --smoke mode it exits non-zero if any served
/// response fails or if the concurrent clients disagree on the payload
/// size — the byte-level identity claim is serve_test's job; this guards
/// the bench's own math.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/tree_io.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace csj::bench {
namespace {

int ConnectUnix(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One served query on an existing keep-alive session; returns payload
/// bytes, or 0 on any failure (including the server rotating the session).
uint64_t ServedQueryOnSession(int fd, serve::LineReader* reader,
                              const std::string& request) {
  if (!serve::WriteAll(fd, request).ok()) return 0;
  uint64_t bytes = 0;
  std::string header, trailer;
  if (reader->ReadLine(&header).ok() &&
      header.find("\"ok\":true") != std::string::npos) {
    const Status streamed = serve::StreamFramedPayload(
        reader, OutputFormat::kText,
        [&bytes](const char*, size_t size) {
          bytes += size;
          return Status::OK();
        },
        &trailer);
    if (!streamed.ok() ||
        trailer.find("\"code\":\"OK\"") == std::string::npos) {
      bytes = 0;
    }
  }
  return bytes;
}

/// One full served query over a fresh connection; returns payload bytes, or
/// 0 on any failure.
uint64_t ServedQuery(const std::string& socket_path,
                     const std::string& request) {
  const int fd = ConnectUnix(socket_path);
  if (fd < 0) return 0;
  serve::LineReader reader(fd, /*timeout_ms=*/60000);
  const uint64_t bytes = ServedQueryOnSession(fd, &reader, request);
  ::close(fd);
  return bytes;
}

/// One single-line round trip (admin ops); true iff the server said ok.
bool AdminRoundTrip(const std::string& socket_path,
                    const std::string& request) {
  const int fd = ConnectUnix(socket_path);
  if (fd < 0) return false;
  bool ok = false;
  if (serve::WriteAll(fd, request).ok()) {
    serve::LineReader reader(fd, /*timeout_ms=*/60000);
    std::string line;
    ok = reader.ReadLine(&line).ok() &&
         line.find("\"ok\":true") != std::string::npos;
  }
  ::close(fd);
  return ok;
}

void Main(const BenchArgs& args) {
  const size_t n = args.smoke ? 20'000 : (args.full ? 400'000 : 100'000);
  const double eps = 0.005;
  const int queries = args.smoke ? 8 : 32;

  auto points = GenerateUniform<2>(n, /*seed=*/17);
  std::vector<Entry<2>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = Entry<2>{static_cast<PointId>(i), points[i]};
  }
  RStarTree<2> tree;
  PackStr(&tree, entries);

  char work_template[] = "/tmp/bench_serve.XXXXXX";
  const char* work = ::mkdtemp(work_template);
  if (work == nullptr) {
    std::fprintf(stderr, "FAIL: mkdtemp: %s\n", std::strerror(errno));
    std::exit(1);
  }
  const std::string index_path = std::string(work) + "/pts.csjt";
  const std::string socket_path = std::string(work) + "/csj.sock";
  if (!SaveTree(tree, index_path).ok()) {
    std::fprintf(stderr, "FAIL: SaveTree\n");
    std::exit(1);
  }

  serve::DatasetRegistry registry;
  serve::DatasetSpec spec;
  spec.name = "pts";
  spec.path = index_path;
  if (!registry.Load(spec).ok()) {
    std::fprintf(stderr, "FAIL: registry load\n");
    std::exit(1);
  }
  serve::ServerOptions options;
  options.unix_socket_path = socket_path;
  options.workers = 8;
  options.max_pending = 64;
  serve::Server server(&registry, options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "FAIL: server start\n");
    std::exit(1);
  }

  const std::string request = StrFormat(
      "{\"op\":\"join\",\"dataset\":\"pts\",\"algo\":\"csj\",\"eps\":%g}\n",
      eps);

  // Baseline: the same join in-process, no protocol, no socket.
  BenchRecorder::Get().SetContext("direct");
  JoinOptions join_options;
  join_options.epsilon = eps;
  join_options.window_size = 10;
  CountingSink counting(IdWidthFor(n));
  const JoinStats direct_stats =
      RunSelfJoin(JoinAlgorithm::kCSJ, tree, join_options, &counting);
  BenchRecorder::Get().RecordStats(direct_stats);
  const double direct_seconds = direct_stats.elapsed_seconds;

  // Warm the serving path (first query pays cold block-cache faults).
  const uint64_t expected_bytes = ServedQuery(socket_path, request);
  if (expected_bytes == 0) {
    std::fprintf(stderr, "FAIL: warm-up served query failed\n");
    std::exit(1);
  }

  Table table(StrFormat("csj_serve: CSJ(10), eps=%g, %s uniform points", eps,
                        WithThousands(n).c_str()),
              {"clients", "queries", "wall", "per-query", "vs direct"});
  bool failed = false;
  for (const int clients : {1, 2, 4, 8}) {
    WallTimer wall;
    std::vector<std::thread> threads;
    std::vector<uint64_t> ok_count(static_cast<size_t>(clients), 0);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < queries; ++q) {
          if (ServedQuery(socket_path, request) == expected_bytes) {
            ++ok_count[static_cast<size_t>(c)];
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = wall.ElapsedSeconds();
    uint64_t ok_total = 0;
    for (const uint64_t ok : ok_count) ok_total += ok;
    const uint64_t total = static_cast<uint64_t>(clients) *
                           static_cast<uint64_t>(queries);
    if (ok_total != total) failed = true;
    const double per_query = seconds / static_cast<double>(total);
    table.AddRow({StrFormat("%d", clients), StrFormat("%llu (%llu ok)",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(ok_total)),
                  HumanDuration(seconds), HumanDuration(per_query),
                  StrFormat("%.2fx", per_query / direct_seconds)});
  }
  EmitTable(table, args, "serve_scaling");

  // Keep-alive amortization: the same query stream pays connect + admission
  // once per session instead of once per request.
  {
    Table ka(StrFormat("csj_serve keep-alive: CSJ(10), eps=%g, %s uniform "
                       "points, 1 client",
                       eps, WithThousands(n).c_str()),
             {"mode", "queries", "wall", "per-query", "req/s"});
    const int ka_queries = args.smoke ? 8 : 32;
    bool ka_failed = false;
    for (const bool keep_alive : {false, true}) {
      WallTimer wall;
      uint64_t ok_total = 0;
      if (keep_alive) {
        const int fd = ConnectUnix(socket_path);
        if (fd >= 0) {
          serve::LineReader reader(fd, /*timeout_ms=*/60000);
          for (int q = 0; q < ka_queries; ++q) {
            if (ServedQueryOnSession(fd, &reader, request) == expected_bytes) {
              ++ok_total;
            }
          }
          ::close(fd);
        }
      } else {
        for (int q = 0; q < ka_queries; ++q) {
          if (ServedQuery(socket_path, request) == expected_bytes) {
            ++ok_total;
          }
        }
      }
      const double seconds = wall.ElapsedSeconds();
      if (ok_total != static_cast<uint64_t>(ka_queries)) ka_failed = true;
      const double per_query = seconds / static_cast<double>(ka_queries);
      ka.AddRow({keep_alive ? "keep-alive" : "single-shot",
                 StrFormat("%d (%llu ok)", ka_queries,
                           static_cast<unsigned long long>(ok_total)),
                 HumanDuration(seconds), HumanDuration(per_query),
                 StrFormat("%.1f", 1.0 / per_query)});
    }
    EmitTable(ka, args, "serve_keepalive");
    if (args.smoke && ka_failed) {
      std::fprintf(stderr, "FAIL: keep-alive query failed or differed\n");
      std::exit(1);
    }
  }

  // Hot reload under load: back-to-back epoch swaps must not fail a single
  // concurrent query (each query finishes on the epoch it pinned). The
  // hammer session reconnects when the server rotates it — only a query
  // that also fails on a fresh connection counts as failed.
  {
    const int reloads = 10;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> hammer_ok{0};
    std::atomic<uint64_t> hammer_failed{0};
    std::thread hammer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (ServedQuery(socket_path, request) == expected_bytes) {
          hammer_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          hammer_failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    const std::string reload_request = StrFormat(
        "{\"op\":\"reload\",\"dataset\":\"pts\",\"path\":\"%s\"}\n",
        index_path.c_str());
    WallTimer wall;
    int reload_ok = 0;
    for (int r = 0; r < reloads; ++r) {
      if (AdminRoundTrip(socket_path, reload_request)) ++reload_ok;
    }
    const double seconds = wall.ElapsedSeconds();
    stop.store(true, std::memory_order_relaxed);
    hammer.join();
    Table reload_table(
        StrFormat("csj_serve hot reload under load: %s uniform points",
                  WithThousands(n).c_str()),
        {"reloads", "wall", "per-reload", "queries ok", "queries failed"});
    reload_table.AddRow(
        {StrFormat("%d (%d ok)", reloads, reload_ok), HumanDuration(seconds),
         HumanDuration(seconds / reloads),
         StrFormat("%llu",
                   static_cast<unsigned long long>(hammer_ok.load())),
         StrFormat("%llu",
                   static_cast<unsigned long long>(hammer_failed.load()))});
    EmitTable(reload_table, args, "serve_reload_under_load");
    if (args.smoke &&
        (reload_ok != reloads || hammer_failed.load() != 0 ||
         hammer_ok.load() == 0)) {
      std::fprintf(stderr,
                   "FAIL: reload under load: %d/%d reloads ok, %llu queries "
                   "failed\n",
                   reload_ok, reloads,
                   static_cast<unsigned long long>(hammer_failed.load()));
      std::exit(1);
    }
  }

  server.Shutdown();
  ::unlink(index_path.c_str());
  ::rmdir(work);

  if (args.smoke && failed) {
    std::fprintf(stderr,
                 "FAIL: some served responses failed or differed in size\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

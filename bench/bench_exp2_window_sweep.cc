/// \file
/// Experiment 1 / Figure 6: CSJ(g) runtime and output size as a function of
/// the merge-window size g on the MG County data, g in
/// {1,2,3,4,5,10,20,50,100}. The paper's finding: ~20% output reduction by
/// g=10, roughly linear time growth in g, and no additional savings beyond.
///
/// Also reproduces the Section V-B insertion-ordering observation with
/// --orders: on line data the grouping (hence output size) depends on the
/// order links are considered, and the window softens that.

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

void RunWindowSweep(const BenchArgs& args) {
  const auto mg = MakeMgCounty();
  RStarTree<2> tree;
  PackStr(&tree, mg.entries);

  const double eps = 0.1;  // well inside MG County's output-explosion regime
  Table table(StrFormat("Figure 6 — CSJ(g) on MG County, eps=%.2g", eps),
              {"g", "time", "bytes", "groups", "merges", "merge_attempts"});

  JoinOptions options;
  options.epsilon = eps;
  BenchRecorder::Get().SetContext(mg.name);
  for (int g : {1, 2, 3, 4, 5, 10, 20, 50, 100}) {
    options.window_size = g;
    RunResult best;
    for (int r = 0; r < args.runs; ++r) {
      auto sink = MakeSinkOrDie(OutputSpec::Counting(mg.entries.size()));
      const JoinStats stats = CompactSimilarityJoin(tree, options, sink.get());
      if (r == 0 || stats.elapsed_seconds < best.seconds) {
        best.seconds = stats.elapsed_seconds;
        best.stats = stats;
      }
      best.bytes = sink->bytes();
      best.groups = sink->num_groups();
    }
    BenchRecorder::Get().RecordStats(best.stats);
    table.AddRow({StrFormat("%d", g), HumanDuration(best.seconds),
                  WithThousands(best.bytes), WithThousands(best.groups),
                  WithThousands(best.stats.merges),
                  WithThousands(best.stats.merge_attempts)});
  }
  EmitTable(table, args, "fig6_window_sweep");
}

void RunInsertionOrders(const BenchArgs& args) {
  // Section V-B: 10 points on a line, eps = 7. The paper shows grouping
  // quality depends on insertion order; here the index order gives the
  // compact outcome while a pathological sorted-link order (simulated by
  // g=1 after shuffling) is worse.
  RStarOptions tree_options;
  tree_options.max_fanout = 4;
  tree_options.min_fanout = 2;
  RStarTree<1> tree(tree_options);
  for (PointId id = 1; id <= 10; ++id) {
    tree.Insert(id, Point<1>{{static_cast<double>(id)}});
  }
  Table table("Section V-B — line 1..10, eps=7: window vs output",
              {"g", "groups", "bytes"});
  JoinOptions options;
  options.epsilon = 7.0;
  for (int g : {1, 2, 3, 10}) {
    options.window_size = g;
    auto sink = MakeSinkOrDie(OutputSpec::Counting(100));  // 2-digit ids
    CompactSimilarityJoin(tree, options, sink.get());
    table.AddRow({StrFormat("%d", g), WithThousands(sink->num_groups()),
                  WithThousands(sink->bytes())});
  }
  EmitTable(table, args, "sec5b_line_orders");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv,
                               [](const csj::bench::BenchArgs& args) {
                                 csj::bench::RunWindowSweep(args);
                                 csj::bench::RunInsertionOrders(args);
                               });
}

/// \file
/// Section IV-D: spatial joins (two different datasets, dual-tree). The
/// paper's analysis: an output explosion occurs only when both datasets are
/// dense in the same region, in which case both trees have small nodes
/// there and the dual early-stopping rule fires; with different
/// distributions the inclusion check "will often fail" and there is little
/// to compact. This binary measures both regimes by sliding one road
/// network over another (overlap fraction 1.0 -> 0.0).

#include <cstdio>

#include "bench_common.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

std::vector<Entry<2>> Shifted(const std::vector<Entry<2>>& entries,
                              double dx, PointId id_offset) {
  std::vector<Entry<2>> out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back(Entry<2>{e.id + id_offset,
                           Point2{{e.point[0] + dx, e.point[1]}}});
  }
  return out;
}

void Main(const BenchArgs& args) {
  RoadNetOptions net;
  net.num_points = args.full ? 36000 : 15000;
  net.seed = 61;
  const auto base_a = ToEntries(GenerateRoadNetwork(net));
  net.seed = 62;  // a *different* network over the same territory
  const auto base_b = ToEntries(GenerateRoadNetwork(net));
  const double eps = 0.03;

  Table table(
      StrFormat("Section IV-D — spatial join of two road networks, eps=%.3g",
                eps),
      {"overlap", "SSJ time", "SSJ bytes", "CSJ(10) time", "CSJ(10) bytes",
       "early stops", "savings"});

  for (double shift : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto set_b =
        Shifted(base_b, shift, static_cast<PointId>(base_a.size()));
    RStarTree<2> tree_a, tree_b;
    PackStr(&tree_a, base_a);
    PackStr(&tree_b, set_b);

    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 10;

    auto ssj_sink =
        MakeSinkOrDie(OutputSpec::Counting(base_a.size() + set_b.size()));
    const JoinStats ssj = StandardSpatialJoin(tree_a, tree_b, options,
                                              ssj_sink.get());
    auto csj_sink =
        MakeSinkOrDie(OutputSpec::Counting(base_a.size() + set_b.size()));
    const JoinStats csj = CompactSpatialJoin(tree_a, tree_b, options,
                                             csj_sink.get());

    const double savings =
        ssj_sink->bytes() == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(csj_sink->bytes()) /
                                 static_cast<double>(ssj_sink->bytes()));
    table.AddRow({StrFormat("%.0f%%", (1.0 - shift) * 100.0),
                  HumanDuration(ssj.elapsed_seconds),
                  WithThousands(ssj_sink->bytes()),
                  HumanDuration(csj.elapsed_seconds),
                  WithThousands(csj_sink->bytes()),
                  WithThousands(csj.early_stops),
                  StrFormat("%.1f%%", savings)});
  }
  EmitTable(table, args, "sec4d_spatial_join");
  std::printf(
      "Expected: at high overlap both networks are dense in the same "
      "regions, the dual early stop fires and CSJ compacts heavily; as "
      "overlap shrinks the output itself shrinks and there is less to "
      "compact.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

/// \file
/// Experiment 1 / Figure 5: runtime and output size versus query range for
/// SSJ, N-CSJ and CSJ(10) on the four datasets (MG County, LB County,
/// Sierpinski3D, Pacific NW). 9 epsilons log-spaced in [2^-9, 2^-1].
///
/// Rows marked '*' are sampling-based estimates, used where the paper also
/// reported estimates because the standard join's output explodes.
///
/// Default sizes keep the no-argument run laptop-fast (Pacific NW reduced to
/// 150K points); pass --full for the paper's 1.5M.

#include <cstdio>

#include "bench_common.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

template <int D>
void RunDataset(const std::string& name, const std::vector<Entry<D>>& entries,
                const BenchArgs& args) {
  std::printf("building R*-tree over %s (%s points, dynamic R* inserts)...\n",
              name.c_str(), WithThousands(entries.size()).c_str());
  BenchRecorder::Get().SetContext(name);
  RStarTree<D> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  Table table(
      StrFormat("Figure 5 — %s: time and output size vs query range", name.c_str()),
      {"eps", "SSJ time", "N-CSJ time", "CSJ(10) time", "SSJ bytes",
       "N-CSJ bytes", "CSJ(10) bytes"});

  // Per-algorithm calibrations feed the paper-style estimate rows.
  Calibration ssj_cal, ncsj_cal, csj_cal;
  QuerySpec base;
  base.window = 10;

  // Smoke mode (CI) keeps only the three smallest ranges; the large ones
  // dominate the runtime without exercising any extra code.
  std::vector<double> epsilons = PaperEpsilons();
  if (args.smoke) epsilons.resize(3);

  for (double eps : epsilons) {
    const uint64_t predicted = EstimateLinkCount(tree, entries, eps);
    const RunResult ssj = MeasureJoin(JoinAlgorithm::kSSJ, tree, entries, eps,
                                      args, base, predicted, &ssj_cal);
    const RunResult ncsj = MeasureJoin(JoinAlgorithm::kNCSJ, tree, entries,
                                       eps, args, base, predicted, &ncsj_cal);
    const RunResult csj = MeasureJoin(JoinAlgorithm::kCSJ, tree, entries, eps,
                                      args, base, predicted, &csj_cal);

    table.AddRow({StrFormat("%.6g", eps), ssj.TimeCell(), ncsj.TimeCell(),
                  csj.TimeCell(), ssj.BytesCell(), ncsj.BytesCell(),
                  csj.BytesCell()});
  }
  EmitTable(table, args, "fig5_" + name);
}

void Main(const BenchArgs& args) {
  {
    const auto mg = MakeMgCounty();
    RunDataset(mg.name, mg.entries, args);
  }
  if (args.smoke) return;  // CI smoke: one dataset is plenty
  {
    const auto lb = MakeLbCounty();
    RunDataset(lb.name, lb.entries, args);
  }
  {
    const auto sierpinski = MakeSierpinski3DDataset(100000);
    RunDataset(sierpinski.name, sierpinski.entries, args);
  }
  {
    const double scale = args.full ? 1.0 : 0.1;
    const auto pnw = MakePacificNw(scale);
    std::printf("(Pacific NW at %.0f%% scale%s)\n", scale * 100.0,
                args.full ? "" : "; pass --full for the paper's 1.5M points");
    RunDataset(pnw.name, pnw.entries, args);
  }
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

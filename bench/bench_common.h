#ifndef CSJ_BENCH_BENCH_COMMON_H_
#define CSJ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <unistd.h>
#include <string>
#include <vector>

#include "core/query_spec.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/roadnet.h"
#include "index/rstar_tree.h"
#include "plan/planner.h"
#include "storage/output_file.h"
#include "util/format.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/timer.h"

/// \file
/// Shared harness code for the experiment binaries (one binary per paper
/// table/figure). Conventions:
///  * every binary runs with no arguments in laptop-scale time and prints
///    the same rows the corresponding paper figure plots;
///  * --full switches to the paper's full data sizes (Pacific NW 1.5M);
///  * --csv <dir> additionally writes each table as CSV for plotting;
///  * where the paper printed "SSJ (Estimate)" because the standard join
///    crashed/exploded, we do the same: a sampling-based estimate replaces
///    the run when the predicted link count exceeds a budget, and the row is
///    marked with a trailing '*'.

namespace csj::bench {

/// Command-line options shared by all experiment binaries.
struct BenchArgs {
  bool full = false;        ///< paper-scale datasets
  bool smoke = false;       ///< CI-scale: smallest dataset, few epsilons
  int runs = 1;             ///< repetitions per measurement (paper used 25)
  std::string csv_dir;      ///< if nonempty, tables are also written as CSV
  std::string json_dir;     ///< BENCH_<name>.json dir (default: csv_dir or .)
  std::string bench_name;   ///< argv[0] basename; names the JSON report
  uint64_t link_budget = 30'000'000;  ///< SSJ runs above this are estimated

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    const char* slash = std::strrchr(argv[0], '/');
    args.bench_name = slash != nullptr ? slash + 1 : argv[0];
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
        args.link_budget = 400'000'000;
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
      } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
        args.runs = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        args.csv_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_dir = argv[++i];
      } else {
        std::fprintf(
            stderr,
            "usage: %s [--full] [--smoke] [--runs N] [--csv DIR] "
            "[--json DIR]\n",
            argv[0]);
        std::exit(2);
      }
    }
    return args;
  }

  /// Directory the BENCH_<name>.json report lands in.
  std::string JsonDir() const {
    if (!json_dir.empty()) return json_dir;
    if (!csv_dir.empty()) return csv_dir;
    return ".";
  }
};

/// The paper's query ranges: 9 values equally spaced on a log scale between
/// 2^-9 and 2^-1.
inline std::vector<double> PaperEpsilons() {
  std::vector<double> eps;
  for (int e = -9; e <= -1; ++e) eps.push_back(std::ldexp(1.0, e));
  return eps;
}

/// Builds an R*-tree (the paper's default index) over a dataset.
template <int D>
RStarTree<D> BuildDefaultTree(const std::vector<Entry<D>>& entries) {
  RStarTree<D> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);
  return tree;
}

/// Result of one measured (or estimated) join run.
struct RunResult {
  double seconds = 0.0;
  uint64_t bytes = 0;
  uint64_t links = 0;
  uint64_t groups = 0;
  bool estimated = false;
  JoinStats stats;

  std::string TimeCell() const {
    return HumanDuration(seconds) + (estimated ? " *" : "");
  }
  std::string BytesCell() const {
    return WithThousands(bytes) + (estimated ? " *" : "");
  }
};

/// Collects every measured run of a bench binary and writes the structured
/// BENCH_<name>.json report next to the CSVs: configuration, one record per
/// run (with the full JoinStats), the process-wide metrics snapshot and the
/// total wall time. MeasureJoin records automatically; benches that drive
/// joins directly call RecordStats. Single-threaded like the rest of the
/// harness (parallel joins record from the coordinating thread).
class BenchRecorder {
 public:
  static BenchRecorder& Get() {
    static BenchRecorder* recorder = new BenchRecorder();
    return *recorder;
  }

  /// Labels subsequent records, e.g. with the current dataset name.
  void SetContext(std::string context) { context_ = std::move(context); }

  /// Adds an entry to the report's config block — environment facts a reader
  /// needs to interpret the numbers, e.g. which kernel ISA the `simd` rows
  /// dispatched to on this host. Last write per key wins.
  void AddConfig(const std::string& key, json::Value value) {
    extra_config_[key] = std::move(value);
  }

  /// One measured (or estimated) MeasureJoin result.
  void RecordRun(JoinAlgorithm algorithm, double eps,
                 const RunResult& result) {
    json::Value run = json::Object{};
    run["context"] = context_;
    run["algorithm"] = JoinAlgorithmName(algorithm);
    run["epsilon"] = eps;
    run["estimated"] = result.estimated;
    run["seconds"] = result.seconds;
    run["bytes"] = result.bytes;
    run["links"] = result.links;
    run["groups"] = result.groups;
    // Estimated rows were never run, so there are no stats to report.
    if (!result.estimated) run["stats"] = result.stats.ToJsonValue();
    runs_.Append(std::move(run));
  }

  /// One directly-driven join (benches that bypass MeasureJoin).
  void RecordStats(const JoinStats& stats) {
    json::Value run = json::Object{};
    run["context"] = context_;
    run["algorithm"] = JoinAlgorithmName(stats.algorithm);
    run["epsilon"] = stats.epsilon;
    run["estimated"] = false;
    run["seconds"] = stats.elapsed_seconds;
    run["bytes"] = stats.output_bytes;
    run["links"] = stats.links;
    run["groups"] = stats.groups;
    run["stats"] = stats.ToJsonValue();
    runs_.Append(std::move(run));
  }

  /// Writes <JsonDir()>/BENCH_<bench_name>.json (atomic temp+rename).
  void WriteReport(const BenchArgs& args, double wall_seconds) {
    json::Value doc = json::Object{};
    doc["schema_version"] = int64_t{1};
    doc["bench"] = args.bench_name;
    json::Value config = json::Object{};
    config["full"] = args.full;
    config["smoke"] = args.smoke;
    config["runs"] = static_cast<int64_t>(args.runs);
    config["csv_dir"] = args.csv_dir;
    config["link_budget"] = args.link_budget;
    for (auto& [key, value] : extra_config_) config[key] = value;
    doc["config"] = std::move(config);
    doc["runs"] = std::move(runs_);
    runs_ = json::Value(json::Array{});
    doc["metrics"] = metrics::Snapshot().ToJsonValue();
    doc["wall_seconds"] = wall_seconds;

    const std::string path =
        args.JsonDir() + "/BENCH_" + args.bench_name + ".json";
    OutputFile file;
    Status status = file.Open(path);
    if (status.ok()) status = file.Append(json::Write(doc, /*pretty=*/true));
    if (status.ok()) status = file.Append("\n");
    if (status.ok()) status = file.Close();
    if (status.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "bench report write failed: %s\n",
                   status.ToString().c_str());
    }
  }

 private:
  BenchRecorder() = default;

  std::string context_;
  json::Object extra_config_;
  json::Value runs_ = json::Value(json::Array{});
};

/// Parses the shared flags, runs the bench body, then writes the
/// BENCH_<name>.json report. Every experiment main() delegates here.
inline int BenchMain(int argc, char** argv,
                     void (*body)(const BenchArgs& args)) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  WallTimer wall;
  body(args);
  BenchRecorder::Get().WriteReport(args, wall.ElapsedSeconds());
  return 0;
}

/// Sampling estimate of the number of SSJ links: query the tree around a
/// sample of the points and scale. Used when the real run would explode,
/// exactly like the paper's filled "estimate" markers.
template <typename Tree, int D>
uint64_t EstimateLinkCount(const Tree& tree,
                           const std::vector<Entry<D>>& entries, double eps,
                           size_t sample = 400) {
  if (entries.size() < 2) return 0;
  uint64_t neighbor_sum = 0;
  const size_t stride = std::max<size_t>(1, entries.size() / sample);
  size_t sampled = 0;
  for (size_t i = 0; i < entries.size(); i += stride) {
    neighbor_sum += tree.RangeCount(entries[i].point, eps) - 1;
    ++sampled;
  }
  const double avg = static_cast<double>(neighbor_sum) /
                     static_cast<double>(sampled);
  return static_cast<uint64_t>(avg * static_cast<double>(entries.size()) / 2.0);
}

/// Per-algorithm extrapolation state: maps the workload-size proxy
/// (predicted standard-join link count) to measured cost. Updated after
/// every real run; used to fabricate the paper-style "(Estimate)" rows.
struct Calibration {
  bool valid = false;
  double seconds_per_link = 4.0e-8;
  double bytes_per_link = 14.0;

  void Update(uint64_t predicted_links, double seconds, uint64_t bytes) {
    if (predicted_links < 100000) return;  // too noisy to calibrate on
    seconds_per_link = seconds / static_cast<double>(predicted_links);
    bytes_per_link =
        static_cast<double>(bytes) / static_cast<double>(predicted_links);
    valid = true;
  }
};

/// Runs `algorithm` on `tree`, writing real output files like the paper
/// ("runtime is measured ... until the last tuple of the complete exact
/// result of the query is written to disk"), repeating `runs` times and
/// keeping the best time.
///
/// Escape hatches keep explosive rows tractable, all marked '*' — the
/// analog of the paper's filled "(Estimate)" markers (which it used for SSJ
/// everywhere it crashed and for N-CSJ on the largest Pacific-NW ranges):
///  * SSJ rows whose predicted link count exceeds args.link_budget, and
///    compact rows beyond 8x that budget, are extrapolated from the
///    algorithm's calibration instead of run (linear in predicted links —
///    conservative for the compact algorithms, whose real cost grows
///    sublinearly);
///  * any run whose output exceeds the 1 GB file cap keeps counting without
///    writing; the unwritten bytes' cost is added back at the measured write
///    throughput of the written prefix.
///
/// `predicted_links` is the sampling estimate for this (tree, eps); pass the
/// value from EstimateLinkCount so all three algorithms share one probe.
///
/// The run's knobs come from `base_spec` through the same
/// `plan::DeriveJoinOptions` mapping the tool and the server use — benches
/// measure exactly what those entry points execute. `base_spec.eps` is
/// overridden by `eps` per measurement.
template <typename Tree, int D>
RunResult MeasureJoin(JoinAlgorithm algorithm, const Tree& tree,
                      const std::vector<Entry<D>>& entries, double eps,
                      const BenchArgs& args, const QuerySpec& base_spec,
                      uint64_t predicted_links, Calibration* calibration) {
  constexpr uint64_t kFileCap = 1ull << 30;
  RunResult result;
  JoinOptions options = plan::DeriveJoinOptions(base_spec);
  options.epsilon = eps;
  options.measure_write_time = true;

  const uint64_t budget = algorithm == JoinAlgorithm::kSSJ
                              ? args.link_budget
                              : args.link_budget * 8;
  if (predicted_links > budget) {
    result.estimated = true;
    result.links = predicted_links;
    if (algorithm == JoinAlgorithm::kSSJ) {
      result.bytes = predicted_links * 2ull *
                     static_cast<uint64_t>(IdWidthFor(entries.size()) + 1);
      result.seconds = static_cast<double>(predicted_links) *
                       calibration->seconds_per_link;
    } else {
      result.bytes = static_cast<uint64_t>(
          static_cast<double>(predicted_links) * calibration->bytes_per_link);
      result.seconds = static_cast<double>(predicted_links) *
                       calibration->seconds_per_link;
    }
    BenchRecorder::Get().RecordRun(algorithm, eps, result);
    return result;
  }

  const std::string path = StrFormat("/tmp/csj_bench_%d.txt", getpid());
  for (int r = 0; r < args.runs; ++r) {
    // Capped text file: writes stop at kFileCap but counting continues, so
    // explosive outputs measure real write costs without filling the disk.
    OutputSpec spec = OutputSpec::File(path, entries.size());
    spec.cap_bytes = kFileCap;
    auto sink = MakeSinkOrDie(spec);
    const JoinStats stats = RunSelfJoin(algorithm, tree, options, sink.get());
    (void)sink->Finish();
    double seconds = stats.elapsed_seconds;
    if (sink->truncated() && sink->materialized_bytes() > 0 &&
        stats.write_seconds > 0.0) {
      // Add back the write cost of the counted-but-unwritten suffix.
      const double throughput =
          static_cast<double>(sink->materialized_bytes()) /
          stats.write_seconds;
      seconds += static_cast<double>(sink->bytes() -
                                     sink->materialized_bytes()) /
                 throughput;
      result.estimated = true;
    }
    if (r == 0 || seconds < result.seconds) {
      result.seconds = seconds;
      result.stats = stats;
    }
    result.bytes = sink->bytes();
    result.links = sink->num_links();
    result.groups = sink->num_groups();
  }
  std::remove(path.c_str());
  calibration->Update(predicted_links, result.seconds, result.bytes);
  BenchRecorder::Get().RecordRun(algorithm, eps, result);
  return result;
}

/// Writes a table to stdout and, if --csv was given, to <dir>/<slug>.csv.
inline void EmitTable(const Table& table, const BenchArgs& args,
                      const std::string& slug) {
  table.Print();
  std::printf("\n");
  if (!args.csv_dir.empty()) {
    const std::string path = args.csv_dir + "/" + slug + ".csv";
    const Status status = table.WriteCsv(path);
    if (!status.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

}  // namespace csj::bench

#endif  // CSJ_BENCH_BENCH_COMMON_H_

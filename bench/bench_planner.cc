/// \file
/// Planner regret and estimator accuracy: for each (dataset, eps), sweep the
/// hand-tuned candidate configurations (SSJ, N-CSJ, CSJ(g) for several g),
/// then run the cost-based planner's pick, and report
///
///   regret = planned time / best hand-tuned time
///
/// plus predicted-vs-actual output counts. Datasets cover the planner's
/// decision space: Gaussian clusters (grouped output pays, CSJ territory),
/// uniform (little group structure at small eps, SSJ territory), and the
/// road network (the paper's real-data shape, intermediate dimension).
///
/// Under --smoke this is a CI gate: regret must stay within each dataset's
/// bound (1.10x on clustered — the headline acceptance — and 1.5x on the
/// others, whose absolute times are small enough for noise to dominate),
/// and predicted links must land within 2x of the actual count everywhere.
/// The per-eps details land in the BENCH_bench_planner.json report under
/// config.planner_summary, which CI validates structurally.
///
/// Timing uses counting sinks and keeps the best of three runs; the auto
/// spec declares `output: none` to match, so the planner prices the same
/// count-only query the candidates ran (with nothing written, compression
/// cannot pay and the planner resolves to n-csj). Actual link counts come
/// from the SSJ candidate, which emits every qualifying pair exactly once.

#include <cstdio>

#include "bench_common.h"
#include "data/generators.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"
#include "plan/estimator.h"

namespace csj::bench {

/// Raised when a --smoke gate fails; main() turns it into exit 1 *after*
/// the JSON report is written.
bool g_gate_failed = false;

namespace {

struct PlannerDataset {
  std::string name;
  std::vector<Point2> points;
  double regret_limit = 1.5;  ///< --smoke gate on planned/best time
};

struct Candidate {
  QueryAlgo algo;
  int g;
};

std::string CandidateName(QueryAlgo algo, int g) {
  if (algo == QueryAlgo::kCSJ) return StrFormat("csj(%d)", g);
  return QueryAlgoName(algo);
}

void Main(const BenchArgs& args) {
  const size_t n = args.full ? 100000 : (args.smoke ? 12000 : 30000);
  std::vector<PlannerDataset> datasets;
  datasets.push_back(
      {"clustered", GenerateGaussianClusters<2>(n, 8, 0.02, 7), 1.10});
  datasets.push_back({"uniform", GenerateUniform<2>(n, 11), 1.50});
  {
    RoadNetOptions rn;
    rn.num_points = n;
    rn.seed = 27;
    datasets.push_back({"roadnet", GenerateRoadNetwork(rn), 1.50});
  }

  const std::vector<double> epsilons =
      args.smoke ? std::vector<double>{0.005, 0.01, 0.02}
                 : std::vector<double>{0.002, 0.005, 0.01, 0.02, 0.04};
  const std::vector<Candidate> candidates = {
      {QueryAlgo::kSSJ, 10},  {QueryAlgo::kNCSJ, 10}, {QueryAlgo::kCSJ, 4},
      {QueryAlgo::kCSJ, 10},  {QueryAlgo::kCSJ, 16},  {QueryAlgo::kCSJ, 32}};
  const int reps = std::max(args.runs, 3);

  json::Value summary = json::Array{};

  for (auto& ds : datasets) {
    BenchRecorder::Get().SetContext(ds.name);
    const auto entries = ToEntries(ds.points);
    RStarTree<2> tree;
    PackStr(&tree, entries);
    const plan::DatasetSketch sketch = plan::BuildSketch(ds.points);
    const int id_width = IdWidthFor(entries.size());

    Table table(StrFormat("planner regret — %s (%s points)", ds.name.c_str(),
                          WithThousands(n).c_str()),
                {"eps", "planned", "planned time", "best config", "best time",
                 "regret", "pred links", "actual links"});

    for (double eps : epsilons) {
      // Best-of-`reps` timing of one resolved spec over a counting sink.
      const auto run_spec = [&](const QuerySpec& spec, JoinStats* out) {
        const JoinOptions options = plan::DeriveJoinOptions(spec);
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
          auto sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
          JoinStats stats =
              RunSelfJoin(TreeAlgorithmFor(spec.algo), tree, options,
                          sink.get());
          (void)sink->Finish();
          if (r == 0 || stats.elapsed_seconds < best) {
            best = stats.elapsed_seconds;
            *out = stats;
          }
        }
        return best;
      };

      // The hand-tuned sweep the planner competes against. The SSJ run
      // doubles as ground truth for the link count: it emits every
      // qualifying pair exactly once. (A compact run's
      // ImpliedLinkUpperBound() would not do — merge-window groups can
      // overlap, so their implied pair count double-counts shared links,
      // by several x on dense clusters.)
      double best_time = 0.0;
      std::string best_name;
      uint64_t exact_links = 0;
      for (const Candidate& c : candidates) {
        QuerySpec spec;
        spec.algo = c.algo;
        spec.eps = eps;
        spec.window = c.g;
        JoinStats stats;
        const double t = run_spec(spec, &stats);
        BenchRecorder::Get().RecordStats(stats);
        if (c.algo == QueryAlgo::kSSJ) exact_links = stats.links;
        if (best_name.empty() || t < best_time) {
          best_time = t;
          best_name = CandidateName(c.algo, c.g);
        }
      }

      // The planner's pick, executed exactly as `join --algo auto` would.
      // The spec declares count-only output to match the counting sinks
      // the whole sweep is timed with, so the planner prices the same
      // query the candidates ran.
      QuerySpec auto_spec;
      auto_spec.algo = QueryAlgo::kAuto;
      auto_spec.eps = eps;
      auto_spec.output = OutputFormat::kNone;
      const plan::QueryPlan qplan =
          plan::PlanQuery(auto_spec, sketch, id_width);
      JoinStats planned_stats;
      const double planned_time = run_spec(qplan.resolved, &planned_stats);
      plan::AttachPlan(qplan, &planned_stats);
      plan::RecordPlanAccuracy(planned_stats);
      BenchRecorder::Get().RecordStats(planned_stats);

      const double regret = best_time > 0.0 ? planned_time / best_time : 1.0;
      const uint64_t actual = exact_links;
      const uint64_t predicted = planned_stats.predicted_links;
      const double links_ratio =
          actual > 0 ? static_cast<double>(predicted) /
                           static_cast<double>(actual)
                     : (predicted == 0 ? 1.0 : 1e9);
      const std::string planned_name =
          CandidateName(qplan.resolved.algo, qplan.resolved.window);

      table.AddRow({StrFormat("%.6g", eps), planned_name,
                    HumanDuration(planned_time), best_name,
                    HumanDuration(best_time), StrFormat("%.2fx", regret),
                    WithThousands(predicted), WithThousands(actual)});

      json::Value entry = json::Object{};
      entry["dataset"] = ds.name;
      entry["epsilon"] = eps;
      entry["planned_algo"] = QueryAlgoName(qplan.resolved.algo);
      entry["planned_g"] = static_cast<int64_t>(qplan.resolved.window);
      entry["planned_leaf_kernel"] =
          LeafKernelName(qplan.resolved.leaf_kernel);
      entry["planned_seconds"] = planned_time;
      entry["best_config"] = best_name;
      entry["best_seconds"] = best_time;
      entry["regret"] = regret;
      entry["regret_limit"] = ds.regret_limit;
      entry["predicted_links"] = predicted;
      entry["actual_links"] = actual;
      entry["links_ratio"] = links_ratio;
      summary.Append(std::move(entry));

      if (args.smoke) {
        if (regret > ds.regret_limit) {
          std::fprintf(stderr,
                       "GATE FAIL: %s eps=%g regret %.2fx > %.2fx "
                       "(planned %s %.4fs vs best %s %.4fs)\n",
                       ds.name.c_str(), eps, regret, ds.regret_limit,
                       planned_name.c_str(), planned_time, best_name.c_str(),
                       best_time);
          g_gate_failed = true;
        }
        if (links_ratio < 0.5 || links_ratio > 2.0) {
          std::fprintf(stderr,
                       "GATE FAIL: %s eps=%g predicted links %llu vs actual "
                       "%llu (ratio %.2f outside [0.5, 2.0])\n",
                       ds.name.c_str(), eps,
                       static_cast<unsigned long long>(predicted),
                       static_cast<unsigned long long>(actual), links_ratio);
          g_gate_failed = true;
        }
      }
    }
    EmitTable(table, args, "planner_" + ds.name);
  }

  BenchRecorder::Get().AddConfig("planner_summary", std::move(summary));
  if (args.smoke) {
    std::printf("smoke gates: %s\n", g_gate_failed ? "FAILED" : "passed");
  }
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  const int rc = csj::bench::BenchMain(argc, argv, csj::bench::Main);
  if (rc != 0) return rc;
  return csj::bench::g_gate_failed ? 1 : 0;
}

/// \file
/// Section VII: the epsilon-grid-order extension. The paper claims compact
/// joins carry over to the index-free EGO join by adding the
/// termination-as-a-group case to its join buffer. This binary compares
/// standard EGO against compact EGO on 2-D and 5-D workloads, and
/// cross-checks EGO against the tree-based SSJ (same link counts).

#include <cstdio>

#include "bench_common.h"
#include "core/ego.h"
#include "data/generators.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

template <int D>
void RunEgoSweep(const char* name, const std::vector<Entry<D>>& entries,
                 const std::vector<double>& epsilons, const BenchArgs& args) {
  Table table(StrFormat("Section VII — EGO join on %s (%s points, %d-D)",
                        name, WithThousands(entries.size()).c_str(), D),
              {"eps", "EGO time", "EGO bytes", "compact-EGO time",
               "compact-EGO bytes", "early stops"});

  for (double eps : epsilons) {
    EgoOptions options;
    options.epsilon = eps;
    options.window_size = 10;

    double ego_time = 0.0, cego_time = 0.0;
    uint64_t ego_bytes = 0, cego_bytes = 0, stops = 0;
    for (int r = 0; r < args.runs; ++r) {
      auto standard = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
      const JoinStats ego =
          EgoSimilarityJoin(entries, options, standard.get());
      auto compact = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
      const JoinStats cego = CompactEgoJoin(entries, options, compact.get());
      if (r == 0 || ego.elapsed_seconds < ego_time) {
        ego_time = ego.elapsed_seconds;
      }
      if (r == 0 || cego.elapsed_seconds < cego_time) {
        cego_time = cego.elapsed_seconds;
      }
      ego_bytes = standard->bytes();
      cego_bytes = compact->bytes();
      stops = cego.early_stops;
    }
    table.AddRow({StrFormat("%.6g", eps), HumanDuration(ego_time),
                  WithThousands(ego_bytes), HumanDuration(cego_time),
                  WithThousands(cego_bytes), WithThousands(stops)});
  }
  EmitTable(table, args, StrFormat("sec7_ego_%s", name));
}

void Main(const BenchArgs& args) {
  {
    const size_t n = args.full ? 200000 : 40000;
    const auto entries =
        ToEntries(GenerateGaussianClusters<2>(n, 12, 0.01, 71));
    RunEgoSweep("clustered2D", entries, {0.002, 0.008, 0.03, 0.1}, args);
  }
  {
    const size_t n = args.full ? 100000 : 30000;
    const auto entries = ToEntries(GenerateUniform<2>(n, 72));
    RunEgoSweep("uniform2D", entries, {0.002, 0.008, 0.03}, args);
  }
  {
    // High-dimensional: EGO's home turf (ref [2] targets massive
    // high-dimensional joins).
    const size_t n = args.full ? 50000 : 15000;
    const auto entries =
        ToEntries(GenerateGaussianClusters<5>(n, 8, 0.02, 73));
    RunEgoSweep("clustered5D", entries, {0.05, 0.1, 0.2}, args);
  }
  std::printf(
      "Expected: compact EGO matches standard EGO where output is small and "
      "wins increasingly as density grows — the same win-win as the tree "
      "algorithms, without an index.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

/// \file
/// Engineering extension: multi-threaded CSJ(g) scaling. Not in the paper
/// (2008, single-threaded); included because a production deployment would
/// insist on it. The parallel join stays lossless; group composition may
/// differ from the sequential run.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/parallel_join.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

void Main(const BenchArgs& args) {
  RoadNetOptions net;
  net.num_points = args.full ? 150000 : 60000;
  net.seed = 1015;
  const auto entries = ToEntries(GenerateRoadNetwork(net));
  RStarTree<2> tree;
  PackStr(&tree, entries);
  const double eps = 0.02;

  std::printf("dataset: road network, %s points, eps=%.3g, %u hardware "
              "threads\n",
              WithThousands(entries.size()).c_str(), eps,
              std::thread::hardware_concurrency());

  JoinOptions options;
  options.epsilon = eps;
  options.window_size = 10;

  double base_seconds = 0.0;
  Table table("Extension — parallel CSJ(10) scaling",
              {"threads", "time", "speedup", "bytes", "groups"});
  {
    BenchRecorder::Get().SetContext("sequential");
    auto sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    const JoinStats stats = CompactSimilarityJoin(tree, options, sink.get());
    BenchRecorder::Get().RecordStats(stats);
    base_seconds = stats.elapsed_seconds;
    table.AddRow({"sequential", HumanDuration(stats.elapsed_seconds), "1.00x",
                  WithThousands(sink->bytes()),
                  WithThousands(sink->num_groups())});
  }
  for (int threads : {1, 2, 4, 8}) {
    ParallelJoinOptions parallel;
    parallel.threads = threads;
    BenchRecorder::Get().SetContext(StrFormat("threads=%d", threads));
    auto sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    const JoinStats stats =
        ParallelCompactSimilarityJoin(tree, options, sink.get(), parallel);
    BenchRecorder::Get().RecordStats(stats);
    table.AddRow({StrFormat("%d", threads),
                  HumanDuration(stats.elapsed_seconds),
                  StrFormat("%.2fx", base_seconds / stats.elapsed_seconds),
                  WithThousands(sink->bytes()),
                  WithThousands(sink->num_groups())});
  }
  EmitTable(table, args, "parallel_scaling");
  std::printf(
      "Expected: near-linear speedup while tasks outnumber threads AND the "
      "machine has that many cores (on a single-core box every row shows "
      "only the task-queue overhead); output size stays within a fraction "
      "of a percent of sequential (per-worker windows lose some cross-task "
      "merges).\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

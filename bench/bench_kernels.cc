/// \file
/// Leaf-kernel microbenchmark: naive vs sweep vs simd (geom/kernels.h) over
/// varying leaf sizes, densities and dimensions, for both the self-join and
/// the block (leaf-pair) kernel. This is the ablation harness for the
/// JoinOptions::leaf_kernel knob: it isolates the leaf–leaf inner loop from
/// tree traversal so kernel changes show up undiluted.
///
/// A scenario is a leaf of `k` points uniform in the unit cube joined at an
/// epsilon chosen as a fraction of the cube diagonal; small fractions mean a
/// narrow sweep window (strong pruning), large fractions approach the dense
/// all-pairs regime. Every cell reports pair throughput and its speedup over
/// the naive loop on the same scenario; each cell also lands in
/// BENCH_bench_kernels.json (context "self|block dim=D k=K eps=E
/// kernel=MODE") so the bench trajectory tracks kernel performance over
/// time. In addition to the portable modes, one row per *available* explicit
/// ISA backend (avx2, avx512) isolates the per-ISA cost, and the config
/// block records which ISA the `simd` rows dispatched to on this host.
/// `--smoke` shrinks sizes and repetitions to CI scale and additionally
/// asserts the dispatched SIMD backend is no slower than `sweep` on the
/// dense-leaf cells (exit 1 on regression; skipped when dispatch resolves
/// to scalar, e.g. under -DCSJ_SIMD=OFF).

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "geom/dispatch.h"
#include "geom/kernels.h"
#include "util/random.h"

namespace csj::bench {
namespace {

/// The portable modes plus every explicit ISA backend this host can run.
/// (Unavailable ISA modes would silently degrade to scalar — a row labeled
/// "avx512" timing the scalar loop is worse than no row.)
std::vector<LeafKernel> BenchModes() {
  std::vector<LeafKernel> modes = {LeafKernel::kNaive, LeafKernel::kSweep,
                                   LeafKernel::kSimd};
  if (KernelIsaAvailable(KernelIsa::kAvx2)) modes.push_back(LeafKernel::kAvx2);
  if (KernelIsaAvailable(KernelIsa::kAvx512)) {
    modes.push_back(LeafKernel::kAvx512);
  }
  return modes;
}

/// Accumulated dense-leaf (largest epsilon fraction) per-call times, the
/// basis of the --smoke regression gate.
struct SmokeTotals {
  double sweep_seconds = 0.0;
  double simd_seconds = 0.0;
};

template <int D>
std::vector<Entry<D>> LeafPoints(size_t k, uint64_t seed) {
  const auto points = GenerateUniform<D>(k, seed);
  std::vector<Entry<D>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(i), points[i]};
  }
  return entries;
}

struct Cell {
  double seconds_per_call = 0.0;
  uint64_t candidates = 0;
  uint64_t computed = 0;
  uint64_t hits = 0;
};

/// Times `calls` kernel invocations and returns per-call cost + counters.
template <typename KernelFn>
Cell TimeKernel(KernelFn&& kernel, int calls, int runs) {
  Cell cell;
  for (int r = 0; r < runs; ++r) {
    uint64_t hits = 0;
    KernelCounters last;
    WallTimer timer;
    for (int c = 0; c < calls; ++c) {
      last = kernel(&hits);
    }
    const double per_call = timer.ElapsedSeconds() / calls;
    if (r == 0 || per_call < cell.seconds_per_call) {
      cell.seconds_per_call = per_call;
    }
    cell.candidates = last.candidates;
    cell.computed = last.computed;
    cell.hits = last.hits;
  }
  return cell;
}

void Record(const std::string& context, double eps, const Cell& cell) {
  BenchRecorder::Get().SetContext(context);
  JoinStats stats;
  stats.algorithm = JoinAlgorithm::kSSJ;
  stats.epsilon = eps;
  stats.elapsed_seconds = cell.seconds_per_call;
  stats.distance_computations = cell.computed;
  stats.kernel_candidates = cell.candidates;
  stats.kernel_pruned = cell.candidates - cell.computed;
  stats.kernel_hits = cell.hits;
  stats.links = cell.hits;
  BenchRecorder::Get().RecordStats(stats);
}

template <int D>
void BenchDim(const BenchArgs& args, Table* table, SmokeTotals* smoke) {
  const std::vector<size_t> sizes =
      args.smoke ? std::vector<size_t>{64, 256}
                 : std::vector<size_t>{64, 256, 1024};
  // Epsilon as a fraction of the unit-cube diagonal: the sweep window works
  // on one axis, so the fraction directly controls how much it prunes.
  const double diagonal = std::sqrt(static_cast<double>(D));
  for (size_t k : sizes) {
    for (double frac : {0.02, 0.1, 0.4}) {
      const double eps = frac * diagonal;
      const double eps2 = eps * eps;
      const auto entries = LeafPoints<D>(k, 1000 + k + D);
      const auto half_a = LeafPoints<D>(k / 2, 2000 + k + D);
      auto half_b = LeafPoints<D>(k / 2, 3000 + k + D);
      for (auto& e : half_b) e.id += 1u << 20;

      // Enough calls that even the fastest kernel is timeable.
      const uint64_t pair_space = static_cast<uint64_t>(k) * (k - 1) / 2;
      const int calls = static_cast<int>(std::max<uint64_t>(
          1, (args.smoke ? 2'000'000 : 20'000'000) / std::max<uint64_t>(
                                                          1, pair_space)));

      LeafJoinScratch<D> scratch;
      double naive_self = 0.0;
      double naive_block = 0.0;
      for (LeafKernel mode : BenchModes()) {
        const Cell self = TimeKernel(
            [&](uint64_t* hits) {
              return SelfJoinKernel(
                  scratch, std::span<const Entry<D>>(entries), eps2, mode,
                  [hits](const Entry<D>&, const Entry<D>&) { ++*hits; });
            },
            calls, args.runs);
        const Cell block = TimeKernel(
            [&](uint64_t* hits) {
              return BlockJoinKernel(
                  scratch, std::span<const Entry<D>>(half_a),
                  std::span<const Entry<D>>(half_b), eps2, mode,
                  [hits](const Entry<D>&, const Entry<D>&) { ++*hits; });
            },
            calls, args.runs);
        if (mode == LeafKernel::kNaive) {
          naive_self = self.seconds_per_call;
          naive_block = block.seconds_per_call;
        }
        // Dense-leaf cells (widest epsilon fraction) feed the --smoke gate:
        // that is the regime the SIMD backend exists for.
        if (frac == 0.4) {
          if (mode == LeafKernel::kSweep) {
            smoke->sweep_seconds += self.seconds_per_call +
                                    block.seconds_per_call;
          } else if (mode == LeafKernel::kSimd) {
            smoke->simd_seconds += self.seconds_per_call +
                                   block.seconds_per_call;
          }
        }
        const auto row = [&](const char* shape, const Cell& cell,
                             double naive_seconds) {
          const double mpairs =
              static_cast<double>(cell.candidates) /
              std::max(cell.seconds_per_call, 1e-12) / 1e6;
          table->AddRow(
              {StrFormat("%d", D), shape, WithThousands(k),
               StrFormat("%.3f", eps), LeafKernelName(mode),
               HumanDuration(cell.seconds_per_call),
               StrFormat("%.0f", mpairs),
               StrFormat("%.0f%%", 100.0 * static_cast<double>(cell.computed) /
                                       static_cast<double>(std::max<uint64_t>(
                                           1, cell.candidates))),
               WithThousands(cell.hits),
               StrFormat("%.2fx", naive_seconds /
                                      std::max(cell.seconds_per_call, 1e-12))});
          Record(StrFormat("%s dim=%d k=%zu eps=%.3f kernel=%s", shape, D, k,
                           eps, LeafKernelName(mode)),
                 eps, cell);
        };
        row("self", self, naive_self);
        row("block", block, naive_block);
      }
    }
  }
}

/// Set by the --smoke regression gate; surfaced as the process exit code.
bool g_smoke_failed = false;

void Main(const BenchArgs& args) {
  const KernelIsa dispatched = DispatchedKernelIsa();
  BenchRecorder::Get().AddConfig("kernel_isa", KernelIsaName(dispatched));
  BenchRecorder::Get().AddConfig("kernel_isa_avx2_available",
                                 KernelIsaAvailable(KernelIsa::kAvx2));
  BenchRecorder::Get().AddConfig("kernel_isa_avx512_available",
                                 KernelIsaAvailable(KernelIsa::kAvx512));
  std::printf("simd dispatches to: %s\n\n", KernelIsaName(dispatched));

  Table table("Leaf-join kernels — pair enumeration throughput",
              {"dim", "shape", "k", "eps", "kernel", "t/call", "Mpairs/s",
               "computed", "hits", "speedup"});
  SmokeTotals smoke;
  BenchDim<2>(args, &table, &smoke);
  BenchDim<3>(args, &table, &smoke);
  if (!args.smoke) BenchDim<5>(args, &table, &smoke);
  EmitTable(table, args, "kernels");

  if (args.smoke) {
    // CI regression gate: on the dense-leaf cells the dispatched SIMD
    // backend must be at least as fast as the portable sweep (10% noise
    // allowance). Meaningless when dispatch resolves to scalar — then simd
    // *is* sweep-with-function-pointers and only correctness matters.
    if (dispatched == KernelIsa::kScalar) {
      std::printf("smoke gate: skipped (dispatched ISA is scalar)\n");
    } else {
      const double ratio = smoke.simd_seconds /
                           std::max(smoke.sweep_seconds, 1e-12);
      std::printf("smoke gate: dense-leaf simd/sweep time ratio %.3f "
                  "(dispatched %s, limit 1.10)\n",
                  ratio, KernelIsaName(dispatched));
      if (ratio > 1.10) {
        std::fprintf(stderr,
                     "FAIL: dispatched SIMD backend slower than sweep on "
                     "dense leaves (ratio %.3f > 1.10)\n", ratio);
        g_smoke_failed = true;
      }
    }
  }
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  const int rc = csj::bench::BenchMain(argc, argv, csj::bench::Main);
  if (rc != 0) return rc;
  return csj::bench::g_smoke_failed ? 1 : 0;
}

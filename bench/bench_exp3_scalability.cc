/// \file
/// Experiment 2 / Figure 7: scalability in the number of data points. Points
/// drawn from the 3-D Sierpinski pyramid, fixed eps = 0.125; runtime and
/// output size for SSJ, N-CSJ and CSJ(10) at increasing N.
///
/// Expected shape (the paper's finding): SSJ grows quadratically — its
/// output explodes — while N-CSJ and CSJ(10) stay near-linear. SSJ rows
/// beyond the link budget are estimated ('*'), as in the paper's filled
/// markers "due to crash".

#include <cstdio>

#include "bench_common.h"
#include "data/generators.h"
#include "index/bulk_load.h"

namespace csj::bench {
namespace {

void Main(const BenchArgs& args) {
  const double eps = 0.125;
  // Default sizes are chosen so the *compact* rows always run for real
  // (estimated rows extrapolate linearly in link count, which would mask
  // their sublinear growth); --full extends to the paper's 500K.
  std::vector<size_t> sizes = {10000, 25000, 50000, 75000, 100000};
  if (args.full) {
    sizes.push_back(250000);
    sizes.push_back(500000);
  }

  Table table(
      StrFormat("Figure 7 — Sierpinski3D, eps=%.3g: scalability in N", eps),
      {"N", "SSJ time", "N-CSJ time", "CSJ(10) time", "SSJ bytes",
       "N-CSJ bytes", "CSJ(10) bytes"});

  Calibration ssj_cal, ncsj_cal, csj_cal;
  std::vector<std::pair<size_t, uint64_t>> real_ssj, real_ncsj, real_csj;
  QuerySpec base;
  base.window = 10;

  for (size_t n : sizes) {
    const auto points = GenerateSierpinski3D(n, /*seed=*/3);
    std::vector<Entry<3>> entries = ToEntries(points);
    RStarTree<3> tree;
    for (const auto& e : entries) tree.Insert(e.id, e.point);

    const uint64_t predicted = EstimateLinkCount(tree, entries, eps);
    const RunResult ssj = MeasureJoin(JoinAlgorithm::kSSJ, tree, entries, eps,
                                      args, base, predicted, &ssj_cal);
    const RunResult ncsj = MeasureJoin(JoinAlgorithm::kNCSJ, tree, entries,
                                       eps, args, base, predicted, &ncsj_cal);
    const RunResult csj = MeasureJoin(JoinAlgorithm::kCSJ, tree, entries, eps,
                                      args, base, predicted, &csj_cal);

    table.AddRow({WithThousands(n), ssj.TimeCell(), ncsj.TimeCell(),
                  csj.TimeCell(), ssj.BytesCell(), ncsj.BytesCell(),
                  csj.BytesCell()});
    if (!ssj.estimated) real_ssj.push_back({n, ssj.bytes});
    if (!ncsj.estimated) real_ncsj.push_back({n, ncsj.bytes});
    if (!csj.estimated) real_csj.push_back({n, csj.bytes});
  }
  EmitTable(table, args, "fig7_scalability");

  // Growth-rate summary over the *measured* (non-estimated) rows: log-log
  // slope of output size vs N. The paper's finding: SSJ is quadratic, the
  // compact algorithms control the explosion.
  auto slope = [](const std::vector<std::pair<size_t, uint64_t>>& rows) {
    if (rows.size() < 2) return 0.0;
    const auto& [n0, b0] = rows.front();
    const auto& [n1, b1] = rows.back();
    return std::log(static_cast<double>(b1) / static_cast<double>(b0)) /
           std::log(static_cast<double>(n1) / static_cast<double>(n0));
  };
  std::printf("measured output growth (bytes ~ N^k over real rows): "
              "SSJ k=%.2f, N-CSJ k=%.2f, CSJ(10) k=%.2f\n",
              slope(real_ssj), slope(real_ncsj), slope(real_csj));
  std::printf(
      "Expected: SSJ's exponent is the largest (output explosion); the "
      "compact joins grow distinctly slower, CSJ(10) slowest of all.\n\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

/// \file
/// Section VII, "problem 2": compact similarity joins in a general metric
/// space. The paper claims the gains carry over when only distances (no
/// coordinates) are available; this binary measures the claim on strings
/// under edit distance — a workload no R-tree can index — comparing the
/// standard and compact metric joins across duplicate densities.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metric/edit_distance.h"
#include "metric/generic_mtree.h"
#include "metric/metric_join.h"
#include "util/random.h"

namespace csj::bench {
namespace {

/// Builds a corpus of `bases` distinct strings with `copies` noisy variants
/// each (more copies = denser duplicates = worse output explosion).
std::vector<std::string> MakeCorpus(int bases, int copies, uint64_t seed) {
  Rng rng(seed);
  auto random_word = [&](size_t len) {
    std::string w;
    for (size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.UniformInt(uint64_t{26})));
    }
    return w;
  };
  std::vector<std::string> corpus;
  for (int b = 0; b < bases; ++b) {
    const std::string base = random_word(10 + rng.UniformInt(uint64_t{8}));
    for (int c = 0; c < copies; ++c) {
      std::string v = base;
      const int typos = static_cast<int>(rng.UniformInt(uint64_t{2}));
      for (int t = 0; t < typos; ++t) {
        v[rng.UniformInt(v.size())] =
            static_cast<char>('a' + rng.UniformInt(uint64_t{26}));
      }
      corpus.push_back(std::move(v));
    }
  }
  rng.Shuffle(corpus);
  return corpus;
}

void Main(const BenchArgs& args) {
  Table table("Section VII — metric compact join (strings, edit distance)",
              {"copies/base", "records", "eps", "SSJ time", "SSJ bytes",
               "CSJ(10) time", "CSJ(10) bytes", "savings"});

  const int bases = args.full ? 1200 : 500;
  for (int copies : {2, 6, 12}) {
    const auto corpus = MakeCorpus(bases, copies, 97);
    GenericMTree<std::string, EditDistanceMetric> tree;
    for (size_t i = 0; i < corpus.size(); ++i) {
      tree.Insert(static_cast<PointId>(i), corpus[i]);
    }
    for (double eps : {1.0, 2.0}) {
      JoinOptions options;
      options.epsilon = eps;
      options.window_size = 10;

      auto standard = MakeSinkOrDie(OutputSpec::Counting(corpus.size()));
      const JoinStats ssj = MetricStandardJoin(tree, options, standard.get());
      auto compact = MakeSinkOrDie(OutputSpec::Counting(corpus.size()));
      const JoinStats csj = MetricCompactJoin(tree, options, compact.get());

      const double savings =
          standard->bytes() == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(compact->bytes()) /
                                   static_cast<double>(standard->bytes()));
      table.AddRow({StrFormat("%d", copies),
                    WithThousands(corpus.size()), StrFormat("%.0f", eps),
                    HumanDuration(ssj.elapsed_seconds),
                    WithThousands(standard->bytes()),
                    HumanDuration(csj.elapsed_seconds),
                    WithThousands(compact->bytes()),
                    StrFormat("%.1f%%", savings)});
    }
  }
  EmitTable(table, args, "sec7_metric_strings");
  std::printf(
      "Expected: savings grow with duplicate density (the metric analog of "
      "the output explosion); runtimes stay comparable since both joins do "
      "the same distance evaluations.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

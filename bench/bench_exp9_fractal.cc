/// \file
/// The paper's stated future work (Conclusion): "the analysis of the
/// response time of the methods as a function of the query range eps, and
/// also as a function of the intrinsic ('fractal') dimensionality of the
/// input data set."
///
/// This bench carries that analysis out:
///  1. estimates the correlation dimension D2 of several datasets with very
///     different intrinsic dimensionality (line ~1, road network ~1.7,
///     Sierpinski triangle ~1.585, uniform square ~2, Sierpinski pyramid
///     ~2 in 3-D);
///  2. measures SSJ output and CSJ(10) output/time across eps;
///  3. fits output(eps) ~ eps^k and compares k against D2 — on self-similar
///     data the SSJ output explosion follows the correlation integral, so
///     k should track D2; and shows the D2-based PredictLinkCount estimate
///     against the measured link count.

#include <cstdio>

#include "analysis/fractal.h"
#include "bench_common.h"
#include "data/generators.h"
#include "data/roadnet.h"

namespace csj::bench {
namespace {

struct FractalDataset {
  std::string name;
  std::vector<Point2> points;
};

void Analyze(const FractalDataset& dataset, const BenchArgs& args,
             Table* summary) {
  const auto entries = ToEntries(dataset.points);
  RStarTree<2> tree;
  for (const auto& e : entries) tree.Insert(e.id, e.point);

  const PowerLawFit d2 = CorrelationDimension(dataset.points);

  Table detail(StrFormat("Fractal analysis — %s (D2=%.2f, R^2=%.3f)",
                         dataset.name.c_str(), d2.slope, d2.r_squared),
               {"eps", "SSJ links", "D2-predicted links", "CSJ(10) bytes",
                "CSJ(10) time"});

  std::vector<ScalingPoint> link_scaling;
  std::vector<ScalingPoint> time_scaling;
  for (int e = -7; e <= -4; ++e) {
    const double eps = std::ldexp(1.0, e);
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 10;

    auto ssj_sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    StandardSimilarityJoin(tree, options, ssj_sink.get());
    auto csj_sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    const JoinStats csj = CompactSimilarityJoin(tree, options, csj_sink.get());

    const uint64_t links = ssj_sink->num_links();
    const uint64_t predicted = PredictLinkCount(d2, entries.size(), eps);
    detail.AddRow({StrFormat("%.6g", eps), WithThousands(links),
                   WithThousands(predicted), WithThousands(csj_sink->bytes()),
                   HumanDuration(csj.elapsed_seconds)});
    if (links > 0) {
      link_scaling.push_back({std::log2(eps),
                              std::log2(static_cast<double>(links))});
    }
    if (csj.elapsed_seconds > 0) {
      time_scaling.push_back({std::log2(eps),
                              std::log2(csj.elapsed_seconds)});
    }
  }
  EmitTable(detail, args, "fractal_" + dataset.name);

  const PowerLawFit link_fit = FitPowerLaw(link_scaling);
  const PowerLawFit time_fit = FitPowerLaw(time_scaling);
  summary->AddRow({dataset.name, WithThousands(entries.size()),
                   StrFormat("%.2f", d2.slope),
                   StrFormat("%.2f", link_fit.slope),
                   StrFormat("%.2f", time_fit.slope)});
}

void Main(const BenchArgs& args) {
  const size_t n = args.full ? 60000 : 20000;
  std::vector<FractalDataset> datasets;
  {
    // A 1-dimensional manifold embedded in the square.
    std::vector<Point2> line(n);
    Rng rng(301);
    for (auto& p : line) {
      const double t = rng.UniformDouble();
      p = Point2{{t, 0.3 + 0.4 * t}};
    }
    datasets.push_back({"line", std::move(line)});
  }
  datasets.push_back({"sierpinski2d", GenerateSierpinski2D(n, 302)});
  {
    RoadNetOptions options;
    options.num_points = n;
    options.seed = 303;
    datasets.push_back({"roadnet", GenerateRoadNetwork(options)});
  }
  datasets.push_back({"uniform", GenerateUniform<2>(n, 304)});

  Table summary("Future work — output/time scaling vs intrinsic dimension",
                {"dataset", "points", "D2 (corr. dim)",
                 "SSJ links ~ eps^k", "CSJ time ~ eps^k"});
  for (const auto& dataset : datasets) Analyze(dataset, args, &summary);
  EmitTable(summary, args, "fractal_summary");
  std::printf(
      "Expected: the link-count exponent k tracks the correlation dimension "
      "D2 (theory: links(eps) ~ eps^D2), ordering the datasets line < "
      "sierpinski < roadnet < uniform; CSJ's time exponent is consistently "
      "smaller — compaction dampens the explosion most where D2 is "
      "largest.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

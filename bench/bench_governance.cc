/// \file
/// Governance overhead smoke: the resource-governance layer polls an
/// ExecContext (deadline + cancel flag + memory budget) at every task
/// boundary of the join drivers. This bench runs the Experiment-1 workload
/// (CSJ(10) on MG County) twice — once with nothing armed and once with a
/// far-future deadline, a live cancel flag and a generous budget — and
/// reports the relative overhead. In --smoke mode the process exits
/// non-zero if the armed run costs more than 2% over baseline, so CI
/// catches any regression that turns the hot-path poll into real work.

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "util/exec_context.h"

namespace csj::bench {
namespace {

/// One timed CSJ(10) self-join, recorded under `context`.
template <int D>
double JoinSeconds(const RStarTree<D>& tree, size_t n,
                   const JoinOptions& options, const char* context) {
  BenchRecorder::Get().SetContext(context);
  CountingSink sink(IdWidthFor(n));
  const JoinStats stats =
      RunSelfJoin(JoinAlgorithm::kCSJ, tree, options, &sink);
  BenchRecorder::Get().RecordStats(stats);
  return stats.elapsed_seconds;
}

void Main(const BenchArgs& args) {
  const auto mg = MakeMgCounty();
  std::printf("building R*-tree over %s (%s points)...\n", mg.name.c_str(),
              WithThousands(mg.entries.size()).c_str());
  RStarTree<2> tree;
  for (const auto& e : mg.entries) tree.Insert(e.id, e.point);

  // Repetitions damp scheduler noise; the asserted quantity is a ratio of
  // best-of-N times, not a single sample.
  const int runs = std::max(args.runs, args.smoke ? 5 : 3);
  std::vector<double> epsilons = PaperEpsilons();
  epsilons.resize(args.smoke ? 3 : 5);

  auto measure_overhead = [&](int attempt) {
    Table table(StrFormat("Governance overhead — CSJ(10) on %s (attempt %d)",
                          mg.name.c_str(), attempt),
                {"eps", "baseline", "governed", "overhead"});
    double base_total = 0.0, governed_total = 0.0;
    for (double eps : epsilons) {
      JoinOptions base;
      base.epsilon = eps;
      base.window_size = 10;

      // Arm every governance feature a real run would carry: the driver
      // now checks the cancel flag and (strided) the clock on each task,
      // and the scratch buffers and window groups charge the budget.
      std::atomic<bool> cancel{false};
      MemoryBudget budget(8ull << 30);
      ExecContext exec;
      exec.SetCancelFlag(&cancel);
      exec.SetMemoryBudget(&budget);
      JoinOptions governed = base;
      governed.exec = &exec;
      governed.deadline_ms = 3'600'000;  // one hour: armed but never fires

      // Interleave the two variants so load/frequency drift over the
      // measurement window biases both equally instead of one block; the
      // asserted quantity is a ratio of best-of-N times.
      double baseline = 0.0, with_exec = 0.0;
      for (int r = 0; r < runs; ++r) {
        const double b = JoinSeconds(tree, mg.entries.size(), base,
                                     "ungoverned");
        const double g = JoinSeconds(tree, mg.entries.size(), governed,
                                     "governed");
        if (r == 0 || b < baseline) baseline = b;
        if (r == 0 || g < with_exec) with_exec = g;
      }

      base_total += baseline;
      governed_total += with_exec;
      table.AddRow(
          {StrFormat("%.6g", eps), HumanDuration(baseline),
           HumanDuration(with_exec),
           StrFormat("%+.2f%%", 100.0 * (with_exec / baseline - 1.0))});
    }
    EmitTable(table, args, StrFormat("governance_overhead_%d", attempt));
    const double overhead = governed_total / base_total - 1.0;
    std::printf("attempt %d: baseline %s, governed %s, overhead %+.2f%%\n",
                attempt, HumanDuration(base_total).c_str(),
                HumanDuration(governed_total).c_str(), 100.0 * overhead);
    return overhead;
  };

  // Scheduler noise only ever *inflates* a measured ratio, so the best of a
  // few attempts is the sound estimate of the true overhead; one quiet
  // attempt under the budget is a pass.
  constexpr double kBudget = 0.02;
  const int attempts = args.smoke ? 3 : 1;
  double best_overhead = 0.0;
  for (int a = 1; a <= attempts; ++a) {
    const double overhead = measure_overhead(a);
    if (a == 1 || overhead < best_overhead) best_overhead = overhead;
    if (best_overhead <= kBudget) break;
  }
  std::printf("governance overhead: %+.2f%% (budget %.0f%%)\n",
              100.0 * best_overhead, 100.0 * kBudget);
  if (args.smoke && best_overhead > kBudget) {
    std::fprintf(stderr,
                 "FAIL: governance overhead %.2f%% exceeds the 2%% budget "
                 "in every attempt\n",
                 100.0 * best_overhead);
    std::exit(1);
  }
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

/// \file
/// Experiment 4: different underlying tree structures. The join algorithms
/// only require cheap min/max node distances (the inclusion property), so
/// the paper runs them over R*-trees, R-trees and Metric trees and finds "no
/// significant difference in any of the performance measures". This binary
/// reproduces that comparison on MG County (reduced for the M-tree's
/// insert cost), adding the two bulk-loaded layouts as extra variants.

#include <cstdio>

#include "bench_common.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"
#include "index/mtree.h"
#include "index/rtree.h"

namespace csj::bench {
namespace {

template <typename Tree>
void Measure(const char* label, const Tree& tree,
             const std::vector<Entry<2>>& entries, double eps,
             const BenchArgs& args, Table* table) {
  JoinOptions options;
  options.epsilon = eps;
  options.window_size = 10;

  std::vector<std::string> row = {label};
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
    double best = 0.0;
    uint64_t bytes = 0;
    for (int r = 0; r < args.runs; ++r) {
      auto sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
      const JoinStats stats = RunSelfJoin(algo, tree, options, sink.get());
      if (r == 0 || stats.elapsed_seconds < best) best = stats.elapsed_seconds;
      bytes = sink->bytes();
    }
    row.push_back(HumanDuration(best));
    row.push_back(WithThousands(bytes));
  }
  table->AddRow(std::move(row));
}

void Main(const BenchArgs& args) {
  RoadNetOptions net;
  net.num_points = args.full ? 27000 : 12000;
  net.seed = 27;
  net.num_cities = 8;
  const auto entries = ToEntries(GenerateRoadNetwork(net));
  const double eps = 0.05;

  std::printf("dataset: road network, %s points, eps=%.3g\n",
              WithThousands(entries.size()).c_str(), eps);

  Table table("Experiment 4 — tree-structure independence",
              {"index", "SSJ time", "SSJ bytes", "N-CSJ time", "N-CSJ bytes",
               "CSJ(10) time", "CSJ(10) bytes"});

  {
    RTreeOptions options;
    options.split = RTreeSplit::kLinear;
    RTree<2> tree(options);
    for (const auto& e : entries) tree.Insert(e.id, e.point);
    Measure("R-tree (linear)", tree, entries, eps, args, &table);
  }
  {
    RTreeOptions options;
    options.split = RTreeSplit::kQuadratic;
    RTree<2> tree(options);
    for (const auto& e : entries) tree.Insert(e.id, e.point);
    Measure("R-tree (quadratic)", tree, entries, eps, args, &table);
  }
  {
    RStarTree<2> tree;
    for (const auto& e : entries) tree.Insert(e.id, e.point);
    Measure("R*-tree", tree, entries, eps, args, &table);
  }
  {
    MTreeOptions options;
    options.promotion = MTreePromotion::kSampled;  // insert-time speed
    MTree<2> tree(options);
    for (const auto& e : entries) tree.Insert(e.id, e.point);
    Measure("M-tree", tree, entries, eps, args, &table);
  }
  {
    RStarTree<2> tree;
    PackStr(&tree, entries);
    Measure("R*-tree (STR-packed)", tree, entries, eps, args, &table);
  }
  {
    RStarTree<2> tree;
    PackHilbert(&tree, entries);
    Measure("R*-tree (Hilbert-packed)", tree, entries, eps, args, &table);
  }

  EmitTable(table, args, "exp4_tree_structures");
  std::printf(
      "Expected: output sizes are identical for SSJ and close for the "
      "compact joins; times vary mildly with tree quality — the paper's "
      "index-independence claim.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

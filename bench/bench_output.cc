/// \file
/// Output-pipeline benchmark: the paper's text format vs the CSJ2 compact
/// binary format (docs/OUTPUT_FORMAT.md), end to end — the join runs with
/// real materialization ("until the last tuple ... is written to disk") and
/// we compare wall time and output bytes per format.
///
/// The workload is dense Gaussian clumps, Hilbert-sorted so nearby points
/// get nearby ids — the locality a bulk-loaded or spatially-sorted dataset
/// has, and the one the binary format's delta coding exploits.
///
/// Also validates the format-aware byte accounting along the way: for every
/// materialized run, sink.bytes() must equal the file's stat() size, and a
/// CountingSink configured for the same format must predict that size
/// exactly without writing anything.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/result_cursor.h"
#include "data/generators.h"
#include "geom/hilbert.h"

namespace csj::bench {
namespace {

uint64_t FileSizeOrDie(const std::string& path) {
  struct stat st;
  CSJ_CHECK(::stat(path.c_str(), &st) == 0) << "stat failed: " << path;
  return static_cast<uint64_t>(st.st_size);
}

/// Dense clumps with id locality: Gaussian clusters, Hilbert-sorted before
/// ids are assigned.
std::vector<Entry<2>> ClumpedEntries(size_t n, uint64_t seed) {
  const int clusters = std::max(1, static_cast<int>(n / 200));
  auto points = GenerateGaussianClusters<2>(n, clusters, 0.002, seed);
  constexpr int kOrder = 16;
  constexpr double kScale = (1 << kOrder) - 1;
  std::sort(points.begin(), points.end(),
            [](const Point2& a, const Point2& b) {
              return HilbertIndex2D(kOrder,
                                    static_cast<uint32_t>(a[0] * kScale),
                                    static_cast<uint32_t>(a[1] * kScale)) <
                     HilbertIndex2D(kOrder,
                                    static_cast<uint32_t>(b[0] * kScale),
                                    static_cast<uint32_t>(b[1] * kScale));
            });
  return ToEntries(points);
}

struct FormatRun {
  double seconds = 0.0;
  double write_seconds = 0.0;
  uint64_t bytes = 0;
  bool accounting_exact = false;  ///< sink.bytes() == stat() size
};

void Body(const BenchArgs& args) {
  const size_t n = args.smoke ? 20'000 : (args.full ? 1'000'000 : 200'000);
  const double eps = 0.004;
  const auto entries = ClumpedEntries(n, /*seed=*/42);
  const auto tree = BuildDefaultTree(entries);

  JoinOptions options;
  options.epsilon = eps;
  options.window_size = 10;
  options.measure_write_time = true;

  Table table(StrFormat("Output pipeline — text vs CSJ2 binary "
                        "(%s clumped points, eps=%g, best of %d)",
                        WithThousands(n).c_str(), eps, args.runs),
              {"algorithm", "format", "time", "write", "bytes", "vs text",
               "counted==file", "predicted==file"});

  const std::string dir = StrFormat("/tmp/csj_bench_output_%d", getpid());
  CSJ_CHECK(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);

  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSSJ, JoinAlgorithm::kNCSJ, JoinAlgorithm::kCSJ}) {
    FormatRun text_run;
    for (const OutputFormat format :
         {OutputFormat::kText, OutputFormat::kBinary}) {
      const std::string path =
          StrFormat("%s/%s.%s", dir.c_str(), JoinAlgorithmName(algorithm),
                    OutputFormatName(format));
      BenchRecorder::Get().SetContext(
          StrFormat("%s/%s", JoinAlgorithmName(algorithm),
                    OutputFormatName(format)));
      FormatRun run;
      for (int r = 0; r < args.runs; ++r) {
        auto sink =
            MakeSinkOrDie(OutputSpec::File(path, entries.size(), format));
        const JoinStats stats = RunSelfJoin(algorithm, tree, options,
                                            sink.get());
        const Status finish = sink->Finish();
        CSJ_CHECK(finish.ok()) << finish.ToString();
        BenchRecorder::Get().RecordStats(stats);
        if (r == 0 || stats.elapsed_seconds < run.seconds) {
          run.seconds = stats.elapsed_seconds;
          run.write_seconds = stats.write_seconds;
        }
        run.bytes = sink->bytes();
        run.accounting_exact = sink->bytes() == FileSizeOrDie(path);
      }

      // A counting sink with the same byte model must predict the
      // materialized size exactly — the NVO storage-planning contract.
      auto counting =
          MakeSinkOrDie(OutputSpec::Counting(entries.size(), format));
      RunSelfJoin(algorithm, tree, options, counting.get());
      const bool predicted_exact = counting->bytes() == FileSizeOrDie(path);

      if (format == OutputFormat::kText) text_run = run;
      const double ratio =
          run.bytes == 0 ? 0.0
                         : static_cast<double>(text_run.bytes) /
                               static_cast<double>(run.bytes);
      table.AddRow({JoinAlgorithmName(algorithm), OutputFormatName(format),
                    HumanDuration(run.seconds),
                    HumanDuration(run.write_seconds),
                    WithThousands(run.bytes), StrFormat("%.2fx", ratio),
                    run.accounting_exact ? "yes" : "NO",
                    predicted_exact ? "yes" : "NO"});
      CSJ_CHECK(run.accounting_exact && predicted_exact)
          << JoinAlgorithmName(algorithm) << " " << OutputFormatName(format)
          << ": byte accounting diverged from the materialized file";

      if (format == OutputFormat::kBinary) {
        // Decode check: the binary file must replay to the same record
        // counts the sink accepted.
        auto cursor = OpenResultCursor(path);
        CSJ_CHECK(cursor.ok()) << cursor.status().ToString();
        while ((*cursor)->Next()) {
        }
        CSJ_CHECK((*cursor)->status().ok())
            << (*cursor)->status().ToString();
      }
      std::remove(path.c_str());
    }
  }
  ::rmdir(dir.c_str());
  EmitTable(table, args, "output_pipeline");
  std::printf(
      "Expected: binary cuts output bytes ~2.5x on link-only SSJ output and "
      ">=3x on the group-heavy compact outputs (delta-coded ids inside "
      "clumps), with write time shrinking accordingly — the join is "
      "output-bound, so end-to-end time should not regress.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Body);
}

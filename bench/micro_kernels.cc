/// \file
/// google-benchmark microbenchmarks for the hot kernels: box distance math,
/// group-merge checks, tree construction and the chaos-game generator. These
/// guard the constant-time claims of Section V-A (group membership,
/// insertion and boundary updates must stay O(1)).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <vector>

#include "core/group.h"
#include "core/join_stats.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "geom/dispatch.h"
#include "index/bulk_load.h"
#include "index/mtree.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "util/random.h"

namespace csj {
namespace {

std::vector<Box2> RandomBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Box2> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Box2 box(Point2{{rng.UniformDouble(), rng.UniformDouble()}});
    box.Extend(Point2{{rng.UniformDouble(), rng.UniformDouble()}});
    boxes.push_back(box);
  }
  return boxes;
}

void BM_BoxMinDistance(benchmark::State& state) {
  const auto boxes = RandomBoxes(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SquaredMinDistance(boxes[i & 1023], boxes[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_BoxMinDistance);

void BM_BoxUnionDiameter(benchmark::State& state) {
  const auto boxes = RandomBoxes(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UnionDiameterBound(boxes[i & 1023], boxes[(i + 13) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_BoxUnionDiameter);

void BM_PointDistance2D(benchmark::State& state) {
  const auto points = GenerateUniform<2>(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SquaredDistance(points[i & 1023], points[(i + 5) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_PointDistance2D);

/// Section V-A constant-time claim: a group membership trial must not scale
/// with group size. Merge attempts against groups of growing size.
void BM_GroupMergeAttempt(benchmark::State& state) {
  const size_t group_size = static_cast<size_t>(state.range(0));
  Group<2> group(0, Point2{{0.0, 0.0}}, 1, Point2{{0.001, 0.0}});
  const double eps2 = 0.1 * 0.1;
  for (PointId id = 2; id < group_size; ++id) {
    group.TryAddLink(eps2, 0, Point2{{0.0, 0.0}}, id,
                     Point2{{0.0005, 0.0001 * (id % 100)}});
  }
  for (auto _ : state) {
    // A failing trial: extension check only, no commit.
    benchmark::DoNotOptimize(group.TryAddLink(
        eps2, 500000, Point2{{5.0, 5.0}}, 500001, Point2{{5.001, 5.0}}));
  }
}
BENCHMARK(BM_GroupMergeAttempt)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RStarInsert(benchmark::State& state) {
  const auto points = GenerateUniform<2>(
      static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    RStarTree<2> tree;
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(static_cast<PointId>(i), points[i]);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(10000);

void BM_StrBulkLoad(benchmark::State& state) {
  const auto entries = ToEntries(
      GenerateUniform<2>(static_cast<size_t>(state.range(0)), 5));
  for (auto _ : state) {
    RStarTree<2> tree;
    auto copy = entries;
    PackStr(&tree, std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrBulkLoad)->Arg(10000)->Arg(100000);

void BM_MTreeInsert(benchmark::State& state) {
  const auto points = GenerateUniform<2>(
      static_cast<size_t>(state.range(0)), 6);
  MTreeOptions options;
  options.promotion = MTreePromotion::kSampled;
  for (auto _ : state) {
    MTree<2> tree(options);
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(static_cast<PointId>(i), points[i]);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MTreeInsert)->Arg(1000)->Arg(10000);

void BM_ChaosGame3D(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateSierpinski3D(static_cast<size_t>(state.range(0)), 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaosGame3D)->Arg(100000);

// --- Per-ISA kernel backends -------------------------------------------------
//
// The two dispatchable primitives behind LeafKernel::kSimd (geom/dispatch.h),
// timed per backend over the same SoA data so the scalar/avx2/avx512 rows are
// directly comparable. Arg(i) is the KernelIsa value; benchmarks for ISAs
// this host cannot run are skipped with an error label rather than silently
// timing the scalar fallback.

constexpr size_t kIsaWindow = 1024;

/// SoA coordinate arrays + a center chosen so roughly half the window hits.
struct IsaFixture {
  std::vector<double> x, y;
  std::array<const double*, 2> dims;
  std::array<double, 2> center;
  double eps2;

  IsaFixture() : x(kIsaWindow), y(kIsaWindow) {
    Rng rng(8);
    for (size_t i = 0; i < kIsaWindow; ++i) {
      x[i] = rng.UniformDouble();
      y[i] = rng.UniformDouble();
    }
    dims = {x.data(), y.data()};
    center = {0.5, 0.5};
    eps2 = 0.4 * 0.4;
  }
};

void BM_IsaWindowHits(benchmark::State& state) {
  const KernelIsa isa = static_cast<KernelIsa>(state.range(0));
  if (!KernelIsaAvailable(isa)) {
    state.SkipWithError("ISA unavailable on this host/build");
    return;
  }
  static const IsaFixture& fx = *new IsaFixture();
  const KernelBackend& be = GetKernelBackend(isa);
  std::vector<uint32_t> hits(kIsaWindow);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.window_hits(fx.dims.data(), 2,
                                            fx.center.data(), 0, kIsaWindow,
                                            fx.eps2, hits.data()));
  }
  state.SetItemsProcessed(state.iterations() * kIsaWindow);
  state.SetLabel(KernelIsaName(isa));
}
BENCHMARK(BM_IsaWindowHits)->Arg(0)->Arg(1)->Arg(2);

void BM_IsaSweepBound(benchmark::State& state) {
  const KernelIsa isa = static_cast<KernelIsa>(state.range(0));
  if (!KernelIsaAvailable(isa)) {
    state.SkipWithError("ISA unavailable on this host/build");
    return;
  }
  static const IsaFixture& fx = *new IsaFixture();
  const KernelBackend& be = GetKernelBackend(isa);
  std::vector<double> sorted = fx.x;
  std::sort(sorted.begin(), sorted.end());
  const double eps2 = 0.05 * 0.05;  // short windows: the common join regime
  size_t i = 0;
  for (auto _ : state) {
    const size_t begin = i & (kIsaWindow - 1);
    benchmark::DoNotOptimize(be.sweep_bound(sorted.data(), begin, kIsaWindow,
                                            sorted[begin], eps2));
    ++i;
  }
  state.SetLabel(KernelIsaName(isa));
}
BENCHMARK(BM_IsaSweepBound)->Arg(0)->Arg(1)->Arg(2);

void BM_SinkByteAccounting(benchmark::State& state) {
  auto sink = MakeSinkOrDie(OutputSpec::Counting(10'000'000));  // 7-digit ids
  PointId id = 0;
  for (auto _ : state) {
    sink->Link(id, id + 1);
    ++id;
  }
  benchmark::DoNotOptimize(sink->bytes());
}
BENCHMARK(BM_SinkByteAccounting);

}  // namespace
}  // namespace csj

BENCHMARK_MAIN();

/// \file
/// Ablations for the design choices DESIGN.md calls out:
///  * early-stop vs merge-only: isolates how much of CSJ's saving comes from
///    the subtree stopping rule vs the g-window merging (the paper's
///    Experiment 3 attributes most time savings to the stop rule);
///  * traversal order: pseudocode index order vs MinDistance-sorted child
///    pairs (Brinkhoff-style, paper ref [1]);
///  * window recency policy: creation order vs promote-on-merge (LRU-like).

#include <cstdio>

#include "bench_common.h"
#include "data/generators.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"
#include "index/mtree.h"
#include "metric/generic_mtree.h"
#include "metric/metric_join.h"

namespace csj::bench {
namespace {

void RunGroupShapeAblation(const BenchArgs& args);
void RunFanoutSweep(const BenchArgs& args);

RunResult Run(const RStarTree<2>& tree, size_t n, const JoinOptions& options,
              const BenchArgs& args) {
  RunResult best;
  for (int r = 0; r < args.runs; ++r) {
    auto sink = MakeSinkOrDie(OutputSpec::Counting(n));
    const JoinStats stats = CompactSimilarityJoin(tree, options, sink.get());
    if (r == 0 || stats.elapsed_seconds < best.seconds) {
      best.seconds = stats.elapsed_seconds;
      best.stats = stats;
    }
    best.bytes = sink->bytes();
    best.groups = sink->num_groups();
    best.links = sink->num_links();
  }
  return best;
}

void Main(const BenchArgs& args) {
  RoadNetOptions net;
  net.num_points = args.full ? 27000 : 15000;
  net.seed = 27;
  const auto entries = ToEntries(GenerateRoadNetwork(net));
  RStarTree<2> tree;
  PackStr(&tree, entries);

  Table table("Ablations — CSJ(10) on road data",
              {"eps", "variant", "time", "bytes", "links", "groups",
               "early stops", "merges"});

  for (double eps : {0.01, 0.05, 0.15}) {
    struct VariantSpec {
      const char* label;
      bool early_stop;
      bool sort_pairs;
      bool promote;
      bool best_fit;
    };
    const VariantSpec variants[] = {
        {"baseline", true, false, false, false},
        {"no early stop", false, false, false, false},
        {"sorted child pairs", true, true, false, false},
        {"promote on merge", true, false, true, false},
        {"best-fit window", true, false, false, true},
    };
    for (const auto& v : variants) {
      JoinOptions options;
      options.epsilon = eps;
      options.window_size = 10;
      options.early_stop = v.early_stop;
      options.sort_child_pairs = v.sort_pairs;
      options.promote_on_merge = v.promote;
      options.window_policy =
          v.best_fit ? WindowPolicy::kBestFit : WindowPolicy::kFirstFit;
      const RunResult r = Run(tree, entries.size(), options, args);
      table.AddRow({StrFormat("%.3g", eps), v.label,
                    HumanDuration(r.seconds), WithThousands(r.bytes),
                    WithThousands(r.links), WithThousands(r.groups),
                    WithThousands(r.stats.early_stops),
                    WithThousands(r.stats.merges)});
    }
  }
  EmitTable(table, args, "ablations");
  std::printf(
      "Expected: disabling the early stop slows CSJ down sharply at large "
      "eps and bloats link-merge traffic (the stop rule is the main saving, "
      "as the paper's Experiment 3 concludes); the other two toggles are "
      "second-order.\n\n");

  RunGroupShapeAblation(args);
  RunFanoutSweep(args);
}

/// Node-size ablation: the early-stopping rule fires only when a node's
/// diameter drops below eps, so the tree's fanout (hence leaf size)
/// directly controls how much N-CSJ/CSJ can compact. This sweep quantifies
/// the leaf-diameter/eps interplay behind the Experiment 1 curves.
void RunFanoutSweep(const BenchArgs& args) {
  RoadNetOptions net;
  net.num_points = args.full ? 27000 : 15000;
  net.seed = 27;
  const auto entries = ToEntries(GenerateRoadNetwork(net));
  const double eps = 0.05;

  Table table(StrFormat("Ablation — R*-tree fanout vs compaction, eps=%.3g",
                        eps),
              {"max fanout", "avg leaf diag", "early stops", "N-CSJ bytes",
               "CSJ(10) bytes", "CSJ(10) time"});
  for (size_t fanout : {8, 16, 32, 64, 128}) {
    RStarOptions options;
    options.max_fanout = fanout;
    options.min_fanout = std::max<size_t>(2, fanout * 2 / 5);
    RStarTree<2> tree(options);
    for (const auto& e : entries) tree.Insert(e.id, e.point);

    double diag_sum = 0.0;
    uint64_t leaves = 0;
    tree.ForEachNode([&](NodeId n) {
      if (tree.IsLeaf(n)) {
        diag_sum += tree.MaxDiameter(n);
        ++leaves;
      }
    });

    JoinOptions join_options;
    join_options.epsilon = eps;
    join_options.window_size = 10;
    auto ncsj = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    NaiveCompactJoin(tree, join_options, ncsj.get());
    auto csj = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    const JoinStats stats =
        CompactSimilarityJoin(tree, join_options, csj.get());

    table.AddRow({StrFormat("%zu", fanout),
                  StrFormat("%.4f", diag_sum / static_cast<double>(leaves)),
                  WithThousands(stats.early_stops),
                  WithThousands(ncsj->bytes()), WithThousands(csj->bytes()),
                  HumanDuration(stats.elapsed_seconds)});
  }
  EmitTable(table, args, "ablation_fanout");
  std::printf(
      "Expected: smaller fanout -> tighter leaves -> the early stop fires "
      "at lower eps and N-CSJ compacts more; very small fanouts pay tree "
      "overhead. The join's output-size dependence on the index is bounded "
      "(Experiment 4) but not zero.\n");
}

/// Section V-A ablation: the paper argues for MBR groups (diagonal <= eps)
/// over bounding circles/balls because centering balls optimally is
/// expensive. Our metric join implements the cheap ball alternative (fixed
/// center, radius eps/2); running both on the *same* vector data and tree
/// family quantifies how much output the conservative ball shape gives up.
void RunGroupShapeAblation(const BenchArgs& args) {
  struct L2 {
    double operator()(const Point2& a, const Point2& b) const {
      return Distance(a, b);
    }
  };
  SoneiraPeeblesOptions galaxy;
  galaxy.levels = args.full ? 7 : 6;
  galaxy.eta = 5;
  galaxy.num_points = args.full ? 40000 : 15000;
  const auto points = GenerateSoneiraPeebles<2>(galaxy);
  const auto entries = ToEntries(points);

  GenericMTreeOptions mtree_options;
  mtree_options.max_fanout = 32;
  GenericMTree<Point2, L2> ball_tree(L2(), mtree_options);
  MTreeOptions coord_options;
  coord_options.max_fanout = 32;
  coord_options.promotion = MTreePromotion::kSampled;
  MTree<2> mbr_tree(coord_options);
  for (const auto& e : entries) {
    ball_tree.Insert(e.id, e.point);
    mbr_tree.Insert(e.id, e.point);
  }

  Table table("Section V-A — group shape: MBR(diag<=eps) vs ball(r=eps/2) "
              "on a Soneira-Peebles galaxy catalog",
              {"eps", "MBR-group bytes", "ball-group bytes", "ball penalty",
               "MBR time", "ball time"});
  for (double eps : {0.002, 0.01, 0.04}) {
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = 10;
    auto mbr_sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    const JoinStats mbr =
        CompactSimilarityJoin(mbr_tree, options, mbr_sink.get());
    auto ball_sink = MakeSinkOrDie(OutputSpec::Counting(entries.size()));
    const JoinStats ball =
        MetricCompactJoin(ball_tree, options, ball_sink.get());
    const double penalty =
        mbr_sink->bytes() == 0
            ? 0.0
            : static_cast<double>(ball_sink->bytes()) /
                  static_cast<double>(mbr_sink->bytes());
    table.AddRow({StrFormat("%.3g", eps), WithThousands(mbr_sink->bytes()),
                  WithThousands(ball_sink->bytes()),
                  StrFormat("%.2fx", penalty),
                  HumanDuration(mbr.elapsed_seconds),
                  HumanDuration(ball.elapsed_seconds)});
  }
  EmitTable(table, args, "ablation_group_shape");
  std::printf(
      "Expected: ball groups stay lossless but give up output compactness "
      "versus MBR groups — the quantitative basis for the paper's Section "
      "V-A choice of hyper-rectangles in vector spaces.\n");
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

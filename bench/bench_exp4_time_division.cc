/// \file
/// Experiment 3 / Figure 8: where do the savings come from?
///
/// Part A (Figure 8): computation time vs disk-write time on MG County at
/// eps = 0.1 for SSJ, N-CSJ, CSJ(1), CSJ(10), CSJ(100). Output goes through
/// a real buffered file (the paper measures until the last tuple is written
/// to disk). Expected: most of the compact algorithms' saving is computation
/// (the early-stopping rule), with additional savings from smaller writes.
///
/// Part B: simulated page/cache accesses under several page and cache sizes.
/// Expected (the paper's finding): no significant difference between the
/// algorithms — the traversal is the same; only the work per node differs.

#include <cstdio>

#include "bench_common.h"
#include "data/roadnet.h"
#include "index/bulk_load.h"
#include "index/paged_tree.h"

namespace csj::bench {
namespace {

struct Variant {
  const char* label;
  JoinAlgorithm algorithm;
  int window;
};

constexpr Variant kVariants[] = {
    {"SSJ", JoinAlgorithm::kSSJ, 0},
    {"N-CSJ", JoinAlgorithm::kNCSJ, 0},
    {"CSJ(1)", JoinAlgorithm::kCSJ, 1},
    {"CSJ(10)", JoinAlgorithm::kCSJ, 10},
    {"CSJ(100)", JoinAlgorithm::kCSJ, 100},
};

void Main(const BenchArgs& args) {
  const auto mg = MakeMgCounty();
  RStarTree<2> tree;
  PackStr(&tree, mg.entries);
  const double eps = 0.1;
  const std::string out_dir = "/tmp";

  Table division(
      StrFormat("Figure 8 — MG County eps=%.2g: computation vs write time", eps),
      {"algorithm", "total", "compute", "write", "bytes written"});

  for (const Variant& v : kVariants) {
    JoinOptions options;
    options.epsilon = eps;
    options.window_size = v.window == 0 ? 10 : v.window;
    options.measure_write_time = true;

    double best_total = 0.0, best_write = 0.0;
    uint64_t bytes = 0;
    for (int r = 0; r < args.runs; ++r) {
      const std::string path =
          out_dir + "/csj_fig8_" + std::to_string(r) + ".txt";
      auto sink =
          MakeSinkOrDie(OutputSpec::File(path, mg.entries.size()));
      const JoinStats stats =
          RunSelfJoin(v.algorithm, tree, options, sink.get());
      const Status finish = sink->Finish();
      if (!finish.ok()) {
        std::fprintf(stderr, "sink error: %s\n", finish.ToString().c_str());
        return;
      }
      if (r == 0 || stats.elapsed_seconds < best_total) {
        best_total = stats.elapsed_seconds;
        best_write = stats.write_seconds;
      }
      bytes = sink->bytes();
      std::remove(path.c_str());
    }
    division.AddRow({v.label, HumanDuration(best_total),
                     HumanDuration(best_total - best_write),
                     HumanDuration(best_write), WithThousands(bytes)});
  }
  EmitTable(division, args, "fig8_time_division");

  // Part C: the same joins running off a real disk-resident tree (PagedTree
  // reads 4KB blocks through an LRU cache with actual file IO).
  {
    const std::string paged_path = out_dir + "/csj_fig8_paged.csjp";
    const Status written = WritePagedTree(tree, paged_path);
    if (!written.ok()) {
      std::fprintf(stderr, "paged write failed: %s\n",
                   written.ToString().c_str());
      return;
    }
    Table disk("Experiment 3 — real disk-resident joins (4KB blocks, "
               "256-block cache)",
               {"algorithm", "time", "block requests", "real disk reads",
                "hit rate"});
    for (const Variant& v : kVariants) {
      auto paged = PagedTree<2>::Open(paged_path);
      if (!paged.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     paged.status().ToString().c_str());
        return;
      }
      JoinOptions options;
      options.epsilon = eps;
      options.window_size = v.window == 0 ? 10 : v.window;
      auto sink = MakeSinkOrDie(OutputSpec::Counting(mg.entries.size()));
      const JoinStats stats =
          RunSelfJoin(v.algorithm, *paged, options, sink.get());
      const PagedIoStats& io = paged->io_stats();
      const double hit_rate =
          io.block_requests == 0
              ? 0.0
              : 100.0 * static_cast<double>(io.block_cache_hits) /
                    static_cast<double>(io.block_requests);
      disk.AddRow({v.label, HumanDuration(stats.elapsed_seconds),
                   WithThousands(io.block_requests),
                   WithThousands(io.disk_reads),
                   StrFormat("%.1f%%", hit_rate)});
    }
    EmitTable(disk, args, "exp3_real_disk");
    std::remove(paged_path.c_str());
  }

  // Part B: page and cache accesses under varying page/cache sizes.
  for (const auto& [nodes_per_page, cache_pages] :
       std::vector<std::pair<int, size_t>>{{4, 64}, {16, 64}, {4, 1024}}) {
    Table pages(StrFormat("Experiment 3 — page accesses (%d nodes/page, "
                          "%zu-page LRU cache)",
                          nodes_per_page, cache_pages),
                {"algorithm", "node accesses", "page requests", "disk reads",
                 "hit rate"});
    for (const Variant& v : kVariants) {
      NodeAccessTracker tracker(nodes_per_page, cache_pages);
      JoinOptions options;
      options.epsilon = eps;
      options.window_size = v.window == 0 ? 10 : v.window;
      options.tracker = &tracker;
      auto sink = MakeSinkOrDie(OutputSpec::Counting(mg.entries.size()));
      const JoinStats stats =
          RunSelfJoin(v.algorithm, tree, options, sink.get());
      const double hit_rate =
          stats.page_requests == 0
              ? 0.0
              : 100.0 * static_cast<double>(stats.page_requests -
                                            stats.page_disk_reads) /
                    static_cast<double>(stats.page_requests);
      pages.AddRow({v.label, WithThousands(stats.node_accesses),
                    WithThousands(stats.page_requests),
                    WithThousands(stats.page_disk_reads),
                    StrFormat("%.1f%%", hit_rate)});
    }
    EmitTable(pages, args,
              StrFormat("exp3_pages_%d_%zu", nodes_per_page, cache_pages));
  }
}

}  // namespace
}  // namespace csj::bench

int main(int argc, char** argv) {
  return csj::bench::BenchMain(argc, argv, csj::bench::Main);
}

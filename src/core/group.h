#ifndef CSJ_CORE_GROUP_H_
#define CSJ_CORE_GROUP_H_

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/join_stats.h"
#include "core/sink.h"
#include "geom/box.h"
#include "util/exec_context.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/timer.h"

/// \file
/// Groups and the g-most-recent-groups merge window of CSJ(g).
///
/// A group is a set of point ids plus a bounding MBR whose diagonal is kept
/// <= epsilon, which guarantees (Section V-A) that all members mutually
/// satisfy the range — membership tests, insertions and boundary updates are
/// all constant time. The window implements mergeIntoPrevGroup from the
/// paper's Figure 3: a link is merged into the first of the g most recent
/// groups whose tentatively-extended MBR still has diagonal <= epsilon;
/// otherwise it founds a new group.

namespace csj {

/// One output group under construction.
template <int D>
class Group {
 public:
  /// New group from a single link (two points).
  Group(PointId id_a, const Point<D>& a, PointId id_b, const Point<D>& b) {
    box_.Extend(a);
    box_.Extend(b);
    members_.push_back(id_a);
    if (id_b != id_a) members_.push_back(id_b);
  }

  /// New group from a whole subtree (the early-stopping rule). `box` must
  /// cover all member points and have diagonal <= epsilon.
  Group(std::vector<PointId> members, const Box<D>& box)
      : box_(box), members_(std::move(members)) {}

  /// Squared diagonal the MBR would have if extended to cover the link —
  /// the dry-run of the merge test (used by the best-fit window policy).
  double ExtensionSquaredDiagonal(const Point<D>& a, const Point<D>& b) const {
    Box<D> extended = box_;
    extended.Extend(a);
    extended.Extend(b);
    return extended.SquaredDiagonal();
  }

  /// Attempts to absorb the link (a, b): extends the MBR tentatively and
  /// commits only if the extended diagonal is still within eps (squared
  /// comparison; no sqrt). Returns true on success.
  bool TryAddLink(double eps_squared, PointId id_a, const Point<D>& a,
                  PointId id_b, const Point<D>& b) {
    Box<D> extended = box_;
    extended.Extend(a);
    extended.Extend(b);
    if (extended.SquaredDiagonal() > eps_squared) return false;
    box_ = extended;
    AddMember(id_a);
    AddMember(id_b);
    return true;
  }

  /// Unconditional absorb (caller already verified the bound via
  /// ExtensionSquaredDiagonal).
  void AddLink(PointId id_a, const Point<D>& a, PointId id_b,
               const Point<D>& b) {
    box_.Extend(a);
    box_.Extend(b);
    AddMember(id_a);
    AddMember(id_b);
  }

  const Box<D>& box() const { return box_; }
  const std::vector<PointId>& members() const { return members_; }
  size_t size() const { return members_.size(); }

 private:
  void AddMember(PointId id) {
    // The dedup set is built lazily: most groups (especially big subtree
    // groups) never receive a merged link, so they never pay for it.
    if (member_set_.empty()) {
      member_set_.insert(members_.begin(), members_.end());
    }
    if (member_set_.insert(id).second) members_.push_back(id);
  }

  Box<D> box_;
  std::vector<PointId> members_;
  std::unordered_set<PointId> member_set_;
};

/// The CSJ(g) merge window: holds the g most recently created groups; older
/// groups are emitted to the sink as they are evicted, and Flush() emits the
/// remainder at the end of the join.
template <int D>
class GroupWindow {
 public:
  /// \param capacity the paper's g (>= 1).
  /// \param epsilon query range.
  /// \param sink receives evicted/flushed groups. Not owned.
  /// \param stats implied-link accounting. Not owned.
  /// \param write_timer if non-null, sink time is accumulated there.
  /// \param exec optional governance context (util/exec_context.h). When it
  ///        carries a memory budget, each admitted group charges an estimate
  ///        of its member storage; under pressure the window degrades by
  ///        shedding its oldest groups (still-correct output, fewer merge
  ///        opportunities) before tripping `kResourceExhausted`.
  GroupWindow(int capacity, double epsilon, JoinSink* sink, JoinStats* stats,
              StopwatchAccumulator* write_timer,
              const ExecContext* exec = nullptr)
      : capacity_(static_cast<size_t>(capacity)),
        eps_squared_(epsilon * epsilon),
        sink_(sink),
        stats_(stats),
        write_timer_(write_timer),
        exec_(exec) {
    CSJ_CHECK(capacity >= 1);
  }

  ~GroupWindow() {
    // An aborted run destroys the window with groups still pending; their
    // reservations must flow back to the budget (without emitting).
    MemoryBudget* budget = Budget();
    if (budget != nullptr) {
      for (uint64_t charge : charges_) {
        if (charge > 0) budget->Release(charge);
      }
    }
  }

  GroupWindow(const GroupWindow&) = delete;
  GroupWindow& operator=(const GroupWindow&) = delete;

  /// mergeIntoPrevGroup (Figure 3): try the g most recent groups, newest
  /// first; on failure start a new group containing just this link.
  /// \param promote_on_merge move a successfully-extended group to the
  ///        most-recent slot (ablation; the default keeps creation order).
  void MergeLink(PointId id_a, const Point<D>& a, PointId id_b,
                 const Point<D>& b, bool promote_on_merge) {
    for (size_t i = window_.size(); i-- > 0;) {
      ++stats_->merge_attempts;
      if (window_[i].TryAddLink(eps_squared_, id_a, a, id_b, b)) {
        ++stats_->merges;
        if (promote_on_merge && i + 1 != window_.size()) {
          Group<D> g = std::move(window_[i]);
          window_.erase(window_.begin() + static_cast<long>(i));
          window_.push_back(std::move(g));
        }
        return;
      }
    }
    Push(Group<D>(id_a, a, id_b, b));
  }

  /// Best-fit variant of mergeIntoPrevGroup: evaluates every window group
  /// and commits to the one whose extended MBR stays *tightest* (Section
  /// V-B notes that insertion/grouping choices change output size; best-fit
  /// trades g dry-run extensions — still O(g), still constant per group —
  /// for better packing).
  void MergeLinkBestFit(PointId id_a, const Point<D>& a, PointId id_b,
                        const Point<D>& b, bool promote_on_merge) {
    size_t best = window_.size();
    double best_diag = eps_squared_;
    for (size_t i = window_.size(); i-- > 0;) {
      ++stats_->merge_attempts;
      const double diag = window_[i].ExtensionSquaredDiagonal(a, b);
      if (diag <= best_diag) {
        best_diag = diag;
        best = i;
      }
    }
    if (best == window_.size()) {
      Push(Group<D>(id_a, a, id_b, b));
      return;
    }
    ++stats_->merges;
    window_[best].AddLink(id_a, a, id_b, b);
    if (promote_on_merge && best + 1 != window_.size()) {
      Group<D> g = std::move(window_[best]);
      window_.erase(window_.begin() + static_cast<long>(best));
      window_.push_back(std::move(g));
    }
  }

  /// createNewGroup(n): admit a subtree group to the window so later links
  /// may merge into it.
  void AddSubtreeGroup(std::vector<PointId> members, const Box<D>& box) {
    if (members.size() < 2) return;  // a singleton implies no links
    Push(Group<D>(std::move(members), box));
  }

  /// Emits everything still buffered. Call exactly once, after the traversal.
  void Flush() {
    CSJ_METRIC_COUNT("window.flushed_groups", window_.size());
    while (!window_.empty()) EvictOldest();
  }

  size_t live_groups() const { return window_.size(); }

  /// Checkpoint support: snapshots the pending groups oldest-first (member
  /// order preserved — group emission must stay byte-identical on resume).
  std::vector<checkpoint::WindowGroup> ExportState() const {
    std::vector<checkpoint::WindowGroup> out;
    out.reserve(window_.size());
    for (const Group<D>& g : window_) {
      checkpoint::WindowGroup wg;
      wg.members = g.members();
      wg.box_lo.assign(g.box().lo.begin(), g.box().lo.end());
      wg.box_hi.assign(g.box().hi.begin(), g.box().hi.end());
      out.push_back(std::move(wg));
    }
    return out;
  }

  /// Checkpoint support: refills a still-empty window from a manifest
  /// snapshot, re-establishing the exact merge candidates the interrupted
  /// run had pending.
  void RestoreState(const std::vector<checkpoint::WindowGroup>& groups) {
    CSJ_CHECK(window_.empty()) << "RestoreState on a non-empty window";
    for (const checkpoint::WindowGroup& wg : groups) {
      CSJ_CHECK(wg.box_lo.size() == D && wg.box_hi.size() == D)
          << "checkpointed window group has wrong dimensionality";
      Point<D> lo, hi;
      for (int i = 0; i < D; ++i) {
        lo[i] = wg.box_lo[static_cast<size_t>(i)];
        hi[i] = wg.box_hi[static_cast<size_t>(i)];
      }
      // Straight push_back: the snapshot holds at most capacity_ groups and
      // eviction here would double-emit. Reservations are best-effort on a
      // resume: a denial here must not kill the run before its first task.
      Group<D> group(wg.members, Box<D>(lo, hi));
      uint64_t charged = 0;
      MemoryBudget* budget = Budget();
      if (budget != nullptr) {
        const uint64_t bytes = GroupBytes(group);
        if (budget->TryReserve(bytes)) charged = bytes;
      }
      window_.push_back(std::move(group));
      charges_.push_back(charged);
    }
    CSJ_CHECK(window_.size() <= capacity_)
        << "checkpointed window exceeds the configured g";
  }

 private:
  MemoryBudget* Budget() const {
    return exec_ != nullptr ? exec_->memory_budget() : nullptr;
  }

  /// Estimated heap footprint of a group: member ids plus container
  /// overhead. Deliberately approximate (links merged later grow members_
  /// uncharged); the dominant cost — big subtree groups — is captured at
  /// admission, which is when it is decided.
  static uint64_t GroupBytes(const Group<D>& group) {
    return static_cast<uint64_t>(group.size()) * sizeof(PointId) +
           kGroupOverheadBytes;
  }

  void Push(Group<D> group) {
    uint64_t charged = 0;
    MemoryBudget* budget = Budget();
    if (budget != nullptr) {
      const uint64_t bytes = GroupBytes(group);
      // Graceful degradation: shed the oldest groups (their output is still
      // correct; only future merge opportunities are lost) until the new
      // group fits. Only when even an empty window cannot hold it does the
      // run trip kResourceExhausted.
      while (!budget->TryReserve(bytes)) {
        if (window_.empty()) {
          exec_->Trip(Status::ResourceExhausted(StrFormat(
              "memory budget exhausted admitting a %zu-member group to the "
              "CSJ(g) window (used %llu of %llu bytes)",
              group.size(), static_cast<unsigned long long>(budget->used()),
              static_cast<unsigned long long>(budget->limit()))));
          return;
        }
        CSJ_METRIC_COUNT("resource.window_degradations", 1);
        EvictOldest();
      }
      charged = bytes;
    }
    window_.push_back(std::move(group));
    charges_.push_back(charged);
    CSJ_METRIC_HIST("window.occupancy", window_.size());
    // Under budget pressure the window proactively halves its capacity —
    // fewer pending groups, more headroom for the rest of the run.
    size_t capacity = capacity_;
    if (budget != nullptr && window_.size() > 1 && budget->UnderPressure()) {
      capacity = std::max<size_t>(1, capacity_ / 2);
    }
    while (window_.size() > capacity) {
      CSJ_METRIC_COUNT("window.evictions", 1);
      if (capacity != capacity_) {
        CSJ_METRIC_COUNT("resource.window_degradations", 1);
      }
      EvictOldest();
    }
  }

  void EvictOldest() {
    Emit(window_.front());
    window_.pop_front();
    if (!charges_.empty()) {
      if (charges_.front() > 0) Budget()->Release(charges_.front());
      charges_.pop_front();
    }
  }

  void Emit(const Group<D>& group) {
    if (group.size() < 2) return;
    stats_->AddImpliedGroup(group.size());
    ScopedStopwatch watch(write_timer_);
    sink_->Group(group.members());
  }

  static constexpr uint64_t kGroupOverheadBytes = 96;

  size_t capacity_;
  double eps_squared_;
  JoinSink* sink_;
  JoinStats* stats_;
  StopwatchAccumulator* write_timer_;
  const ExecContext* exec_;
  std::deque<Group<D>> window_;
  /// Per-group budget reservation, aligned with window_ (0 = uncharged).
  std::deque<uint64_t> charges_;
};

}  // namespace csj

#endif  // CSJ_CORE_GROUP_H_

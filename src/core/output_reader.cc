#include "core/output_reader.h"

#include "core/result_cursor.h"

namespace csj {

Result<JoinOutput> ReadJoinOutput(const std::string& path) {
  CSJ_ASSIGN_OR_RETURN(auto cursor, OpenResultCursor(path));
  JoinOutput output;
  while (cursor->Next()) {
    const ResultRecord& record = cursor->record();
    if (record.is_group) {
      output.groups.emplace_back(record.ids.begin(), record.ids.end());
    } else {
      output.links.emplace_back(record.ids[0], record.ids[1]);
    }
  }
  CSJ_RETURN_IF_ERROR(cursor->status());
  return output;
}

}  // namespace csj

#include "core/output_reader.h"

#include <cstdio>
#include <cstdlib>

#include "util/format.h"

namespace csj {

Result<JoinOutput> ReadJoinOutput(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);

  JoinOutput output;
  // Group lines can be long (an early-stopped subtree may hold 100K+ ids),
  // so parse incrementally instead of line-buffering.
  std::vector<PointId> ids;
  bool in_number = false;
  uint64_t current = 0;
  int line_no = 1;

  auto finish_line = [&]() -> Status {
    if (in_number) {
      ids.push_back(static_cast<PointId>(current));
      in_number = false;
      current = 0;
    }
    if (ids.empty()) return Status::OK();  // blank line
    if (ids.size() == 1) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: singleton line", path.c_str(), line_no));
    }
    if (ids.size() == 2) {
      output.links.emplace_back(ids[0], ids[1]);
    } else {
      output.groups.emplace_back(ids);
    }
    ids.clear();
    return Status::OK();
  };

  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      const char c = buffer[i];
      if (c >= '0' && c <= '9') {
        current = current * 10 + static_cast<uint64_t>(c - '0');
        in_number = true;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        if (in_number) {
          ids.push_back(static_cast<PointId>(current));
          in_number = false;
          current = 0;
        }
      } else if (c == '\n') {
        const Status status = finish_line();
        if (!status.ok()) {
          std::fclose(f);
          return status;
        }
        ++line_no;
      } else {
        std::fclose(f);
        return Status::InvalidArgument(StrFormat(
            "%s:%d: unexpected character '%c'", path.c_str(), line_no, c));
      }
    }
  }
  const Status status = finish_line();  // file may not end with newline
  std::fclose(f);
  CSJ_RETURN_IF_ERROR(status);
  return output;
}

}  // namespace csj

#ifndef CSJ_CORE_QUERY_SPEC_H_
#define CSJ_CORE_QUERY_SPEC_H_

#include <cstdint>
#include <string>

#include "core/join_options.h"
#include "core/sink.h"
#include "geom/kernels.h"
#include "util/json.h"
#include "util/status.h"

/// \file
/// QuerySpec — the single user-facing description of a similarity-join
/// query, shared by csj_tool, csj_serve and the bench harness.
///
/// A QuerySpec says *what* the caller wants (dataset, eps, algorithm —
/// possibly "auto" — output shape, resource limits); the planner
/// (plan/planner.h) turns it into the *how*: a resolved spec plus derived
/// execution structs (`JoinOptions` / `EgoOptions`). Entry points no longer
/// hand-assemble option structs — they build a QuerySpec, validate it, and
/// derive. For explicitly specified configurations the derivation is a 1:1
/// field mapping, so output stays byte-identical to the pre-QuerySpec
/// plumbing.
///
/// The JSON field names below are exactly the csj_serve wire names
/// (docs/SERVING.md), so the serve protocol parses request knobs through
/// `QuerySpec::FromJson` and a one-shot tool run and a served query describe
/// themselves identically.

namespace csj {

/// The user-facing algorithm choice. Unlike `JoinAlgorithm` (which names a
/// concrete tree-join driver), this includes the EGO-sort family and the
/// planner's "auto".
enum class QueryAlgo {
  kAuto,  ///< let the planner pick (tree algorithms only)
  kSSJ,
  kNCSJ,
  kCSJ,
  kEgo,   ///< EGO-sort standard join (needs raw points, not a tree)
  kCEgo,  ///< EGO-sort compact join
};

/// Wire/flag name: "auto", "ssj", "ncsj", "csj", "ego", "cego".
const char* QueryAlgoName(QueryAlgo algo);

/// Inverse of QueryAlgoName. Returns false on unknown names.
bool ParseQueryAlgo(const std::string& name, QueryAlgo* algo);

/// True for the three tree algorithms (and false for auto/ego/cego).
inline bool IsTreeAlgo(QueryAlgo algo) {
  return algo == QueryAlgo::kSSJ || algo == QueryAlgo::kNCSJ ||
         algo == QueryAlgo::kCSJ;
}

/// True for the EGO-sort family.
inline bool IsEgoAlgo(QueryAlgo algo) {
  return algo == QueryAlgo::kEgo || algo == QueryAlgo::kCEgo;
}

/// The concrete tree-join driver for a resolved (non-auto, non-ego) algo.
inline JoinAlgorithm TreeAlgorithmFor(QueryAlgo algo) {
  switch (algo) {
    case QueryAlgo::kSSJ:
      return JoinAlgorithm::kSSJ;
    case QueryAlgo::kNCSJ:
      return JoinAlgorithm::kNCSJ;
    default:
      return JoinAlgorithm::kCSJ;
  }
}

/// One query, fully described. Defaults match the historical flag defaults
/// of csj_tool and the serve protocol.
struct QuerySpec {
  /// Dataset reference: a file path for one-shot runs, a registered dataset
  /// name for csj_serve. Empty is valid at the struct level (benches attach
  /// data directly); entry points enforce their own requirements.
  std::string dataset;
  /// Second dataset: selects a dual (spatial) join. Tree algorithms only.
  std::string dataset_b;

  QueryAlgo algo = QueryAlgo::kCSJ;

  /// Query range (the paper's epsilon). Must be > 0 to validate.
  double eps = 0.0;

  /// CSJ(g) merge-window size (the paper's g). JSON field "g".
  int window = 10;

  /// Leaf-level pair enumeration strategy. Output-invariant.
  LeafKernel leaf_kernel = LeafKernel::kSweep;

  /// Batched leaf-tile pipeline depth. Output-invariant; <= 1 disables.
  size_t leaf_batch = 64;

  /// Ablation: Brinkhoff-style child-pair ordering.
  bool sort_child_pairs = false;

  /// Worker threads. 0 = unspecified: the planner decides for `algo=auto`,
  /// explicit runs treat it as 1 (serial). Values > 1 select the
  /// checkpointed parallel runner in csj_tool; csj_serve ignores the field
  /// (each query runs serial on a server worker).
  int threads = 0;

  /// Wall-clock budget in milliseconds; 0 = unlimited (or the server
  /// default when served).
  uint64_t deadline_ms = 0;

  /// Memory budget in bytes; 0 = unlimited.
  uint64_t mem_budget = 0;

  /// Output shape: text, binary (CSJ2) or none (count only).
  OutputFormat output = OutputFormat::kText;

  friend bool operator==(const QuerySpec&, const QuerySpec&) = default;

  /// Structural validation (field ranges and combinations). Does not check
  /// that `dataset` resolves — that is the entry point's job.
  Status Validate() const;

  /// Serializes every field under its wire name. FromJson is an exact
  /// inverse: FromJson(ToJsonValue(s)) == s for any valid s.
  json::Value ToJsonValue() const;

  /// Strict parse: unknown fields and wrong types are errors, absent fields
  /// keep their defaults. Does not call Validate() — parse-then-validate,
  /// so callers can distinguish malformed requests from invalid ones.
  static Result<QuerySpec> FromJson(const json::Value& doc);
};

}  // namespace csj

#endif  // CSJ_CORE_QUERY_SPEC_H_

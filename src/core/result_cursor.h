#ifndef CSJ_CORE_RESULT_CURSOR_H_
#define CSJ_CORE_RESULT_CURSOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/sink.h"
#include "geom/point.h"
#include "util/status.h"

/// \file
/// Format-agnostic streaming reader for materialized join results.
///
/// A ResultCursor yields the result's records — links and groups — one at a
/// time, whichever on-disk format they were written in. Consumers
/// (expansion, statistics, csj_tool cat/verify/report) are written against
/// the cursor and run unchanged on the paper's text format and the CSJ2
/// binary format. OpenResultCursor sniffs the format from the file's first
/// bytes.
///
/// The binary backend validates per-block checksums and the file footer as
/// it reads, so a truncated or corrupted result surfaces as a Status
/// instead of silently decoding garbage.

namespace csj {

/// One record of a join result. `ids` points into cursor-owned storage and
/// is valid until the next Next() call.
struct ResultRecord {
  /// False for an individual link (exactly 2 ids). Note the text format
  /// cannot distinguish a 2-member group from a link, so text cursors
  /// always report 2-id lines as links; the binary format preserves the
  /// distinction.
  bool is_group = false;
  std::span<const PointId> ids;
};

/// Streaming reader over a materialized join result.
class ResultCursor {
 public:
  virtual ~ResultCursor() = default;

  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  /// Advances to the next record. Returns true if record() is valid; false
  /// at end-of-stream *or* on error — distinguish by status(), which is OK
  /// after a clean end.
  virtual bool Next() = 0;

  /// The current record; valid after Next() returned true, until the next
  /// Next() call.
  const ResultRecord& record() const { return record_; }

  /// Sticky error state. OK until a parse/IO error occurs.
  const Status& status() const { return status_; }

  /// The zero-pad id width the result declares, if its format stores one
  /// (CSJ2 does); 0 when unknown (text).
  virtual int declared_id_width() const { return 0; }

  /// The on-disk format this cursor decodes.
  virtual OutputFormat format() const = 0;

  /// Records emitted so far (links and groups counted separately; these are
  /// record counts, not implied-pair counts).
  uint64_t links_read() const { return links_read_; }
  uint64_t groups_read() const { return groups_read_; }

 protected:
  ResultCursor() = default;

  std::vector<PointId> ids_;  ///< backing storage for record().ids
  ResultRecord record_;
  Status status_;
  uint64_t links_read_ = 0;
  uint64_t groups_read_ = 0;
};

/// Opens a result file, sniffing text vs binary from the leading bytes.
Result<std::unique_ptr<ResultCursor>> OpenResultCursor(
    const std::string& path);
/// Opens a result file in an explicitly chosen format (kNone is invalid).
Result<std::unique_ptr<ResultCursor>> OpenResultCursor(
    const std::string& path, OutputFormat format);

/// Replays every record of `cursor` into `sink` (links as Link, groups as
/// Group). Stops at the first cursor or sink error and returns it; the
/// caller still owns sink->Finish(). With a text-format sink whose id_width
/// matches the producer's, this decodes a binary result back to the
/// canonical text file byte-for-byte.
Status ReplayResult(ResultCursor* cursor, JoinSink* sink);

}  // namespace csj

#endif  // CSJ_CORE_RESULT_CURSOR_H_

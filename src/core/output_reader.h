#ifndef CSJ_CORE_OUTPUT_READER_H_
#define CSJ_CORE_OUTPUT_READER_H_

#include <string>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "util/status.h"

/// \file
/// Materializing reader for join-output files. This is the consumer side of
/// the storage story — a server (e.g. the NVO scenario in the paper's
/// introduction) persists the compact output, then re-reads and expands it
/// when the client finally retrieves the result.
///
/// ReadJoinOutput is a convenience wrapper over the streaming ResultCursor
/// API (core/result_cursor.h) and accepts both the paper's text format (one
/// whitespace-separated id list per line; two ids form a link, three or
/// more a group) and the CSJ2 binary format. Prefer the cursor directly
/// when the result may not fit in memory.

namespace csj {

/// Parsed join output.
struct JoinOutput {
  std::vector<std::pair<PointId, PointId>> links;
  std::vector<std::vector<PointId>> groups;

  /// Total number of links the output implies (links + sum of C(k,2)),
  /// counting duplicates implied by overlapping groups.
  uint64_t ImpliedLinks() const {
    uint64_t total = links.size();
    for (const auto& g : groups) {
      total += g.size() * (g.size() - 1) / 2;
    }
    return total;
  }
};

/// Reads a join-output file. Lines with fewer than two ids are rejected
/// (a single id implies nothing and is never emitted by the writers).
Result<JoinOutput> ReadJoinOutput(const std::string& path);

}  // namespace csj

#endif  // CSJ_CORE_OUTPUT_READER_H_

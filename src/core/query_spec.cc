#include "core/query_spec.h"

namespace csj {

const char* QueryAlgoName(QueryAlgo algo) {
  switch (algo) {
    case QueryAlgo::kAuto:
      return "auto";
    case QueryAlgo::kSSJ:
      return "ssj";
    case QueryAlgo::kNCSJ:
      return "ncsj";
    case QueryAlgo::kCSJ:
      return "csj";
    case QueryAlgo::kEgo:
      return "ego";
    case QueryAlgo::kCEgo:
      return "cego";
  }
  return "?";
}

bool ParseQueryAlgo(const std::string& name, QueryAlgo* algo) {
  if (name == "auto") {
    *algo = QueryAlgo::kAuto;
  } else if (name == "ssj") {
    *algo = QueryAlgo::kSSJ;
  } else if (name == "ncsj") {
    *algo = QueryAlgo::kNCSJ;
  } else if (name == "csj") {
    *algo = QueryAlgo::kCSJ;
  } else if (name == "ego") {
    *algo = QueryAlgo::kEgo;
  } else if (name == "cego") {
    *algo = QueryAlgo::kCEgo;
  } else {
    return false;
  }
  return true;
}

Status QuerySpec::Validate() const {
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  if (window < 1) return Status::InvalidArgument("g must be at least 1");
  if (threads < 0) {
    return Status::InvalidArgument("threads must be non-negative");
  }
  if (!dataset_b.empty()) {
    if (IsEgoAlgo(algo)) {
      return Status::InvalidArgument(
          "dataset_b selects a dual tree join; not supported by ego/cego");
    }
    if (dataset.empty()) {
      return Status::InvalidArgument("dataset_b requires dataset");
    }
  }
  return Status::OK();
}

json::Value QuerySpec::ToJsonValue() const {
  json::Value v = json::Object{};
  if (!dataset.empty()) v["dataset"] = dataset;
  if (!dataset_b.empty()) v["dataset_b"] = dataset_b;
  v["algo"] = QueryAlgoName(algo);
  v["eps"] = eps;
  v["g"] = static_cast<int64_t>(window);
  v["leaf_kernel"] = LeafKernelName(leaf_kernel);
  v["leaf_batch"] = static_cast<uint64_t>(leaf_batch);
  v["sort_child_pairs"] = sort_child_pairs;
  v["threads"] = static_cast<int64_t>(threads);
  v["deadline_ms"] = deadline_ms;
  v["mem_budget"] = mem_budget;
  v["output"] = OutputFormatName(output);
  return v;
}

namespace {
Status FieldError(const std::string& field, const std::string& why) {
  return Status::InvalidArgument("request field '" + field + "': " + why);
}
}  // namespace

Result<QuerySpec> QuerySpec::FromJson(const json::Value& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("QuerySpec must be a JSON object");
  }
  QuerySpec spec;
  for (const auto& [key, value] : doc.AsObject()) {
    if (key == "dataset") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      spec.dataset = value.AsString();
    } else if (key == "dataset_b") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      spec.dataset_b = value.AsString();
    } else if (key == "algo") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      if (!ParseQueryAlgo(value.AsString(), &spec.algo)) {
        return FieldError(key, "must be auto, ssj, ncsj, csj, ego or cego");
      }
    } else if (key == "eps") {
      if (!value.is_number()) return FieldError(key, "expected a number");
      spec.eps = value.AsDouble();
    } else if (key == "g") {
      if (!value.is_number()) return FieldError(key, "expected a number");
      spec.window = static_cast<int>(value.AsInt());
    } else if (key == "leaf_kernel") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      if (!ParseLeafKernel(value.AsString(), &spec.leaf_kernel)) {
        return FieldError(key, "must be naive, sweep, simd, avx2 or avx512");
      }
    } else if (key == "leaf_batch") {
      if (!value.is_number()) return FieldError(key, "expected a number");
      spec.leaf_batch = static_cast<size_t>(value.AsUint());
    } else if (key == "sort_child_pairs") {
      if (!value.is_bool()) return FieldError(key, "expected a bool");
      spec.sort_child_pairs = value.AsBool();
    } else if (key == "threads") {
      if (!value.is_number()) return FieldError(key, "expected a number");
      spec.threads = static_cast<int>(value.AsInt());
    } else if (key == "deadline_ms") {
      if (!value.is_number()) return FieldError(key, "expected a number");
      spec.deadline_ms = value.AsUint();
    } else if (key == "mem_budget") {
      if (!value.is_number()) return FieldError(key, "expected a number");
      spec.mem_budget = value.AsUint();
    } else if (key == "output") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      if (!ParseOutputFormat(value.AsString(), &spec.output)) {
        return FieldError(key, "must be text, binary or none");
      }
    } else {
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }
  return spec;
}

}  // namespace csj

#ifndef CSJ_CORE_CHECKPOINT_JOIN_H_
#define CSJ_CORE_CHECKPOINT_JOIN_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/parallel_join.h"
#include "core/similarity_join.h"
#include "storage/checkpoint.h"
#include "util/exec_context.h"
#include "util/metrics.h"

/// \file
/// Crash-safe checkpointed join execution with resume, deadlines and
/// graceful cancellation.
///
/// A long self-join is decomposed into the deterministic task list of
/// parallel_join.h (independent single-subtree and subtree-pair units that
/// exactly cover the pair space). Tasks are the unit of progress: the runner
/// snapshots its state only *between* tasks, and cancellation (a signal, an
/// expired deadline) also takes effect only between tasks, so the sink is
/// always at a position the manifest can describe.
///
/// A checkpoint (storage/checkpoint.h) makes the output durable up to a
/// committed boundary — a record boundary for text, a sealed-block boundary
/// plus the open block's payload for the CSJ2 binary format — and records
/// the next task index, the pending CSJ(g) window groups, cumulative
/// JoinStats and curated metric counters. `--resume` truncates the output
/// back to the committed boundary and continues; because blocks seal purely
/// by the size rule and the open block's payload is restored verbatim, the
/// resumed output is **byte-identical** to an uninterrupted run, no matter
/// when (or how often) the run was killed.
///
/// Parallel mode (threads > 1) runs *rounds*: each round takes the next
/// `threads * tasks_per_thread` tasks, statically assigns task index i to
/// worker i % threads, runs the workers on private drivers + MemorySinks,
/// then replays the buffered output into the real sink in worker order and
/// checkpoints at the round boundary. Everything about a round is a pure
/// function of (task list, threads), so parallel resumes are byte-identical
/// too — which is also why a resume must use the same thread count.
///
/// Governance: the runner owns an ExecContext (util/exec_context.h) chaining
/// `options.exec` with `options.deadline_ms` and the `ckpt.cancel` flag, and
/// polls it between tasks. The *drivers* deliberately see only the memory
/// budget — never the deadline or cancel flag — because a mid-task trip
/// would leave the sink at a position no manifest can describe and break
/// byte-identical resume. Deadline, cancel and external trips therefore take
/// effect at the next task (or round) boundary, where a final checkpoint is
/// still well-defined.
///
/// Outcome statuses: OK (complete; manifest deleted), kCancelled /
/// kDeadlineExceeded (final checkpoint saved at the interrupted boundary),
/// kResourceExhausted (a driver's budget charge was denied mid-task; the
/// previous checkpoint remains the resume point), or the sink's error (the
/// manifest of the last successful checkpoint is kept for resume).

namespace csj {

/// Checkpointed-execution knobs, on top of JoinOptions (whose deadline_ms
/// and exec context the runner polls between tasks).
struct CheckpointJoinOptions {
  /// Where the manifest lives. Saved via atomic temp+rename commit; deleted
  /// when the join completes. Required.
  std::string manifest_path;
  /// Tasks between checkpoints (serial mode). Parallel mode checkpoints at
  /// every round boundary regardless. 0 disables periodic checkpoints —
  /// only cancellation/deadline write one.
  uint64_t checkpoint_interval = 32;
  /// Worker threads; <= 1 runs serial. A resumed run must use the same
  /// value (enforced against the manifest).
  int threads = 1;
  /// Task granularity: the task list targets
  /// max(threads, 1) * tasks_per_thread entries, and a parallel round spans
  /// threads * tasks_per_thread tasks.
  int tasks_per_thread = 16;
  /// Continue from manifest_path instead of starting over. Fails cleanly if
  /// the manifest is missing, corrupt, or from a different configuration.
  bool resume = false;
  /// External cancel flag (e.g. flipped by a SIGINT handler). Polled at
  /// task boundaries; when set, a final checkpoint is written and the run
  /// returns kCancelled. Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;
};

namespace internal {

/// Counter prefixes a checkpoint carries across resumes: the process-wide
/// metrics a join run contributes to. After a resume the registry reports
/// the same cumulative values an uninterrupted run would.
inline bool IsCheckpointedMetric(const std::string& name) {
  for (const char* prefix :
       {"join.", "sink.", "kernel.", "window.", "parallel."}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Fingerprint of every knob that shapes the output stream. A manifest from
/// a different configuration must not be resumed — the bytes would diverge.
template <typename Tree>
uint64_t ConfigFingerprint(const Tree& tree, JoinAlgorithm algorithm,
                           const JoinOptions& options, const OutputSpec& spec,
                           const CheckpointJoinOptions& ckpt) {
  using checkpoint::HashCombine;
  uint64_t h = 0xC5A11E5C;  // arbitrary non-zero seed
  h = HashCombine(h, static_cast<uint64_t>(algorithm));
  uint64_t eps_bits;
  static_assert(sizeof(eps_bits) == sizeof(options.epsilon));
  std::memcpy(&eps_bits, &options.epsilon, sizeof(eps_bits));
  h = HashCombine(h, eps_bits);
  h = HashCombine(h, static_cast<uint64_t>(options.window_size));
  h = HashCombine(h, (options.early_stop ? 1u : 0u) |
                         (options.sort_child_pairs ? 2u : 0u) |
                         (options.promote_on_merge ? 4u : 0u));
  h = HashCombine(h, static_cast<uint64_t>(options.window_policy));
  // leaf_kernel is deliberately *excluded*: all kernels emit hits in the
  // same order (geom/kernels.h), so the output stream is kernel-invariant
  // and a resume may use a different kernel than the original run.
  h = HashCombine(h, static_cast<uint64_t>(spec.format));
  h = HashCombine(h, static_cast<uint64_t>(spec.id_width));
  h = HashCombine(h, static_cast<uint64_t>(spec.count_model));
  h = HashCombine(h, static_cast<uint64_t>(std::max(ckpt.threads, 1)));
  h = HashCombine(h, static_cast<uint64_t>(std::max(ckpt.tasks_per_thread, 1)));
  h = HashCombine(h, tree.size());
  h = HashCombine(h, static_cast<uint64_t>(Tree::kDim));
  return h;
}

template <typename Task>
uint64_t TaskListHash(const std::vector<Task>& tasks) {
  uint64_t h = tasks.size();
  for (const Task& t : tasks) {
    h = checkpoint::HashCombine(h, t.first);
    h = checkpoint::HashCombine(h, t.second);
  }
  return h;
}

/// Composes the cumulative StatsState for a manifest: the resumed-from base
/// plus everything this session's drivers have done so far.
inline checkpoint::StatsState ComposeStats(const checkpoint::StatsState& base,
                                           const JoinStats& fresh,
                                           double fresh_elapsed,
                                           double fresh_write) {
  checkpoint::StatsState s = base;
  s.distance_computations += fresh.distance_computations;
  s.kernel_candidates += fresh.kernel_candidates;
  s.kernel_pruned += fresh.kernel_pruned;
  s.kernel_hits += fresh.kernel_hits;
  s.node_accesses += fresh.node_accesses;
  s.page_requests += fresh.page_requests;
  s.page_disk_reads += fresh.page_disk_reads;
  s.early_stops += fresh.early_stops;
  s.merge_attempts += fresh.merge_attempts;
  s.merges += fresh.merges;
  s.implied_links += fresh.ImpliedLinkUpperBound();
  s.elapsed_seconds += fresh_elapsed;
  s.write_seconds += fresh_write;
  return s;
}

/// Folds a manifest's StatsState base into a finalized JoinStats (whose
/// output counters already come from the restored sink and are cumulative).
inline void ApplyStatsBase(JoinStats* stats, const checkpoint::StatsState& b) {
  stats->distance_computations += b.distance_computations;
  stats->kernel_candidates += b.kernel_candidates;
  stats->kernel_pruned += b.kernel_pruned;
  stats->kernel_hits += b.kernel_hits;
  stats->node_accesses += b.node_accesses;
  stats->page_requests += b.page_requests;
  stats->page_disk_reads += b.page_disk_reads;
  stats->early_stops += b.early_stops;
  stats->merge_attempts += b.merge_attempts;
  stats->merges += b.merges;
  stats->AddImpliedLinks(b.implied_links);
  stats->elapsed_seconds += b.elapsed_seconds;
  stats->write_seconds += b.write_seconds;
}

/// Snapshot of the checkpoint-carried counters at session start; lets a
/// checkpoint record `base + (now - session_start)` for each counter.
struct MetricBaseline {
  std::vector<std::pair<std::string, uint64_t>> session_start;
  std::vector<std::pair<std::string, uint64_t>> manifest_base;

  void Capture() {
    session_start.clear();
    for (const auto& [name, value] : metrics::Snapshot().counters) {
      if (IsCheckpointedMetric(name)) session_start.emplace_back(name, value);
    }
  }

  uint64_t StartValue(const std::string& name) const {
    for (const auto& [n, v] : session_start) {
      if (n == name) return v;
    }
    return 0;
  }

  uint64_t BaseValue(const std::string& name) const {
    for (const auto& [n, v] : manifest_base) {
      if (n == name) return v;
    }
    return 0;
  }

  /// Cumulative checkpoint-carried counters right now.
  std::vector<std::pair<std::string, uint64_t>> Compose() const {
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const auto& [name, value] : metrics::Snapshot().counters) {
      if (!IsCheckpointedMetric(name)) continue;
      out.emplace_back(name, BaseValue(name) + value - StartValue(name));
    }
    // A counter the interrupted run touched but this session has not yet.
    for (const auto& [name, value] : manifest_base) {
      bool seen = false;
      for (const auto& [n, v] : out) seen = seen || n == name;
      if (!seen) out.emplace_back(name, value);
    }
    return out;
  }
};

}  // namespace internal

/// Checkpointed (and optionally parallel) self-join with resume. Creates
/// the sink from `spec` itself: fresh runs force spec.checkpointable for
/// materializing formats; resumed runs rebuild the sink mid-stream from the
/// manifest. See the file comment for semantics.
template <SpatialIndex Tree>
JoinStats CheckpointedSelfJoin(const Tree& tree, JoinAlgorithm algorithm,
                               const JoinOptions& options, OutputSpec spec,
                               const CheckpointJoinOptions& ckpt) {
  using Driver = internal::JoinDriver<Tree, Tree>;

  JoinStats failed;
  failed.algorithm = algorithm;
  failed.epsilon = options.epsilon;
  failed.window_size = algorithm == JoinAlgorithm::kCSJ ? options.window_size
                                                        : 0;
  if (ckpt.manifest_path.empty()) {
    failed.status =
        Status::InvalidArgument("CheckpointJoinOptions.manifest_path is empty");
    return failed;
  }
  const int threads = std::max(ckpt.threads, 1);
  if (threads > 1 && options.tracker != nullptr) {
    failed.status = Status::InvalidArgument(
        "node-access tracking is not supported in parallel mode");
    return failed;
  }
  if (spec.format != OutputFormat::kNone) spec.checkpointable = true;

  const auto tasks = internal::BuildTaskList(
      tree, options.epsilon,
      static_cast<size_t>(threads) *
          static_cast<size_t>(std::max(ckpt.tasks_per_thread, 1)),
      options.exec);
  const uint64_t fingerprint =
      internal::ConfigFingerprint(tree, algorithm, options, spec, ckpt);
  const uint64_t task_hash = internal::TaskListHash(tasks);

  // --- Establish the starting state: fresh, or restored from the manifest.
  checkpoint::Manifest base;  // stays default for fresh runs
  std::unique_ptr<JoinSink> sink;
  if (ckpt.resume) {
    auto loaded = checkpoint::Load(ckpt.manifest_path);
    if (!loaded.ok()) {
      failed.status = loaded.status();
      return failed;
    }
    base = std::move(loaded).value();
    if (base.config_fingerprint != fingerprint) {
      failed.status = Status::FailedPrecondition(
          "cannot resume: the checkpoint was written under a different "
          "configuration (algorithm/epsilon/window/output/threads)");
      return failed;
    }
    if (base.threads != static_cast<uint32_t>(threads)) {
      failed.status = Status::FailedPrecondition(StrFormat(
          "cannot resume: checkpoint used %u threads, this run %d (the "
          "parallel replay order depends on the thread count)",
          base.threads, threads));
      return failed;
    }
    if (base.total_tasks != tasks.size() || base.task_list_hash != task_hash) {
      failed.status = Status::FailedPrecondition(
          "cannot resume: the rebuilt task list does not match the "
          "checkpoint (different tree or granularity)");
      return failed;
    }
    auto resumed = ResumeSink(spec, base.sink);
    if (!resumed.ok()) {
      failed.status = resumed.status();
      return failed;
    }
    sink = std::move(resumed).value();
    // Re-seed the process-wide metrics so a resumed run's registry reports
    // the same cumulative join.*/sink.*/... counts an uninterrupted run
    // would. (The restored sink starts from zero — its constructor path
    // does not replay sink.links/sink.bytes — so the manifest's counters
    // are added wholesale.)
    for (const auto& [name, value] : base.metric_counters) {
      if (value > 0) metrics::GetCounter(name)->Increment(value);
    }
    CSJ_METRIC_COUNT("checkpoint.resumes", 1);
  } else {
    auto made = MakeSink(spec);
    if (!made.ok()) {
      failed.status = made.status();
      return failed;
    }
    sink = std::move(made).value();
  }

  internal::MetricBaseline metric_baseline;
  metric_baseline.manifest_base = base.metric_counters;
  // Captured *after* the resume merge above, so Compose() yields exactly
  // base + this-session's-work for every counter.
  metric_baseline.Capture();

  WallTimer timer;

  // The runner's governance context: deadline + cancel + whatever the caller
  // installed in options.exec. Polled only between tasks / rounds.
  ExecContext run_ctx;
  run_ctx.SetParent(options.exec);
  run_ctx.SetDeadlineAfterMs(options.deadline_ms);
  run_ctx.SetCancelFlag(ckpt.cancel);
  // What the drivers see: the memory budget only. A driver must run each
  // task to completion (see the file comment), so its options strip the
  // deadline and chain to a budget-only context.
  ExecContext task_ctx;
  task_ctx.SetMemoryBudget(run_ctx.memory_budget());
  JoinOptions task_options = options;
  task_options.deadline_ms = 0;
  task_options.exec = &task_ctx;

  uint64_t next_task = ckpt.resume ? base.next_task : 0;

  // One manifest writer for both modes. `counters_pending` marks serial
  // checkpoints, where the driver's bulk-added work counters (join.merges
  // etc., mirrored into the registry only at Finalize) have not reached the
  // registry yet and must be folded into the manifest from `fresh` directly.
  auto save_checkpoint = [&](uint64_t frontier, const JoinStats& fresh,
                             double fresh_write, bool counters_pending,
                             std::vector<checkpoint::WindowGroup> window)
      -> Status {
    checkpoint::SinkState sink_state;
    CSJ_RETURN_IF_ERROR(sink->Checkpoint(&sink_state));
    checkpoint::Manifest m;
    m.config_fingerprint = fingerprint;
    m.dims = static_cast<uint32_t>(Tree::kDim);
    m.threads = static_cast<uint32_t>(threads);
    m.total_tasks = tasks.size();
    m.task_list_hash = task_hash;
    m.next_task = frontier;
    m.stats = internal::ComposeStats(base.stats, fresh,
                                     timer.ElapsedSeconds(), fresh_write);
    m.sink = sink_state;
    m.window = std::move(window);
    m.metric_counters = metric_baseline.Compose();
    if (counters_pending) {
      auto add = [&m](const char* name, uint64_t v) {
        if (v == 0) return;
        for (auto& [n, value] : m.metric_counters) {
          if (n == name) {
            value += v;
            return;
          }
        }
        m.metric_counters.emplace_back(name, v);
      };
      add("join.distance_computations", fresh.distance_computations);
      add("join.early_stops", fresh.early_stops);
      add("join.merge_attempts", fresh.merge_attempts);
      add("join.merges", fresh.merges);
    }
    return checkpoint::Save(ckpt.manifest_path, m);
  };

  // Non-OK once the governance context trips (deadline, cancel, or an
  // external trip of options.exec). The deadline-expiration metric is
  // recorded here, at detection, preserving the watchdog-era counter.
  auto interrupted = [&]() -> Status {
    // ShouldStopNow: boundary polls are rare, so read the clock every time
    // instead of relying on the hot-loop stride amortization.
    if (!run_ctx.ShouldStopNow()) return Status::OK();
    Status s = run_ctx.status();
    if (s.code() == StatusCode::kDeadlineExceeded) {
      CSJ_METRIC_COUNT("checkpoint.deadline_expirations", 1);
    }
    return s;
  };

  auto interruption_status = [&](const Status& why, uint64_t frontier,
                                 const Status& save) -> Status {
    if (!save.ok()) {
      return Status::IoError(StrFormat(
          "interrupted at task %llu/%zu and the final checkpoint failed: %s",
          static_cast<unsigned long long>(frontier), tasks.size(),
          save.ToString().c_str()));
    }
    return Status(
        why.code(),
        StrFormat("stopped at task %llu/%zu (%s); checkpoint saved to %s — "
                  "rerun with --resume to continue",
                  static_cast<unsigned long long>(frontier), tasks.size(),
                  why.message().c_str(), ckpt.manifest_path.c_str()));
  };

  // ==========================================================================
  // Serial mode: one driver spans every task, so the merge window persists
  // across task (and checkpoint) boundaries exactly like a plain Run().
  // ==========================================================================
  if (threads == 1) {
    Driver driver(tree, tree, /*self_join=*/true, algorithm, task_options,
                  sink.get());
    if (ckpt.resume && algorithm == JoinAlgorithm::kCSJ) {
      driver.window().RestoreState(base.window);
    }
    if (!ckpt.resume && !tasks.empty()) {
      // An initial checkpoint: a run killed before the first periodic
      // checkpoint still resumes instead of silently starting over.
      const Status s =
          save_checkpoint(0, driver.mutable_stats(), 0.0, true, {});
      if (!s.ok()) {
        failed.status = s;
        return failed;
      }
    }
    uint64_t last_checkpoint = next_task;
    for (; next_task < tasks.size(); ++next_task) {
      if (const Status why = interrupted(); !why.ok()) {
        const Status save = save_checkpoint(
            next_task, driver.mutable_stats(),
            driver.write_seconds_so_far(), true,
            algorithm == JoinAlgorithm::kCSJ ? driver.window().ExportState()
                                             : std::vector<checkpoint::WindowGroup>{});
        JoinStats out = driver.Finalize(timer);
        internal::ApplyStatsBase(&out, base.stats);
        out.status = interruption_status(why, next_task, save);
        return out;
      }
      if (ckpt.checkpoint_interval > 0 &&
          next_task - last_checkpoint >= ckpt.checkpoint_interval) {
        const Status save = save_checkpoint(
            next_task, driver.mutable_stats(),
            driver.write_seconds_so_far(), true,
            algorithm == JoinAlgorithm::kCSJ ? driver.window().ExportState()
                                             : std::vector<checkpoint::WindowGroup>{});
        if (!save.ok()) {
          JoinStats out = driver.Finalize(timer);
          internal::ApplyStatsBase(&out, base.stats);
          out.status = save;
          return out;
        }
        last_checkpoint = next_task;
      }
      driver.RunTask(tasks[static_cast<size_t>(next_task)]);
      // Sink error or a budget trip: stats report it below, and no further
      // checkpoint is written — the previous one stays the resume point.
      if (driver.aborted()) break;
    }
    driver.FlushWindow();
    JoinStats out = driver.Finalize(timer);
    internal::ApplyStatsBase(&out, base.stats);
    if (out.status.ok()) out.status = sink->Finish();
    out.output_bytes = sink->bytes();
    if (out.status.ok()) {
      std::remove(ckpt.manifest_path.c_str());
    }
    return out;
  }

  // ==========================================================================
  // Parallel mode: rounds of threads * tasks_per_thread tasks; static
  // strided assignment, buffered output replayed in worker order, one
  // checkpoint per round boundary. Deterministic given (task list, threads).
  // ==========================================================================
  if constexpr (!Tree::kThreadSafeReads) {
    failed.status = Status::InvalidArgument(
        "this tree type is not safe for concurrent reads; run with "
        "threads = 1");
    return failed;
  } else {
  const uint64_t round_span =
      static_cast<uint64_t>(threads) *
      static_cast<uint64_t>(std::max(ckpt.tasks_per_thread, 1));
  JoinStats session;  // work counters + implied links of this session
  session.algorithm = algorithm;
  double session_write = 0.0;

  if (!ckpt.resume && !tasks.empty()) {
    const Status s = save_checkpoint(0, session, 0.0, false, {});
    if (!s.ok()) {
      failed.status = s;
      return failed;
    }
  }

  while (next_task < tasks.size()) {
    if (const Status why = interrupted(); !why.ok()) {
      const Status save =
          save_checkpoint(next_task, session, session_write, false, {});
      JoinStats out = session;
      out.epsilon = options.epsilon;
      out.window_size =
          algorithm == JoinAlgorithm::kCSJ ? options.window_size : 0;
      internal::ApplyStatsBase(&out, base.stats);
      out.links = sink->num_links();
      out.groups = sink->num_groups();
      out.group_member_total = sink->group_member_total();
      out.output_bytes = sink->bytes();
      out.elapsed_seconds += timer.ElapsedSeconds();
      out.status = interruption_status(why, next_task, save);
      return out;
    }
    const uint64_t round_end =
        std::min<uint64_t>(next_task + round_span, tasks.size());

    std::vector<std::unique_ptr<MemorySink>> worker_sinks;
    std::vector<JoinStats> worker_stats(static_cast<size_t>(threads));
    worker_sinks.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      worker_sinks.push_back(std::make_unique<MemorySink>(sink->id_width()));
    }
    std::mutex error_mu;
    Status first_error;
    auto record_error = [&](const Status& status) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok() && !status.ok()) first_error = status;
    };
    {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          try {
            if (CSJ_FAILPOINT("parallel_join.worker")) {
              throw std::runtime_error("injected worker fault");
            }
            Driver driver(tree, tree, /*self_join=*/true, algorithm,
                          task_options,
                          worker_sinks[static_cast<size_t>(t)].get());
            WallTimer worker_timer;
            for (uint64_t i = next_task + static_cast<uint64_t>(t);
                 i < round_end; i += static_cast<uint64_t>(threads)) {
              driver.RunTask(tasks[static_cast<size_t>(i)]);
              if (driver.aborted()) break;
            }
            driver.FlushWindow();
            worker_stats[static_cast<size_t>(t)] =
                driver.Finalize(worker_timer);
            record_error(worker_stats[static_cast<size_t>(t)].status);
          } catch (const std::exception& e) {
            record_error(Status::Internal(StrFormat(
                "checkpointed join worker %d failed: %s", t, e.what())));
          } catch (...) {
            record_error(Status::Internal(StrFormat(
                "checkpointed join worker %d failed with a non-standard "
                "exception", t)));
          }
        });
      }
      for (auto& thread : pool) thread.join();
    }
    for (const JoinStats& ws : worker_stats) {
      session.distance_computations += ws.distance_computations;
      session.kernel_candidates += ws.kernel_candidates;
      session.kernel_pruned += ws.kernel_pruned;
      session.kernel_hits += ws.kernel_hits;
      session.early_stops += ws.early_stops;
      session.merge_attempts += ws.merge_attempts;
      session.merges += ws.merges;
      session_write += ws.write_seconds;
    }
    if (!first_error.ok()) {
      // The round's coverage is incomplete; the sink was never touched, so
      // the previous checkpoint remains the resume point.
      JoinStats out = session;
      internal::ApplyStatsBase(&out, base.stats);
      out.epsilon = options.epsilon;
      out.window_size =
          algorithm == JoinAlgorithm::kCSJ ? options.window_size : 0;
      out.links = sink->num_links();
      out.groups = sink->num_groups();
      out.group_member_total = sink->group_member_total();
      out.output_bytes = sink->bytes();
      out.elapsed_seconds += timer.ElapsedSeconds();
      out.status = first_error;
      return out;
    }
    // Deterministic replay, worker order — exactly like parallel_join.h.
    for (int t = 0; t < threads && sink->error().ok(); ++t) {
      const MemorySink& worker = *worker_sinks[static_cast<size_t>(t)];
      for (const auto& [a, b] : worker.links()) {
        if (!sink->error().ok()) break;
        sink->Link(a, b);
        if (sink->error().ok()) session.AddImpliedLink();
      }
      for (const auto& group : worker.groups()) {
        if (!sink->error().ok()) break;
        sink->Group(group);
        if (sink->error().ok()) session.AddImpliedGroup(group.size());
      }
    }
    if (!sink->error().ok()) break;
    next_task = round_end;
    const Status save =
        save_checkpoint(next_task, session, session_write, false, {});
    if (!save.ok()) {
      JoinStats out = session;
      internal::ApplyStatsBase(&out, base.stats);
      out.epsilon = options.epsilon;
      out.window_size =
          algorithm == JoinAlgorithm::kCSJ ? options.window_size : 0;
      out.status = save;
      out.elapsed_seconds += timer.ElapsedSeconds();
      return out;
    }
  }

  JoinStats out = session;
  internal::ApplyStatsBase(&out, base.stats);
  out.epsilon = options.epsilon;
  out.window_size = algorithm == JoinAlgorithm::kCSJ ? options.window_size : 0;
  out.status = sink->error();
  if (out.status.ok()) out.status = sink->Finish();
  out.links = sink->num_links();
  out.groups = sink->num_groups();
  out.group_member_total = sink->group_member_total();
  out.output_bytes = sink->bytes();
  out.elapsed_seconds += timer.ElapsedSeconds();
  if (out.status.ok()) {
    std::remove(ckpt.manifest_path.c_str());
  }
  return out;
  }  // if constexpr (Tree::kThreadSafeReads)
}

}  // namespace csj

#endif  // CSJ_CORE_CHECKPOINT_JOIN_H_

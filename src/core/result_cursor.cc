#include "core/result_cursor.h"

#include <cstdio>

#include "storage/binary_format.h"
#include "util/format.h"

namespace csj {

namespace {

/// Incremental parser for the paper's text format: one whitespace-separated
/// id list per line; two ids form a link, three or more form a group.
class TextResultCursor final : public ResultCursor {
 public:
  explicit TextResultCursor(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) status_ = Status::NotFound("cannot open: " + path);
  }

  ~TextResultCursor() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool Next() override {
    if (!status_.ok() || done_) return false;
    ids_.clear();
    bool in_number = false;
    uint64_t current = 0;
    for (;;) {
      if (pos_ == len_) {
        len_ = std::fread(buffer_, 1, sizeof(buffer_), file_);
        pos_ = 0;
        if (len_ == 0) {  // EOF; the file may not end with a newline
          done_ = true;
          if (in_number) ids_.push_back(static_cast<PointId>(current));
          return ids_.empty() ? false : EmitLine();
        }
      }
      const char c = buffer_[pos_++];
      if (c >= '0' && c <= '9') {
        current = current * 10 + static_cast<uint64_t>(c - '0');
        in_number = true;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        if (in_number) {
          ids_.push_back(static_cast<PointId>(current));
          in_number = false;
          current = 0;
        }
      } else if (c == '\n') {
        if (in_number) {
          ids_.push_back(static_cast<PointId>(current));
          in_number = false;
          current = 0;
        }
        ++line_no_;
        if (!ids_.empty()) return EmitLine();
        // blank line: keep scanning
      } else {
        status_ = Status::InvalidArgument(StrFormat(
            "%s:%d: unexpected character '%c'", path_.c_str(), line_no_, c));
        return false;
      }
    }
  }

  OutputFormat format() const override { return OutputFormat::kText; }

 private:
  /// Lines with fewer than two ids are rejected (a single id implies
  /// nothing and is never emitted by the writers).
  bool EmitLine() {
    if (ids_.size() == 1) {
      // line_no_ was already advanced past the newline of a mid-file line.
      status_ = Status::InvalidArgument(StrFormat(
          "%s:%d: singleton line", path_.c_str(),
          done_ ? line_no_ : line_no_ - 1));
      return false;
    }
    record_.is_group = ids_.size() > 2;
    record_.ids = std::span<const PointId>(ids_);
    if (record_.is_group) {
      ++groups_read_;
    } else {
      ++links_read_;
    }
    return true;
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  char buffer_[1 << 16];
  size_t pos_ = 0;
  size_t len_ = 0;
  int line_no_ = 1;
  bool done_ = false;
};

/// Block-at-a-time reader for the CSJ2 binary format. Validates each
/// block's checksum and the footer's totals as it goes.
class BinaryResultCursor final : public ResultCursor {
 public:
  explicit BinaryResultCursor(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      status_ = Status::NotFound("cannot open: " + path);
      return;
    }
    char header[binfmt::kFileHeaderBytes];
    const size_t got = std::fread(header, 1, sizeof(header), file_);
    status_ = binfmt::ParseFileHeader(header, got, &id_width_);
    if (!status_.ok()) {
      status_ = Fail(status_.message());
    }
  }

  ~BinaryResultCursor() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool Next() override {
    if (!status_.ok() || done_) return false;
    if (block_records_left_ == 0 && !ReadNextBlock()) return false;
    return DecodeRecord();
  }

  int declared_id_width() const override { return id_width_; }
  OutputFormat format() const override { return OutputFormat::kBinary; }

 private:
  Status Fail(const std::string& detail) {
    return Status::InvalidArgument(path_ + ": " + detail);
  }

  /// Reads and validates the next block header + payload. Returns false at
  /// the EOF marker (after footer validation) or on error.
  bool ReadNextBlock() {
    char raw[binfmt::kBlockHeaderBytes];
    size_t got = std::fread(raw, 1, sizeof(raw), file_);
    if (got != sizeof(raw)) {
      status_ = Fail("truncated block header (incomplete result file)");
      return false;
    }
    const binfmt::BlockHeader header = binfmt::ParseBlockHeader(raw);
    if (header.IsEofMarker()) {
      ReadFooter();
      return false;
    }
    ++block_index_;
    if (header.payload_bytes == 0 || header.record_count == 0) {
      status_ = Fail(StrFormat("block %zu has an empty payload or record "
                               "count", block_index_));
      return false;
    }
    payload_.resize(header.payload_bytes);
    got = std::fread(payload_.data(), 1, payload_.size(), file_);
    if (got != payload_.size()) {
      status_ = Fail(StrFormat("truncated block %zu payload (%zu of %u "
                               "bytes)", block_index_, got,
                               header.payload_bytes));
      return false;
    }
    const uint32_t crc = binfmt::Crc32(payload_.data(), payload_.size());
    if (crc != header.crc32) {
      status_ = Fail(StrFormat(
          "block %zu checksum mismatch (stored %08x, computed %08x)",
          block_index_, header.crc32, crc));
      return false;
    }
    payload_pos_ = 0;
    block_records_left_ = header.record_count;
    return true;
  }

  void ReadFooter() {
    char raw[binfmt::kFooterBytes];
    const size_t got = std::fread(raw, 1, sizeof(raw), file_);
    binfmt::Footer footer;
    Status status = binfmt::ParseFooter(raw, got, &footer);
    if (!status.ok()) {
      status_ = Fail(status.message());
      return;
    }
    if (footer.num_links != links_read_ ||
        footer.num_groups != groups_read_ || footer.id_total != ids_seen_) {
      status_ = Fail(StrFormat(
          "footer totals disagree with decoded records (footer %llu/%llu/%llu,"
          " decoded %llu/%llu/%llu)",
          static_cast<unsigned long long>(footer.num_links),
          static_cast<unsigned long long>(footer.num_groups),
          static_cast<unsigned long long>(footer.id_total),
          static_cast<unsigned long long>(links_read_),
          static_cast<unsigned long long>(groups_read_),
          static_cast<unsigned long long>(ids_seen_)));
      return;
    }
    char extra;
    if (std::fread(&extra, 1, 1, file_) != 0) {
      status_ = Fail("trailing bytes after footer");
      return;
    }
    done_ = true;
  }

  bool ParseId(uint64_t raw, PointId* id) {
    if (raw > 0xFFFFFFFFull) return false;
    *id = static_cast<PointId>(raw);
    return true;
  }

  bool DecodeRecord() {
    const char* data = payload_.data();
    const size_t size = payload_.size();
    uint64_t tag;
    size_t n = binfmt::ParseVarint(data + payload_pos_, size - payload_pos_,
                                   &tag);
    if (n == 0 || tag == 1) {
      status_ = Fail(StrFormat("corrupt record tag in block %zu",
                               block_index_));
      return false;
    }
    const size_t k = tag == 0 ? 2 : static_cast<size_t>(tag);
    payload_pos_ += n;
    // Each remaining id takes at least one byte; reject absurd counts
    // before allocating.
    if (k > size - payload_pos_ + 1) {
      status_ = Fail(StrFormat("corrupt group size %zu in block %zu", k,
                               block_index_));
      return false;
    }
    ids_.clear();
    ids_.reserve(k);
    uint64_t raw;
    n = binfmt::ParseVarint(data + payload_pos_, size - payload_pos_, &raw);
    PointId id;
    if (n == 0 || !ParseId(raw, &id)) {
      status_ = Fail(StrFormat("corrupt id in block %zu", block_index_));
      return false;
    }
    payload_pos_ += n;
    ids_.push_back(id);
    for (size_t i = 1; i < k; ++i) {
      n = binfmt::ParseVarint(data + payload_pos_, size - payload_pos_, &raw);
      if (n == 0) {
        status_ = Fail(StrFormat("corrupt id delta in block %zu",
                                 block_index_));
        return false;
      }
      payload_pos_ += n;
      const int64_t next = static_cast<int64_t>(ids_.back()) +
                           binfmt::UnZigZag(raw);
      if (next < 0 || next > 0xFFFFFFFFll) {
        status_ = Fail(StrFormat("id delta out of range in block %zu",
                                 block_index_));
        return false;
      }
      ids_.push_back(static_cast<PointId>(next));
    }
    --block_records_left_;
    if (block_records_left_ == 0 && payload_pos_ != size) {
      status_ = Fail(StrFormat("trailing bytes in block %zu", block_index_));
      return false;
    }
    record_.is_group = tag != 0;
    record_.ids = std::span<const PointId>(ids_);
    if (record_.is_group) {
      ++groups_read_;
    } else {
      ++links_read_;
    }
    ids_seen_ += k;
    return true;
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  int id_width_ = 0;
  std::string payload_;
  size_t payload_pos_ = 0;
  uint32_t block_records_left_ = 0;
  size_t block_index_ = 0;
  uint64_t ids_seen_ = 0;
  bool done_ = false;
};

}  // namespace

Result<std::unique_ptr<ResultCursor>> OpenResultCursor(
    const std::string& path, OutputFormat format) {
  std::unique_ptr<ResultCursor> cursor;
  switch (format) {
    case OutputFormat::kText:
      cursor = std::make_unique<TextResultCursor>(path);
      break;
    case OutputFormat::kBinary:
      cursor = std::make_unique<BinaryResultCursor>(path);
      break;
    case OutputFormat::kNone:
      return Status::InvalidArgument(
          "cannot open a result cursor with format 'none'");
  }
  // Construction-time failures (missing file, bad header) surface here so
  // callers get a Status instead of an immediately-dead cursor.
  if (!cursor->status().ok()) return cursor->status();
  return cursor;
}

Result<std::unique_ptr<ResultCursor>> OpenResultCursor(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  char head[binfmt::kFileHeaderBytes] = {};
  const size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return OpenResultCursor(path, binfmt::LooksLikeBinary(head, got)
                                    ? OutputFormat::kBinary
                                    : OutputFormat::kText);
}

Status ReplayResult(ResultCursor* cursor, JoinSink* sink) {
  while (cursor->Next()) {
    const ResultRecord& record = cursor->record();
    if (record.is_group) {
      sink->Group(record.ids);
    } else {
      sink->Link(record.ids[0], record.ids[1]);
    }
    if (!sink->error().ok()) return sink->error();
  }
  return cursor->status();
}

}  // namespace csj

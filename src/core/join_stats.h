#ifndef CSJ_CORE_JOIN_STATS_H_
#define CSJ_CORE_JOIN_STATS_H_

#include <cstdint>
#include <string>

#include "core/join_options.h"
#include "util/format.h"
#include "util/json.h"
#include "util/status.h"

/// \file
/// Per-join statistics returned by every driver.

namespace csj {

/// Everything a single join run reports. Output counters mirror the sink;
/// work counters are maintained by the driver.
struct JoinStats {
  JoinAlgorithm algorithm = JoinAlgorithm::kSSJ;
  double epsilon = 0.0;
  int window_size = 0;

  /// Outcome of the run. Non-OK when the sink entered an error state (e.g.
  /// the output disk filled up) or a parallel worker failed; the traversal
  /// was then aborted early and the output counters describe only what the
  /// sink accepted before the failure.
  Status status;

  // Output shape.
  uint64_t links = 0;               ///< individually emitted links
  uint64_t groups = 0;              ///< emitted groups
  uint64_t group_member_total = 0;  ///< sum of group sizes
  uint64_t output_bytes = 0;        ///< exact bytes of the text format

  // Work counters.
  uint64_t distance_computations = 0;
  /// Leaf-kernel accounting (geom/kernels.h): raw leaf pair space, pairs the
  /// plane sweep discarded on the 1-D bound alone, and in-range pairs.
  /// distance_computations == kernel_candidates - kernel_pruned + any
  /// non-leaf distance work. Zero for drivers that bypass the kernel layer.
  uint64_t kernel_candidates = 0;
  uint64_t kernel_pruned = 0;
  uint64_t kernel_hits = 0;
  uint64_t node_accesses = 0;   ///< node visits (0 if no tracker installed)
  uint64_t page_requests = 0;   ///< simulated page requests
  uint64_t page_disk_reads = 0; ///< simulated LRU misses
  uint64_t early_stops = 0;     ///< subtree groups from the stopping rule
  uint64_t merge_attempts = 0;  ///< link-into-group trials (CSJ)
  uint64_t merges = 0;          ///< successful merges (CSJ)

  /// KernelIsaName of the SIMD backend the leaf kernels actually ran
  /// ("scalar", "avx2", "avx512"); empty when the run's leaf_kernel mode
  /// never consults a backend (naive, sweep). Recomputed per run — resume
  /// does not persist it, since a resumed run may land on different
  /// hardware.
  std::string kernel_isa;

  // Timing.
  double elapsed_seconds = 0.0;  ///< total join wall time (includes writes)
  double write_seconds = 0.0;    ///< sink time, if measure_write_time was set

  // Planner wiring (plan/planner.h). Zero/empty for unplanned runs. The
  // predictions are stamped by AttachPlan after the run; predicted_links
  // counts total qualifying pairs (compare against ImpliedLinkUpperBound),
  // predicted_groups is zero when the resolved algorithm emits no groups.
  uint64_t predicted_links = 0;
  uint64_t predicted_groups = 0;
  /// The serialized QueryPlan (json::Write of QueryPlan::ToJsonValue), so
  /// one-shot runs, serve trailers and bench reports all echo the same
  /// explainable plan document.
  std::string plan_json;

  /// Number of links the output *implies*: each emitted group of k members
  /// stands for k*(k-1)/2 links, plus the individual links. For a lossless
  /// compact join this matches SSJ's link count minus duplicates (groups may
  /// overlap, so implied counts can exceed the distinct-link count).
  uint64_t ImpliedLinkUpperBound() const { return implied_links_; }
  void AddImpliedGroup(uint64_t k) { implied_links_ += k * (k - 1) / 2; }
  void AddImpliedLink() { ++implied_links_; }
  /// Bulk restore for checkpoint/resume (storage/checkpoint.h): a resumed
  /// run re-seeds the counter with the manifest's cumulative value.
  void AddImpliedLinks(uint64_t n) { implied_links_ += n; }

  std::string ToString() const {
    std::string text = StrFormat(
        "%s eps=%g g=%d: links=%llu groups=%llu bytes=%llu dist=%llu "
        "early_stops=%llu merges=%llu/%llu time=%s write=%s",
        JoinAlgorithmName(algorithm), epsilon, window_size,
        static_cast<unsigned long long>(links),
        static_cast<unsigned long long>(groups),
        static_cast<unsigned long long>(output_bytes),
        static_cast<unsigned long long>(distance_computations),
        static_cast<unsigned long long>(early_stops),
        static_cast<unsigned long long>(merges),
        static_cast<unsigned long long>(merge_attempts),
        HumanDuration(elapsed_seconds).c_str(),
        HumanDuration(write_seconds).c_str());
    if (!status.ok()) text += " [" + status.ToString() + "]";
    return text;
  }

  /// Machine-readable form, used by the bench JSON records (BENCH_*.json)
  /// and csj_tool. Field names match the member names.
  json::Value ToJsonValue() const {
    json::Value v = json::Object{};
    v["algorithm"] = JoinAlgorithmName(algorithm);
    v["epsilon"] = epsilon;
    v["window_size"] = static_cast<int64_t>(window_size);
    v["status"] = status.ok() ? "OK" : status.ToString();
    v["links"] = links;
    v["groups"] = groups;
    v["group_member_total"] = group_member_total;
    v["output_bytes"] = output_bytes;
    v["distance_computations"] = distance_computations;
    v["kernel_candidates"] = kernel_candidates;
    v["kernel_pruned"] = kernel_pruned;
    v["kernel_hits"] = kernel_hits;
    v["node_accesses"] = node_accesses;
    v["page_requests"] = page_requests;
    v["page_disk_reads"] = page_disk_reads;
    v["early_stops"] = early_stops;
    v["merge_attempts"] = merge_attempts;
    v["merges"] = merges;
    if (!kernel_isa.empty()) v["kernel_isa"] = kernel_isa;
    v["elapsed_seconds"] = elapsed_seconds;
    v["write_seconds"] = write_seconds;
    v["implied_links"] = implied_links_;
    // Planned runs only, so unplanned stats documents are unchanged.
    if (predicted_links != 0 || predicted_groups != 0 || !plan_json.empty()) {
      v["predicted_links"] = predicted_links;
      v["predicted_groups"] = predicted_groups;
    }
    if (!plan_json.empty()) {
      auto plan = json::Parse(plan_json);
      v["plan"] = plan.ok() ? *plan : json::Value(plan_json);
    }
    return v;
  }

 private:
  uint64_t implied_links_ = 0;
};

}  // namespace csj

#endif  // CSJ_CORE_JOIN_STATS_H_

#ifndef CSJ_CORE_JOIN_OPTIONS_H_
#define CSJ_CORE_JOIN_OPTIONS_H_

#include <cstdint>

#include "geom/kernels.h"
#include "index/node_access.h"
#include "util/exec_context.h"

/// \file
/// Options shared by all join drivers.

namespace csj {

/// Which of the paper's three algorithms a driver runs.
enum class JoinAlgorithm {
  kSSJ,   ///< standard similarity join: every link output individually
  kNCSJ,  ///< naive compact join: early-stopping subtree groups only
  kCSJ,   ///< compact join: early stopping + merge into g recent groups
};

/// Short display name ("SSJ", "N-CSJ", "CSJ").
inline const char* JoinAlgorithmName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kSSJ:
      return "SSJ";
    case JoinAlgorithm::kNCSJ:
      return "N-CSJ";
    case JoinAlgorithm::kCSJ:
      return "CSJ";
  }
  return "?";
}

/// How CSJ(g) picks the group a link merges into.
enum class WindowPolicy {
  kFirstFit,  ///< the paper's mergeIntoPrevGroup: first fitting group,
              ///< most-recent-first
  kBestFit,   ///< all g groups evaluated; tightest resulting MBR wins
};

/// Join parameters.
///
/// Range predicate: the paper's prose and pseudocode mix "<" and "<=" for
/// the range test; we use the *closed* predicate d(p, q) <= epsilon for both
/// the pair test and the group-diagonal test. Using the same closure on both
/// sides is what keeps Theorems 1 (completeness) and 2 (correctness) true:
/// diagonal(G) <= eps implies every pair inside G satisfies d <= eps.
struct JoinOptions {
  /// Query range (the paper's epsilon). Must be > 0.
  double epsilon = 0.1;

  /// CSJ(g): number of most recent groups considered for merging a link.
  /// The paper's sweet spot is ~10 (Figure 6).
  int window_size = 10;

  /// Ablation: disable the subtree early-stopping rule (CSJ then compacts by
  /// merging alone). N-CSJ ignores this — the early stop *is* N-CSJ.
  bool early_stop = true;

  /// Ablation: visit child pairs ordered by ascending MinDistance instead of
  /// the pseudocode's index order (Brinkhoff-style ordering, paper ref [1]).
  bool sort_child_pairs = false;

  /// Ablation: on a successful merge, move the group to the most-recent slot
  /// of the window (LRU-like) instead of keeping creation order.
  bool promote_on_merge = false;

  /// Ablation: first-fit (the paper's pseudocode) vs best-fit link merging.
  WindowPolicy window_policy = WindowPolicy::kFirstFit;

  /// Leaf-level pair enumeration strategy (geom/kernels.h): the scalar
  /// baseline double loop, the plane-sweep pruned loop, or plane-sweep plus
  /// an explicit-SIMD distance backend ("simd" = best ISA the host offers,
  /// picked at startup by CPUID; "avx2" / "avx512" pin one backend for
  /// A/B runs). All modes produce byte-identical output (the kernels replay
  /// hits in the naive loop's order and the SIMD backends are
  /// decision-identical by the geom/dispatch.h contract); they differ only
  /// in speed and in how many distances they actually compute.
  LeafKernel leaf_kernel = LeafKernel::kSweep;

  /// Batched leaf-tile pipeline (core/leaf_batch.h): tree descent defers up
  /// to this many leaf-join and early-stop group events, transposing each
  /// distinct leaf into a cached SoA tile once per batch, then drains them
  /// in traversal order. Byte-identical output at any setting. Values <= 1
  /// disable batching; kNaive never batches (it is the honest undeferred
  /// baseline).
  size_t leaf_batch = 64;

  /// When true, time spent inside the sink is accumulated separately
  /// (Experiment 3's computation-vs-write split). Adds two clock reads per
  /// emission, so leave off in pure-runtime sweeps.
  bool measure_write_time = false;

  /// Wall-clock budget in milliseconds; 0 = unlimited. Every driver honors
  /// it: the run stops at the next task boundary (node visit / task start)
  /// and reports DeadlineExceeded through `JoinStats::status`. Checkpointed
  /// runs (core/checkpoint_join.h) additionally write a final checkpoint at
  /// the interrupted boundary, so `--resume` picks up exactly where the
  /// budget ran out.
  uint64_t deadline_ms = 0;

  /// Optional resource governance (util/exec_context.h): cancel flag,
  /// deadline, memory budget. Not owned; may be shared across concurrent
  /// runs (polling is thread-safe). A driver layers `deadline_ms` on top by
  /// chaining a private context under this one, so both constraints apply.
  /// On a trip the run unwinds at the next task boundary and
  /// `JoinStats::status` carries kDeadlineExceeded / kCancelled /
  /// kResourceExhausted.
  ExecContext* exec = nullptr;

  /// Optional node/page access accounting (Experiment 3). Not owned.
  NodeAccessTracker* tracker = nullptr;
};

}  // namespace csj

#endif  // CSJ_CORE_JOIN_OPTIONS_H_

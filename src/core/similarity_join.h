#ifndef CSJ_CORE_SIMILARITY_JOIN_H_
#define CSJ_CORE_SIMILARITY_JOIN_H_

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "core/group.h"
#include "core/join_options.h"
#include "core/join_stats.h"
#include "core/leaf_batch.h"
#include "core/sink.h"
#include "geom/kernels.h"
#include "index/spatial_index.h"
#include "util/exec_context.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/timer.h"

/// \file
/// The paper's three join algorithms over any SpatialIndex:
///
///  * StandardSimilarityJoin  (SSJ)    — recursive tree join, links only.
///  * NaiveCompactJoin        (N-CSJ)  — SSJ + the subtree early-stopping
///    rule: a node whose bounding-shape diameter is <= eps becomes one group.
///  * CompactSimilarityJoin   (CSJ(g)) — N-CSJ + merging of individual links
///    into the g most recently created groups.
///
/// All three share one traversal (Figure 3 of the paper): the single-node
/// recursion handles pairs within one subtree; the dual-node recursion
/// handles pairs that bridge two subtrees, pruned by MinDistance. The dual
/// variants (spatial joins of two different trees) run the dual-node
/// recursion over two indexes with compatible bounding shapes.

namespace csj {

namespace internal {

/// One join execution. TreeA and TreeB must share a bounding-shape type
/// (Box with Box, Ball with Ball); for self-joins they are the same tree.
template <typename TreeA, typename TreeB>
class JoinDriver {
 public:
  static constexpr int D = TreeA::kDim;
  static_assert(TreeA::kDim == TreeB::kDim, "dimension mismatch");

  JoinDriver(const TreeA& tree_a, const TreeB& tree_b, bool self_join,
             JoinAlgorithm algorithm, const JoinOptions& options,
             JoinSink* sink)
      : tree_a_(tree_a),
        tree_b_(tree_b),
        self_join_(self_join),
        algorithm_(algorithm),
        options_(options),
        eps_(options.epsilon),
        eps_squared_(options.epsilon * options.epsilon),
        sink_(sink),
        window_(std::max(options.window_size, 1), options.epsilon, sink,
                &stats_, options.measure_write_time ? &write_timer_ : nullptr,
                &run_ctx_) {
    CSJ_CHECK(options.epsilon > 0.0) << "epsilon must be positive";
    CSJ_CHECK(sink != nullptr);
    // Governance: the driver's private context layers options.deadline_ms on
    // top of whatever the caller installed in options.exec (deadline, cancel
    // flag, memory budget) — both are honored at every node visit.
    run_ctx_.SetParent(options.exec);
    run_ctx_.SetDeadlineAfterMs(options.deadline_ms);
    if (MemoryBudget* budget = run_ctx_.memory_budget()) {
      kernel_scratch_charge_.Acquire(budget, 0);
      pair_scratch_charge_.Acquire(budget, 0);
      batch_charge_.Acquire(budget, 0);
    }
    // kNaive stays undeferred so it remains the honest pre-batching
    // baseline; every other mode defers leaf work through the batch.
    batch_enabled_ = options.leaf_batch > 1 &&
                     options.leaf_kernel != LeafKernel::kNaive;
    leaf_batch_.SetCapacity(options.leaf_batch);
    stats_.algorithm = algorithm;
    stats_.epsilon = options.epsilon;
    stats_.window_size =
        algorithm == JoinAlgorithm::kCSJ ? options.window_size : 0;
  }

  /// One unit of work for the parallel driver: a single-subtree self-join
  /// (second == kInvalidNode) or a qualifying subtree pair.
  struct Task {
    NodeId first = kInvalidNode;
    NodeId second = kInvalidNode;
  };

  /// Installs an external cancellation flag: when it becomes true the
  /// traversal unwinds at the next node visit (used by the parallel join to
  /// stop all workers once one of them fails).
  void SetCancelFlag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Processes tasks pulled from a shared cursor (used by the parallel
  /// join; each worker owns one driver + sink). Self-join trees only.
  JoinStats RunTasks(const std::vector<Task>& tasks,
                     std::atomic<size_t>* cursor) {
    WallTimer timer;
    CSJ_CHECK(self_join_);
    uint64_t tasks_processed = 0;
    while (!Aborted()) {
      const size_t index = cursor->fetch_add(1, std::memory_order_relaxed);
      if (index >= tasks.size()) break;
      const Task& task = tasks[index];
      ++tasks_processed;
      if (task.second == kInvalidNode) {
        SelfJoin(task.first);
      } else {
        SelfDualJoin(task.first, task.second);
      }
      // Tasks stay atomic units of progress: nothing deferred leaks across
      // a task boundary.
      DrainLeafBatch();
    }
    if (algorithm_ == JoinAlgorithm::kCSJ) window_.Flush();
    CSJ_METRIC_HIST("parallel.tasks_per_worker", tasks_processed);
    FinalizeStats(timer);
    return stats_;
  }

  JoinStats Run() {
    WallTimer timer;
    if (options_.tracker != nullptr) options_.tracker->Reset();

    if (self_join_) {
      if (tree_a_.Root() != kInvalidNode && tree_a_.size() >= 2) {
        SelfJoin(tree_a_.Root());
      }
    } else if (tree_a_.Root() != kInvalidNode &&
               tree_b_.Root() != kInvalidNode) {
      if (MinDist(tree_a_.Root(), tree_b_.Root()) <= eps_) {
        DualJoin(tree_a_.Root(), tree_b_.Root());
      }
    }
    DrainLeafBatch();
    if (algorithm_ == JoinAlgorithm::kCSJ) window_.Flush();
    FinalizeStats(timer);
    return stats_;
  }

  // --- Checkpointed execution (core/checkpoint_join.h) ----------------------
  //
  // The checkpoint runner drives tasks one at a time so it can snapshot the
  // frontier between them: tasks are *atomic* units of progress — a cancel
  // (signal, deadline) takes effect at the next task boundary, never mid-
  // task, so the sink always sits at a position the task list can describe.

  /// Runs one task of the deterministic task list (parallel_join.h's
  /// BuildTaskList). Self-join trees only.
  void RunTask(const Task& task) {
    CSJ_CHECK(self_join_);
    if (task.second == kInvalidNode) {
      SelfJoin(task.first);
    } else {
      SelfDualJoin(task.first, task.second);
    }
    // Checkpoint atomicity: a task's deferred leaf work is part of the task
    // — it must reach the sink/window before the runner snapshots.
    DrainLeafBatch();
  }

  /// Emits everything still pending in the CSJ(g) merge window (no-op for
  /// the other algorithms). Call exactly once, after the last task.
  void FlushWindow() {
    if (algorithm_ == JoinAlgorithm::kCSJ) window_.Flush();
  }

  /// The merge window, for checkpoint export/restore.
  GroupWindow<D>& window() { return window_; }

  /// Work counters accumulated by this driver so far (fresh counters only —
  /// a resumed run's base is composed by the checkpoint runner).
  JoinStats& mutable_stats() { return stats_; }

  /// True once the sink errored or the cancel flag fired.
  bool aborted() const { return Aborted(); }

  /// Sink time accumulated so far (only meaningful with
  /// options.measure_write_time; checkpoints persist it mid-run).
  double write_seconds_so_far() const { return write_timer_.TotalSeconds(); }

  /// Completes stats from the sink and mirrors work counters into the
  /// process-wide metrics; for runners that drove tasks themselves.
  JoinStats Finalize(const WallTimer& timer) {
    FinalizeStats(timer);
    return stats_;
  }

 private:
  /// True when the run should stop producing output: the sink hit a sticky
  /// error (full disk, failed write), an external canceller fired, or the
  /// governance context tripped (deadline, cancel, memory budget). Checked
  /// at every node visit, so the traversal unwinds in O(depth) instead of
  /// grinding through the remaining pair space.
  bool Aborted() const {
    return !sink_->error().ok() ||
           (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) ||
           run_ctx_.ShouldStop();
  }

  void FinalizeStats(const WallTimer& timer) {
    if (LeafKernelUsesBackend(options_.leaf_kernel)) {
      const KernelIsa isa = EffectiveKernelIsa(options_.leaf_kernel);
      stats_.kernel_isa = KernelIsaName(isa);
      RecordKernelBackendMetric(isa);
    }
    stats_.status = sink_->error();
    if (stats_.status.ok()) stats_.status = run_ctx_.status();
    stats_.elapsed_seconds = timer.ElapsedSeconds();
    stats_.write_seconds = write_timer_.TotalSeconds();
    stats_.links = sink_->num_links();
    stats_.groups = sink_->num_groups();
    stats_.group_member_total = sink_->group_member_total();
    stats_.output_bytes = sink_->bytes();
    if (options_.tracker != nullptr) {
      const NodeAccessStats access = options_.tracker->stats();
      stats_.node_accesses = access.node_accesses;
      stats_.page_requests = access.pages.requests;
      stats_.page_disk_reads = access.pages.disk_reads;
    }
    // Mirror this run's work counters into the process-wide metrics (one
    // bulk add per run, so the per-pair hot loops stay untouched). Each
    // parallel worker finalizes its own driver and counts as one run.
    CSJ_METRIC_COUNT("join.runs", 1);
    CSJ_METRIC_COUNT("join.distance_computations",
                     stats_.distance_computations);
    CSJ_METRIC_COUNT("join.early_stops", stats_.early_stops);
    CSJ_METRIC_COUNT("join.merge_attempts", stats_.merge_attempts);
    CSJ_METRIC_COUNT("join.merges", stats_.merges);
    CSJ_METRIC_HIST("join.elapsed_ns",
                    static_cast<uint64_t>(stats_.elapsed_seconds * 1e9));
  }

  bool Compact() const { return algorithm_ != JoinAlgorithm::kSSJ; }

  void TouchA(NodeId n) {
    if (options_.tracker != nullptr) options_.tracker->Touch(n);
  }
  void TouchB(NodeId n) {
    // Offset the second tree's node ids so the two trees do not collide on
    // simulated pages.
    if (options_.tracker != nullptr) {
      options_.tracker->Touch(n + (self_join_ ? 0u : 0x40000000u));
    }
  }

  double MinDist(NodeId a, NodeId b) const {
    return MinDistance(tree_a_.Shape(a), tree_b_.Shape(b));
  }

  // --- Leaf kernels (geom/kernels.h) ----------------------------------------

  /// Folds one leaf-kernel invocation's bulk counters into the run's stats.
  /// The per-pair ++distance_computations of the old scalar loops became one
  /// add per leaf visit; under LeafKernel::kNaive the totals are identical.
  void AddKernelWork(const KernelCounters& kc) {
    stats_.distance_computations += kc.computed;
    stats_.kernel_candidates += kc.candidates;
    stats_.kernel_pruned += kc.pruned;
    stats_.kernel_hits += kc.hits;
  }

  /// Budget accounting for the reusable leaf-kernel scratch (SoA tiles, hit
  /// buffers). The charge is a monotone high-water mark resized only when a
  /// bigger leaf is visited; a denial trips the context and the traversal
  /// unwinds at the next node visit.
  bool ChargeLeafScratch(size_t entry_count) {
    if (entry_count <= charged_leaf_entries_) return true;
    charged_leaf_entries_ = entry_count;
    constexpr uint64_t kPerEntry =
        2 * (D * sizeof(double) + sizeof(PointId) + sizeof(uint32_t)) +
        2 * sizeof(KernelHit) + sizeof(uint32_t);
    if (kernel_scratch_charge_.Resize(entry_count * kPerEntry)) return true;
    run_ctx_.Trip(Status::ResourceExhausted(
        "memory budget exhausted growing leaf-kernel scratch"));
    return false;
  }

  // --- Batched leaf pipeline (core/leaf_batch.h) ----------------------------

  /// Batch keys: tree A leaves use the node id; tree B leaves (dual joins)
  /// set the top bit so the two id spaces never collide in one batch.
  static uint64_t LeafKeyA(NodeId n) { return static_cast<uint64_t>(n); }
  static uint64_t LeafKeyB(NodeId n) {
    return static_cast<uint64_t>(n) | (uint64_t{1} << 63);
  }

  /// High-water budget accounting for the batch's resident tiles + queue,
  /// called after every enqueue. A denial trips the context; the pending
  /// events are abandoned with the rest of the run.
  bool ChargeBatch() {
    const uint64_t bytes = leaf_batch_.BytesResident();
    if (bytes <= charged_batch_bytes_) return true;
    charged_batch_bytes_ = bytes;
    if (batch_charge_.Resize(bytes)) return true;
    run_ctx_.Trip(Status::ResourceExhausted(
        "memory budget exhausted growing the leaf batch"));
    return false;
  }

  /// Charge + capacity check after an enqueue; drains a full batch.
  void AfterEnqueue() {
    if (!ChargeBatch()) return;
    if (leaf_batch_.Full()) DrainLeafBatch();
  }

  /// Executes every deferred event in enqueue (= traversal) order, then
  /// resets the batch. Kernel work runs back to back over the resident
  /// tiles; group events re-walk their subtrees here, so their member
  /// collections interleave with links exactly as in the undeferred driver.
  void DrainLeafBatch() {
    for (const LeafEvent& e : leaf_batch_.events()) {
      if (Aborted()) break;
      switch (e.kind) {
        case LeafEvent::Kind::kSelfLeaf:
          AddKernelWork(SelfJoinTileKernel(
              kernel_scratch_, leaf_batch_.Tile(e.tile_a), eps_squared_,
              options_.leaf_kernel,
              [this](const Entry<D>& a, const Entry<D>& b) {
                EmitLink(a, b);
              }));
          break;
        case LeafEvent::Kind::kPairLeaf:
          AddKernelWork(BlockJoinTileKernel(
              kernel_scratch_, leaf_batch_.Tile(e.tile_a),
              leaf_batch_.Tile(e.tile_b), eps_squared_, options_.leaf_kernel,
              [this](const Entry<D>& a, const Entry<D>& b) {
                EmitLink(a, b);
              }));
          break;
        case LeafEvent::Kind::kGroup:
          EmitSubtreeGroup(static_cast<NodeId>(e.id_a));
          break;
        case LeafEvent::Kind::kGroupPair:
          if (self_join_) {
            EmitSubtreePairGroupSelf(static_cast<NodeId>(e.id_a),
                                     static_cast<NodeId>(e.id_b));
          } else {
            EmitSubtreePairGroupDual(static_cast<NodeId>(e.id_a),
                                     static_cast<NodeId>(e.id_b));
          }
          break;
      }
    }
    leaf_batch_.Clear();
  }

  /// Budget accounting for a subtree group's member collection buffer.
  bool ChargeMembers(ScopedCharge& charge, size_t count) {
    MemoryBudget* budget = run_ctx_.memory_budget();
    if (budget == nullptr) return true;
    if (charge.Acquire(budget, count * sizeof(PointId))) return true;
    run_ctx_.Trip(Status::ResourceExhausted(StrFormat(
        "memory budget exhausted collecting a %zu-member subtree group",
        count)));
    return false;
  }

  /// MinDistance-sorted child pair lists (Brinkhoff ordering) need a
  /// (dist, pair) buffer per recursion level; the pool reuses one buffer per
  /// depth so steady-state traversals allocate nothing. Indexed access only:
  /// growing the pool moves the inner vectors.
  using ChildPair = std::pair<double, std::pair<NodeId, NodeId>>;
  std::vector<ChildPair>& PairScratch(int depth) {
    if (static_cast<size_t>(depth) >= pair_scratch_pool_.size()) {
      pair_scratch_pool_.resize(depth + 1);
      // Nominal per-level estimate; the sort scratch is small but the issue
      // is the principle: every reusable buffer answers to the budget.
      if (!pair_scratch_charge_.Resize(pair_scratch_pool_.size() *
                                       kPairScratchLevelBytes)) {
        run_ctx_.Trip(Status::ResourceExhausted(
            "memory budget exhausted growing the child-pair sort scratch"));
      }
    }
    pair_scratch_pool_[depth].clear();
    return pair_scratch_pool_[depth];
  }

  // --- Single-node recursion (Figure 3, simJoin(n)) -------------------------

  void SelfJoin(NodeId n, int depth = 0) {
    if (Aborted()) return;
    CSJ_METRIC_COUNT("join.node_visits", 1);
    TouchA(n);
    if (Compact() && options_.early_stop &&
        tree_a_.MaxDiameter(n) <= eps_) {
      if (batch_enabled_) {
        leaf_batch_.PushGroup(LeafKeyA(n));
        AfterEnqueue();
      } else {
        EmitSubtreeGroup(n);
      }
      return;
    }
    if (tree_a_.IsLeaf(n)) {
      decltype(auto) entries = TreeEntries(tree_a_, n, &run_ctx_);
      if (!ChargeLeafScratch(entries.size())) return;
      if (batch_enabled_) {
        leaf_batch_.PushSelf(leaf_batch_.TileSlot(
            LeafKeyA(n), [&](LeafTile<D>& t) { t.Load(entries); }));
        AfterEnqueue();
        return;
      }
      AddKernelWork(SelfJoinKernel(
          kernel_scratch_, entries, eps_squared_, options_.leaf_kernel,
          [this](const Entry<D>& a, const Entry<D>& b) { EmitLink(a, b); }));
      return;
    }
    const auto children = TreeChildren(tree_a_, n, &run_ctx_);
    for (NodeId child : children) SelfJoin(child, depth + 1);

    if (options_.sort_child_pairs) {
      // Brinkhoff-style ordering: qualifying pairs by ascending MinDistance.
      auto& pairs = PairScratch(depth);
      for (size_t i = 0; i < children.size(); ++i) {
        for (size_t j = i + 1; j < children.size(); ++j) {
          const double dist = tree_a_.MinDistance(children[i], children[j]);
          if (dist <= eps_) pairs.push_back({dist, {children[i], children[j]}});
        }
      }
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      // Indexed, value-copied iteration: recursion below may grow the pool.
      for (size_t k = 0; k < pair_scratch_pool_[depth].size(); ++k) {
        const auto pair = pair_scratch_pool_[depth][k].second;
        SelfDualJoin(pair.first, pair.second, depth + 1);
      }
    } else {
      for (size_t i = 0; i < children.size(); ++i) {
        for (size_t j = i + 1; j < children.size(); ++j) {
          if (tree_a_.MinDistance(children[i], children[j]) <= eps_) {
            SelfDualJoin(children[i], children[j], depth + 1);
          }
        }
      }
    }
  }

  /// Dual-node recursion within the self-joined tree (simJoin(n1, n2)).
  void SelfDualJoin(NodeId n1, NodeId n2, int depth = 0) {
    if (Aborted()) return;
    CSJ_METRIC_COUNT("join.node_visits", 2);
    TouchA(n1);
    TouchA(n2);
    if (Compact() && options_.early_stop &&
        tree_a_.MaxDiameter(n1, n2) <= eps_) {
      if (batch_enabled_) {
        leaf_batch_.PushGroupPair(LeafKeyA(n1), LeafKeyA(n2));
        AfterEnqueue();
      } else {
        EmitSubtreePairGroupSelf(n1, n2);
      }
      return;
    }
    const bool leaf1 = tree_a_.IsLeaf(n1);
    const bool leaf2 = tree_a_.IsLeaf(n2);
    if (leaf1 && leaf2) {
      decltype(auto) entries1 = TreeEntries(tree_a_, n1, &run_ctx_);
      decltype(auto) entries2 = TreeEntries(tree_a_, n2, &run_ctx_);
      if (!ChargeLeafScratch(entries1.size() + entries2.size())) return;
      if (batch_enabled_) {
        const uint32_t slot1 = leaf_batch_.TileSlot(
            LeafKeyA(n1), [&](LeafTile<D>& t) { t.Load(entries1); });
        const uint32_t slot2 = leaf_batch_.TileSlot(
            LeafKeyA(n2), [&](LeafTile<D>& t) { t.Load(entries2); });
        leaf_batch_.PushPair(slot1, slot2);
        AfterEnqueue();
        return;
      }
      AddKernelWork(BlockJoinKernel(
          kernel_scratch_, entries1, entries2, eps_squared_,
          options_.leaf_kernel,
          [this](const Entry<D>& a, const Entry<D>& b) { EmitLink(a, b); }));
      return;
    }
    if (leaf1) {
      for (NodeId c2 : TreeChildren(tree_a_, n2, &run_ctx_)) {
        if (tree_a_.MinDistance(n1, c2) <= eps_) SelfDualJoin(n1, c2, depth + 1);
      }
      return;
    }
    if (leaf2) {
      for (NodeId c1 : TreeChildren(tree_a_, n1, &run_ctx_)) {
        if (tree_a_.MinDistance(c1, n2) <= eps_) SelfDualJoin(c1, n2, depth + 1);
      }
      return;
    }
    if (options_.sort_child_pairs) {
      auto& pairs = PairScratch(depth);
      for (NodeId c1 : TreeChildren(tree_a_, n1, &run_ctx_)) {
        for (NodeId c2 : TreeChildren(tree_a_, n2, &run_ctx_)) {
          const double dist = tree_a_.MinDistance(c1, c2);
          if (dist <= eps_) pairs.push_back({dist, {c1, c2}});
        }
      }
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (size_t k = 0; k < pair_scratch_pool_[depth].size(); ++k) {
        const auto pair = pair_scratch_pool_[depth][k].second;
        SelfDualJoin(pair.first, pair.second, depth + 1);
      }
      return;
    }
    for (NodeId c1 : TreeChildren(tree_a_, n1, &run_ctx_)) {
      for (NodeId c2 : TreeChildren(tree_a_, n2, &run_ctx_)) {
        if (tree_a_.MinDistance(c1, c2) <= eps_) SelfDualJoin(c1, c2, depth + 1);
      }
    }
  }

  // --- Dual-tree recursion (spatial join, Section IV-D) ----------------------

  void DualJoin(NodeId a, NodeId b, int depth = 0) {
    if (Aborted()) return;
    CSJ_METRIC_COUNT("join.node_visits", 2);
    TouchA(a);
    TouchB(b);
    if (Compact() && options_.early_stop &&
        UnionDiameterBound(tree_a_.Shape(a), tree_b_.Shape(b)) <= eps_) {
      if (batch_enabled_) {
        leaf_batch_.PushGroupPair(a, b);
        AfterEnqueue();
      } else {
        EmitSubtreePairGroupDual(a, b);
      }
      return;
    }
    const bool leaf_a = tree_a_.IsLeaf(a);
    const bool leaf_b = tree_b_.IsLeaf(b);
    if (leaf_a && leaf_b) {
      decltype(auto) entries_a = TreeEntries(tree_a_, a, &run_ctx_);
      decltype(auto) entries_b = TreeEntries(tree_b_, b, &run_ctx_);
      if (!ChargeLeafScratch(entries_a.size() + entries_b.size())) return;
      if (batch_enabled_) {
        const uint32_t slot_a = leaf_batch_.TileSlot(
            LeafKeyA(a), [&](LeafTile<D>& t) { t.Load(entries_a); });
        const uint32_t slot_b = leaf_batch_.TileSlot(
            LeafKeyB(b), [&](LeafTile<D>& t) { t.Load(entries_b); });
        leaf_batch_.PushPair(slot_a, slot_b);
        AfterEnqueue();
        return;
      }
      AddKernelWork(BlockJoinKernel(
          kernel_scratch_, entries_a, entries_b, eps_squared_,
          options_.leaf_kernel,
          [this](const Entry<D>& ea, const Entry<D>& eb) {
            EmitLink(ea, eb);
          }));
      return;
    }
    if (leaf_a) {
      for (NodeId cb : TreeChildren(tree_b_, b, &run_ctx_)) {
        if (MinDist(a, cb) <= eps_) DualJoin(a, cb, depth + 1);
      }
      return;
    }
    if (leaf_b) {
      for (NodeId ca : TreeChildren(tree_a_, a, &run_ctx_)) {
        if (MinDist(ca, b) <= eps_) DualJoin(ca, b, depth + 1);
      }
      return;
    }
    if (options_.sort_child_pairs) {
      // Brinkhoff ordering for the spatial join too (it used to be silently
      // ignored outside SelfJoin).
      auto& pairs = PairScratch(depth);
      for (NodeId ca : TreeChildren(tree_a_, a, &run_ctx_)) {
        for (NodeId cb : TreeChildren(tree_b_, b, &run_ctx_)) {
          const double dist = MinDist(ca, cb);
          if (dist <= eps_) pairs.push_back({dist, {ca, cb}});
        }
      }
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a_, const auto& b_) { return a_.first < b_.first; });
      for (size_t k = 0; k < pair_scratch_pool_[depth].size(); ++k) {
        const auto pair = pair_scratch_pool_[depth][k].second;
        DualJoin(pair.first, pair.second, depth + 1);
      }
      return;
    }
    for (NodeId ca : TreeChildren(tree_a_, a, &run_ctx_)) {
      for (NodeId cb : TreeChildren(tree_b_, b, &run_ctx_)) {
        if (MinDist(ca, cb) <= eps_) DualJoin(ca, cb, depth + 1);
      }
    }
  }

  // --- Emission ---------------------------------------------------------------

  void EmitLink(const Entry<D>& e1, const Entry<D>& e2) {
    if (algorithm_ == JoinAlgorithm::kCSJ) {
      if (options_.window_policy == WindowPolicy::kBestFit) {
        window_.MergeLinkBestFit(e1.id, e1.point, e2.id, e2.point,
                                 options_.promote_on_merge);
      } else {
        window_.MergeLink(e1.id, e1.point, e2.id, e2.point,
                          options_.promote_on_merge);
      }
      return;
    }
    stats_.AddImpliedLink();
    ScopedStopwatch watch(options_.measure_write_time ? &write_timer_
                                                      : nullptr);
    sink_->Link(e1.id, e2.id);
  }

  /// Early-stopping rule on one subtree: all points below n become a group.
  void EmitSubtreeGroup(NodeId n) {
    ++stats_.early_stops;
    const size_t count = CountEntriesInSubtree(tree_a_, n, &run_ctx_);
    ScopedCharge charge;
    if (!ChargeMembers(charge, count)) return;
    std::vector<PointId> members;
    members.reserve(count);
    Box<D> box;
    ForEachEntryInSubtree(tree_a_, n, options_.tracker,
                          [&](const Entry<D>& e) {
                            members.push_back(e.id);
                            box.Extend(e.point);
                          },
                          &run_ctx_);
    EmitGroup(std::move(members), box);
  }

  /// Early-stopping rule on a pair of subtrees of the self-joined tree.
  void EmitSubtreePairGroupSelf(NodeId n1, NodeId n2) {
    ++stats_.early_stops;
    const size_t count = CountEntriesInSubtree(tree_a_, n1, &run_ctx_) +
                         CountEntriesInSubtree(tree_a_, n2, &run_ctx_);
    ScopedCharge charge;
    if (!ChargeMembers(charge, count)) return;
    std::vector<PointId> members;
    members.reserve(count);
    Box<D> box;
    auto collect = [&](const Entry<D>& e) {
      members.push_back(e.id);
      box.Extend(e.point);
    };
    ForEachEntryInSubtree(tree_a_, n1, options_.tracker, collect, &run_ctx_);
    ForEachEntryInSubtree(tree_a_, n2, options_.tracker, collect, &run_ctx_);
    EmitGroup(std::move(members), box);
  }

  /// Early-stopping rule across the two spatial-join trees.
  void EmitSubtreePairGroupDual(NodeId a, NodeId b) {
    ++stats_.early_stops;
    const size_t count = CountEntriesInSubtree(tree_a_, a, &run_ctx_) +
                         CountEntriesInSubtree(tree_b_, b, &run_ctx_);
    ScopedCharge charge;
    if (!ChargeMembers(charge, count)) return;
    std::vector<PointId> members;
    members.reserve(count);
    Box<D> box;
    auto collect = [&](const Entry<D>& e) {
      members.push_back(e.id);
      box.Extend(e.point);
    };
    ForEachEntryInSubtree(tree_a_, a, options_.tracker, collect, &run_ctx_);
    ForEachEntryInSubtree(tree_b_, b, options_.tracker, collect, &run_ctx_);
    EmitGroup(std::move(members), box);
  }

  void EmitGroup(std::vector<PointId> members, const Box<D>& box) {
    if (members.size() < 2) return;  // no links implied; nothing to report
    if (algorithm_ == JoinAlgorithm::kCSJ) {
      // Admit to the merge window so later bridging links can join it.
      window_.AddSubtreeGroup(std::move(members), box);
      return;
    }
    stats_.AddImpliedGroup(members.size());
    ScopedStopwatch watch(options_.measure_write_time ? &write_timer_
                                                      : nullptr);
    sink_->Group(members);
  }

  const TreeA& tree_a_;
  const TreeB& tree_b_;
  bool self_join_;
  JoinAlgorithm algorithm_;
  const JoinOptions& options_;
  double eps_;
  double eps_squared_;
  JoinSink* sink_;
  const std::atomic<bool>* cancel_ = nullptr;
  JoinStats stats_;
  StopwatchAccumulator write_timer_;
  /// Governance context: layers options.deadline_ms over options.exec.
  /// Declared before window_, which captures a pointer to it.
  ExecContext run_ctx_;
  GroupWindow<D> window_;
  /// Leaf-kernel scratch (SoA tiles + hit buffer), reused across leaf visits.
  LeafJoinScratch<D> kernel_scratch_;
  /// Deferred leaf/group events + per-batch tile cache (core/leaf_batch.h).
  LeafBatch<D> leaf_batch_;
  bool batch_enabled_ = false;
  /// Per-recursion-depth (dist, child pair) buffers for sort_child_pairs.
  std::vector<std::vector<ChildPair>> pair_scratch_pool_;
  /// High-water-mark budget reservations for the scratch buffers above.
  ScopedCharge kernel_scratch_charge_;
  ScopedCharge pair_scratch_charge_;
  ScopedCharge batch_charge_;
  size_t charged_leaf_entries_ = 0;
  uint64_t charged_batch_bytes_ = 0;
  static constexpr uint64_t kPairScratchLevelBytes =
      256 * sizeof(ChildPair);
};

}  // namespace internal

/// Standard similarity self-join (SSJ): every qualifying pair is emitted as
/// an individual link. The baseline of all experiments.
template <SpatialIndex Tree>
JoinStats StandardSimilarityJoin(const Tree& tree, const JoinOptions& options,
                                 JoinSink* sink) {
  internal::JoinDriver<Tree, Tree> driver(tree, tree, /*self_join=*/true,
                                          JoinAlgorithm::kSSJ, options, sink);
  return driver.Run();
}

/// Naive compact self-join (N-CSJ): subtrees whose bounding-shape diameter is
/// within epsilon are emitted as whole groups; everything else as links.
template <SpatialIndex Tree>
JoinStats NaiveCompactJoin(const Tree& tree, const JoinOptions& options,
                           JoinSink* sink) {
  internal::JoinDriver<Tree, Tree> driver(tree, tree, /*self_join=*/true,
                                          JoinAlgorithm::kNCSJ, options, sink);
  return driver.Run();
}

/// Compact self-join CSJ(g): N-CSJ plus merging of individual links into the
/// g most recent groups (options.window_size).
template <SpatialIndex Tree>
JoinStats CompactSimilarityJoin(const Tree& tree, const JoinOptions& options,
                                JoinSink* sink) {
  internal::JoinDriver<Tree, Tree> driver(tree, tree, /*self_join=*/true,
                                          JoinAlgorithm::kCSJ, options, sink);
  return driver.Run();
}

/// Standard spatial join of two trees (cross pairs only). The two trees must
/// use the same bounding-shape family and disjoint point-id spaces.
template <SpatialIndex TreeA, SpatialIndex TreeB>
JoinStats StandardSpatialJoin(const TreeA& tree_a, const TreeB& tree_b,
                              const JoinOptions& options, JoinSink* sink) {
  internal::JoinDriver<TreeA, TreeB> driver(
      tree_a, tree_b, /*self_join=*/false, JoinAlgorithm::kSSJ, options, sink);
  return driver.Run();
}

/// Naive compact spatial join.
template <SpatialIndex TreeA, SpatialIndex TreeB>
JoinStats NaiveCompactSpatialJoin(const TreeA& tree_a, const TreeB& tree_b,
                                  const JoinOptions& options, JoinSink* sink) {
  internal::JoinDriver<TreeA, TreeB> driver(tree_a, tree_b,
                                            /*self_join=*/false,
                                            JoinAlgorithm::kNCSJ, options,
                                            sink);
  return driver.Run();
}

/// Compact spatial join CSJ(g) over two trees.
template <SpatialIndex TreeA, SpatialIndex TreeB>
JoinStats CompactSpatialJoin(const TreeA& tree_a, const TreeB& tree_b,
                             const JoinOptions& options, JoinSink* sink) {
  internal::JoinDriver<TreeA, TreeB> driver(
      tree_a, tree_b, /*self_join=*/false, JoinAlgorithm::kCSJ, options, sink);
  return driver.Run();
}

/// Dispatch by runtime algorithm value (used by the benchmark harnesses).
template <SpatialIndex Tree>
JoinStats RunSelfJoin(JoinAlgorithm algorithm, const Tree& tree,
                      const JoinOptions& options, JoinSink* sink) {
  switch (algorithm) {
    case JoinAlgorithm::kSSJ:
      return StandardSimilarityJoin(tree, options, sink);
    case JoinAlgorithm::kNCSJ:
      return NaiveCompactJoin(tree, options, sink);
    case JoinAlgorithm::kCSJ:
      return CompactSimilarityJoin(tree, options, sink);
  }
  CSJ_CHECK(false) << "unknown algorithm";
  return JoinStats();
}

}  // namespace csj

#endif  // CSJ_CORE_SIMILARITY_JOIN_H_

#ifndef CSJ_CORE_LEAF_BATCH_H_
#define CSJ_CORE_LEAF_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/kernels.h"

/// \file
/// The batched leaf-tile pipeline: a bounded queue of deferred leaf-level
/// work shared by the tree join drivers (core/similarity_join.h) and the EGO
/// join (core/ego.h).
///
/// Without batching, a driver joins each leaf (or leaf pair) the moment the
/// traversal reaches it: transpose the entries into SoA tiles, run the
/// kernel, emit. Two costs hide in that step ordering:
///
///  1. a leaf adjacent to many partners is re-transposed once per partner —
///     a real setup cost on dense data, where one leaf pairs with every
///     neighbor;
///  2. kernel invocations interleave with traversal work (shape tests, child
///     ordering), so tiles and kernel state leave cache between leaves.
///
/// The pipeline instead *defers*: tree descent enqueues LeafEvents — leaf
/// self-joins, leaf-pair joins, and (crucially) the early-stop group
/// emissions that interleave with them — into a bounded batch. Each distinct
/// leaf, identified by a driver-chosen 64-bit key, is transposed into a
/// cached LeafTile once per batch no matter how many pair events reference
/// it. When the batch fills (or the driver reaches a barrier: end of run,
/// end of checkpoint task), the executor drains: all kernel work runs back
/// to back over the resident tiles.
///
/// **Output equivalence.** Events drain in enqueue order, which is exactly
/// traversal order; group events ride the same queue, so sinks and the
/// CSJ(g) merge window see links and groups in the same sequence as the
/// undeferred driver; and the kernels replay hits canonically
/// (geom/kernels.h). Output is therefore byte-identical with batching on or
/// off, for every algorithm and kernel mode. Reusing one tile across many
/// pair events is safe for the same reason: sweep bounds and prune
/// decisions are value-determined, whatever sort state a previous kernel
/// call left behind.
///
/// **Memory.** Resident tiles and the event queue answer to the driver's
/// MemoryBudget through the usual high-water ScopedCharge pattern: the
/// driver charges BytesResident() growth on every enqueue, and the bounded
/// event capacity (JoinOptions::leaf_batch) caps how much can accumulate
/// between drains.

namespace csj {

/// One deferred unit of leaf-level work. Leaf events reference batch tile
/// slots; group events carry driver-defined subtree identities (tree
/// NodeIds, EGO range keys) because their member collections are deferred to
/// drain time along with everything else.
struct LeafEvent {
  enum class Kind : uint8_t {
    kSelfLeaf,   ///< self-join of one leaf tile
    kPairLeaf,   ///< cross-join of two leaf tiles
    kGroup,      ///< early-stop group over one subtree / range
    kGroupPair,  ///< early-stop group over a pair of subtrees / ranges
  };
  Kind kind = Kind::kSelfLeaf;
  uint32_t tile_a = 0;
  uint32_t tile_b = 0;
  uint64_t id_a = 0;
  uint64_t id_b = 0;
};

/// The bounded batch: an event queue plus a per-batch tile cache. Owned by a
/// driver and reused across batches — Clear() recycles tile capacity, so
/// steady-state batches allocate nothing new.
template <int D>
class LeafBatch {
 public:
  /// Budget model of one resident tile entry: coordinate SoA + ids +
  /// original indices, doubled for the sort scratch, plus the permutation.
  static constexpr uint64_t kTileEntryBytes =
      2 * (D * sizeof(double) + sizeof(PointId) + sizeof(uint32_t)) +
      sizeof(uint32_t);

  /// Events buffered before the driver must drain. Values <= 1 make Full()
  /// true after every push; drivers treat that as "batching off".
  void SetCapacity(size_t events) { capacity_ = events; }

  /// Slot of the tile caching leaf `key`, invoking `load(tile)` only on the
  /// first reference this batch.
  template <typename LoadFn>
  uint32_t TileSlot(uint64_t key, LoadFn&& load) {
    auto [it, fresh] =
        slots_.try_emplace(key, static_cast<uint32_t>(tiles_in_use_));
    if (fresh) {
      if (tiles_in_use_ == tiles_.size()) {
        tiles_.push_back(std::make_unique<LeafTile<D>>());
      }
      load(*tiles_[tiles_in_use_]);
      tile_entries_ += tiles_[tiles_in_use_]->size();
      ++tiles_in_use_;
    }
    return it->second;
  }

  LeafTile<D>& Tile(uint32_t slot) { return *tiles_[slot]; }

  void PushSelf(uint32_t tile) {
    events_.push_back({LeafEvent::Kind::kSelfLeaf, tile, 0, 0, 0});
  }
  void PushPair(uint32_t tile_a, uint32_t tile_b) {
    events_.push_back({LeafEvent::Kind::kPairLeaf, tile_a, tile_b, 0, 0});
  }
  void PushGroup(uint64_t id) {
    events_.push_back({LeafEvent::Kind::kGroup, 0, 0, id, 0});
  }
  void PushGroupPair(uint64_t id_a, uint64_t id_b) {
    events_.push_back({LeafEvent::Kind::kGroupPair, 0, 0, id_a, id_b});
  }

  bool Full() const { return events_.size() >= capacity_; }
  bool empty() const { return events_.empty(); }
  const std::vector<LeafEvent>& events() const { return events_; }

  /// Approximate bytes held right now, for high-water budget charging.
  uint64_t BytesResident() const {
    return tile_entries_ * kTileEntryBytes +
           events_.capacity() * sizeof(LeafEvent);
  }

  /// Forgets all events and tile keys; keeps tile + queue capacity.
  void Clear() {
    events_.clear();
    slots_.clear();
    tiles_in_use_ = 0;
    tile_entries_ = 0;
  }

 private:
  size_t capacity_ = 64;
  std::vector<LeafEvent> events_;
  /// unique_ptr slab: tiles keep stable addresses and their internal
  /// capacity as the vector grows.
  std::vector<std::unique_ptr<LeafTile<D>>> tiles_;
  size_t tiles_in_use_ = 0;
  uint64_t tile_entries_ = 0;
  std::unordered_map<uint64_t, uint32_t> slots_;
};

}  // namespace csj

#endif  // CSJ_CORE_LEAF_BATCH_H_

#ifndef CSJ_CORE_OUTPUT_STATS_H_
#define CSJ_CORE_OUTPUT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/output_reader.h"
#include "core/sink.h"
#include "geom/point.h"

/// \file
/// Descriptive statistics over a join output: how compact is it, how are
/// group sizes distributed, how much do groups overlap. This is the
/// reporting layer behind the outlier-mining workflow (the paper: "small
/// groups could correspond to outliers") and the storage accounting of the
/// NVO scenario.

namespace csj {

/// Summary of one join output.
struct OutputStats {
  uint64_t links = 0;
  uint64_t groups = 0;
  uint64_t group_member_total = 0;   ///< sum of group sizes
  uint64_t distinct_members = 0;     ///< distinct ids appearing in groups
  uint64_t largest_group = 0;
  uint64_t smallest_group = 0;
  double mean_group_size = 0.0;

  /// Links the output implies (links + sum over groups of C(k,2); overlap
  /// double-counts, so this is an upper bound on distinct links).
  uint64_t implied_links = 0;

  /// Exact byte size in the paper's text format at the given id width.
  uint64_t output_bytes = 0;
  /// Byte size a pure link listing of implied_links would need.
  uint64_t link_listing_bytes = 0;

  /// 1 - output/link_listing: the headline saving (0 when nothing implied).
  double savings() const {
    if (link_listing_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(output_bytes) /
                     static_cast<double>(link_listing_bytes);
  }

  /// Mean number of groups each grouped id appears in (>= 1); the paper's
  /// Figure 2 discussion — groups may overlap.
  double overlap_factor() const {
    if (distinct_members == 0) return 0.0;
    return static_cast<double>(group_member_total) /
           static_cast<double>(distinct_members);
  }

  /// Histogram of group sizes in power-of-two buckets: [2], [3-4], [5-8],
  /// [9-16], ... bucket i holds sizes in (2^i, 2^(i+1)].
  std::vector<uint64_t> size_histogram;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes statistics for raw links + groups at a given id width.
OutputStats ComputeOutputStats(
    const std::vector<std::pair<PointId, PointId>>& links,
    const std::vector<std::vector<PointId>>& groups, int id_width);

class ResultCursor;

/// Streams a result file's statistics through a cursor without
/// materializing the output — works on text and binary results alike. If
/// `id_width` is 0, uses the width the file declares (binary) or, failing
/// that, the width of the largest id seen (the text case).
Result<OutputStats> ComputeOutputStats(ResultCursor* cursor,
                                       int id_width = 0);

/// Convenience overloads.
inline OutputStats ComputeOutputStats(const MemorySink& sink) {
  return ComputeOutputStats(sink.links(), sink.groups(), sink.id_width());
}
inline OutputStats ComputeOutputStats(const JoinOutput& output,
                                      int id_width) {
  return ComputeOutputStats(output.links, output.groups, id_width);
}

}  // namespace csj

#endif  // CSJ_CORE_OUTPUT_STATS_H_

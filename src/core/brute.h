#ifndef CSJ_CORE_BRUTE_H_
#define CSJ_CORE_BRUTE_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "geom/point.h"

/// \file
/// O(n^2) reference join used as ground truth by tests and by the
/// verification tooling. Never used in timed comparisons.

namespace csj {

/// A canonical link: ids ordered (first < second).
using Link = std::pair<PointId, PointId>;

/// Canonicalizes a link so the smaller id comes first.
inline Link MakeLink(PointId a, PointId b) {
  return a < b ? Link{a, b} : Link{b, a};
}

/// All pairs of distinct entries within `epsilon` (closed), canonicalized
/// and sorted.
template <int D>
std::vector<Link> BruteForceSelfJoin(const std::vector<Entry<D>>& entries,
                                     double epsilon) {
  const double eps2 = epsilon * epsilon;
  std::vector<Link> links;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (SquaredDistance(entries[i].point, entries[j].point) <= eps2) {
        links.push_back(MakeLink(entries[i].id, entries[j].id));
      }
    }
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

/// All cross pairs (a from A, b from B) within `epsilon` (closed),
/// canonicalized and sorted. Id spaces must be disjoint.
template <int D>
std::vector<Link> BruteForceSpatialJoin(const std::vector<Entry<D>>& set_a,
                                        const std::vector<Entry<D>>& set_b,
                                        double epsilon) {
  const double eps2 = epsilon * epsilon;
  std::vector<Link> links;
  for (const auto& ea : set_a) {
    for (const auto& eb : set_b) {
      if (SquaredDistance(ea.point, eb.point) <= eps2) {
        links.push_back(MakeLink(ea.id, eb.id));
      }
    }
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

}  // namespace csj

#endif  // CSJ_CORE_BRUTE_H_

#ifndef CSJ_CORE_EGO_H_
#define CSJ_CORE_EGO_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/group.h"
#include "core/leaf_batch.h"
#include "geom/kernels.h"
#include "core/join_options.h"
#include "core/join_stats.h"
#include "core/sink.h"
#include "geom/box.h"
#include "util/timer.h"

/// \file
/// Epsilon-Grid-Order join (Böhm, Braunmüller, Krebs, Kriegel, SIGMOD 2001)
/// and its compact extension.
///
/// The paper's Discussion (Section VII) points out that compact joins are not
/// limited to tree indexes: "one need only modify the JoinBuffer function in
/// [the EGO join] to add the early termination-as-a-group case". This module
/// implements that claim end to end:
///
///  1. points are assigned to a grid of cell length epsilon and sorted in
///     the *epsilon grid order* (lexicographic order of cell coordinates);
///  2. a divide-and-conquer join over contiguous EGO ranges prunes range
///     pairs whose cell bounding boxes are farther than epsilon apart;
///  3. qualifying ranges are joined by nested loop — and, in the compact
///     variant, a range pair whose *point* bounding box has diagonal <=
///     epsilon short-circuits into a single group, with remaining individual
///     links merged through the same CSJ(g) group window as the tree joins.
///
/// No index is required: this is the paper's answer for data without a tree.

namespace csj {

/// Parameters of the EGO join.
struct EgoOptions {
  double epsilon = 0.1;
  /// Ranges at most this long are joined by nested loop.
  size_t leaf_size = 32;
  /// Group window for the compact variant (the paper's g).
  int window_size = 10;
  /// Enable the early termination-as-a-group case (compact variant only).
  bool early_stop = true;
  /// Leaf-range pair enumeration strategy (geom/kernels.h), same knob as
  /// JoinOptions::leaf_kernel. All modes produce identical output.
  LeafKernel leaf_kernel = LeafKernel::kSweep;

  /// Batched leaf-tile pipeline, same knob as JoinOptions::leaf_batch: the
  /// recursion defers up to this many leaf-range and group events, caching
  /// each distinct range's SoA tile once per batch. <= 1 disables batching;
  /// kNaive never batches.
  size_t leaf_batch = 64;

  /// Wall-clock budget in milliseconds; 0 = unlimited. The recursion stops
  /// at the next range visit and JoinStats::status reports DeadlineExceeded.
  uint64_t deadline_ms = 0;

  /// Optional governance context (deadline / cancel / memory budget), same
  /// semantics as JoinOptions::exec. Not owned.
  ExecContext* exec = nullptr;
};

namespace ego_internal {

/// A point with its grid cell, sortable in epsilon grid order.
template <int D>
struct EgoEntry {
  Entry<D> entry;
  std::array<int32_t, D> cell;

  friend bool operator<(const EgoEntry& a, const EgoEntry& b) {
    return a.cell < b.cell;  // lexicographic: the epsilon grid order
  }
};

template <int D>
std::vector<EgoEntry<D>> BuildEgoOrder(const std::vector<Entry<D>>& entries,
                                       double epsilon) {
  std::vector<EgoEntry<D>> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out[i].entry = entries[i];
    for (int d = 0; d < D; ++d) {
      out[i].cell[d] = static_cast<int32_t>(
          std::floor(entries[i].point[d] / epsilon));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The join state threaded through the recursion.
template <int D>
struct EgoJoinState {
  const std::vector<EgoEntry<D>>* data = nullptr;
  double eps = 0.0;
  double eps2 = 0.0;
  size_t leaf_size = 32;
  bool compact = false;
  bool early_stop = true;
  LeafKernel leaf_kernel = LeafKernel::kSweep;
  JoinSink* sink = nullptr;
  JoinStats* stats = nullptr;
  GroupWindow<D>* window = nullptr;
  /// Governance context polled at every range visit. Never null while the
  /// recursion runs (RunEgoJoin installs a local context).
  const ExecContext* exec = nullptr;
  /// Same context, mutable: the batch charge trips it on budget denial.
  ExecContext* trip_ctx = nullptr;
  /// Leaf-kernel scratch tiles + hit buffer, reused across range pairs.
  LeafJoinScratch<D> kernel_scratch;
  /// Deferred leaf/group events + per-batch tile cache (core/leaf_batch.h),
  /// with its high-water budget charge.
  LeafBatch<D> batch;
  bool batch_enabled = false;
  ScopedCharge batch_charge;
  uint64_t charged_batch_bytes = 0;

  /// Sink dead, cancel fired, deadline expired, or budget exhausted.
  bool Aborted() const { return !sink->error().ok() || exec->ShouldStop(); }
  // Bounds memoization: the recursion revisits the same canonical ranges in
  // many pair combinations, so cache per-(lo,hi) boxes.
  std::unordered_map<uint64_t, Box<D>> cell_bounds_cache;
  std::unordered_map<uint64_t, Box<D>> point_bounds_cache;
};

inline uint64_t RangeKey(size_t lo, size_t hi) {
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint64_t>(hi);
}

/// Cell-space bounding box of a contiguous EGO range, converted to point
/// space: cell c covers [c*eps, (c+1)*eps). Memoized.
template <int D>
const Box<D>& CellBounds(EgoJoinState<D>& state, size_t lo, size_t hi) {
  auto [it, fresh] = state.cell_bounds_cache.try_emplace(RangeKey(lo, hi));
  if (fresh) {
    Box<D>& box = it->second;
    const auto& data = *state.data;
    for (size_t i = lo; i < hi; ++i) {
      for (int d = 0; d < D; ++d) {
        const double base = data[i].cell[d] * state.eps;
        box.lo[d] = std::min(box.lo[d], base);
        box.hi[d] = std::max(box.hi[d], base + state.eps);
      }
    }
  }
  return it->second;
}

/// Exact point bounding box of a range. Memoized.
template <int D>
const Box<D>& PointBounds(EgoJoinState<D>& state, size_t lo, size_t hi) {
  auto [it, fresh] = state.point_bounds_cache.try_emplace(RangeKey(lo, hi));
  if (fresh) {
    Box<D>& box = it->second;
    for (size_t i = lo; i < hi; ++i) box.Extend((*state.data)[i].entry.point);
  }
  return it->second;
}

template <int D>
void EmitEgoLink(EgoJoinState<D>& state, const Entry<D>& a,
                 const Entry<D>& b) {
  if (state.compact) {
    state.window->MergeLink(a.id, a.point, b.id, b.point,
                            /*promote_on_merge=*/false);
  } else {
    state.stats->AddImpliedLink();
    state.sink->Link(a.id, b.id);
  }
}

/// Emits the whole range pair as one group (the termination-as-a-group case
/// the paper's Section VII describes for JoinBuffer).
template <int D>
void EmitEgoGroup(EgoJoinState<D>& state, size_t lo1, size_t hi1, size_t lo2,
                  size_t hi2, const Box<D>& box) {
  ++state.stats->early_stops;
  std::vector<PointId> members;
  members.reserve(hi1 - lo1 + (lo1 == lo2 ? 0 : hi2 - lo2));
  for (size_t i = lo1; i < hi1; ++i) members.push_back((*state.data)[i].entry.id);
  if (lo1 != lo2 || hi1 != hi2) {
    for (size_t i = lo2; i < hi2; ++i) {
      members.push_back((*state.data)[i].entry.id);
    }
  }
  state.window->AddSubtreeGroup(std::move(members), box);
}

/// Folds one kernel invocation's bulk counters into the run's stats.
template <int D>
void AddEgoKernelWork(EgoJoinState<D>& state, const KernelCounters& kc) {
  state.stats->distance_computations += kc.computed;
  state.stats->kernel_candidates += kc.candidates;
  state.stats->kernel_pruned += kc.pruned;
  state.stats->kernel_hits += kc.hits;
}

/// Executes every deferred event in enqueue (= recursion) order, then resets
/// the batch. Group events carry their RangeKeys; boxes come back out of the
/// PointBounds memo, so the drain recomputes nothing.
template <int D>
void DrainEgoBatch(EgoJoinState<D>& state) {
  auto emit = [&state](const Entry<D>& a, const Entry<D>& b) {
    EmitEgoLink(state, a, b);
  };
  for (const LeafEvent& e : state.batch.events()) {
    if (state.Aborted()) break;
    switch (e.kind) {
      case LeafEvent::Kind::kSelfLeaf:
        AddEgoKernelWork(
            state, SelfJoinTileKernel(state.kernel_scratch,
                                      state.batch.Tile(e.tile_a), state.eps2,
                                      state.leaf_kernel, emit));
        break;
      case LeafEvent::Kind::kPairLeaf:
        AddEgoKernelWork(
            state, BlockJoinTileKernel(
                       state.kernel_scratch, state.batch.Tile(e.tile_a),
                       state.batch.Tile(e.tile_b), state.eps2,
                       state.leaf_kernel, emit));
        break;
      case LeafEvent::Kind::kGroup: {
        const size_t lo = e.id_a >> 32;
        const size_t hi = e.id_a & 0xffffffffu;
        EmitEgoGroup(state, lo, hi, lo, hi, PointBounds(state, lo, hi));
        break;
      }
      case LeafEvent::Kind::kGroupPair: {
        const size_t lo1 = e.id_a >> 32;
        const size_t hi1 = e.id_a & 0xffffffffu;
        const size_t lo2 = e.id_b >> 32;
        const size_t hi2 = e.id_b & 0xffffffffu;
        EmitEgoGroup(state, lo1, hi1, lo2, hi2,
                     Box<D>::Union(PointBounds(state, lo1, hi1),
                                   PointBounds(state, lo2, hi2)));
        break;
      }
    }
  }
  state.batch.Clear();
}

/// Budget charge + capacity check after an enqueue; drains a full batch.
template <int D>
void AfterEgoEnqueue(EgoJoinState<D>& state) {
  const uint64_t bytes = state.batch.BytesResident();
  if (bytes > state.charged_batch_bytes) {
    state.charged_batch_bytes = bytes;
    if (!state.batch_charge.Resize(bytes)) {
      state.trip_ctx->Trip(Status::ResourceExhausted(
          "memory budget exhausted growing the EGO leaf batch"));
      return;
    }
  }
  if (state.batch.Full()) DrainEgoBatch(state);
}

/// Join of two (possibly identical) small ranges, through the leaf-kernel
/// layer (geom/kernels.h): the ranges are transposed into SoA tiles and
/// enumerated by the configured kernel. Replaces the scalar nested loop.
/// With batching on, the join is deferred instead: the range tiles enter the
/// batch cache (loaded once per batch each) and a leaf event is queued.
template <int D>
void EgoLeafJoin(EgoJoinState<D>& state, size_t lo1, size_t hi1, size_t lo2,
                 size_t hi2) {
  const auto& data = *state.data;
  const auto proj = [](const EgoEntry<D>& e) -> const Entry<D>& {
    return e.entry;
  };
  if (state.batch_enabled) {
    const uint32_t slot1 =
        state.batch.TileSlot(RangeKey(lo1, hi1), [&](LeafTile<D>& t) {
          t.Load(std::span(data.data() + lo1, hi1 - lo1), proj);
        });
    if (lo1 == lo2 && hi1 == hi2) {
      state.batch.PushSelf(slot1);
    } else {
      const uint32_t slot2 =
          state.batch.TileSlot(RangeKey(lo2, hi2), [&](LeafTile<D>& t) {
            t.Load(std::span(data.data() + lo2, hi2 - lo2), proj);
          });
      state.batch.PushPair(slot1, slot2);
    }
    AfterEgoEnqueue(state);
    return;
  }
  auto emit = [&state](const Entry<D>& a, const Entry<D>& b) {
    EmitEgoLink(state, a, b);
  };
  KernelCounters kc;
  if (lo1 == lo2 && hi1 == hi2) {
    kc = SelfJoinKernel(state.kernel_scratch,
                        std::span(data.data() + lo1, hi1 - lo1), state.eps2,
                        state.leaf_kernel, emit, proj);
  } else {
    kc = BlockJoinKernel(state.kernel_scratch,
                         std::span(data.data() + lo1, hi1 - lo1),
                         std::span(data.data() + lo2, hi2 - lo2), state.eps2,
                         state.leaf_kernel, emit, proj);
  }
  AddEgoKernelWork(state, kc);
}

/// Recursive EGO join of two contiguous ranges of the EGO-sorted data.
template <int D>
void EgoJoinRanges(EgoJoinState<D>& state, size_t lo1, size_t hi1, size_t lo2,
                   size_t hi2) {
  if (lo1 >= hi1 || lo2 >= hi2) return;
  if (state.Aborted()) return;
  const bool same = lo1 == lo2 && hi1 == hi2;

  if (!same) {
    // Prune: ranges whose (conservative) cell boxes are farther than eps
    // apart cannot contain join partners.
    const Box<D> bounds1 = CellBounds(state, lo1, hi1);
    const Box<D> bounds2 = CellBounds(state, lo2, hi2);
    if (MinDistance(bounds1, bounds2) > state.eps) return;
  }

  if (state.compact && state.early_stop) {
    // Early termination-as-a-group on the exact point boxes.
    const Box<D> points1 = PointBounds(state, lo1, hi1);
    const Box<D> points2 = same ? points1 : PointBounds(state, lo2, hi2);
    const Box<D> both = Box<D>::Union(points1, points2);
    if (both.SquaredDiagonal() <= state.eps2 &&
        (hi1 - lo1) + (same ? 0 : hi2 - lo2) >= 2) {
      if (state.batch_enabled) {
        // Defer through the same queue as the leaf joins so the CSJ(g)
        // window sees groups and links in recursion order.
        if (same) {
          state.batch.PushGroup(RangeKey(lo1, hi1));
        } else {
          state.batch.PushGroupPair(RangeKey(lo1, hi1), RangeKey(lo2, hi2));
        }
        AfterEgoEnqueue(state);
      } else {
        EmitEgoGroup(state, lo1, hi1, lo2, hi2, both);
      }
      return;
    }
  }

  if (hi1 - lo1 <= state.leaf_size && hi2 - lo2 <= state.leaf_size) {
    EgoLeafJoin(state, lo1, hi1, lo2, hi2);
    return;
  }

  if (same) {
    const size_t mid = lo1 + (hi1 - lo1) / 2;
    EgoJoinRanges(state, lo1, mid, lo1, mid);
    EgoJoinRanges(state, lo1, mid, mid, hi1);
    EgoJoinRanges(state, mid, hi1, mid, hi1);
    return;
  }
  // Split the longer range; join both halves against the other range.
  if (hi1 - lo1 >= hi2 - lo2) {
    const size_t mid = lo1 + (hi1 - lo1) / 2;
    EgoJoinRanges(state, lo1, mid, lo2, hi2);
    EgoJoinRanges(state, mid, hi1, lo2, hi2);
  } else {
    const size_t mid = lo2 + (hi2 - lo2) / 2;
    EgoJoinRanges(state, lo1, hi1, lo2, mid);
    EgoJoinRanges(state, lo1, hi1, mid, hi2);
  }
}

template <int D>
JoinStats RunEgoJoin(const std::vector<Entry<D>>& entries,
                     const EgoOptions& options, bool compact, JoinSink* sink) {
  CSJ_CHECK(options.epsilon > 0.0);
  CSJ_CHECK(sink != nullptr);
  JoinStats stats;
  stats.algorithm = compact ? JoinAlgorithm::kCSJ : JoinAlgorithm::kSSJ;
  stats.epsilon = options.epsilon;
  stats.window_size = compact ? options.window_size : 0;

  WallTimer timer;
  ExecContext run_ctx;
  run_ctx.SetParent(options.exec);
  run_ctx.SetDeadlineAfterMs(options.deadline_ms);

  // The EGO order array is the join's one big allocation: charge it before
  // building it, and fail cleanly instead of OOM-killing the process.
  ScopedCharge order_charge;
  if (MemoryBudget* budget = run_ctx.memory_budget()) {
    if (!order_charge.Acquire(budget,
                              entries.size() * sizeof(EgoEntry<D>))) {
      run_ctx.Trip(Status::ResourceExhausted(
          "memory budget exhausted building the EGO order array"));
      stats.status = run_ctx.status();
      return stats;
    }
  }
  const auto ordered = BuildEgoOrder(entries, options.epsilon);

  GroupWindow<D> window(std::max(options.window_size, 1), options.epsilon,
                        sink, &stats, /*write_timer=*/nullptr, &run_ctx);
  EgoJoinState<D> state;
  state.exec = &run_ctx;
  state.trip_ctx = &run_ctx;
  state.data = &ordered;
  state.eps = options.epsilon;
  state.eps2 = options.epsilon * options.epsilon;
  state.leaf_size = std::max<size_t>(options.leaf_size, 2);
  state.compact = compact;
  state.early_stop = options.early_stop;
  state.leaf_kernel = options.leaf_kernel;
  state.sink = sink;
  state.stats = &stats;
  state.window = &window;
  state.batch_enabled = options.leaf_batch > 1 &&
                        options.leaf_kernel != LeafKernel::kNaive;
  state.batch.SetCapacity(options.leaf_batch);
  if (MemoryBudget* budget = run_ctx.memory_budget()) {
    state.batch_charge.Acquire(budget, 0);
  }

  EgoJoinRanges(state, 0, ordered.size(), 0, ordered.size());
  DrainEgoBatch(state);
  if (compact) window.Flush();

  if (LeafKernelUsesBackend(options.leaf_kernel)) {
    const KernelIsa isa = EffectiveKernelIsa(options.leaf_kernel);
    stats.kernel_isa = KernelIsaName(isa);
    RecordKernelBackendMetric(isa);
  }
  stats.status = sink->error();
  if (stats.status.ok()) stats.status = run_ctx.status();
  stats.elapsed_seconds = timer.ElapsedSeconds();
  stats.links = sink->num_links();
  stats.groups = sink->num_groups();
  stats.group_member_total = sink->group_member_total();
  stats.output_bytes = sink->bytes();
  return stats;
}

}  // namespace ego_internal

/// Index-free standard similarity join via the epsilon grid order.
template <int D>
JoinStats EgoSimilarityJoin(const std::vector<Entry<D>>& entries,
                            const EgoOptions& options, JoinSink* sink) {
  return ego_internal::RunEgoJoin(entries, options, /*compact=*/false, sink);
}

/// Compact EGO join: the Section-VII extension (termination-as-a-group plus
/// CSJ(g) link merging), with the same lossless guarantees as the tree CSJ.
template <int D>
JoinStats CompactEgoJoin(const std::vector<Entry<D>>& entries,
                         const EgoOptions& options, JoinSink* sink) {
  return ego_internal::RunEgoJoin(entries, options, /*compact=*/true, sink);
}

namespace ego_internal {

template <int D>
JoinStats RunEgoSpatialJoin(const std::vector<Entry<D>>& set_a,
                            const std::vector<Entry<D>>& set_b,
                            const EgoOptions& options, bool compact,
                            JoinSink* sink) {
  CSJ_CHECK(options.epsilon > 0.0);
  CSJ_CHECK(sink != nullptr);
  JoinStats stats;
  stats.algorithm = compact ? JoinAlgorithm::kCSJ : JoinAlgorithm::kSSJ;
  stats.epsilon = options.epsilon;
  stats.window_size = compact ? options.window_size : 0;

  WallTimer timer;
  ExecContext run_ctx;
  run_ctx.SetParent(options.exec);
  run_ctx.SetDeadlineAfterMs(options.deadline_ms);

  ScopedCharge order_charge;
  if (MemoryBudget* budget = run_ctx.memory_budget()) {
    if (!order_charge.Acquire(
            budget, (set_a.size() + set_b.size()) * sizeof(EgoEntry<D>))) {
      run_ctx.Trip(Status::ResourceExhausted(
          "memory budget exhausted building the EGO order array"));
      stats.status = run_ctx.status();
      return stats;
    }
  }
  // Concatenate the EGO-ordered sets: A occupies [0, |A|), B occupies
  // [|A|, |A|+|B|) of one backing array, and the recursion joins the two
  // ranges (cross pairs only, per the spatial-join semantics).
  auto ordered_a = BuildEgoOrder(set_a, options.epsilon);
  const auto ordered_b = BuildEgoOrder(set_b, options.epsilon);
  const size_t split = ordered_a.size();
  ordered_a.insert(ordered_a.end(), ordered_b.begin(), ordered_b.end());

  GroupWindow<D> window(std::max(options.window_size, 1), options.epsilon,
                        sink, &stats, /*write_timer=*/nullptr, &run_ctx);
  EgoJoinState<D> state;
  state.exec = &run_ctx;
  state.trip_ctx = &run_ctx;
  state.data = &ordered_a;
  state.eps = options.epsilon;
  state.eps2 = options.epsilon * options.epsilon;
  state.leaf_size = std::max<size_t>(options.leaf_size, 2);
  state.compact = compact;
  state.early_stop = options.early_stop;
  state.leaf_kernel = options.leaf_kernel;
  state.sink = sink;
  state.stats = &stats;
  state.window = &window;
  state.batch_enabled = options.leaf_batch > 1 &&
                        options.leaf_kernel != LeafKernel::kNaive;
  state.batch.SetCapacity(options.leaf_batch);
  if (MemoryBudget* budget = run_ctx.memory_budget()) {
    state.batch_charge.Acquire(budget, 0);
  }

  EgoJoinRanges(state, 0, split, split, ordered_a.size());
  DrainEgoBatch(state);
  if (compact) window.Flush();

  if (LeafKernelUsesBackend(options.leaf_kernel)) {
    const KernelIsa isa = EffectiveKernelIsa(options.leaf_kernel);
    stats.kernel_isa = KernelIsaName(isa);
    RecordKernelBackendMetric(isa);
  }
  stats.status = sink->error();
  if (stats.status.ok()) stats.status = run_ctx.status();
  stats.elapsed_seconds = timer.ElapsedSeconds();
  stats.links = sink->num_links();
  stats.groups = sink->num_groups();
  stats.group_member_total = sink->group_member_total();
  stats.output_bytes = sink->bytes();
  return stats;
}

}  // namespace ego_internal

/// Index-free spatial join (cross pairs of two sets) via the epsilon grid
/// order. Id spaces must be disjoint, as with the tree spatial joins.
template <int D>
JoinStats EgoSpatialJoin(const std::vector<Entry<D>>& set_a,
                         const std::vector<Entry<D>>& set_b,
                         const EgoOptions& options, JoinSink* sink) {
  return ego_internal::RunEgoSpatialJoin(set_a, set_b, options,
                                         /*compact=*/false, sink);
}

/// Compact index-free spatial join. Groups mix A- and B-side ids; expand
/// with ExpandSpatialJoin. Lossless for the cross-join link set.
template <int D>
JoinStats CompactEgoSpatialJoin(const std::vector<Entry<D>>& set_a,
                                const std::vector<Entry<D>>& set_b,
                                const EgoOptions& options, JoinSink* sink) {
  return ego_internal::RunEgoSpatialJoin(set_a, set_b, options,
                                         /*compact=*/true, sink);
}

}  // namespace csj

#endif  // CSJ_CORE_EGO_H_

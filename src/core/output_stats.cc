#include "core/output_stats.h"

#include <algorithm>
#include <unordered_set>

#include "util/format.h"

namespace csj {

OutputStats ComputeOutputStats(
    const std::vector<std::pair<PointId, PointId>>& links,
    const std::vector<std::vector<PointId>>& groups, int id_width) {
  OutputStats stats;
  stats.links = links.size();
  stats.groups = groups.size();
  stats.implied_links = links.size();

  std::unordered_set<PointId> members;
  for (const auto& group : groups) {
    const uint64_t k = group.size();
    stats.group_member_total += k;
    stats.largest_group = std::max(stats.largest_group, k);
    stats.smallest_group =
        stats.smallest_group == 0 ? k : std::min(stats.smallest_group, k);
    stats.implied_links += k * (k - 1) / 2;
    members.insert(group.begin(), group.end());

    // Power-of-two bucket: sizes in (2^i, 2^(i+1)] land in bucket i.
    size_t bucket = 0;
    while ((uint64_t{2} << bucket) < k) ++bucket;
    if (stats.size_histogram.size() <= bucket) {
      stats.size_histogram.resize(bucket + 1, 0);
    }
    ++stats.size_histogram[bucket];
  }
  stats.distinct_members = members.size();
  if (stats.groups > 0) {
    stats.mean_group_size = static_cast<double>(stats.group_member_total) /
                            static_cast<double>(stats.groups);
  }

  const uint64_t per_id = static_cast<uint64_t>(id_width) + 1;
  stats.output_bytes =
      (2 * stats.links + stats.group_member_total) * per_id;
  stats.link_listing_bytes = 2 * stats.implied_links * per_id;
  return stats;
}

std::string OutputStats::ToString() const {
  std::string out = StrFormat(
      "links=%s groups=%s (sizes: min=%s mean=%.1f max=%s, overlap=%.2fx)\n",
      WithThousands(links).c_str(), WithThousands(groups).c_str(),
      WithThousands(smallest_group).c_str(), mean_group_size,
      WithThousands(largest_group).c_str(), overlap_factor());
  out += StrFormat(
      "implied links=%s; %s vs %s as a plain link listing (%.1f%% saved)\n",
      WithThousands(implied_links).c_str(), HumanBytes(output_bytes).c_str(),
      HumanBytes(link_listing_bytes).c_str(), 100.0 * savings());
  if (!size_histogram.empty()) {
    out += "group sizes: ";
    uint64_t lo = 2;
    for (size_t i = 0; i < size_histogram.size(); ++i) {
      const uint64_t hi = uint64_t{2} << i;
      if (size_histogram[i] > 0) {
        out += StrFormat("[%llu-%llu]:%s ",
                         static_cast<unsigned long long>(lo),
                         static_cast<unsigned long long>(hi),
                         WithThousands(size_histogram[i]).c_str());
      }
      lo = hi + 1;
    }
    out += "\n";
  }
  return out;
}

}  // namespace csj

#include "core/output_stats.h"

#include <algorithm>
#include <unordered_set>

#include "core/result_cursor.h"
#include "util/format.h"

namespace csj {

namespace {

/// Shared record-at-a-time accumulator behind both ComputeOutputStats
/// overloads (vector-based and cursor-based).
class StatsAccumulator {
 public:
  void AddLink(PointId a, PointId b) {
    ++stats_.links;
    ++stats_.implied_links;
    max_id_ = std::max({max_id_, a, b});
  }

  void AddGroup(std::span<const PointId> group) {
    const uint64_t k = group.size();
    stats_.group_member_total += k;
    stats_.largest_group = std::max(stats_.largest_group, k);
    stats_.smallest_group =
        stats_.smallest_group == 0 ? k : std::min(stats_.smallest_group, k);
    stats_.implied_links += k * (k - 1) / 2;
    ++stats_.groups;
    for (PointId id : group) {
      members_.insert(id);
      max_id_ = std::max(max_id_, id);
    }

    // Power-of-two bucket: sizes in (2^i, 2^(i+1)] land in bucket i.
    size_t bucket = 0;
    while ((uint64_t{2} << bucket) < k) ++bucket;
    if (stats_.size_histogram.size() <= bucket) {
      stats_.size_histogram.resize(bucket + 1, 0);
    }
    ++stats_.size_histogram[bucket];
  }

  /// Fills the width-dependent fields and returns the stats. Pass
  /// id_width 0 to infer the width from the largest id seen.
  OutputStats Finalize(int id_width) {
    stats_.distinct_members = members_.size();
    if (stats_.groups > 0) {
      stats_.mean_group_size =
          static_cast<double>(stats_.group_member_total) /
          static_cast<double>(stats_.groups);
    }
    const uint64_t per_id =
        static_cast<uint64_t>(id_width > 0 ? id_width
                                           : DecimalWidth(max_id_)) +
        1;
    stats_.output_bytes =
        (2 * stats_.links + stats_.group_member_total) * per_id;
    stats_.link_listing_bytes = 2 * stats_.implied_links * per_id;
    return stats_;
  }

 private:
  OutputStats stats_;
  std::unordered_set<PointId> members_;
  PointId max_id_ = 0;
};

}  // namespace

OutputStats ComputeOutputStats(
    const std::vector<std::pair<PointId, PointId>>& links,
    const std::vector<std::vector<PointId>>& groups, int id_width) {
  StatsAccumulator acc;
  for (const auto& [a, b] : links) acc.AddLink(a, b);
  for (const auto& group : groups) acc.AddGroup(group);
  return acc.Finalize(id_width);
}

Result<OutputStats> ComputeOutputStats(ResultCursor* cursor, int id_width) {
  StatsAccumulator acc;
  while (cursor->Next()) {
    const ResultRecord& record = cursor->record();
    if (record.is_group) {
      acc.AddGroup(record.ids);
    } else {
      acc.AddLink(record.ids[0], record.ids[1]);
    }
  }
  CSJ_RETURN_IF_ERROR(cursor->status());
  if (id_width == 0) id_width = cursor->declared_id_width();
  return acc.Finalize(id_width);
}

std::string OutputStats::ToString() const {
  std::string out = StrFormat(
      "links=%s groups=%s (sizes: min=%s mean=%.1f max=%s, overlap=%.2fx)\n",
      WithThousands(links).c_str(), WithThousands(groups).c_str(),
      WithThousands(smallest_group).c_str(), mean_group_size,
      WithThousands(largest_group).c_str(), overlap_factor());
  out += StrFormat(
      "implied links=%s; %s vs %s as a plain link listing (%.1f%% saved)\n",
      WithThousands(implied_links).c_str(), HumanBytes(output_bytes).c_str(),
      HumanBytes(link_listing_bytes).c_str(), 100.0 * savings());
  if (!size_histogram.empty()) {
    out += "group sizes: ";
    uint64_t lo = 2;
    for (size_t i = 0; i < size_histogram.size(); ++i) {
      const uint64_t hi = uint64_t{2} << i;
      if (size_histogram[i] > 0) {
        out += StrFormat("[%llu-%llu]:%s ",
                         static_cast<unsigned long long>(lo),
                         static_cast<unsigned long long>(hi),
                         WithThousands(size_histogram[i]).c_str());
      }
      lo = hi + 1;
    }
    out += "\n";
  }
  return out;
}

}  // namespace csj

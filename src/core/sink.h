#ifndef CSJ_CORE_SINK_H_
#define CSJ_CORE_SINK_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "storage/binary_format.h"
#include "storage/block_writer.h"
#include "storage/checkpoint.h"
#include "storage/output_file.h"
#include "util/exec_context.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/status.h"

/// \file
/// Join-output sinks and the OutputSpec/MakeSink factory.
///
/// Two materialized formats share one sink interface:
///  * text — the paper's format: every point id zero-padded to a fixed
///    width, a link is a line "0001 0002", a group a line "0001 0002 0003".
///  * binary — the CSJ2 compact format (storage/binary_format.h): varint +
///    delta-coded ids in checksummed blocks, written by a background thread.
///
/// Byte accounting is format-aware: bytes() always reports the exact size
/// the finished output file will have in the sink's format, so a
/// CountingSink configured for either format predicts the materialized size
/// to the byte without writing anything.
///
/// Sinks are obtained through MakeSink(OutputSpec); only core/, storage/ and
/// tests construct concrete sink classes directly.

namespace csj {

/// Materialized output formats (kNone counts without materializing).
enum class OutputFormat {
  kNone,
  kText,
  kBinary,
};

/// "none", "text" or "binary".
const char* OutputFormatName(OutputFormat format);
/// Inverse of OutputFormatName. Returns false on unknown names.
bool ParseOutputFormat(const std::string& name, OutputFormat* format);

/// Receives the join output. Counting of links/groups/bytes happens here in
/// the base class; subclasses only materialize.
///
/// Failure model: a sink that can no longer materialize output (e.g. a file
/// sink whose disk filled up) records a *sticky* error. From that moment
/// Link/Group become no-ops — nothing further is counted, so the counters
/// always describe what the sink actually accepted — and drivers poll
/// error() to abort the traversal early instead of emitting into a dead
/// sink. The first error wins and is also returned by Finish().
class JoinSink {
 public:
  /// \param id_width zero-padding width; use IdWidthFor(n) for n points.
  /// \param accounting the byte model bytes() reports in; kText or kBinary.
  JoinSink(int id_width, OutputFormat accounting)
      : JoinSink(id_width, accounting, binfmt::kDefaultBlockPayloadBytes) {}

  /// \param binary_block_target sealed-block payload target the binary size
  /// model mirrors; must match the writing sink's sealing rule.
  JoinSink(int id_width, OutputFormat accounting, size_t binary_block_target)
      : id_width_(id_width),
        accounting_(accounting),
        binary_model_(binary_block_target),
        bytes_(accounting == OutputFormat::kBinary ? binfmt::kFileHeaderBytes
                                                   : 0) {
    CSJ_CHECK(id_width >= 1);
    CSJ_CHECK(accounting == OutputFormat::kText ||
              accounting == OutputFormat::kBinary)
        << "accounting model must be a materializable format";
  }
  explicit JoinSink(int id_width) : JoinSink(id_width, OutputFormat::kText) {}
  virtual ~JoinSink() = default;

  JoinSink(const JoinSink&) = delete;
  JoinSink& operator=(const JoinSink&) = delete;

  /// Emits one individual link. No-op once the sink is in error.
  void Link(PointId a, PointId b) {
    if (!error_.ok()) return;
    ++num_links_;
    const uint64_t delta =
        accounting_ == OutputFormat::kBinary
            ? binary_model_.AddRecord(binfmt::EncodedLinkBytes(a, b))
            : 2 * static_cast<uint64_t>(id_width_ + 1);
    bytes_ += delta;
    CSJ_METRIC_COUNT("sink.links", 1);
    CSJ_METRIC_COUNT("sink.bytes", delta);
    DoLink(a, b);
  }

  /// Emits one group of mutually-qualifying points (k >= 2). No-op once the
  /// sink is in error.
  void Group(std::span<const PointId> members) {
    CSJ_DCHECK(members.size() >= 2);
    if (!error_.ok()) return;
    ++num_groups_;
    group_member_total_ += members.size();
    const uint64_t delta =
        accounting_ == OutputFormat::kBinary
            ? binary_model_.AddRecord(binfmt::EncodedGroupBytes(members))
            : members.size() * static_cast<uint64_t>(id_width_ + 1);
    bytes_ += delta;
    CSJ_METRIC_COUNT("sink.groups", 1);
    CSJ_METRIC_COUNT("sink.bytes", delta);
    DoGroup(members);
  }

  /// Completes the output (flushes files). Must be called exactly once.
  virtual Status Finish() { return error_; }

  /// Checkpoint support: makes everything emitted so far durable and fills
  /// `state` with the sink's exact mid-stream position (committed byte
  /// offset, open-block payload, counters). The base implementation covers
  /// sinks with no storage (counting/memory): committed_bytes stays 0.
  /// File sinks must be constructed checkpointable (see their Options) for
  /// this to define a resumable position.
  virtual Status Checkpoint(checkpoint::SinkState* state) {
    if (!error_.ok()) return error_;
    ExportAccounting(state);
    return Status::OK();
  }

  /// Checkpoint support: restores the base-class accounting recorded in a
  /// manifest. Only valid on a sink that has not emitted anything yet;
  /// subclass resume constructors call this.
  void RestoreAccounting(const checkpoint::SinkState& state) {
    CSJ_CHECK(num_links_ == 0 && num_groups_ == 0)
        << "RestoreAccounting on a sink that already emitted output";
    num_links_ = state.num_links;
    num_groups_ = state.num_groups;
    group_member_total_ = state.group_member_total;
    bytes_ = state.accounted_bytes;
    binary_model_.RestoreFill(state.model_fill);
  }

  /// Sticky error state; OK while the sink is accepting output.
  const Status& error() const { return error_; }

  int id_width() const { return id_width_; }
  /// The byte model bytes() reports in (kText or kBinary).
  OutputFormat accounting() const { return accounting_; }
  uint64_t num_links() const { return num_links_; }
  uint64_t num_groups() const { return num_groups_; }
  uint64_t group_member_total() const { return group_member_total_; }

  /// Exact size in bytes the finished output file has in this sink's
  /// accounting format, for everything emitted so far — i.e. the size
  /// Finish() would commit right now. Text: each id takes id_width chars
  /// plus a separator/newline. Binary: varint records plus block, header
  /// and footer overhead (see docs/OUTPUT_FORMAT.md for the size model).
  uint64_t bytes() const {
    return accounting_ == OutputFormat::kBinary
               ? bytes_ + binary_model_.CloseBytes()
               : bytes_;
  }

  /// Bytes actually written to storage so far (0 for counting and memory
  /// sinks; may trail bytes() while a background writer catches up).
  virtual uint64_t materialized_bytes() const { return 0; }

  /// True if a capped file sink hit its cap and stopped writing (it keeps
  /// counting; see FileSink::Options::cap_bytes).
  virtual bool truncated() const { return false; }

 protected:
  virtual void DoLink(PointId a, PointId b) = 0;
  virtual void DoGroup(std::span<const PointId> members) = 0;

  /// Records the sink's first error; later calls keep the original.
  void SetError(const Status& status) {
    if (error_.ok() && !status.ok()) error_ = status;
  }

  /// Fills the base-class accounting fields of a SinkState (the inverse of
  /// RestoreAccounting). Subclass Checkpoint() overrides call this and add
  /// their storage position on top.
  void ExportAccounting(checkpoint::SinkState* state) const {
    state->format = static_cast<uint8_t>(OutputFormat::kNone);
    state->id_width = static_cast<uint32_t>(id_width_);
    state->committed_bytes = 0;
    state->accounted_bytes = bytes_;
    state->model_fill = binary_model_.fill();
    state->num_links = num_links_;
    state->num_groups = num_groups_;
    state->group_member_total = group_member_total_;
    state->id_total = 0;
    state->partial_records = 0;
    state->partial_payload.clear();
  }

 private:
  int id_width_;
  OutputFormat accounting_;
  binfmt::BinarySizeModel binary_model_;
  Status error_;
  uint64_t num_links_ = 0;
  uint64_t num_groups_ = 0;
  uint64_t group_member_total_ = 0;
  uint64_t bytes_ = 0;
};

/// Convenience: zero-pad width for ids in [0, n).
inline int IdWidthFor(uint64_t n) {
  return DecimalWidth(n == 0 ? 0 : n - 1);
}

/// Counts links/groups/bytes without materializing anything. The default
/// sink for timing experiments where write time must be excluded; with a
/// kBinary model it predicts the exact CSJ2 file size of a run.
class CountingSink final : public JoinSink {
 public:
  CountingSink(int id_width, OutputFormat model)
      : JoinSink(id_width, model) {}
  explicit CountingSink(int id_width)
      : CountingSink(id_width, OutputFormat::kText) {}

 protected:
  void DoLink(PointId, PointId) override {}
  void DoGroup(std::span<const PointId>) override {}
};

/// Writes the paper's text format to a file through a buffered OutputFile.
///
/// Robust by default: the file is written atomically (temp + rename in
/// Finish), every I/O error — including a failed Open — becomes the sink's
/// sticky error, and a failed or abandoned sink leaves no partial file at
/// `path` (the destination keeps whatever it held before).
class FileSink final : public JoinSink {
 public:
  struct Options {
    /// Temp-file + rename commit in Finish(). Disable to stream directly to
    /// `path` (the pre-hardening behavior; partial output is still deleted
    /// on error).
    bool atomic = true;
    /// fsync before the commit rename; for output that must survive crashes.
    bool sync_on_close = false;
    /// If nonzero, stop *writing* once the file reaches this many bytes but
    /// keep counting — truncated() flips true. Lets benchmarks measure real
    /// write costs on explosive outputs without filling the disk.
    uint64_t cap_bytes = 0;
    /// Checkpointed run: stream straight to `path` (no temp + rename) and
    /// preserve the partial file on error/abandonment so `--resume` can
    /// truncate it back to the last checkpoint. Overrides `atomic`;
    /// incompatible with cap_bytes (enforced by MakeSink).
    bool checkpointable = false;
    /// >= 0: stream to this already-open descriptor (dup()ed; the caller
    /// keeps the original) instead of opening `path` — how a server points
    /// the sink at a client socket. Forces non-atomic; `path` becomes a
    /// display label only.
    int fd = -1;
  };

  FileSink(int id_width, std::string path, const Options& options);
  FileSink(int id_width, std::string path)
      : FileSink(id_width, std::move(path), Options()) {}
  /// Resumes a checkpointable sink mid-stream: truncates `path` to the
  /// manifest's committed byte offset and restores the counters.
  FileSink(int id_width, std::string path, const Options& options,
           const checkpoint::SinkState& resume);

  /// Commits the file. Returns the sink's sticky error if any write failed,
  /// otherwise the close/rename status.
  Status Finish() override;

  /// Flush + fsync, then records the durable record-boundary offset.
  Status Checkpoint(checkpoint::SinkState* state) override;

  const std::string& path() const { return path_; }
  /// Bytes actually written so far (matches bytes() after Finish() unless
  /// capped).
  uint64_t file_bytes() const { return file_.bytes_written(); }
  uint64_t materialized_bytes() const override {
    return file_.bytes_written();
  }
  bool truncated() const override { return truncated_; }
  /// Status of the Open performed by the constructor (also sets error()).
  const Status& open_status() const { return open_status_; }

 protected:
  void DoLink(PointId a, PointId b) override;
  void DoGroup(std::span<const PointId> members) override;

 private:
  void AppendId(PointId id, char terminator);
  bool ShouldWrite(size_t ids);

  std::string path_;
  Options options_;
  OutputFile file_;
  Status open_status_;
  bool truncated_ = false;
  std::string scratch_;
};

/// Writes the CSJ2 compact binary format (storage/binary_format.h) through
/// an asynchronous double-buffered block writer: the join thread encodes
/// records into a block buffer; sealed blocks (checksummed, length-prefixed)
/// are flushed by a background thread, overlapping encode with disk I/O.
///
/// Same robustness contract as FileSink: atomic temp+rename commit by
/// default, every I/O error (the background thread's included) becomes the
/// sink's sticky error so drivers cancel the traversal early, and a failed
/// or abandoned sink leaves no partial file behind. The `output_file.*`
/// failpoints fire on the writer thread and surface here.
class BinaryFileSink final : public JoinSink {
 public:
  struct Options {
    /// Temp-file + rename commit in Finish().
    bool atomic = true;
    /// fsync before the commit rename.
    bool sync_on_close = false;
    /// Sealed-block payload target (records never span blocks).
    size_t block_payload_bytes = binfmt::kDefaultBlockPayloadBytes;
    /// Checkpointed run: stream straight to `path` and preserve the partial
    /// file on error/abandonment for `--resume`. Overrides `atomic`.
    bool checkpointable = false;
    /// Charge the sink's block buffers — the open block plus the async
    /// writer's queue and free list — against this budget at construction.
    /// Denial becomes the sink's sticky open error (ResourceExhausted), so
    /// MakeSink fails fast before the join starts. Not owned; may be null.
    MemoryBudget* budget = nullptr;
    /// >= 0: stream CSJ2 to this already-open descriptor (dup()ed) instead
    /// of opening `path`. Forces non-atomic; `path` is a label only.
    int fd = -1;
  };

  BinaryFileSink(int id_width, std::string path, const Options& options);
  BinaryFileSink(int id_width, std::string path)
      : BinaryFileSink(id_width, std::move(path), Options()) {}
  /// Resumes a checkpointable sink mid-stream: truncates `path` to the last
  /// sealed-block boundary and reloads the open block's payload, so block
  /// sealing continues at exactly the byte positions an uninterrupted run
  /// would have produced.
  BinaryFileSink(int id_width, std::string path, const Options& options,
                 const checkpoint::SinkState& resume);
  ~BinaryFileSink() override;

  /// Seals the final block, appends the EOF marker + footer, joins the
  /// writer thread and commits the file.
  Status Finish() override;

  /// Drains the background writer, fsyncs, and records the durable
  /// sealed-block offset plus the open block's payload.
  Status Checkpoint(checkpoint::SinkState* state) override;

  const std::string& path() const { return path_; }
  uint64_t materialized_bytes() const override {
    return writer_ != nullptr ? writer_->bytes_submitted() : 0;
  }
  /// Status of the Open performed by the constructor (also sets error()).
  const Status& open_status() const { return open_status_; }

 protected:
  void DoLink(PointId a, PointId b) override;
  void DoGroup(std::span<const PointId> members) override;

 private:
  /// Reserves the block-buffer footprint against options_.budget (no-op
  /// without one). On denial sets the sticky ResourceExhausted open error.
  bool ChargeBuffers();
  /// Pulls a background write error into the sink's sticky error.
  void PollWriter() {
    if (writer_ != nullptr && !writer_->ok()) SetError(writer_->status());
  }
  size_t PayloadFill() const {
    return block_.size() - binfmt::kBlockHeaderBytes;
  }
  void StartBlock();
  void SealBlock();

  std::string path_;
  Options options_;
  OutputFile file_;
  Status open_status_;
  ScopedCharge buffer_charge_;  ///< block buffers held against the budget
  std::unique_ptr<AsyncBlockWriter> writer_;
  std::string block_;  ///< header slot + payload of the block being filled
  uint32_t record_count_ = 0;
  uint64_t id_total_ = 0;
  bool finished_ = false;
};

/// Retains every link and group in memory, for tests and expansion.
class MemorySink final : public JoinSink {
 public:
  explicit MemorySink(int id_width) : JoinSink(id_width) {}

  const std::vector<std::pair<PointId, PointId>>& links() const {
    return links_;
  }
  const std::vector<std::vector<PointId>>& groups() const { return groups_; }

 protected:
  void DoLink(PointId a, PointId b) override { links_.emplace_back(a, b); }
  void DoGroup(std::span<const PointId> members) override {
    groups_.emplace_back(members.begin(), members.end());
  }

 private:
  std::vector<std::pair<PointId, PointId>> links_;
  std::vector<std::vector<PointId>> groups_;
};

/// Declarative description of where and how a join's output goes. The one
/// way user code (tools, benches, examples) obtains a sink.
struct OutputSpec {
  /// kNone counts only; kText/kBinary materialize to `path`.
  OutputFormat format = OutputFormat::kText;
  std::string path;
  /// Zero-pad width of the ids; use IdWidthFor(n) (the helpers below do).
  int id_width = 1;
  /// Temp-file + rename commit (file formats).
  bool atomic = true;
  /// fsync before the commit rename (file formats).
  bool sync_on_close = false;
  /// Nonzero: stop writing at this size but keep counting (text files only).
  uint64_t cap_bytes = 0;
  /// Checkpointed run: stream straight to `path` and preserve partial output
  /// for `--resume` (see FileSink/BinaryFileSink options). Overrides
  /// `atomic`; incompatible with cap_bytes.
  bool checkpointable = false;
  /// Byte model a kNone (counting) sink reports in.
  OutputFormat count_model = OutputFormat::kText;
  /// Memory budget the sink's buffers are charged against (binary sinks
  /// hold several block-sized buffers). Denial fails MakeSink with
  /// ResourceExhausted instead of letting the join start. Not owned.
  MemoryBudget* budget = nullptr;
  /// >= 0: stream to this already-open descriptor (socket, pipe) instead of
  /// opening `path`. The fd is dup()ed — the caller keeps ownership. Only
  /// text/binary formats; atomic commit, checkpointing and cap_bytes do not
  /// apply to a stream (enforced by MakeSink). A peer hang-up mid-stream
  /// becomes the sink's sticky kCancelled (EPIPE mapping in OutputFile).
  int fd = -1;

  /// Streaming sink over an open descriptor, over ids in [0, num_points).
  static OutputSpec Stream(int fd, uint64_t num_points,
                           OutputFormat format = OutputFormat::kText) {
    OutputSpec spec;
    spec.format = format;
    spec.fd = fd;
    spec.id_width = IdWidthFor(num_points);
    spec.atomic = false;
    return spec;
  }

  /// Counting sink over ids in [0, num_points), in the given byte model.
  static OutputSpec Counting(uint64_t num_points,
                             OutputFormat model = OutputFormat::kText) {
    OutputSpec spec;
    spec.format = OutputFormat::kNone;
    spec.id_width = IdWidthFor(num_points);
    spec.count_model = model;
    return spec;
  }

  /// File sink at `path` over ids in [0, num_points).
  static OutputSpec File(std::string path, uint64_t num_points,
                         OutputFormat format = OutputFormat::kText) {
    OutputSpec spec;
    spec.format = format;
    spec.path = std::move(path);
    spec.id_width = IdWidthFor(num_points);
    return spec;
  }
};

/// Builds the sink an OutputSpec describes. Fails fast: an unopenable file
/// is reported here, not deferred to the first write. kNone ignores `path`.
Result<std::unique_ptr<JoinSink>> MakeSink(const OutputSpec& spec);

/// MakeSink for contexts without error plumbing (benches): aborts with the
/// status message on failure.
std::unique_ptr<JoinSink> MakeSinkOrDie(const OutputSpec& spec);

/// Rebuilds a checkpointable sink mid-stream from a manifest's sink state:
/// validates that `spec` matches the state (format, id width), truncates the
/// output back to the committed boundary and restores every counter, so
/// emission continues exactly where the checkpoint left off. `spec` must
/// have checkpointable set for materializing formats.
Result<std::unique_ptr<JoinSink>> ResumeSink(const OutputSpec& spec,
                                             const checkpoint::SinkState& state);

}  // namespace csj

#endif  // CSJ_CORE_SINK_H_

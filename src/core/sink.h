#ifndef CSJ_CORE_SINK_H_
#define CSJ_CORE_SINK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/point.h"
#include "storage/output_file.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/status.h"

/// \file
/// Join-output sinks.
///
/// The paper measures output size as the byte size of a text file in which
/// every data point id is zero-padded to a fixed width, a link is a line
/// "0001 0002" and a group is a line "0001 0002 0003 ...". All sinks share
/// that format so byte counts are identical whether the output is actually
/// written (FileSink), only counted (CountingSink), or retained in memory for
/// verification (MemorySink).

namespace csj {

/// Receives the join output. Counting of links/groups/bytes happens here in
/// the base class; subclasses only materialize.
///
/// Failure model: a sink that can no longer materialize output (e.g. a file
/// sink whose disk filled up) records a *sticky* error. From that moment
/// Link/Group become no-ops — nothing further is counted, so the counters
/// always describe what the sink actually accepted — and drivers poll
/// error() to abort the traversal early instead of emitting into a dead
/// sink. The first error wins and is also returned by Finish().
class JoinSink {
 public:
  /// \param id_width zero-padding width; use IdWidthFor(n) for n points.
  explicit JoinSink(int id_width) : id_width_(id_width) {
    CSJ_CHECK(id_width >= 1);
  }
  virtual ~JoinSink() = default;

  JoinSink(const JoinSink&) = delete;
  JoinSink& operator=(const JoinSink&) = delete;

  /// Emits one individual link. No-op once the sink is in error.
  void Link(PointId a, PointId b) {
    if (!error_.ok()) return;
    ++num_links_;
    bytes_ += 2 * static_cast<uint64_t>(id_width_ + 1);
    CSJ_METRIC_COUNT("sink.links", 1);
    CSJ_METRIC_COUNT("sink.bytes", 2 * static_cast<uint64_t>(id_width_ + 1));
    DoLink(a, b);
  }

  /// Emits one group of mutually-qualifying points (k >= 2). No-op once the
  /// sink is in error.
  void Group(std::span<const PointId> members) {
    CSJ_DCHECK(members.size() >= 2);
    if (!error_.ok()) return;
    ++num_groups_;
    group_member_total_ += members.size();
    bytes_ += members.size() * static_cast<uint64_t>(id_width_ + 1);
    CSJ_METRIC_COUNT("sink.groups", 1);
    CSJ_METRIC_COUNT("sink.bytes",
                     members.size() * static_cast<uint64_t>(id_width_ + 1));
    DoGroup(members);
  }

  /// Completes the output (flushes files). Must be called exactly once.
  virtual Status Finish() { return error_; }

  /// Sticky error state; OK while the sink is accepting output.
  const Status& error() const { return error_; }

  int id_width() const { return id_width_; }
  uint64_t num_links() const { return num_links_; }
  uint64_t num_groups() const { return num_groups_; }
  uint64_t group_member_total() const { return group_member_total_; }

  /// Exact size in bytes of the paper's text representation of everything
  /// emitted so far (each id takes id_width chars followed by a separator or
  /// the newline).
  uint64_t bytes() const { return bytes_; }

 protected:
  virtual void DoLink(PointId a, PointId b) = 0;
  virtual void DoGroup(std::span<const PointId> members) = 0;

  /// Records the sink's first error; later calls keep the original.
  void SetError(const Status& status) {
    if (error_.ok() && !status.ok()) error_ = status;
  }

 private:
  int id_width_;
  Status error_;
  uint64_t num_links_ = 0;
  uint64_t num_groups_ = 0;
  uint64_t group_member_total_ = 0;
  uint64_t bytes_ = 0;
};

/// Convenience: zero-pad width for ids in [0, n).
inline int IdWidthFor(uint64_t n) {
  return DecimalWidth(n == 0 ? 0 : n - 1);
}

/// Counts links/groups/bytes without materializing anything. The default
/// sink for timing experiments where write time must be excluded.
class CountingSink final : public JoinSink {
 public:
  explicit CountingSink(int id_width) : JoinSink(id_width) {}

 protected:
  void DoLink(PointId, PointId) override {}
  void DoGroup(std::span<const PointId>) override {}
};

/// Writes the paper's text format to a file through a buffered OutputFile.
///
/// Robust by default: the file is written atomically (temp + rename in
/// Finish), every I/O error — including a failed Open — becomes the sink's
/// sticky error, and a failed or abandoned sink leaves no partial file at
/// `path` (the destination keeps whatever it held before).
class FileSink final : public JoinSink {
 public:
  struct Options {
    /// Temp-file + rename commit in Finish(). Disable to stream directly to
    /// `path` (the pre-hardening behavior; partial output is still deleted
    /// on error).
    bool atomic = true;
    /// fsync before the commit rename; for output that must survive crashes.
    bool sync_on_close = false;
  };

  FileSink(int id_width, std::string path, const Options& options);
  FileSink(int id_width, std::string path)
      : FileSink(id_width, std::move(path), Options()) {}

  /// Commits the file. Returns the sink's sticky error if any write failed,
  /// otherwise the close/rename status.
  Status Finish() override;

  const std::string& path() const { return path_; }
  /// Bytes actually written so far (matches bytes() after Finish()).
  uint64_t file_bytes() const { return file_.bytes_written(); }
  /// Status of the Open performed by the constructor (also sets error()).
  const Status& open_status() const { return open_status_; }

 protected:
  void DoLink(PointId a, PointId b) override;
  void DoGroup(std::span<const PointId> members) override;

 private:
  void AppendId(PointId id, char terminator);

  std::string path_;
  OutputFile file_;
  Status open_status_;
  std::string scratch_;
};

/// Retains every link and group in memory, for tests and expansion.
class MemorySink final : public JoinSink {
 public:
  explicit MemorySink(int id_width) : JoinSink(id_width) {}

  const std::vector<std::pair<PointId, PointId>>& links() const {
    return links_;
  }
  const std::vector<std::vector<PointId>>& groups() const { return groups_; }

 protected:
  void DoLink(PointId a, PointId b) override { links_.emplace_back(a, b); }
  void DoGroup(std::span<const PointId> members) override {
    groups_.emplace_back(members.begin(), members.end());
  }

 private:
  std::vector<std::pair<PointId, PointId>> links_;
  std::vector<std::vector<PointId>> groups_;
};

}  // namespace csj

#endif  // CSJ_CORE_SINK_H_

#ifndef CSJ_CORE_EXPAND_H_
#define CSJ_CORE_EXPAND_H_

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/brute.h"
#include "core/result_cursor.h"
#include "core/sink.h"
#include "util/exec_context.h"
#include "util/format.h"

/// \file
/// Lossless expansion of the compact representation back into links, plus
/// the verification used to test the paper's Theorems 1 (completeness) and
/// 2 (correctness): expanding a compact output must yield *exactly* the
/// standard join's link set — no missing links, no extra links.

namespace csj {

/// Expands everything a MemorySink captured (individual links + all pairs
/// implied by each group) into a canonical, sorted, de-duplicated link set.
inline std::vector<Link> ExpandSelfJoin(const MemorySink& sink) {
  std::vector<Link> links;
  for (const auto& [a, b] : sink.links()) links.push_back(MakeLink(a, b));
  for (const auto& group : sink.groups()) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        links.push_back(MakeLink(group[i], group[j]));
      }
    }
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

/// Expands a spatial-join output into cross links only: a group implies the
/// pairs between its A-side and B-side members, where `is_a` classifies ids.
inline std::vector<Link> ExpandSpatialJoin(
    const MemorySink& sink, const std::function<bool(PointId)>& is_a) {
  std::vector<Link> links;
  for (const auto& [a, b] : sink.links()) links.push_back(MakeLink(a, b));
  std::vector<PointId> side_a, side_b;
  for (const auto& group : sink.groups()) {
    side_a.clear();
    side_b.clear();
    for (PointId id : group) (is_a(id) ? side_a : side_b).push_back(id);
    for (PointId a : side_a) {
      for (PointId b : side_b) links.push_back(MakeLink(a, b));
    }
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

/// Streams every implied link of a join output to `fn(PointId, PointId)`
/// without materializing the expansion — the right tool when the standard
/// join would not fit in memory (the output-explosion case). Links are
/// visited in emission order and pairs implied by several overlapping
/// groups are visited once per group; canonicalize/deduplicate downstream
/// if needed (ExpandSelfJoin does both, at O(total links) memory).
template <typename Fn>
void ForEachImpliedLink(
    const std::vector<std::pair<PointId, PointId>>& links,
    const std::vector<std::vector<PointId>>& groups, Fn&& fn) {
  for (const auto& [a, b] : links) fn(a, b);
  for (const auto& group : groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        fn(group[i], group[j]);
      }
    }
  }
}

/// MemorySink overload.
template <typename Fn>
void ForEachImpliedLink(const MemorySink& sink, Fn&& fn) {
  ForEachImpliedLink(sink.links(), sink.groups(), std::forward<Fn>(fn));
}

/// Streams every implied link of a materialized result file — text or
/// binary, via a ResultCursor — without loading the output into memory.
/// Returns the cursor's final status (visited links are valid regardless).
///
/// This is the path that can run for a very long time (a group of k members
/// implies k*(k-1)/2 links, so expansion can dwarf the join itself). An
/// optional ExecContext makes it governable: the deadline/cancel state is
/// polled once per record, and a trip stops the stream and surfaces the
/// context's status instead of the cursor's.
template <typename Fn>
Status ForEachImpliedLink(ResultCursor* cursor, Fn&& fn,
                          const ExecContext* exec = nullptr) {
  while (cursor->Next()) {
    if (exec != nullptr && exec->ShouldStop()) return exec->status();
    const ResultRecord& record = cursor->record();
    const std::span<const PointId> ids = record.ids;
    if (!record.is_group) {
      fn(ids[0], ids[1]);
    } else {
      for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = i + 1; j < ids.size(); ++j) {
          fn(ids[i], ids[j]);
        }
      }
    }
  }
  return cursor->status();
}

/// Expands a whole result file into a canonical, sorted, de-duplicated link
/// set. Runs unchanged on text and binary results. The optional ExecContext
/// governs both the streaming pass (per-record poll) and the materialized
/// link buffer, which is charged against the context's memory budget in
/// chunks as it grows.
inline Result<std::vector<Link>> ExpandSelfJoin(
    ResultCursor* cursor, const ExecContext* exec = nullptr) {
  std::vector<Link> links;
  ScopedCharge charge;
  MemoryBudget* budget = exec != nullptr ? exec->memory_budget() : nullptr;
  Status expand_status = Status::OK();
  const Status status = ForEachImpliedLink(
      cursor,
      [&](PointId a, PointId b) {
        if (!expand_status.ok()) return;
        if (budget != nullptr && links.size() == links.capacity()) {
          const size_t next_cap = std::max<size_t>(links.capacity() * 2, 1024);
          if (charge.budget() == nullptr
                  ? !charge.Acquire(budget, next_cap * sizeof(Link))
                  : !charge.Resize(next_cap * sizeof(Link))) {
            expand_status = Status::ResourceExhausted(
                "memory budget exhausted materializing the expanded link "
                "set — stream with ForEachImpliedLink instead");
            return;
          }
          links.reserve(next_cap);
        }
        links.push_back(MakeLink(a, b));
      },
      exec);
  CSJ_RETURN_IF_ERROR(expand_status);
  CSJ_RETURN_IF_ERROR(status);
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

/// Result of comparing a compact output against a reference link set.
struct LosslessReport {
  std::vector<Link> missing;  ///< in reference, absent from expansion
  std::vector<Link> extra;    ///< in expansion, absent from reference

  bool lossless() const { return missing.empty() && extra.empty(); }

  std::string ToString() const {
    if (lossless()) return "lossless: expansion == reference";
    std::string out = StrFormat("NOT lossless: %zu missing, %zu extra",
                                missing.size(), extra.size());
    auto preview = [&out](const char* tag, const std::vector<Link>& v) {
      for (size_t i = 0; i < v.size() && i < 5; ++i) {
        out += StrFormat("\n  %s (%u, %u)", tag, v[i].first, v[i].second);
      }
    };
    preview("missing", missing);
    preview("extra", extra);
    return out;
  }
};

/// Set-difference comparison of two canonical (sorted, unique) link sets.
inline LosslessReport CompareLinkSets(const std::vector<Link>& expansion,
                                      const std::vector<Link>& reference) {
  LosslessReport report;
  std::set_difference(reference.begin(), reference.end(), expansion.begin(),
                      expansion.end(), std::back_inserter(report.missing));
  std::set_difference(expansion.begin(), expansion.end(), reference.begin(),
                      reference.end(), std::back_inserter(report.extra));
  return report;
}

/// One-call verification for self-joins: expands `compact` and compares it
/// with the brute-force join of `entries` at `epsilon`.
template <int D>
LosslessReport VerifySelfJoinLossless(const MemorySink& compact,
                                      const std::vector<Entry<D>>& entries,
                                      double epsilon) {
  return CompareLinkSets(ExpandSelfJoin(compact),
                         BruteForceSelfJoin(entries, epsilon));
}

}  // namespace csj

#endif  // CSJ_CORE_EXPAND_H_

#include "core/sink.h"

namespace csj {

FileSink::FileSink(int id_width, std::string path)
    : JoinSink(id_width), path_(std::move(path)) {
  open_status_ = file_.Open(path_);
  scratch_.reserve(256);
}

void FileSink::AppendId(PointId id, char terminator) {
  // Zero-padded fixed-width decimal, hand-rolled to avoid per-id allocation.
  char buf[24];
  int pos = 24;
  uint64_t v = id;
  do {
    buf[--pos] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  int digits = 24 - pos;
  for (int i = digits; i < id_width(); ++i) scratch_.push_back('0');
  scratch_.append(buf + pos, buf + 24);
  scratch_.push_back(terminator);
}

void FileSink::DoLink(PointId a, PointId b) {
  if (!open_status_.ok()) return;
  scratch_.clear();
  AppendId(a, ' ');
  AppendId(b, '\n');
  file_.Append(scratch_);
}

void FileSink::DoGroup(std::span<const PointId> members) {
  if (!open_status_.ok()) return;
  scratch_.clear();
  for (size_t i = 0; i < members.size(); ++i) {
    AppendId(members[i], i + 1 == members.size() ? '\n' : ' ');
  }
  file_.Append(scratch_);
}

Status FileSink::Finish() {
  CSJ_RETURN_IF_ERROR(open_status_);
  return file_.Close();
}

}  // namespace csj

#include "core/sink.h"

namespace csj {

FileSink::FileSink(int id_width, std::string path, const Options& options)
    : JoinSink(id_width), path_(std::move(path)) {
  OutputFile::Options file_options;
  file_options.atomic = options.atomic;
  file_options.sync_on_close = options.sync_on_close;
  open_status_ = file_.Open(path_, file_options);
  SetError(open_status_);
  scratch_.reserve(256);
}

void FileSink::AppendId(PointId id, char terminator) {
  // Zero-padded fixed-width decimal, hand-rolled to avoid per-id allocation.
  char buf[24];
  int pos = 24;
  uint64_t v = id;
  do {
    buf[--pos] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  int digits = 24 - pos;
  for (int i = digits; i < id_width(); ++i) scratch_.push_back('0');
  scratch_.append(buf + pos, buf + 24);
  scratch_.push_back(terminator);
}

void FileSink::DoLink(PointId a, PointId b) {
  scratch_.clear();
  AppendId(a, ' ');
  AppendId(b, '\n');
  SetError(file_.Append(scratch_));
}

void FileSink::DoGroup(std::span<const PointId> members) {
  scratch_.clear();
  for (size_t i = 0; i < members.size(); ++i) {
    AppendId(members[i], i + 1 == members.size() ? '\n' : ' ');
  }
  SetError(file_.Append(scratch_));
}

Status FileSink::Finish() {
  if (!error().ok()) {
    // The OutputFile already cleaned up its partial file when it failed (or
    // will in its destructor if the error came from elsewhere).
    return error();
  }
  const Status close_status = file_.Close();
  SetError(close_status);
  return close_status;
}

}  // namespace csj

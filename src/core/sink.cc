#include "core/sink.h"

namespace csj {

const char* OutputFormatName(OutputFormat format) {
  switch (format) {
    case OutputFormat::kNone:
      return "none";
    case OutputFormat::kText:
      return "text";
    case OutputFormat::kBinary:
      return "binary";
  }
  return "unknown";
}

bool ParseOutputFormat(const std::string& name, OutputFormat* format) {
  if (name == "none") {
    *format = OutputFormat::kNone;
  } else if (name == "text") {
    *format = OutputFormat::kText;
  } else if (name == "binary") {
    *format = OutputFormat::kBinary;
  } else {
    return false;
  }
  return true;
}

FileSink::FileSink(int id_width, std::string path, const Options& options)
    : JoinSink(id_width), path_(std::move(path)), options_(options) {
  OutputFile::Options file_options;
  // Checkpointable output streams straight to the destination and survives
  // errors/kills: the bytes up to the last checkpoint are the resume state.
  file_options.atomic =
      options.atomic && !options.checkpointable && options.fd < 0;
  file_options.sync_on_close = options.sync_on_close;
  file_options.preserve_on_error = options.checkpointable;
  open_status_ = options.fd >= 0 ? file_.OpenFd(options.fd, file_options)
                                 : file_.Open(path_, file_options);
  SetError(open_status_);
  scratch_.reserve(256);
}

FileSink::FileSink(int id_width, std::string path, const Options& options,
                   const checkpoint::SinkState& resume)
    : JoinSink(id_width), path_(std::move(path)), options_(options) {
  CSJ_CHECK(options.checkpointable)
      << "resuming requires a checkpointable sink: " << path_;
  OutputFile::Options file_options;
  file_options.sync_on_close = options.sync_on_close;
  open_status_ =
      file_.OpenForResume(path_, resume.committed_bytes, file_options);
  SetError(open_status_);
  if (open_status_.ok()) RestoreAccounting(resume);
  scratch_.reserve(256);
}

void FileSink::AppendId(PointId id, char terminator) {
  // Zero-padded fixed-width decimal, hand-rolled to avoid per-id allocation.
  char buf[24];
  int pos = 24;
  uint64_t v = id;
  do {
    buf[--pos] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  int digits = 24 - pos;
  for (int i = digits; i < id_width(); ++i) scratch_.push_back('0');
  scratch_.append(buf + pos, buf + 24);
  scratch_.push_back(terminator);
}

bool FileSink::ShouldWrite(size_t ids) {
  if (options_.cap_bytes == 0) return true;
  if (file_.bytes_written() + ids * static_cast<uint64_t>(id_width() + 1) >
      options_.cap_bytes) {
    truncated_ = true;
    return false;
  }
  return true;
}

void FileSink::DoLink(PointId a, PointId b) {
  if (!ShouldWrite(2)) return;
  scratch_.clear();
  AppendId(a, ' ');
  AppendId(b, '\n');
  SetError(file_.Append(scratch_));
}

void FileSink::DoGroup(std::span<const PointId> members) {
  if (!ShouldWrite(members.size())) return;
  scratch_.clear();
  for (size_t i = 0; i < members.size(); ++i) {
    AppendId(members[i], i + 1 == members.size() ? '\n' : ' ');
  }
  SetError(file_.Append(scratch_));
}

Status FileSink::Finish() {
  if (!error().ok()) {
    // The OutputFile already cleaned up its partial file when it failed (or
    // will in its destructor if the error came from elsewhere).
    return error();
  }
  const Status close_status = file_.Close();
  SetError(close_status);
  return close_status;
}

Status FileSink::Checkpoint(checkpoint::SinkState* state) {
  if (!error().ok()) return error();
  CSJ_CHECK(options_.checkpointable)
      << "Checkpoint on a non-checkpointable file sink: " << path_;
  // Text records are appended whole, so after a sync every counted byte is
  // durable and bytes_written() is a record-boundary resume point.
  SetError(file_.Sync());
  if (!error().ok()) return error();
  ExportAccounting(state);
  state->format = static_cast<uint8_t>(OutputFormat::kText);
  state->committed_bytes = file_.bytes_written();
  return Status::OK();
}

BinaryFileSink::BinaryFileSink(int id_width, std::string path,
                               const Options& options)
    : JoinSink(id_width, OutputFormat::kBinary, options.block_payload_bytes),
      path_(std::move(path)),
      options_(options) {
  OutputFile::Options file_options;
  file_options.atomic =
      options.atomic && !options.checkpointable && options.fd < 0;
  file_options.sync_on_close = options.sync_on_close;
  file_options.preserve_on_error = options.checkpointable;
  open_status_ = options.fd >= 0 ? file_.OpenFd(options.fd, file_options)
                                 : file_.Open(path_, file_options);
  SetError(open_status_);
  if (!open_status_.ok()) return;
  if (!ChargeBuffers()) return;
  writer_ = std::make_unique<AsyncBlockWriter>(&file_);
  std::string header;
  binfmt::AppendFileHeader(&header, this->id_width());
  writer_->Submit(std::move(header));
  StartBlock();
}

bool BinaryFileSink::ChargeBuffers() {
  if (options_.budget == nullptr) return true;
  // Steady-state buffer footprint: the block being filled plus the async
  // writer's bounded queue and its recycled free buffer.
  const uint64_t per_block = static_cast<uint64_t>(
      binfmt::kBlockHeaderBytes + options_.block_payload_bytes);
  const uint64_t bytes =
      per_block * (AsyncBlockWriter::Options().max_queued_blocks + 1);
  if (!buffer_charge_.Acquire(options_.budget, bytes)) {
    open_status_ = Status::ResourceExhausted(StrFormat(
        "memory budget exhausted reserving %llu bytes of output block "
        "buffers for %s",
        static_cast<unsigned long long>(bytes), path_.c_str()));
    SetError(open_status_);
    return false;
  }
  return true;
}

BinaryFileSink::BinaryFileSink(int id_width, std::string path,
                               const Options& options,
                               const checkpoint::SinkState& resume)
    : JoinSink(id_width, OutputFormat::kBinary, options.block_payload_bytes),
      path_(std::move(path)),
      options_(options) {
  CSJ_CHECK(options.checkpointable)
      << "resuming requires a checkpointable sink: " << path_;
  CSJ_CHECK(resume.model_fill == resume.partial_payload.size())
      << "manifest sink state inconsistent: model fill " << resume.model_fill
      << " vs " << resume.partial_payload.size() << " partial payload bytes";
  OutputFile::Options file_options;
  file_options.sync_on_close = options.sync_on_close;
  open_status_ =
      file_.OpenForResume(path_, resume.committed_bytes, file_options);
  SetError(open_status_);
  if (!open_status_.ok()) return;
  if (!ChargeBuffers()) return;
  RestoreAccounting(resume);
  writer_ = std::make_unique<AsyncBlockWriter>(&file_);
  // The committed prefix already holds the file header and every sealed
  // block; only the still-open block needs reconstructing, and from here
  // the sealing rule produces the exact block layout an uninterrupted run
  // would have.
  StartBlock();
  block_ += resume.partial_payload;
  record_count_ = static_cast<uint32_t>(resume.partial_records);
  id_total_ = resume.id_total;
}

BinaryFileSink::~BinaryFileSink() {
  // Abandoned without Finish(): stop the writer thread before the OutputFile
  // member (destroyed after writer_) discards the partial file.
  if (writer_ != nullptr) (void)writer_->Finish();
}

void BinaryFileSink::StartBlock() {
  block_ = writer_->GetBuffer();
  block_.append(binfmt::kBlockHeaderBytes, '\0');  // header slot, patched on seal
  record_count_ = 0;
}

void BinaryFileSink::SealBlock() {
  binfmt::BlockHeader header;
  header.payload_bytes = static_cast<uint32_t>(PayloadFill());
  header.record_count = record_count_;
  header.crc32 = binfmt::Crc32(block_.data() + binfmt::kBlockHeaderBytes,
                               PayloadFill());
  binfmt::PatchBlockHeader(&block_, 0, header);
  CSJ_METRIC_COUNT("sink.binary_blocks", 1);
  writer_->Submit(std::move(block_));
  StartBlock();
}

void BinaryFileSink::DoLink(PointId a, PointId b) {
  PollWriter();
  if (!error().ok()) return;
  const size_t record = binfmt::EncodedLinkBytes(a, b);
  if (binfmt::WouldSealBlock(PayloadFill(), record,
                             options_.block_payload_bytes)) {
    SealBlock();
  }
  binfmt::AppendLinkRecord(&block_, a, b);
  ++record_count_;
  id_total_ += 2;
}

void BinaryFileSink::DoGroup(std::span<const PointId> members) {
  PollWriter();
  if (!error().ok()) return;
  const size_t record = binfmt::EncodedGroupBytes(members);
  if (binfmt::WouldSealBlock(PayloadFill(), record,
                             options_.block_payload_bytes)) {
    SealBlock();
  }
  binfmt::AppendGroupRecord(&block_, members);
  ++record_count_;
  id_total_ += members.size();
}

Status BinaryFileSink::Finish() {
  CSJ_CHECK(!finished_) << "BinaryFileSink::Finish called twice: " << path_;
  finished_ = true;
  if (writer_ != nullptr) {
    PollWriter();
    if (error().ok()) {
      if (record_count_ > 0) SealBlock();
      std::string trailer = std::move(block_);
      trailer.clear();
      binfmt::AppendBlockHeader(&trailer, binfmt::BlockHeader{});  // EOF marker
      binfmt::Footer footer;
      footer.num_links = num_links();
      footer.num_groups = num_groups();
      footer.id_total = id_total_;
      binfmt::AppendFooter(&trailer, footer);
      writer_->Submit(std::move(trailer));
    }
    SetError(writer_->Finish());
  }
  if (!error().ok()) {
    // The OutputFile cleaned up (or its destructor will); no partial file.
    return error();
  }
  const Status close_status = file_.Close();
  SetError(close_status);
  return close_status;
}

Status BinaryFileSink::Checkpoint(checkpoint::SinkState* state) {
  CSJ_CHECK(options_.checkpointable)
      << "Checkpoint on a non-checkpointable binary sink: " << path_;
  PollWriter();
  if (!error().ok()) return error();
  // Wait for every sealed block to reach the OutputFile, then make the
  // landed prefix durable: bytes_written() is now exactly the file header
  // plus all sealed blocks — a clean resume boundary.
  SetError(writer_->Drain());
  if (!error().ok()) return error();
  SetError(file_.Sync());
  if (!error().ok()) return error();
  ExportAccounting(state);
  state->format = static_cast<uint8_t>(OutputFormat::kBinary);
  state->committed_bytes = file_.bytes_written();
  state->id_total = id_total_;
  state->partial_records = record_count_;
  state->partial_payload.assign(block_.data() + binfmt::kBlockHeaderBytes,
                                PayloadFill());
  CSJ_DCHECK(state->model_fill == state->partial_payload.size());
  return Status::OK();
}

Result<std::unique_ptr<JoinSink>> MakeSink(const OutputSpec& spec) {
  if (spec.id_width < 1) {
    return Status::InvalidArgument("OutputSpec.id_width must be >= 1");
  }
  switch (spec.format) {
    case OutputFormat::kNone: {
      if (spec.count_model == OutputFormat::kNone) {
        return Status::InvalidArgument(
            "OutputSpec.count_model must be text or binary");
      }
      return std::unique_ptr<JoinSink>(
          std::make_unique<CountingSink>(spec.id_width, spec.count_model));
    }
    case OutputFormat::kText: {
      if (spec.path.empty() && spec.fd < 0) {
        return Status::InvalidArgument(
            "text output needs OutputSpec.path or OutputSpec.fd");
      }
      if (spec.checkpointable && spec.cap_bytes != 0) {
        return Status::InvalidArgument(
            "checkpointable output cannot be size-capped");
      }
      if (spec.fd >= 0 && (spec.checkpointable || spec.cap_bytes != 0)) {
        return Status::InvalidArgument(
            "a streamed (fd) sink cannot be checkpointed or size-capped");
      }
      FileSink::Options options;
      options.atomic = spec.atomic;
      options.sync_on_close = spec.sync_on_close;
      options.cap_bytes = spec.cap_bytes;
      options.checkpointable = spec.checkpointable;
      options.fd = spec.fd;
      auto sink =
          std::make_unique<FileSink>(spec.id_width, spec.path, options);
      if (!sink->open_status().ok()) return sink->open_status();
      return std::unique_ptr<JoinSink>(std::move(sink));
    }
    case OutputFormat::kBinary: {
      if (spec.path.empty() && spec.fd < 0) {
        return Status::InvalidArgument(
            "binary output needs OutputSpec.path or OutputSpec.fd");
      }
      if (spec.cap_bytes != 0) {
        return Status::InvalidArgument(
            "cap_bytes is only supported for text output");
      }
      if (spec.fd >= 0 && spec.checkpointable) {
        return Status::InvalidArgument(
            "a streamed (fd) sink cannot be checkpointed");
      }
      BinaryFileSink::Options options;
      options.atomic = spec.atomic;
      options.sync_on_close = spec.sync_on_close;
      options.checkpointable = spec.checkpointable;
      options.budget = spec.budget;
      options.fd = spec.fd;
      auto sink =
          std::make_unique<BinaryFileSink>(spec.id_width, spec.path, options);
      if (!sink->open_status().ok()) return sink->open_status();
      return std::unique_ptr<JoinSink>(std::move(sink));
    }
  }
  return Status::InvalidArgument("unknown output format");
}

std::unique_ptr<JoinSink> MakeSinkOrDie(const OutputSpec& spec) {
  auto sink = MakeSink(spec);
  CSJ_CHECK(sink.ok()) << sink.status().ToString();
  return std::move(sink).value();
}

Result<std::unique_ptr<JoinSink>> ResumeSink(
    const OutputSpec& spec, const checkpoint::SinkState& state) {
  if (spec.id_width < 1) {
    return Status::InvalidArgument("OutputSpec.id_width must be >= 1");
  }
  if (state.id_width != static_cast<uint32_t>(spec.id_width)) {
    return Status::FailedPrecondition(
        StrFormat("cannot resume: checkpoint used id width %u but the run is "
                  "configured for %d",
                  state.id_width, spec.id_width));
  }
  const auto state_format = static_cast<OutputFormat>(state.format);
  if (state_format != spec.format) {
    return Status::FailedPrecondition(
        StrFormat("cannot resume: checkpoint was written by a %s sink but "
                  "the run is configured for %s output",
                  OutputFormatName(state_format),
                  OutputFormatName(spec.format)));
  }
  switch (spec.format) {
    case OutputFormat::kNone: {
      auto sink =
          std::make_unique<CountingSink>(spec.id_width, spec.count_model);
      sink->RestoreAccounting(state);
      return std::unique_ptr<JoinSink>(std::move(sink));
    }
    case OutputFormat::kText: {
      if (!spec.checkpointable) {
        return Status::InvalidArgument(
            "resuming requires a checkpointable OutputSpec");
      }
      FileSink::Options options;
      options.sync_on_close = spec.sync_on_close;
      options.checkpointable = true;
      auto sink = std::make_unique<FileSink>(spec.id_width, spec.path,
                                             options, state);
      if (!sink->open_status().ok()) return sink->open_status();
      return std::unique_ptr<JoinSink>(std::move(sink));
    }
    case OutputFormat::kBinary: {
      if (!spec.checkpointable) {
        return Status::InvalidArgument(
            "resuming requires a checkpointable OutputSpec");
      }
      BinaryFileSink::Options options;
      options.sync_on_close = spec.sync_on_close;
      options.checkpointable = true;
      options.budget = spec.budget;
      auto sink = std::make_unique<BinaryFileSink>(spec.id_width, spec.path,
                                                   options, state);
      if (!sink->open_status().ok()) return sink->open_status();
      return std::unique_ptr<JoinSink>(std::move(sink));
    }
  }
  return Status::InvalidArgument("unknown output format");
}

}  // namespace csj

#ifndef CSJ_CORE_PARALLEL_JOIN_H_
#define CSJ_CORE_PARALLEL_JOIN_H_

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/similarity_join.h"
#include "util/failpoint.h"
#include "util/metrics.h"

/// \file
/// Multi-threaded compact similarity join — an engineering extension beyond
/// the (single-threaded) paper, for the multi-core machines a modern
/// deployment runs on.
///
/// Strategy: the top of the Figure-3 recursion decomposes naturally into
/// independent units — single-subtree self-joins and qualifying subtree
/// pairs. We expand the root into at least threads x tasks_per_thread such
/// units (splitting the largest-looking tasks first), then let workers pull
/// them from a shared cursor. Each worker owns a private JoinDriver, group
/// window and MemorySink (no shared mutable state); afterwards the per-
/// worker outputs are replayed into the caller's sink in worker order.
///
/// Guarantees: the output is *lossless* exactly like the sequential CSJ —
/// every task covers a disjoint slice of the pair space and the union of
/// slices is complete — but group composition can differ from the
/// sequential run (windows are per-worker), which is fine: the compact
/// representation was never unique (paper, Figure 2).
///
/// Caveats: requires a thread-safe-for-reads tree (all in-memory trees
/// qualify, and so does PagedTree — its BufferPool block cache is
/// concurrency-safe). options.measure_write_time is
/// ignored in parallel mode. Node-access tracking is not supported: a
/// non-null options.tracker is rejected with an InvalidArgument status in
/// `JoinStats::status` (trackers are not thread safe, and silently ignoring
/// one would misreport the access counts the caller asked for).
///
/// Failure handling: a worker that throws (or whose driver reports a non-OK
/// status) no longer terminates the process. The first failure is captured
/// into an error slot and raises a cancellation flag that makes the other
/// workers unwind at their next node visit; the join then returns a
/// JoinStats whose `status` carries that first error and skips the replay
/// (partial worker output is discarded, the caller's sink stays untouched).
/// Errors from the caller's sink during the replay likewise abort the replay
/// and surface through `status`. Failpoint `parallel_join.worker` injects a
/// worker exception for testing this path.

namespace csj {

/// Parallel-execution knobs.
struct ParallelJoinOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Task-queue granularity: aim for threads * tasks_per_thread tasks.
  int tasks_per_thread = 16;
};

namespace internal {

/// Expands the root into at least `target` independent tasks. A task whose
/// subtree already satisfies the early-stop bound is never split further
/// (splitting it would only lose grouping opportunities).
template <SpatialIndex Tree>
std::vector<typename JoinDriver<Tree, Tree>::Task> BuildTaskList(
    const Tree& tree, double eps, size_t target,
    const ExecContext* exec = nullptr) {
  using Task = typename JoinDriver<Tree, Tree>::Task;
  std::vector<Task> tasks;
  if (tree.Root() == kInvalidNode || tree.size() < 2) return tasks;
  tasks.push_back(Task{tree.Root(), kInvalidNode});

  // Breadth-style expansion: repeatedly split splittable tasks until the
  // target count is reached or nothing can be split.
  size_t scan = 0;
  while (tasks.size() < target && scan < tasks.size()) {
    const Task task = tasks[scan];
    const bool self = task.second == kInvalidNode;
    const bool splittable =
        self
            ? !tree.IsLeaf(task.first) && tree.MaxDiameter(task.first) > eps
            : !tree.IsLeaf(task.first) && !tree.IsLeaf(task.second) &&
                  tree.MaxDiameter(task.first, task.second) > eps;
    if (!splittable) {
      ++scan;
      continue;
    }
    // Replace the task by its children tasks.
    tasks[scan] = tasks.back();
    tasks.pop_back();
    if (self) {
      const auto children = TreeChildren(tree, task.first, exec);
      for (size_t i = 0; i < children.size(); ++i) {
        tasks.push_back(Task{children[i], kInvalidNode});
        for (size_t j = i + 1; j < children.size(); ++j) {
          if (tree.MinDistance(children[i], children[j]) <= eps) {
            tasks.push_back(Task{children[i], children[j]});
          }
        }
      }
    } else {
      const auto c1 = TreeChildren(tree, task.first, exec);
      const auto c2 = TreeChildren(tree, task.second, exec);
      for (NodeId a : c1) {
        for (NodeId b : c2) {
          if (tree.MinDistance(a, b) <= eps) tasks.push_back(Task{a, b});
        }
      }
    }
    // Do not advance `scan`: the swapped-in task may itself be splittable.
  }
  return tasks;
}

}  // namespace internal

/// Parallel CSJ(g) self-join. Lossless like the sequential version; group
/// composition may differ. Returns aggregated statistics (elapsed = wall
/// time of the parallel region; work counters summed over workers).
template <SpatialIndex Tree>
JoinStats ParallelCompactSimilarityJoin(
    const Tree& tree, const JoinOptions& options, JoinSink* sink,
    const ParallelJoinOptions& parallel = ParallelJoinOptions()) {
  static_assert(Tree::kThreadSafeReads,
                "this tree type is not safe for concurrent reads; load it "
                "into an in-memory tree (or a PagedTree) first");
  CSJ_CHECK(sink != nullptr);
  if (options.tracker != nullptr) {
    // Trackers are single-threaded; aborting the process here (the old
    // behavior) turned a recoverable configuration mistake into a crash.
    JoinStats rejected;
    rejected.algorithm = JoinAlgorithm::kCSJ;
    rejected.epsilon = options.epsilon;
    rejected.window_size = options.window_size;
    rejected.status = Status::InvalidArgument(
        "node-access tracking (options.tracker) is not supported in "
        "parallel mode; run the sequential join instead");
    return rejected;
  }
  if (!sink->error().ok()) {
    // The sink is already dead (e.g. its output file never opened): don't
    // burn a parallel traversal producing output nobody can accept.
    JoinStats dead;
    dead.algorithm = JoinAlgorithm::kCSJ;
    dead.epsilon = options.epsilon;
    dead.window_size = options.window_size;
    dead.status = sink->error();
    return dead;
  }
  const int threads =
      parallel.threads > 0
          ? parallel.threads
          : std::max(1u, std::thread::hardware_concurrency());

  using Driver = internal::JoinDriver<Tree, Tree>;
  WallTimer timer;
  const auto tasks = internal::BuildTaskList(
      tree, options.epsilon,
      static_cast<size_t>(threads) *
          static_cast<size_t>(std::max(parallel.tasks_per_thread, 1)),
      options.exec);

  CSJ_METRIC_COUNT("parallel.joins", 1);
  CSJ_METRIC_COUNT("parallel.workers", static_cast<uint64_t>(threads));
  CSJ_METRIC_COUNT("parallel.tasks_total", tasks.size());

  std::atomic<size_t> cursor{0};
  std::atomic<bool> cancel{false};
  std::mutex error_mu;
  Status first_error;  // guarded by error_mu until the pool is joined
  auto record_error = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.ok() && !status.ok()) {
      first_error = status;
      cancel.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::unique_ptr<MemorySink>> worker_sinks;
  std::vector<JoinStats> worker_stats(static_cast<size_t>(threads));
  worker_sinks.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    worker_sinks.push_back(std::make_unique<MemorySink>(sink->id_width()));
  }

  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        // A throwing worker must not std::terminate the process: capture
        // the first failure and cancel the siblings instead.
        CSJ_METRIC_SCOPED_TIMER("parallel.worker_drain_ns");
        try {
          if (CSJ_FAILPOINT("parallel_join.worker")) {
            throw std::runtime_error("injected worker fault");
          }
          Driver driver(tree, tree, /*self_join=*/true, JoinAlgorithm::kCSJ,
                        options, worker_sinks[static_cast<size_t>(t)].get());
          driver.SetCancelFlag(&cancel);
          worker_stats[static_cast<size_t>(t)] =
              driver.RunTasks(tasks, &cursor);
          record_error(worker_stats[static_cast<size_t>(t)].status);
        } catch (const std::exception& e) {
          record_error(Status::Internal(
              StrFormat("parallel join worker %d failed: %s", t, e.what())));
        } catch (...) {
          record_error(Status::Internal(
              StrFormat("parallel join worker %d failed with a non-standard "
                        "exception", t)));
        }
      });
    }
    for (auto& thread : pool) thread.join();
  }

  JoinStats total;
  total.algorithm = JoinAlgorithm::kCSJ;
  total.epsilon = options.epsilon;
  total.window_size = options.window_size;
  // Work counters describe the traversal, which has already happened —
  // accumulate them over *all* workers before touching the caller's sink.
  // (They used to be summed inside the replay loop below, so a sink dying
  // mid-replay silently dropped the work of every not-yet-replayed worker.)
  for (const JoinStats& ws : worker_stats) {
    total.distance_computations += ws.distance_computations;
    total.kernel_candidates += ws.kernel_candidates;
    total.kernel_pruned += ws.kernel_pruned;
    total.kernel_hits += ws.kernel_hits;
    total.early_stops += ws.early_stops;
    total.merges += ws.merges;
    total.merge_attempts += ws.merge_attempts;
  }
  if (!first_error.ok()) {
    // A failed worker means the task coverage is incomplete; replaying the
    // survivors would hand the caller a silently truncated result.
    CSJ_METRIC_COUNT("parallel.failed_joins", 1);
    total.status = first_error;
    total.elapsed_seconds = timer.ElapsedSeconds();
    return total;
  }

  // Replay worker outputs into the caller's sink, serially. A sink error
  // (e.g. the output disk filling up mid-replay) aborts the replay. Implied
  // links are counted only after the sink confirms it accepted the write —
  // the implied count mirrors the sink's own output counters, not what we
  // attempted to hand it.
  {
    CSJ_METRIC_SCOPED_TIMER("parallel.replay_ns");
    for (int t = 0; t < threads && sink->error().ok(); ++t) {
      const MemorySink& worker = *worker_sinks[static_cast<size_t>(t)];
      for (const auto& [a, b] : worker.links()) {
        if (!sink->error().ok()) break;
        sink->Link(a, b);
        if (sink->error().ok()) total.AddImpliedLink();
      }
      for (const auto& group : worker.groups()) {
        if (!sink->error().ok()) break;
        sink->Group(group);
        if (sink->error().ok()) total.AddImpliedGroup(group.size());
      }
    }
  }
  total.status = sink->error();
  total.links = sink->num_links();
  total.groups = sink->num_groups();
  total.group_member_total = sink->group_member_total();
  total.output_bytes = sink->bytes();
  total.elapsed_seconds = timer.ElapsedSeconds();
  return total;
}

}  // namespace csj

#endif  // CSJ_CORE_PARALLEL_JOIN_H_

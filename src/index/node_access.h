#ifndef CSJ_INDEX_NODE_ACCESS_H_
#define CSJ_INDEX_NODE_ACCESS_H_

#include <cstdint>

#include "storage/buffer_pool.h"

/// \file
/// Node-access accounting shared by all tree families.
///
/// The join drivers call Touch() once per node they visit. The tracker maps
/// node ids to simulated disk pages (several nodes per page, as a packed
/// on-disk layout would) and feeds the page stream through the LRU
/// BufferPoolSim, reproducing the paper's Experiment 3 measurement that page
/// and cache access counts are essentially identical across SSJ / N-CSJ /
/// CSJ(g).

namespace csj {

/// Per-join node/page access statistics.
struct NodeAccessStats {
  uint64_t node_accesses = 0;
  BufferPoolStats pages;
};

/// Counts node visits and simulates their page traffic.
class NodeAccessTracker {
 public:
  /// \param nodes_per_page how many tree nodes share one simulated page.
  /// \param cache_pages LRU pool capacity in pages.
  NodeAccessTracker(int nodes_per_page, size_t cache_pages)
      : nodes_per_page_(nodes_per_page > 0 ? nodes_per_page : 1),
        pool_(cache_pages) {}

  /// Records a visit to tree node `node_id`.
  void Touch(uint32_t node_id) {
    ++node_accesses_;
    pool_.Access(node_id / static_cast<uint32_t>(nodes_per_page_));
  }

  /// Clears counters and cache contents.
  void Reset() {
    node_accesses_ = 0;
    pool_.Reset();
  }

  NodeAccessStats stats() const {
    NodeAccessStats s;
    s.node_accesses = node_accesses_;
    s.pages = pool_.stats();
    return s;
  }

 private:
  int nodes_per_page_;
  uint64_t node_accesses_ = 0;
  BufferPoolSim pool_;
};

}  // namespace csj

#endif  // CSJ_INDEX_NODE_ACCESS_H_

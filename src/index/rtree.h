#ifndef CSJ_INDEX_RTREE_H_
#define CSJ_INDEX_RTREE_H_

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "index/box_tree.h"

/// \file
/// Guttman's R-tree (SIGMOD 1984) with linear and quadratic node splitting.
///
/// One of the three index substrates the paper's Experiment 4 runs the join
/// algorithms on. Insertion follows the original ChooseLeaf
/// (least-enlargement) descent; splits implement both the linear-cost and
/// quadratic-cost algorithms from the paper, selectable via RTreeOptions.

namespace csj {

/// Node-splitting policy for the Guttman R-tree.
enum class RTreeSplit {
  kLinear,     ///< linear-cost PickSeeds/assignment
  kQuadratic,  ///< quadratic-cost PickSeeds + PickNext
};

/// Construction parameters.
struct RTreeOptions {
  size_t max_fanout = 64;  ///< M: max children/entries per node
  size_t min_fanout = 26;  ///< m: min fill (~40% of M), m <= M/2
  RTreeSplit split = RTreeSplit::kQuadratic;
};

/// Guttman R-tree over D-dimensional points.
template <int D>
class RTree : public BoxTreeBase<D, RTree<D>> {
 public:
  using Base = BoxTreeBase<D, RTree<D>>;
  using typename Base::BoxT;
  using typename Base::EntryT;
  using typename Base::Node;
  using typename Base::PointT;

  explicit RTree(const RTreeOptions& options = RTreeOptions())
      : Base(options.max_fanout, options.min_fanout), split_(options.split) {}

  /// Inserts one point. Duplicate (id, point) pairs are allowed; the tree is
  /// a multiset, like the paper's workloads (TIGER data has duplicate
  /// endpoints).
  void Insert(PointId id, const PointT& point) {
    if (this->root_ == kInvalidNode) {
      this->root_ = this->AllocNode(/*is_leaf=*/true, /*level=*/0);
    }
    const NodeId leaf = ChooseLeaf(point);
    Node& nd = this->node(leaf);
    nd.entries.push_back(EntryT{id, point});
    this->ExtendMbrPath(leaf, BoxT(point));
    ++this->size_;
    if (nd.entries.size() > this->max_fanout_) SplitAndAdjust(leaf);
  }

  RTreeSplit split_policy() const { return split_; }

 private:
  /// Guttman ChooseLeaf: descend picking the child needing least volume
  /// enlargement (ties: smaller volume).
  NodeId ChooseLeaf(const PointT& point) const {
    const BoxT pbox(point);
    NodeId n = this->root_;
    while (!this->node(n).is_leaf) {
      const Node& nd = this->node(n);
      NodeId best = kInvalidNode;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (NodeId child : nd.children) {
        const BoxT& cb = this->node(child).mbr;
        const double enlargement = cb.EnlargementTo(pbox);
        const double volume = cb.Volume();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && volume < best_volume)) {
          best = child;
          best_enlargement = enlargement;
          best_volume = volume;
        }
      }
      n = best;
    }
    return n;
  }

  /// Splits `n`, attaches the new sibling, and propagates splits upward
  /// (Guttman AdjustTree).
  void SplitAndAdjust(NodeId n) {
    while (true) {
      const NodeId sibling = SplitNode(n);
      const NodeId parent = this->node(n).parent;
      if (parent == kInvalidNode) {
        this->GrowRoot(n, sibling);
        return;
      }
      this->RecomputeMbrPath(parent);
      this->AttachChild(parent, sibling);
      if (this->node(parent).children.size() <= this->max_fanout_) return;
      n = parent;
    }
  }

  /// Splits an overflowing node in place; returns the new sibling id.
  NodeId SplitNode(NodeId n) {
    Node& nd = this->node(n);
    const NodeId sibling = this->AllocNode(nd.is_leaf, nd.level);
    // Re-fetch: AllocNode may have grown the arena (deque keeps references
    // valid, but stay defensive and uniform with the R* code).
    Node& left = this->node(n);
    Node& right = this->node(sibling);

    if (left.is_leaf) {
      std::vector<EntryT> items = std::move(left.entries);
      left.entries.clear();
      auto get_box = [](const EntryT& e) { return BoxT(e.point); };
      auto [to_left, to_right] = Partition(items, get_box);
      left.entries = std::move(to_left);
      right.entries = std::move(to_right);
    } else {
      std::vector<NodeId> items = std::move(left.children);
      left.children.clear();
      auto get_box = [this](NodeId c) { return this->node(c).mbr; };
      auto [to_left, to_right] = Partition(items, get_box);
      left.children = std::move(to_left);
      right.children = std::move(to_right);
      for (NodeId c : right.children) this->node(c).parent = sibling;
      for (NodeId c : left.children) this->node(c).parent = n;
    }
    this->RecomputeMbr(n);
    this->RecomputeMbr(sibling);
    return sibling;
  }

  /// Splits `items` into two groups per the configured policy.
  template <typename Item, typename GetBox>
  std::pair<std::vector<Item>, std::vector<Item>> Partition(
      std::vector<Item>& items, GetBox get_box) {
    const size_t min_fill = this->min_fanout_;
    size_t seed_a = 0, seed_b = 1;
    if (split_ == RTreeSplit::kLinear) {
      PickSeedsLinear(items, get_box, &seed_a, &seed_b);
    } else {
      PickSeedsQuadratic(items, get_box, &seed_a, &seed_b);
    }

    std::vector<Item> group_a, group_b;
    BoxT box_a = get_box(items[seed_a]);
    BoxT box_b = get_box(items[seed_b]);
    group_a.push_back(std::move(items[seed_a]));
    group_b.push_back(std::move(items[seed_b]));

    std::vector<Item> rest;
    rest.reserve(items.size() - 2);
    for (size_t i = 0; i < items.size(); ++i) {
      if (i != seed_a && i != seed_b) rest.push_back(std::move(items[i]));
    }

    if (split_ == RTreeSplit::kQuadratic) {
      AssignQuadratic(rest, get_box, min_fill, &group_a, &box_a, &group_b,
                      &box_b);
    } else {
      AssignLinear(rest, get_box, min_fill, &group_a, &box_a, &group_b, &box_b);
    }
    return {std::move(group_a), std::move(group_b)};
  }

  /// Linear PickSeeds: the pair with greatest normalized separation along any
  /// dimension.
  template <typename Item, typename GetBox>
  static void PickSeedsLinear(const std::vector<Item>& items, GetBox get_box,
                              size_t* seed_a, size_t* seed_b) {
    double best_separation = -1.0;
    *seed_a = 0;
    *seed_b = 1;
    for (int dim = 0; dim < D; ++dim) {
      size_t highest_lo = 0, lowest_hi = 0;
      double min_lo = std::numeric_limits<double>::infinity();
      double max_hi = -std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < items.size(); ++i) {
        const BoxT box = get_box(items[i]);
        if (box.lo[dim] > get_box(items[highest_lo]).lo[dim]) highest_lo = i;
        if (box.hi[dim] < get_box(items[lowest_hi]).hi[dim]) lowest_hi = i;
        min_lo = std::min(min_lo, box.lo[dim]);
        max_hi = std::max(max_hi, box.hi[dim]);
      }
      const double width = max_hi - min_lo;
      if (width <= 0.0 || highest_lo == lowest_hi) continue;
      const double separation =
          (get_box(items[highest_lo]).lo[dim] -
           get_box(items[lowest_hi]).hi[dim]) /
          width;
      if (separation > best_separation) {
        best_separation = separation;
        *seed_a = lowest_hi;
        *seed_b = highest_lo;
      }
    }
    if (*seed_a == *seed_b) *seed_b = (*seed_a + 1) % items.size();
  }

  /// Quadratic PickSeeds: the pair wasting the most dead volume.
  template <typename Item, typename GetBox>
  static void PickSeedsQuadratic(const std::vector<Item>& items, GetBox get_box,
                                 size_t* seed_a, size_t* seed_b) {
    double worst_waste = -std::numeric_limits<double>::infinity();
    *seed_a = 0;
    *seed_b = 1;
    for (size_t i = 0; i + 1 < items.size(); ++i) {
      const BoxT box_i = get_box(items[i]);
      for (size_t j = i + 1; j < items.size(); ++j) {
        const BoxT box_j = get_box(items[j]);
        const double waste =
            BoxT::Union(box_i, box_j).Volume() - box_i.Volume() - box_j.Volume();
        if (waste > worst_waste) {
          worst_waste = waste;
          *seed_a = i;
          *seed_b = j;
        }
      }
    }
  }

  /// Quadratic assignment: repeatedly pick the item with the strongest group
  /// preference (PickNext) and place it; force-assign when one group must
  /// take all remaining items to reach min fill.
  template <typename Item, typename GetBox>
  static void AssignQuadratic(std::vector<Item>& rest, GetBox get_box,
                              size_t min_fill, std::vector<Item>* group_a,
                              BoxT* box_a, std::vector<Item>* group_b,
                              BoxT* box_b) {
    std::vector<bool> placed(rest.size(), false);
    size_t remaining = rest.size();
    while (remaining > 0) {
      if (group_a->size() + remaining == min_fill) {
        for (size_t i = 0; i < rest.size(); ++i) {
          if (!placed[i]) {
            box_a->Extend(get_box(rest[i]));
            group_a->push_back(std::move(rest[i]));
          }
        }
        return;
      }
      if (group_b->size() + remaining == min_fill) {
        for (size_t i = 0; i < rest.size(); ++i) {
          if (!placed[i]) {
            box_b->Extend(get_box(rest[i]));
            group_b->push_back(std::move(rest[i]));
          }
        }
        return;
      }
      // PickNext: max |enlargement difference|.
      size_t pick = 0;
      double best_diff = -1.0;
      double pick_da = 0.0, pick_db = 0.0;
      for (size_t i = 0; i < rest.size(); ++i) {
        if (placed[i]) continue;
        const BoxT box = get_box(rest[i]);
        const double da = box_a->EnlargementTo(box);
        const double db = box_b->EnlargementTo(box);
        const double diff = std::fabs(da - db);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
          pick_da = da;
          pick_db = db;
        }
      }
      placed[pick] = true;
      --remaining;
      const BoxT box = get_box(rest[pick]);
      bool to_a;
      if (pick_da != pick_db) {
        to_a = pick_da < pick_db;
      } else if (box_a->Volume() != box_b->Volume()) {
        to_a = box_a->Volume() < box_b->Volume();
      } else {
        to_a = group_a->size() <= group_b->size();
      }
      if (to_a) {
        box_a->Extend(box);
        group_a->push_back(std::move(rest[pick]));
      } else {
        box_b->Extend(box);
        group_b->push_back(std::move(rest[pick]));
      }
    }
  }

  /// Linear assignment: single pass, each item to the group needing less
  /// enlargement, with min-fill forcing.
  template <typename Item, typename GetBox>
  static void AssignLinear(std::vector<Item>& rest, GetBox get_box,
                           size_t min_fill, std::vector<Item>* group_a,
                           BoxT* box_a, std::vector<Item>* group_b,
                           BoxT* box_b) {
    for (size_t i = 0; i < rest.size(); ++i) {
      const size_t remaining = rest.size() - i;
      const BoxT box = get_box(rest[i]);
      bool to_a;
      if (group_a->size() + remaining == min_fill) {
        to_a = true;
      } else if (group_b->size() + remaining == min_fill) {
        to_a = false;
      } else {
        const double da = box_a->EnlargementTo(box);
        const double db = box_b->EnlargementTo(box);
        if (da != db) {
          to_a = da < db;
        } else if (box_a->Volume() != box_b->Volume()) {
          to_a = box_a->Volume() < box_b->Volume();
        } else {
          to_a = group_a->size() <= group_b->size();
        }
      }
      if (to_a) {
        box_a->Extend(box);
        group_a->push_back(std::move(rest[i]));
      } else {
        box_b->Extend(box);
        group_b->push_back(std::move(rest[i]));
      }
    }
  }

  RTreeSplit split_;
};

using RTree2 = RTree<2>;
using RTree3 = RTree<3>;

}  // namespace csj

#endif  // CSJ_INDEX_RTREE_H_

#ifndef CSJ_INDEX_MTREE_H_
#define CSJ_INDEX_MTREE_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "geom/ball.h"
#include "geom/point.h"
#include "index/spatial_index.h"
#include "util/check.h"
#include "util/random.h"

/// \file
/// M-tree (Ciaccia, Patella, Zezula, VLDB 1997): a metric access method
/// whose nodes are bounding balls (routing object + covering radius).
///
/// The third index substrate of the paper's Experiment 4. Unlike the R-tree
/// family it never looks at coordinates axis-wise — only at distances — so
/// it stands in for the "general metric space" case the paper claims its
/// algorithms extend to. Min/max node distances follow from the triangle
/// inequality on the bounding balls.

namespace csj {

/// How the two new routing objects are chosen when a node splits.
enum class MTreePromotion {
  kMinMaxRadius,  ///< exhaustive over pairs: minimize the larger radius
  kSampled,       ///< evaluate a random sample of pairs (cheaper for big M)
};

/// Construction parameters.
struct MTreeOptions {
  size_t max_fanout = 32;
  size_t min_fanout = 2;  ///< M-tree splits may be unbalanced; keep >= 2
  MTreePromotion promotion = MTreePromotion::kMinMaxRadius;
  int sampled_pairs = 64;     ///< pair candidates when promotion == kSampled
  uint64_t seed = 0x5eedULL;  ///< for sampled promotion
};

/// M-tree over D-dimensional points under the Euclidean metric.
template <int D>
class MTree {
 public:
  static constexpr int kDim = D;
  /// Concurrent const reads are safe (no mutable caches).
  static constexpr bool kThreadSafeReads = true;
  using PointT = Point<D>;
  using EntryT = Entry<D>;
  using BallT = Ball<D>;

  struct Node {
    /// Routing ball: center is this node's routing object; radius covers
    /// every data point in the subtree.
    PointT center{};
    double radius = 0.0;
    NodeId parent = kInvalidNode;
    int level = 0;
    bool is_leaf = true;
    std::vector<NodeId> children;
    std::vector<EntryT> entries;

    size_t fanout() const { return is_leaf ? entries.size() : children.size(); }
  };

  explicit MTree(const MTreeOptions& options = MTreeOptions())
      : options_(options), rng_(options.seed) {
    CSJ_CHECK(options.max_fanout >= 4);
    CSJ_CHECK(options.min_fanout >= 1 &&
              options.min_fanout <= options.max_fanout / 2);
  }

  // --- SpatialIndex concept -------------------------------------------------

  NodeId Root() const { return root_; }
  bool IsLeaf(NodeId n) const { return node(n).is_leaf; }

  std::span<const NodeId> Children(NodeId n) const {
    const Node& nd = node(n);
    CSJ_DCHECK(!nd.is_leaf);
    return nd.children;
  }

  std::span<const EntryT> Entries(NodeId n) const {
    const Node& nd = node(n);
    CSJ_DCHECK(nd.is_leaf);
    return nd.entries;
  }

  /// Ball bound: any two points in the subtree are within 2r.
  double MaxDiameter(NodeId n) const { return 2.0 * node(n).radius; }

  /// Bound on pairwise distances over the union of two subtrees:
  /// max(2ra, 2rb, d(ca,cb)+ra+rb).
  double MaxDiameter(NodeId a, NodeId b) const {
    const Node& na = node(a);
    const Node& nb = node(b);
    const double across =
        Distance(na.center, nb.center) + na.radius + nb.radius;
    return std::max({2.0 * na.radius, 2.0 * nb.radius, across});
  }

  double MinDistance(NodeId a, NodeId b) const {
    const Node& na = node(a);
    const Node& nb = node(b);
    return std::max(
        0.0, Distance(na.center, nb.center) - na.radius - nb.radius);
  }

  uint64_t size() const { return size_; }
  uint64_t NodeCount() const { return live_nodes_; }

  /// The node's bounding shape, for cross-tree (spatial join) bounds.
  using ShapeT = BallT;
  ShapeT Shape(NodeId n) const { return BallT(node(n).center, node(n).radius); }

  // --- Inspection -----------------------------------------------------------

  bool empty() const { return root_ == kInvalidNode; }
  BallT NodeBall(NodeId n) const { return BallT(node(n).center, node(n).radius); }
  int Height() const { return empty() ? 0 : node(root_).level + 1; }

  // --- Mutation ---------------------------------------------------------------

  /// Inserts one point (multiset semantics).
  void Insert(PointId id, const PointT& point) {
    if (root_ == kInvalidNode) {
      root_ = AllocNode(/*is_leaf=*/true, /*level=*/0);
      Node& r = node(root_);
      r.center = point;
      r.radius = 0.0;
      r.entries.push_back(EntryT{id, point});
      ++size_;
      return;
    }
    NodeId leaf = ChooseLeaf(point);
    node(leaf).entries.push_back(EntryT{id, point});
    ++size_;
    if (node(leaf).entries.size() > options_.max_fanout) Split(leaf);
  }

  /// Removes the entry (id, point); returns false if absent. Underfull
  /// nodes are dissolved and their content re-inserted (the Guttman
  /// CondenseTree strategy adapted to balls; covering radii are upper
  /// bounds, so removal never invalidates them).
  bool Remove(PointId id, const PointT& point) {
    const NodeId leaf = FindLeaf(root_ == kInvalidNode ? kInvalidNode : root_,
                                 id, point);
    if (leaf == kInvalidNode) return false;
    Node& nd = node(leaf);
    for (size_t i = 0; i < nd.entries.size(); ++i) {
      if (nd.entries[i].id == id && nd.entries[i].point == point) {
        nd.entries[i] = nd.entries.back();
        nd.entries.pop_back();
        break;
      }
    }
    --size_;

    // Condense: dissolve underfull non-root nodes upward, salvaging points.
    std::vector<EntryT> orphans;
    NodeId n = leaf;
    while (n != kInvalidNode) {
      Node& current = node(n);
      const NodeId parent = current.parent;
      if (parent != kInvalidNode && current.fanout() < options_.min_fanout) {
        Node& p = node(parent);
        for (size_t i = 0; i < p.children.size(); ++i) {
          if (p.children[i] == n) {
            p.children[i] = p.children.back();
            p.children.pop_back();
            break;
          }
        }
        CollectEntries(n, &orphans);
      }
      n = parent;
    }
    size_ -= orphans.size();
    for (const EntryT& e : orphans) Insert(e.id, e.point);

    // Shrink a single-child internal root; drop an empty root leaf.
    while (root_ != kInvalidNode && !node(root_).is_leaf &&
           node(root_).children.size() == 1) {
      const NodeId old_root = root_;
      root_ = node(old_root).children[0];
      node(root_).parent = kInvalidNode;
      --live_nodes_;
    }
    if (root_ != kInvalidNode && node(root_).is_leaf &&
        node(root_).entries.empty()) {
      root_ = kInvalidNode;
      --live_nodes_;
    }
    return true;
  }

  // --- Queries ---------------------------------------------------------------

  /// All entries within `radius` (closed) of `center`.
  std::vector<EntryT> RangeQuery(const PointT& center, double radius) const {
    std::vector<EntryT> out;
    if (empty()) return out;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const Node& nd = node(stack.back());
      stack.pop_back();
      if (Distance(center, nd.center) > radius + nd.radius) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          if (Distance(center, e.point) <= radius) out.push_back(e);
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return out;
  }

  /// The k entries nearest to `center`, closest first. Best-first search on
  /// ball min-distances: max(0, d(center, ball.center) - ball.radius).
  std::vector<EntryT> NearestNeighbors(const PointT& center, size_t k) const {
    std::vector<EntryT> out;
    if (empty() || k == 0) return out;
    struct Candidate {
      double dist;
      bool is_entry;
      NodeId node;
      EntryT entry;
      bool operator>(const Candidate& other) const {
        return dist > other.dist;
      }
    };
    std::priority_queue<Candidate, std::vector<Candidate>,
                        std::greater<Candidate>>
        frontier;
    const Node& root = node(root_);
    frontier.push(
        {std::max(0.0, Distance(center, root.center) - root.radius), false,
         root_, EntryT{}});
    while (!frontier.empty() && out.size() < k) {
      const Candidate top = frontier.top();
      frontier.pop();
      if (top.is_entry) {
        out.push_back(top.entry);
        continue;
      }
      const Node& nd = node(top.node);
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          frontier.push({Distance(center, e.point), true, kInvalidNode, e});
        }
      } else {
        for (NodeId child : nd.children) {
          const Node& c = node(child);
          frontier.push(
              {std::max(0.0, Distance(center, c.center) - c.radius), false,
               child, EntryT{}});
        }
      }
    }
    return out;
  }

  /// Number of entries within `radius` (closed) of `center`.
  uint64_t RangeCount(const PointT& center, double radius) const {
    if (empty()) return 0;
    uint64_t count = 0;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const Node& nd = node(stack.back());
      stack.pop_back();
      if (Distance(center, nd.center) > radius + nd.radius) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          count += Distance(center, e.point) <= radius;
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return count;
  }

  // --- Validation -------------------------------------------------------------

  /// Checks covering-radius and structural invariants; aborts on violation.
  void CheckInvariants() const {
    if (empty()) {
      CSJ_CHECK_EQ(size_, 0u);
      return;
    }
    uint64_t counted = 0;
    CheckSubtree(root_, kInvalidNode, &counted);
    CSJ_CHECK_EQ(counted, size_);
  }

 private:
  Node& node(NodeId id) {
    CSJ_DCHECK(id < arena_.size());
    return arena_[id];
  }
  const Node& node(NodeId id) const {
    CSJ_DCHECK(id < arena_.size());
    return arena_[id];
  }

  NodeId AllocNode(bool is_leaf, int level) {
    const NodeId id = static_cast<NodeId>(arena_.size());
    arena_.emplace_back();
    arena_.back().is_leaf = is_leaf;
    arena_.back().level = level;
    ++live_nodes_;
    return id;
  }

  /// Exact search for the leaf holding (id, point), pruning by the covering
  /// balls.
  NodeId FindLeaf(NodeId start, PointId id, const PointT& point) const {
    if (start == kInvalidNode) return kInvalidNode;
    std::vector<NodeId> stack = {start};
    while (!stack.empty()) {
      const NodeId nid = stack.back();
      stack.pop_back();
      const Node& nd = node(nid);
      if (Distance(nd.center, point) > nd.radius + 1e-12) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          if (e.id == id && e.point == point) return nid;
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return kInvalidNode;
  }

  /// Collects all entries below n (used when dissolving underfull nodes);
  /// nodes of the dissolved subtree are uncounted from live_nodes_.
  void CollectEntries(NodeId n, std::vector<EntryT>* out) {
    const Node& nd = node(n);
    --live_nodes_;
    if (nd.is_leaf) {
      out->insert(out->end(), nd.entries.begin(), nd.entries.end());
      return;
    }
    for (NodeId child : nd.children) CollectEntries(child, out);
  }

  /// Descends to a leaf: prefer children already covering the point (closest
  /// center); otherwise the child needing least radius enlargement. Radii on
  /// the path are stretched to keep the covering invariant.
  NodeId ChooseLeaf(const PointT& point) {
    NodeId n = root_;
    while (true) {
      Node& nd = node(n);
      nd.radius = std::max(nd.radius, Distance(nd.center, point));
      if (nd.is_leaf) return n;
      NodeId best = kInvalidNode;
      double best_cost = std::numeric_limits<double>::infinity();
      bool best_covers = false;
      for (NodeId child : nd.children) {
        const Node& c = node(child);
        const double dist = Distance(c.center, point);
        const bool covers = dist <= c.radius;
        const double cost = covers ? dist : dist - c.radius;
        if ((covers && !best_covers) ||
            (covers == best_covers && cost < best_cost)) {
          best = child;
          best_cost = cost;
          best_covers = covers;
        }
      }
      n = best;
    }
  }

  /// Splits an overflowing node; may cascade to the root.
  void Split(NodeId n) {
    while (true) {
      Node& nd = node(n);
      const NodeId sibling = AllocNode(nd.is_leaf, nd.level);
      Node& left = node(n);  // re-fetch (deque: stable, but stay uniform)
      Node& right = node(sibling);

      if (left.is_leaf) {
        std::vector<EntryT> items = std::move(left.entries);
        left.entries.clear();
        PartitionLeaf(items, &left, &right);
      } else {
        std::vector<NodeId> items = std::move(left.children);
        left.children.clear();
        PartitionInternal(items, n, sibling);
      }

      const NodeId parent = left.parent;
      if (parent == kInvalidNode) {
        const NodeId new_root = AllocNode(/*is_leaf=*/false, left.level + 1);
        Node& r = node(new_root);
        r.children = {n, sibling};
        node(n).parent = new_root;
        node(sibling).parent = new_root;
        r.center = node(n).center;
        r.radius = CoveringRadius(r);
        root_ = new_root;
        return;
      }
      Node& p = node(parent);
      p.children.push_back(sibling);
      node(sibling).parent = parent;
      // The parent's ball still covers every data point below it (the points
      // did not move), so its radius needs no update.
      if (p.children.size() <= options_.max_fanout) return;
      n = parent;
    }
  }

  /// Radius needed for `nd.center` to cover all of nd's children balls.
  double CoveringRadius(const Node& nd) const {
    double r = 0.0;
    for (NodeId child : nd.children) {
      const Node& c = node(child);
      r = std::max(r, Distance(nd.center, c.center) + c.radius);
    }
    return r;
  }

  /// Chooses two promotion centers among `points` per the configured policy:
  /// the pair minimizing the larger generalized-hyperplane covering radius.
  std::pair<size_t, size_t> Promote(const std::vector<PointT>& points) {
    const size_t n = points.size();
    CSJ_DCHECK(n >= 2);
    auto evaluate = [&](size_t a, size_t b) {
      double ra = 0.0, rb = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double da = Distance(points[i], points[a]);
        const double db = Distance(points[i], points[b]);
        if (da <= db) {
          ra = std::max(ra, da);
        } else {
          rb = std::max(rb, db);
        }
      }
      return std::max(ra, rb);
    };

    size_t best_a = 0, best_b = 1;
    double best = std::numeric_limits<double>::infinity();
    if (options_.promotion == MTreePromotion::kMinMaxRadius) {
      for (size_t a = 0; a + 1 < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
          const double score = evaluate(a, b);
          if (score < best) {
            best = score;
            best_a = a;
            best_b = b;
          }
        }
      }
    } else {
      for (int trial = 0; trial < options_.sampled_pairs; ++trial) {
        const size_t a = rng_.UniformInt(static_cast<uint64_t>(n));
        size_t b = rng_.UniformInt(static_cast<uint64_t>(n));
        while (b == a) b = rng_.UniformInt(static_cast<uint64_t>(n));
        const double score = evaluate(a, b);
        if (score < best) {
          best = score;
          best_a = a;
          best_b = b;
        }
      }
    }
    return {best_a, best_b};
  }

  /// Generalized-hyperplane partition of leaf entries, with min-fill repair.
  void PartitionLeaf(std::vector<EntryT>& items, Node* left, Node* right) {
    std::vector<PointT> points;
    points.reserve(items.size());
    for (const EntryT& e : items) points.push_back(e.point);
    auto [a, b] = Promote(points);

    left->center = points[a];
    right->center = points[b];
    left->entries.clear();
    right->entries.clear();

    struct Tagged {
      double da, db;
      size_t idx;
    };
    std::vector<Tagged> tags(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      tags[i] = {Distance(points[i], points[a]), Distance(points[i], points[b]),
                 i};
    }
    for (const Tagged& t : tags) {
      if (t.da <= t.db) {
        left->entries.push_back(items[t.idx]);
      } else {
        right->entries.push_back(items[t.idx]);
      }
    }
    RebalanceMinFill(&left->entries, &right->entries, left->center,
                     right->center);

    left->radius = 0.0;
    for (const EntryT& e : left->entries) {
      left->radius = std::max(left->radius, Distance(left->center, e.point));
    }
    right->radius = 0.0;
    for (const EntryT& e : right->entries) {
      right->radius = std::max(right->radius, Distance(right->center, e.point));
    }
  }

  /// Moves items from the fuller to the emptier side until min fill holds,
  /// choosing the members closest to the other center.
  void RebalanceMinFill(std::vector<EntryT>* a, std::vector<EntryT>* b,
                        const PointT& center_a, const PointT& center_b) {
    auto donate = [&](std::vector<EntryT>* from, std::vector<EntryT>* to,
                      const PointT& to_center) {
      while (to->size() < options_.min_fanout) {
        size_t pick = 0;
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < from->size(); ++i) {
          const double d = Distance((*from)[i].point, to_center);
          if (d < best) {
            best = d;
            pick = i;
          }
        }
        to->push_back((*from)[pick]);
        (*from)[pick] = from->back();
        from->pop_back();
      }
    };
    if (a->size() < options_.min_fanout) donate(b, a, center_a);
    if (b->size() < options_.min_fanout) donate(a, b, center_b);
  }

  /// Partition of an internal node's children between `left_id` and a fresh
  /// sibling, assigning each child ball to the closer promoted center.
  void PartitionInternal(std::vector<NodeId>& items, NodeId left_id,
                         NodeId right_id) {
    std::vector<PointT> centers;
    centers.reserve(items.size());
    for (NodeId c : items) centers.push_back(node(c).center);
    auto [a, b] = Promote(centers);

    Node& left = node(left_id);
    Node& right = node(right_id);
    left.center = centers[a];
    right.center = centers[b];
    left.children.clear();
    right.children.clear();

    for (size_t i = 0; i < items.size(); ++i) {
      const double da = Distance(centers[i], centers[a]);
      const double db = Distance(centers[i], centers[b]);
      if (da <= db) {
        left.children.push_back(items[i]);
      } else {
        right.children.push_back(items[i]);
      }
    }
    // Min-fill repair on children: move the child closest to the other side.
    auto donate = [&](std::vector<NodeId>* from, std::vector<NodeId>* to,
                      const PointT& to_center) {
      while (to->size() < options_.min_fanout) {
        size_t pick = 0;
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < from->size(); ++i) {
          const double d = Distance(node((*from)[i]).center, to_center);
          if (d < best) {
            best = d;
            pick = i;
          }
        }
        to->push_back((*from)[pick]);
        (*from)[pick] = from->back();
        from->pop_back();
      }
    };
    if (left.children.size() < options_.min_fanout) {
      donate(&right.children, &left.children, left.center);
    }
    if (right.children.size() < options_.min_fanout) {
      donate(&left.children, &right.children, right.center);
    }

    for (NodeId c : left.children) node(c).parent = left_id;
    for (NodeId c : right.children) node(c).parent = right_id;
    left.radius = CoveringRadius(left);
    right.radius = CoveringRadius(right);
  }

  void CheckSubtree(NodeId n, NodeId expected_parent, uint64_t* counted) const {
    const Node& nd = node(n);
    CSJ_CHECK_EQ(nd.parent, expected_parent);
    CSJ_CHECK_LE(nd.fanout(), options_.max_fanout);
    if (n != root_) {
      CSJ_CHECK_GE(nd.fanout(), options_.min_fanout);
    }
    // The invariant all query/join bounds rely on: every data point in the
    // subtree lies within `radius` of `center` (point covering).
    CheckPointCovering(n, nd.center, nd.radius);
    if (nd.is_leaf) {
      CSJ_CHECK_EQ(nd.level, 0);
      *counted += nd.entries.size();
      return;
    }
    for (NodeId child : nd.children) {
      const Node& c = node(child);
      CSJ_CHECK_EQ(c.level, nd.level - 1);
      CheckSubtree(child, n, counted);
    }
  }

  void CheckPointCovering(NodeId n, const PointT& center, double radius) const {
    const Node& nd = node(n);
    if (nd.is_leaf) {
      for (const EntryT& e : nd.entries) {
        CSJ_CHECK_LE(Distance(center, e.point), radius + 1e-9)
            << "data point escapes covering radius";
      }
      return;
    }
    for (NodeId child : nd.children) CheckPointCovering(child, center, radius);
  }

  MTreeOptions options_;
  Rng rng_;
  NodeId root_ = kInvalidNode;
  uint64_t size_ = 0;
  uint64_t live_nodes_ = 0;
  std::deque<Node> arena_;
};

using MTree2 = MTree<2>;
using MTree3 = MTree<3>;

}  // namespace csj

#endif  // CSJ_INDEX_MTREE_H_

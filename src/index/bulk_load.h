#ifndef CSJ_INDEX_BULK_LOAD_H_
#define CSJ_INDEX_BULK_LOAD_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/box.h"
#include "geom/hilbert.h"
#include "index/spatial_index.h"
#include "util/check.h"

/// \file
/// Bulk loading for the MBR trees: Sort-Tile-Recursive (STR, Leutenegger et
/// al.) and space-filling-curve packing (Hilbert in 2-D, Morton otherwise).
///
/// The paper's Discussion notes that when no index exists one must be built,
/// and cites bulk-loading work [22-24] as the practical answer; the large
/// Pacific-NW experiments are only tractable with packed trees. PackStr /
/// PackHilbert fill an *empty* RTree or RStarTree with a fully packed,
/// balanced structure that the join algorithms then traverse normally.

namespace csj {

/// Bulk-load options.
struct BulkLoadOptions {
  /// Fraction of max_fanout each packed node is filled to. Full packing (1.0)
  /// minimizes node count; slightly lower leaves room for later inserts.
  double fill_fraction = 1.0;
};

namespace bulk_internal {

/// Recursive STR tiling: reorders items so that consecutive chunks of
/// `capacity` form spatially coherent tiles.
template <typename Item, typename GetCoord, int D>
void StrRecurse(std::vector<Item>& items, size_t lo, size_t hi, int dim,
                size_t capacity, GetCoord get_coord) {
  const size_t n = hi - lo;
  if (n <= capacity) return;
  std::sort(items.begin() + lo, items.begin() + hi,
            [&](const Item& a, const Item& b) {
              return get_coord(a, dim) < get_coord(b, dim);
            });
  if (dim == D - 1) return;

  const double leaves = std::ceil(static_cast<double>(n) / capacity);
  const double dims_left = D - dim;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::pow(leaves, 1.0 / dims_left)));
  const size_t slab_size =
      (n + slabs - 1) / slabs;
  for (size_t start = lo; start < hi; start += slab_size) {
    const size_t end = std::min(start + slab_size, hi);
    StrRecurse<Item, GetCoord, D>(items, start, end, dim + 1, capacity,
                                  get_coord);
  }
}

}  // namespace bulk_internal

/// Fills the empty tree with `entries` using STR packing. The resulting tree
/// is balanced, has (near-)full nodes, and satisfies all invariants checked
/// by Tree::CheckInvariants().
template <typename Tree>
void PackStr(Tree* tree, std::vector<Entry<Tree::kDim>> entries,
             const BulkLoadOptions& options = BulkLoadOptions());

/// Fills the empty tree with `entries` sorted along a space-filling curve
/// (Hilbert for 2-D, Morton for other dimensionalities).
template <typename Tree>
void PackHilbert(Tree* tree, std::vector<Entry<Tree::kDim>> entries,
                 const BulkLoadOptions& options = BulkLoadOptions());

/// Grants bulk loaders access to the tree internals.
template <int D, typename Tree>
class BulkLoader {
 public:
  using EntryT = Entry<D>;
  using PointT = Point<D>;

  static void BuildFromOrderedEntries(Tree* tree, std::vector<EntryT>& entries,
                                      size_t leaf_capacity,
                                      size_t node_capacity, bool str_upper) {
    CSJ_CHECK(tree->root_ == kInvalidNode) << "bulk load requires empty tree";
    CSJ_CHECK(!entries.empty());

    // Build leaves from consecutive chunks.
    std::vector<NodeId> level_nodes;
    for (size_t start = 0; start < entries.size(); start += leaf_capacity) {
      const size_t end = std::min(start + leaf_capacity, entries.size());
      const NodeId leaf = tree->AllocNode(/*is_leaf=*/true, /*level=*/0);
      auto& nd = tree->arena_[leaf];
      nd.entries.assign(entries.begin() + start, entries.begin() + end);
      tree->RecomputeMbr(leaf);
      level_nodes.push_back(leaf);
    }

    // Pack upper levels until one node remains.
    int level = 1;
    while (level_nodes.size() > 1) {
      if (str_upper) {
        auto get_coord = [&](NodeId id, int dim) {
          return tree->arena_[id].mbr.Center()[dim];
        };
        bulk_internal::StrRecurse<NodeId, decltype(get_coord), D>(
            level_nodes, 0, level_nodes.size(), 0, node_capacity, get_coord);
      }
      std::vector<NodeId> next;
      for (size_t start = 0; start < level_nodes.size();
           start += node_capacity) {
        const size_t end = std::min(start + node_capacity, level_nodes.size());
        const NodeId parent = tree->AllocNode(/*is_leaf=*/false, level);
        auto& nd = tree->arena_[parent];
        nd.children.assign(level_nodes.begin() + start,
                           level_nodes.begin() + end);
        for (NodeId child : nd.children) tree->arena_[child].parent = parent;
        tree->RecomputeMbr(parent);
        next.push_back(parent);
      }
      level_nodes = std::move(next);
      ++level;
    }

    tree->root_ = level_nodes[0];
    tree->size_ = entries.size();
    FixupUnderfullTail(tree);
  }

  /// Packing can leave the last node of each level underfull; repair by
  /// stealing from its left sibling so CheckInvariants' min-fill holds.
  static void FixupUnderfullTail(Tree* tree) {
    // Walk every level; for any non-root node under min fill with a left
    // sibling, rebalance the two.
    std::vector<NodeId> stack = {tree->root_};
    while (!stack.empty()) {
      const NodeId nid = stack.back();
      stack.pop_back();
      auto& nd = tree->arena_[nid];
      if (nd.is_leaf) continue;
      for (size_t i = 0; i < nd.children.size(); ++i) {
        auto& child = tree->arena_[nd.children[i]];
        if (child.fanout() < tree->min_fanout_ && i > 0) {
          auto& left = tree->arena_[nd.children[i - 1]];
          const size_t deficit = tree->min_fanout_ - child.fanout();
          CSJ_CHECK_GE(left.fanout(), tree->min_fanout_ + deficit)
              << "cannot repair underfull packed node";
          if (child.is_leaf) {
            child.entries.insert(child.entries.begin(),
                                 left.entries.end() - deficit,
                                 left.entries.end());
            left.entries.resize(left.entries.size() - deficit);
          } else {
            for (size_t k = left.children.size() - deficit;
                 k < left.children.size(); ++k) {
              child.children.push_back(left.children[k]);
              tree->arena_[left.children[k]].parent = nd.children[i];
            }
            left.children.resize(left.children.size() - deficit);
          }
          tree->RecomputeMbr(nd.children[i - 1]);
          tree->RecomputeMbr(nd.children[i]);
        }
        stack.push_back(nd.children[i]);
      }
    }
  }
};

template <typename Tree>
void PackStr(Tree* tree, std::vector<Entry<Tree::kDim>> entries,
             const BulkLoadOptions& options) {
  constexpr int D = Tree::kDim;
  if (entries.empty()) return;
  // Capacity must allow the underfull-tail repair (>= 2m - 1 per node).
  const size_t capacity = std::max<size_t>(
      2 * tree->min_fanout(),
      static_cast<size_t>(options.fill_fraction *
                          static_cast<double>(tree->max_fanout())));
  auto get_coord = [](const Entry<D>& e, int dim) { return e.point[dim]; };
  bulk_internal::StrRecurse<Entry<D>, decltype(get_coord), D>(
      entries, 0, entries.size(), 0, capacity, get_coord);
  BulkLoader<D, Tree>::BuildFromOrderedEntries(tree, entries, capacity,
                                               capacity, /*str_upper=*/true);
}

template <typename Tree>
void PackHilbert(Tree* tree, std::vector<Entry<Tree::kDim>> entries,
                 const BulkLoadOptions& options) {
  constexpr int D = Tree::kDim;
  if (entries.empty()) return;
  const size_t capacity = std::max<size_t>(
      2 * tree->min_fanout(),
      static_cast<size_t>(options.fill_fraction *
                          static_cast<double>(tree->max_fanout())));

  // Quantize coordinates to a grid and sort by curve index.
  Box<D> bounds;
  for (const auto& e : entries) bounds.Extend(e.point);
  constexpr int kOrder = 16;  // 2^16 grid per axis
  const double side = static_cast<double>((1u << kOrder) - 1);
  auto quantize = [&](const Entry<D>& e, int dim) -> uint32_t {
    const double extent = bounds.Extent(dim);
    if (extent <= 0.0) return 0;
    const double t = (e.point[dim] - bounds.lo[dim]) / extent;
    return static_cast<uint32_t>(t * side);
  };

  std::vector<std::pair<uint64_t, size_t>> keyed(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    uint64_t key;
    if constexpr (D == 2) {
      key = HilbertIndex2D(kOrder, quantize(entries[i], 0),
                           quantize(entries[i], 1));
    } else {
      uint32_t coords[3] = {0, 0, 0};
      const int dims = D < 3 ? D : 3;
      const int bits = 63 / dims < kOrder ? 63 / dims : kOrder;
      for (int d = 0; d < dims; ++d) {
        coords[d] = quantize(entries[i], d) >> (kOrder - bits);
      }
      key = MortonIndex(coords, dims, bits);
    }
    keyed[i] = {key, i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<Entry<D>> ordered(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) ordered[i] = entries[keyed[i].second];

  BulkLoader<D, Tree>::BuildFromOrderedEntries(tree, ordered, capacity,
                                               capacity, /*str_upper=*/false);
}

}  // namespace csj

#endif  // CSJ_INDEX_BULK_LOAD_H_

#ifndef CSJ_INDEX_PAGED_TREE_H_
#define CSJ_INDEX_PAGED_TREE_H_

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "index/spatial_index.h"
#include "storage/buffer_pool.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/status.h"

/// \file
/// Disk-resident read path: a similarity join running straight off a tree
/// file through a real block cache.
///
/// The paper's experiments measure joins over disk-resident R*-trees. The
/// in-memory trees plus the NodeAccessTracker *simulate* that; PagedTree
/// makes it real: WritePagedTree lays an R-tree/R*-tree out into fixed-size
/// blocks in a file, and PagedTree::Open serves the SpatialIndex interface
/// by reading blocks on demand (pread) through a shared, thread-safe
/// BufferPool (storage/buffer_pool.h), counting actual reads. All join
/// algorithms run unmodified on it — Children() and Entries() return by
/// value so cached blocks may be evicted mid-traversal.
///
/// Concurrency: reads go through `pread` on a plain file descriptor (no
/// shared seek position) and the pool pins blocks while they are being
/// decoded, so **concurrent reads are safe** (`kThreadSafeReads = true`) —
/// one PagedTree may back all workers of a parallel join.
///
/// Error handling: an IO failure (short pread, injected fault) is reported
/// through the ExecContext the *operation* passes in — the read trips that
/// context and returns an empty node, so a governed join unwinds with a
/// clean Status at its next boundary instead of crashing. The context is a
/// per-call parameter (`Children(n, exec)` / `Entries(n, exec)`), never
/// tree state: one PagedTree is shared read-only by many concurrent
/// queries, each with its own deadline and cancel flag, and a tree-level
/// context would trip one query's governance into a neighbor's reads (or
/// dangle once that query finishes). Without a context the historical
/// behavior (CSJ_CHECK abort) is kept, since the SpatialIndex read API has
/// no error channel.
///
/// Directory information (per-node MBR + leaf flag) is kept in memory after
/// Open, mirroring how a real R-tree obtains child MBRs from the parent
/// node it has already read; only node payloads (entry coordinates, child
/// lists) go through the block cache.
///
/// File format "CSJPAGE1" (little-endian):
///   magic | u32 dim | u32 block_size | u64 entries | u32 node_count
///   | u32 root
///   node table: per node { u64 offset, u32 length, u8 is_leaf,
///                          2*D f64 mbr }
///   blob area: node payloads, each fully contained in as few blocks as
///   alignment allows; leaf payload = u32 count + count * (u32 id, D f64),
///   internal payload = u32 count + count * u32 child-index.

namespace csj {

/// Tuning knobs for the paged read path.
struct PagedTreeOptions {
  uint32_t block_size = 4096;   ///< write-time layout / read-time IO unit
  size_t cache_blocks = 256;    ///< capacity of the block cache, in blocks
  /// Optional memory budget cached blocks are charged against (not owned;
  /// thread-safe). Under pressure the pool sheds clean blocks before a read
  /// fails with kResourceExhausted.
  MemoryBudget* budget = nullptr;
};

/// Real IO counters of a PagedTree.
struct PagedIoStats {
  uint64_t block_requests = 0;
  uint64_t block_cache_hits = 0;
  uint64_t disk_reads = 0;      ///< actual pread calls (block misses)
  uint64_t node_decodes = 0;

  std::string ToString() const {
    return StrFormat(
        "block_requests=%llu hits=%llu disk_reads=%llu node_decodes=%llu",
        static_cast<unsigned long long>(block_requests),
        static_cast<unsigned long long>(block_cache_hits),
        static_cast<unsigned long long>(disk_reads),
        static_cast<unsigned long long>(node_decodes));
  }
};

/// Serializes any box tree (public API only) into the paged layout.
template <typename Tree>
Status WritePagedTree(const Tree& tree, const std::string& path,
                      const PagedTreeOptions& options = PagedTreeOptions());

/// Read-only disk-resident tree satisfying SpatialIndex.
template <int D>
class PagedTree {
 public:
  static constexpr int kDim = D;
  /// pread + pinned pool blocks: safe for concurrent readers.
  static constexpr bool kThreadSafeReads = true;
  using PointT = Point<D>;
  using BoxT = Box<D>;
  using EntryT = Entry<D>;
  using ShapeT = BoxT;

  /// Opens a file written by WritePagedTree.
  static Result<PagedTree> Open(const std::string& path,
                                const PagedTreeOptions& options =
                                    PagedTreeOptions());

  PagedTree(PagedTree&& other) noexcept { *this = std::move(other); }
  PagedTree& operator=(PagedTree&& other) noexcept {
    if (this == &other) return *this;
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    options_ = other.options_;
    blob_start_ = other.blob_start_;
    size_ = other.size_;
    root_ = other.root_;
    directory_ = std::move(other.directory_);
    pool_ = std::move(other.pool_);
    node_decodes_.store(other.node_decodes_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    baseline_ = other.baseline_;
    decode_baseline_ = other.decode_baseline_;
    return *this;
  }
  PagedTree(const PagedTree&) = delete;
  PagedTree& operator=(const PagedTree&) = delete;
  ~PagedTree() {
    pool_.reset();  // release budget charges before the fd goes away
    if (fd_ >= 0) ::close(fd_);
  }

  // --- SpatialIndex concept ---------------------------------------------------

  NodeId Root() const { return root_; }
  bool IsLeaf(NodeId n) const { return directory_[n].is_leaf; }

  /// Child ids, by value: safe across block-cache evictions. The ungoverned
  /// form aborts on an IO failure (the concept has no error channel); pass
  /// the calling query's context to turn read faults into a clean trip.
  std::vector<NodeId> Children(NodeId n) const { return Children(n, nullptr); }
  std::vector<NodeId> Children(NodeId n, const ExecContext* exec) const;

  /// Leaf entries, by value; same governance contract as Children.
  std::vector<EntryT> Entries(NodeId n) const { return Entries(n, nullptr); }
  std::vector<EntryT> Entries(NodeId n, const ExecContext* exec) const;

  double MaxDiameter(NodeId n) const { return directory_[n].mbr.Diagonal(); }
  double MaxDiameter(NodeId a, NodeId b) const {
    return BoxT::Union(directory_[a].mbr, directory_[b].mbr).Diagonal();
  }
  double MinDistance(NodeId a, NodeId b) const {
    return csj::MinDistance(directory_[a].mbr, directory_[b].mbr);
  }
  const BoxT& Shape(NodeId n) const { return directory_[n].mbr; }

  uint64_t size() const { return size_; }
  uint64_t NodeCount() const { return directory_.size(); }
  bool empty() const { return directory_.empty(); }

  /// Real IO statistics since Open/ResetIoStats. Snapshot by value (the
  /// counters are concurrently updated).
  PagedIoStats io_stats() const {
    const BufferPool::StatsSnapshot s = pool_->stats();
    PagedIoStats io;
    io.block_requests = s.requests - baseline_.requests;
    io.block_cache_hits = s.hits - baseline_.hits;
    io.disk_reads = s.misses - baseline_.misses;
    io.node_decodes =
        node_decodes_.load(std::memory_order_relaxed) - decode_baseline_;
    return io;
  }
  void ResetIoStats() {
    baseline_ = pool_->stats();
    decode_baseline_ = node_decodes_.load(std::memory_order_relaxed);
  }

  /// The underlying block cache (e.g. to ShedClean between phases).
  BufferPool& pool() const { return *pool_; }

 private:
  struct DirectoryEntry {
    uint64_t offset = 0;
    uint32_t length = 0;
    bool is_leaf = true;
    BoxT mbr;
  };

  PagedTree() = default;

  /// Fetches the raw payload bytes of a node through the block cache.
  Status FetchNodeBytes(NodeId n, std::vector<char>* out) const;

  /// Reads one block from disk (the pool's loader).
  Status LoadBlock(uint64_t block_index, std::vector<char>* out) const;

  /// Reports a read failure: trips the caller's context when given, else
  /// aborts.
  void HandleReadError(NodeId n, const Status& status,
                       const ExecContext* exec) const;

  int fd_ = -1;
  std::string path_;
  PagedTreeOptions options_;
  uint64_t blob_start_ = 0;
  uint64_t size_ = 0;
  NodeId root_ = kInvalidNode;
  std::vector<DirectoryEntry> directory_;

  mutable std::unique_ptr<BufferPool> pool_;
  mutable std::atomic<uint64_t> node_decodes_{0};
  // ResetIoStats baselines (the pool's counters are monotonic).
  mutable BufferPool::StatsSnapshot baseline_{};
  mutable uint64_t decode_baseline_ = 0;
};

// --- Implementation ---------------------------------------------------------------

namespace paged_internal {

inline constexpr char kMagic[8] = {'C', 'S', 'J', 'P', 'A', 'G', 'E', '1'};

inline bool WriteRaw(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}
inline bool ReadRaw(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
void AppendPod(std::vector<char>* out, const T& value) {
  const char* raw = reinterpret_cast<const char*>(&value);
  out->insert(out->end(), raw, raw + sizeof(T));
}

template <typename T>
bool ReadPod(const std::vector<char>& in, size_t* pos, T* value) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace paged_internal

template <typename Tree>
Status WritePagedTree(const Tree& tree, const std::string& path,
                      const PagedTreeOptions& options) {
  namespace pi = paged_internal;
  constexpr int D = Tree::kDim;
  if (options.block_size < 256) {
    return Status::InvalidArgument("block_size too small");
  }

  // Pre-order enumeration via the public API.
  std::vector<NodeId> order;
  std::unordered_map<NodeId, uint32_t> remap;
  if (tree.Root() != kInvalidNode) {
    std::vector<NodeId> stack = {tree.Root()};
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      remap[n] = static_cast<uint32_t>(order.size());
      order.push_back(n);
      if (!tree.IsLeaf(n)) {
        for (NodeId c : tree.Children(n)) stack.push_back(c);
      }
    }
  }

  // Encode payloads and assign block-aligned offsets: a payload never spans
  // a block boundary unless it is bigger than one block.
  std::vector<std::vector<char>> payloads(order.size());
  std::vector<uint64_t> offsets(order.size());
  uint64_t cursor = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    std::vector<char>& payload = payloads[i];
    const NodeId n = order[i];
    if (tree.IsLeaf(n)) {
      const auto entries = tree.Entries(n);
      pi::AppendPod(&payload, static_cast<uint32_t>(entries.size()));
      for (const auto& e : entries) {
        pi::AppendPod(&payload, static_cast<uint32_t>(e.id));
        for (int d = 0; d < D; ++d) pi::AppendPod(&payload, e.point[d]);
      }
    } else {
      const auto children = tree.Children(n);
      pi::AppendPod(&payload, static_cast<uint32_t>(children.size()));
      for (NodeId c : children) pi::AppendPod(&payload, remap.at(c));
    }
    const uint64_t block = options.block_size;
    if (cursor / block != (cursor + payload.size() - 1) / block &&
        payload.size() <= block) {
      cursor = (cursor / block + 1) * block;  // bump to next block boundary
    }
    offsets[i] = cursor;
    cursor += payload.size();
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  auto fail = [&] {
    std::fclose(f);
    return Status::IoError("short write: " + path);
  };

  const uint32_t dim = D;
  const uint32_t block_size = options.block_size;
  const uint64_t entries = tree.size();
  const uint32_t node_count = static_cast<uint32_t>(order.size());
  const uint32_t root = 0;  // pre-order: the root is always first
  if (!pi::WriteRaw(f, pi::kMagic, 8) || !pi::WriteRaw(f, &dim, 4) ||
      !pi::WriteRaw(f, &block_size, 4) || !pi::WriteRaw(f, &entries, 8) ||
      !pi::WriteRaw(f, &node_count, 4) || !pi::WriteRaw(f, &root, 4)) {
    return fail();
  }
  for (size_t i = 0; i < order.size(); ++i) {
    const NodeId n = order[i];
    const uint64_t offset = offsets[i];
    const uint32_t length = static_cast<uint32_t>(payloads[i].size());
    const uint8_t is_leaf = tree.IsLeaf(n) ? 1 : 0;
    const auto& mbr = tree.NodeBox(n);
    if (!pi::WriteRaw(f, &offset, 8) || !pi::WriteRaw(f, &length, 4) ||
        !pi::WriteRaw(f, &is_leaf, 1) ||
        !pi::WriteRaw(f, mbr.lo.data(), sizeof(double) * D) ||
        !pi::WriteRaw(f, mbr.hi.data(), sizeof(double) * D)) {
      return fail();
    }
  }
  // Blob area, zero-padded to honor the assigned offsets.
  uint64_t written = 0;
  const std::vector<char> zeros(4096, 0);
  for (size_t i = 0; i < order.size(); ++i) {
    while (written < offsets[i]) {
      const size_t pad = static_cast<size_t>(
          std::min<uint64_t>(offsets[i] - written, zeros.size()));
      if (!pi::WriteRaw(f, zeros.data(), pad)) return fail();
      written += pad;
    }
    if (!pi::WriteRaw(f, payloads[i].data(), payloads[i].size())) {
      return fail();
    }
    written += payloads[i].size();
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed: " + path);
  return Status::OK();
}

template <int D>
Result<PagedTree<D>> PagedTree<D>::Open(const std::string& path,
                                        const PagedTreeOptions& options) {
  namespace pi = paged_internal;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);

  PagedTree tree;
  tree.path_ = path;
  tree.options_ = options;

  char magic[8];
  uint32_t dim = 0, block_size = 0, node_count = 0, root = 0;
  uint64_t entries = 0;
  if (!pi::ReadRaw(f, magic, 8) || std::memcmp(magic, pi::kMagic, 8) != 0) {
    std::fclose(f);
    return Status::InvalidArgument("not a CSJPAGE1 file: " + path);
  }
  if (!pi::ReadRaw(f, &dim, 4) || !pi::ReadRaw(f, &block_size, 4) ||
      !pi::ReadRaw(f, &entries, 8) || !pi::ReadRaw(f, &node_count, 4) ||
      !pi::ReadRaw(f, &root, 4)) {
    std::fclose(f);
    return Status::IoError("truncated header: " + path);
  }
  if (dim != static_cast<uint32_t>(D)) {
    std::fclose(f);
    return Status::InvalidArgument(
        StrFormat("dimension mismatch: file %u, tree %d", dim, D));
  }
  tree.options_.block_size = block_size;
  if (tree.options_.cache_blocks < 1) tree.options_.cache_blocks = 1;
  tree.size_ = entries;
  tree.directory_.resize(node_count);
  for (auto& entry : tree.directory_) {
    uint8_t is_leaf = 0;
    if (!pi::ReadRaw(f, &entry.offset, 8) ||
        !pi::ReadRaw(f, &entry.length, 4) || !pi::ReadRaw(f, &is_leaf, 1) ||
        !pi::ReadRaw(f, entry.mbr.lo.data(), sizeof(double) * D) ||
        !pi::ReadRaw(f, entry.mbr.hi.data(), sizeof(double) * D)) {
      std::fclose(f);
      return Status::IoError("truncated node table: " + path);
    }
    entry.is_leaf = is_leaf != 0;
  }
  tree.blob_start_ = static_cast<uint64_t>(std::ftell(f));
  std::fclose(f);
  tree.root_ = node_count == 0 ? kInvalidNode : root;

  // Reopen as a plain descriptor: pread has no shared seek position, which
  // is what makes concurrent reads safe.
  tree.fd_ = ::open(path.c_str(), O_RDONLY);
  if (tree.fd_ < 0) return Status::IoError("cannot reopen: " + path);

  BufferPool::Options pool_options;
  pool_options.capacity_pages = tree.options_.cache_blocks;
  pool_options.budget = tree.options_.budget;
  tree.pool_ = std::make_unique<BufferPool>(pool_options);
  return tree;
}

template <int D>
Status PagedTree<D>::LoadBlock(uint64_t block_index,
                               std::vector<char>* out) const {
  if (CSJ_FAILPOINT("paged_tree.read")) {
    return Status::IoError(
        StrFormat("injected read fault at block %llu of %s",
                  static_cast<unsigned long long>(block_index),
                  path_.c_str()));
  }
  out->resize(options_.block_size);
  const uint64_t file_offset =
      blob_start_ + block_index * options_.block_size;
  size_t got = 0;
  while (got < out->size()) {
    const ssize_t n =
        ::pread(fd_, out->data() + got, out->size() - got,
                static_cast<off_t>(file_offset + got));
    if (n < 0) return Status::IoError("pread failed: " + path_);
    if (n == 0) break;  // EOF: the last block may be short
    got += static_cast<size_t>(n);
  }
  out->resize(got);
  return Status::OK();
}

template <int D>
Status PagedTree<D>::FetchNodeBytes(NodeId n, std::vector<char>* out) const {
  const DirectoryEntry& entry = directory_[n];
  out->clear();
  out->reserve(entry.length);
  uint64_t remaining = entry.length;
  uint64_t position = entry.offset;
  while (remaining > 0) {
    const uint64_t block_index = position / options_.block_size;
    const uint64_t within = position % options_.block_size;
    CSJ_ASSIGN_OR_RETURN(
        BufferPool::PageRef block,
        pool_->Fetch(block_index, [this](uint64_t index,
                                         std::vector<char>* bytes) {
          return LoadBlock(index, bytes);
        }));
    const std::vector<char>& data = block.data();
    if (within >= data.size()) {
      return Status::IoError("node payload past end of file: " + path_);
    }
    const uint64_t take = std::min<uint64_t>(remaining, data.size() - within);
    out->insert(out->end(), data.data() + within,
                data.data() + within + take);
    remaining -= take;
    position += take;
  }
  node_decodes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

template <int D>
void PagedTree<D>::HandleReadError(NodeId n, const Status& status,
                                   const ExecContext* exec) const {
  if (exec != nullptr) {
    exec->Trip(status);
    return;
  }
  CSJ_CHECK(false) << "IO error reading node " << n << ": "
                   << status.ToString();
}

template <int D>
std::vector<NodeId> PagedTree<D>::Children(NodeId n,
                                           const ExecContext* exec) const {
  CSJ_DCHECK(!directory_[n].is_leaf);
  std::vector<char> bytes;
  const Status fetched = FetchNodeBytes(n, &bytes);
  if (!fetched.ok()) {
    HandleReadError(n, fetched, exec);
    return {};
  }
  size_t pos = 0;
  uint32_t count = 0;
  CSJ_CHECK(paged_internal::ReadPod(bytes, &pos, &count));
  std::vector<NodeId> children(count);
  for (auto& child : children) {
    uint32_t idx = 0;
    CSJ_CHECK(paged_internal::ReadPod(bytes, &pos, &idx));
    CSJ_CHECK(idx < directory_.size()) << "corrupt child index";
    child = idx;
  }
  return children;
}

template <int D>
std::vector<Entry<D>> PagedTree<D>::Entries(NodeId n,
                                            const ExecContext* exec) const {
  CSJ_DCHECK(directory_[n].is_leaf);
  std::vector<char> bytes;
  const Status fetched = FetchNodeBytes(n, &bytes);
  if (!fetched.ok()) {
    HandleReadError(n, fetched, exec);
    return {};
  }
  size_t pos = 0;
  uint32_t count = 0;
  CSJ_CHECK(paged_internal::ReadPod(bytes, &pos, &count));
  std::vector<EntryT> entries(count);
  for (auto& e : entries) {
    uint32_t id = 0;
    CSJ_CHECK(paged_internal::ReadPod(bytes, &pos, &id));
    e.id = id;
    for (int d = 0; d < D; ++d) {
      CSJ_CHECK(paged_internal::ReadPod(bytes, &pos, &e.point[d]));
    }
  }
  return entries;
}

}  // namespace csj

#endif  // CSJ_INDEX_PAGED_TREE_H_

#ifndef CSJ_INDEX_SPATIAL_INDEX_H_
#define CSJ_INDEX_SPATIAL_INDEX_H_

#include <concepts>
#include <cstdint>
#include <span>

#include "geom/point.h"

/// \file
/// The interface every index tree must satisfy for the join algorithms.
///
/// The paper's only assumption (Section IV) is that the minimum and maximum
/// distance between any two nodes can be computed efficiently from the nodes'
/// bounding shapes, and that parents fully cover their children (the
/// "inclusion property", Section VII). The SpatialIndex concept captures
/// exactly that; SSJ / N-CSJ / CSJ(g) are written against it and never name a
/// concrete tree, which is how the paper's index-independence claim
/// (Experiment 4) shows up in code.

namespace csj {

class ExecContext;

/// Node handle used by all trees: an index into the tree's node arena.
using NodeId = uint32_t;

/// Sentinel for "no node" (empty tree, no parent, ...).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// clang-format off
/// Concept satisfied by RTree, RStarTree and MTree.
template <typename T>
concept SpatialIndex = requires(const T& tree, NodeId n, NodeId m) {
  typename T::PointT;
  { T::kDim } -> std::convertible_to<int>;
  /// Root node, or kInvalidNode when the tree is empty.
  { tree.Root() } -> std::same_as<NodeId>;
  { tree.IsLeaf(n) } -> std::same_as<bool>;
  /// Child node ids of an internal node.
  { tree.Children(n) } -> std::convertible_to<std::span<const NodeId>>;
  /// Data entries of a leaf node.
  { tree.Entries(n) } -> std::convertible_to<std::span<const Entry<T::kDim>>>;
  /// Upper bound on the distance between any two data points under n
  /// ("maximum diameter of the bounding shape").
  { tree.MaxDiameter(n) } -> std::same_as<double>;
  /// Upper bound on the distance between any two data points drawn from the
  /// union of the two subtrees (used by the dual-node early-stopping rule).
  { tree.MaxDiameter(n, m) } -> std::same_as<double>;
  /// Lower bound on the distance between points from the two subtrees
  /// (used for pruning).
  { tree.MinDistance(n, m) } -> std::same_as<double>;
  /// Number of stored entries.
  { tree.size() } -> std::convertible_to<uint64_t>;
  { tree.NodeCount() } -> std::convertible_to<uint64_t>;
};
// clang-format on

/// Reads the children of `n`, routing the caller's governance context to
/// trees whose reads can fail (PagedTree). In-memory trees ignore `exec`:
/// the `if constexpr` keeps the concept's context-free `Children(n)` the
/// only requirement. Disk-backed trees report a read fault by tripping
/// `exec` and returning an empty span — callers unwind at the next
/// `ShouldStop()` poll.
template <typename Tree>
decltype(auto) TreeChildren(const Tree& tree, NodeId n,
                            const ExecContext* exec) {
  if constexpr (requires { tree.Children(n, exec); }) {
    return tree.Children(n, exec);
  } else {
    return tree.Children(n);
  }
}

/// Governed counterpart of `Entries(n)`; see TreeChildren.
template <typename Tree>
decltype(auto) TreeEntries(const Tree& tree, NodeId n,
                           const ExecContext* exec) {
  if constexpr (requires { tree.Entries(n, exec); }) {
    return tree.Entries(n, exec);
  } else {
    return tree.Entries(n);
  }
}

/// Applies `fn(const Entry<D>&)` to every entry stored under `node`,
/// touching `tracker` (if any) for every visited node. Read faults on a
/// governed disk-backed tree trip `exec` and cut the walk short.
template <typename Tree, typename Fn, typename Tracker>
void ForEachEntryInSubtree(const Tree& tree, NodeId node, Tracker* tracker,
                           Fn&& fn, const ExecContext* exec = nullptr) {
  if (tracker != nullptr) tracker->Touch(node);
  if (tree.IsLeaf(node)) {
    for (const auto& entry : TreeEntries(tree, node, exec)) fn(entry);
    return;
  }
  for (NodeId child : TreeChildren(tree, node, exec)) {
    ForEachEntryInSubtree(tree, child, tracker, fn, exec);
  }
}

/// Counts entries under `node` without touching the tracker.
template <typename Tree>
uint64_t CountEntriesInSubtree(const Tree& tree, NodeId node,
                               const ExecContext* exec = nullptr) {
  if (tree.IsLeaf(node)) return TreeEntries(tree, node, exec).size();
  uint64_t total = 0;
  for (NodeId child : TreeChildren(tree, node, exec)) {
    total += CountEntriesInSubtree(tree, child, exec);
  }
  return total;
}

}  // namespace csj

#endif  // CSJ_INDEX_SPATIAL_INDEX_H_

#ifndef CSJ_INDEX_BOX_TREE_H_
#define CSJ_INDEX_BOX_TREE_H_

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "index/spatial_index.h"
#include "util/check.h"
#include "util/format.h"

/// \file
/// Shared machinery of the MBR-based trees (R-tree, R*-tree).
///
/// Both trees store nodes in an arena (std::deque, so node references stay
/// stable), keep parent links for bottom-up MBR adjustment, and expose the
/// SpatialIndex concept the join algorithms are written against. Insert-time
/// policy (ChooseLeaf/ChooseSubtree, split, forced reinsert) lives in the
/// derived classes; deletion, queries, validation and statistics live here.

namespace csj {

/// Summary statistics of a box tree (used by benches and tests).
struct TreeStats {
  uint64_t num_entries = 0;
  uint64_t num_nodes = 0;
  uint64_t num_leaves = 0;
  int height = 0;  ///< number of levels; 1 = root is a leaf
  double avg_leaf_fill = 0.0;
  double avg_internal_fill = 0.0;

  std::string ToString() const {
    return StrFormat(
        "entries=%llu nodes=%llu leaves=%llu height=%d leaf_fill=%.2f "
        "internal_fill=%.2f",
        static_cast<unsigned long long>(num_entries),
        static_cast<unsigned long long>(num_nodes),
        static_cast<unsigned long long>(num_leaves), height, avg_leaf_fill,
        avg_internal_fill);
  }
};

/// CRTP base for MBR trees. Derived must provide:
///   void Insert(PointId id, const PointT& point);
template <int D, typename Derived>
class BoxTreeBase {
 public:
  static constexpr int kDim = D;
  /// Concurrent const reads are safe (no mutable caches).
  static constexpr bool kThreadSafeReads = true;
  using PointT = Point<D>;
  using BoxT = Box<D>;
  using EntryT = Entry<D>;

  /// One tree node. Leaves hold entries; internal nodes hold child ids.
  struct Node {
    BoxT mbr;
    NodeId parent = kInvalidNode;
    int level = 0;  ///< 0 for leaves, increasing toward the root
    bool is_leaf = true;
    std::vector<NodeId> children;
    std::vector<EntryT> entries;

    size_t fanout() const { return is_leaf ? entries.size() : children.size(); }
  };

  // --- SpatialIndex concept -------------------------------------------------

  NodeId Root() const { return root_; }
  bool IsLeaf(NodeId n) const { return node(n).is_leaf; }

  std::span<const NodeId> Children(NodeId n) const {
    const Node& nd = node(n);
    CSJ_DCHECK(!nd.is_leaf);
    return nd.children;
  }

  std::span<const EntryT> Entries(NodeId n) const {
    const Node& nd = node(n);
    CSJ_DCHECK(nd.is_leaf);
    return nd.entries;
  }

  /// Diagonal of the node's MBR: an upper bound (tight for boxes) on the
  /// distance between any two data points below the node.
  double MaxDiameter(NodeId n) const { return node(n).mbr.Diagonal(); }

  /// Diagonal of the union MBR: bounds every pairwise distance among points
  /// drawn from either subtree, which is what the dual-node early-stopping
  /// rule needs.
  double MaxDiameter(NodeId a, NodeId b) const {
    return BoxT::Union(node(a).mbr, node(b).mbr).Diagonal();
  }

  double MinDistance(NodeId a, NodeId b) const {
    return csj::MinDistance(node(a).mbr, node(b).mbr);
  }

  /// The node's bounding shape, for cross-tree (spatial join) bounds.
  using ShapeT = BoxT;
  const ShapeT& Shape(NodeId n) const { return node(n).mbr; }

  uint64_t size() const { return size_; }
  uint64_t NodeCount() const { return live_nodes_; }

  // --- Tree inspection ------------------------------------------------------

  bool empty() const { return root_ == kInvalidNode; }
  const BoxT& NodeBox(NodeId n) const { return node(n).mbr; }
  int NodeLevel(NodeId n) const { return node(n).level; }
  NodeId Parent(NodeId n) const { return node(n).parent; }
  int Height() const { return empty() ? 0 : node(root_).level + 1; }

  size_t max_fanout() const { return max_fanout_; }
  size_t min_fanout() const { return min_fanout_; }

  /// Gathers fill/shape statistics over the whole tree.
  TreeStats Stats() const {
    TreeStats stats;
    stats.num_entries = size_;
    stats.height = Height();
    if (empty()) return stats;
    uint64_t leaf_items = 0, internal_items = 0, internals = 0;
    ForEachNode([&](NodeId id) {
      const Node& nd = node(id);
      ++stats.num_nodes;
      if (nd.is_leaf) {
        ++stats.num_leaves;
        leaf_items += nd.entries.size();
      } else {
        ++internals;
        internal_items += nd.children.size();
      }
    });
    if (stats.num_leaves > 0) {
      stats.avg_leaf_fill = static_cast<double>(leaf_items) /
                            (static_cast<double>(stats.num_leaves) * max_fanout_);
    }
    if (internals > 0) {
      stats.avg_internal_fill = static_cast<double>(internal_items) /
                                (static_cast<double>(internals) * max_fanout_);
    }
    return stats;
  }

  /// Applies fn(NodeId) to every live node, pre-order.
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    if (empty()) return;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      fn(id);
      const Node& nd = node(id);
      if (!nd.is_leaf) {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
  }

  // --- Queries ---------------------------------------------------------------

  /// All entries whose point lies within `radius` (closed) of `center`,
  /// in unspecified order.
  std::vector<EntryT> RangeQuery(const PointT& center, double radius) const {
    std::vector<EntryT> out;
    if (empty()) return out;
    const double r2 = radius * radius;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const Node& nd = node(stack.back());
      stack.pop_back();
      if (SquaredMinDistance(center, nd.mbr) > r2) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          if (SquaredDistance(center, e.point) <= r2) out.push_back(e);
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return out;
  }

  /// Number of entries within `radius` (closed) of `center`, without
  /// materializing them (used by output-size estimators).
  uint64_t RangeCount(const PointT& center, double radius) const {
    if (empty()) return 0;
    uint64_t count = 0;
    const double r2 = radius * radius;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const Node& nd = node(stack.back());
      stack.pop_back();
      if (SquaredMinDistance(center, nd.mbr) > r2) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          count += SquaredDistance(center, e.point) <= r2;
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return count;
  }

  /// All entries whose point lies inside (closed) `query`.
  std::vector<EntryT> WindowQuery(const BoxT& query) const {
    std::vector<EntryT> out;
    if (empty()) return out;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const Node& nd = node(stack.back());
      stack.pop_back();
      if (!query.Intersects(nd.mbr)) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          if (query.Contains(e.point)) out.push_back(e);
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return out;
  }

  /// True if an entry with this exact (id, point) exists.
  bool Contains(PointId id, const PointT& point) const {
    return FindLeaf(id, point) != kInvalidNode;
  }

  /// The k entries nearest to `center` (ties broken arbitrarily), closest
  /// first. Classic best-first search over node MBR min-distances.
  std::vector<EntryT> NearestNeighbors(const PointT& center, size_t k) const {
    std::vector<EntryT> out;
    if (empty() || k == 0) return out;

    struct Candidate {
      double dist2;
      bool is_entry;
      NodeId node;
      EntryT entry;
      bool operator>(const Candidate& other) const {
        return dist2 > other.dist2;
      }
    };
    std::priority_queue<Candidate, std::vector<Candidate>,
                        std::greater<Candidate>>
        frontier;
    frontier.push({SquaredMinDistance(center, node(root_).mbr), false, root_,
                   EntryT{}});
    while (!frontier.empty() && out.size() < k) {
      const Candidate top = frontier.top();
      frontier.pop();
      if (top.is_entry) {
        out.push_back(top.entry);
        continue;
      }
      const Node& nd = node(top.node);
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          frontier.push({SquaredDistance(center, e.point), true,
                         kInvalidNode, e});
        }
      } else {
        for (NodeId child : nd.children) {
          frontier.push({SquaredMinDistance(center, node(child).mbr), false,
                         child, EntryT{}});
        }
      }
    }
    return out;
  }

  // --- Deletion ---------------------------------------------------------------

  /// Removes the entry (id, point); returns false if absent. Underfull nodes
  /// are condensed and their entries re-inserted (Guttman's CondenseTree).
  bool Remove(PointId id, const PointT& point) {
    const NodeId leaf = FindLeaf(id, point);
    if (leaf == kInvalidNode) return false;
    Node& nd = node(leaf);
    for (size_t i = 0; i < nd.entries.size(); ++i) {
      if (nd.entries[i].id == id && nd.entries[i].point == point) {
        nd.entries[i] = nd.entries.back();
        nd.entries.pop_back();
        break;
      }
    }
    --size_;
    std::vector<EntryT> orphans;
    CondenseTree(leaf, &orphans);
    // Orphans were detached structurally but are still counted in size_;
    // uncount them, then re-insert (each Insert counts it once).
    size_ -= orphans.size();
    for (const EntryT& e : orphans) {
      ++pending_reinserts_;
      derived().Insert(e.id, e.point);
      --pending_reinserts_;
    }
    // Shrink the root while it is an internal node with a single child.
    while (root_ != kInvalidNode && !node(root_).is_leaf &&
           node(root_).children.size() == 1) {
      const NodeId old_root = root_;
      root_ = node(old_root).children[0];
      node(root_).parent = kInvalidNode;
      FreeNode(old_root);
    }
    if (size_ == 0 && root_ != kInvalidNode && node(root_).fanout() == 0) {
      FreeNode(root_);
      root_ = kInvalidNode;
    }
    return true;
  }

  // --- Validation -------------------------------------------------------------

  /// Exhaustively checks the structural invariants; aborts with a message on
  /// violation. Used by tests after every batch of mutations.
  void CheckInvariants() const {
    if (empty()) {
      CSJ_CHECK_EQ(size_, 0u);
      return;
    }
    uint64_t counted = 0;
    CheckSubtree(root_, kInvalidNode, &counted);
    CSJ_CHECK_EQ(counted, size_) << "entry count mismatch";
  }

 protected:
  BoxTreeBase(size_t max_fanout, size_t min_fanout)
      : max_fanout_(max_fanout), min_fanout_(min_fanout) {
    CSJ_CHECK(max_fanout_ >= 4) << "max fanout too small";
    CSJ_CHECK(min_fanout_ >= 1 && min_fanout_ <= max_fanout_ / 2);
  }

  Derived& derived() { return static_cast<Derived&>(*this); }

  Node& node(NodeId id) {
    CSJ_DCHECK(id < arena_.size());
    return arena_[id];
  }
  const Node& node(NodeId id) const {
    CSJ_DCHECK(id < arena_.size());
    return arena_[id];
  }

  NodeId AllocNode(bool is_leaf, int level) {
    NodeId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      arena_[id] = Node();
    } else {
      id = static_cast<NodeId>(arena_.size());
      arena_.emplace_back();
    }
    Node& nd = arena_[id];
    nd.is_leaf = is_leaf;
    nd.level = level;
    ++live_nodes_;
    return id;
  }

  void FreeNode(NodeId id) {
    free_list_.push_back(id);
    --live_nodes_;
  }

  /// Recomputes the MBR of `n` from its children/entries.
  void RecomputeMbr(NodeId n) {
    Node& nd = node(n);
    nd.mbr = BoxT();
    if (nd.is_leaf) {
      for (const EntryT& e : nd.entries) nd.mbr.Extend(e.point);
    } else {
      for (NodeId child : nd.children) nd.mbr.Extend(node(child).mbr);
    }
  }

  /// Recomputes MBRs from `n` up to the root.
  void RecomputeMbrPath(NodeId n) {
    while (n != kInvalidNode) {
      RecomputeMbr(n);
      n = node(n).parent;
    }
  }

  /// Extends MBRs on the path from `n` to the root to cover `box`.
  void ExtendMbrPath(NodeId n, const BoxT& box) {
    while (n != kInvalidNode) {
      node(n).mbr.Extend(box);
      n = node(n).parent;
    }
  }

  /// Attaches `child` under `parent` and extends MBRs upward. Does not handle
  /// overflow — callers do.
  void AttachChild(NodeId parent, NodeId child) {
    Node& p = node(parent);
    CSJ_DCHECK(!p.is_leaf);
    p.children.push_back(child);
    node(child).parent = parent;
    ExtendMbrPath(parent, node(child).mbr);
  }

  /// Makes a new root with the two given children (post root-split).
  void GrowRoot(NodeId a, NodeId b) {
    const int level = node(a).level + 1;
    const NodeId new_root = AllocNode(/*is_leaf=*/false, level);
    Node& r = node(new_root);
    r.children = {a, b};
    node(a).parent = new_root;
    node(b).parent = new_root;
    RecomputeMbr(new_root);
    root_ = new_root;
  }

  /// Depth-first exact search for the leaf holding (id, point).
  NodeId FindLeaf(PointId id, const PointT& point) const {
    if (empty()) return kInvalidNode;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const NodeId nid = stack.back();
      stack.pop_back();
      const Node& nd = node(nid);
      if (!nd.mbr.Contains(point)) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          if (e.id == id && e.point == point) return nid;
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return kInvalidNode;
  }

  /// Guttman CondenseTree: walks up from `start`, dropping underfull nodes
  /// and collecting their entries into `orphans` for re-insertion.
  void CondenseTree(NodeId start, std::vector<EntryT>* orphans) {
    NodeId n = start;
    while (n != kInvalidNode) {
      Node& nd = node(n);
      const NodeId parent = nd.parent;
      if (parent != kInvalidNode && nd.fanout() < min_fanout_) {
        // Detach from parent, salvage payload.
        Node& p = node(parent);
        for (size_t i = 0; i < p.children.size(); ++i) {
          if (p.children[i] == n) {
            p.children[i] = p.children.back();
            p.children.pop_back();
            break;
          }
        }
        CollectEntries(n, orphans);
        FreeSubtree(n);
      } else {
        RecomputeMbr(n);
      }
      n = parent;
    }
  }

  void CollectEntries(NodeId n, std::vector<EntryT>* out) const {
    const Node& nd = node(n);
    if (nd.is_leaf) {
      out->insert(out->end(), nd.entries.begin(), nd.entries.end());
      return;
    }
    for (NodeId child : nd.children) CollectEntries(child, out);
  }

  void FreeSubtree(NodeId n) {
    const Node& nd = node(n);
    if (!nd.is_leaf) {
      for (NodeId child : nd.children) FreeSubtree(child);
    }
    FreeNode(n);
  }

  void CheckSubtree(NodeId n, NodeId expected_parent, uint64_t* counted) const {
    const Node& nd = node(n);
    CSJ_CHECK_EQ(nd.parent, expected_parent) << "bad parent link at node " << n;
    const bool is_root = n == root_;
    if (!is_root) {
      CSJ_CHECK_GE(nd.fanout(), min_fanout_) << "underfull node " << n;
    }
    CSJ_CHECK_LE(nd.fanout(), max_fanout_) << "overfull node " << n;
    if (nd.is_leaf) {
      CSJ_CHECK_EQ(nd.level, 0) << "leaf at non-zero level";
      BoxT box;
      for (const EntryT& e : nd.entries) {
        CSJ_CHECK(nd.mbr.Contains(e.point)) << "entry escapes leaf MBR";
        box.Extend(e.point);
      }
      if (!nd.entries.empty()) {
        CSJ_CHECK(BoxesAlmostEqual(box, nd.mbr)) << "leaf MBR not tight";
      }
      *counted += nd.entries.size();
      return;
    }
    CSJ_CHECK_GT(nd.children.size(), 0u) << "internal node with no children";
    BoxT box;
    for (NodeId child : nd.children) {
      CSJ_CHECK_EQ(node(child).level, nd.level - 1) << "unbalanced tree";
      CSJ_CHECK(nd.mbr.Contains(node(child).mbr)) << "child escapes parent MBR";
      box.Extend(node(child).mbr);
      CheckSubtree(child, n, counted);
    }
    CSJ_CHECK(BoxesAlmostEqual(box, nd.mbr)) << "internal MBR not tight";
  }

  static bool BoxesAlmostEqual(const BoxT& a, const BoxT& b) {
    for (int i = 0; i < D; ++i) {
      if (std::fabs(a.lo[i] - b.lo[i]) > 1e-12) return false;
      if (std::fabs(a.hi[i] - b.hi[i]) > 1e-12) return false;
    }
    return true;
  }

  size_t max_fanout_;
  size_t min_fanout_;
  NodeId root_ = kInvalidNode;
  uint64_t size_ = 0;
  uint64_t live_nodes_ = 0;
  int pending_reinserts_ = 0;  ///< depth of Remove-triggered reinsertion
  std::deque<Node> arena_;
  std::vector<NodeId> free_list_;

  template <int, typename>
  friend class BulkLoader;
  template <typename>
  friend class TreeSerializer;
};

}  // namespace csj

#endif  // CSJ_INDEX_BOX_TREE_H_

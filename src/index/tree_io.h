#ifndef CSJ_INDEX_TREE_IO_H_
#define CSJ_INDEX_TREE_IO_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "index/box_tree.h"
#include "storage/binary_format.h"
#include "util/format.h"
#include "util/status.h"

/// \file
/// Binary serialization of the MBR trees (RTree / RStarTree): the exact node
/// structure round-trips, so a server can build an index once, persist it,
/// and answer later join queries without rebuilding (the paper's Discussion
/// notes that tree creation is expensive in computation time and memory).
///
/// Format "CSJTREE2" (little-endian):
///   magic "CSJTREE2" | u32 crc32(body) | body
///   body := u32 dim | u32 max_fanout | u32 min_fanout
///           | u64 entry_count | u32 node_count | u32 root_index
///           | nodes in pre-order: u8 is_leaf | i32 level | 2*D f64 mbr |
///             u32 fanout | children (u32 pre-order indexes) or entries
///             (u32 id + D f64 coords)
///
/// The CRC (storage/binary_format.h's reflected CRC-32) covers everything
/// after the magic, so any truncation or bit flip is reported as a clean
/// `kDataLoss` before a single node is parsed. Version 1 files ("CSJTREE1",
/// same body with no checksum) remain readable; Save always writes v2.

namespace csj {

namespace tree_io_internal {

inline bool WriteRaw(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

inline bool ReadRaw(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

inline constexpr char kMagicV1[8] = {'C', 'S', 'J', 'T', 'R', 'E', 'E', '1'};
inline constexpr char kMagicV2[8] = {'C', 'S', 'J', 'T', 'R', 'E', 'E', '2'};

template <typename T>
void AppendPod(std::vector<char>* out, const T& value) {
  const char* raw = reinterpret_cast<const char*>(&value);
  out->insert(out->end(), raw, raw + sizeof(T));
}

inline void AppendBytes(std::vector<char>* out, const void* data,
                        size_t size) {
  const char* raw = static_cast<const char*>(data);
  out->insert(out->end(), raw, raw + size);
}

/// Bounds-checked cursor over an in-memory body.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* out, size_t size) {
    if (pos_ + size > size_) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool ReadPod(T* out) {
    return Read(out, sizeof(T));
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Reads the remainder of `f` (from the current position) into `out`.
inline bool ReadRest(std::FILE* f, std::vector<char>* out) {
  out->clear();
  char chunk[16384];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->insert(out->end(), chunk, chunk + got);
  }
  return std::ferror(f) == 0;
}

}  // namespace tree_io_internal

/// Serializer with friend access to the tree internals.
template <typename Tree>
class TreeSerializer {
 public:
  static constexpr int D = Tree::kDim;
  using Node = typename Tree::Node;

  static Status Save(const Tree& tree, const std::string& path) {
    namespace ti = tree_io_internal;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot open for write: " + path);
    Status status = SaveTo(tree, f);
    if (std::fclose(f) != 0 && status.ok()) {
      status = Status::IoError("close failed: " + path);
    }
    return status;
  }

  static Status Load(Tree* tree, const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("cannot open: " + path);
    Status status = LoadFrom(tree, f);
    std::fclose(f);
    return status;
  }

 private:
  static Status SaveTo(const Tree& tree, std::FILE* f) {
    namespace ti = tree_io_internal;
    // Collect live nodes in pre-order and build the id remap.
    std::vector<NodeId> order;
    std::vector<uint32_t> remap(tree.arena_.size(), 0);
    if (!tree.empty()) {
      std::vector<NodeId> stack = {tree.root_};
      while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        remap[id] = static_cast<uint32_t>(order.size());
        order.push_back(id);
        const Node& nd = tree.arena_[id];
        if (!nd.is_leaf) {
          for (NodeId child : nd.children) stack.push_back(child);
        }
      }
    }

    // Serialize the body to memory so the checksum can cover all of it.
    std::vector<char> body;
    const uint32_t dim = D;
    const uint32_t max_fanout = static_cast<uint32_t>(tree.max_fanout_);
    const uint32_t min_fanout = static_cast<uint32_t>(tree.min_fanout_);
    const uint64_t entries = tree.size_;
    const uint32_t node_count = static_cast<uint32_t>(order.size());
    const uint32_t root_index = order.empty() ? 0 : remap[tree.root_];
    ti::AppendPod(&body, dim);
    ti::AppendPod(&body, max_fanout);
    ti::AppendPod(&body, min_fanout);
    ti::AppendPod(&body, entries);
    ti::AppendPod(&body, node_count);
    ti::AppendPod(&body, root_index);

    for (const NodeId id : order) {
      const Node& nd = tree.arena_[id];
      ti::AppendPod(&body, static_cast<uint8_t>(nd.is_leaf ? 1 : 0));
      ti::AppendPod(&body, static_cast<int32_t>(nd.level));
      ti::AppendBytes(&body, nd.mbr.lo.data(), sizeof(double) * D);
      ti::AppendBytes(&body, nd.mbr.hi.data(), sizeof(double) * D);
      ti::AppendPod(&body, static_cast<uint32_t>(nd.fanout()));
      if (nd.is_leaf) {
        for (const auto& e : nd.entries) {
          ti::AppendPod(&body, static_cast<uint32_t>(e.id));
          ti::AppendBytes(&body, e.point.coords.data(), sizeof(double) * D);
        }
      } else {
        for (NodeId child : nd.children) {
          ti::AppendPod(&body, remap[child]);
        }
      }
    }

    const uint32_t crc = binfmt::Crc32(body.data(), body.size());
    if (!ti::WriteRaw(f, ti::kMagicV2, sizeof(ti::kMagicV2)) ||
        !ti::WriteRaw(f, &crc, 4) ||
        !ti::WriteRaw(f, body.data(), body.size())) {
      return Status::IoError("short write");
    }
    return Status::OK();
  }

  static Status LoadFrom(Tree* tree, std::FILE* f) {
    namespace ti = tree_io_internal;
    if (!tree->empty()) {
      return Status::FailedPrecondition("Load requires an empty tree");
    }

    char magic[8];
    if (!ti::ReadRaw(f, magic, 8)) {
      return Status::DataLoss("tree file shorter than its magic");
    }
    const bool v2 = std::memcmp(magic, ti::kMagicV2, 8) == 0;
    if (!v2 && std::memcmp(magic, ti::kMagicV1, 8) != 0) {
      return Status::InvalidArgument("not a CSJTREE1/CSJTREE2 file");
    }

    uint32_t expected_crc = 0;
    if (v2 && !ti::ReadRaw(f, &expected_crc, 4)) {
      return Status::DataLoss("truncated CSJTREE2 checksum");
    }
    std::vector<char> body;
    if (!ti::ReadRest(f, &body)) {
      return Status::IoError("read failed");
    }
    if (v2) {
      const uint32_t actual = binfmt::Crc32(body.data(), body.size());
      if (actual != expected_crc) {
        return Status::DataLoss(StrFormat(
            "tree file checksum mismatch (stored %08x, computed %08x): the "
            "file is truncated or corrupt",
            expected_crc, actual));
      }
    }

    // From here on every short read means a malformed body. For a v2 file
    // the checksum already vouched for the bytes, so a parse error can only
    // be an internal inconsistency; for v1 it is the historical truncation.
    auto fail = [v2] {
      return v2 ? Status::DataLoss("malformed CSJTREE2 body")
                : Status::IoError("truncated tree file");
    };
    ti::ByteReader reader(body.data(), body.size());

    uint32_t dim = 0, max_fanout = 0, min_fanout = 0, node_count = 0,
             root_index = 0;
    uint64_t entries = 0;
    if (!reader.ReadPod(&dim) || !reader.ReadPod(&max_fanout) ||
        !reader.ReadPod(&min_fanout) || !reader.ReadPod(&entries) ||
        !reader.ReadPod(&node_count) || !reader.ReadPod(&root_index)) {
      return fail();
    }
    if (dim != static_cast<uint32_t>(D)) {
      return Status::InvalidArgument(
          StrFormat("dimension mismatch: file %u, tree %d", dim, D));
    }
    if (max_fanout != tree->max_fanout_ || min_fanout != tree->min_fanout_) {
      return Status::InvalidArgument(StrFormat(
          "fanout mismatch: file (%u, %u), tree (%zu, %zu)", max_fanout,
          min_fanout, tree->max_fanout_, tree->min_fanout_));
    }
    if (node_count == 0) return Status::OK();
    if (root_index >= node_count) {
      return Status::InvalidArgument("root index out of range");
    }

    for (uint32_t i = 0; i < node_count; ++i) {
      uint8_t is_leaf = 0;
      int32_t level = 0;
      const NodeId id = tree->AllocNode(false, 0);
      Node& nd = tree->arena_[id];
      if (!reader.ReadPod(&is_leaf) || !reader.ReadPod(&level) ||
          !reader.Read(nd.mbr.lo.data(), sizeof(double) * D) ||
          !reader.Read(nd.mbr.hi.data(), sizeof(double) * D)) {
        return fail();
      }
      nd.is_leaf = is_leaf != 0;
      nd.level = level;
      uint32_t fanout = 0;
      if (!reader.ReadPod(&fanout)) return fail();
      if (fanout > max_fanout) {
        return Status::InvalidArgument("node fanout exceeds max");
      }
      if (nd.is_leaf) {
        nd.entries.resize(fanout);
        for (auto& e : nd.entries) {
          uint32_t id32 = 0;
          if (!reader.ReadPod(&id32) ||
              !reader.Read(e.point.coords.data(), sizeof(double) * D)) {
            return fail();
          }
          e.id = id32;
        }
      } else {
        nd.children.resize(fanout);
        for (auto& child : nd.children) {
          uint32_t idx = 0;
          if (!reader.ReadPod(&idx)) return fail();
          if (idx >= node_count) {
            return Status::InvalidArgument("child index out of range");
          }
          child = idx;
        }
      }
    }

    // Wire parents and validate child links.
    for (uint32_t i = 0; i < node_count; ++i) {
      Node& nd = tree->arena_[i];
      if (nd.is_leaf) continue;
      for (NodeId child : nd.children) {
        tree->arena_[child].parent = i;
      }
    }
    tree->root_ = root_index;
    tree->arena_[root_index].parent = kInvalidNode;
    tree->size_ = entries;
    return Status::OK();
  }
};

/// Header fields of a serialized tree, readable without loading it (used to
/// configure a tree object with matching fanout before LoadTree).
struct TreeFileInfo {
  uint32_t dim = 0;
  uint32_t max_fanout = 0;
  uint32_t min_fanout = 0;
  uint64_t entries = 0;
};

inline Result<TreeFileInfo> PeekTreeFile(const std::string& path) {
  namespace ti = tree_io_internal;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[8];
  TreeFileInfo info;
  bool ok = ti::ReadRaw(f, magic, 8);
  if (ok && std::memcmp(magic, ti::kMagicV2, 8) == 0) {
    uint32_t crc = 0;  // skipped: Peek reads the header only
    ok = ti::ReadRaw(f, &crc, 4);
  } else if (ok) {
    ok = std::memcmp(magic, ti::kMagicV1, 8) == 0;
  }
  ok = ok && ti::ReadRaw(f, &info.dim, 4) &&
       ti::ReadRaw(f, &info.max_fanout, 4) &&
       ti::ReadRaw(f, &info.min_fanout, 4) && ti::ReadRaw(f, &info.entries, 8);
  std::fclose(f);
  if (!ok) return Status::InvalidArgument("not a CSJTREE1/CSJTREE2 file: " + path);
  return info;
}

/// Saves an MBR tree to `path` (always the checksummed v2 format).
template <typename Tree>
Status SaveTree(const Tree& tree, const std::string& path) {
  return TreeSerializer<Tree>::Save(tree, path);
}

/// Loads into an empty, identically-configured tree.
template <typename Tree>
Status LoadTree(Tree* tree, const std::string& path) {
  return TreeSerializer<Tree>::Load(tree, path);
}

}  // namespace csj

#endif  // CSJ_INDEX_TREE_IO_H_

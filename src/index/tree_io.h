#ifndef CSJ_INDEX_TREE_IO_H_
#define CSJ_INDEX_TREE_IO_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "index/box_tree.h"
#include "util/format.h"
#include "util/status.h"

/// \file
/// Binary serialization of the MBR trees (RTree / RStarTree): the exact node
/// structure round-trips, so a server can build an index once, persist it,
/// and answer later join queries without rebuilding (the paper's Discussion
/// notes that tree creation is expensive in computation time and memory).
///
/// Format (little-endian, versioned):
///   magic "CSJTREE1" | u32 dim | u32 max_fanout | u32 min_fanout
///   u64 entry_count | u32 node_count | u32 root_index
///   nodes in pre-order: u8 is_leaf | i32 level | 2*D f64 mbr |
///     u32 fanout | children (u32 pre-order indexes) or entries
///     (u32 id + D f64 coords)

namespace csj {

namespace tree_io_internal {

inline bool WriteRaw(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

inline bool ReadRaw(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

inline constexpr char kMagic[8] = {'C', 'S', 'J', 'T', 'R', 'E', 'E', '1'};

}  // namespace tree_io_internal

/// Serializer with friend access to the tree internals.
template <typename Tree>
class TreeSerializer {
 public:
  static constexpr int D = Tree::kDim;
  using Node = typename Tree::Node;

  static Status Save(const Tree& tree, const std::string& path) {
    namespace ti = tree_io_internal;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot open for write: " + path);
    Status status = SaveTo(tree, f);
    if (std::fclose(f) != 0 && status.ok()) {
      status = Status::IoError("close failed: " + path);
    }
    return status;
  }

  static Status Load(Tree* tree, const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("cannot open: " + path);
    Status status = LoadFrom(tree, f);
    std::fclose(f);
    return status;
  }

 private:
  static Status SaveTo(const Tree& tree, std::FILE* f) {
    namespace ti = tree_io_internal;
    // Collect live nodes in pre-order and build the id remap.
    std::vector<NodeId> order;
    std::vector<uint32_t> remap(tree.arena_.size(), 0);
    if (!tree.empty()) {
      std::vector<NodeId> stack = {tree.root_};
      while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        remap[id] = static_cast<uint32_t>(order.size());
        order.push_back(id);
        const Node& nd = tree.arena_[id];
        if (!nd.is_leaf) {
          for (NodeId child : nd.children) stack.push_back(child);
        }
      }
    }

    auto fail = [] { return Status::IoError("short write"); };
    if (!ti::WriteRaw(f, ti::kMagic, sizeof(ti::kMagic))) return fail();
    const uint32_t dim = D;
    const uint32_t max_fanout = static_cast<uint32_t>(tree.max_fanout_);
    const uint32_t min_fanout = static_cast<uint32_t>(tree.min_fanout_);
    const uint64_t entries = tree.size_;
    const uint32_t node_count = static_cast<uint32_t>(order.size());
    const uint32_t root_index = order.empty() ? 0 : remap[tree.root_];
    if (!ti::WriteRaw(f, &dim, 4) || !ti::WriteRaw(f, &max_fanout, 4) ||
        !ti::WriteRaw(f, &min_fanout, 4) || !ti::WriteRaw(f, &entries, 8) ||
        !ti::WriteRaw(f, &node_count, 4) || !ti::WriteRaw(f, &root_index, 4)) {
      return fail();
    }

    for (const NodeId id : order) {
      const Node& nd = tree.arena_[id];
      const uint8_t is_leaf = nd.is_leaf ? 1 : 0;
      const int32_t level = nd.level;
      if (!ti::WriteRaw(f, &is_leaf, 1) || !ti::WriteRaw(f, &level, 4) ||
          !ti::WriteRaw(f, nd.mbr.lo.data(), sizeof(double) * D) ||
          !ti::WriteRaw(f, nd.mbr.hi.data(), sizeof(double) * D)) {
        return fail();
      }
      const uint32_t fanout = static_cast<uint32_t>(nd.fanout());
      if (!ti::WriteRaw(f, &fanout, 4)) return fail();
      if (nd.is_leaf) {
        for (const auto& e : nd.entries) {
          const uint32_t id32 = e.id;
          if (!ti::WriteRaw(f, &id32, 4) ||
              !ti::WriteRaw(f, e.point.coords.data(), sizeof(double) * D)) {
            return fail();
          }
        }
      } else {
        for (NodeId child : nd.children) {
          const uint32_t idx = remap[child];
          if (!ti::WriteRaw(f, &idx, 4)) return fail();
        }
      }
    }
    return Status::OK();
  }

  static Status LoadFrom(Tree* tree, std::FILE* f) {
    namespace ti = tree_io_internal;
    if (!tree->empty()) {
      return Status::FailedPrecondition("Load requires an empty tree");
    }
    auto fail = [] { return Status::IoError("truncated tree file"); };

    char magic[8];
    if (!ti::ReadRaw(f, magic, 8)) return fail();
    if (std::memcmp(magic, ti::kMagic, 8) != 0) {
      return Status::InvalidArgument("not a CSJTREE1 file");
    }
    uint32_t dim = 0, max_fanout = 0, min_fanout = 0, node_count = 0,
             root_index = 0;
    uint64_t entries = 0;
    if (!ti::ReadRaw(f, &dim, 4) || !ti::ReadRaw(f, &max_fanout, 4) ||
        !ti::ReadRaw(f, &min_fanout, 4) || !ti::ReadRaw(f, &entries, 8) ||
        !ti::ReadRaw(f, &node_count, 4) || !ti::ReadRaw(f, &root_index, 4)) {
      return fail();
    }
    if (dim != static_cast<uint32_t>(D)) {
      return Status::InvalidArgument(
          StrFormat("dimension mismatch: file %u, tree %d", dim, D));
    }
    if (max_fanout != tree->max_fanout_ || min_fanout != tree->min_fanout_) {
      return Status::InvalidArgument(StrFormat(
          "fanout mismatch: file (%u, %u), tree (%zu, %zu)", max_fanout,
          min_fanout, tree->max_fanout_, tree->min_fanout_));
    }
    if (node_count == 0) return Status::OK();
    if (root_index >= node_count) {
      return Status::InvalidArgument("root index out of range");
    }

    for (uint32_t i = 0; i < node_count; ++i) {
      uint8_t is_leaf = 0;
      int32_t level = 0;
      const NodeId id = tree->AllocNode(false, 0);
      Node& nd = tree->arena_[id];
      if (!ti::ReadRaw(f, &is_leaf, 1) || !ti::ReadRaw(f, &level, 4) ||
          !ti::ReadRaw(f, nd.mbr.lo.data(), sizeof(double) * D) ||
          !ti::ReadRaw(f, nd.mbr.hi.data(), sizeof(double) * D)) {
        return fail();
      }
      nd.is_leaf = is_leaf != 0;
      nd.level = level;
      uint32_t fanout = 0;
      if (!ti::ReadRaw(f, &fanout, 4)) return fail();
      if (fanout > max_fanout) {
        return Status::InvalidArgument("node fanout exceeds max");
      }
      if (nd.is_leaf) {
        nd.entries.resize(fanout);
        for (auto& e : nd.entries) {
          uint32_t id32 = 0;
          if (!ti::ReadRaw(f, &id32, 4) ||
              !ti::ReadRaw(f, e.point.coords.data(), sizeof(double) * D)) {
            return fail();
          }
          e.id = id32;
        }
      } else {
        nd.children.resize(fanout);
        for (auto& child : nd.children) {
          uint32_t idx = 0;
          if (!ti::ReadRaw(f, &idx, 4)) return fail();
          if (idx >= node_count) {
            return Status::InvalidArgument("child index out of range");
          }
          child = idx;
        }
      }
    }

    // Wire parents and validate child links.
    for (uint32_t i = 0; i < node_count; ++i) {
      Node& nd = tree->arena_[i];
      if (nd.is_leaf) continue;
      for (NodeId child : nd.children) {
        tree->arena_[child].parent = i;
      }
    }
    tree->root_ = root_index;
    tree->arena_[root_index].parent = kInvalidNode;
    tree->size_ = entries;
    return Status::OK();
  }
};

/// Header fields of a serialized tree, readable without loading it (used to
/// configure a tree object with matching fanout before LoadTree).
struct TreeFileInfo {
  uint32_t dim = 0;
  uint32_t max_fanout = 0;
  uint32_t min_fanout = 0;
  uint64_t entries = 0;
};

inline Result<TreeFileInfo> PeekTreeFile(const std::string& path) {
  namespace ti = tree_io_internal;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[8];
  TreeFileInfo info;
  const bool ok = ti::ReadRaw(f, magic, 8) &&
                  std::memcmp(magic, ti::kMagic, 8) == 0 &&
                  ti::ReadRaw(f, &info.dim, 4) &&
                  ti::ReadRaw(f, &info.max_fanout, 4) &&
                  ti::ReadRaw(f, &info.min_fanout, 4) &&
                  ti::ReadRaw(f, &info.entries, 8);
  std::fclose(f);
  if (!ok) return Status::InvalidArgument("not a CSJTREE1 file: " + path);
  return info;
}

/// Saves an MBR tree to `path`.
template <typename Tree>
Status SaveTree(const Tree& tree, const std::string& path) {
  return TreeSerializer<Tree>::Save(tree, path);
}

/// Loads into an empty, identically-configured tree.
template <typename Tree>
Status LoadTree(Tree* tree, const std::string& path) {
  return TreeSerializer<Tree>::Load(tree, path);
}

}  // namespace csj

#endif  // CSJ_INDEX_TREE_IO_H_

#ifndef CSJ_INDEX_RSTAR_TREE_H_
#define CSJ_INDEX_RSTAR_TREE_H_

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "index/box_tree.h"

/// \file
/// R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990).
///
/// The paper's default index: all of Experiment 1-3 run on a standard R*-tree
/// (the UCR Spatial Index Library in the original; reimplemented here).
/// Implements the three R* innovations: ChooseSubtree with minimum overlap
/// enlargement at the leaf level, the margin-driven topological split, and
/// forced reinsertion of the 30% most-distant entries on first overflow per
/// level.

namespace csj {

/// Construction parameters.
struct RStarOptions {
  size_t max_fanout = 64;       ///< M
  size_t min_fanout = 26;       ///< m (~40% of M)
  double reinsert_fraction = 0.3;  ///< p: share of entries evicted on overflow
  bool forced_reinsert = true;  ///< disablable for ablation studies
};

/// R*-tree over D-dimensional points.
template <int D>
class RStarTree : public BoxTreeBase<D, RStarTree<D>> {
 public:
  using Base = BoxTreeBase<D, RStarTree<D>>;
  using typename Base::BoxT;
  using typename Base::EntryT;
  using typename Base::Node;
  using typename Base::PointT;

  explicit RStarTree(const RStarOptions& options = RStarOptions())
      : Base(options.max_fanout, options.min_fanout), options_(options) {
    CSJ_CHECK(options.reinsert_fraction > 0.0 &&
              options.reinsert_fraction < 0.5);
  }

  /// Inserts one point (multiset semantics).
  void Insert(PointId id, const PointT& point) {
    // Forced reinsertion is allowed once per level per top-level insert
    // ("overflow treatment"), tracked by reinserted_levels_.
    if (reinsert_depth_ == 0) reinserted_levels_.clear();
    ++reinsert_depth_;
    InsertEntry(EntryT{id, point});
    --reinsert_depth_;
    ++this->size_;
  }

 private:
  void InsertEntry(const EntryT& entry) {
    if (this->root_ == kInvalidNode) {
      this->root_ = this->AllocNode(/*is_leaf=*/true, /*level=*/0);
    }
    const BoxT ebox(entry.point);
    const NodeId leaf = ChooseSubtree(ebox, /*target_level=*/0);
    this->node(leaf).entries.push_back(entry);
    this->ExtendMbrPath(leaf, ebox);
    OverflowTreatment(leaf);
  }

  /// Re-hangs an orphaned subtree at its original level.
  void InsertSubtree(NodeId subtree) {
    const int target_level = this->node(subtree).level + 1;
    CSJ_DCHECK(this->root_ != kInvalidNode);
    const NodeId target = ChooseSubtree(this->node(subtree).mbr, target_level);
    this->AttachChild(target, subtree);
    OverflowTreatment(target);
  }

  /// R* ChooseSubtree: descend to `target_level`, minimizing overlap
  /// enlargement when children are leaves, volume enlargement otherwise.
  NodeId ChooseSubtree(const BoxT& box, int target_level) const {
    NodeId n = this->root_;
    while (this->node(n).level > target_level) {
      const Node& nd = this->node(n);
      CSJ_DCHECK(!nd.is_leaf);
      n = nd.level - 1 == 0 ? ChooseByOverlap(nd, box) : ChooseByVolume(nd, box);
    }
    return n;
  }

  /// Minimum overlap-enlargement child (ties: volume enlargement, volume).
  NodeId ChooseByOverlap(const Node& nd, const BoxT& box) const {
    NodeId best = kInvalidNode;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (NodeId child : nd.children) {
      const BoxT& cb = this->node(child).mbr;
      const BoxT extended = BoxT::Union(cb, box);
      double overlap_delta = 0.0;
      for (NodeId other : nd.children) {
        if (other == child) continue;
        const BoxT& ob = this->node(other).mbr;
        overlap_delta += extended.OverlapVolume(ob) - cb.OverlapVolume(ob);
      }
      const double enlargement = cb.EnlargementTo(box);
      const double volume = cb.Volume();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlargement < best_enlargement ||
            (enlargement == best_enlargement && volume < best_volume)))) {
        best = child;
        best_overlap = overlap_delta;
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    return best;
  }

  /// Minimum volume-enlargement child (ties: volume).
  NodeId ChooseByVolume(const Node& nd, const BoxT& box) const {
    NodeId best = kInvalidNode;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (NodeId child : nd.children) {
      const BoxT& cb = this->node(child).mbr;
      const double enlargement = cb.EnlargementTo(box);
      const double volume = cb.Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = child;
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    return best;
  }

  /// R* OverflowTreatment: first overflow on a level triggers forced
  /// reinsertion; subsequent overflows (or the root) split, possibly
  /// cascading upward.
  void OverflowTreatment(NodeId n) {
    while (n != kInvalidNode &&
           this->node(n).fanout() > this->max_fanout_) {
      const int level = this->node(n).level;
      if (options_.forced_reinsert && n != this->root_ &&
          reinserted_levels_.find(level) == reinserted_levels_.end()) {
        reinserted_levels_.insert(level);
        ReinsertWorst(n);
        return;  // the recursive reinsertions finished any further overflow
      }
      const NodeId sibling = SplitNode(n);
      const NodeId parent = this->node(n).parent;
      if (parent == kInvalidNode) {
        this->GrowRoot(n, sibling);
        return;
      }
      this->RecomputeMbrPath(parent);
      this->AttachChild(parent, sibling);
      n = parent;
    }
  }

  /// Forced reinsertion: evicts the p-fraction of items whose centers are
  /// farthest from the node's MBR center and re-inserts them ("far
  /// reinsert"), which re-shapes neighborhoods and defers splits.
  void ReinsertWorst(NodeId n) {
    Node& nd = this->node(n);
    const size_t evict = std::max<size_t>(
        1, static_cast<size_t>(options_.reinsert_fraction *
                               static_cast<double>(nd.fanout())));
    const PointT center = nd.mbr.Center();

    if (nd.is_leaf) {
      std::sort(nd.entries.begin(), nd.entries.end(),
                [&](const EntryT& a, const EntryT& b) {
                  return SquaredDistance(center, a.point) >
                         SquaredDistance(center, b.point);
                });
      std::vector<EntryT> evicted(nd.entries.begin(),
                                  nd.entries.begin() + evict);
      nd.entries.erase(nd.entries.begin(), nd.entries.begin() + evict);
      this->RecomputeMbrPath(n);
      for (const EntryT& e : evicted) InsertEntry(e);
    } else {
      std::sort(nd.children.begin(), nd.children.end(),
                [&](NodeId a, NodeId b) {
                  return SquaredDistance(center,
                                         this->node(a).mbr.Center()) >
                         SquaredDistance(center, this->node(b).mbr.Center());
                });
      std::vector<NodeId> evicted(nd.children.begin(),
                                  nd.children.begin() + evict);
      nd.children.erase(nd.children.begin(), nd.children.begin() + evict);
      this->RecomputeMbrPath(n);
      for (NodeId subtree : evicted) InsertSubtree(subtree);
    }
  }

  /// R* topological split: choose the axis with minimal margin sum, then the
  /// distribution with minimal overlap (ties: minimal combined volume).
  NodeId SplitNode(NodeId n) {
    Node& nd = this->node(n);
    const NodeId sibling = this->AllocNode(nd.is_leaf, nd.level);
    Node& left = this->node(n);
    Node& right = this->node(sibling);

    if (left.is_leaf) {
      auto get_box = [](const EntryT& e) { return BoxT(e.point); };
      auto [a, b] = RStarPartition(left.entries, get_box);
      left.entries = std::move(a);
      right.entries = std::move(b);
    } else {
      auto get_box = [this](NodeId c) { return this->node(c).mbr; };
      auto [a, b] = RStarPartition(left.children, get_box);
      left.children = std::move(a);
      right.children = std::move(b);
      for (NodeId c : left.children) this->node(c).parent = n;
      for (NodeId c : right.children) this->node(c).parent = sibling;
    }
    this->RecomputeMbr(n);
    this->RecomputeMbr(sibling);
    return sibling;
  }

  template <typename Item, typename GetBox>
  std::pair<std::vector<Item>, std::vector<Item>> RStarPartition(
      std::vector<Item>& items, GetBox get_box) {
    const size_t m = this->min_fanout_;
    const size_t total = items.size();
    CSJ_DCHECK(total >= 2 * m);

    // ChooseSplitAxis: for each axis consider items sorted by lo and by hi;
    // sum the margins of all legal distributions; pick the axis (and sort
    // key) with the smallest sum.
    int best_axis = 0;
    bool best_by_hi = false;
    double best_margin_sum = std::numeric_limits<double>::infinity();
    std::vector<size_t> order(total);
    for (int axis = 0; axis < D; ++axis) {
      for (int by_hi = 0; by_hi < 2; ++by_hi) {
        SortOrder(items, get_box, axis, by_hi != 0, &order);
        const double margin_sum = MarginSum(items, get_box, order, m);
        if (margin_sum < best_margin_sum) {
          best_margin_sum = margin_sum;
          best_axis = axis;
          best_by_hi = by_hi != 0;
        }
      }
    }

    // ChooseSplitIndex on the winning axis: minimal overlap, then volume.
    SortOrder(items, get_box, best_axis, best_by_hi, &order);
    std::vector<BoxT> prefix(total), suffix(total);
    BoxT acc;
    for (size_t i = 0; i < total; ++i) {
      acc.Extend(get_box(items[order[i]]));
      prefix[i] = acc;
    }
    acc = BoxT();
    for (size_t i = total; i-- > 0;) {
      acc.Extend(get_box(items[order[i]]));
      suffix[i] = acc;
    }

    size_t best_k = m;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (size_t k = m; k <= total - m; ++k) {
      const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
      const double volume = prefix[k - 1].Volume() + suffix[k].Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && volume < best_volume)) {
        best_overlap = overlap;
        best_volume = volume;
        best_k = k;
      }
    }

    std::vector<Item> group_a, group_b;
    group_a.reserve(best_k);
    group_b.reserve(total - best_k);
    for (size_t i = 0; i < total; ++i) {
      auto& target = i < best_k ? group_a : group_b;
      target.push_back(std::move(items[order[i]]));
    }
    return {std::move(group_a), std::move(group_b)};
  }

  template <typename Item, typename GetBox>
  static void SortOrder(const std::vector<Item>& items, GetBox get_box,
                        int axis, bool by_hi, std::vector<size_t>* order) {
    for (size_t i = 0; i < items.size(); ++i) (*order)[i] = i;
    std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
      const BoxT box_a = get_box(items[a]);
      const BoxT box_b = get_box(items[b]);
      if (by_hi) {
        if (box_a.hi[axis] != box_b.hi[axis])
          return box_a.hi[axis] < box_b.hi[axis];
        return box_a.lo[axis] < box_b.lo[axis];
      }
      if (box_a.lo[axis] != box_b.lo[axis])
        return box_a.lo[axis] < box_b.lo[axis];
      return box_a.hi[axis] < box_b.hi[axis];
    });
  }

  template <typename Item, typename GetBox>
  static double MarginSum(const std::vector<Item>& items, GetBox get_box,
                          const std::vector<size_t>& order, size_t m) {
    const size_t total = items.size();
    std::vector<BoxT> prefix(total), suffix(total);
    BoxT acc;
    for (size_t i = 0; i < total; ++i) {
      acc.Extend(get_box(items[order[i]]));
      prefix[i] = acc;
    }
    acc = BoxT();
    for (size_t i = total; i-- > 0;) {
      acc.Extend(get_box(items[order[i]]));
      suffix[i] = acc;
    }
    double sum = 0.0;
    for (size_t k = m; k <= total - m; ++k) {
      sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return sum;
  }

  RStarOptions options_;
  std::set<int> reinserted_levels_;
  int reinsert_depth_ = 0;
};

using RStarTree2 = RStarTree<2>;
using RStarTree3 = RStarTree<3>;

}  // namespace csj

#endif  // CSJ_INDEX_RSTAR_TREE_H_

#include "data/roadnet.h"

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "util/check.h"
#include "util/random.h"

namespace csj {

namespace {

struct Segment {
  Point2 a;
  Point2 b;
};

/// Midpoint-displacement subdivision: recursively splits a segment at its
/// middle, jittered perpendicular to the segment, and records every vertex.
/// This is what gives the point set its "road polyline" character.
void Subdivide(const Point2& a, const Point2& b, int depth,
               double displacement, Rng& rng, std::vector<Point2>* out) {
  if (depth == 0) return;
  const double dx = b[0] - a[0];
  const double dy = b[1] - a[1];
  const double len = std::sqrt(dx * dx + dy * dy);
  Point2 mid{{0.5 * (a[0] + b[0]), 0.5 * (a[1] + b[1])}};
  if (len > 1e-9) {
    // Perpendicular unit vector times a random share of the displacement.
    const double offset = displacement * len * rng.UniformDouble(-1.0, 1.0);
    mid[0] += -dy / len * offset;
    mid[1] += dx / len * offset;
  }
  mid[0] = std::clamp(mid[0], 0.0, 1.0);
  mid[1] = std::clamp(mid[1], 0.0, 1.0);
  out->push_back(mid);
  Subdivide(a, mid, depth - 1, displacement, rng, out);
  Subdivide(mid, b, depth - 1, displacement, rng, out);
}

/// Nearest `k` other cities by distance (small n; brute force).
std::vector<size_t> NearestCities(const std::vector<Point2>& cities, size_t i,
                                  int k) {
  std::vector<std::pair<double, size_t>> by_dist;
  for (size_t j = 0; j < cities.size(); ++j) {
    if (j == i) continue;
    by_dist.push_back({SquaredDistance(cities[i], cities[j]), j});
  }
  std::sort(by_dist.begin(), by_dist.end());
  std::vector<size_t> out;
  for (int t = 0; t < k && t < static_cast<int>(by_dist.size()); ++t) {
    out.push_back(by_dist[static_cast<size_t>(t)].second);
  }
  return out;
}

}  // namespace

std::vector<Point2> GenerateRoadNetwork(const RoadNetOptions& options) {
  CSJ_CHECK(options.num_points >= 16);
  CSJ_CHECK(options.num_cities >= 2);
  Rng rng(options.seed);

  // 1. Urban centers, kept away from the boundary.
  std::vector<Point2> cities(static_cast<size_t>(options.num_cities));
  for (auto& c : cities) {
    c[0] = rng.UniformDouble(0.08, 0.92);
    c[1] = rng.UniformDouble(0.08, 0.92);
  }

  // 2. Road skeleton: highways between nearby cities + arterials radiating
  //    from each center.
  std::vector<Segment> skeleton;
  for (size_t i = 0; i < cities.size(); ++i) {
    for (size_t j : NearestCities(cities, i, options.highway_links)) {
      if (j > i) skeleton.push_back({cities[i], cities[j]});
    }
  }
  for (const auto& city : cities) {
    for (int a = 0; a < options.arterials_per_city; ++a) {
      const double angle = rng.UniformDouble(0.0, 2.0 * M_PI);
      const double length = rng.UniformDouble(0.02, 4.0 * options.urban_sigma);
      Point2 end{{std::clamp(city[0] + std::cos(angle) * length, 0.0, 1.0),
                  std::clamp(city[1] + std::sin(angle) * length, 0.0, 1.0)}};
      skeleton.push_back({city, end});
    }
  }

  // 3. Sample road vertices along every segment via midpoint displacement.
  std::vector<Point2> road_points;
  for (const auto& seg : skeleton) {
    road_points.push_back(seg.a);
    road_points.push_back(seg.b);
    Subdivide(seg.a, seg.b, options.subdivision_depth, options.displacement,
              rng, &road_points);
  }

  // 4. Dense urban street grids: jittered lattice points around each city
  //    (TIGER-style city blocks), sized to the urban_fraction budget.
  const size_t urban_target = static_cast<size_t>(
      options.urban_fraction * static_cast<double>(options.num_points));
  std::vector<Point2> urban_points;
  urban_points.reserve(urban_target);
  while (urban_points.size() < urban_target) {
    const auto& city = cities[rng.UniformInt(cities.size())];
    // Snap a Gaussian draw onto a street grid with ~100 blocks per sigma
    // box, then jitter slightly: points line up in rows/columns like block
    // corners do.
    const double grid = options.urban_sigma / 5.0;
    double x = city[0] + rng.Gaussian(0.0, options.urban_sigma);
    double y = city[1] + rng.Gaussian(0.0, options.urban_sigma);
    x = std::round(x / grid) * grid + rng.Gaussian(0.0, grid * 0.05);
    y = std::round(y / grid) * grid + rng.Gaussian(0.0, grid * 0.05);
    if (x < 0.0 || x > 1.0 || y < 0.0 || y > 1.0) continue;
    urban_points.push_back(Point2{{x, y}});
  }

  // 5. Assemble exactly num_points: all urban points plus a sample (or
  //    repetition) of road vertices.
  std::vector<Point2> all = std::move(urban_points);
  const size_t road_budget = options.num_points - all.size();
  if (road_points.size() >= road_budget) {
    rng.Shuffle(road_points);
    all.insert(all.end(), road_points.begin(),
               road_points.begin() + static_cast<long>(road_budget));
  } else {
    all.insert(all.end(), road_points.begin(), road_points.end());
    // Densify: extra vertices interpolated on random skeleton segments.
    while (all.size() < options.num_points) {
      const auto& seg = skeleton[rng.UniformInt(skeleton.size())];
      const double t = rng.UniformDouble();
      all.push_back(Point2{{seg.a[0] + t * (seg.b[0] - seg.a[0]),
                            seg.a[1] + t * (seg.b[1] - seg.a[1])}});
    }
  }
  NormalizeToUnitCube(&all, /*preserve_aspect=*/true);
  return all;
}

Dataset<2> MakeMgCounty() {
  RoadNetOptions options;
  options.num_points = 27000;
  options.seed = 27;
  options.num_cities = 8;
  Dataset<2> out;
  out.name = "MGCounty";
  out.entries = ToEntries(GenerateRoadNetwork(options));
  return out;
}

Dataset<2> MakeLbCounty() {
  RoadNetOptions options;
  options.num_points = 36000;
  options.seed = 36;
  options.num_cities = 12;
  options.urban_fraction = 0.5;  // Long Beach is denser urban sprawl
  Dataset<2> out;
  out.name = "LBeach";
  out.entries = ToEntries(GenerateRoadNetwork(options));
  return out;
}

Dataset<2> MakePacificNw(double scale) {
  CSJ_CHECK(scale > 0.0 && scale <= 1.0);
  RoadNetOptions options;
  options.num_points =
      static_cast<size_t>(1500000.0 * scale);
  options.seed = 1015;
  options.num_cities = 24;       // Seattle/Portland/Boise/Spokane/...
  options.subdivision_depth = 8; // long rural highways have many vertices
  options.urban_fraction = 0.45;
  options.urban_sigma = 0.02;
  Dataset<2> out;
  out.name = "PacificNW";
  out.entries = ToEntries(GenerateRoadNetwork(options));
  return out;
}

Dataset<3> MakeSierpinski3DDataset(size_t n) {
  Dataset<3> out;
  out.name = "Sierpinski3D";
  out.entries = ToEntries(GenerateSierpinski3D(n, /*seed=*/3));
  return out;
}

}  // namespace csj

#ifndef CSJ_DATA_POINT_IO_H_
#define CSJ_DATA_POINT_IO_H_

#include <string>
#include <vector>

#include "geom/point.h"
#include "util/status.h"

/// \file
/// Point-set file I/O: whitespace-separated text, one point per line
/// ("x y [z]"), compatible with gnuplot and with the usual distribution
/// format of the county/TIGER point sets — so the real data, if obtained,
/// can be dropped in for the synthetic substitutes.

namespace csj {

namespace io_internal {
Status WritePointsText(const std::string& path,
                       const std::vector<std::vector<double>>& rows);
Result<std::vector<std::vector<double>>> ReadPointsText(
    const std::string& path, int expected_dims);
}  // namespace io_internal

/// Writes one "x y [z]" line per point.
template <int D>
Status SavePoints(const std::string& path,
                  const std::vector<Point<D>>& points) {
  std::vector<std::vector<double>> rows(points.size(),
                                        std::vector<double>(D));
  for (size_t i = 0; i < points.size(); ++i) {
    for (int d = 0; d < D; ++d) rows[i][d] = points[i][d];
  }
  return io_internal::WritePointsText(path, rows);
}

/// Reads a point-per-line text file; fails if any row does not have exactly
/// D columns.
template <int D>
Result<std::vector<Point<D>>> LoadPoints(const std::string& path) {
  CSJ_ASSIGN_OR_RETURN(auto rows, io_internal::ReadPointsText(path, D));
  std::vector<Point<D>> points(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int d = 0; d < D; ++d) points[i][d] = rows[i][static_cast<size_t>(d)];
  }
  return points;
}

}  // namespace csj

#endif  // CSJ_DATA_POINT_IO_H_
